// End-to-end training tests: a small CNN must learn SynthCIFAR well above
// chance; the trainer must reduce loss; VGG builders must match Table I.
#include <gtest/gtest.h>

#include "nn/trainer.hpp"
#include "nn/vgg.hpp"

namespace sfc::nn {
namespace {

sfc::data::SynthCifarConfig tiny_data() {
  sfc::data::SynthCifarConfig cfg;
  cfg.train_per_class = 24;
  cfg.test_per_class = 8;
  cfg.noise_sigma = 0.06;
  return cfg;
}

Sequential tiny_cnn(std::uint64_t seed = 11) {
  sfc::util::Rng rng(seed);
  Sequential net;
  net.add<Conv2d>(3, 6, 3, true, rng);
  net.add<Relu>();
  net.add<MaxPool2d>(2);   // 16x16
  net.add<Conv2d>(6, 10, 3, true, rng);
  net.add<Relu>();
  net.add<MaxPool2d>(2);   // 8x8
  net.add<MaxPool2d>(2);   // 4x4
  net.add<Flatten>();
  net.add<Dense>(10 * 4 * 4, 10, rng);
  return net;
}

TEST(Training, LossDecreasesAndBeatsChance) {
  const auto train = sfc::data::make_synth_cifar_train(tiny_data());
  const auto test = sfc::data::make_synth_cifar_test(tiny_data());
  Sequential net = tiny_cnn();

  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 8;
  cfg.learning_rate = 0.05;
  Trainer trainer(net, cfg);
  const auto history = trainer.fit(train);
  ASSERT_EQ(history.size(), 8u);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_GT(history.back().train_accuracy, 0.5);

  const double test_acc = Trainer::evaluate(net, test);
  EXPECT_GT(test_acc, 0.4);  // chance is 0.1
}

TEST(Training, DeterministicGivenSeeds) {
  const auto train = sfc::data::make_synth_cifar_train(tiny_data());
  auto run = [&] {
    Sequential net = tiny_cnn(123);
    TrainConfig cfg;
    cfg.epochs = 2;
    cfg.seed = 77;
    Trainer trainer(net, cfg);
    return trainer.fit(train).back().mean_loss;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(Training, EpochCallbackFires) {
  const auto train = sfc::data::make_synth_cifar_train(tiny_data());
  Sequential net = tiny_cnn();
  TrainConfig cfg;
  cfg.epochs = 3;
  Trainer trainer(net, cfg);
  int calls = 0;
  trainer.fit(train, [&](const EpochStats& s) {
    EXPECT_EQ(s.epoch, calls);
    ++calls;
  });
  EXPECT_EQ(calls, 3);
}

TEST(Vgg, PaperTableStructure) {
  const VggConfig cfg = VggConfig::paper();
  const auto rows = vgg_table(cfg);
  ASSERT_EQ(rows.size(), 13u);  // 7 conv + 3 pool + 3 fc
  EXPECT_EQ(rows[0].layer, "64 3x3 Conv1");
  EXPECT_EQ(rows[0].input_map, "32x32x3");
  EXPECT_EQ(rows[0].output_map, "32x32x64");
  EXPECT_EQ(rows[2].layer, "[2,2] MaxPool1");
  EXPECT_EQ(rows.back().layer, "4096x10 FC3");
  EXPECT_EQ(rows.back().nonlinearity, "-");
  // FC1 input is 4*4*256 = 4096 exactly as in Table I.
  EXPECT_EQ(rows[10].input_map, "1x1x4096");
}

TEST(Vgg, BuiltNetworkShapesPropagate) {
  const VggConfig cfg = VggConfig::reduced(0.0625);  // conv 4.. fc 256
  Sequential net = build_vgg(cfg);
  LayerContext ctx;
  sfc::util::Rng rng(1);
  Tensor x({3, 32, 32});
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(rng.uniform());
  }
  const Tensor logits = net.forward(x, ctx);
  EXPECT_EQ(logits.shape(), (std::vector<int>{10}));
}

TEST(Vgg, ReducedKeepsTopology) {
  const VggConfig cfg = VggConfig::reduced(0.125);
  EXPECT_EQ(cfg.conv_channels.size(), 7u);
  EXPECT_EQ(cfg.conv_channels[0], 8);
  EXPECT_EQ(cfg.conv_channels[6], 32);
  EXPECT_EQ(cfg.fc_hidden, 512);
  const auto rows = vgg_table(cfg);
  EXPECT_EQ(rows.size(), 13u);
}

TEST(Vgg, PaperParameterCountIsLarge) {
  // Sanity: the full Table-I network is tens of millions of parameters
  // (dominated by FC1/FC2 4096x4096); we only count, never train it here.
  Sequential net = build_vgg(VggConfig::paper());
  EXPECT_GT(net.num_parameters(), 30'000'000u);
}

}  // namespace
}  // namespace sfc::nn
