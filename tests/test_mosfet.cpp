// EKV MOSFET model tests: subthreshold slope, saturation behaviour,
// temperature physics, drain/source symmetry, analytic-vs-finite-difference
// derivative consistency, and in-circuit bias points.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/mosfet.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"
#include "util/units.hpp"

namespace sfc::devices {
namespace {

using sfc::spice::Circuit;
using sfc::spice::Engine;
using sfc::spice::kGround;
using sfc::spice::Resistor;
using sfc::spice::VSource;

MosfetParams nmos() { return MosfetParams::finfet14_nmos(8.0); }

TEST(MosfetModel, CurrentIncreasesWithVgs) {
  const MosfetParams p = nmos();
  double prev = 0.0;
  for (double vg = 0.0; vg <= 1.2; vg += 0.1) {
    const double id = evaluate_mosfet(p, vg, 1.0, 0.0, 27.0).id;
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(MosfetModel, SubthresholdSlopeMatchesTheory) {
  // In deep subthreshold, I ~ exp(VGS/(n*VT)): one decade per
  // n*VT*ln(10) volts of gate drive.
  const MosfetParams p = nmos();
  const double vt = sfc::util::thermal_voltage(sfc::util::celsius_to_kelvin(27.0));
  const double expected_decade = p.n_factor * vt * std::log(10.0);

  const double i1 = evaluate_mosfet(p, 0.10, 1.0, 0.0, 27.0).id;
  const double i2 = evaluate_mosfet(p, 0.10 + expected_decade, 1.0, 0.0, 27.0).id;
  EXPECT_NEAR(i2 / i1, 10.0, 0.5);
}

TEST(MosfetModel, ZeroVdsMeansZeroCurrent) {
  const MosfetParams p = nmos();
  EXPECT_NEAR(evaluate_mosfet(p, 0.8, 0.5, 0.5, 27.0).id, 0.0, 1e-18);
}

TEST(MosfetModel, DrainSourceAntisymmetry) {
  const MosfetParams p = nmos();
  const double fwd = evaluate_mosfet(p, 0.8, 0.6, 0.2, 27.0).id;
  const double rev = evaluate_mosfet(p, 0.8, 0.2, 0.6, 27.0).id;
  EXPECT_NEAR(fwd, -rev, std::fabs(fwd) * 1e-9);
}

TEST(MosfetModel, SubthresholdCurrentGrowsWithTemperature) {
  // Below threshold, higher T means lower VTH and more diffusion current.
  const MosfetParams p = nmos();
  const double vg = p.vth0 - 0.15;
  const double i_cold = evaluate_mosfet(p, vg, 1.0, 0.0, 0.0).id;
  const double i_room = evaluate_mosfet(p, vg, 1.0, 0.0, 27.0).id;
  const double i_hot = evaluate_mosfet(p, vg, 1.0, 0.0, 85.0).id;
  EXPECT_LT(i_cold, i_room);
  EXPECT_LT(i_room, i_hot);
  // The change should be large (exponential region).
  EXPECT_GT(i_hot / i_cold, 3.0);
}

TEST(MosfetModel, StrongInversionTempcoIsMuchWeaker) {
  // Far above threshold, mobility degradation and VTH shift partly cancel;
  // relative drift is far smaller than in subthreshold.
  const MosfetParams p = nmos();
  const double vg_strong = p.vth0 + 0.6;
  const double vg_weak = p.vth0 - 0.15;
  auto rel_drift = [&](double vg) {
    const double i0 = evaluate_mosfet(p, vg, 1.0, 0.0, 0.0).id;
    const double i85 = evaluate_mosfet(p, vg, 1.0, 0.0, 85.0).id;
    return std::fabs(i85 / i0 - 1.0);
  };
  EXPECT_LT(rel_drift(vg_strong), 0.5);
  EXPECT_GT(rel_drift(vg_weak), 2.0);
}

TEST(MosfetModel, DerivativesMatchFiniteDifferences) {
  const MosfetParams p = nmos();
  const double h = 1e-7;
  for (const double vg : {0.2, 0.4, 0.8}) {
    for (const double vd : {0.05, 0.5, 1.0}) {
      const double vs = 0.1;
      const MosfetEval ev = evaluate_mosfet(p, vg, vd, vs, 27.0);
      const double dg =
          (evaluate_mosfet(p, vg + h, vd, vs, 27.0).id -
           evaluate_mosfet(p, vg - h, vd, vs, 27.0).id) /
          (2 * h);
      const double dd =
          (evaluate_mosfet(p, vg, vd + h, vs, 27.0).id -
           evaluate_mosfet(p, vg, vd - h, vs, 27.0).id) /
          (2 * h);
      const double ds =
          (evaluate_mosfet(p, vg, vd, vs + h, 27.0).id -
           evaluate_mosfet(p, vg, vd, vs - h, 27.0).id) /
          (2 * h);
      const double scale = std::max(std::fabs(ev.id) / 0.01, 1e-12);
      EXPECT_NEAR(ev.gm_g, dg, scale * 1e-2 + std::fabs(dg) * 1e-3);
      EXPECT_NEAR(ev.gm_d, dd, scale * 1e-2 + std::fabs(dd) * 1e-3);
      EXPECT_NEAR(ev.gm_s, ds, scale * 1e-2 + std::fabs(ds) * 1e-3);
    }
  }
}

TEST(MosfetModel, PmosMirrorsNmos) {
  MosfetParams pn = nmos();
  MosfetParams pp = pn;
  pp.type = MosType::kPmos;
  const double in = evaluate_mosfet(pn, 0.8, 1.0, 0.0, 27.0).id;
  const double ip = evaluate_mosfet(pp, -0.8, -1.0, 0.0, 27.0).id;
  EXPECT_NEAR(in, -ip, std::fabs(in) * 1e-9);
}

TEST(MosfetModel, VthShiftActsLikeGateOffset) {
  const MosfetParams p = nmos();
  const double i_ref = evaluate_mosfet(p, 0.30, 1.0, 0.0, 27.0, 0.0).id;
  const double i_shift = evaluate_mosfet(p, 0.35, 1.0, 0.0, 27.0, 0.05).id;
  EXPECT_NEAR(i_ref, i_shift, std::fabs(i_ref) * 1e-9);
}

TEST(MosfetDevice, SourceFollowerBiasPoint) {
  // NMOS source follower: out settles roughly a VTH below the gate.
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto gate = ckt.node("g");
  const auto out = ckt.node("out");
  ckt.add<VSource>("VDD", vdd, kGround, 1.8);
  ckt.add<VSource>("VG", gate, kGround, 1.2);
  ckt.add<devices::Mosfet>("M1", vdd, gate, out, nmos());
  ckt.add<Resistor>("RL", out, kGround, 1e6);

  Engine engine(ckt, 27.0);
  const auto op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  const double vout = op.voltage("out");
  EXPECT_GT(vout, 0.5);
  EXPECT_LT(vout, 1.2);
}

TEST(MosfetDevice, CommonSourceInverterSwings) {
  auto out_for_gate = [&](double vg) {
    Circuit ckt;
    const auto vdd = ckt.node("vdd");
    const auto gate = ckt.node("g");
    const auto out = ckt.node("out");
    ckt.add<VSource>("VDD", vdd, kGround, 1.2);
    ckt.add<VSource>("VG", gate, kGround, vg);
    ckt.add<Resistor>("RD", vdd, out, 1e5);
    ckt.add<devices::Mosfet>("M1", out, gate, kGround, nmos());
    Engine engine(ckt, 27.0);
    const auto op = engine.dc_operating_point();
    EXPECT_TRUE(op.converged);
    return op.voltage("out");
  };
  EXPECT_GT(out_for_gate(0.0), 1.1);   // off: output high
  EXPECT_LT(out_for_gate(1.0), 0.3);   // on: output pulled low
}

TEST(MosfetParams, SpecificCurrentScalesWithGeometry) {
  MosfetParams p = MosfetParams::finfet14_nmos(4.0);
  MosfetParams p2 = MosfetParams::finfet14_nmos(8.0);
  EXPECT_NEAR(p2.specific_current(27.0) / p.specific_current(27.0), 2.0,
              1e-9);
}

TEST(MosfetParams, VthTemperatureCoefficient) {
  const MosfetParams p = nmos();
  EXPECT_NEAR(p.vth(27.0), p.vth0, 1e-15);
  EXPECT_LT(p.vth(85.0), p.vth0);
  EXPECT_GT(p.vth(0.0), p.vth0);
}

TEST(MosfetDevice, InvalidGeometryRejected) {
  MosfetParams p = nmos();
  p.w = 0.0;
  Circuit ckt;
  EXPECT_THROW(ckt.add<devices::Mosfet>("M1", ckt.node("d"), ckt.node("g"),
                                        kGround, p),
               std::invalid_argument);
}

}  // namespace
}  // namespace sfc::devices
