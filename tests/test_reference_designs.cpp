// Table II reference-design model tests.
#include <gtest/gtest.h>

#include "cim/reference_designs.hpp"

namespace sfc::cim {
namespace {

TEST(ReferenceDesigns, SixComparisonRows) {
  const auto rows = reference_designs();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].work, "[34]");
  EXPECT_EQ(rows[0].cell, "6T SRAM");
  EXPECT_EQ(rows[2].work, "[17]");
  EXPECT_DOUBLE_EQ(rows[2].tops_per_watt, 13714.0);
  EXPECT_EQ(rows[4].device, "ReRAM");
  EXPECT_EQ(rows[5].device, "MTJ");
}

TEST(ReferenceDesigns, PaperEnergyRatiosReproduced) {
  // Paper: "ReRAM and MTJ consume 64.6x and 445.9x more operation energy
  // than 2T-1FeFET" relative to 3.14 fJ/op.
  const auto rows = reference_designs();
  const double e_this_work = 3.14e-15;
  EXPECT_NEAR(energy_ratio_vs(rows[4], e_this_work), 64.6, 0.5);
  EXPECT_NEAR(energy_ratio_vs(rows[5], e_this_work), 445.9, 1.0);
}

TEST(ReferenceDesigns, RatioHandlesMissingData) {
  const auto rows = reference_designs();
  // [34] reports only per-inference energy -> no per-op ratio.
  EXPECT_DOUBLE_EQ(energy_ratio_vs(rows[0], 3.14e-15), 0.0);
  EXPECT_DOUBLE_EQ(energy_ratio_vs(rows[4], 0.0), 0.0);
}

TEST(ReferenceDesigns, ThisWorkRowFormatting) {
  const DesignRow row = this_work_row(89.45, 3.14e-15, 2866.0, 85.08e-9);
  EXPECT_EQ(row.work, "This Work");
  EXPECT_EQ(row.cell, "2T-1FeFET");
  EXPECT_NE(row.accuracy.find("89.45"), std::string::npos);
  EXPECT_NE(row.energy.find("3.14"), std::string::npos);
  EXPECT_NE(row.energy.find("85.08"), std::string::npos);
  EXPECT_DOUBLE_EQ(row.tops_per_watt, 2866.0);
}

TEST(ReferenceDesigns, FeFetDesignsBeatOthersOnEfficiency) {
  // The qualitative Table II story: FeFET CiM tops the TOPS/W column.
  const auto rows = reference_designs();
  double best_fefet = 0.0, best_other = 0.0;
  for (const auto& row : rows) {
    if (row.tops_per_watt <= 0.0) continue;
    if (row.device == "FeFET") {
      best_fefet = std::max(best_fefet, row.tops_per_watt);
    } else {
      best_other = std::max(best_other, row.tops_per_watt);
    }
  }
  EXPECT_GT(best_fefet, best_other);
}

}  // namespace
}  // namespace sfc::cim
