// Netlist parser tests: numbers with suffixes, every card type, stimulus
// grammar, directives, and error reporting with line numbers.
#include <gtest/gtest.h>

#include "devices/mosfet.hpp"
#include "fefet/fefet.hpp"
#include "spice/engine.hpp"
#include "spice/netlist.hpp"
#include "spice/primitives.hpp"

namespace sfc::spice {
namespace {

TEST(SpiceNumber, SuffixesParse) {
  EXPECT_DOUBLE_EQ(parse_spice_number("4.7k"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("5f"), 5e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("10meg"), 1e7);
  EXPECT_DOUBLE_EQ(parse_spice_number("1.2"), 1.2);
  EXPECT_DOUBLE_EQ(parse_spice_number("-0.35"), -0.35);
  EXPECT_DOUBLE_EQ(parse_spice_number("100n"), 1e-7);
  EXPECT_DOUBLE_EQ(parse_spice_number("2u"), 2e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("3m"), 3e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("7p"), 7e-12);
}

TEST(SpiceNumber, RejectsGarbage) {
  EXPECT_THROW(parse_spice_number("abc"), std::runtime_error);
  EXPECT_THROW(parse_spice_number("1.2x"), std::runtime_error);
}

TEST(Netlist, VoltageDividerDeck) {
  const std::string deck = R"(
* simple divider
V1 in 0 10
R1 in mid 1k
R2 mid 0 3k
.temp 45
.end
)";
  Circuit ckt;
  const NetlistDeck d = parse_netlist(deck, ckt);
  EXPECT_TRUE(d.has_temperature);
  EXPECT_DOUBLE_EQ(d.temperature_c, 45.0);

  Engine engine(ckt, d.temperature_c);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("mid"), 7.5, 1e-6);
}

TEST(Netlist, PulseSourceAndTran) {
  const std::string deck = R"(
V1 in 0 PULSE(0 1.2 1n 0.1n 0.1n 3n 10n)
R1 in out 1k
C1 out 0 1p ic=0
.tran 0.05n 8n
)";
  Circuit ckt;
  const NetlistDeck d = parse_netlist(deck, ckt);
  ASSERT_EQ(d.tran.size(), 1u);
  EXPECT_DOUBLE_EQ(d.tran[0].dt, 0.05e-9);
  EXPECT_DOUBLE_EQ(d.tran[0].t_stop, 8e-9);

  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = d.tran[0].dt;
  const TransientResult tr = engine.transient(d.tran[0].t_stop, opts);
  ASSERT_TRUE(tr.converged);
  EXPECT_GT(tr.at("out", 4e-9), 0.8);  // charged during pulse
}

TEST(Netlist, MosfetWithModelCard) {
  const std::string deck = R"(
.model mynmos nmos vth0=0.45 n=1.3
VDD d 0 1.2
VG g 0 1.2
M1 d g 0 mynmos w=100n l=20n
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  auto* m1 = dynamic_cast<devices::Mosfet*>(ckt.find("M1"));
  ASSERT_NE(m1, nullptr);
  EXPECT_DOUBLE_EQ(m1->params().vth0, 0.45);
  EXPECT_DOUBLE_EQ(m1->params().n_factor, 1.3);
  EXPECT_DOUBLE_EQ(m1->params().w, 100e-9);
  EXPECT_DOUBLE_EQ(m1->params().l, 20e-9);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
}

TEST(Netlist, SwitchDiodeInductorCards) {
  const std::string deck = R"(
V1 in 0 2.0
VC c 0 1.2
S1 in out c ron=200 roff=1e9 vt=0.5
D1 out 0 is=1e-15
L1 out 0 1u
I1 0 out DC 1m
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  EXPECT_NE(ckt.find("S1"), nullptr);
  EXPECT_NE(ckt.find("D1"), nullptr);
  EXPECT_NE(ckt.find("L1"), nullptr);
  EXPECT_NE(ckt.find("I1"), nullptr);
}

TEST(Netlist, PwlAndSinSources) {
  const std::string deck = R"(
V1 a 0 PWL(0 0 1n 1 2n 0.5)
V2 b 0 SIN(0.6 0.2 1e9)
R1 a 0 1k
R2 b 0 1k
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  auto* v1 = dynamic_cast<VSource*>(ckt.find("V1"));
  ASSERT_NE(v1, nullptr);
  EXPECT_DOUBLE_EQ(v1->waveform().at(0.5e-9), 0.5);
  auto* v2 = dynamic_cast<VSource*>(ckt.find("V2"));
  ASSERT_NE(v2, nullptr);
  EXPECT_NEAR(v2->waveform().at(0.25e-9), 0.8, 1e-9);
}

TEST(Netlist, DcSweepDirective) {
  const std::string deck = R"(
V1 in 0 0
R1 in 0 1k
.dc V1 0 1.2 0.1
)";
  Circuit ckt;
  const NetlistDeck d = parse_netlist(deck, ckt);
  ASSERT_EQ(d.dc.size(), 1u);
  EXPECT_EQ(d.dc[0].source, "V1");
  EXPECT_DOUBLE_EQ(d.dc[0].stop, 1.2);
}

TEST(Netlist, CommentsAndEndHandled) {
  const std::string deck = R"(
* leading comment
R1 a 0 1k ; trailing comment
.end
R2 never 0 1k
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  EXPECT_NE(ckt.find("R1"), nullptr);
  EXPECT_EQ(ckt.find("R2"), nullptr);  // after .end
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  const std::string deck = "R1 a 0 1k\nQ1 x y z\n";
  Circuit ckt;
  try {
    parse_netlist(deck, ckt);
    FAIL() << "expected parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Netlist, UnknownModelRejected) {
  Circuit ckt;
  EXPECT_THROW(parse_netlist("M1 d g 0 nosuchmodel\n", ckt),
               std::runtime_error);
}

TEST(Netlist, MalformedPulseRejected) {
  Circuit ckt;
  EXPECT_THROW(parse_netlist("V1 a 0 PULSE(0 1)\n", ckt), std::runtime_error);
}

TEST(Netlist, SubcircuitExpansion) {
  const std::string deck = R"(
.subckt divider top bottom
R1 top mid 1k
R2 mid bottom 1k
.ends
V1 in 0 8
Xa in m1 divider
Xb m1 0 divider
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  // Two instances -> four resistors with instance-qualified names.
  EXPECT_NE(ckt.find("R1:Xa"), nullptr);
  EXPECT_NE(ckt.find("R2:Xa"), nullptr);
  EXPECT_NE(ckt.find("R1:Xb"), nullptr);
  EXPECT_NE(ckt.find("R2:Xb"), nullptr);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  // Four equal resistors in series from 8 V: the Xa/Xb boundary sits at
  // half, and each internal mid node at the quarter points.
  EXPECT_NEAR(op.voltage("m1"), 4.0, 1e-6);
  EXPECT_NEAR(op.voltage("mid:Xa"), 6.0, 1e-6);
  EXPECT_NEAR(op.voltage("mid:Xb"), 2.0, 1e-6);
}

TEST(Netlist, NestedSubcircuits) {
  const std::string deck = R"(
.subckt unit a b
Ru a b 1k
.ends
.subckt pair top bottom
X1 top m unit
X2 m bottom unit
.ends
V1 in 0 4
Xp in 0 pair
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("m:Xp"), 2.0, 1e-6);
}

TEST(Netlist, SubcircuitErrors) {
  Circuit ckt;
  // Unknown subckt.
  EXPECT_THROW(parse_netlist("X1 a b nosuch\n", ckt), std::runtime_error);
  // Port count mismatch.
  Circuit ckt2;
  EXPECT_THROW(
      parse_netlist(".subckt u a b\nR1 a b 1k\n.ends\nX1 n1 u\n", ckt2),
      std::runtime_error);
  // Unterminated subckt.
  Circuit ckt3;
  EXPECT_THROW(parse_netlist(".subckt u a b\nR1 a b 1k\n", ckt3),
               std::runtime_error);
}

TEST(Netlist, AcDirective) {
  const std::string deck = R"(
V1 in 0 1
R1 in 0 1k
.ac 10 1k 1meg
)";
  Circuit ckt;
  const NetlistDeck d = parse_netlist(deck, ckt);
  ASSERT_EQ(d.ac.size(), 1u);
  EXPECT_EQ(d.ac[0].points_per_decade, 10);
  EXPECT_DOUBLE_EQ(d.ac[0].f_start, 1e3);
  EXPECT_DOUBLE_EQ(d.ac[0].f_stop, 1e6);
}

TEST(Netlist, FefetCard) {
  const std::string deck = R"(
VBL bl 0 1.2
VWL g 0 0.35
Z1 bl g out state=1 vthlow=0.25 vthhigh=1.7
R1 out 0 10meg
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  auto* z1 = dynamic_cast<sfc::fefet::FeFet*>(ckt.find("Z1"));
  ASSERT_NE(z1, nullptr);
  EXPECT_TRUE(z1->stored_bit());
  EXPECT_NEAR(z1->ferroelectric().vth(27.0), 0.25, 1e-9);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_GT(op.voltage("out"), 0.05);  // stored '1' conducts at 0.35 V
}

TEST(Netlist, ControlledSourceCards) {
  const std::string deck = R"(
VC c 0 0.5
G1 0 out1 c 0 2m
RL1 out1 0 1k
E1 out2 0 c 0 4
RL2 out2 0 1k
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("out1"), 1.0, 1e-6);  // VCCS into 1k
  EXPECT_NEAR(op.voltage("out2"), 2.0, 1e-6);  // VCVS gain 4 * 0.5
}

TEST(Netlist, FefetInsideSubcircuit) {
  const std::string deck = R"(
.subckt bitcell bl wl out
Z1 bl wl out state=1
C1 out 0 5f ic=0
.ends
VBL bl 0 1.2
VWL wl 0 0.35
X0 bl wl o0 bitcell
X1 bl wl o1 bitcell
)";
  Circuit ckt;
  parse_netlist(deck, ckt);
  EXPECT_NE(ckt.find("Z1:X0"), nullptr);
  EXPECT_NE(ckt.find("C1:X1"), nullptr);
  EXPECT_TRUE(ckt.has_node("o0"));
  EXPECT_TRUE(ckt.has_node("o1"));
}

}  // namespace
}  // namespace sfc::spice
