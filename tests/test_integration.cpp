// Cross-module integration tests: the paper's headline claims, end to
// end - circuit-level calibration, array separability feeding the
// behavioural model, and CNN inference through the CiM fabric across
// temperature.
#include <gtest/gtest.h>

#include "cim/calibration.hpp"
#include "nn/cim_engine.hpp"
#include "nn/trainer.hpp"
#include "nn/vgg.hpp"

namespace {

using namespace sfc;

TEST(Integration, PaperHeadlineClaimsHold) {
  // Coarse grid keeps this test fast; the bench uses the full grid.
  const cim::CalibrationReport rep =
      cim::run_calibration({0.0, 27.0, 85.0});

  // Sec. III-A: subthreshold operation is much more temperature-sensitive
  // than saturation operation for the baseline cell.
  EXPECT_TRUE(rep.subthreshold_worse_than_saturation());
  // Sec. IV-A: the proposed cell beats the subthreshold baseline.
  EXPECT_TRUE(rep.proposed_beats_subthreshold_baseline());
  // Fig. 8(a) vs Fig. 4: proposed array separable, baseline overlaps.
  EXPECT_TRUE(rep.proposed_array_separable());
  EXPECT_TRUE(rep.baseline_array_overlaps());
  // Fig. 8(b): ultra-low energy (single-digit fJ/op at most).
  EXPECT_GT(rep.energy_per_op, 0.0);
  EXPECT_LT(rep.energy_per_op, 10e-15);
  EXPECT_GT(rep.tops_per_watt, 100.0);
  // >= 20C the margin improves (paper: NMR 0.22 -> 2.3).
  EXPECT_GT(rep.nmr_min_2t_above_20c, rep.nmr_min_2t);
}

TEST(Integration, CnnAccuracyStableOnProposedFabric) {
  // Train a small CNN on SynthCIFAR, quantize, then run every MAC through
  // the calibrated proposed array at several temperatures: accuracy must
  // not degrade. The subthreshold baseline fabric must lose accuracy at
  // temperature extremes.
  data::SynthCifarConfig dcfg;
  dcfg.train_per_class = 24;
  dcfg.test_per_class = 6;
  dcfg.noise_sigma = 0.06;
  const auto train = data::make_synth_cifar_train(dcfg);
  const auto test = data::make_synth_cifar_test(dcfg);

  util::Rng rng(41);
  nn::Sequential net;
  net.add<nn::Conv2d>(3, 6, 3, true, rng);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Conv2d>(6, 10, 3, true, rng);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Flatten>();
  net.add<nn::Dense>(160, 10, rng);
  nn::TrainConfig tcfg;
  tcfg.epochs = 5;
  tcfg.batch_size = 8;
  tcfg.learning_rate = 0.05;
  nn::Trainer trainer(net, tcfg);
  trainer.fit(train);

  const nn::QuantizedNetwork qnet =
      nn::QuantizedNetwork::from_model(net, train, 16);
  nn::IdealDotEngine ideal;
  const double acc_ideal = qnet.evaluate(test, ideal);
  ASSERT_GT(acc_ideal, 0.4);

  const cim::BehavioralArrayModel proposed =
      cim::BehavioralArrayModel::calibrate(
          cim::ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});
  for (double t : {0.0, 27.0, 85.0}) {
    nn::CimDotEngine::Options opts;
    opts.temperature_c = t;
    nn::CimDotEngine engine(proposed, opts);
    const double acc = qnet.evaluate(test, engine);
    EXPECT_NEAR(acc, acc_ideal, 0.03) << "proposed fabric at T=" << t;
  }

  const cim::BehavioralArrayModel baseline =
      cim::BehavioralArrayModel::calibrate(
          cim::ArrayConfig::baseline_1r_subthreshold(), {0.0, 27.0, 85.0});
  // At the temperature extremes the baseline's levels cross the fixed ADC
  // thresholds: a large fraction of row operations misdecode. (End-to-end
  // accuracy degrades less than the raw error rate suggests because the
  // positive- and negative-weight rows misdecode with correlated bias and
  // partially cancel - see EXPERIMENTS.md.)
  nn::CimDotEngine::Options hot;
  hot.temperature_c = 85.0;
  nn::CimDotEngine engine(baseline, hot);
  qnet.evaluate(test, engine, /*max_images=*/4);
  ASSERT_GT(engine.row_ops(), 0);
  const double error_rate =
      static_cast<double>(engine.row_errors()) /
      static_cast<double>(engine.row_ops());
  EXPECT_GT(error_rate, 0.01);

  // The proposed fabric performs the identical workload with zero
  // misdecoded rows at the same temperature.
  nn::CimDotEngine proposed_engine(proposed, hot);
  qnet.evaluate(test, proposed_engine, /*max_images=*/4);
  EXPECT_EQ(proposed_engine.row_errors(), 0);
}

TEST(Integration, CalibrationReportPrints) {
  const cim::CalibrationReport rep = cim::run_calibration({0.0, 27.0, 85.0});
  const std::string text = rep.to_string();
  EXPECT_NE(text.find("fluctuation"), std::string::npos);
  EXPECT_NE(text.find("NMR"), std::string::npos);
  EXPECT_NE(text.find("TOPS/W"), std::string::npos);
}

}  // namespace
