// Preisach ferroelectric model tests: programming protocol, hysteresis,
// partial switching (pulse-width dependence), minor loops, and the
// temperature dependencies that drive the paper's Fig. 1 asymmetry.
#include <gtest/gtest.h>

#include <cmath>

#include "fefet/preisach.hpp"

namespace sfc::fefet {
namespace {

TEST(Preisach, PristineDeviceIsHighVth) {
  PreisachModel fe;
  EXPECT_DOUBLE_EQ(fe.polarization(), -1.0);
  EXPECT_NEAR(fe.vth(27.0), fe.params().vth_high, 1e-12);
}

TEST(Preisach, PaperWriteProtocolReachesBothStates) {
  PreisachModel fe;
  fe.write_bit(true, 27.0);  // +4V / 115ns
  EXPECT_GT(fe.polarization(), 0.95);
  EXPECT_NEAR(fe.vth(27.0), fe.params().vth_low, 0.03);

  fe.write_bit(false, 27.0);  // -4V / 200ns
  EXPECT_LT(fe.polarization(), -0.95);
  EXPECT_NEAR(fe.vth(27.0), fe.params().vth_high, 0.03);
}

TEST(Preisach, WritesAreIdempotent) {
  PreisachModel fe;
  fe.write_bit(true, 27.0);
  const double p1 = fe.polarization();
  fe.write_bit(true, 27.0);
  EXPECT_NEAR(fe.polarization(), p1, 1e-3);
}

TEST(Preisach, ShortPulseSwitchesPartially) {
  // Pulse-width dependence (Merz law): 5 ns at +4 V must switch less than
  // the full 115 ns write.
  PreisachModel full, partial;
  full.apply_pulse(4.0, 115e-9, 27.0);
  partial.apply_pulse(4.0, 5e-9, 27.0);
  EXPECT_GT(full.polarization(), partial.polarization());
  EXPECT_GT(partial.polarization(), -1.0);  // something switched
}

TEST(Preisach, SubCoerciveVoltageDoesNotDisturb) {
  PreisachModel fe;
  fe.write_bit(true, 27.0);
  const double p = fe.polarization();
  // Read-level voltages (well below every domain's coercive voltage).
  for (int i = 0; i < 1000; ++i) {
    fe.apply_pulse(0.35, 10e-9, 27.0);
    fe.apply_pulse(-0.35, 10e-9, 27.0);
  }
  EXPECT_NEAR(fe.polarization(), p, 1e-9);
}

TEST(Preisach, QuasistaticHysteresisLoop) {
  PreisachModel fe;
  std::vector<double> up, down;
  for (double v = -5.0; v <= 5.0; v += 0.25) {
    fe.apply_quasistatic(v, 27.0);
    up.push_back(fe.polarization());
  }
  for (double v = 5.0; v >= -5.0; v -= 0.25) {
    fe.apply_quasistatic(v, 27.0);
    down.push_back(fe.polarization());
  }
  // Saturation at the extremes.
  EXPECT_NEAR(up.back(), 1.0, 1e-9);
  EXPECT_NEAR(down.back(), -1.0, 1e-9);
  // Hysteresis: at V = 0 (mid-sweep) the two branches must differ.
  const std::size_t mid = up.size() / 2;
  EXPECT_GT(std::fabs(up[mid] - down[down.size() / 2 - 0]), 0.5);
  // Monotone branches.
  for (std::size_t i = 1; i < up.size(); ++i) {
    EXPECT_GE(up[i], up[i - 1] - 1e-12);
    EXPECT_LE(down[i], down[i - 1] + 1e-12);
  }
}

TEST(Preisach, MinorLoopSitsInsideMajorLoop) {
  // Drive to +2.4V (mean coercive): only ~half the domains switch.
  PreisachModel fe;
  fe.apply_quasistatic(-5.0, 27.0);
  fe.apply_quasistatic(2.4, 27.0);
  const double p_minor = fe.polarization();
  EXPECT_GT(p_minor, -0.8);
  EXPECT_LT(p_minor, 0.8);
}

TEST(Preisach, MemoryWindowShrinksWithTemperature) {
  PreisachModel fe;
  EXPECT_LT(fe.memory_window(85.0), fe.memory_window(27.0));
  EXPECT_GT(fe.memory_window(0.0), fe.memory_window(27.0));
}

TEST(Preisach, HighVthStateMoreTemperatureSensitive) {
  // Fig. 1: temperature moves the high-VTH state more than the low-VTH
  // state (in the ferroelectric contribution).
  PreisachModel low, high;
  low.set_polarization(1.0);
  high.set_polarization(-1.0);
  const double d_low = std::fabs(low.vth(85.0) - low.vth(0.0));
  const double d_high = std::fabs(high.vth(85.0) - high.vth(0.0));
  EXPECT_GT(d_high, d_low * 0.99);  // equal magnitude from MW model
  // And they move in opposite directions (window shrink).
  EXPECT_GT(low.vth(85.0), low.vth(0.0));
  EXPECT_LT(high.vth(85.0), high.vth(0.0));
}

TEST(Preisach, CoerciveVoltageDropsWithTemperature) {
  PreisachModel fe;
  EXPECT_LT(fe.domain_vc(0, 85.0), fe.domain_vc(0, 27.0));
  EXPECT_GT(fe.domain_vc(0, 0.0), fe.domain_vc(0, 27.0));
}

TEST(Preisach, HotterWritesSwitchFaster) {
  // Lower coercive voltage at high temperature -> more switching for the
  // same marginal pulse.
  PreisachModel cold, hot;
  cold.apply_pulse(2.8, 20e-9, 0.0);
  hot.apply_pulse(2.8, 20e-9, 85.0);
  EXPECT_GT(hot.polarization(), cold.polarization());
}

TEST(Preisach, SetPolarizationClamps) {
  PreisachModel fe;
  fe.set_polarization(5.0);
  EXPECT_DOUBLE_EQ(fe.polarization(), 1.0);
  fe.set_polarization(-5.0);
  EXPECT_DOUBLE_EQ(fe.polarization(), -1.0);
  fe.set_polarization(0.25);
  EXPECT_NEAR(fe.polarization(), 0.25, 1e-12);
}

TEST(Preisach, DomainQuantilesAreDeterministicAndSorted) {
  PreisachModel a, b;
  for (int i = 0; i < a.num_domains(); ++i) {
    EXPECT_DOUBLE_EQ(a.domain_vc(i, 27.0), b.domain_vc(i, 27.0));
    if (i > 0) EXPECT_GE(a.domain_vc(i, 27.0), a.domain_vc(i - 1, 27.0));
  }
}

TEST(Preisach, InvalidParamsRejected) {
  PreisachParams p;
  p.num_domains = 0;
  EXPECT_THROW(PreisachModel{p}, std::invalid_argument);
  PreisachParams q;
  q.vth_high = q.vth_low;
  EXPECT_THROW(PreisachModel{q}, std::invalid_argument);
}

}  // namespace
}  // namespace sfc::fefet
