// Unit tests for the utility layer: RNG determinism and distributions,
// statistics, histogram binning, interpolation, table/CSV formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/interp.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace sfc::util {
namespace {

TEST(Units, ThermalVoltageAtRoomTemperature) {
  const double vt = thermal_voltage(celsius_to_kelvin(27.0));
  EXPECT_NEAR(vt, 0.02585, 2e-4);
}

TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(kelvin_to_celsius(celsius_to_kelvin(85.0)), 85.0);
  EXPECT_DOUBLE_EQ(celsius_to_kelvin(0.0), 273.15);
}

TEST(Units, Literals) {
  using namespace literals;
  EXPECT_DOUBLE_EQ(350.0_mV, 0.35);
  EXPECT_DOUBLE_EQ(5.0_fF, 5e-15);
  EXPECT_DOUBLE_EQ(200.0_ns, 2e-7);
  EXPECT_DOUBLE_EQ(10.0_MOhm, 1e7);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(11);
  std::vector<double> samples(20000);
  for (auto& s : samples) s = rng.normal(1.5, 0.5);
  const Summary sum = summarize(samples);
  EXPECT_NEAR(sum.mean, 1.5, 0.02);
  EXPECT_NEAR(sum.stddev, 0.5, 0.02);
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_index(10))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child = parent.split();
  // Child continues to produce values even after the parent is used.
  const double c1 = child.uniform();
  parent.uniform();
  const double c2 = child.uniform();
  EXPECT_NE(c1, c2);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(13);
  const auto perm = rng.permutation(50);
  std::vector<bool> seen(50, false);
  for (std::size_t idx : perm) {
    ASSERT_LT(idx, 50u);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
  EXPECT_DOUBLE_EQ(s.range(), 3.0);
}

TEST(Stats, EmptySampleIsZeroed) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Percentiles) {
  std::vector<double> v;
  for (int i = 0; i <= 100; ++i) v.push_back(i);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 100.0);
  EXPECT_NEAR(percentile(v, 95), 95.0, 1e-9);
}

TEST(Stats, CorrelationSigns) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y_pos = {1, 3, 5, 7, 9};
  std::vector<double> y_neg = y_pos;
  std::reverse(y_neg.begin(), y_neg.end());
  EXPECT_NEAR(correlation(x, y_pos), 1.0, 1e-12);
  EXPECT_NEAR(correlation(x, y_neg), -1.0, 1e-12);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 0.25 * i);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit.slope, -0.25, 1e-12);
}

TEST(Stats, ProbitMatchesKnownQuantiles) {
  EXPECT_NEAR(probit(0.5), 0.0, 1e-9);
  EXPECT_NEAR(probit(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(probit(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(probit(0.841344746), 1.0, 1e-6);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, AsciiRenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.9);
  h.add(0.95);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("2"), std::string::npos);
}

TEST(Interp, PiecewiseLinearInterpolatesAndClamps) {
  PiecewiseLinear f({{0.0, 0.0}, {1.0, 10.0}, {3.0, 10.0}});
  EXPECT_DOUBLE_EQ(f(-1.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(f(0.5), 5.0);    // interpolate
  EXPECT_DOUBLE_EQ(f(2.0), 10.0);   // flat segment
  EXPECT_DOUBLE_EQ(f(9.0), 10.0);   // clamp right
}

TEST(Interp, InverseOfMonotoneFunction) {
  PiecewiseLinear f({{0.0, 1.0}, {2.0, 3.0}, {4.0, 7.0}});
  EXPECT_DOUBLE_EQ(f.inverse(2.0), 1.0);
  EXPECT_DOUBLE_EQ(f.inverse(5.0), 3.0);
  EXPECT_DOUBLE_EQ(f.inverse(0.0), 0.0);   // clamp
  EXPECT_DOUBLE_EQ(f.inverse(99.0), 4.0);  // clamp
}

TEST(Table, RendersAlignedColumns) {
  Table t({"metric", "value"});
  t.add_row({"energy", "3.14"});
  t.add_row_numeric({2866.0, 1.0});
  const std::string s = t.render();
  EXPECT_NE(s.find("energy"), std::string::npos);
  EXPECT_NE(s.find("2866"), std::string::npos);
  EXPECT_NE(s.find("+--"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 3), "3.14");
  EXPECT_EQ(fmt_percent(0.206), "+20.6%");
  EXPECT_EQ(fmt_percent(-0.521), "-52.1%");
}

TEST(Csv, EscapesAndWrites) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");

  const std::string path =
      (std::filesystem::temp_directory_path() / "sfc_csv_test.csv").string();
  {
    CsvWriter csv(path, {"t", "v"});
    csv.row({1.0, 2.5});
    csv.row_text({"x,y", "3"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t,v");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2.5");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",3");
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Edge cases: empty samples, single elements, NaN propagation
// ---------------------------------------------------------------------------

TEST(Stats, EmptyInputYieldsZeroedResults) {
  const std::vector<double> none;
  const Summary s = summarize(none);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.range(), 0.0);
  EXPECT_DOUBLE_EQ(percentile(none, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(rms(none), 0.0);
}

TEST(Stats, SingleElementSample) {
  const std::vector<double> one = {3.25};
  const Summary s = summarize(one);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
  EXPECT_DOUBLE_EQ(s.mean, 3.25);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  // Every percentile of a single sample is that sample.
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 3.25);
  EXPECT_DOUBLE_EQ(percentile(one, 50.0), 3.25);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), 3.25);
  // Correlation is undefined below two points; the contract is 0.
  EXPECT_DOUBLE_EQ(correlation(one, one), 0.0);
}

TEST(Stats, NanPropagatesThroughMoments) {
  const std::vector<double> v = {1.0, std::nan(""), 3.0};
  EXPECT_TRUE(std::isnan(mean(v)));
  EXPECT_TRUE(std::isnan(stddev(v)));
  EXPECT_TRUE(std::isnan(rms(v)));
  EXPECT_TRUE(std::isnan(summarize(v).mean));
}

TEST(Stats, PercentileClampsOutOfRangeQ) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(v, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 200.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
}

TEST(Interp, LerpDegenerateSegmentReturnsMidpoint) {
  // x0 == x1 has no slope; the documented contract is the midpoint, not
  // a division by zero.
  EXPECT_DOUBLE_EQ(lerp(7.0, 2.0, 10.0, 2.0, 20.0), 15.0);
}

TEST(Interp, SinglePointPiecewiseLinearIsConstant) {
  PiecewiseLinear f({{1.0, 42.0}});
  EXPECT_DOUBLE_EQ(f(-100.0), 42.0);
  EXPECT_DOUBLE_EQ(f(1.0), 42.0);
  EXPECT_DOUBLE_EQ(f(100.0), 42.0);
  EXPECT_DOUBLE_EQ(f.min_x(), 1.0);
  EXPECT_DOUBLE_EQ(f.max_x(), 1.0);
}

TEST(Interp, NanXPropagatesThroughLerp) {
  EXPECT_TRUE(std::isnan(lerp(std::nan(""), 0.0, 0.0, 1.0, 1.0)));
}

TEST(Csv, SingleRowFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sfc_csv_single.csv").string();
  {
    CsvWriter csv(path, {"only"});
    csv.row({1.5});
  }
  std::ifstream in(path);
  std::string header, row, extra;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_TRUE(static_cast<bool>(std::getline(in, row)));
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
  EXPECT_EQ(header, "only");
  EXPECT_EQ(row, "1.5");
  std::filesystem::remove(path);
}

TEST(Csv, HeaderOnlyFileIsValid) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sfc_csv_empty.csv").string();
  { CsvWriter csv(path, {"a", "b"}); }
  std::ifstream in(path);
  std::string header, extra;
  EXPECT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header, "a,b");
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sfc::util
