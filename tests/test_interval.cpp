// Unit tests for the outward-rounded interval domain (lint/interval.hpp)
// backing the operating-point analysis. The contract under test is
// soundness: for any reals x in A and y in B, x op y is in A op B — the
// fuzz campaign checks this end-to-end against the solver, these tests
// check the arithmetic kernels directly.
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "lint/interval.hpp"

namespace lint = sfc::lint;
using lint::Interval;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

TEST(Interval, ConstructorsAndClassification) {
  EXPECT_TRUE(Interval().is_universe());
  EXPECT_TRUE(Interval::empty().is_empty());
  EXPECT_TRUE(Interval::universe().is_universe());
  const Interval s(2.0);
  EXPECT_TRUE(s.is_singleton());
  EXPECT_EQ(s.lo(), 2.0);  // singleton construction is exact, no rounding
  EXPECT_EQ(s.hi(), 2.0);
  EXPECT_TRUE(Interval(1.0, 2.0).is_bounded());
  // Inverted endpoints canonicalize to the empty interval.
  EXPECT_TRUE(Interval(2.0, 1.0).is_empty());
  // NaN endpoints degrade to the universe (unknown, not impossible).
  EXPECT_TRUE(Interval(std::nan("")).is_universe());
  EXPECT_TRUE(Interval(0.0, std::nan("")).is_universe());
}

TEST(Interval, ContainsAndWidth) {
  const Interval a(1.0, 2.0);
  EXPECT_TRUE(a.contains(1.0));
  EXPECT_TRUE(a.contains(2.0));
  EXPECT_TRUE(a.contains(1.5));
  EXPECT_FALSE(a.contains(0.999));
  EXPECT_TRUE(a.contains(Interval(1.25, 1.75)));
  EXPECT_FALSE(a.contains(Interval(0.5, 1.5)));
  EXPECT_FALSE(Interval::empty().contains(0.0));
  EXPECT_TRUE(Interval::universe().contains(1e300));
  EXPECT_DOUBLE_EQ(a.width(), 1.0);
  EXPECT_EQ(Interval::empty().width(), 0.0);
}

TEST(Interval, AdditionRoundsOutward) {
  // 0.1 + 0.2 != 0.3 in binary floating point; the interval sum must
  // nevertheless contain the exact real sum of the two doubles, which
  // means the bounds move strictly outward from the rounded result.
  const Interval sum = Interval(0.1) + Interval(0.2);
  const double rounded = 0.1 + 0.2;
  EXPECT_TRUE(sum.contains(rounded));
  EXPECT_LT(sum.lo(), rounded);
  EXPECT_GT(sum.width(), 0.0);
  // Outward rounding never collapses: repeated accumulation only widens.
  Interval acc(0.0);
  for (int i = 0; i < 100; ++i) acc = acc + Interval(0.1);
  EXPECT_TRUE(acc.contains(100 * 0.1));
  EXPECT_GT(acc.width(), 0.0);
}

TEST(Interval, SubtractionContainsZeroForSelfDifference) {
  const Interval a(1.0, 2.0);
  const Interval d = a - a;
  // x - y for x, y drawn independently from [1,2] spans [-1,1].
  EXPECT_TRUE(d.contains(0.0));
  EXPECT_TRUE(d.contains(-1.0));
  EXPECT_TRUE(d.contains(1.0));
  const Interval n = -a;
  EXPECT_DOUBLE_EQ(n.lo(), -2.0);
  EXPECT_DOUBLE_EQ(n.hi(), -1.0);
}

TEST(Interval, MultiplicationSignCasesAndZeroConvention) {
  const Interval m = Interval(-2.0, 3.0) * Interval(-1.0, 4.0);
  EXPECT_TRUE(m.contains(12.0));   // 3 * 4
  EXPECT_TRUE(m.contains(-8.0));   // -2 * 4
  EXPECT_TRUE(m.contains(2.0));    // -2 * -1
  // The 0 * inf = 0 convention: a hard zero annihilates the universe
  // (needed so "exactly zero conductance" stays zero against an unbounded
  // voltage). Outward rounding may still widen the result by one ulp of
  // zero, so the check is "bounded and tiny", not "exact singleton".
  const Interval z = Interval(0.0) * Interval::universe();
  EXPECT_TRUE(z.contains(0.0));
  EXPECT_TRUE(z.is_bounded());
  EXPECT_LE(z.width(), 1e-300);
}

TEST(Interval, DivisionByZeroStraddlingDivisorIsUniverse) {
  EXPECT_TRUE((Interval(1.0, 2.0) / Interval(-1.0, 1.0)).is_universe());
  EXPECT_TRUE((Interval(1.0) / Interval(0.0)).is_universe());
  EXPECT_TRUE((Interval(1.0) / Interval(0.0, 5.0)).is_universe());
  // A strictly-positive divisor divides normally, with outward rounding.
  const Interval q = Interval(1.0) / Interval(3.0);
  EXPECT_TRUE(q.contains(1.0 / 3.0));
  EXPECT_GT(q.width(), 0.0);
  EXPECT_NEAR(q.lo(), 1.0 / 3.0, 1e-15);
}

TEST(Interval, EmptyPropagatesThroughArithmetic) {
  const Interval e = Interval::empty();
  const Interval a(1.0, 2.0);
  EXPECT_TRUE((e + a).is_empty());
  EXPECT_TRUE((a - e).is_empty());
  EXPECT_TRUE((e * a).is_empty());
  EXPECT_TRUE((e / a).is_empty());
  EXPECT_TRUE((-e).is_empty());
  EXPECT_TRUE(e.widened(1.0).is_empty());
}

TEST(Interval, UniversePropagatesThroughAddition) {
  const Interval u = Interval::universe();
  EXPECT_TRUE((u + Interval(1.0)).is_universe());
  EXPECT_TRUE((Interval(1.0) - u).is_universe());
  EXPECT_FALSE((u + Interval(1.0)).is_empty());
}

TEST(Interval, HullAndIntersect) {
  EXPECT_EQ(Interval::hull(Interval(0.0, 1.0), Interval(2.0, 3.0)),
            Interval(0.0, 3.0));
  EXPECT_EQ(Interval::hull(Interval::empty(), Interval(1.0, 2.0)),
            Interval(1.0, 2.0));
  EXPECT_EQ(Interval::intersect(Interval(0.0, 2.0), Interval(1.0, 3.0)),
            Interval(1.0, 2.0));
  EXPECT_TRUE(
      Interval::intersect(Interval(0.0, 1.0), Interval(2.0, 3.0)).is_empty());
  Interval acc = Interval::empty();
  acc |= Interval(1.0);
  acc |= Interval(-1.0);
  EXPECT_EQ(acc, Interval(-1.0, 1.0));
  acc &= Interval(0.0, 5.0);
  EXPECT_EQ(acc, Interval(0.0, 1.0));
}

TEST(Interval, WidenedExpandsBothSides) {
  const Interval w = Interval(1.0, 2.0).widened(0.25);
  EXPECT_TRUE(w.contains(0.75));
  EXPECT_TRUE(w.contains(2.25));
  EXPECT_FALSE(w.contains(0.5));
}

TEST(Interval, ArithmeticIsInclusionMonotone) {
  // a subset of A and b subset of B implies (a op b) subset of (A op B) —
  // the property the fixpoint engine relies on when it narrows operands.
  const Interval big_a(-2.0, 5.0), big_b(0.5, 4.0);
  const Interval small_a(-1.0, 2.0), small_b(1.0, 3.0);
  ASSERT_TRUE(big_a.contains(small_a));
  ASSERT_TRUE(big_b.contains(small_b));
  EXPECT_TRUE((big_a + big_b).contains(small_a + small_b));
  EXPECT_TRUE((big_a - big_b).contains(small_a - small_b));
  EXPECT_TRUE((big_a * big_b).contains(small_a * small_b));
  EXPECT_TRUE((big_a / big_b).contains(small_a / small_b));
}

TEST(Interval, SampledContainmentAgainstPointArithmetic) {
  // Deterministic sample grid: every point product/quotient must land in
  // the interval result (the definition of soundness for the domain).
  const Interval a(-1.5, 2.25), b(0.25, 3.0);
  const Interval sum = a + b, dif = a - b, prod = a * b, quot = a / b;
  for (int i = 0; i <= 8; ++i) {
    const double x = a.lo() + (a.hi() - a.lo()) * i / 8.0;
    for (int j = 0; j <= 8; ++j) {
      const double y = b.lo() + (b.hi() - b.lo()) * j / 8.0;
      EXPECT_TRUE(sum.contains(x + y)) << x << "+" << y;
      EXPECT_TRUE(dif.contains(x - y)) << x << "-" << y;
      EXPECT_TRUE(prod.contains(x * y)) << x << "*" << y;
      EXPECT_TRUE(quot.contains(x / y)) << x << "/" << y;
    }
  }
}

TEST(Interval, InfiniteEndpointsSurviveRounding) {
  const Interval half_line(0.0, kInf);
  EXPECT_FALSE(half_line.is_bounded());
  EXPECT_FALSE(half_line.is_universe());
  const Interval shifted = half_line + Interval(1.0);
  EXPECT_TRUE(shifted.contains(1e308));
  EXPECT_FALSE(shifted.contains(0.0));
}

TEST(Interval, StrSmoke) {
  EXPECT_EQ(Interval::empty().str(), "(empty)");
  EXPECT_EQ(Interval::universe().str(), "(unbounded)");
  EXPECT_NE(Interval(1.0, 2.0).str().find("1"), std::string::npos);
}
