// Behavioural array model tests: calibration fidelity vs the circuit
// simulation, ADC decode behaviour across temperature, noise injection,
// and text serialization round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "cim/behavioral.hpp"

namespace sfc::cim {
namespace {

const std::vector<double> kTemps = {0.0, 27.0, 85.0};

const BehavioralArrayModel& proposed_model() {
  static const BehavioralArrayModel model = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), kTemps);
  return model;
}

TEST(Behavioral, DecodeIsExactAtDesignTemperature) {
  const auto& m = proposed_model();
  for (int k = 0; k <= 8; ++k) {
    EXPECT_EQ(m.mac(k, 27.0), k);
  }
}

TEST(Behavioral, DecodeStaysExactAcrossTemperature) {
  // The whole point of the proposed cell: levels never cross the fixed ADC
  // thresholds between 0 and 85 degC.
  const auto& m = proposed_model();
  for (double t : {0.0, 10.0, 40.0, 60.0, 85.0}) {
    for (int k = 0; k <= 8; ++k) {
      EXPECT_EQ(m.mac(k, t), k) << "T=" << t << " k=" << k;
    }
  }
}

TEST(Behavioral, BaselineArrayMisdecodesSomewhere) {
  const BehavioralArrayModel m = BehavioralArrayModel::calibrate(
      ArrayConfig::baseline_1r_subthreshold(), kTemps);
  int errors = 0;
  for (double t : {0.0, 85.0}) {
    for (int k = 0; k <= 8; ++k) {
      if (m.mac(k, t) != k) ++errors;
    }
  }
  EXPECT_GT(errors, 0);
}

TEST(Behavioral, VaccInterpolatesBetweenCalibratedTemps) {
  const auto& m = proposed_model();
  const double v_lo = m.v_acc(5, 27.0);
  const double v_hi = m.v_acc(5, 85.0);
  const double v_mid = m.v_acc(5, 56.0);
  EXPECT_GT(v_mid, std::min(v_lo, v_hi));
  EXPECT_LT(v_mid, std::max(v_lo, v_hi));
  // Clamped outside the grid.
  EXPECT_DOUBLE_EQ(m.v_acc(5, -20.0), m.v_acc(5, 0.0));
  EXPECT_DOUBLE_EQ(m.v_acc(5, 125.0), m.v_acc(5, 85.0));
}

TEST(Behavioral, ThresholdsAreMonotone) {
  const auto& m = proposed_model();
  const auto& th = m.thresholds();
  ASSERT_EQ(th.size(), 8u);
  for (std::size_t i = 1; i < th.size(); ++i) {
    EXPECT_GT(th[i], th[i - 1]);
  }
}

TEST(Behavioral, NoiseInjectionFlipsSomeDecodes) {
  BehavioralArrayModel m = proposed_model();
  // No calibrated sigma -> noise draw changes nothing.
  util::Rng rng(1);
  EXPECT_EQ(m.mac(4, 27.0, &rng), 4);

  // With a synthetic sigma comparable to the level spacing, decodes flip.
  const std::string text = m.to_text();
  BehavioralArrayModel noisy = BehavioralArrayModel::from_text(text);
  // Round-trip keeps behaviour; now test the noise path via a model whose
  // sigma we can't set directly - so instead sample decode() around a
  // threshold explicitly:
  const double th = m.thresholds()[3];
  EXPECT_EQ(m.decode(th - 1e-6), 3);
  EXPECT_EQ(m.decode(th + 1e-6), 4);
}

TEST(Behavioral, SerializationRoundTrip) {
  const auto& m = proposed_model();
  const std::string text = m.to_text();
  const BehavioralArrayModel copy = BehavioralArrayModel::from_text(text);
  EXPECT_EQ(copy.cells(), m.cells());
  for (int k = 0; k <= 8; ++k) {
    EXPECT_NEAR(copy.v_acc(k, 40.0), m.v_acc(k, 40.0), 1e-9);
    EXPECT_DOUBLE_EQ(copy.sigma(k), m.sigma(k));
  }
  EXPECT_EQ(copy.thresholds().size(), m.thresholds().size());
}

TEST(Behavioral, RejectsCorruptText) {
  EXPECT_THROW(BehavioralArrayModel::from_text("garbage"),
               std::runtime_error);
  EXPECT_THROW(BehavioralArrayModel::from_text("sfc-behavioral-v1\n0 27 0\n"),
               std::runtime_error);
}

TEST(Behavioral, FileCacheRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sfc_beh_cache.txt").string();
  std::filesystem::remove(path);
  const BehavioralArrayModel m1 = BehavioralArrayModel::calibrate_cached(
      ArrayConfig::proposed_2t1fefet(), kTemps, path);
  ASSERT_TRUE(std::filesystem::exists(path));
  // Second call must load (fast path) and agree.
  const BehavioralArrayModel m2 = BehavioralArrayModel::calibrate_cached(
      ArrayConfig::proposed_2t1fefet(), kTemps, path);
  EXPECT_NEAR(m1.v_acc(8, 27.0), m2.v_acc(8, 27.0), 1e-9);
  std::filesystem::remove(path);
}

TEST(Behavioral, CalibrationWithVariationPopulatesSigma) {
  MonteCarloConfig mc;
  mc.runs = 5;
  mc.sigma_vt_fefet = 0.054;
  const BehavioralArrayModel m = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), {27.0}, &mc);
  double sigma_sum = 0.0;
  for (int k = 1; k <= 8; ++k) sigma_sum += m.sigma(k);
  EXPECT_GT(sigma_sum, 0.0);
}

}  // namespace
}  // namespace sfc::cim
