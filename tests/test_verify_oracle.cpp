// Differential-oracle layer: every built-in oracle pair agrees, and an
// injected divergence is reported with the correct first-divergence
// coordinates.
#include <gtest/gtest.h>

#include "verify/oracle.hpp"

namespace sfc::verify {
namespace {

TEST(VerifyOracle, AllBuiltInOraclePairsMatch) {
  const auto& cases = oracle_cases();
  ASSERT_EQ(cases.size(), 4u);
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const OracleReport rep = c.run();
    EXPECT_TRUE(rep.match) << rep.summary();
    EXPECT_GT(rep.points_compared, 0u);
    EXPECT_EQ(rep.divergences, 0u);
    EXPECT_FALSE(rep.first.has_value());
  }
}

TEST(VerifyOracle, StampPlanTransientComparesEveryTimeStep) {
  const OracleReport rep = oracle_stampplan_vs_legacy_transient();
  EXPECT_TRUE(rep.match) << rep.summary();
  // time vector + all recorded signals + energy + v_acc: thousands of
  // points, so a single-step divergence anywhere in the waveform is seen.
  EXPECT_GT(rep.points_compared, 1000u);
}

TEST(VerifyOracle, InjectedDivergenceReportsFirstPoint) {
  OracleReport rep;
  rep.name = "injected";
  rep.diff_series(
      "v(acc)", {1.0, 2.0, 3.0, 4.0}, {1.0, 2.5, 3.0, 5.0},
      /*tol_abs=*/0.1, /*tol_rel=*/0.0,
      [](std::size_t i) { return "t=" + std::to_string(i) + "ns"; });
  EXPECT_FALSE(rep.match);
  EXPECT_EQ(rep.points_compared, 4u);
  EXPECT_EQ(rep.divergences, 2u);  // indices 1 and 3
  ASSERT_TRUE(rep.first.has_value());
  EXPECT_EQ(rep.first->quantity, "v(acc)");
  EXPECT_EQ(rep.first->index, 1u);
  EXPECT_EQ(rep.first->label, "t=1ns");
  EXPECT_DOUBLE_EQ(rep.first->a, 2.0);
  EXPECT_DOUBLE_EQ(rep.first->b, 2.5);
  // The summary names the diverging coordinate for the human report.
  EXPECT_NE(rep.summary().find("v(acc)[1]"), std::string::npos);
  EXPECT_NE(rep.summary().find("t=1ns"), std::string::npos);
}

TEST(VerifyOracle, ZeroToleranceMeansBitExact) {
  OracleReport rep;
  rep.diff_series("x", {1.0}, {1.0 + 1e-15});
  EXPECT_FALSE(rep.match);
  OracleReport rep2;
  rep2.diff_series("x", {1.0}, {1.0});
  EXPECT_TRUE(rep2.match);
}

TEST(VerifyOracle, RelativeToleranceScalesWithMagnitude) {
  OracleReport rep;
  rep.diff_series("x", {1e6, 1e-6}, {1e6 + 0.5, 1e-6 + 0.5}, 0.0, 1e-3);
  EXPECT_FALSE(rep.match);
  ASSERT_TRUE(rep.first.has_value());
  EXPECT_EQ(rep.first->index, 1u);  // big value passes, small one diverges
}

TEST(VerifyOracle, LengthMismatchIsStructuralFailure) {
  OracleReport rep;
  rep.diff_series("x", {1.0, 2.0}, {1.0});
  EXPECT_FALSE(rep.match);
  ASSERT_EQ(rep.notes.size(), 1u);
  EXPECT_NE(rep.notes.front().find("length mismatch"), std::string::npos);
  EXPECT_FALSE(rep.first.has_value());  // no point-level divergence
}

TEST(VerifyOracle, NonFiniteValuesDiverge) {
  OracleReport rep;
  rep.diff_series("x", {std::numeric_limits<double>::quiet_NaN()},
                  {std::numeric_limits<double>::quiet_NaN()}, 1e9, 0.0);
  EXPECT_FALSE(rep.match) << "NaN == NaN must not pass an oracle";
}

}  // namespace
}  // namespace sfc::verify
