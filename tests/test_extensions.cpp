// Tests for the reproduction's extension features: process corners,
// temperature-tracking ADC references, and configurable wordlengths.
#include <gtest/gtest.h>

#include "cim/behavioral.hpp"
#include "cim/mac.hpp"
#include "cim/montecarlo.hpp"
#include "nn/cim_engine.hpp"

namespace {

using namespace sfc;
using namespace sfc::cim;

TEST(Corners, StandardSetIsSane) {
  const auto corners = standard_corners();
  ASSERT_EQ(corners.size(), 3u);
  EXPECT_STREQ(corners[0].name, "TT");
  EXPECT_DOUBLE_EQ(corners[0].dvth, 0.0);
  EXPECT_GT(corners[1].dvth, 0.0);  // SS: slower, higher VTH
  EXPECT_LT(corners[1].mobility_scale, 1.0);
  EXPECT_LT(corners[2].dvth, 0.0);  // FF
}

TEST(Corners, ApplyShiftsEveryDevice) {
  const ProcessCorner ss = standard_corners()[1];
  const ArrayConfig base = ArrayConfig::proposed_2t1fefet();
  const ArrayConfig shifted = apply_corner(base, ss);
  EXPECT_NEAR(shifted.cell2t.m1.vth0 - base.cell2t.m1.vth0, ss.dvth, 1e-12);
  EXPECT_NEAR(shifted.cell2t.m2.vth0 - base.cell2t.m2.vth0, ss.dvth, 1e-12);
  EXPECT_NEAR(shifted.cell2t.fefet.ferroelectric.vth_low -
                  base.cell2t.fefet.ferroelectric.vth_low,
              ss.dvth, 1e-12);
  EXPECT_NEAR(shifted.cell2t.fefet.channel.mu0 /
                  base.cell2t.fefet.channel.mu0,
              ss.mobility_scale, 1e-12);
}

TEST(Corners, TtCornerIsIdentity) {
  const ArrayConfig base = ArrayConfig::proposed_2t1fefet();
  const ArrayConfig tt = apply_corner(base, standard_corners()[0]);
  EXPECT_DOUBLE_EQ(tt.cell2t.m1.vth0, base.cell2t.m1.vth0);
  EXPECT_DOUBLE_EQ(tt.cell2t.fefet.channel.mu0, base.cell2t.fefet.channel.mu0);
}

TEST(Corners, FastCornerKeepsSeparability) {
  const ArrayConfig ff =
      apply_corner(ArrayConfig::proposed_2t1fefet(), standard_corners()[2]);
  const auto nmr = summarize_nmr(mac_level_sweep(ff, {0.0, 27.0, 85.0}).levels);
  EXPECT_TRUE(nmr.separable);
}

TEST(TrackingAdc, ExactOnProposedFabric) {
  const BehavioralArrayModel m = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});
  for (double t : {0.0, 40.0, 85.0}) {
    for (int k = 0; k <= 8; ++k) {
      EXPECT_EQ(m.mac_tracking(k, t), k);
    }
  }
}

TEST(TrackingAdc, RescuesBaselineSystematicShift) {
  const BehavioralArrayModel baseline = BehavioralArrayModel::calibrate(
      ArrayConfig::baseline_1r_subthreshold(), {0.0, 27.0, 85.0});
  int fixed_errors = 0;
  int tracking_errors = 0;
  for (double t : {0.0, 85.0}) {
    for (int k = 0; k <= 8; ++k) {
      if (baseline.mac(k, t) != k) ++fixed_errors;
      if (baseline.mac_tracking(k, t) != k) ++tracking_errors;
    }
  }
  EXPECT_GT(fixed_errors, 0);
  EXPECT_LT(tracking_errors, fixed_errors);
}

TEST(TrackingAdc, MatchesFixedAtDesignTemperature) {
  const BehavioralArrayModel m = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});
  for (int k = 0; k <= 8; ++k) {
    const double v = m.v_acc(k, 27.0);
    EXPECT_EQ(m.decode(v), m.decode_tracking(v, 27.0));
  }
}

TEST(Wordlength, QuantizeOptionsArithmetic) {
  nn::QuantizeOptions q4;
  q4.activation_bits = 4;
  q4.weight_bits = 4;
  EXPECT_EQ(q4.activation_levels(), 15);
  EXPECT_EQ(q4.weight_magnitude_max(), 7);
  nn::QuantizeOptions q8;
  EXPECT_EQ(q8.activation_levels(), 255);
  EXPECT_EQ(q8.weight_magnitude_max(), 127);
}

TEST(Wordlength, NarrowEngineMatchesIdealOnNarrowData) {
  static const BehavioralArrayModel model = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), {27.0});
  nn::CimDotEngine::Options opts;
  opts.activation_bits = 4;
  opts.weight_bits = 4;
  nn::CimDotEngine cim(model, opts);
  nn::IdealDotEngine ideal;
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> a(48);
    std::vector<std::int8_t> w(48);
    for (std::size_t i = 0; i < a.size(); ++i) {
      a[i] = static_cast<std::uint8_t>(rng.uniform_index(16));   // 4-bit
      w[i] = static_cast<std::int8_t>(
          static_cast<int>(rng.uniform_index(15)) - 7);           // 4-bit
    }
    EXPECT_EQ(cim.dot(a, w), ideal.dot(a, w)) << "trial " << trial;
  }
}

TEST(Wordlength, RowOpsScaleWithBits) {
  static const BehavioralArrayModel model = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), {27.0});
  auto ops_for = [&](int bits) {
    nn::CimDotEngine::Options opts;
    opts.activation_bits = bits;
    opts.weight_bits = bits;
    nn::CimDotEngine engine(model, opts);
    const std::vector<std::uint8_t> a(64, 1);
    const std::vector<std::int8_t> w(64, 1);
    engine.dot(a, w);
    return engine.row_ops();
  };
  // groups(8) x bits x (bits-1) x 2 (pos/neg).
  EXPECT_EQ(ops_for(4), 8LL * 4 * 3 * 2);
  EXPECT_EQ(ops_for(8), 8LL * 8 * 7 * 2);
}

}  // namespace
