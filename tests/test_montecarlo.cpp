// Monte Carlo process-variation tests (Fig. 9): determinism, error
// scaling with sigma, cells-per-row dependence, and histogram sanity.
#include <gtest/gtest.h>

#include "cim/montecarlo.hpp"
#include "util/histogram.hpp"

namespace sfc::cim {
namespace {

MonteCarloConfig quick_mc(int runs, double sigma) {
  MonteCarloConfig mc;
  mc.runs = runs;
  mc.sigma_vt_fefet = sigma;
  mc.mac_values = {0, 4, 8};  // subset for test speed
  return mc;
}

TEST(MonteCarlo, DeterministicForFixedSeed) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const MonteCarloResult a = run_montecarlo(cfg, quick_mc(5, 0.054));
  const MonteCarloResult b = run_montecarlo(cfg, quick_mc(5, 0.054));
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.samples[i].v_acc, b.samples[i].v_acc);
  }
}

TEST(MonteCarlo, ZeroSigmaMeansZeroError) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const MonteCarloResult r = run_montecarlo(cfg, quick_mc(3, 0.0));
  ASSERT_TRUE(r.all_converged);
  for (const auto& s : r.samples) {
    EXPECT_NEAR(s.error_percent, 0.0, 1e-6);
  }
}

TEST(MonteCarlo, ErrorGrowsWithSigma) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const MonteCarloResult small = run_montecarlo(cfg, quick_mc(8, 0.020));
  const MonteCarloResult large = run_montecarlo(cfg, quick_mc(8, 0.080));
  EXPECT_GT(large.mean_error_percent, small.mean_error_percent);
}

TEST(MonteCarlo, PaperSigmaKeepsErrorsBounded) {
  // Paper: max error ~25% of full scale at sigma = 54 mV, 100 runs. With a
  // reduced run count the band is the same order.
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const MonteCarloResult r = run_montecarlo(cfg, quick_mc(15, 0.054));
  ASSERT_TRUE(r.all_converged);
  EXPECT_GT(r.max_error_percent, 0.5);
  EXPECT_LT(r.max_error_percent, 40.0);
}

TEST(MonteCarlo, FewerCellsPerRowReduceSpacingRelativeError) {
  // Paper: error improves when reduced to 4 cells per row. The
  // ADC-relevant normalization is deviation per level spacing (fewer
  // cells aggregate less variation per level).
  ArrayConfig cfg8 = ArrayConfig::proposed_2t1fefet();
  ArrayConfig cfg4 = cfg8;
  cfg4.cells_per_row = 4;
  MonteCarloConfig mc = quick_mc(10, 0.054);
  mc.mac_values.clear();  // all MACs for both
  const MonteCarloResult r8 = run_montecarlo(cfg8, mc);
  const MonteCarloResult r4 = run_montecarlo(cfg4, mc);
  EXPECT_LT(r4.max_error_levels, r8.max_error_levels * 1.05);
}

TEST(MonteCarlo, NominalLevelsMonotone) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const MonteCarloResult r = run_montecarlo(cfg, quick_mc(1, 0.054));
  for (std::size_t k = 1; k < r.nominal_levels.size(); ++k) {
    EXPECT_GT(r.nominal_levels[k], r.nominal_levels[k - 1]);
  }
  EXPECT_GT(r.level_spacing, 0.0);
  EXPECT_NEAR(r.full_scale,
              r.nominal_levels.back() - r.nominal_levels.front(), 1e-12);
}

TEST(MonteCarlo, ErrorsFeedHistogram) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const MonteCarloResult r = run_montecarlo(cfg, quick_mc(6, 0.054));
  const auto errors = r.errors();
  ASSERT_FALSE(errors.empty());
  util::Histogram h(0.0, 30.0, 10);
  h.add_all(errors);
  EXPECT_EQ(h.total(), errors.size());
}

TEST(MonteCarlo, SampleMetadataConsistent) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  MonteCarloConfig mc = quick_mc(4, 0.054);
  const MonteCarloResult r = run_montecarlo(cfg, mc);
  EXPECT_EQ(r.samples.size(),
            static_cast<std::size_t>(mc.runs) * mc.mac_values.size());
  for (const auto& s : r.samples) {
    EXPECT_GE(s.run, 0);
    EXPECT_LT(s.run, mc.runs);
    EXPECT_TRUE(s.mac == 0 || s.mac == 4 || s.mac == 8);
    EXPECT_NEAR(s.error_levels * r.level_spacing,
                s.error_percent / 100.0 * r.full_scale, 1e-9);
  }
}

}  // namespace
}  // namespace sfc::cim
