// SynthCIFAR dataset tests: determinism, split disjointness, value ranges,
// class balance, and intra- vs inter-class structure.
#include <gtest/gtest.h>

#include <cmath>

#include "data/synth_cifar.hpp"
#include "util/stats.hpp"

namespace sfc::data {
namespace {

SynthCifarConfig tiny() {
  SynthCifarConfig cfg;
  cfg.train_per_class = 8;
  cfg.test_per_class = 4;
  return cfg;
}

TEST(SynthCifar, ShapesAndRanges) {
  const Dataset ds = make_synth_cifar_train(tiny());
  ASSERT_EQ(ds.size(), 80u);
  for (const auto& img : ds.images) {
    ASSERT_EQ(img.pixels.size(),
              static_cast<std::size_t>(3 * 32 * 32));
    EXPECT_GE(img.label, 0);
    EXPECT_LT(img.label, Dataset::kNumClasses);
    for (float p : img.pixels) {
      EXPECT_GE(p, 0.0f);
      EXPECT_LE(p, 1.0f);
    }
  }
}

TEST(SynthCifar, DeterministicGeneration) {
  const Dataset a = make_synth_cifar_train(tiny());
  const Dataset b = make_synth_cifar_train(tiny());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.images[i].label, b.images[i].label);
    EXPECT_EQ(a.images[i].pixels, b.images[i].pixels);
  }
}

TEST(SynthCifar, TrainTestDiffer) {
  const Dataset train = make_synth_cifar_train(tiny());
  const Dataset test = make_synth_cifar_test(tiny());
  EXPECT_EQ(test.size(), 40u);
  // Same class, different streams: pixel data must differ.
  bool any_equal = false;
  for (std::size_t i = 0; i < std::min(train.size(), test.size()); ++i) {
    if (train.images[i].pixels == test.images[i].pixels) any_equal = true;
  }
  EXPECT_FALSE(any_equal);
}

TEST(SynthCifar, ClassBalance) {
  const Dataset ds = make_synth_cifar_train(tiny());
  std::vector<int> counts(Dataset::kNumClasses, 0);
  for (const auto& img : ds.images) ++counts[static_cast<std::size_t>(img.label)];
  for (int c : counts) EXPECT_EQ(c, 8);
}

TEST(SynthCifar, ShuffledNotClassSorted) {
  const Dataset ds = make_synth_cifar_train(tiny());
  int transitions = 0;
  for (std::size_t i = 1; i < ds.size(); ++i) {
    if (ds.images[i].label != ds.images[i - 1].label) ++transitions;
  }
  // Class-sorted data would have exactly 9 transitions.
  EXPECT_GT(transitions, 20);
}

TEST(SynthCifar, IntraClassMoreSimilarThanInterClass) {
  // Average L2 distance between images of the same class must be smaller
  // than between different classes - i.e. the task is learnable.
  SynthCifarConfig cfg = tiny();
  cfg.noise_sigma = 0.05;
  util::Rng rng(3);
  auto distance = [](const Image& a, const Image& b) {
    double d = 0.0;
    for (std::size_t i = 0; i < a.pixels.size(); ++i) {
      const double diff = a.pixels[i] - b.pixels[i];
      d += diff * diff;
    }
    return std::sqrt(d);
  };
  double intra = 0.0, inter = 0.0;
  int n_intra = 0, n_inter = 0;
  for (int c = 0; c < 4; ++c) {
    const Image x1 = make_synth_image(c, rng, cfg);
    const Image x2 = make_synth_image(c, rng, cfg);
    intra += distance(x1, x2);
    ++n_intra;
    const Image y = make_synth_image((c + 5) % 10, rng, cfg);
    inter += distance(x1, y);
    ++n_inter;
  }
  EXPECT_LT(intra / n_intra, inter / n_inter);
}

TEST(SynthCifar, ClassNamesExist) {
  for (int c = 0; c < Dataset::kNumClasses; ++c) {
    EXPECT_NE(class_name(c), nullptr);
    EXPECT_GT(std::string(class_name(c)).size(), 0u);
  }
}

TEST(SynthCifar, SeedChangesData) {
  SynthCifarConfig a = tiny();
  SynthCifarConfig b = tiny();
  b.seed = a.seed + 1;
  const Dataset da = make_synth_cifar_train(a);
  const Dataset db = make_synth_cifar_train(b);
  EXPECT_NE(da.images[0].pixels, db.images[0].pixels);
}

}  // namespace
}  // namespace sfc::data
