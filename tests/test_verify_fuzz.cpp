// Property-based netlist fuzzer: the 200-case campaign passes
// deterministically, generated decks round-trip through the SPICE parser,
// and a forced invariant failure yields a minimized .cir reproducer.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "spice/circuit.hpp"
#include "spice/netlist.hpp"
#include "trace/trace.hpp"
#include "verify/fuzz.hpp"

namespace sfc::verify {
namespace {

// Acceptance gate: >= 200 seeded random netlists, deterministic, well
// inside the 60 s ctest budget (the whole campaign runs in ~1 s).
TEST(VerifyFuzz, Campaign200CasesPassesAndIsDeterministic) {
  FuzzOptions opt;
  opt.count = 200;
  opt.dump_dir = testing::TempDir();
  const FuzzReport a = run_fuzz(opt);
  EXPECT_TRUE(a.pass()) << a.summary();
  EXPECT_EQ(a.executed, 200);
  int total = 0;
  for (int c = 0; c < 4; ++c) {
    EXPECT_GT(a.per_class[c], 0) << "class " << c << " never generated";
    total += a.per_class[c];
  }
  EXPECT_EQ(total, 200);

  const FuzzReport b = run_fuzz(opt);
  EXPECT_EQ(a.observable_hash, b.observable_hash)
      << "same options must reproduce bit-identical observables";
}

TEST(VerifyFuzz, DifferentSeedsExploreDifferentCircuits) {
  FuzzOptions opt;
  opt.count = 20;
  opt.dump_dir = testing::TempDir();
  const FuzzReport a = run_fuzz(opt);
  opt.seed ^= 0xdeadbeefULL;
  const FuzzReport b = run_fuzz(opt);
  EXPECT_NE(a.observable_hash, b.observable_hash);
}

TEST(VerifyFuzz, GeneratedDecksRoundTripThroughParser) {
  const FuzzOptions opt;
  int parsed_devices = 0;
  for (int i = 0; i < 40; ++i) {
    const FuzzNetlist nl = generate_netlist(opt, i);
    SCOPED_TRACE(std::string(fuzz_class_name(nl.cls)) + " #" +
                 std::to_string(i));
    const std::string deck = nl.to_cir("unit-test");
    spice::Circuit circuit;
    spice::NetlistDeck directives;
    ASSERT_NO_THROW(directives = spice::parse_netlist(deck, circuit)) << deck;
    if (nl.cls == FuzzClass::kCimRow) continue;  // comment-only deck
    EXPECT_EQ(circuit.devices().size(), nl.devices.size()) << deck;
    EXPECT_TRUE(directives.has_temperature);
    EXPECT_NEAR(directives.temperature_c, nl.temperature_c, 1e-9);
    if (nl.t_stop > 0.0) {
      ASSERT_EQ(directives.tran.size(), 1u);
      EXPECT_NEAR(directives.tran.front().t_stop, nl.t_stop, 1e-18);
    }
    parsed_devices += static_cast<int>(circuit.devices().size());
  }
  EXPECT_GT(parsed_devices, 100);
}

TEST(VerifyFuzz, ForcedFailureProducesMinimizedReproducer) {
  FuzzOptions opt;
  opt.count = 30;
  opt.dump_dir = testing::TempDir();
  // Impossible tolerance: every charge-share case must now "fail", which
  // exercises the shrinking + reproducer-dump path end to end.
  opt.charge_tol_rel = 0.0;
  opt.charge_tol_abs = 1e-30;
  const FuzzReport rep = run_fuzz(opt);
  ASSERT_FALSE(rep.pass());
  ASSERT_FALSE(rep.failures.empty());

  const FuzzFailure& f = rep.failures.front();
  EXPECT_EQ(f.invariant, "charge_conservation");
  EXPECT_FALSE(f.detail.empty());
  EXPECT_LE(f.devices_after_shrink, f.devices_before_shrink);
  EXPECT_GT(f.devices_after_shrink, 0);

  // The minimized netlist still violates the same invariant...
  const auto still_failing = check_invariants(f.minimized, opt);
  ASSERT_TRUE(still_failing.has_value());
  EXPECT_EQ(still_failing->invariant, f.invariant);
  // ...and no single further device removal keeps it failing (1-minimal).
  for (std::size_t i = 0; i < f.minimized.devices.size(); ++i) {
    FuzzNetlist smaller = f.minimized;
    smaller.devices.erase(smaller.devices.begin() +
                          static_cast<std::ptrdiff_t>(i));
    const auto g = check_invariants(smaller, opt);
    EXPECT_FALSE(g && g->invariant == f.invariant)
        << "device " << i << " was removable";
  }

  // The dumped artifact exists, carries provenance, and parses.
  ASSERT_FALSE(f.reproducer_path.empty());
  std::ifstream in(f.reproducer_path);
  ASSERT_TRUE(in.good()) << f.reproducer_path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string deck = ss.str();
  EXPECT_NE(deck.find("charge_conservation"), std::string::npos);
  EXPECT_NE(deck.find("seed=0x"), std::string::npos);
  spice::Circuit circuit;
  ASSERT_NO_THROW(spice::parse_netlist(deck, circuit)) << deck;
  EXPECT_EQ(circuit.devices().size(), f.minimized.devices.size());
}

#if SFC_TRACE_ENABLED
// SpanScope's exception-safety contract, exercised at campaign scale: a
// fuzz run under an active tracer — including a forced-failure campaign
// that drives the engine's error and shrink paths — must end with zero
// open spans on the asserting thread.
TEST(VerifyFuzz, TracedCampaignLeavesNoSpanOpen) {
  trace::Tracer& tracer = trace::Tracer::global();
  tracer.start();
  trace::TestProbe probe;

  FuzzOptions opt;
  opt.count = 60;
  opt.dump_dir = testing::TempDir();
  const FuzzReport ok = run_fuzz(opt);
  EXPECT_TRUE(ok.pass()) << ok.summary();

  // Impossible tolerance: every charge-share case fails its invariant,
  // so shrinking repeatedly re-simulates partial netlists — lots of
  // engine entries/exits, some through non-converged paths.
  opt.charge_tol_rel = 0.0;
  opt.charge_tol_abs = 1e-30;
  const FuzzReport bad = run_fuzz(opt);
  EXPECT_FALSE(bad.pass());

  tracer.stop();
  EXPECT_EQ(trace::open_span_count(), 0)
      << "an engine error path leaked an open span";
  EXPECT_GT(tracer.event_count(), 0u);
  EXPECT_GT(probe.counter_delta("spice.newton.iterations"), 0u);
}
#else
TEST(VerifyFuzz, TracedCampaignLeavesNoSpanOpen) {
  GTEST_SKIP() << "built with SFC_TRACE=OFF; spans compile to no-ops";
}
#endif

TEST(VerifyFuzz, ShrinkerIsIdentityOnPassingNetlist) {
  const FuzzOptions opt;
  const FuzzNetlist nl = generate_netlist(opt, 0);
  ASSERT_FALSE(check_invariants(nl, opt).has_value());
  const FuzzNetlist same = shrink_netlist(nl, opt);
  EXPECT_EQ(same.devices.size(), nl.devices.size());
}

TEST(VerifyFuzz, ClassMixMatchesSchedule) {
  const FuzzOptions opt;
  // Index 13 of every 25-block is the paper-shaped CiM row; the rest
  // cycle through the three generic classes.
  EXPECT_EQ(generate_netlist(opt, 13).cls, FuzzClass::kCimRow);
  EXPECT_EQ(generate_netlist(opt, 38).cls, FuzzClass::kCimRow);
  EXPECT_EQ(generate_netlist(opt, 0).cls, FuzzClass::kDcKcl);
  EXPECT_EQ(generate_netlist(opt, 1).cls, FuzzClass::kChargeShare);
  EXPECT_EQ(generate_netlist(opt, 2).cls, FuzzClass::kSubthresholdTemp);
  FuzzOptions no_cim = opt;
  no_cim.include_cim_rows = false;
  EXPECT_NE(generate_netlist(no_cim, 13).cls, FuzzClass::kCimRow);
}

}  // namespace
}  // namespace sfc::verify
