// Array-level tests: MAC correctness (Eq. 1 behaviour), level monotonicity
// and separability across temperature (Figs. 4 and 8), energy accounting,
// pattern invariance, and write-path programming.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/energy.hpp"
#include "cim/mac.hpp"

namespace sfc::cim {
namespace {

const std::vector<double> kTemps = {0.0, 27.0, 85.0};

TEST(CiMRow, MacLevelsMonotoneAtRoomTemperature) {
  CiMRow row(ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(8, 1));
  double prev = -1.0;
  for (int k = 0; k <= 8; ++k) {
    std::vector<int> inputs(8, 0);
    for (int i = 0; i < k; ++i) inputs[static_cast<std::size_t>(i)] = 1;
    const MacResult r = row.evaluate(inputs, 27.0);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.v_acc, prev) << "k=" << k;
    prev = r.v_acc;
  }
}

TEST(CiMRow, MacDependsOnCountNotPattern) {
  // Any pattern with the same number of active (1,1) pairs must give
  // nearly the same output.
  CiMRow row(ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(8, 1));
  const std::vector<std::vector<int>> patterns = {
      {1, 1, 1, 0, 0, 0, 0, 0},
      {0, 0, 0, 0, 0, 1, 1, 1},
      {1, 0, 1, 0, 1, 0, 0, 0},
  };
  std::vector<double> outs;
  for (const auto& p : patterns) {
    const MacResult r = row.evaluate(p, 27.0);
    ASSERT_TRUE(r.converged);
    outs.push_back(r.v_acc);
  }
  for (double v : outs) {
    EXPECT_NEAR(v, outs[0], 1e-4);
  }
}

TEST(CiMRow, StoredZeroAndInputZeroEquivalent) {
  CiMRow row(ArrayConfig::proposed_2t1fefet());
  // 3 active by input gating.
  row.set_stored(std::vector<int>(8, 1));
  const MacResult by_input =
      row.evaluate({1, 1, 1, 0, 0, 0, 0, 0}, 27.0);
  // 3 active by storage gating.
  row.set_stored({1, 1, 1, 0, 0, 0, 0, 0});
  const MacResult by_weight = row.evaluate(std::vector<int>(8, 1), 27.0);
  EXPECT_NEAR(by_input.v_acc, by_weight.v_acc,
              0.15 * std::fabs(by_input.v_acc));
}

TEST(CiMRow, ChargeShareFollowsEq1Scaling) {
  // V_acc = C0 / (n*C0 + Cacc) * sum(V_Oi): compare the measured ratio
  // V_acc / sum(V_Oi) to the capacitor-ratio prediction.
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  CiMRow row(cfg);
  row.set_stored(std::vector<int>(8, 1));
  const MacResult r = row.evaluate(std::vector<int>(8, 1), 27.0);
  ASSERT_TRUE(r.converged);
  double v_sum = 0.0;
  for (double v : r.v_cell) v_sum += v;
  const double predicted =
      cfg.cell2t.c0 / (8.0 * cfg.cell2t.c0 + cfg.sense.c_acc);
  EXPECT_NEAR(r.v_acc / v_sum, predicted, predicted * 0.1);
}

TEST(CiMRow, ProposedArraySeparableOverTemperature) {
  // Fig. 8(a): no overlapping MAC levels from 0 to 85 degC.
  const LevelSweepResult sweep =
      mac_level_sweep(ArrayConfig::proposed_2t1fefet(), kTemps);
  ASSERT_TRUE(sweep.all_converged);
  const NmrSummary nmr = summarize_nmr(sweep.levels);
  EXPECT_TRUE(nmr.separable);
  EXPECT_GT(nmr.nmr_min, 0.1);
}

TEST(CiMRow, BaselineArrayOverlapsOverTemperature) {
  // Fig. 4: the subthreshold 1FeFET-1R array has overlapping outputs.
  const LevelSweepResult sweep =
      mac_level_sweep(ArrayConfig::baseline_1r_subthreshold(), kTemps);
  const NmrSummary nmr = summarize_nmr(sweep.levels);
  EXPECT_FALSE(nmr.separable);
  EXPECT_LT(nmr.nmr_min, 0.0);
}

TEST(CiMRow, WarmRangeNmrImproves) {
  // Paper: NMR_min rises from 0.22 (0-85C) to 2.3 (20-85C).
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const NmrSummary all =
      summarize_nmr(mac_level_sweep(cfg, {0.0, 27.0, 85.0}).levels);
  const NmrSummary warm =
      summarize_nmr(mac_level_sweep(cfg, {20.0, 27.0, 85.0}).levels);
  EXPECT_GT(warm.nmr_min, all.nmr_min);
}

TEST(CiMRow, EnergyScalesWithMacValue) {
  // Fig. 8(b): more active cells -> more charge moved -> more energy.
  const EnergySummary e = measure_energy(ArrayConfig::proposed_2t1fefet(),
                                         27.0);
  ASSERT_EQ(e.energy_per_op_by_mac.size(), 9u);
  EXPECT_GT(e.energy_per_op_by_mac[8], e.energy_per_op_by_mac[1]);
  EXPECT_GT(e.mean_energy_per_op, 0.0);
  // Ultra-low power: well below 10 fJ/op, TOPS/W in the 100s+.
  EXPECT_LT(e.mean_energy_per_op, 10e-15);
  EXPECT_GT(e.tops_per_watt, 100.0);
}

TEST(CiMRow, EnergyBreakdownSumsToTotal) {
  CiMRow row(ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(8, 1));
  MacResult r = row.evaluate(std::vector<int>(8, 1), 27.0,
                             /*keep_waveforms=*/true);
  ASSERT_TRUE(r.converged);
  const EnergyBreakdown b = energy_breakdown(r);
  EXPECT_NEAR(b.total_joules, r.energy_joules,
              std::fabs(r.energy_joules) * 1e-9);
  EXPECT_FALSE(b.per_source.empty());
  EXPECT_GT(b.tops_per_watt, 0.0);
}

TEST(CiMRow, ProgramPathMatchesDirectSet) {
  // Writing through the +-4V pulse protocol must land in the same state as
  // set_stored.
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  CiMRow programmed(cfg);
  programmed.program({1, 0, 1, 0, 1, 0, 1, 0});
  CiMRow forced(cfg);
  forced.set_stored({1, 0, 1, 0, 1, 0, 1, 0});
  EXPECT_EQ(programmed.stored(), forced.stored());

  const std::vector<int> inputs(8, 1);
  const MacResult rp = programmed.evaluate(inputs, 27.0);
  const MacResult rf = forced.evaluate(inputs, 27.0);
  EXPECT_NEAR(rp.v_acc, rf.v_acc, 0.02 * std::fabs(rf.v_acc) + 1e-4);
}

TEST(CiMRow, RepeatedEvaluationIsStable) {
  // Back-to-back MAC cycles must give identical results (caps reset by the
  // precharge ICs, FeFET state untouched by reads).
  CiMRow row(ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(8, 1));
  const std::vector<int> inputs = {1, 0, 1, 1, 0, 0, 1, 0};
  const MacResult r1 = row.evaluate(inputs, 27.0);
  const MacResult r2 = row.evaluate(inputs, 27.0);
  EXPECT_DOUBLE_EQ(r1.v_acc, r2.v_acc);
}

TEST(CiMRow, FourCellRowAlsoSeparable) {
  ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  cfg.cells_per_row = 4;
  const LevelSweepResult sweep = mac_level_sweep(cfg, kTemps);
  ASSERT_TRUE(sweep.all_converged);
  EXPECT_TRUE(summarize_nmr(sweep.levels).separable);
}

TEST(CiMRow, LatencyMatchesPaper) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  EXPECT_NEAR(cfg.timing.t_total(), 6.9e-9, 1e-12);
  // ops per MAC: 8 multiplications + 1 accumulation.
  CiMRow row(cfg);
  row.set_stored(std::vector<int>(8, 1));
  EXPECT_EQ(row.evaluate(std::vector<int>(8, 1), 27.0).ops, 9);
}

}  // namespace
}  // namespace sfc::cim
