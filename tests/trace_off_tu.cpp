// Compiled into test_trace with the trace gate forced OFF, while the rest
// of the binary keeps the build's default. Proves the SFC_TRACE=OFF
// contract at the language level: the SFC_TRACE_* macros expand to
// ((void)0), so no counter is registered and — crucially — macro arguments
// are never evaluated. Only the macros differ between the two flavours;
// the trace classes themselves are identical in both, so mixing the two
// TUs in one binary is ODR-clean.
#undef SFC_TRACE_ENABLED
#define SFC_TRACE_ENABLED 0
#include "trace/trace.hpp"

namespace sfc::trace::test_off {

int run_disabled_instrumentation() {
  int evaluations = 0;
  SFC_TRACE_SPAN("test.off_tu.span");
  SFC_TRACE_COUNT("test.off_tu.counter", ++evaluations);
  SFC_TRACE_GAUGE_ADD("test.off_tu.gauge", ++evaluations);
  SFC_TRACE_HIST("test.off_tu.histogram", ++evaluations);
  return evaluations;
}

}  // namespace sfc::trace::test_off
