// Property-based simulator tests on randomly generated linear networks:
// superposition, source scaling, reciprocity, power conservation, and
// AC/DC consistency at near-zero frequency. Each property is swept over
// many random circuits via TEST_P.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/engine.hpp"
#include "spice/primitives.hpp"
#include "util/rng.hpp"

namespace sfc::spice {
namespace {

/// A random connected resistor network with `num_nodes` nodes (plus
/// ground) built from a spanning chain + random chords.
struct RandomNetwork {
  Circuit circuit;
  std::vector<NodeId> nodes;
  int resistor_count = 0;

  explicit RandomNetwork(util::Rng& rng, std::size_t num_nodes = 6) {
    nodes.push_back(kGround);
    for (std::size_t i = 0; i < num_nodes; ++i) {
      nodes.push_back(circuit.node("n" + std::to_string(i)));
    }
    // Spanning chain keeps everything connected to ground.
    for (std::size_t i = 1; i < nodes.size(); ++i) {
      add_resistor(rng, nodes[i - 1], nodes[i]);
    }
    // Random chords.
    for (int extra = 0; extra < 6; ++extra) {
      const auto a = nodes[rng.uniform_index(nodes.size())];
      const auto b = nodes[rng.uniform_index(nodes.size())];
      if (a == b) continue;
      add_resistor(rng, a, b);
    }
  }

  void add_resistor(util::Rng& rng, NodeId a, NodeId b) {
    circuit.add<Resistor>("R" + std::to_string(resistor_count++), a, b,
                          rng.uniform(100.0, 10000.0));
  }
};

class LinearProperties : public ::testing::TestWithParam<int> {};

TEST_P(LinearProperties, SuperpositionOfTwoSources) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);

  // Build the same topology three times (solo A, solo B, both), by
  // regenerating with the identical RNG stream.
  auto build = [&](double ia, double ib) {
    util::Rng local(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
    auto net = std::make_unique<RandomNetwork>(local);
    net->circuit.add<ISource>("IA", kGround, net->nodes[1], ia);
    net->circuit.add<ISource>("IB", kGround, net->nodes.back(), ib);
    return net;
  };
  const double ia = rng.uniform(-2e-3, 2e-3);
  const double ib = rng.uniform(-2e-3, 2e-3);

  auto solve = [](Circuit& ckt) {
    Engine engine(ckt, 27.0);
    DcResult op = engine.dc_operating_point();
    EXPECT_TRUE(op.converged);
    return op;
  };

  auto net_a = build(ia, 0.0);
  auto net_b = build(0.0, ib);
  auto net_ab = build(ia, ib);
  const DcResult op_a = solve(net_a->circuit);
  const DcResult op_b = solve(net_b->circuit);
  const DcResult op_ab = solve(net_ab->circuit);

  for (const auto& [node, v_ab] : op_ab.voltages) {
    EXPECT_NEAR(v_ab, op_a.voltage(node) + op_b.voltage(node),
                1e-6 + std::fabs(v_ab) * 1e-6)
        << node;
  }
}

TEST_P(LinearProperties, SourceScalingIsLinear) {
  auto build = [&](double scale) {
    util::Rng local(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
    auto net = std::make_unique<RandomNetwork>(local);
    net->circuit.add<VSource>("VS", net->nodes[1], kGround, 1.5 * scale);
    return net;
  };
  auto net1 = build(1.0);
  auto net3 = build(3.0);
  Engine e1(net1->circuit, 27.0), e3(net3->circuit, 27.0);
  const DcResult op1 = e1.dc_operating_point();
  const DcResult op3 = e3.dc_operating_point();
  ASSERT_TRUE(op1.converged && op3.converged);
  for (const auto& [node, v1] : op1.voltages) {
    EXPECT_NEAR(op3.voltage(node), 3.0 * v1, 1e-6 + std::fabs(v1) * 1e-5)
        << node;
  }
}

TEST_P(LinearProperties, PowerBalancesInResistorNetwork) {
  // Power delivered by the source equals the sum of I^2*R over resistors.
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 3);
  RandomNetwork net(rng);
  net.circuit.add<VSource>("VS", net.nodes[1], kGround, 2.0);
  Engine engine(net.circuit, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);

  const double p_source = 2.0 * -op.current("VS");
  double p_resistors = 0.0;
  for (const auto& dev : net.circuit.devices()) {
    if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      const auto terms = r->terminals();
      auto v_of = [&](NodeId n) {
        return n == kGround ? 0.0
                            : op.voltage(net.circuit.node_name(n));
      };
      const double dv = v_of(terms[0]) - v_of(terms[1]);
      p_resistors += dv * dv / r->resistance();
    }
  }
  EXPECT_NEAR(p_source, p_resistors, p_source * 1e-6 + 1e-12);
}

TEST_P(LinearProperties, ReciprocityOfResistiveTwoPort) {
  // Inject 1 mA at node i, read node j; then swap. Transfer resistances
  // must match (reciprocity of passive networks).
  auto run = [&](std::size_t inject, std::size_t read) {
    util::Rng local(static_cast<std::uint64_t>(GetParam()) * 499 + 11);
    RandomNetwork net(local);
    net.circuit.add<ISource>("II", kGround, net.nodes[inject], 1e-3);
    Engine engine(net.circuit, 27.0);
    const DcResult op = engine.dc_operating_point();
    EXPECT_TRUE(op.converged);
    return op.voltage(net.circuit.node_name(net.nodes[read]));
  };
  const double v_ij = run(1, 4);
  const double v_ji = run(4, 1);
  EXPECT_NEAR(v_ij, v_ji, 1e-9 + std::fabs(v_ij) * 1e-6);
}

TEST_P(LinearProperties, AcAtNearZeroFrequencyMatchesDc) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 353 + 5);
  RandomNetwork net(rng);
  auto& src = net.circuit.add<VSource>("VS", net.nodes[1], kGround, 0.0);
  src.set_ac_magnitude(1.0);
  // Sprinkle capacitors: at ~0 Hz they must not matter.
  net.circuit.add<Capacitor>("C1", net.nodes[2], kGround, 1e-12);
  net.circuit.add<Capacitor>("C2", net.nodes.back(), kGround, 2e-12);

  Engine engine(net.circuit, 27.0);
  const AcResult ac = engine.ac({1e-3});
  ASSERT_TRUE(ac.converged);

  // Reference: DC with the source at 1 V.
  src.set_dc(1.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  for (std::size_t i = 1; i < net.nodes.size(); ++i) {
    const std::string name = net.circuit.node_name(net.nodes[i]);
    EXPECT_NEAR(ac.magnitude(name, 0), std::fabs(op.voltage(name)),
                1e-6 + std::fabs(op.voltage(name)) * 1e-6)
        << name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNetworks, LinearProperties,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Circuit::clone() deep-copy independence under mutation
// ---------------------------------------------------------------------------

template <typename T>
T* find_device(Circuit& circuit, const std::string& name) {
  for (const auto& dev : circuit.devices()) {
    if (dev->name() == name) return dynamic_cast<T*>(dev.get());
  }
  return nullptr;
}

TEST(CircuitClone, MutatingOriginalDoesNotAffectClone) {
  Circuit original;
  const auto in = original.node("in");
  const auto out = original.node("out");
  auto& src = original.add<VSource>("V1", in, kGround, 1.0);
  original.add<Resistor>("R1", in, out, 1e3);
  original.add<Resistor>("R2", out, kGround, 1e3);

  Circuit copy = original.clone();
  src.set_dc(2.0);  // mutate AFTER cloning

  Engine orig_engine(original, 27.0);
  Engine copy_engine(copy, 27.0);
  const DcResult a = orig_engine.dc_operating_point();
  const DcResult b = copy_engine.dc_operating_point();
  ASSERT_TRUE(a.converged && b.converged);
  // (1e-9 slack: the gmin floor leaks ~0.5 nV at this impedance level.)
  EXPECT_NEAR(a.voltage("out"), 1.0, 1e-8);  // sees the new 2 V source
  EXPECT_NEAR(b.voltage("out"), 0.5, 1e-8);  // clone still holds 1 V
}

TEST(CircuitClone, MutatingCloneDoesNotAffectOriginal) {
  Circuit original;
  const auto in = original.node("in");
  const auto out = original.node("out");
  original.add<VSource>("V1", in, kGround, 1.0);
  original.add<Resistor>("R1", in, out, 2e3);
  original.add<Resistor>("R2", out, kGround, 2e3);

  Circuit copy = original.clone();
  auto* copy_src = find_device<VSource>(copy, "V1");
  ASSERT_NE(copy_src, nullptr);
  copy_src->set_dc(4.0);

  Engine orig_engine(original, 27.0);
  const DcResult a = orig_engine.dc_operating_point();
  ASSERT_TRUE(a.converged);
  EXPECT_NEAR(a.voltage("out"), 0.5, 1e-8);
}

TEST(CircuitClone, GrowingOriginalLeavesCloneSized) {
  Circuit original;
  const auto n1 = original.node("n1");
  original.add<VSource>("V1", n1, kGround, 1.0);
  original.add<Resistor>("R1", n1, kGround, 1e3);

  Circuit copy = original.clone();
  const std::size_t devices_at_clone = copy.devices().size();
  original.add<Resistor>("R2", original.node("n2"), kGround, 1e3);
  original.add<Capacitor>("C1", original.node("n2"), kGround, 1e-12);

  EXPECT_EQ(copy.devices().size(), devices_at_clone);
  EXPECT_EQ(copy.devices().size(), 2u);
  EXPECT_EQ(original.devices().size(), 4u);
  EXPECT_LT(copy.num_nodes(), original.num_nodes());
}

TEST(CircuitClone, ClonePreservesSolutionBitExactly) {
  util::Rng rng(2024);
  RandomNetwork net(rng);
  net.circuit.add<VSource>("VS", net.nodes[1], kGround, 1.2);

  Circuit copy = net.circuit.clone();
  Engine a(net.circuit, 27.0), b(copy, 27.0);
  const DcResult ra = a.dc_operating_point();
  const DcResult rb = b.dc_operating_point();
  ASSERT_TRUE(ra.converged && rb.converged);
  ASSERT_EQ(ra.x.size(), rb.x.size());
  EXPECT_EQ(ra.x, rb.x) << "clone must solve bit-identically";
}

}  // namespace
}  // namespace sfc::spice
