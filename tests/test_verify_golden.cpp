// Golden-reference regression layer: committed goldens match the live
// code, the tolerance policy behaves, JSON round-trips canonically, and a
// deliberately perturbed solver constant is caught.
#include <gtest/gtest.h>

#include <vector>

#include "cim/array.hpp"
#include "cim/config.hpp"
#include "verify/golden.hpp"
#include "verify/json.hpp"

namespace sfc::verify {
namespace {

std::vector<double> mac_levels(const cim::ArrayConfig& cfg) {
  cim::CiMRow row(cfg);
  const int n = row.cells();
  row.set_stored(std::vector<int>(static_cast<std::size_t>(n), 1));
  std::vector<double> out;
  for (int k = 0; k <= n; ++k) {
    std::vector<int> inputs(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < k; ++i) inputs[static_cast<std::size_t>(i)] = 1;
    const cim::MacResult r = row.evaluate(inputs, 27.0);
    EXPECT_TRUE(r.converged) << "MAC " << k << " failed to converge";
    out.push_back(r.v_acc);
  }
  return out;
}

TEST(VerifyGolden, AllCommittedGoldensMatchLiveCode) {
  const std::string dir = default_golden_dir();
  const auto& cases = golden_cases();
  ASSERT_EQ(cases.size(), 6u);
  for (const auto& c : cases) {
    SCOPED_TRACE(c.name);
    const GoldenCompare cmp = run_golden_case(c, dir);
    EXPECT_TRUE(cmp.pass) << cmp.summary();
    EXPECT_GT(cmp.values_compared, 0u);
  }
}

// The acceptance demo: nudge a solver constant and the golden layer must
// flag the canonical Fig. 8 experiment. A 2 % error on the accumulation
// capacitor shifts every charge-share level by ~2 %, far beyond the 0.1 %
// relative tolerance stored in the golden file.
TEST(VerifyGolden, PerturbedSenseCapacitanceIsCaught) {
  const GoldenRecord golden =
      load_golden(default_golden_dir() + "/fig8_mac_levels.json");

  cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();
  cfg.sense.c_acc *= 1.02;
  GoldenRecord actual("fig8_mac_levels", "perturbed");
  actual.set("v_acc", mac_levels(cfg), {}, Tolerance{});

  const GoldenCompare cmp = compare_to_golden(golden, actual);
  EXPECT_FALSE(cmp.pass);
  ASSERT_FALSE(cmp.mismatches.empty());
  EXPECT_EQ(cmp.mismatches.front().quantity, "v_acc");
  // The diff names the level that broke, with the stored tolerance band.
  EXPECT_GT(cmp.mismatches.front().allowed, 0.0);
}

// Same demo for a pure Newton-solver constant: a gmin floor of 1 uS hangs
// a visible leak on the 4 fF accumulation node.
TEST(VerifyGolden, PerturbedGminFloorIsCaught) {
  const GoldenRecord golden =
      load_golden(default_golden_dir() + "/fig8_mac_levels.json");

  cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();
  cfg.newton.gmin_final = 1e-6;
  GoldenRecord actual("fig8_mac_levels", "perturbed");
  actual.set("v_acc", mac_levels(cfg), {}, Tolerance{});

  const GoldenCompare cmp = compare_to_golden(golden, actual);
  EXPECT_FALSE(cmp.pass) << cmp.summary();
  ASSERT_FALSE(cmp.mismatches.empty());
  EXPECT_EQ(cmp.mismatches.front().quantity, "v_acc");
}

TEST(VerifyGolden, TolerancePolicyIsAbsPlusRel) {
  GoldenRecord golden("t", "");
  golden.set("q", {1.0}, {"only"}, Tolerance{0.01, 0.05});

  GoldenRecord inside("t", "");
  inside.set("q", {1.0 + 0.01 + 0.05 - 1e-9}, {}, Tolerance{});
  EXPECT_TRUE(compare_to_golden(golden, inside).pass);

  GoldenRecord outside("t", "");
  outside.set("q", {1.0 + 0.01 + 0.05 + 1e-6}, {}, Tolerance{});
  const GoldenCompare cmp = compare_to_golden(golden, outside);
  EXPECT_FALSE(cmp.pass);
  ASSERT_EQ(cmp.mismatches.size(), 1u);
  EXPECT_EQ(cmp.mismatches.front().label, "only");
  EXPECT_NEAR(cmp.mismatches.front().allowed, 0.06, 1e-12);
}

TEST(VerifyGolden, ComparisonFlagsMissingExtraAndResized) {
  GoldenRecord golden("t", "");
  golden.set("kept", {1.0, 2.0}, {}, Tolerance{1e-9, 0.0});
  golden.set("gone", {3.0}, {}, Tolerance{1e-9, 0.0});

  GoldenRecord actual("t", "");
  actual.set("kept", {1.0, 2.0, 99.0}, {}, Tolerance{});
  actual.set("added", {4.0}, {}, Tolerance{});

  const GoldenCompare cmp = compare_to_golden(golden, actual);
  EXPECT_FALSE(cmp.pass);
  ASSERT_EQ(cmp.missing_quantities.size(), 1u);
  EXPECT_EQ(cmp.missing_quantities.front(), "gone");
  ASSERT_EQ(cmp.extra_quantities.size(), 1u);
  EXPECT_EQ(cmp.extra_quantities.front(), "added");
  ASSERT_EQ(cmp.size_mismatches.size(), 1u);
}

TEST(VerifyGolden, RecordRoundTripsThroughJson) {
  GoldenRecord rec("roundtrip", "serialization fidelity");
  rec.set("v", {0.1, 1.0 / 3.0, -2.5e-15, 12345.0},
          {"a", "b", "c", "d"}, Tolerance{1e-6, 1e-3});
  rec.set_scalar("s", 3.14159, Tolerance{0.0, 1e-2});

  const std::string text = rec.to_json().dump();
  const GoldenRecord back = GoldenRecord::from_json(Json::parse(text));
  EXPECT_EQ(back.name(), rec.name());

  // Bit-exact after one round trip, and the dump itself is a fixed point.
  const GoldenCompare cmp = compare_to_golden(back, rec);
  EXPECT_TRUE(cmp.pass) << cmp.summary();
  EXPECT_EQ(back.at("v").values, rec.at("v").values);
  EXPECT_EQ(back.at("v").labels, rec.at("v").labels);
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(VerifyGolden, JsonDumpHasSortedKeysAndStableNumbers) {
  Json obj = Json::object();
  obj.set("zebra", Json(1.0));
  obj.set("alpha", Json(0.1));
  obj.set("mid", Json(true));
  const std::string text = obj.dump(0);
  const auto pa = text.find("alpha"), pm = text.find("mid"),
             pz = text.find("zebra");
  EXPECT_LT(pa, pm);
  EXPECT_LT(pm, pz);
  // Shortest-round-trip formatting: 0.1 stays "0.1".
  EXPECT_NE(text.find("\"alpha\": 0.1"), std::string::npos) << text;
  // Integral doubles print as integers.
  EXPECT_EQ(Json::format_number(42.0), "42");
}

}  // namespace
}  // namespace sfc::verify
