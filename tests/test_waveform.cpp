// Stimulus waveform tests: PULSE/PWL/SIN evaluation and breakpoint
// generation.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/waveform.hpp"

namespace sfc::spice {
namespace {

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(0.35);
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.35);
  EXPECT_DOUBLE_EQ(w.at(1.0), 0.35);
  std::vector<double> bp;
  w.collect_breakpoints(1.0, bp);
  EXPECT_TRUE(bp.empty());
}

TEST(Waveform, PulseShape) {
  // 0 -> 1V, delay 10ns, rise 2ns, width 5ns, fall 3ns, single shot.
  const Waveform w = Waveform::pulse(0.0, 1.0, 10e-9, 2e-9, 3e-9, 5e-9, 0.0, 1);
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(9e-9), 0.0);
  EXPECT_NEAR(w.at(11e-9), 0.5, 1e-12);    // mid-rise
  EXPECT_DOUBLE_EQ(w.at(13e-9), 1.0);      // plateau
  EXPECT_DOUBLE_EQ(w.at(16.9e-9), 1.0);    // end of plateau
  EXPECT_NEAR(w.at(18.5e-9), 0.5, 1e-12);  // mid-fall
  EXPECT_DOUBLE_EQ(w.at(25e-9), 0.0);
}

TEST(Waveform, PulsePeriodicRepeats) {
  const Waveform w =
      Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 3e-9, 10e-9, -1);
  EXPECT_DOUBLE_EQ(w.at(2e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.at(12e-9), 1.0);   // second cycle
  EXPECT_DOUBLE_EQ(w.at(108e-9), 0.0);  // between pulses
  EXPECT_DOUBLE_EQ(w.at(102e-9), 1.0);  // 11th cycle
}

TEST(Waveform, PulseCycleLimit) {
  const Waveform w =
      Waveform::pulse(0.0, 1.0, 0.0, 1e-9, 1e-9, 3e-9, 10e-9, 2);
  EXPECT_DOUBLE_EQ(w.at(2e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.at(12e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.at(22e-9), 0.0);  // third cycle suppressed
}

TEST(Waveform, PulseBreakpointsCoverCorners) {
  const Waveform w = Waveform::pulse(0.0, 1.0, 10e-9, 2e-9, 3e-9, 5e-9, 0.0, 1);
  std::vector<double> bp;
  w.collect_breakpoints(100e-9, bp);
  // delay, end of rise, end of width, end of fall.
  ASSERT_EQ(bp.size(), 4u);
  EXPECT_NEAR(bp[0], 10e-9, 1e-15);
  EXPECT_NEAR(bp[1], 12e-9, 1e-15);
  EXPECT_NEAR(bp[2], 17e-9, 1e-15);
  EXPECT_NEAR(bp[3], 20e-9, 1e-15);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  const Waveform w = Waveform::pwl({{0.0, 0.0}, {1e-9, 2.0}, {3e-9, 1.0}});
  EXPECT_DOUBLE_EQ(w.at(0.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(w.at(2e-9), 1.5);
  EXPECT_DOUBLE_EQ(w.at(10e-9), 1.0);  // clamp right
  std::vector<double> bp;
  w.collect_breakpoints(10e-9, bp);
  EXPECT_EQ(bp.size(), 2u);  // interior points only (t=0 excluded)
}

TEST(Waveform, SineOffsetAmplitude) {
  const Waveform w = Waveform::sine(1.0, 0.5, 1e6);
  EXPECT_DOUBLE_EQ(w.at(0.0), 1.0);
  EXPECT_NEAR(w.at(0.25e-6), 1.5, 1e-9);   // quarter period
  EXPECT_NEAR(w.at(0.75e-6), 0.5, 1e-9);
}

TEST(Waveform, SineDelayHoldsOffset) {
  const Waveform w = Waveform::sine(2.0, 1.0, 1e6, /*delay=*/1e-6);
  EXPECT_DOUBLE_EQ(w.at(0.5e-6), 2.0);
  EXPECT_NEAR(w.at(1.25e-6), 3.0, 1e-9);
}

TEST(Waveform, InitialValueForDcOp) {
  EXPECT_DOUBLE_EQ(Waveform::dc(1.2).initial(), 1.2);
  EXPECT_DOUBLE_EQ(
      Waveform::pulse(0.2, 1.0, 5e-9, 1e-9, 1e-9, 2e-9, 0.0, 1).initial(),
      0.2);
}

}  // namespace
}  // namespace sfc::spice
