// Solver hot-path validation: the compiled stamp-plan assembly and the
// frozen-pivot LU must be *bit-identical* to the legacy full-restamp /
// full-pivot path — not tolerance-close — on the paper's circuits, and
// the steady-state Newton loop must not touch the heap. Trace-counter
// (TestProbe) assertions cross-check the engine's self-reported iteration
// totals against the instrumentation; they compile out with SFC_TRACE=OFF.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "cim/array.hpp"
#include "spice/engine.hpp"
#include "spice/matrix.hpp"
#include "spice/netlist.hpp"
#include "spice/primitives.hpp"
#include "spice/sweep.hpp"
#include "trace/trace.hpp"

// ---------------------------------------------------------------------
// Global allocation counter. Only the delta between snapshots matters;
// gtest and the fixtures allocate freely outside the counted regions.
// ---------------------------------------------------------------------
namespace {
std::atomic<long> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sfc::spice {
namespace {

// Bitwise equality — distinguishes +0.0 from -0.0 and never tolerates
// rounding drift. NaN == NaN under memcmp, unlike operator==.
bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_vectors_bitwise_equal(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(bits_equal(a[i], b[i]))
        << what << "[" << i << "]: " << a[i] << " vs " << b[i];
  }
}

void expect_transients_bitwise_equal(const TransientResult& a,
                                     const TransientResult& b) {
  ASSERT_EQ(a.converged, b.converged);
  ASSERT_EQ(a.num_samples(), b.num_samples());
  expect_vectors_bitwise_equal(a.time(), b.time(), "time");
  ASSERT_EQ(a.signal_names(), b.signal_names());
  for (const auto& name : a.signal_names()) {
    expect_vectors_bitwise_equal(a.waveform(name), b.waveform(name),
                                 "waveform " + name);
  }
  for (const auto& [source, energy] : a.source_energy) {
    const auto it = b.source_energy.find(source);
    ASSERT_NE(it, b.source_energy.end()) << source;
    EXPECT_TRUE(bits_equal(energy, it->second)) << "energy " << source;
  }
}

NewtonOptions legacy_options() {
  NewtonOptions o;
  o.use_stamp_plan = false;
  return o;
}

NewtonOptions hot_options(bool reuse_pivots = true) {
  NewtonOptions o;
  o.use_stamp_plan = true;
  o.reuse_pivot_order = reuse_pivots;
  return o;
}

// ---------------------------------------------------------------------
// Fig. 7 cell: DC operating point, legacy vs stamp plan.
// ---------------------------------------------------------------------

TEST(SolverHotPath, Fig7CellDcBitIdentical) {
  cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();
  cfg.cells_per_row = 1;
  cim::CiMRow row(cfg);
  row.set_stored({1});

  Engine legacy_engine(row.circuit(), 27.0);
#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe legacy_probe;
#endif
  const DcResult ref = legacy_engine.dc_operating_point(legacy_options());
  ASSERT_TRUE(ref.converged);
#if SFC_TRACE_ENABLED
  // The instrumentation and the engine's self-report must agree.
  EXPECT_EQ(legacy_probe.counter_delta("spice.dc.solves"), 1u);
  EXPECT_EQ(legacy_probe.counter_delta("spice.newton.iterations"),
            static_cast<std::uint64_t>(ref.iterations));
  EXPECT_GT(legacy_probe.counter_delta("spice.lu.dense_solves"), 0u);
  EXPECT_EQ(legacy_probe.counter_delta("spice.stampplan.compiles"), 0u);
#endif

  for (const bool reuse : {false, true}) {
    Engine hot_engine(row.circuit(), 27.0);
#if SFC_TRACE_ENABLED
    sfc::trace::TestProbe hot_probe;
#endif
    const DcResult hot = hot_engine.dc_operating_point(hot_options(reuse));
    ASSERT_TRUE(hot.converged);
    EXPECT_EQ(hot.iterations, ref.iterations) << "reuse=" << reuse;
    EXPECT_TRUE(bits_equal(hot.gmin_used, ref.gmin_used));
    expect_vectors_bitwise_equal(hot.x, ref.x,
                                 reuse ? "x (frozen pivots)" : "x");
#if SFC_TRACE_ENABLED
    EXPECT_EQ(hot_probe.counter_delta("spice.newton.iterations"),
              static_cast<std::uint64_t>(hot.iterations));
    EXPECT_GT(hot_probe.counter_delta("spice.stampplan.compiles"), 0u);
    if (reuse) {
      EXPECT_GT(hot_probe.counter_delta("spice.lu.frozen_solves"), 0u);
      EXPECT_EQ(hot_probe.counter_delta("spice.lu.dense_solves"), 0u);
    } else {
      EXPECT_GT(hot_probe.counter_delta("spice.lu.dense_solves"), 0u);
      EXPECT_EQ(hot_probe.counter_delta("spice.lu.frozen_solves"), 0u);
    }
#endif
  }
}

// ---------------------------------------------------------------------
// Fig. 8 row: full 8-cell MAC transient, legacy vs stamp plan. This is
// the benchmark workload, so bit-identity here directly validates the
// numbers in BENCH_solver.json.
// ---------------------------------------------------------------------

TEST(SolverHotPath, Fig8RowTransientBitIdentical) {
  cim::ArrayConfig legacy_cfg = cim::ArrayConfig::proposed_2t1fefet();
  legacy_cfg.newton.use_stamp_plan = false;
  cim::ArrayConfig hot_cfg = cim::ArrayConfig::proposed_2t1fefet();
  hot_cfg.newton.use_stamp_plan = true;

  const std::vector<int> stored = {1, 0, 1, 1, 0, 1, 0, 1};
  const std::vector<int> inputs = {1, 1, 0, 1, 0, 1, 1, 0};

  cim::CiMRow legacy_row(legacy_cfg);
  legacy_row.set_stored(stored);
#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe legacy_probe;
#endif
  const cim::MacResult ref =
      legacy_row.evaluate(inputs, 27.0, /*keep_waveforms=*/true);
  ASSERT_TRUE(ref.converged);

  cim::CiMRow hot_row(hot_cfg);
  hot_row.set_stored(stored);
#if SFC_TRACE_ENABLED
  // Every Newton iteration the MAC transient reports must have passed
  // through the instrumented wrapper — exact, not approximate.
  EXPECT_EQ(legacy_probe.counter_delta("spice.newton.iterations"),
            static_cast<std::uint64_t>(ref.newton_iterations));
  sfc::trace::TestProbe hot_probe;
#endif
  const cim::MacResult hot =
      hot_row.evaluate(inputs, 27.0, /*keep_waveforms=*/true);
  ASSERT_TRUE(hot.converged);
#if SFC_TRACE_ENABLED
  EXPECT_EQ(hot_probe.counter_delta("spice.newton.iterations"),
            static_cast<std::uint64_t>(hot.newton_iterations));
  EXPECT_GT(hot_probe.counter_delta("spice.lu.frozen_solves"), 0u);
  // Exactly one histogram record per accepted step, by construction.
  EXPECT_EQ(hot_probe.histogram_delta("spice.tran.newton_iterations_per_step"),
            hot_probe.counter_delta("spice.tran.steps_accepted"));
  EXPECT_GT(hot_probe.counter_delta("spice.tran.steps_accepted"), 0u);
  // No step on this workload fights Newton past the 16-iteration band.
  EXPECT_EQ(hot_probe.histogram_delta_above(
                "spice.tran.newton_iterations_per_step", 16.0),
            0u);
#endif

  EXPECT_TRUE(bits_equal(hot.v_acc, ref.v_acc));
  EXPECT_TRUE(bits_equal(hot.energy_joules, ref.energy_joules));
  EXPECT_EQ(hot.newton_iterations, ref.newton_iterations);
  expect_vectors_bitwise_equal(hot.v_cell, ref.v_cell, "v_cell");
  expect_transients_bitwise_equal(hot.waveforms, ref.waveforms);
}

// ---------------------------------------------------------------------
// Netlist-parsed deck: mixed linear/nonlinear cards through the parser.
// ---------------------------------------------------------------------

TEST(SolverHotPath, NetlistDeckTransientBitIdentical) {
  const std::string deck = R"(
* mixed-card deck: MOSFET inverter driving an RC + diode clamp
.model mynmos nmos vth0=0.45 n=1.3
VDD vdd 0 1.2
VIN in 0 PULSE(0 1.2 1n 0.1n 0.1n 3n 10n)
RD vdd out 10k
M1 out in 0 mynmos w=100n l=20n
RL out mid 2k
C1 mid 0 0.5p ic=0
D1 mid 0 is=1e-15
.tran 0.05n 6n
)";

  auto run = [&deck](bool use_stamp_plan) {
    Circuit ckt;
    const NetlistDeck d = parse_netlist(deck, ckt);
    Engine engine(ckt, 27.0);
    TransientOptions opts;
    opts.dt = d.tran.at(0).dt;
    opts.newton.use_stamp_plan = use_stamp_plan;
    return engine.transient(d.tran.at(0).t_stop, opts);
  };

  const TransientResult ref = run(false);
  ASSERT_TRUE(ref.converged);
  const TransientResult hot = run(true);
  expect_transients_bitwise_equal(hot, ref);
  EXPECT_EQ(hot.total_newton_iterations, ref.total_newton_iterations);
}

// ---------------------------------------------------------------------
// Thread-count independence: a temperature sweep must be bit-identical
// across assembly paths AND across ExecPolicy thread counts.
// ---------------------------------------------------------------------

TEST(SolverHotPath, TemperatureSweepBitIdenticalAt1And8Threads) {
  cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();
  cfg.cells_per_row = 2;
  cim::CiMRow row(cfg);
  row.set_stored({1, 1});

  SweepSpec spec;
  spec.values = linspace_count(-25.0, 100.0, 6);  // temperature sweep

  auto run = [&](bool use_stamp_plan, int threads) {
    spec.options = use_stamp_plan ? hot_options() : legacy_options();
    sfc::exec::ExecPolicy exec;
    exec.threads = threads;
    return run_sweep(row.circuit(), spec, exec);
  };

#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe ref_probe;
#endif
  const auto ref = run(false, 1);
  ASSERT_EQ(ref.size(), spec.values.size());
  for (const auto& p : ref) ASSERT_TRUE(p.op.converged);
#if SFC_TRACE_ENABLED
  const std::uint64_t ref_iterations =
      ref_probe.counter_delta("spice.newton.iterations");
  EXPECT_EQ(ref_probe.counter_delta("spice.sweep.points"),
            spec.values.size());
  EXPECT_EQ(ref_probe.counter_delta("exec.jobs"), 1u);
  EXPECT_EQ(ref_probe.counter_delta("exec.tasks.converged"),
            spec.values.size());
#endif

  struct Case {
    bool hot;
    int threads;
  };
  for (const Case c : {Case{false, 8}, Case{true, 1}, Case{true, 8}}) {
#if SFC_TRACE_ENABLED
    sfc::trace::TestProbe case_probe;
#endif
    const auto pts = run(c.hot, c.threads);
    ASSERT_EQ(pts.size(), ref.size());
#if SFC_TRACE_ENABLED
    // Bit-identical solves imply identical iteration counts — for both
    // assembly paths and regardless of the thread count.
    EXPECT_EQ(case_probe.counter_delta("spice.newton.iterations"),
              ref_iterations)
        << "hot=" << c.hot << " threads=" << c.threads;
#endif
    for (std::size_t i = 0; i < pts.size(); ++i) {
      expect_vectors_bitwise_equal(
          pts[i].op.x, ref[i].op.x,
          "sweep point " + std::to_string(i) + " (hot=" +
              std::to_string(c.hot) + ", threads=" +
              std::to_string(c.threads) + ")");
    }
  }
}

// ---------------------------------------------------------------------
// LuPlan: frozen-pivot replay vs dense full pivoting, and the fallback
// triggers (argmax moved / pivot degraded) on ill-conditioned updates.
// ---------------------------------------------------------------------

DenseMatrix matrix_from(const std::vector<std::vector<double>>& rows) {
  DenseMatrix m(rows.size(), rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows.size(); ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

std::vector<char> pattern_of(const DenseMatrix& m) {
  std::vector<char> pattern(m.rows() * m.cols(), 0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      pattern[r * m.cols() + c] = m.at(r, c) != 0.0 ? 1 : 0;
    }
  }
  return pattern;
}

TEST(LuPlanFallback, FrozenSolveMatchesDenseBitwise) {
  // Asymmetric system with an off-diagonal pivot (row 2 wins column 0)
  // and a structural zero block, so the compiled schedule is a strict
  // subset of the dense loop.
  const std::vector<std::vector<double>> base = {
      {1.0, 2.0, 0.0},
      {0.5, 1e-3, 4.0},
      {3.0, 0.0, 1.0},
  };
  const std::vector<double> rhs = {1.0, -2.0, 0.5};

  DenseMatrix a0 = matrix_from(base);
  const std::vector<char> pattern = pattern_of(a0);
  std::vector<double> b0 = rhs;

  LuPlan plan;
  ASSERT_TRUE(plan.factor_and_compile(a0, b0, pattern));
  ASSERT_TRUE(plan.valid());
  EXPECT_GT(plan.compiled_ops(), 0u);

  DenseMatrix dense = matrix_from(base);
  std::vector<double> b_dense = rhs;
  ASSERT_TRUE(lu_solve(dense, b_dense));
  expect_vectors_bitwise_equal(b0, b_dense, "factor_and_compile solution");

  // Same structure, perturbed values that keep the pivot order: the
  // frozen solve must complete without a refreeze and match the dense
  // solve bit for bit.
  std::vector<std::vector<double>> perturbed = base;
  perturbed[0][0] = 1.25;
  perturbed[1][2] = 3.5;
  perturbed[2][0] = 2.75;
  DenseMatrix a1 = matrix_from(perturbed);
  std::vector<double> b1 = rhs;
  ASSERT_TRUE(plan.solve_frozen(a1, b1, 1e-6));
  EXPECT_EQ(plan.refreeze_count(), 0u);

  DenseMatrix dense1 = matrix_from(perturbed);
  std::vector<double> b_dense1 = rhs;
  ASSERT_TRUE(lu_solve(dense1, b_dense1));
  expect_vectors_bitwise_equal(b1, b_dense1, "solve_frozen solution");
}

TEST(LuPlanFallback, ArgmaxChangeRefreezesAndStaysBitIdentical) {
  const std::vector<std::vector<double>> base = {
      {1.0, 2.0, 0.0},
      {0.5, 1e-3, 4.0},
      {3.0, 0.0, 1.0},
  };
  DenseMatrix a0 = matrix_from(base);
  const std::vector<char> pattern = pattern_of(a0);
  std::vector<double> b0 = {1.0, -2.0, 0.5};
  LuPlan plan;
  ASSERT_TRUE(plan.factor_and_compile(a0, b0, pattern));

  // Row 0 now dominates column 0, so the frozen choice (row 2) is no
  // longer the partial-pivot argmax: the plan must fall back to dense
  // pivoting mid-solve rather than silently diverge from lu_solve().
  std::vector<std::vector<double>> swapped = base;
  swapped[0][0] = 10.0;
  DenseMatrix a1 = matrix_from(swapped);
  std::vector<double> b1 = {1.0, -2.0, 0.5};
  ASSERT_TRUE(plan.solve_frozen(a1, b1, 1e-6));
  EXPECT_EQ(plan.refreeze_count(), 1u);
  DenseMatrix dense = matrix_from(swapped);
  std::vector<double> b_dense = {1.0, -2.0, 0.5};
  ASSERT_TRUE(lu_solve(dense, b_dense));
  expect_vectors_bitwise_equal(b1, b_dense, "drifted solution");

  // Self-healing: the refreeze recorded the new order, so re-solving the
  // same system stays on the frozen path and still matches dense.
  DenseMatrix a2 = matrix_from(swapped);
  std::vector<double> b2 = {1.0, -2.0, 0.5};
  ASSERT_TRUE(plan.solve_frozen(a2, b2, 1e-6));
  EXPECT_EQ(plan.refreeze_count(), 1u);
  expect_vectors_bitwise_equal(b2, b_dense, "refrozen solution");
}

TEST(LuPlanFallback, DegradedPivotTriggersRefreeze) {
  // Diagonally dominant, so the frozen order is the identity and stays
  // the argmax even after shrinking — only the degradation rule can (and
  // must) trip on this deliberately ill-conditioned update.
  const std::vector<std::vector<double>> base = {
      {4.0, 1.0},
      {1.0, 4.0},
  };
  DenseMatrix a0 = matrix_from(base);
  const std::vector<char> pattern = pattern_of(a0);
  std::vector<double> b0 = {1.0, 1.0};
  LuPlan plan;
  ASSERT_TRUE(plan.factor_and_compile(a0, b0, pattern));

  // Scale so row 0 keeps the column-0 argmax but the pivot magnitude
  // collapses by 1e8 relative to freeze time: the degradation rule must
  // force the dense fallback (refreeze), and the answer still matches
  // the dense factorization bitwise.
  std::vector<std::vector<double>> shrunk = base;
  shrunk[0][0] = 4.0e-8;
  shrunk[0][1] = 1.0e-8;
  shrunk[1][0] = 0.5e-8;
  shrunk[1][1] = 4.0e-8;
  DenseMatrix a1 = matrix_from(shrunk);
  std::vector<double> b1 = {1.0, 1.0};
  ASSERT_TRUE(plan.solve_frozen(a1, b1, 1e-6));
  EXPECT_EQ(plan.refreeze_count(), 1u);
  DenseMatrix dense = matrix_from(shrunk);
  std::vector<double> b_dense = {1.0, 1.0};
  ASSERT_TRUE(lu_solve(dense, b_dense));
  expect_vectors_bitwise_equal(b1, b_dense, "degraded-pivot solution");

  // A permissive threshold on a fresh plan accepts the same shrink
  // without any refreeze.
  DenseMatrix a2 = matrix_from(base);
  std::vector<double> b2 = {1.0, 1.0};
  LuPlan fresh;
  ASSERT_TRUE(fresh.factor_and_compile(a2, b2, pattern));
  DenseMatrix a3 = matrix_from(shrunk);
  std::vector<double> b3 = {1.0, 1.0};
  ASSERT_TRUE(fresh.solve_frozen(a3, b3, 1e-12));
  EXPECT_EQ(fresh.refreeze_count(), 0u);
  expect_vectors_bitwise_equal(b3, b_dense, "permissive frozen solution");
}

TEST(LuPlanFallback, SingularUpdateInvalidatesPlan) {
  const std::vector<std::vector<double>> base = {
      {2.0, 1.0},
      {1.0, 2.0},
  };
  DenseMatrix a0 = matrix_from(base);
  const std::vector<char> pattern = pattern_of(a0);
  std::vector<double> b0 = {1.0, 1.0};
  LuPlan plan;
  ASSERT_TRUE(plan.factor_and_compile(a0, b0, pattern));

  // Rank-1 update: both rows proportional. Dense LU fails, and so must
  // the frozen solve — invalidating the plan instead of dividing by a
  // vanishing pivot.
  const std::vector<std::vector<double>> singular = {
      {2.0, 1.0},
      {4.0, 2.0},
  };
  DenseMatrix a1 = matrix_from(singular);
  std::vector<double> b1 = {1.0, 1.0};
  EXPECT_FALSE(plan.solve_frozen(a1, b1, 1e-6));
  EXPECT_FALSE(plan.valid());
}

// ---------------------------------------------------------------------
// Engine-level fallback: an update that degrades the pivots mid-solve
// must still converge to the legacy answer (through refactoring), not
// fail or drift.
// ---------------------------------------------------------------------

TEST(SolverHotPath, SwitchTransitionSurvivesPivotFallback) {
  // A steep switch swings its stamped conductance over ~12 decades
  // between Newton iterates — exactly the pivot-degradation scenario.
  auto build = [](Circuit& ckt) {
    VSwitch::Params params;
    params.r_on = 10.0;
    params.r_off = 1e12;
    params.v_threshold = 0.5;
    params.v_width = 0.01;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    const auto ctrl = ckt.node("ctrl");
    ckt.add<VSource>("V1", in, kGround, 1.0);
    ckt.add<VSource>("VC", ctrl, kGround, 0.501);  // right at threshold
    ckt.add<VSwitch>("S1", in, out, ctrl, params);
    ckt.add<Resistor>("RL", out, kGround, 1000.0);
  };

  Circuit legacy_ckt;
  build(legacy_ckt);
  Engine legacy_engine(legacy_ckt, 27.0);
  const DcResult ref = legacy_engine.dc_operating_point(legacy_options());
  ASSERT_TRUE(ref.converged);

  Circuit hot_ckt;
  build(hot_ckt);
  Engine hot_engine(hot_ckt, 27.0);
  const DcResult hot = hot_engine.dc_operating_point(hot_options());
  ASSERT_TRUE(hot.converged);
  expect_vectors_bitwise_equal(hot.x, ref.x, "switch op x");
}

// ---------------------------------------------------------------------
// Steady state allocates nothing: once the workspace is warm, a full
// newton_solve() — restamp, frozen factorization, update — must not
// touch the heap.
// ---------------------------------------------------------------------

TEST(SolverHotPath, SteadyStateNewtonSolveDoesNotAllocate) {
  cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();
  cfg.cells_per_row = 4;
  cim::CiMRow row(cfg);
  row.set_stored({1, 0, 1, 1});

  row.circuit().finalize();  // aux variables counted before system_size()
  Engine engine(row.circuit(), 27.0);
  SimContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  ctx.temperature_c = 27.0;
  ctx.gmin = NewtonOptions{}.gmin_final;
  ctx.num_nodes = row.circuit().num_nodes();

  const NewtonOptions options = hot_options();
  std::vector<double> x(row.circuit().system_size(), 0.0);
  int iterations = 0;
  // Warm-up: sizes the workspace, records the pattern, freezes pivots.
  ASSERT_TRUE(engine.newton_solve(ctx, x, options, &iterations));
  ASSERT_TRUE(engine.workspace().plan.valid());
  EXPECT_GT(engine.workspace().plan.compiled_ops(), 0u);
  // Second warm-up runs the steady-state (frozen-pivot) branch once so
  // its trace counters do their one-time registration outside the
  // counted region — first execution of a SFC_TRACE_COUNT site
  // allocates the registry entry, every later hit is a relaxed add.
  ASSERT_TRUE(engine.newton_solve(ctx, x, options, &iterations));

  // Steady state: resolving from the converged point re-runs the full
  // iterate-restamp-solve loop (Newton needs >= 2 iterations to declare
  // convergence) without a single allocation. The probe (constructed
  // outside the counted region) proves the trace counters stay live on
  // this path — instrumentation must be allocation-free too.
#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe probe;
#endif
  const long before = g_alloc_count.load();
  const bool ok = engine.newton_solve(ctx, x, options, &iterations);
  const long after = g_alloc_count.load();
  ASSERT_TRUE(ok);
  EXPECT_GE(iterations, 1);
  EXPECT_EQ(after - before, 0) << "newton_solve allocated on the steady-"
                                  "state path";
#if SFC_TRACE_ENABLED
  EXPECT_EQ(probe.counter_delta("spice.newton.solves"), 1u);
  EXPECT_EQ(probe.counter_delta("spice.newton.iterations"),
            static_cast<std::uint64_t>(iterations));
#endif
}

}  // namespace
}  // namespace sfc::spice
