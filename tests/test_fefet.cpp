// FeFET device tests: stored state vs read current (ION/IOFF), operating
// regions at the two read voltages of the paper, temperature behaviour,
// and Monte Carlo VTH-shift injection.
#include <gtest/gtest.h>

#include <cmath>

#include "fefet/fefet.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"

namespace sfc::fefet {
namespace {

using sfc::spice::Circuit;
using sfc::spice::Engine;
using sfc::spice::kGround;
using sfc::spice::Resistor;
using sfc::spice::VSource;

/// Drain current with the output clamped to the SL level (transimpedance
/// readout) at the given WL voltage.
double read_current(FeFet& fefet, double v_wl, double temperature_c) {
  return fefet.drain_current(v_wl, 1.2, 0.2, temperature_c) -
         0.0;  // vs = SL = 0.2 V
}

TEST(FeFet, StoredBitControlsCurrent) {
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true);
  const double i_on = read_current(fefet, 0.35, 27.0);
  fefet.write_bit(false);
  const double i_off = read_current(fefet, 0.35, 27.0);
  EXPECT_GT(i_on, 0.0);
  // High ION/IOFF ratio is the FeFET selling point.
  EXPECT_GT(i_on / std::max(i_off, 1e-30), 1e6);
}

TEST(FeFet, SubthresholdAtPaperReadVoltage) {
  // At Vread = 0.35 V the low-VTH device must be in subthreshold:
  // VGS - VTH < 0 at the operating source level (0.2 V).
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true);
  const double vgs = 0.35 - 0.2;
  EXPECT_LT(vgs, fefet.effective_vth(27.0));
}

TEST(FeFet, SaturationAtHighReadVoltage) {
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true);
  const double vgs = 1.3 - 0.2;
  EXPECT_GT(vgs, fefet.effective_vth(27.0) + 0.3);
}

TEST(FeFet, SubthresholdReadCurrentRisesWithTemperature) {
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true);
  const double i0 = read_current(fefet, 0.35, 0.0);
  const double i85 = read_current(fefet, 0.35, 85.0);
  EXPECT_GT(i85, i0);
  EXPECT_GT(i85 / i0, 1.2);  // exponential region: strong drift
}

TEST(FeFet, SaturationReadCurrentDriftIsMilder) {
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true);
  auto drift = [&](double v_read) {
    const double i0 = read_current(fefet, v_read, 0.0);
    const double i85 = read_current(fefet, v_read, 85.0);
    return std::fabs(i85 / i0 - 1.0);
  };
  EXPECT_LT(drift(1.3), drift(0.35));
}

TEST(FeFet, EffectiveVthTracksState) {
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true);
  const double vth_low = fefet.effective_vth(27.0);
  fefet.write_bit(false);
  const double vth_high = fefet.effective_vth(27.0);
  EXPECT_GT(vth_high - vth_low, 1.0);  // memory window > 1 V
  EXPECT_TRUE(!fefet.stored_bit());
}

TEST(FeFet, VthShiftInjectsVariation) {
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true);
  const double i_nominal = read_current(fefet, 0.35, 27.0);
  fefet.set_vth_shift(0.054);
  const double i_shifted = read_current(fefet, 0.35, 27.0);
  EXPECT_LT(i_shifted, i_nominal);  // higher VTH, less current
  fefet.set_vth_shift(0.0);
  EXPECT_NEAR(read_current(fefet, 0.35, 27.0), i_nominal,
              std::fabs(i_nominal) * 1e-12);
}

TEST(FeFet, InCircuitReadThroughResistor) {
  // 1FeFET-1R-like stack: stored '1' must develop a much larger output
  // voltage than stored '0'.
  Circuit ckt;
  const auto bl = ckt.node("bl");
  const auto wl = ckt.node("wl");
  const auto out = ckt.node("out");
  ckt.add<VSource>("VBL", bl, kGround, 1.2);
  ckt.add<VSource>("VWL", wl, kGround, 0.35);
  auto& fefet = ckt.add<FeFet>("X1", bl, wl, out);
  ckt.add<Resistor>("R1", out, kGround, 1e6);

  fefet.write_bit(true);
  Engine engine(ckt, 27.0);
  const double v_on = engine.dc_operating_point().voltage("out");

  fefet.write_bit(false);
  const double v_off = engine.dc_operating_point().voltage("out");
  EXPECT_GT(v_on, 10.0 * std::max(v_off, 1e-6));
}

TEST(FeFet, ProgramAtDifferentTemperatures) {
  // Writes are specified at 27C; a hot write must still reach the state.
  Circuit ckt;
  auto& fefet = ckt.add<FeFet>("X1", ckt.node("d"), ckt.node("g"),
                               ckt.node("s"));
  fefet.write_bit(true, 85.0);
  EXPECT_TRUE(fefet.stored_bit());
  fefet.write_bit(false, 0.0);
  EXPECT_FALSE(fefet.stored_bit());
}

}  // namespace
}  // namespace sfc::fefet
