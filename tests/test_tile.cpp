// CiMTile tests: circuit-accurate matrix-vector products on the proposed
// fabric, wide-row segmentation, temperature stability, and the ASCII
// plot utility used by the tile example.
#include <gtest/gtest.h>

#include "cim/tile.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"

namespace sfc::cim {
namespace {

const BehavioralArrayModel& adc() {
  static const BehavioralArrayModel model = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});
  return model;
}

TEST(CiMTile, ExactSmallMatrixVectorProduct) {
  const std::vector<std::vector<int>> w = {
      {1, 0, 1, 1, 0, 1, 1, 0},
      {0, 1, 1, 0, 1, 0, 0, 1},
      {1, 1, 1, 1, 1, 1, 1, 1},
  };
  CiMTile tile(ArrayConfig::proposed_2t1fefet(), w);
  EXPECT_EQ(tile.rows(), 3);
  EXPECT_EQ(tile.columns(), 8);
  EXPECT_EQ(tile.segments_per_row(), 1);

  const std::vector<int> x = {1, 1, 0, 1, 1, 0, 1, 1};
  const CiMTile::Result r = tile.multiply(x, 27.0, adc());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.errors(), 0);
  EXPECT_EQ(r.values, r.expected);
  EXPECT_GT(r.energy_joules, 0.0);
}

TEST(CiMTile, WideRowsSplitIntoSegments) {
  // 20 columns -> 3 segments of 8 (zero-padded).
  util::Rng rng(5);
  std::vector<std::vector<int>> w(2, std::vector<int>(20));
  std::vector<int> x(20);
  for (auto& row : w) {
    for (int& b : row) b = rng.bernoulli(0.5) ? 1 : 0;
  }
  for (int& b : x) b = rng.bernoulli(0.5) ? 1 : 0;

  CiMTile tile(ArrayConfig::proposed_2t1fefet(), w);
  EXPECT_EQ(tile.segments_per_row(), 3);
  const CiMTile::Result r = tile.multiply(x, 27.0, adc());
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.errors(), 0);
  ASSERT_EQ(r.v_acc[0].size(), 3u);
}

TEST(CiMTile, StableAcrossTemperature) {
  const std::vector<std::vector<int>> w = {{1, 1, 0, 1, 0, 1, 1, 1}};
  const std::vector<int> x = {1, 0, 1, 1, 1, 1, 0, 1};
  CiMTile tile(ArrayConfig::proposed_2t1fefet(), w);
  for (double t : {0.0, 27.0, 85.0}) {
    const CiMTile::Result r = tile.multiply(x, t, adc());
    ASSERT_TRUE(r.converged) << "T=" << t;
    EXPECT_EQ(r.errors(), 0) << "T=" << t;
  }
}

TEST(CiMTile, RejectsBadMatrices) {
  EXPECT_THROW(CiMTile(ArrayConfig::proposed_2t1fefet(), {}),
               std::invalid_argument);
  EXPECT_THROW(CiMTile(ArrayConfig::proposed_2t1fefet(), {{1, 0}, {1}}),
               std::invalid_argument);
}

TEST(AsciiPlot, RendersSeriesAndLegend) {
  util::AsciiPlot plot(32, 8);
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y1 = {0, 1, 2, 3, 4};
  const std::vector<double> y2 = {4, 3, 2, 1, 0};
  plot.add_series("up", x, y1, '*');
  plot.add_series("down", x, y2, 'o');
  const std::string art = plot.render();
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('o'), std::string::npos);
  EXPECT_NE(art.find("legend"), std::string::npos);
  EXPECT_NE(art.find("up"), std::string::npos);
}

TEST(AsciiPlot, HandlesDegenerateRanges) {
  util::AsciiPlot plot;
  const std::vector<double> x = {1.0, 1.0};
  const std::vector<double> y = {2.0, 2.0};
  plot.add_series("flat", x, y, '#');
  EXPECT_NE(plot.render().find('#'), std::string::npos);
  util::AsciiPlot empty;
  EXPECT_NE(empty.render().find("empty"), std::string::npos);
}

}  // namespace
}  // namespace sfc::cim
