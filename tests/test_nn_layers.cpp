// NN layer tests: forward-shape correctness, finite-difference gradient
// checks for every trainable layer, pooling/dropout semantics, and the
// softmax/cross-entropy head.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/model.hpp"

namespace sfc::nn {
namespace {

Tensor random_tensor(std::vector<int> shape, sfc::util::Rng& rng) {
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return t;
}

/// Finite-difference check of dLoss/dInput and dLoss/dParams for a layer,
/// where Loss = sum(w_i * y_i) with fixed random weights w.
void check_gradients(Layer& layer, const Tensor& input, double tol) {
  sfc::util::Rng rng(7);
  LayerContext ctx;
  Tensor y = layer.forward(input, ctx);
  Tensor loss_w = random_tensor(y.shape(), rng);

  auto loss_of = [&](const Tensor& out) {
    double l = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i) l += loss_w[i] * out[i];
    return l;
  };

  // Analytic gradients.
  layer.zero_gradients();
  Tensor grad_out = loss_w;
  const Tensor grad_in = layer.backward(grad_out);

  // FD on the input.
  const double h = 1e-3;
  Tensor x = input;
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 17)) {
    const float orig = x[i];
    x[i] = orig + static_cast<float>(h);
    const double lp = loss_of(layer.forward(x, ctx));
    x[i] = orig - static_cast<float>(h);
    const double lm = loss_of(layer.forward(x, ctx));
    x[i] = orig;
    const double fd = (lp - lm) / (2.0 * h);
    EXPECT_NEAR(grad_in[i], fd, tol + std::fabs(fd) * 0.02) << "input idx " << i;
  }

  // Restore the cached forward state, then FD on parameters.
  layer.zero_gradients();
  layer.forward(input, ctx);
  layer.backward(grad_out);
  const auto params = layer.parameters();
  const auto grads = layer.gradients();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    const Tensor& g = *grads[pi];
    for (std::size_t i = 0; i < p.size(); i += std::max<std::size_t>(1, p.size() / 13)) {
      const float orig = p[i];
      p[i] = orig + static_cast<float>(h);
      const double lp = loss_of(layer.forward(input, ctx));
      p[i] = orig - static_cast<float>(h);
      const double lm = loss_of(layer.forward(input, ctx));
      p[i] = orig;
      const double fd = (lp - lm) / (2.0 * h);
      EXPECT_NEAR(g[i], fd, tol + std::fabs(fd) * 0.02)
          << "param " << pi << " idx " << i;
    }
  }
}

TEST(Conv2d, OutputShapeSamePadding) {
  sfc::util::Rng rng(1);
  Conv2d conv(3, 8, 3, true, rng);
  EXPECT_EQ(conv.output_shape({3, 32, 32}), (std::vector<int>{8, 32, 32}));
  LayerContext ctx;
  const Tensor y = conv.forward(random_tensor({3, 8, 8}, rng), ctx);
  EXPECT_EQ(y.shape(), (std::vector<int>{8, 8, 8}));
}

TEST(Conv2d, ValidPaddingShrinks) {
  sfc::util::Rng rng(1);
  Conv2d conv(1, 1, 3, false, rng);
  EXPECT_EQ(conv.output_shape({1, 8, 8}), (std::vector<int>{1, 6, 6}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  sfc::util::Rng rng(1);
  Conv2d conv(1, 1, 3, true, rng);
  conv.weight().fill(0.0f);
  conv.weight()[4] = 1.0f;  // center tap
  conv.bias().fill(0.0f);
  LayerContext ctx;
  const Tensor x = random_tensor({1, 5, 5}, rng);
  const Tensor y = conv.forward(x, ctx);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i], x[i], 1e-6);
  }
}

TEST(Conv2d, GradientsMatchFiniteDifferences) {
  sfc::util::Rng rng(2);
  Conv2d conv(2, 3, 3, true, rng);
  check_gradients(conv, random_tensor({2, 6, 6}, rng), 2e-2);
}

TEST(Dense, ForwardMatchesManualDot) {
  sfc::util::Rng rng(3);
  Dense dense(4, 2, rng);
  Tensor x({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  LayerContext ctx;
  const Tensor y = dense.forward(x, ctx);
  for (int o = 0; o < 2; ++o) {
    float expect = dense.bias()[static_cast<std::size_t>(o)];
    for (int i = 0; i < 4; ++i) {
      expect += dense.weight()[static_cast<std::size_t>(o * 4 + i)] * x[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(o)], expect, 1e-6);
  }
}

TEST(Dense, GradientsMatchFiniteDifferences) {
  sfc::util::Rng rng(4);
  Dense dense(10, 5, rng);
  check_gradients(dense, random_tensor({10}, rng), 1e-2);
}

TEST(MaxPool, ForwardAndRouting) {
  MaxPool2d pool(2);
  Tensor x({1, 2, 2}, {1.0f, 5.0f, 3.0f, 2.0f});
  LayerContext ctx;
  const Tensor y = pool.forward(x, ctx);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  // Gradient routes only to the argmax.
  Tensor g({1, 1, 1}, {2.0f});
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 2.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 0.0f);
}

TEST(Relu, ForwardBackward) {
  Relu relu;
  Tensor x({4}, {-1.0f, 0.0f, 2.0f, -3.0f});
  LayerContext ctx;
  const Tensor y = relu.forward(x, ctx);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor g({4}, {1.0f, 1.0f, 1.0f, 1.0f});
  const Tensor gx = relu.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[2], 1.0f);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout drop(0.5);
  LayerContext ctx;  // training = false
  sfc::util::Rng rng(5);
  const Tensor x = random_tensor({100}, rng);
  const Tensor y = drop.forward(x, ctx);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainingPreservesExpectation) {
  Dropout drop(0.4);
  sfc::util::Rng rng(6);
  LayerContext ctx;
  ctx.training = true;
  ctx.rng = &rng;
  Tensor x({2000});
  x.fill(1.0f);
  double sum = 0.0;
  int zeros = 0;
  const Tensor y = drop.forward(x, ctx);
  for (std::size_t i = 0; i < y.size(); ++i) {
    sum += y[i];
    if (y[i] == 0.0f) ++zeros;
  }
  EXPECT_NEAR(sum / 2000.0, 1.0, 0.08);  // inverted dropout
  EXPECT_NEAR(zeros / 2000.0, 0.4, 0.05);
}

TEST(InstanceNorm, NormalizesPerChannel) {
  InstanceNorm2d norm(2);
  sfc::util::Rng rng(12);
  const Tensor x = random_tensor({2, 4, 4}, rng);
  LayerContext ctx;
  const Tensor y = norm.forward(x, ctx);
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (int i = 0; i < 16; ++i) mean += y[static_cast<std::size_t>(c * 16 + i)];
    mean /= 16.0;
    for (int i = 0; i < 16; ++i) {
      const double d = y[static_cast<std::size_t>(c * 16 + i)] - mean;
      var += d * d;
    }
    var /= 16.0;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(InstanceNorm, GammaBetaAffine) {
  InstanceNorm2d norm(1);
  norm.parameters()[0]->fill(2.0f);   // gamma
  norm.parameters()[1]->fill(-1.0f);  // beta
  sfc::util::Rng rng(13);
  const Tensor x = random_tensor({1, 3, 3}, rng);
  LayerContext ctx;
  const Tensor y = norm.forward(x, ctx);
  double mean = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) mean += y[i];
  EXPECT_NEAR(mean / static_cast<double>(y.size()), -1.0, 1e-5);
}

TEST(InstanceNorm, GradientsMatchFiniteDifferences) {
  InstanceNorm2d norm(2);
  sfc::util::Rng rng(14);
  check_gradients(norm, random_tensor({2, 4, 4}, rng), 2e-2);
}

TEST(Flatten, RoundTrip) {
  Flatten flat;
  sfc::util::Rng rng(8);
  const Tensor x = random_tensor({2, 3, 4}, rng);
  LayerContext ctx;
  const Tensor y = flat.forward(x, ctx);
  EXPECT_EQ(y.shape(), (std::vector<int>{24}));
  const Tensor back = flat.backward(y);
  EXPECT_EQ(back.shape(), x.shape());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(back[i], x[i]);
}

TEST(Softmax, SumsToOne) {
  Tensor logits({4}, {1.0f, 2.0f, 3.0f, 4.0f});
  const Tensor probs = softmax(logits);
  float sum = 0.0f;
  for (std::size_t i = 0; i < probs.size(); ++i) sum += probs[i];
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_EQ(argmax(probs), 3);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  Tensor logits({3}, {1000.0f, 1001.0f, 999.0f});
  const Tensor probs = softmax(logits);
  EXPECT_TRUE(std::isfinite(probs[0]));
  EXPECT_EQ(argmax(probs), 1);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  Tensor logits({5}, {0.2f, -0.5f, 1.0f, 0.0f, 0.3f});
  Tensor grad;
  softmax_cross_entropy(logits, 2, &grad);
  const double h = 1e-3;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(h);
    lm[i] -= static_cast<float>(h);
    const double fd = (softmax_cross_entropy(lp, 2, nullptr) -
                       softmax_cross_entropy(lm, 2, nullptr)) /
                      (2 * h);
    EXPECT_NEAR(grad[i], fd, 1e-3);
  }
}

TEST(Sequential, ShapePropagationAndParamCount) {
  sfc::util::Rng rng(9);
  Sequential net;
  net.add<Conv2d>(1, 2, 3, true, rng);
  net.add<Relu>();
  net.add<MaxPool2d>(2);
  net.add<Flatten>();
  net.add<Dense>(2 * 4 * 4, 10, rng);
  const std::string summary = net.summary({1, 8, 8});
  EXPECT_NE(summary.find("Conv2d"), std::string::npos);
  EXPECT_NE(summary.find("Dense"), std::string::npos);
  // params: conv 2*1*9+2=20, dense 32*10+10=330.
  EXPECT_EQ(net.num_parameters(), 350u);
}

TEST(Sequential, SaveLoadWeightsRoundTrip) {
  sfc::util::Rng rng(10);
  Sequential a;
  a.add<Dense>(4, 3, rng);
  Sequential b;
  b.add<Dense>(4, 3, rng);  // different init
  const std::string path = "/tmp/sfc_weights_test.bin";
  a.save_weights(path);
  b.load_weights(path);
  LayerContext ctx;
  const Tensor x({4}, {1.0f, -1.0f, 0.5f, 2.0f});
  const Tensor ya = a.forward(x, ctx);
  const Tensor yb = b.forward(x, ctx);
  for (std::size_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sfc::nn
