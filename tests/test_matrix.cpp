// Dense LU solver tests, including the singular and permutation-heavy
// cases the MNA assembly can produce.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/matrix.hpp"
#include "util/rng.hpp"

namespace sfc::spice {
namespace {

TEST(DenseMatrix, ZeroInitializedAndIndexable) {
  DenseMatrix m(3, 3);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
  m.at(1, 2) = 4.5;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.5);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.0);
}

TEST(LuSolve, Identity) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(1, 1) = 1.0;
  std::vector<double> b = {3.0, -7.0};
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], -7.0);
}

TEST(LuSolve, RequiresPivoting) {
  // Zero on the initial diagonal forces a row swap.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 1.0;
  std::vector<double> b = {1.0, 4.0};  // x = (1.5, 1)
  ASSERT_TRUE(lu_solve(a, b));
  EXPECT_NEAR(b[0], 1.5, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(LuSolve, SingularDetected) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  std::vector<double> b = {1.0, 2.0};
  EXPECT_FALSE(lu_solve(a, b));
}

TEST(LuSolve, EmptySystem) {
  DenseMatrix a(0, 0);
  std::vector<double> b;
  EXPECT_TRUE(lu_solve(a, b));
}

TEST(LuSolve, RandomSystemsRoundTrip) {
  util::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_index(30));
    DenseMatrix a(n, n);
    std::vector<double> x_true(n);
    for (std::size_t i = 0; i < n; ++i) {
      x_true[i] = rng.uniform(-5.0, 5.0);
      for (std::size_t j = 0; j < n; ++j) {
        a.at(i, j) = rng.uniform(-1.0, 1.0);
      }
      a.at(i, i) += 3.0;  // keep well conditioned
    }
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * x_true[j];
    }
    std::vector<double> x;
    DenseMatrix scratch;
    ASSERT_TRUE(lu_solve_copy(a, b, x, scratch));
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8) << "trial " << trial << " i " << i;
    }
  }
}

TEST(LuSolve, CopyVariantPreservesInputs) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = 4.0;
  const std::vector<double> b = {2.0, 8.0};
  std::vector<double> x;
  DenseMatrix scratch;
  ASSERT_TRUE(lu_solve_copy(a, b, x, scratch));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(b[1], 8.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
}

TEST(DenseMatrix, FrobeniusNorm) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 3.0;
  m.at(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

}  // namespace
}  // namespace sfc::spice
