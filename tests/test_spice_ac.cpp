// AC small-signal analysis tests: RC/RL transfer functions against
// closed-form expressions, MOSFET amplifier gain vs gm*R, and phasor
// bookkeeping (magnitude/phase/bandwidth helpers).
#include <gtest/gtest.h>

#include <cmath>

#include "devices/mosfet.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"

namespace sfc::spice {
namespace {

TEST(Ac, RcLowPassMatchesClosedForm) {
  // R = 1k, C = 1n -> f_c = 1/(2 pi RC) ~ 159.2 kHz.
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  auto& vin = ckt.add<VSource>("VIN", in, kGround, 0.0);
  vin.set_ac_magnitude(1.0);
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, kGround, 1e-9);

  Engine engine(ckt, 27.0);
  const auto freqs = log_frequency_grid(1e3, 1e8, 20);
  const AcResult res = engine.ac(freqs);
  ASSERT_TRUE(res.converged);

  const double fc = 1.0 / (2.0 * M_PI * 1e3 * 1e-9);
  for (std::size_t i = 0; i < res.num_points(); ++i) {
    const double f = res.frequencies()[i];
    const double expected = 1.0 / std::sqrt(1.0 + (f / fc) * (f / fc));
    EXPECT_NEAR(res.magnitude("out", i), expected, expected * 0.01 + 1e-6)
        << "f=" << f;
    const double expected_phase = -std::atan(f / fc) * 180.0 / M_PI;
    EXPECT_NEAR(res.phase_deg("out", i), expected_phase, 1.0) << "f=" << f;
  }
  EXPECT_NEAR(res.bandwidth_3db("out"), fc, fc * 0.05);
}

TEST(Ac, RcHighPass) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  auto& vin = ckt.add<VSource>("VIN", in, kGround, 0.0);
  vin.set_ac_magnitude(1.0);
  ckt.add<Capacitor>("C1", in, out, 1e-9);
  ckt.add<Resistor>("R1", out, kGround, 1e3);

  Engine engine(ckt, 27.0);
  const AcResult res = engine.ac({1e3, 159155.0, 1e8});
  ASSERT_TRUE(res.converged);
  EXPECT_LT(res.magnitude("out", 0), 0.05);              // blocks DC-ish
  EXPECT_NEAR(res.magnitude("out", 1), 1.0 / std::sqrt(2.0), 0.01);
  EXPECT_NEAR(res.magnitude("out", 2), 1.0, 0.01);       // passes HF
}

TEST(Ac, RlcResonance) {
  // Series RLC driven at resonance: the output across R equals the input
  // (voltage across L and C cancel).
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  const auto out = ckt.node("out");
  auto& vin = ckt.add<VSource>("VIN", in, kGround, 0.0);
  vin.set_ac_magnitude(1.0);
  ckt.add<Inductor>("L1", in, mid, 1e-6);
  ckt.add<Capacitor>("C1", mid, out, 1e-9);
  ckt.add<Resistor>("R1", out, kGround, 10.0);

  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(1e-6 * 1e-9));
  Engine engine(ckt, 27.0);
  const AcResult res = engine.ac({f0});
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.magnitude("out", 0), 1.0, 0.02);
}

TEST(Ac, QuietSourceGivesZeroResponse) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VSource>("VIN", in, kGround, 1.0);  // DC only, no AC excitation
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, kGround, 1e-12);
  Engine engine(ckt, 27.0);
  const AcResult res = engine.ac({1e6});
  ASSERT_TRUE(res.converged);
  EXPECT_LT(res.magnitude("out", 0), 1e-12);
}

TEST(Ac, CommonSourceGainTracksGmTimesRd) {
  // NMOS common-source stage biased in strong inversion; low-frequency
  // gain must equal gm*Rd (with gds correction), and the output pole
  // 1/(2 pi Rd CL) must appear.
  Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto gate = ckt.node("g");
  const auto out = ckt.node("out");
  ckt.add<VSource>("VDD", vdd, kGround, 1.2);
  auto& vg = ckt.add<VSource>("VG", gate, kGround, 0.6);
  vg.set_ac_magnitude(1.0);
  const double rd = 1e5;
  ckt.add<Resistor>("RD", vdd, out, rd);
  const auto params = devices::MosfetParams::finfet14_nmos(8.0);
  ckt.add<devices::Mosfet>("M1", out, gate, kGround, params);
  const double cl = 10e-15;
  ckt.add<Capacitor>("CL", out, kGround, cl);

  Engine engine(ckt, 27.0);
  const AcResult res = engine.ac({1e3, 1e12});
  ASSERT_TRUE(res.converged);

  // Analytic gm/gds at the solved bias.
  const double v_out_dc = res.op.voltage("out");
  const auto ev = devices::evaluate_mosfet(params, 0.6, v_out_dc, 0.0, 27.0);
  const double expected_gain = ev.gm_g / (1.0 / rd + ev.gm_d);
  EXPECT_NEAR(res.magnitude("out", 0), expected_gain,
              expected_gain * 0.02);
  // Far beyond the pole (f >> 1/(2 pi Rd CL) ~ 160 MHz) the gain must
  // have collapsed by orders of magnitude.
  EXPECT_LT(res.magnitude("out", 1), expected_gain * 0.05);
}

TEST(Ac, VcvsIsFrequencyFlat) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  auto& vin = ckt.add<VSource>("VIN", in, kGround, 0.0);
  vin.set_ac_magnitude(0.5);
  ckt.add<Vcvs>("E1", out, kGround, in, kGround, 8.0);
  ckt.add<Resistor>("RL", out, kGround, 1e3);
  Engine engine(ckt, 27.0);
  const AcResult res = engine.ac({1e2, 1e6, 1e10});
  ASSERT_TRUE(res.converged);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(res.magnitude("out", i), 4.0, 1e-6);
  }
}

TEST(Ac, LogFrequencyGrid) {
  const auto grid = log_frequency_grid(1e3, 1e6, 10);
  EXPECT_NEAR(grid.front(), 1e3, 1e-9);
  EXPECT_NEAR(grid.back(), 1e6, 1.0);
  EXPECT_EQ(grid.size(), 31u);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(Ac, UnknownSignalThrows) {
  Circuit ckt;
  const auto in = ckt.node("in");
  auto& vin = ckt.add<VSource>("VIN", in, kGround, 0.0);
  vin.set_ac_magnitude(1.0);
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  Engine engine(ckt, 27.0);
  const AcResult res = engine.ac({1e3});
  ASSERT_TRUE(res.converged);
  EXPECT_THROW(res.magnitude("nope", 0), std::out_of_range);
}

}  // namespace
}  // namespace sfc::spice
