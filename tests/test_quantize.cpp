// Quantization + CiM dot-engine tests: int8 inference must track float
// inference; the bit-serial CiM engine with an ideal (exactly decoding)
// array must equal the digital int8 reference bit-for-bit; temperature
// and noise must corrupt it in controlled ways.
#include <gtest/gtest.h>

#include "cim/behavioral.hpp"
#include "nn/cim_engine.hpp"
#include "nn/trainer.hpp"
#include "nn/vgg.hpp"

namespace sfc::nn {
namespace {

sfc::data::SynthCifarConfig tiny_data() {
  sfc::data::SynthCifarConfig cfg;
  cfg.train_per_class = 24;
  cfg.test_per_class = 6;
  cfg.noise_sigma = 0.06;
  return cfg;
}

struct TrainedFixture {
  sfc::data::Dataset train = sfc::data::make_synth_cifar_train(tiny_data());
  sfc::data::Dataset test = sfc::data::make_synth_cifar_test(tiny_data());
  Sequential net;
  QuantizedNetwork qnet;

  TrainedFixture() {
    sfc::util::Rng rng(21);
    net.add<Conv2d>(3, 6, 3, true, rng);
    net.add<Relu>();
    net.add<MaxPool2d>(2);
    net.add<Conv2d>(6, 10, 3, true, rng);
    net.add<Relu>();
    net.add<MaxPool2d>(2);
    net.add<MaxPool2d>(2);
    net.add<Flatten>();
    net.add<Dense>(160, 10, rng);
    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.batch_size = 8;
    cfg.learning_rate = 0.05;
    Trainer trainer(net, cfg);
    trainer.fit(train);
    qnet = QuantizedNetwork::from_model(net, train, 16);
  }
};

TrainedFixture& fixture() {
  static TrainedFixture f;
  return f;
}

TEST(IdealDotEngine, ExactIntegerDot) {
  IdealDotEngine engine;
  const std::vector<std::uint8_t> a = {1, 2, 3, 255};
  const std::vector<std::int8_t> w = {1, -1, 2, -127};
  EXPECT_EQ(engine.dot(a, w), 1 - 2 + 6 - 255LL * 127);
}

TEST(Quantize, Int8TracksFloatAccuracy) {
  auto& f = fixture();
  const double float_acc = Trainer::evaluate(f.net, f.test);
  IdealDotEngine ideal;
  const double int8_acc = f.qnet.evaluate(f.test, ideal);
  EXPECT_GT(float_acc, 0.4);
  EXPECT_GT(int8_acc, float_acc - 0.15);  // small quantization drop
}

TEST(Quantize, MacCountMatchesArchitecture) {
  auto& f = fixture();
  // conv1: 32*32*6*3*9, conv2: 16*16*10*6*9, fc: 160*10.
  const std::int64_t expected =
      32LL * 32 * 6 * 3 * 9 + 16LL * 16 * 10 * 6 * 9 + 160LL * 10;
  EXPECT_EQ(f.qnet.macs_per_inference(), expected);
}

TEST(CimEngine, BitSerialEqualsIdealWithPerfectArray) {
  // With the proposed array at its design temperature every 8-cell count
  // decodes exactly, so the bit-serial path must match the integer dot
  // bit-for-bit - on full network inference, not just a toy vector.
  auto& f = fixture();
  static const sfc::cim::BehavioralArrayModel model =
      sfc::cim::BehavioralArrayModel::calibrate(
          sfc::cim::ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});
  CimDotEngine::Options opts;
  opts.temperature_c = 27.0;
  CimDotEngine cim(model, opts);
  IdealDotEngine ideal;
  for (int i = 0; i < 4; ++i) {
    const auto& img = f.test.images[static_cast<std::size_t>(i)];
    const Tensor a = f.qnet.forward(img, ideal);
    const Tensor b = f.qnet.forward(img, cim);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_FLOAT_EQ(a[k], b[k]) << "image " << i << " logit " << k;
    }
  }
  EXPECT_EQ(cim.row_errors(), 0);
  EXPECT_GT(cim.row_ops(), 0);
}

TEST(CimEngine, RawDotsMatchAcrossLengths) {
  static const sfc::cim::BehavioralArrayModel model =
      sfc::cim::BehavioralArrayModel::calibrate(
          sfc::cim::ArrayConfig::proposed_2t1fefet(), {27.0});
  CimDotEngine::Options opts;
  CimDotEngine cim(model, opts);
  IdealDotEngine ideal;
  sfc::util::Rng rng(31);
  for (const std::size_t len : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 200u}) {
    std::vector<std::uint8_t> a(len);
    std::vector<std::int8_t> w(len);
    for (std::size_t i = 0; i < len; ++i) {
      a[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
      w[i] = static_cast<std::int8_t>(
          static_cast<int>(rng.uniform_index(255)) - 127);
    }
    EXPECT_EQ(cim.dot(a, w), ideal.dot(a, w)) << "len=" << len;
  }
}

TEST(CimEngine, RowOpsAccounting) {
  static const sfc::cim::BehavioralArrayModel model =
      sfc::cim::BehavioralArrayModel::calibrate(
          sfc::cim::ArrayConfig::proposed_2t1fefet(), {27.0});
  CimDotEngine cim(model, {});
  const std::vector<std::uint8_t> a(16, 1);
  const std::vector<std::int8_t> w(16, 1);
  cim.dot(a, w);
  // 16 elements = 2 groups; 8 activation planes x 7 weight planes x
  // (pos+neg) = 112 plane passes x 2 groups.
  EXPECT_EQ(cim.row_ops(), 2LL * 2 * 8 * 7);
  cim.reset_counters();
  EXPECT_EQ(cim.row_ops(), 0);
}

TEST(CimEngine, MiscountingArrayCorruptsDots) {
  // Build a deliberately broken model: thresholds shifted so counts
  // decode wrong at high temperature (use the subthreshold baseline).
  static const sfc::cim::BehavioralArrayModel baseline =
      sfc::cim::BehavioralArrayModel::calibrate(
          sfc::cim::ArrayConfig::baseline_1r_subthreshold(),
          {0.0, 27.0, 85.0});
  CimDotEngine::Options opts;
  opts.temperature_c = 85.0;
  CimDotEngine cim(baseline, opts);
  IdealDotEngine ideal;
  // Half-active groups: mid MAC counts are where the drifted baseline
  // levels cross the fixed ADC thresholds.
  std::vector<std::uint8_t> a(64);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = (i % 2) ? 255 : 0;
  std::vector<std::int8_t> w(64, 127);
  const auto got = cim.dot(a, w);
  const auto want = ideal.dot(a, w);
  EXPECT_NE(got, want);
  EXPECT_GT(cim.row_errors(), 0);
}

TEST(CimEngine, NoiseDrawsAreDeterministicPerSeed) {
  sfc::cim::MonteCarloConfig mc;
  mc.runs = 4;
  mc.sigma_vt_fefet = 0.054;
  static const sfc::cim::BehavioralArrayModel model =
      sfc::cim::BehavioralArrayModel::calibrate(
          sfc::cim::ArrayConfig::proposed_2t1fefet(), {27.0}, &mc);
  CimDotEngine::Options opts;
  opts.with_variation_noise = true;
  opts.noise_seed = 5;
  std::vector<std::uint8_t> a(64, 200);
  std::vector<std::int8_t> w(64, 100);
  CimDotEngine e1(model, opts), e2(model, opts);
  EXPECT_EQ(e1.dot(a, w), e2.dot(a, w));
}

}  // namespace
}  // namespace sfc::nn
