// NMR (Eqs. 2-3) and normalized-fluctuation metric tests, including
// parameterized property sweeps over synthetic level layouts.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/metrics.hpp"
#include "util/rng.hpp"

namespace sfc::cim {
namespace {

std::vector<LevelRange> uniform_levels(int n, double spacing, double width) {
  std::vector<LevelRange> levels;
  for (int k = 0; k <= n; ++k) {
    LevelRange r;
    r.mac = k;
    r.lo = k * spacing - width / 2;
    r.hi = k * spacing + width / 2;
    levels.push_back(r);
  }
  return levels;
}

TEST(Nmr, UniformLevelsMatchClosedForm) {
  // spacing 10, width 2 -> gap = 8, NMR = 4 everywhere.
  const auto levels = uniform_levels(8, 10.0, 2.0);
  const auto nmr = noise_margin_rates(levels);
  ASSERT_EQ(nmr.size(), 8u);
  for (double v : nmr) EXPECT_NEAR(v, 4.0, 1e-9);
  const auto s = summarize_nmr(levels);
  EXPECT_NEAR(s.nmr_min, 4.0, 1e-9);
  EXPECT_TRUE(s.separable);
}

TEST(Nmr, OverlapIsNegative) {
  auto levels = uniform_levels(3, 10.0, 2.0);
  levels[2].lo = levels[1].hi - 5.0;  // force overlap between 1 and 2
  const auto s = summarize_nmr(levels);
  EXPECT_LT(s.nmr_min, 0.0);
  EXPECT_EQ(s.argmin_mac, 1);
  EXPECT_FALSE(s.separable);
}

TEST(Nmr, TouchingLevelsAreZero) {
  auto levels = uniform_levels(2, 10.0, 10.0);  // ranges touch exactly
  const auto nmr = noise_margin_rates(levels);
  for (double v : nmr) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Nmr, PaperExampleValue) {
  // Reproduce the arithmetic of NMR_0 = 0.22: width w, gap 0.22*w.
  std::vector<LevelRange> levels(2);
  levels[0] = {0, 0.00, 0.10};
  levels[1] = {1, 0.10 + 0.022, 0.20};
  const auto nmr = noise_margin_rates(levels);
  EXPECT_NEAR(nmr[0], 0.22, 1e-9);
}

TEST(Nmr, DegenerateZeroWidthStaysFinite) {
  std::vector<LevelRange> levels(2);
  levels[0] = {0, 0.05, 0.05};  // zero width
  levels[1] = {1, 0.10, 0.12};
  const auto nmr = noise_margin_rates(levels);
  EXPECT_TRUE(std::isfinite(nmr[0]));
  EXPECT_GT(nmr[0], 0.0);
}

TEST(Nmr, EmptyAndSingleLevel) {
  EXPECT_TRUE(noise_margin_rates({}).empty());
  std::vector<LevelRange> one(1);
  one[0] = {0, 0.0, 1.0};
  EXPECT_TRUE(noise_margin_rates(one).empty());
  EXPECT_FALSE(summarize_nmr(one).separable);
}

TEST(Fluctuation, KnownSeries) {
  const std::vector<double> temps = {0.0, 27.0, 85.0};
  const std::vector<double> values = {0.8, 1.0, 1.4};
  EXPECT_NEAR(max_normalized_fluctuation(temps, values, 27.0), 0.4, 1e-12);
  const auto norm = normalize_to_reference(temps, values, 27.0);
  EXPECT_NEAR(norm[0], 0.8, 1e-12);
  EXPECT_NEAR(norm[2], 1.4, 1e-12);
}

TEST(Fluctuation, ReferenceMatchedToNearestGridPoint) {
  const std::vector<double> temps = {0.0, 25.0, 85.0};
  const std::vector<double> values = {1.0, 2.0, 3.0};
  // 27C reference snaps to the 25C point (value 2).
  EXPECT_NEAR(max_normalized_fluctuation(temps, values, 27.0), 0.5, 1e-12);
}

TEST(Fluctuation, FlatSeriesIsZero) {
  const std::vector<double> temps = {0.0, 50.0, 85.0};
  const std::vector<double> values = {2.5, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(max_normalized_fluctuation(temps, values, 27.0), 0.0);
}

// Property sweep: for random non-overlapping level layouts, NMR_min must
// be positive; shrinking every gap to negative must flip the sign.
class NmrProperty : public ::testing::TestWithParam<int> {};

TEST_P(NmrProperty, SeparabilityDetection) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 8;
  std::vector<LevelRange> levels;
  double cursor = 0.0;
  for (int k = 0; k <= n; ++k) {
    const double width = rng.uniform(0.01, 0.05);
    const double gap = rng.uniform(0.01, 0.08);
    LevelRange r;
    r.mac = k;
    r.lo = cursor;
    r.hi = cursor + width;
    cursor += width + gap;
    levels.push_back(r);
  }
  const auto s = summarize_nmr(levels);
  EXPECT_GT(s.nmr_min, 0.0);
  EXPECT_TRUE(s.separable);

  // Now inflate every range so neighbours overlap.
  auto overlapped = levels;
  for (auto& r : overlapped) {
    r.lo -= 0.2;
    r.hi += 0.2;
  }
  EXPECT_LT(summarize_nmr(overlapped).nmr_min, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NmrProperty, ::testing::Range(1, 21));

}  // namespace
}  // namespace sfc::cim
