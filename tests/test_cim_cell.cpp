// Cell-level CiM tests: multiplication truth table, temperature behaviour
// of the three cell configurations (Figs. 3 and 7), and the feedback
// mechanism of the proposed 2T-1FeFET cell.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/mac.hpp"

namespace sfc::cim {
namespace {

const std::vector<double> kTemps = {0.0, 27.0, 85.0};

double out_level(const ArrayConfig& cfg, int stored, int input, double t) {
  const auto resp = cell_temperature_response(cfg, {t}, stored, input);
  EXPECT_TRUE(resp.at(0).converged);
  return resp.at(0).v_out;
}

TEST(Cell2T, MultiplicationTruthTable) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const double v11 = out_level(cfg, 1, 1, 27.0);
  const double v10 = out_level(cfg, 1, 0, 27.0);
  const double v01 = out_level(cfg, 0, 1, 27.0);
  const double v00 = out_level(cfg, 0, 0, 27.0);
  // Only stored=1 AND input=1 produces a high output.
  EXPECT_GT(v11, 0.08);
  EXPECT_LT(v10, 0.1 * v11);
  EXPECT_LT(v01, 0.1 * v11);
  EXPECT_LT(v00, 0.1 * v11);
}

TEST(Cell2T, OutputBelowSlRail) {
  // The follower must settle below the SL rail (not clamp to it), or the
  // analog level carries no information.
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  for (double t : kTemps) {
    const double v = out_level(cfg, 1, 1, t);
    EXPECT_LT(v, cfg.bias.v_sl - 0.02) << "T=" << t;
    EXPECT_GT(v, 0.05) << "T=" << t;
  }
}

TEST(Cell2T, TemperatureResilienceBeatsSubthresholdBaseline) {
  // Fig. 7 vs Fig. 3(b): the proposed cell's output fluctuation must be
  // well below the subthreshold 1FeFET-1R cell's.
  auto fluct_2t = [&] {
    const auto resp = cell_temperature_response(
        ArrayConfig::proposed_2t1fefet(), kTemps, 1, 1);
    std::vector<double> t, i;
    for (const auto& r : resp) {
      t.push_back(r.temperature_c);
      i.push_back(r.i_avg);
    }
    return max_normalized_fluctuation(t, i, 27.0);
  }();
  auto fluct_sub = [&] {
    const auto resp = cell_current_response(
        ArrayConfig::baseline_1r_subthreshold(), kTemps, 1, 1);
    std::vector<double> t, i;
    for (const auto& r : resp) {
      t.push_back(r.temperature_c);
      i.push_back(r.i_drain);
    }
    return max_normalized_fluctuation(t, i, 27.0);
  }();
  EXPECT_LT(fluct_2t, 0.15);
  EXPECT_GT(fluct_sub, 0.2);
  EXPECT_LT(fluct_2t, 0.6 * fluct_sub);
}

TEST(Cell1R, SubthresholdWorseThanSaturation) {
  // Fig. 3(a) vs (b): current-mode drift comparison.
  auto fluct = [&](const ArrayConfig& cfg) {
    const auto resp = cell_current_response(cfg, kTemps, 1, 1);
    std::vector<double> t, i;
    for (const auto& r : resp) {
      EXPECT_TRUE(r.converged);
      t.push_back(r.temperature_c);
      i.push_back(r.i_drain);
    }
    return max_normalized_fluctuation(t, i, 27.0);
  };
  const double f_sat = fluct(ArrayConfig::baseline_1r_saturation());
  const double f_sub = fluct(ArrayConfig::baseline_1r_subthreshold());
  EXPECT_GT(f_sub, f_sat);
  // Paper: 20.6% vs 52.1%. Our bands: sat in [5%, 45%], sub > sat.
  EXPECT_GT(f_sat, 0.05);
  EXPECT_LT(f_sat, 0.45);
}

TEST(Cell1R, SaturationCurrentMuchLargerThanSubthreshold) {
  const auto sat = cell_current_response(
      ArrayConfig::baseline_1r_saturation(), {27.0}, 1, 1);
  const auto sub = cell_current_response(
      ArrayConfig::baseline_1r_subthreshold(), {27.0}, 1, 1);
  EXPECT_GT(sat.at(0).i_drain, 100.0 * sub.at(0).i_drain);
}

TEST(Cell1R, StoredZeroConductsAlmostNothing) {
  for (const auto& cfg : {ArrayConfig::baseline_1r_saturation(),
                          ArrayConfig::baseline_1r_subthreshold()}) {
    const auto on = cell_current_response(cfg, {27.0}, 1, 1);
    const auto off = cell_current_response(cfg, {27.0}, 0, 1);
    EXPECT_GT(on.at(0).i_drain, 1e4 * std::max(off.at(0).i_drain, 1e-30));
  }
}

TEST(Cell2T, FeedbackReducesDrift) {
  // Ablation: breaking the feedback (M2 gate held at ground instead of
  // OUT) must increase the temperature drift of the output. We emulate the
  // broken loop by making M2 so weak that the loop gain vanishes.
  ArrayConfig nominal = ArrayConfig::proposed_2t1fefet();
  ArrayConfig broken = nominal;
  broken.cell2t.m2.w = broken.cell2t.m2.w * 1e-3;  // loop effectively open

  auto drift = [&](const ArrayConfig& cfg) {
    const double v0 = out_level(cfg, 1, 1, 0.0);
    const double v85 = out_level(cfg, 1, 1, 85.0);
    return std::fabs(v85 - v0);
  };
  EXPECT_LT(drift(nominal), drift(broken));
}

TEST(Cell2T, WlDisableBlocksLeakage) {
  // With the WL underdrive the input-0 cell must stay quiet even hot; with
  // WL grounded the FeFET leak lifts the internal node and the output
  // creeps (the NMR_0 failure analyzed in DESIGN.md).
  ArrayConfig with_disable = ArrayConfig::proposed_2t1fefet();
  ArrayConfig grounded = with_disable;
  grounded.bias.v_wl_off = 0.0;
  const double quiet = out_level(with_disable, 1, 0, 85.0);
  const double creep = out_level(grounded, 1, 0, 85.0);
  EXPECT_LT(quiet, 0.002);
  EXPECT_GT(creep, quiet);
}

TEST(CellConfigs, WlReadLevelSelection) {
  EXPECT_DOUBLE_EQ(ArrayConfig::proposed_2t1fefet().wl_read_level(), 0.35);
  EXPECT_DOUBLE_EQ(ArrayConfig::baseline_1r_subthreshold().wl_read_level(),
                   0.35);
  EXPECT_DOUBLE_EQ(ArrayConfig::baseline_1r_saturation().wl_read_level(),
                   1.3);
}

}  // namespace
}  // namespace sfc::cim
