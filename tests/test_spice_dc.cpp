// DC operating-point tests: Kirchhoff sanity on canonical linear circuits,
// nonlinear diode bias points, controlled sources, and gmin-stepping
// robustness.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/diode.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"
#include "spice/sweep.hpp"

namespace sfc::spice {
namespace {

TEST(DcOp, VoltageDivider) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add<VSource>("V1", in, kGround, 10.0);
  ckt.add<Resistor>("R1", in, mid, 1000.0);
  ckt.add<Resistor>("R2", mid, kGround, 3000.0);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  // gmin (1e-12 S per node) makes the solution exact only to ~1e-8.
  EXPECT_NEAR(op.voltage("mid"), 7.5, 1e-7);
  // Branch current through the source: 10V over 4k = 2.5mA, flowing out of
  // the + terminal (negative in MNA convention).
  EXPECT_NEAR(op.current("V1"), -2.5e-3, 1e-10);
}

TEST(DcOp, CurrentSourceIntoResistor) {
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add<ISource>("I1", kGround, out, 1e-3);
  ckt.add<Resistor>("R1", out, kGround, 2000.0);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("out"), 2.0, 1e-7);
}

TEST(DcOp, SeriesSourcesSuperpose) {
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  ckt.add<VSource>("V1", a, kGround, 3.0);
  ckt.add<VSource>("V2", b, a, 2.0);  // stacked
  ckt.add<Resistor>("RL", b, kGround, 1000.0);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("b"), 5.0, 1e-9);
}

TEST(DcOp, CapacitorIsOpenAtDc) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VSource>("V1", in, kGround, 5.0);
  ckt.add<Resistor>("R1", in, out, 1000.0);
  ckt.add<Capacitor>("C1", out, kGround, 1e-9);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  // No DC path to ground through the cap: the node floats to the source
  // level through R1 (gmin gives a negligible drop).
  EXPECT_NEAR(op.voltage("out"), 5.0, 1e-6);
}

TEST(DcOp, InductorIsShortAtDc) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VSource>("V1", in, kGround, 1.0);
  ckt.add<Resistor>("R1", in, out, 500.0);
  ckt.add<Inductor>("L1", out, kGround, 1e-6);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("out"), 0.0, 1e-9);
}

TEST(DcOp, DiodeForwardDropNearIdeal) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VSource>("V1", in, kGround, 5.0);
  ckt.add<Resistor>("R1", in, out, 10000.0);
  ckt.add<devices::Diode>("D1", out, kGround);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  const double vd = op.voltage("out");
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
  // KCL at the diode node: (5 - vd)/10k equals the diode current.
  devices::Diode probe("probe", 0, 1);
  EXPECT_NEAR((5.0 - vd) / 1e4, probe.current(vd, 27.0),
              (5.0 - vd) / 1e4 * 0.01);
}

TEST(DcOp, DiodeCurrentIncreasesWithTemperature) {
  auto bias_current = [](double temp_c) {
    Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add<VSource>("V1", in, kGround, 2.0);
    ckt.add<Resistor>("R1", in, out, 100000.0);
    ckt.add<devices::Diode>("D1", out, kGround);
    Engine engine(ckt, temp_c);
    const DcResult op = engine.dc_operating_point();
    EXPECT_TRUE(op.converged);
    return (2.0 - op.voltage("out")) / 1e5;
  };
  EXPECT_GT(bias_current(85.0), bias_current(0.0));
}

TEST(DcOp, VcvsGain) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VSource>("V1", in, kGround, 0.25);
  ckt.add<Vcvs>("E1", out, kGround, in, kGround, 4.0);
  ckt.add<Resistor>("RL", out, kGround, 1000.0);

  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("out"), 1.0, 1e-9);
}

TEST(DcOp, SwitchOnOffConductance) {
  VSwitch::Params params;
  params.r_on = 100.0;
  params.r_off = 1e12;
  params.v_threshold = 0.6;
  params.v_width = 0.05;

  for (const double ctrl_level : {0.0, 1.2}) {
    Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    const auto ctrl = ckt.node("ctrl");
    ckt.add<VSource>("V1", in, kGround, 1.0);
    ckt.add<VSource>("VC", ctrl, kGround, ctrl_level);
    ckt.add<VSwitch>("S1", in, out, ctrl, params);
    ckt.add<Resistor>("RL", out, kGround, 1000.0);

    Engine engine(ckt, 27.0);
    const DcResult op = engine.dc_operating_point();
    ASSERT_TRUE(op.converged);
    if (ctrl_level > 0.6) {
      EXPECT_NEAR(op.voltage("out"), 1000.0 / 1100.0, 1e-6);
    } else {
      EXPECT_LT(op.voltage("out"), 1e-6);
    }
  }
}

TEST(DcOp, VccsTransconductance) {
  // gm = 2 mS from a 0.5 V control into a 1 kOhm load: i = 1 mA -> 1 V.
  Circuit ckt;
  const auto ctrl = ckt.node("ctrl");
  const auto out = ckt.node("out");
  ckt.add<VSource>("VC", ctrl, kGround, 0.5);
  ckt.add<Vccs>("G1", kGround, out, ctrl, kGround, 2e-3);
  ckt.add<Resistor>("RL", out, kGround, 1000.0);
  Engine engine(ckt, 27.0);
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("out"), 1.0, 1e-6);
}

TEST(DcOp, NodeGuessAccepted) {
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add<ISource>("I1", kGround, out, 1e-6);
  ckt.add<Resistor>("R1", out, kGround, 1e6);
  Engine engine(ckt, 27.0);
  engine.set_node_guess("out", 0.9);
  engine.set_node_guess("no_such_node", 3.0);  // silently ignored
  const DcResult op = engine.dc_operating_point();
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.voltage("out"), 1.0, 1e-6);
}

TEST(DcSweep, LinearResistorSweepIsLinear) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto mid = ckt.node("mid");
  ckt.add<VSource>("V1", in, kGround, 0.0);
  ckt.add<Resistor>("R1", in, mid, 1000.0);
  ckt.add<Resistor>("R2", mid, kGround, 1000.0);

  SweepSpec spec;
  spec.values = linspace_step(0.0, 2.0, 0.5);
  spec.apply = [](Circuit& c, double v) {
    static_cast<VSource*>(c.find("V1"))->set_dc(v);
  };
  spec.continuation = true;
  const auto points = run_sweep(ckt, spec);
  ASSERT_EQ(points.size(), 5u);
  for (const auto& p : points) {
    ASSERT_TRUE(p.op.converged);
    EXPECT_NEAR(p.op.voltage("mid"), p.value / 2.0, 1e-9);
  }
}

TEST(Sweep, LinspaceHelpers) {
  const auto grid = linspace_step(0.0, 1.0, 0.25);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);

  const auto grid2 = linspace_count(-1.0, 1.0, 5);
  ASSERT_EQ(grid2.size(), 5u);
  EXPECT_DOUBLE_EQ(grid2[2], 0.0);
}

TEST(Circuit, DuplicateDeviceNameRejected) {
  Circuit ckt;
  ckt.add<Resistor>("R1", ckt.node("a"), kGround, 100.0);
  EXPECT_THROW(ckt.add<Resistor>("R1", ckt.node("b"), kGround, 100.0),
               std::invalid_argument);
}

TEST(Circuit, GroundAliases) {
  Circuit ckt;
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_EQ(ckt.node("GND"), kGround);
  EXPECT_EQ(ckt.node_name(kGround), "0");
}

TEST(Circuit, SummaryListsDevices) {
  Circuit ckt;
  ckt.add<Resistor>("Rx", ckt.node("n1"), kGround, 42.0);
  const std::string s = ckt.summary();
  EXPECT_NE(s.find("Rx"), std::string::npos);
  EXPECT_NE(s.find("n1"), std::string::npos);
}

}  // namespace
}  // namespace sfc::spice
