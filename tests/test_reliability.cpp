// Reliability physics tests: retention (thermal depolarization) and read
// disturb on the Preisach model, and their array-level consequences.
#include <gtest/gtest.h>

#include <cmath>

#include "cim/array.hpp"
#include "fefet/preisach.hpp"

namespace sfc::fefet {
namespace {

constexpr double kYear = 3.156e7;  // seconds

TEST(Retention, ArrheniusOrdering) {
  PreisachModel fe;
  // Hotter -> faster depolarization.
  EXPECT_LT(fe.retention_tau(85.0), fe.retention_tau(27.0));
  EXPECT_LT(fe.retention_tau(125.0), fe.retention_tau(85.0));
  // Ten-year-class retention at 85 degC (HfO2 FeFET ballpark).
  EXPECT_GT(fe.retention_tau(85.0), 10.0 * kYear);
}

TEST(Retention, AgingDecaysPolarizationTowardZero) {
  PreisachModel fe;
  fe.write_bit(true, 27.0);
  const double p0 = fe.polarization();
  fe.age(10.0 * kYear, 85.0);
  const double p1 = fe.polarization();
  EXPECT_LT(p1, p0);
  EXPECT_GT(p1, 0.9);  // still clearly a '1' after 10 years at 85C
  // The high state decays symmetrically (toward zero, i.e. upward).
  PreisachModel hi;
  hi.write_bit(false, 27.0);
  const double h0 = hi.polarization();
  hi.age(10.0 * kYear, 85.0);
  EXPECT_GT(hi.polarization(), h0);
}

TEST(Retention, ZeroAndNegativeTimeAreNoOps) {
  PreisachModel fe;
  fe.write_bit(true, 27.0);
  const double p = fe.polarization();
  fe.age(0.0, 85.0);
  fe.age(-5.0, 85.0);
  EXPECT_DOUBLE_EQ(fe.polarization(), p);
}

TEST(Retention, AgingIsComposable) {
  PreisachModel a, b;
  a.write_bit(true, 27.0);
  b.write_bit(true, 27.0);
  a.age(2.0 * kYear, 85.0);
  a.age(3.0 * kYear, 85.0);
  b.age(5.0 * kYear, 85.0);
  EXPECT_NEAR(a.polarization(), b.polarization(), 1e-12);
}

TEST(ReadDisturb, SingleReadIsNegligible) {
  PreisachModel fe;
  fe.write_bit(true, 27.0);
  const double p0 = fe.polarization();
  fe.read_disturb(-0.2, 5e-9, 1, 85.0);
  EXPECT_NEAR(fe.polarization(), p0, 1e-9);
}

TEST(ReadDisturb, BillionsOfOpposingReadsAccumulate) {
  PreisachModel fe;
  fe.write_bit(true, 27.0);
  fe.read_disturb(-0.2, 5e-9, 1000000000L, 85.0);
  const double p = fe.polarization();
  EXPECT_LT(p, 0.999);  // measurable shift...
  EXPECT_GT(p, 0.5);    // ...but nowhere near a flip
}

TEST(ReadDisturb, AlignedReadsDoNotDegrade) {
  // Positive read pulses push toward the already-stored '1'.
  PreisachModel fe;
  fe.write_bit(true, 27.0);
  const double p0 = fe.polarization();
  fe.read_disturb(0.35, 5e-9, 1000000000L, 85.0);
  EXPECT_GE(fe.polarization(), p0 - 1e-9);
}

TEST(ReadDisturb, HigherVoltageDisturbsMore) {
  PreisachModel a, b;
  a.write_bit(true, 27.0);
  b.write_bit(true, 27.0);
  a.read_disturb(-0.2, 5e-9, 100000000L, 85.0);
  b.read_disturb(-0.5, 5e-9, 100000000L, 85.0);
  EXPECT_LT(b.polarization(), a.polarization());
}

TEST(ReadDisturb, AboveCoerciveActsAsWrite) {
  PreisachModel fe;
  fe.write_bit(false, 27.0);
  // One long effective pulse far above every coercive voltage.
  fe.read_disturb(4.0, 115e-9, 1, 27.0);
  EXPECT_GT(fe.polarization(), 0.9);
}

TEST(ArrayReliability, DecodeSurvivesDecadeBake) {
  // Age every FeFET of a programmed row by 10 years at 85C; the row must
  // still produce monotone, well-separated MAC levels at 27C.
  sfc::cim::CiMRow row(sfc::cim::ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(8, 1));
  for (int i = 0; i < 8; ++i) {
    row.cell(i).fefet->ferroelectric().age(10.0 * kYear, 85.0);
  }
  double prev = -1.0;
  for (int k = 0; k <= 8; k += 2) {
    std::vector<int> inputs(8, 0);
    for (int i = 0; i < k; ++i) inputs[static_cast<std::size_t>(i)] = 1;
    const auto r = row.evaluate(inputs, 27.0);
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.v_acc, prev);
    prev = r.v_acc;
  }
}

}  // namespace
}  // namespace sfc::fefet
