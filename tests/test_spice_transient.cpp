// Transient engine tests: RC charging against the analytic solution,
// integration-method accuracy, breakpoint alignment on pulse edges, switch
// dynamics, and source energy accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "spice/engine.hpp"
#include "spice/primitives.hpp"

namespace sfc::spice {
namespace {

Circuit make_rc(double r, double c, double v, VSource** src = nullptr) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  auto& v1 = ckt.add<VSource>("V1", in, kGround, v);
  ckt.add<Resistor>("R1", in, out, r);
  ckt.add<Capacitor>("C1", out, kGround, c, /*ic=*/0.0);
  if (src) *src = &v1;
  return ckt;
}

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // tau = 1us; simulate 3 tau.
  Circuit ckt = make_rc(1e3, 1e-9, 1.0);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 1e-8;
  const TransientResult tr = engine.transient(3e-6, opts);
  ASSERT_TRUE(tr.converged);
  for (double t : {0.5e-6, 1e-6, 2e-6, 3e-6}) {
    const double expected = 1.0 - std::exp(-t / 1e-6);
    EXPECT_NEAR(tr.at("out", t), expected, 5e-3) << "t=" << t;
  }
}

TEST(Transient, TrapezoidalBeatsBackwardEulerOnRc) {
  auto run = [](IntegrationMethod method) {
    Circuit ckt = make_rc(1e3, 1e-9, 1.0);
    Engine engine(ckt, 27.0);
    TransientOptions opts;
    opts.dt = 5e-8;  // coarse on purpose
    opts.method = method;
    const TransientResult tr = engine.transient(1e-6, opts);
    EXPECT_TRUE(tr.converged);
    const double expected = 1.0 - std::exp(-1.0);
    return std::fabs(tr.at("out", 1e-6) - expected);
  };
  EXPECT_LT(run(IntegrationMethod::kTrapezoidal),
            run(IntegrationMethod::kBackwardEuler));
}

TEST(Transient, CapacitorInitialConditionHonored) {
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add<Resistor>("R1", out, kGround, 1e6);
  ckt.add<Capacitor>("C1", out, kGround, 1e-12, /*ic=*/2.0);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 1e-8;
  const TransientResult tr = engine.transient(1e-6, opts);
  ASSERT_TRUE(tr.converged);
  // Discharges from the IC with tau = 1us (the DC op says 0V, but the IC
  // overrides the starting charge).
  EXPECT_NEAR(tr.at("out", 1e-6), 2.0 * std::exp(-1.0), 0.02);
}

TEST(Transient, PulseEdgesAreCaptured) {
  Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<VSource>(
      "V1", in, kGround,
      Waveform::pulse(0.0, 1.0, 10e-9, 1e-9, 1e-9, 20e-9, 0.0, 1));
  ckt.add<Resistor>("R1", in, kGround, 1e3);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 7e-9;  // deliberately incommensurate with the edges
  const TransientResult tr = engine.transient(50e-9, opts);
  ASSERT_TRUE(tr.converged);
  EXPECT_NEAR(tr.at("in", 5e-9), 0.0, 1e-9);
  EXPECT_NEAR(tr.at("in", 11e-9), 1.0, 1e-9);
  EXPECT_NEAR(tr.at("in", 30e-9), 1.0, 1e-9);
  EXPECT_NEAR(tr.at("in", 40e-9), 0.0, 1e-9);
}

TEST(Transient, RlDecayMatchesAnalytic) {
  // Current source charges L through R: i_L settles to source current.
  Circuit ckt;
  const auto out = ckt.node("out");
  ckt.add<ISource>("I1", kGround, out, 1e-3);
  ckt.add<Resistor>("R1", out, kGround, 100.0);
  ckt.add<Inductor>("L1", out, kGround, 1e-5);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 1e-8;
  const TransientResult tr = engine.transient(1e-6, opts);
  ASSERT_TRUE(tr.converged);
  // tau = L/R = 100ns; after 1us the inductor shorts the node.
  EXPECT_NEAR(tr.final_value("out"), 0.0, 5e-3);
}

TEST(Transient, SourceEnergyMatchesCapacitorEnergyPlusLoss) {
  // Charging a cap through a resistor from an ideal source: the source
  // delivers C*V^2, half stored, half dissipated.
  const double c = 1e-9, v = 2.0;
  Circuit ckt = make_rc(1e3, c, v);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 1e-8;
  const TransientResult tr = engine.transient(10e-6, opts);  // 10 tau
  ASSERT_TRUE(tr.converged);
  const double delivered = tr.total_source_energy();
  EXPECT_NEAR(delivered, c * v * v, c * v * v * 0.02);
}

TEST(Transient, SwitchConnectsMidRun) {
  // Cap charged to 1V shares onto an equal cap through the EN switch.
  Circuit ckt;
  const auto a = ckt.node("a");
  const auto b = ckt.node("b");
  const auto en = ckt.node("en");
  ckt.add<Capacitor>("CA", a, kGround, 1e-12, /*ic=*/1.0);
  ckt.add<Capacitor>("CB", b, kGround, 1e-12, /*ic=*/0.0);
  ckt.add<VSource>(
      "VEN", en, kGround,
      Waveform::pulse(0.0, 1.2, 5e-9, 0.1e-9, 0.1e-9, 100e-9, 0.0, 1));
  VSwitch::Params sw;
  sw.r_on = 1e3;
  sw.r_off = 1e13;
  ckt.add<VSwitch>("S1", a, b, en, sw);

  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 5e-11;
  const TransientResult tr = engine.transient(60e-9, opts);
  ASSERT_TRUE(tr.converged);
  // Before EN: no sharing.
  EXPECT_NEAR(tr.at("b", 4e-9), 0.0, 1e-3);
  // After: charge shared equally -> 0.5V each (RC share tau = 1ns).
  EXPECT_NEAR(tr.final_value("a"), 0.5, 0.01);
  EXPECT_NEAR(tr.final_value("b"), 0.5, 0.01);
}

TEST(Transient, RecordsBranchCurrents) {
  Circuit ckt = make_rc(1e3, 1e-9, 1.0);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 1e-8;
  const TransientResult tr = engine.transient(1e-6, opts);
  ASSERT_TRUE(tr.converged);
  ASSERT_TRUE(tr.has_signal("I(V1)"));
  // Initial inrush ~ V/R = 1mA (negative by MNA convention).
  EXPECT_NEAR(tr.value("I(V1)", 1), -1e-3, 1e-4);
}

TEST(Transient, WaveformRecordingCanBeDisabled) {
  Circuit ckt = make_rc(1e3, 1e-9, 1.0);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 1e-8;
  opts.record_waveforms = false;
  const TransientResult tr = engine.transient(1e-6, opts);
  ASSERT_TRUE(tr.converged);
  EXPECT_EQ(tr.num_samples(), 1u);  // only the final state
  EXPECT_NEAR(tr.final_value("out"), 1.0 - std::exp(-1.0), 5e-3);
}

TEST(Transient, AdaptiveSteppingTracksAccuracyWithFewerSteps) {
  // Adaptive mode must stay accurate on the RC step response while taking
  // fewer samples than the fixed fine step.
  auto run = [](bool adaptive) {
    Circuit ckt = make_rc(1e3, 1e-9, 1.0);
    Engine engine(ckt, 27.0);
    TransientOptions opts;
    opts.dt = 5e-9;
    opts.adaptive = adaptive;
    opts.dt_max = 1e-7;
    const TransientResult tr = engine.transient(3e-6, opts);
    EXPECT_TRUE(tr.converged);
    return tr;
  };
  const TransientResult fixed = run(false);
  const TransientResult adaptive = run(true);
  EXPECT_LT(adaptive.num_samples(), fixed.num_samples() / 2);
  for (double t : {0.5e-6, 1e-6, 2e-6}) {
    const double expected = 1.0 - std::exp(-t / 1e-6);
    EXPECT_NEAR(adaptive.at("out", t), expected, 0.01) << "t=" << t;
  }
}

TEST(Transient, AdaptiveStillHitsPulseEdges) {
  Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<VSource>(
      "V1", in, kGround,
      Waveform::pulse(0.0, 1.0, 100e-9, 1e-9, 1e-9, 50e-9, 0.0, 1));
  ckt.add<Resistor>("R1", in, out, 1e3);
  ckt.add<Capacitor>("C1", out, kGround, 1e-12, 0.0);
  Engine engine(ckt, 27.0);
  TransientOptions opts;
  opts.dt = 2e-9;
  opts.adaptive = true;
  opts.dt_max = 40e-9;  // would overshoot the pulse if corners were missed
  const TransientResult tr = engine.transient(300e-9, opts);
  ASSERT_TRUE(tr.converged);
  EXPECT_NEAR(tr.at("in", 99e-9), 0.0, 1e-9);
  EXPECT_NEAR(tr.at("in", 120e-9), 1.0, 1e-9);
  EXPECT_NEAR(tr.at("out", 150e-9), 1.0, 0.01);  // fully charged in pulse
  EXPECT_NEAR(tr.at("in", 200e-9), 0.0, 1e-9);
}

TEST(TransientResult, InterpolationAndErrors) {
  TransientResult tr;
  tr.set_signal_names({"x"});
  tr.append_sample(0.0, {0.0});
  tr.append_sample(1.0, {10.0});
  EXPECT_DOUBLE_EQ(tr.at("x", 0.5), 5.0);
  EXPECT_DOUBLE_EQ(tr.at("x", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(tr.at("x", 2.0), 10.0);
  EXPECT_THROW(tr.at("nope", 0.5), std::out_of_range);
}

}  // namespace
}  // namespace sfc::spice
