// Tests for the netlist static analyzer (src/lint): one positive and one
// negative case per rule, the JSON report schema round-trip, the Engine
// pre-flight gate, a sweep asserting every deck in examples/ lints clean,
// and the fuzz cross-check (200 generated-valid decks draw zero
// diagnostics).
#include <algorithm>
#include <filesystem>
#include <optional>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "devices/mosfet.hpp"
#include "lint/analysis.hpp"
#include "lint/baseline.hpp"
#include "lint/interval.hpp"
#include "lint/linter.hpp"
#include "lint/preflight.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"
#include "spice/engine.hpp"
#include "spice/netlist.hpp"
#include "spice/primitives.hpp"
#include "verify/fuzz.hpp"
#include "verify/json.hpp"

namespace lint = sfc::lint;
namespace spice = sfc::spice;

namespace {

/// First diagnostic of `rule` in the report, if any.
std::optional<lint::Diagnostic> find_rule(const lint::LintReport& report,
                                          const std::string& rule) {
  for (const auto& d : report.diagnostics()) {
    if (d.rule == rule) return d;
  }
  return std::nullopt;
}

lint::LintReport lint_text(const std::string& text) {
  return lint::lint_source(text).report;
}

}  // namespace

// ---------------------------------------------------------------- rules

TEST(LintRules, FloatingNodeFlagged) {
  // Node x sees only a current source and a capacitor: in DC neither
  // conducts, so the island has no path to ground. Previously this only
  // surfaced inside the Newton solver (gmin-saturated nonsense voltage or
  // a singular matrix); the linter now reports it statically.
  const std::string deck =
      "* floating island\n"
      "V1 a 0 1.0\n"
      "R1 a 0 10k\n"
      "I1 0 x 1u\n"
      "C1 x 0 1p\n"
      ".end\n";
  const lint::LintReport report = lint_text(deck);
  const auto d = find_rule(report, "floating-node");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kError);
  EXPECT_EQ(d->line, 4u);  // anchored at I1, the island's first card
  EXPECT_EQ(d->object, "x");
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(LintRules, FloatingNodeNegativeAndTransientCapacitors) {
  // A bleed resistor fixes the island.
  EXPECT_TRUE(
      lint_text("V1 a 0 1.0\nR1 a 0 10k\nI1 0 x 1u\nC1 x 0 1p\n"
                "RX x 0 1meg\n.end\n")
          .clean());
  // With a .tran directive the capacitor's companion model conducts, so
  // the same topology is legal.
  EXPECT_TRUE(lint_text("V1 a 0 1.0\nR1 a 0 10k\nI1 0 x 1u\nC1 x 0 1p\n"
                        ".tran 1n 10n\n.end\n")
                  .clean());
}

TEST(LintRules, VsourceLoopFlagged) {
  const std::string deck =
      "* parallel sources over-determine node a\n"
      "V1 a 0 1.0\n"
      "V2 a 0 2.0\n"
      "R1 a 0 1k\n"
      ".end\n";
  const lint::LintReport report = lint_text(deck);
  const auto d = find_rule(report, "vsource-loop");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kError);
  EXPECT_EQ(d->line, 3u);  // the second source closes the loop
  EXPECT_EQ(d->object, "V2");
  EXPECT_EQ(report.exit_code(), 3);
}

TEST(LintRules, VsourceLoopViaInductorAndShort) {
  // Inductors are DC shorts, so V + L in parallel is a loop too.
  EXPECT_TRUE(find_rule(lint_text("V1 a 0 1.0\nL1 a 0 1u\nR1 a 0 1k\n.end\n"),
                        "vsource-loop")
                  .has_value());
  // A source with both terminals on one node is the degenerate loop.
  const auto d =
      find_rule(lint_text("V1 x x 1.0\nR1 x 0 1k\n.end\n"), "vsource-loop");
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->message.find("shorted"), std::string::npos);
  // Series-connected sources are fine.
  EXPECT_TRUE(
      lint_text("V1 a 0 1.0\nV2 b a 1.0\nR1 b 0 1k\n.end\n").clean());
}

TEST(LintRules, DanglingTerminalWarned) {
  const std::string deck =
      "V1 a 0 1.0\n"
      "R1 a b 10k\n"
      ".end\n";
  const lint::LintReport report = lint_text(deck);
  const auto d = find_rule(report, "dangling-terminal");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kWarning);
  EXPECT_EQ(d->line, 2u);
  EXPECT_NE(d->message.find("'b'"), std::string::npos);
  EXPECT_EQ(report.exit_code(), 2);  // warnings only
  // Closing the divider clears it.
  EXPECT_TRUE(
      lint_text("V1 a 0 1.0\nR1 a b 10k\nR2 b 0 10k\n.end\n").clean());
}

TEST(LintRules, UnusedNodeNoted) {
  spice::Circuit circuit;
  const spice::NodeId a = circuit.node("a");
  circuit.add<spice::VSource>("V1", a, spice::kGround, 1.0);
  circuit.add<spice::Resistor>("R1", a, spice::kGround, 1e3);
  circuit.node("orphan");
  const lint::LintReport report = lint::Linter{}.run(circuit);
  const auto d = find_rule(report, "unused-node");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kNote);
  EXPECT_EQ(d->object, "orphan");
  // Untouched nodes are NOT also reported as floating.
  EXPECT_FALSE(find_rule(report, "floating-node").has_value());
  EXPECT_EQ(report.exit_code(), 1);
}

TEST(LintRules, FefetVthWindowFlagged) {
  // The Preisach model refuses to even construct with an inverted window,
  // so the deck path reports this at parse time under the same rule id.
  const std::string bad =
      "V1 g 0 0.35\n"
      "R1 g d 10k\n"
      "Z1 d g 0 state=1 vthlow=1.8 vthhigh=0.3\n"
      ".end\n";
  const auto d = find_rule(lint_text(bad), "fefet-vth-window");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kError);
  EXPECT_EQ(d->line, 3u);
  EXPECT_NE(d->message.find("Z1"), std::string::npos);
  const std::string good =
      "V1 g 0 0.35\n"
      "R1 g d 10k\n"
      "Z1 d g 0 state=1 vthlow=0.25 vthhigh=1.7\n"
      ".end\n";
  EXPECT_FALSE(find_rule(lint_text(good), "fefet-vth-window").has_value());
}

TEST(LintRules, NonpositiveValueFromParserAndApi) {
  // The parser rejects the card; the linter surfaces it as a diagnostic
  // instead of crashing.
  const lint::LintResult result = lint::lint_source("R1 a 0 -5\n.end\n");
  EXPECT_FALSE(result.parsed);
  const auto d = find_rule(result.report, "nonpositive-value");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->line, 1u);
  // API-built circuits reach the circuit-level rule: a zero-width MOSFET
  // never went through a card, so only the lint pass can catch it.
  spice::Circuit circuit;
  const spice::NodeId dnode = circuit.node("d");
  const spice::NodeId g = circuit.node("g");
  circuit.add<spice::VSource>("VD", dnode, spice::kGround, 0.5);
  circuit.add<spice::VSource>("VG", g, spice::kGround, 0.5);
  auto& m = circuit.add<sfc::devices::Mosfet>("M1", dnode, g, spice::kGround,
                                              sfc::devices::MosfetParams{});
  m.mutable_params().w = 0.0;  // bypasses the constructor's validation
  const auto d2 =
      find_rule(lint::Linter{}.run(circuit), "nonpositive-value");
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->object, "M1");
}

TEST(LintRules, TranStepFlagged) {
  const std::string base = "V1 a 0 1.0\nR1 a 0 1k\n";
  EXPECT_TRUE(
      find_rule(lint_text(base + ".tran 2n 1n\n.end\n"), "tran-step")
          .has_value());  // dt > t_stop
  EXPECT_TRUE(
      find_rule(lint_text(base + ".tran 0 5n\n.end\n"), "tran-step")
          .has_value());  // dt <= 0
  EXPECT_TRUE(lint_text(base + ".tran 1n 10n\n.end\n").clean());
}

TEST(LintRules, TempRangeWarned) {
  const std::string base = "V1 a 0 1.0\nR1 a 0 1k\n";
  const auto hot = find_rule(lint_text(base + ".temp 125\n.end\n"),
                             "temp-range");
  ASSERT_TRUE(hot.has_value());
  EXPECT_EQ(hot->severity, lint::Severity::kWarning);
  EXPECT_EQ(hot->line, 3u);
  EXPECT_TRUE(find_rule(lint_text(base + ".temp -40\n.end\n"), "temp-range")
                  .has_value());
  // The paper's validated envelope is 0..85 degC inclusive.
  EXPECT_TRUE(lint_text(base + ".temp 0\n.end\n").clean());
  EXPECT_TRUE(lint_text(base + ".temp 85\n.end\n").clean());
}

TEST(LintRules, UnusedModelWarned) {
  const std::string deck =
      ".model lonely nmos vth0=0.4\n"
      "V1 a 0 1.0\n"
      "R1 a 0 1k\n"
      ".end\n";
  const auto d = find_rule(lint_text(deck), "unused-model");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kWarning);
  EXPECT_EQ(d->line, 1u);
  EXPECT_EQ(d->object, "lonely");
  const std::string used =
      ".model busy nmos vth0=0.4\n"
      "V1 d 0 0.5\n"
      "V2 g 0 0.5\n"
      "M1 d g 0 busy\n"
      ".end\n";
  EXPECT_FALSE(find_rule(lint_text(used), "unused-model").has_value());
}

TEST(LintRules, DcSweepSourceFlagged) {
  EXPECT_TRUE(find_rule(lint_text("V1 a 0 1.0\nR1 a 0 1k\n"
                                  ".dc VX 0 1 0.1\n.end\n"),
                        "dc-sweep-source")
                  .has_value());  // sweep target missing
  EXPECT_TRUE(find_rule(lint_text("V1 a 0 1.0\nR1 a 0 1k\n"
                                  ".dc R1 0 1 0.1\n.end\n"),
                        "dc-sweep-source")
                  .has_value());  // target is not a V source
  EXPECT_TRUE(find_rule(lint_text("V1 a 0 1.0\nR1 a 0 1k\n"
                                  ".dc V1 0 1 0\n.end\n"),
                        "dc-sweep-source")
                  .has_value());  // zero step never terminates
  EXPECT_TRUE(
      lint_text("V1 a 0 1.0\nR1 a 0 1k\n.dc V1 0 1 0.1\n.end\n").clean());
}

TEST(LintRules, EmptyDeckNoted) {
  const lint::LintReport report = lint_text("* nothing but comments\n.end\n");
  const auto d = find_rule(report, "empty-deck");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kNote);
  EXPECT_EQ(report.exit_code(), 1);
}

// ------------------------------------------------------- parse-time rules

TEST(LintParseRules, DuplicateDeviceIsHardErrorWithBothLines) {
  const std::string deck =
      "R1 a 0 1k\n"
      "V1 a 0 1.0\n"
      "R1 a 0 2k\n"
      ".end\n";
  spice::Circuit circuit;
  try {
    spice::parse_netlist(deck, circuit);
    FAIL() << "duplicate device name must be a parse error";
  } catch (const spice::NetlistError& e) {
    EXPECT_EQ(e.rule(), "duplicate-device");
    EXPECT_EQ(e.line(), 3u);
    // The message names both definitions.
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
  // Through the linter the same failure is a diagnostic, not a crash.
  const lint::LintResult result = lint::lint_source(deck);
  EXPECT_FALSE(result.parsed);
  const auto d = find_rule(result.report, "duplicate-device");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->line, 3u);
  EXPECT_NE(d->message.find("line 1"), std::string::npos);
}

TEST(LintParseRules, ModelAndSubcktDiagnostics) {
  EXPECT_TRUE(find_rule(lint_text(".model m nmos\n.model m nmos\n.end\n"),
                        "duplicate-model")
                  .has_value());
  EXPECT_TRUE(find_rule(lint_text("V1 d 0 0.5\nM1 d d 0 ghost\n.end\n"),
                        "undefined-model")
                  .has_value());
  EXPECT_TRUE(find_rule(lint_text("X1 a b ghost\n.end\n"), "undefined-subckt")
                  .has_value());
  const std::string mismatch =
      ".subckt cell in out\nR1 in out 1k\n.ends\n"
      "V1 a 0 1.0\n"
      "X1 a cell\n"
      ".end\n";
  EXPECT_TRUE(
      find_rule(lint_text(mismatch), "subckt-port-mismatch").has_value());
}

TEST(LintParseRules, UnknownCardAndDirective) {
  EXPECT_TRUE(
      find_rule(lint_text("Q1 a b c 5\n.end\n"), "unknown-card").has_value());
  EXPECT_TRUE(find_rule(lint_text("V1 a 0 1.0\nR1 a 0 1k\n.frobnicate\n.end\n"),
                        "unknown-directive")
                  .has_value());
}

// ------------------------------------------------------------ pipeline

TEST(LintPipeline, RuleTableHasAtLeastTenUniqueIds) {
  std::set<std::string> ids;
  for (const auto& rule : lint::builtin_rules()) ids.insert(rule.id);
  EXPECT_GE(ids.size(), 10u);
  EXPECT_EQ(ids.size(), lint::builtin_rules().size()) << "duplicate rule id";
  std::set<std::string> parse_ids;
  for (const auto& rule : lint::parse_rules()) parse_ids.insert(rule.id);
  EXPECT_GE(parse_ids.size(), 5u);
}

TEST(LintPipeline, EnableDisableByRuleId) {
  const std::string deck =
      "V1 a 0 1.0\nR1 a 0 10k\nI1 0 x 1u\nC1 x 0 1p\n.end\n";
  lint::Linter linter;
  linter.disable("floating-node");
  EXPECT_FALSE(
      find_rule(lint::lint_source(deck, linter).report, "floating-node")
          .has_value());
  linter.enable("floating-node");
  EXPECT_TRUE(
      find_rule(lint::lint_source(deck, linter).report, "floating-node")
          .has_value());
  EXPECT_THROW(linter.disable("not-a-rule"), std::runtime_error);
}

TEST(LintPipeline, ReportIsSortedByLine) {
  const std::string deck =
      "I1 0 x 1u\n"
      "C1 x 0 1p\n"
      "V1 a 0 1.0\n"
      "R1 a b 10k\n"
      ".temp 125\n"
      ".end\n";
  const lint::LintReport report = lint_text(deck);
  ASSERT_GE(report.diagnostics().size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      report.diagnostics().begin(), report.diagnostics().end(),
      [](const lint::Diagnostic& a, const lint::Diagnostic& b) {
        return a.line < b.line;
      }));
}

// ---------------------------------------------------------------- JSON

TEST(LintJson, ReportRoundTripsThroughCanonicalJson) {
  const std::string deck =
      "V1 a 0 1.0\nR1 a b 10k\nI1 0 x 1u\nC1 x 0 1p\n.temp 125\n.end\n";
  const lint::LintReport report = lint_text(deck);
  ASSERT_FALSE(report.clean());
  const sfc::verify::Json j = report.to_json("deck.cir");
  EXPECT_EQ(j.number_at("schema_version"), 1.0);
  EXPECT_EQ(j.string_at("source"), "deck.cir");
  // dump -> parse -> from_json -> to_json is byte-identical.
  const sfc::verify::Json reparsed = sfc::verify::Json::parse(j.dump());
  const lint::LintReport back = lint::LintReport::from_json(reparsed);
  EXPECT_EQ(back.to_json("deck.cir").dump(), j.dump());
  EXPECT_EQ(back.diagnostics().size(), report.diagnostics().size());
  EXPECT_EQ(back.count(lint::Severity::kError),
            report.count(lint::Severity::kError));
}

TEST(LintJson, SeverityNamesRoundTrip) {
  for (const auto s : {lint::Severity::kNote, lint::Severity::kWarning,
                       lint::Severity::kError}) {
    EXPECT_EQ(lint::severity_from_name(lint::severity_name(s)), s);
  }
  EXPECT_THROW(lint::severity_from_name("fatal"), std::runtime_error);
}

// ------------------------------------------------------------- preflight

TEST(LintPreflight, EngineRejectsFloatingDeckBeforeSolving) {
  const std::string deck =
      "V1 a 0 1.0\nR1 a 0 10k\nI1 0 x 1u\nC1 x 0 1p\n.end\n";
  spice::Circuit circuit;
  const spice::NetlistDeck parsed = spice::parse_netlist(deck, circuit);
  spice::Engine engine(circuit, parsed.temperature_c);
  lint::install_preflight(engine, &parsed);
  try {
    engine.dc_operating_point();
    FAIL() << "pre-flight gate should have fired";
  } catch (const lint::PreflightError& e) {
    EXPECT_TRUE(e.report().has_errors());
    EXPECT_NE(std::string(e.what()).find("floating-node"), std::string::npos);
  }
  // The gate keeps rejecting on retry (a failing screen is not cached).
  EXPECT_THROW(engine.dc_operating_point(), lint::PreflightError);
}

TEST(LintPreflight, CleanDeckSolvesNormally) {
  const std::string deck = "V1 a 0 1.0\nR1 a b 47k\nR2 b 0 33k\n.end\n";
  spice::Circuit circuit;
  const spice::NetlistDeck parsed = spice::parse_netlist(deck, circuit);
  spice::Engine engine(circuit, parsed.temperature_c);
  lint::install_preflight(engine, &parsed);
  const spice::DcResult op = engine.dc_operating_point();
  EXPECT_NEAR(op.voltage("b"), 1.0 * 33.0 / 80.0, 1e-6);
}

// ------------------------------------------------- semantic passes

TEST(LintSemantic, SubthresholdWindowFlagsHotWordline) {
  // 1.6 V on the gate statically exceeds the erased-state threshold at
  // the hot corner (1.458 V at 85 degC) minus the 0.1 V margin: a stored
  // '0' may conduct, which breaks the read scheme.
  const std::string bad =
      "VG g 0 1.6\n"
      "VD d 0 0.05\n"
      "Z1 d g 0 state=0\n"
      ".end\n";
  const lint::LintReport report = lint_text(bad);
  const auto d = find_rule(report, "subthreshold-window");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kError);
  EXPECT_EQ(d->object, "Z1");
  EXPECT_EQ(report.exit_code(), 3);
  // The paper's 0.35 V read bias is provably inside the window.
  const std::string good =
      "VG g 0 0.35\n"
      "VD d 0 0.05\n"
      "Z1 d g 0 state=0\n"
      ".end\n";
  EXPECT_TRUE(lint_text(good).clean());
}

TEST(LintSemantic, VthTempDriftWarnsOnNarrowWindow) {
  // A 0.15 V programming window shrinks below min_memory_window (0.2 V)
  // over 0..85 degC; the default 1.45 V window does not.
  const std::string narrow =
      "VG g 0 0.1\n"
      "VD d 0 0.05\n"
      "Z1 d g 0 state=1 vthlow=0.8 vthhigh=0.95\n"
      ".end\n";
  const auto d = find_rule(lint_text(narrow), "vth-temp-drift");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kWarning);
  EXPECT_EQ(d->object, "Z1");
  const std::string wide =
      "VG g 0 0.35\n"
      "VD d 0 0.05\n"
      "Z1 d g 0 state=1 vthlow=0.25 vthhigh=1.7\n"
      ".end\n";
  EXPECT_FALSE(find_rule(lint_text(wide), "vth-temp-drift").has_value());
}

TEST(LintSemantic, CimArrayShapeDuplicateGateAndMissingSense) {
  // Two cells of one bitline sharing a wordline can never be addressed
  // individually.
  const std::string dup =
      "VBL bl 0 0.1\n"
      "VG g 0 0.2\n"
      "Z1 bl g 0 state=1\n"
      "Z2 bl g 0 state=0\n"
      ".end\n";
  const auto d = find_rule(lint_text(dup), "cim-array-shape");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kError);
  // A bitline touched by nothing but FeFET cells has no sense branch.
  const std::string unsensed =
      "VG1 g1 0 0.2\n"
      "VG2 g2 0 0.2\n"
      "Z1 bl g1 0 state=0\n"
      "Z2 bl g2 0 state=0\n"
      ".end\n";
  const auto s = find_rule(lint_text(unsensed), "cim-array-shape");
  ASSERT_TRUE(s.has_value());
  EXPECT_NE(s->message.find("sense"), std::string::npos);
  // Distinct wordlines + a sense source is a legal row.
  const std::string good =
      "VBL bl 0 0.1\n"
      "VG1 g1 0 0.2\n"
      "VG2 g2 0 0.2\n"
      "Z1 bl g1 0 state=1\n"
      "Z2 bl g2 0 state=0\n"
      ".end\n";
  EXPECT_FALSE(find_rule(lint_text(good), "cim-array-shape").has_value());
}

TEST(LintSemantic, AdcRangeWarnsWhenBitlineExceedsFullScale) {
  // The bitline is pinned at 1.5 V — statically above the 1.2 V readout
  // full scale.
  const std::string hot =
      "VBL bl 0 1.5\n"
      "VG1 g1 0 0.2\n"
      "VG2 g2 0 0.2\n"
      "Z1 bl g1 0 state=0\n"
      "Z2 bl g2 0 state=0\n"
      ".end\n";
  const auto d = find_rule(lint_text(hot), "adc-range");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->severity, lint::Severity::kWarning);
  EXPECT_EQ(d->object, "bl");
  const std::string ok =
      "VBL bl 0 1.0\n"
      "VG1 g1 0 0.2\n"
      "VG2 g2 0 0.2\n"
      "Z1 bl g1 0 state=0\n"
      "Z2 bl g2 0 state=0\n"
      ".end\n";
  EXPECT_FALSE(find_rule(lint_text(ok), "adc-range").has_value());
}

// ------------------------------------------- interval operating points

TEST(LintAnalysis, DividerBoundsAreTightAndSound) {
  const std::string deck =
      "V1 a 0 1.2\n"
      "R1 a mid 47k\n"
      "R2 mid 0 33k\n"
      ".end\n";
  spice::Circuit circuit;
  const spice::NetlistDeck parsed = spice::parse_netlist(deck, circuit);
  const lint::OperatingIntervals iv =
      lint::compute_operating_intervals(circuit, &parsed);
  EXPECT_FALSE(iv.dc_contradiction);
  const spice::NodeId a = *circuit.find_node("a");
  const spice::NodeId mid = *circuit.find_node("mid");
  // The pinned node is exact (up to sweep hulling: none here).
  EXPECT_TRUE(iv.dc_at(a).contains(1.2));
  EXPECT_LT(iv.dc_at(a).width(), 1e-9);
  // The Thevenin refinement pins the divider midpoint to ~33/80 of 1.2 V.
  const double expect_mid = 1.2 * 33.0 / 80.0;
  EXPECT_TRUE(iv.dc_at(mid).contains(expect_mid));
  EXPECT_LT(iv.dc_at(mid).width(), 0.01);
  EXPECT_GE(iv.dc_at(mid).lo(), -1e-9);
  EXPECT_LE(iv.dc_at(mid).hi(), 1.2 + 1e-9);
}

TEST(LintAnalysis, EnvelopeBoundsChargeShareByInitialConditions) {
  // Two pre-charged capacitors joined by a resistor: every transient
  // voltage stays inside the hull of {0, ic1, ic2}.
  const std::string deck =
      "C1 n1 0 1p ic=0.8\n"
      "C2 n2 0 1p ic=0.2\n"
      "R1 n1 n2 10k\n"
      ".tran 1n 100n\n"
      ".end\n";
  spice::Circuit circuit;
  const spice::NetlistDeck parsed = spice::parse_netlist(deck, circuit);
  const lint::OperatingIntervals iv =
      lint::compute_operating_intervals(circuit, &parsed);
  ASSERT_TRUE(iv.has_tran);
  const spice::NodeId n1 = *circuit.find_node("n1");
  const lint::Interval env = iv.envelope_at(n1);
  EXPECT_TRUE(env.contains(0.5));  // the charge-share endpoint
  EXPECT_TRUE(env.contains(0.8));  // the initial condition
  EXPECT_LE(env.hi(), 0.8 + 1e-9);
  EXPECT_GE(env.lo(), -1e-9);
}

TEST(LintAnalysis, CurrentSourceTaintsItsComponentOnly) {
  // The current source makes node x unbounded, but the independent
  // divider on the other component keeps its tight bounds.
  const std::string deck =
      "V1 a 0 1.0\n"
      "R1 a mid 10k\n"
      "R2 mid 0 10k\n"
      "I1 0 x 1u\n"
      "R3 x 0 1meg\n"
      ".end\n";
  spice::Circuit circuit;
  const spice::NetlistDeck parsed = spice::parse_netlist(deck, circuit);
  const lint::OperatingIntervals iv =
      lint::compute_operating_intervals(circuit, &parsed);
  EXPECT_TRUE(iv.dc_is_tainted(*circuit.find_node("x")));
  EXPECT_TRUE(iv.dc_at(*circuit.find_node("x")).is_universe());
  EXPECT_FALSE(iv.dc_is_tainted(*circuit.find_node("mid")));
  EXPECT_TRUE(iv.dc_at(*circuit.find_node("mid")).contains(0.5));
  EXPECT_LT(iv.dc_at(*circuit.find_node("mid")).width(), 0.01);
}

TEST(LintAnalysis, ManagerCachesSharedAnalyses) {
  const std::string deck = "V1 a 0 1.0\nR1 a 0 1k\n.end\n";
  spice::Circuit circuit;
  const spice::NetlistDeck parsed = spice::parse_netlist(deck, circuit);
  lint::AnalysisManager manager(circuit, &parsed);
  // Repeated accessor calls return the same cached object.
  EXPECT_EQ(&manager.incidence(), &manager.incidence());
  EXPECT_EQ(&manager.topology(), &manager.topology());
  EXPECT_EQ(&manager.intervals(), &manager.intervals());
  EXPECT_EQ(&manager.components(true), &manager.components(true));
  EXPECT_EQ(&manager.components(false), &manager.components(false));
  // The caps-conduct flavour is a distinct graph, cached separately.
  EXPECT_NE(&manager.components(true), &manager.components(false));
}

// -------------------------------------------------- rule-table guards

TEST(LintPipeline, UnknownRuleErrorNamesTheValidSet) {
  lint::Linter linter;
  try {
    linter.disable("not-a-rule");
    FAIL() << "unknown rule id must throw";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("not-a-rule"), std::string::npos);
    EXPECT_NE(msg.find("valid rules"), std::string::npos);
    EXPECT_NE(msg.find("floating-node"), std::string::npos);
    EXPECT_NE(msg.find("subthreshold-window"), std::string::npos);
  }
}

TEST(LintPipeline, ValidateRuleTableRejectsDuplicateIds) {
  EXPECT_NO_THROW(lint::validate_rule_table(lint::builtin_rules()));
  std::vector<lint::Rule> dup = lint::builtin_rules();
  dup.push_back(dup.front());
  EXPECT_THROW(lint::validate_rule_table(dup), std::invalid_argument);
}

// ---------------------------------------------------------------- SARIF

TEST(LintSarif, LogMatchesCheckedInKeySetGolden) {
  const std::string deck =
      "V1 a 0 1.0\nR1 a b 10k\nI1 0 x 1u\nC1 x 0 1p\n.temp 125\n.end\n";
  const lint::LintReport report = lint_text(deck);
  ASSERT_FALSE(report.clean());
  const sfc::verify::Json sarif = lint::to_sarif(report, "deck.cir");
  const sfc::verify::Json golden =
      sfc::verify::read_json_file(std::string(SFC_GOLDENS_DIR) +
                                  "/sarif_keys.json");
  const auto keys_of = [](const sfc::verify::Json& o) {
    std::vector<std::string> keys;
    for (const auto& [key, value] : o.as_object()) keys.push_back(key);
    return keys;
  };
  EXPECT_EQ(sarif.string_at("version"), "2.1.0");
  EXPECT_EQ(keys_of(sarif), golden.strings_at("root_keys"));
  const sfc::verify::Json& run = sarif.get("runs").as_array()[0];
  EXPECT_EQ(keys_of(run), golden.strings_at("run_keys"));
  const sfc::verify::Json& driver = run.get("tool").get("driver");
  EXPECT_EQ(driver.string_at("name"), "sfc_lint");
  EXPECT_EQ(keys_of(driver), golden.strings_at("driver_keys"));
  // The declared rule list is the full pinned set, in pipeline order.
  std::vector<std::string> ids;
  for (const sfc::verify::Json& rule : driver.get("rules").as_array()) {
    ids.push_back(rule.string_at("id"));
    EXPECT_EQ(keys_of(rule), golden.strings_at("rule_keys"));
  }
  EXPECT_EQ(ids, golden.strings_at("rule_ids"));
  // Every result: declared rule, legal level, keys within the allow-list.
  const auto allowed = golden.strings_at("result_keys_allowed");
  ASSERT_FALSE(run.get("results").as_array().empty());
  for (const sfc::verify::Json& res : run.get("results").as_array()) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), res.string_at("ruleId")),
              ids.end());
    const std::string level = res.string_at("level");
    EXPECT_TRUE(level == "note" || level == "warning" || level == "error");
    for (const auto& key : keys_of(res)) {
      EXPECT_NE(std::find(allowed.begin(), allowed.end(), key),
                allowed.end())
          << "result key '" << key << "' missing from the golden allow-list";
    }
  }
}

TEST(LintSarif, SuppressedFindingsCarrySuppressionObjects) {
  const std::string deck = "V1 a 0 1.0\nR1 a b 10k\n.end\n";
  lint::LintReport report = lint_text(deck);
  const lint::Baseline baseline = lint::Baseline::from_report(report);
  report = lint_text(deck);
  ASSERT_EQ(lint::apply_baseline(report, baseline), 1u);
  const sfc::verify::Json sarif = lint::to_sarif(report, "deck.cir");
  const auto& results =
      sarif.get("runs").as_array()[0].get("results").as_array();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].has("suppressions"));
  EXPECT_TRUE(results[0].has("partialFingerprints"));
}

// ------------------------------------------------------------- baseline

TEST(LintBaseline, LifecycleSuppressThenReappearOnStructuralChange) {
  // 1. A fresh finding…
  const std::string v1 = "V1 a 0 1.0\nR1 a b 10k\n.end\n";
  const lint::LintReport r1 = lint_text(v1);
  ASSERT_TRUE(find_rule(r1, "dangling-terminal").has_value());
  EXPECT_EQ(r1.exit_code(), 2);
  // 2. …gets baselined: same deck is now quiet (exit 0) but accounted.
  const lint::Baseline baseline = lint::Baseline::from_report(r1);
  EXPECT_EQ(baseline.entries().size(), 1u);
  lint::LintReport r2 = lint_text(v1);
  EXPECT_EQ(lint::apply_baseline(r2, baseline), 1u);
  EXPECT_EQ(r2.exit_code(), 0);
  EXPECT_EQ(r2.count_suppressed(), 1u);
  EXPECT_EQ(r2.count(lint::Severity::kWarning), 0u);
  // 3. Pure line movement (a comment above) keeps the fingerprint stable.
  lint::LintReport r3 = lint_text("* comment shifts every line\n" + v1);
  EXPECT_EQ(lint::apply_baseline(r3, baseline), 1u);
  EXPECT_EQ(r3.exit_code(), 0);
  // 4. A structural change (terminal swap) is a NEW finding: the old
  // baseline no longer matches and the warning resurfaces.
  lint::LintReport r4 = lint_text("V1 a 0 1.0\nR1 b a 10k\n.end\n");
  EXPECT_EQ(lint::apply_baseline(r4, baseline), 0u);
  EXPECT_EQ(r4.exit_code(), 2);
}

TEST(LintBaseline, JsonRoundTripAndDedup) {
  const std::string deck = "V1 a 0 1.0\nR1 a b 10k\n.temp 125\n.end\n";
  const lint::LintReport report = lint_text(deck);
  ASSERT_GE(report.diagnostics().size(), 2u);
  const lint::Baseline baseline = lint::Baseline::from_report(report);
  const lint::Baseline reloaded =
      lint::Baseline::from_json(baseline.to_json());
  EXPECT_EQ(reloaded.entries().size(), baseline.entries().size());
  EXPECT_EQ(reloaded.to_json().dump(), baseline.to_json().dump());
  // Adding the same fingerprints again is a no-op.
  lint::Baseline copy = baseline;
  for (const auto& e : baseline.entries()) copy.add(e);
  EXPECT_EQ(copy.entries().size(), baseline.entries().size());
}

TEST(LintBaseline, FingerprintsSurviveReportJsonRoundTrip) {
  const std::string deck = "V1 a 0 1.0\nR1 a b 10k\n.end\n";
  lint::LintReport report = lint_text(deck);
  const lint::Baseline baseline = lint::Baseline::from_report(report);
  ASSERT_EQ(lint::apply_baseline(report, baseline), 1u);
  const sfc::verify::Json j = report.to_json("deck.cir");
  const lint::LintReport back = lint::LintReport::from_json(j);
  ASSERT_EQ(back.diagnostics().size(), 1u);
  EXPECT_EQ(back.diagnostics()[0].fingerprint,
            report.diagnostics()[0].fingerprint);
  EXPECT_TRUE(back.diagnostics()[0].suppressed);
  EXPECT_EQ(back.to_json("deck.cir").dump(), j.dump());
}

// ----------------------------------------------------- examples + fuzz

TEST(LintSweep, EveryExampleDeckLintsClean) {
  namespace fs = std::filesystem;
  std::size_t decks = 0;
  for (const auto& entry : fs::directory_iterator(SFC_EXAMPLES_DIR)) {
    if (entry.path().extension() != ".cir") continue;
    ++decks;
    const lint::LintResult result = lint::lint_file(entry.path().string());
    EXPECT_TRUE(result.parsed) << entry.path();
    EXPECT_TRUE(result.report.clean())
        << entry.path() << "\n"
        << result.report.to_text(entry.path().filename().string());
  }
  EXPECT_GE(decks, 6u) << "examples/ should ship lintable decks";
}

TEST(LintSweep, TwoHundredFuzzDecksLintClean) {
  sfc::verify::FuzzOptions options;
  options.count = 200;
  int checked = 0;
  for (int i = 0; i < options.count; ++i) {
    const sfc::verify::FuzzNetlist nl =
        sfc::verify::generate_netlist(options, i);
    if (nl.cls == sfc::verify::FuzzClass::kCimRow) continue;  // comment-only
    const lint::LintResult result = lint::lint_source(nl.to_cir());
    EXPECT_TRUE(result.parsed) << "case " << i;
    EXPECT_TRUE(result.report.clean())
        << "case " << i << " (" << sfc::verify::fuzz_class_name(nl.cls)
        << ")\n"
        << nl.to_cir() << result.report.to_text("fuzz");
    ++checked;
  }
  EXPECT_GE(checked, 100);
}
