// sfc::exec subsystem: thread pool lifecycle, parallel_for/parallel_map
// semantics, counter-based RNG streams, and the end-to-end determinism
// contract (serial vs parallel Monte Carlo and sweeps bit-identical).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "cim/behavioral.hpp"
#include "cim/montecarlo.hpp"
#include "exec/parallel.hpp"
#include "exec/stream.hpp"
#include "exec/thread_pool.hpp"
#include "nn/cim_engine.hpp"
#include "spice/primitives.hpp"
#include "spice/sweep.hpp"
#include "trace/trace.hpp"

namespace sfc::exec {
namespace {

TEST(StreamSeed, DeterministicAndDistinct) {
  EXPECT_EQ(stream_seed(42, 0), stream_seed(42, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(stream_seed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
  // Different master seeds give different streams for the same index.
  EXPECT_NE(stream_seed(1, 7), stream_seed(2, 7));
}

TEST(StreamRng, SameStreamSameDraws) {
  util::Rng a = stream_rng(99, 3);
  util::Rng b = stream_rng(99, 3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
  }
}

TEST(ThreadPool, RunsSubmittedTasks) {
#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe probe;
#endif
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
#if SFC_TRACE_ENABLED
  // Every submit passed through the instrumented worker loop, and the
  // queue-depth gauge returned to its pre-test level (all +1s drained).
  EXPECT_EQ(probe.counter_delta("exec.pool.tasks"), 100u);
#endif
}

#if SFC_TRACE_ENABLED
TEST(ThreadPool, QueueDepthGaugeDrainsToBaseline) {
  sfc::trace::Registry& reg = sfc::trace::Registry::global();
  const std::int64_t baseline = reg.gauge("exec.pool.queue_depth").value();
  {
    ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) pool.submit([] {});
    pool.wait_idle();
  }
  EXPECT_EQ(reg.gauge("exec.pool.queue_depth").value(), baseline);
}
#else
TEST(ThreadPool, QueueDepthGaugeDrainsToBaseline) {
  GTEST_SKIP() << "built with SFC_TRACE=OFF; gauges compile to no-ops";
}
#endif

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&count] { count.fetch_add(1); });
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ParallelFor, EmptyRange) {
  std::atomic<int> count{0};
  const JobReport report =
      parallel_for(ExecPolicy{4, 0}, 0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 0);
  EXPECT_EQ(report.tasks, 0u);
}

TEST(ParallelFor, SingleElement) {
  std::atomic<int> count{0};
  parallel_for(ExecPolicy{4, 0}, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, OddSizeVisitsEachIndexExactlyOnce) {
  constexpr std::size_t n = 17;
  for (int threads : {1, 2, 3, 8}) {
    std::vector<std::atomic<int>> visits(n);
    const JobReport report = parallel_for(
        ExecPolicy{threads, 2}, n,
        [&](std::size_t i) { visits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(visits[i].load(), 1) << "index " << i << ", " << threads
                                     << " threads";
    }
    EXPECT_EQ(report.tasks, n);
    EXPECT_EQ(report.task_ms.size(), n);
  }
}

TEST(ParallelFor, TalliesConvergedAndFailed) {
#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe probe;
#endif
  // A bool-returning body feeds the converged / failed counters.
  const JobReport report = parallel_for(
      ExecPolicy{2, 0}, 10, [](std::size_t i) { return i % 2 == 0; });
  EXPECT_EQ(report.converged, 5u);
  EXPECT_EQ(report.failed, 5u);
#if SFC_TRACE_ENABLED
  // The job mirrors its report into the registry.
  EXPECT_EQ(probe.counter_delta("exec.jobs"), 1u);
  EXPECT_EQ(probe.counter_delta("exec.tasks.converged"), 5u);
  EXPECT_EQ(probe.counter_delta("exec.tasks.failed"), 5u);
#endif
}

#if SFC_TRACE_ENABLED
TEST(ParallelFor, TaskCountersAreThreadCountInvariant) {
  // The same job records the same deterministic counters no matter how
  // many workers executed it — the registry-level determinism contract.
  constexpr std::size_t n = 23;
  std::vector<std::uint64_t> converged_deltas;
  for (int threads : {1, 2, 8}) {
    sfc::trace::TestProbe probe;
    parallel_for(ExecPolicy{threads, 0}, n, [](std::size_t) {});
    EXPECT_EQ(probe.counter_delta("exec.jobs"), 1u) << threads << " threads";
    converged_deltas.push_back(probe.counter_delta("exec.tasks.converged"));
  }
  for (const std::uint64_t d : converged_deltas) EXPECT_EQ(d, n);
}
#else
TEST(ParallelFor, TaskCountersAreThreadCountInvariant) {
  GTEST_SKIP() << "built with SFC_TRACE=OFF; counters compile to no-ops";
}
#endif

TEST(ParallelFor, PropagatesExceptions) {
  for (int threads : {1, 3}) {
    EXPECT_THROW(
        parallel_for(ExecPolicy{threads, 0}, 8,
                     [](std::size_t i) {
                       if (i == 5) throw std::runtime_error("boom");
                     }),
        std::runtime_error)
        << threads << " threads";
  }
}

TEST(ParallelMap, PreservesIndexOrder) {
  for (int threads : {1, 4}) {
    JobReport report;
    const std::vector<int> out = parallel_map(
        ExecPolicy{threads, 1}, 9,
        [](std::size_t i) { return static_cast<int>(i * i); }, &report);
    ASSERT_EQ(out.size(), 9u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i * i));
    }
    EXPECT_EQ(report.tasks, 9u);
  }
}

TEST(ExecPolicy, ResolvesThreadsAndChunks) {
  EXPECT_EQ(ExecPolicy::serial().resolved_threads(100), 1);
  EXPECT_EQ((ExecPolicy{4, 0}).resolved_threads(2), 2);  // never > n
  EXPECT_GE(ExecPolicy::max_parallel().resolved_threads(100), 1);
  EXPECT_EQ((ExecPolicy{2, 5}).resolved_chunk(100, 2), 5u);
  EXPECT_GE((ExecPolicy{2, 0}).resolved_chunk(100, 2), 1u);
}

TEST(Determinism, MonteCarloBitIdenticalAcrossThreadCounts) {
  cim::MonteCarloConfig mc;
  mc.runs = 3;
  mc.sigma_vt_fefet = 0.054;
  mc.mac_values = {0, 4, 8};
  const cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();

#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe serial_probe;
#endif
  mc.exec.threads = 1;
  const cim::MonteCarloResult serial = cim::run_montecarlo(cfg, mc);
  ASSERT_FALSE(serial.samples.empty());
#if SFC_TRACE_ENABLED
  // The determinism contract extends to the registry: solver-work counters
  // recorded during a serial run must match any parallel run exactly.
  const std::uint64_t serial_iters =
      serial_probe.counter_delta("spice.newton.iterations");
  EXPECT_EQ(serial_probe.counter_delta("cim.mc.runs"), 3u);
  EXPECT_GT(serial_iters, 0u);
#endif

  for (int threads : {2, 8}) {
#if SFC_TRACE_ENABLED
    sfc::trace::TestProbe probe;
#endif
    mc.exec.threads = threads;
    const cim::MonteCarloResult parallel = cim::run_montecarlo(cfg, mc);
#if SFC_TRACE_ENABLED
    EXPECT_EQ(probe.counter_delta("spice.newton.iterations"), serial_iters)
        << threads << " threads";
    EXPECT_EQ(probe.counter_delta("cim.mc.runs"), 3u);
#endif
    ASSERT_EQ(parallel.samples.size(), serial.samples.size());
    for (std::size_t i = 0; i < serial.samples.size(); ++i) {
      EXPECT_EQ(parallel.samples[i].run, serial.samples[i].run);
      EXPECT_EQ(parallel.samples[i].mac, serial.samples[i].mac);
      EXPECT_EQ(parallel.samples[i].v_acc, serial.samples[i].v_acc)
          << "sample " << i << ", " << threads << " threads";
    }
    EXPECT_EQ(parallel.max_error_percent, serial.max_error_percent);
    EXPECT_EQ(parallel.mean_error_percent, serial.mean_error_percent);
    EXPECT_EQ(parallel.job.threads_used, std::min(threads, mc.runs));
  }
}

TEST(Determinism, DotBatchBitIdenticalAcrossThreadCounts) {
  cim::MonteCarloConfig mc;
  mc.runs = 4;
  mc.sigma_vt_fefet = 0.054;
  static const cim::BehavioralArrayModel model =
      cim::BehavioralArrayModel::calibrate(
          cim::ArrayConfig::proposed_2t1fefet(), {27.0}, &mc);

  constexpr std::size_t len = 96;
  constexpr std::size_t rows = 13;
  util::Rng rng(7);
  std::vector<std::uint8_t> a(len);
  std::vector<std::int8_t> w(rows * len);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform_index(256));
  for (auto& v : w) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.uniform_index(255)) -
                                 127);
  }

  auto run = [&](int threads) {
#if SFC_TRACE_ENABLED
    sfc::trace::TestProbe probe;
#endif
    nn::CimDotEngine::Options opts;
    opts.with_variation_noise = true;  // exercises the per-row noise streams
    opts.noise_seed = 11;
    opts.exec.threads = threads;
    nn::CimDotEngine engine(model, opts);
    std::vector<std::int64_t> out(rows);
    engine.dot_batch(a, w, len, rows, out.data());
    engine.dot_batch(a, w, len, rows, out.data());  // second batch, new rows
#if SFC_TRACE_ENABLED
    // Throughput counters are a pure function of the workload shape, so
    // they too must be thread-count invariant.
    EXPECT_EQ(probe.counter_delta("cim.dot.batches"), 2u)
        << threads << " threads";
    EXPECT_EQ(probe.counter_delta("cim.dot.rows"), 2u * rows)
        << threads << " threads";
#endif
    return out;
  };

  const auto serial = run(1);
  for (int threads : {2, 8}) {
    EXPECT_EQ(run(threads), serial) << threads << " threads";
  }
}

TEST(Determinism, SweepBitIdenticalAcrossThreadCounts) {
  spice::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add<spice::VSource>("V1", in, spice::kGround, 0.0);
  ckt.add<spice::Resistor>("R1", in, out, 1e3);
  ckt.add<spice::Resistor>("R2", out, spice::kGround, 1e3);

  spice::SweepSpec spec;
  spec.values = spice::linspace_count(0.0, 1.2, 13);
  spec.apply = [](spice::Circuit& c, double v) {
    static_cast<spice::VSource*>(c.find("V1"))->set_dc(v);
  };

#if SFC_TRACE_ENABLED
  sfc::trace::TestProbe serial_probe;
#endif
  const auto serial = spice::run_sweep(ckt, spec, ExecPolicy::serial());
  ASSERT_EQ(serial.size(), spec.values.size());
#if SFC_TRACE_ENABLED
  const std::uint64_t serial_iters =
      serial_probe.counter_delta("spice.newton.iterations");
  EXPECT_EQ(serial_probe.counter_delta("spice.sweep.points"), 13u);
  EXPECT_GT(serial_iters, 0u);
#endif

  for (int threads : {2, 8}) {
#if SFC_TRACE_ENABLED
    sfc::trace::TestProbe probe;
#endif
    JobReport report;
    const auto parallel =
        spice::run_sweep(ckt, spec, ExecPolicy{threads, 0}, &report);
#if SFC_TRACE_ENABLED
    EXPECT_EQ(probe.counter_delta("spice.newton.iterations"), serial_iters)
        << threads << " threads";
    EXPECT_EQ(probe.counter_delta("spice.sweep.points"), 13u);
#endif
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].value, serial[i].value);
      EXPECT_TRUE(parallel[i].op.converged);
      EXPECT_EQ(parallel[i].op.voltage("out"), serial[i].op.voltage("out"))
          << "point " << i << ", " << threads << " threads";
    }
    EXPECT_EQ(report.tasks, spec.values.size());
  }
}

}  // namespace
}  // namespace sfc::exec
