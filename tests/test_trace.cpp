// Observability layer (src/trace): registry semantics, histogram
// bucketing, scoped-span nesting and Chrome-trace export, TestProbe
// deltas, cross-thread-count snapshot determinism, and the SFC_TRACE=OFF
// zero-cost contract (via trace_off_tu.cpp, compiled with the gate forced
// off).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "cim/array.hpp"
#include "cim/montecarlo.hpp"
#include "exec/parallel.hpp"
#include "trace/trace.hpp"
#include "verify/json.hpp"

using namespace sfc;
using trace::Registry;
using trace::Tracer;
using verify::Json;

// trace_off_tu.cpp: same macros, gate forced off.
namespace sfc::trace::test_off {
int run_disabled_instrumentation();
}

namespace {

/// Round-trip through the canonical text form: proves the document is
/// well-formed JSON and gives a diffable string.
std::string canonical(const Json& j) { return Json::parse(j.dump()).dump(); }

/// First traceEvents entry with the given name; nullptr when absent.
const Json* find_event(const Json& chrome, const std::string& name) {
  for (const Json& e : chrome.get("traceEvents").as_array()) {
    if (e.string_at("name") == name) return &e;
  }
  return nullptr;
}

TEST(TraceRegistry, CounterFindOrCreateIsStableAndAccumulates) {
  trace::Counter& c = Registry::global().counter("test.registry.counter");
  const std::uint64_t before = c.value();
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), before + 7);
  // Same name resolves to the same counter object.
  EXPECT_EQ(&Registry::global().counter("test.registry.counter"), &c);
}

TEST(TraceRegistry, GaugeTracksValueAndHighWater) {
  trace::Gauge& g = Registry::global().gauge("test.registry.gauge");
  g.set(0);
  g.add(5);
  g.add(-2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_GE(g.max(), 5);
  g.add(1);
  EXPECT_EQ(g.value(), 4);
}

TEST(TraceRegistry, HistogramBucketingAndCountAbove) {
  trace::Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  for (const double v : {0.5, 1.0, 1.5, 2.0, 3.0, 10.0}) h.record(v);
  // Bucket k counts values <= bounds[k]; the last bucket is overflow.
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  // Exact at bucket bounds.
  EXPECT_EQ(h.count_above(1.0), 4u);
  EXPECT_EQ(h.count_above(2.0), 2u);
  EXPECT_EQ(h.count_above(4.0), 1u);
}

TEST(TraceRegistry, DefaultHistogramBoundsAreIterationBuckets) {
  trace::Histogram& h = Registry::global().histogram("test.registry.hist");
  EXPECT_EQ(h.bounds(), trace::iteration_buckets());
  EXPECT_EQ(h.bounds().front(), 1.0);
  EXPECT_EQ(h.bounds().back(), 128.0);
}

TEST(TraceRegistry, MetricNameClassification) {
  EXPECT_TRUE(trace::is_timing_metric("exec.pool.busy_us"));
  EXPECT_TRUE(trace::is_timing_metric("spice.solve_ms"));
  EXPECT_FALSE(trace::is_timing_metric("spice.newton.iterations"));
  EXPECT_TRUE(trace::is_scheduling_metric("exec.pool.tasks"));
  EXPECT_FALSE(trace::is_scheduling_metric("exec.jobs"));
  EXPECT_TRUE(trace::is_deterministic_metric("spice.newton.iterations"));
  EXPECT_FALSE(trace::is_deterministic_metric("exec.pool.tasks"));
  EXPECT_FALSE(trace::is_deterministic_metric("exec.pool.busy_us"));
}

TEST(TraceRegistry, SnapshotSchemaAndDeterministicSubset) {
  Registry::global().counter("test.snapshot.events").add(1);
  Registry::global().counter("test.snapshot.wait_us").add(9);
  Registry::global().gauge("test.snapshot.gauge").set(2);

  const Json full = Registry::global().snapshot(true);
  EXPECT_DOUBLE_EQ(full.number_at("schema_version"), 1.0);
  EXPECT_TRUE(full.get("counters").has("test.snapshot.events"));
  EXPECT_TRUE(full.get("counters").has("test.snapshot.wait_us"));
  EXPECT_TRUE(full.get("gauges").has("test.snapshot.gauge"));

  const Json det = Registry::global().snapshot(false);
  EXPECT_TRUE(det.get("counters").has("test.snapshot.events"));
  EXPECT_FALSE(det.get("counters").has("test.snapshot.wait_us"));
  EXPECT_FALSE(det.has("gauges"));
  // Histogram sum/max (CAS-ordering-sensitive for float sums) are full-only.
  Registry::global().histogram("test.snapshot.hist").record(3.0);
  const Json full2 = Registry::global().snapshot(true);
  const Json det2 = Registry::global().snapshot(false);
  EXPECT_TRUE(full2.get("histograms").get("test.snapshot.hist").has("sum"));
  EXPECT_FALSE(det2.get("histograms").get("test.snapshot.hist").has("sum"));
  EXPECT_TRUE(det2.get("histograms").get("test.snapshot.hist").has("counts"));
}

TEST(TraceSpan, NestingDepthAndChromeExport) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  EXPECT_EQ(trace::open_span_count(), 0);
  {
    trace::SpanScope outer("test.span.outer");
    EXPECT_EQ(trace::open_span_count(), 1);
    {
      trace::SpanScope inner("test.span.inner");
      EXPECT_EQ(trace::open_span_count(), 2);
    }
    EXPECT_EQ(trace::open_span_count(), 1);
  }
  EXPECT_EQ(trace::open_span_count(), 0);
  tracer.stop();
  EXPECT_EQ(tracer.event_count(), 2u);

  const Json chrome = Json::parse(tracer.chrome_json().dump());
  EXPECT_EQ(chrome.string_at("displayTimeUnit"), "ms");
  const Json* outer = find_event(chrome, "test.span.outer");
  const Json* inner = find_event(chrome, "test.span.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  for (const Json* e : {outer, inner}) {
    EXPECT_EQ(e->string_at("ph"), "X");
    EXPECT_DOUBLE_EQ(e->number_at("pid"), 1.0);
    EXPECT_GE(e->number_at("dur"), 0.0);
  }
  EXPECT_EQ(outer->get("args").number_at("depth"), 0.0);
  EXPECT_EQ(inner->get("args").number_at("depth"), 1.0);
  // The parent starts no later and lasts no shorter than the child; the
  // sort order (ts, then dur descending) puts it first.
  EXPECT_LE(outer->number_at("ts"), inner->number_at("ts"));
  EXPECT_GE(outer->number_at("dur"), inner->number_at("dur"));
}

TEST(TraceSpan, StartClearsPreviousRunAndDisabledRecordsNothing) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  { trace::SpanScope s("test.span.stale"); }
  tracer.stop();
  EXPECT_GE(tracer.event_count(), 1u);
  { trace::SpanScope s("test.span.while_off"); }
  EXPECT_EQ(trace::open_span_count(), 0);

  tracer.start();
  EXPECT_EQ(tracer.event_count(), 0u);  // previous run cleared
  tracer.stop();
  EXPECT_EQ(find_event(tracer.chrome_json(), "test.span.while_off"), nullptr);
}

TEST(TraceSpan, ExceptionUnwindClosesSpan) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  try {
    trace::SpanScope s("test.span.throwing");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(trace::open_span_count(), 0);
  tracer.stop();
  EXPECT_NE(find_event(tracer.chrome_json(), "test.span.throwing"), nullptr);
}

TEST(TraceSpan, ParallelSpansLandOnPerThreadTracksSorted) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  exec::ExecPolicy policy;
  policy.threads = 4;
  exec::parallel_for(policy, 16, [](std::size_t) {
    trace::SpanScope s("test.span.task");
  });
  tracer.stop();

  const Json chrome = Json::parse(tracer.chrome_json().dump());
  const auto& events = chrome.get("traceEvents").as_array();
  std::size_t tasks = 0;
  double last_tid = -1.0, last_ts = 0.0;
  for (const Json& e : events) {
    if (e.string_at("name") == std::string("test.span.task")) ++tasks;
    const double tid = e.number_at("tid");
    EXPECT_TRUE(tid > last_tid || (tid == last_tid && e.number_at("ts") >= last_ts))
        << "events must be sorted by (tid, ts)";
    if (tid != last_tid) last_tid = tid;
    last_ts = e.number_at("ts");
  }
  EXPECT_EQ(tasks, 16u);
}

TEST(TraceSpan, WriteChromeProducesParseableFile) {
  Tracer& tracer = Tracer::global();
  tracer.start();
  { trace::SpanScope s("test.span.file"); }
  tracer.stop();
  const std::string path = "test_trace_chrome_out.json";
  tracer.write_chrome(path);
  const Json parsed = verify::read_json_file(path);
  EXPECT_TRUE(parsed.get("traceEvents").is_array());
  std::remove(path.c_str());
}

TEST(TraceProbe, CounterAndHistogramDeltas) {
  trace::Counter& c = Registry::global().counter("test.probe.counter");
  trace::Histogram& h = Registry::global().histogram("test.probe.hist");
  c.add(5);
  h.record(3.0);

  trace::TestProbe probe;
  EXPECT_EQ(probe.counter_delta("test.probe.counter"), 0u);
  EXPECT_EQ(probe.counter_delta("test.probe.never_registered"), 0u);
  c.add(2);
  h.record(7.0);
  h.record(40.0);
  EXPECT_EQ(probe.counter_delta("test.probe.counter"), 2u);
  EXPECT_EQ(probe.histogram_delta("test.probe.hist"), 2u);
  // Pre-baseline records (3.0) never leak into the delta.
  EXPECT_EQ(probe.histogram_delta_above("test.probe.hist", 2.0), 2u);
  EXPECT_EQ(probe.histogram_delta_above("test.probe.hist", 16.0), 1u);
  probe.reset();
  EXPECT_EQ(probe.counter_delta("test.probe.counter"), 0u);

  // Counters registered after the baseline count from zero.
  Registry::global().counter("test.probe.late").add(4);
  EXPECT_EQ(probe.counter_delta("test.probe.late"), 4u);
}

TEST(TraceProbe, DeltaSnapshotFiltersNondeterministicMetrics) {
  Registry::global().counter("test.probe.snap.work").add(1);
  Registry::global().counter("test.probe.snap.wall_us").add(123);
  trace::TestProbe probe;
  const Json snap = probe.delta_snapshot();
  EXPECT_DOUBLE_EQ(snap.number_at("schema_version"), 1.0);
  // Zero deltas keep the key set stable across otherwise-identical runs.
  EXPECT_TRUE(snap.get("counters").has("test.probe.snap.work"));
  EXPECT_FALSE(snap.get("counters").has("test.probe.snap.wall_us"));
  for (const auto& [name, value] : snap.get("counters").as_object()) {
    EXPECT_TRUE(trace::is_deterministic_metric(name)) << name;
  }
}

#if SFC_TRACE_ENABLED
TEST(TraceMacros, CountGaugeHistRecordIntoGlobalRegistry) {
  trace::TestProbe probe;
  for (int i = 0; i < 3; ++i) SFC_TRACE_COUNT("test.macro.counter", 2);
  SFC_TRACE_GAUGE_ADD("test.macro.gauge", 7);
  SFC_TRACE_HIST("test.macro.hist", 5.0);
  EXPECT_EQ(probe.counter_delta("test.macro.counter"), 6u);
  EXPECT_EQ(Registry::global().gauge("test.macro.gauge").value(), 7);
  EXPECT_EQ(probe.histogram_delta("test.macro.hist"), 1u);
}
#else
TEST(TraceMacros, CountGaugeHistRecordIntoGlobalRegistry) {
  GTEST_SKIP() << "built with SFC_TRACE=OFF; macros compile to no-ops";
}
#endif

TEST(TraceMacros, DisabledTuRegistersNothingAndSkipsArgumentEvaluation) {
  // trace_off_tu.cpp forces SFC_TRACE_ENABLED=0 for its own macros: the
  // argument expressions (each a ++) must never run...
  EXPECT_EQ(trace::test_off::run_disabled_instrumentation(), 0);
  // ...and none of its metric names may reach the registry.
  for (const auto& name : Registry::global().counter_names()) {
    EXPECT_NE(name, "test.off_tu.counter");
  }
  EXPECT_EQ(Registry::global().find_histogram("test.off_tu.histogram"),
            nullptr);
}

/// The cross-thread-count determinism property the subsystem is designed
/// around: for a deterministic workload (Monte Carlo with counter-based
/// RNG streams), the deterministic metric deltas are bit-identical no
/// matter how many threads executed it.
TEST(TraceDeterminism, DeltaSnapshotBitIdenticalAcrossThreadCounts) {
  cim::MonteCarloConfig mc;
  mc.runs = 4;
  mc.sigma_vt_fefet = 0.054;
  mc.mac_values = {0, 4, 8};
  const cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();

  mc.exec = exec::ExecPolicy::serial();
  trace::TestProbe serial_probe;
  const cim::MonteCarloResult serial = cim::run_montecarlo(cfg, mc);
  const std::string serial_snap = canonical(serial_probe.delta_snapshot());
  const std::uint64_t serial_runs = serial_probe.counter_delta("cim.mc.runs");
  const std::uint64_t serial_iters =
      serial_probe.counter_delta("spice.newton.iterations");

  mc.exec.threads = 8;
  trace::TestProbe parallel_probe;
  const cim::MonteCarloResult parallel = cim::run_montecarlo(cfg, mc);
  const std::string parallel_snap = canonical(parallel_probe.delta_snapshot());

  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  EXPECT_EQ(serial_snap, parallel_snap);
#if SFC_TRACE_ENABLED
  // The snapshot carries real solver work, not just an empty key set.
  EXPECT_EQ(serial_runs, 4u);
  EXPECT_GT(serial_iters, 0u);
  EXPECT_EQ(serial_iters,
            parallel_probe.counter_delta("spice.newton.iterations"));
#endif
}

}  // namespace
