// Extension experiment (beyond the paper): NVM reliability of the
// proposed array.
//   1. Retention: MAC level separability after years of storage at
//      27 / 85 degC (thermal depolarization closes the memory window).
//   2. Read disturb: the WL underdrive that protects the MAC=0 margin
//      applies -0.2 V to unselected cells; billions of reads slowly
//      depolarize a stored '1'. This quantifies that design trade-off.
#include <cstdio>
#include <vector>

#include "cim/mac.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

namespace {

constexpr double kYear = 3.156e7;

NmrSummary nmr_after(void (*prepare)(CiMRow&), double temperature_c) {
  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  CiMRow row(cfg);
  row.set_stored(std::vector<int>(8, 1));
  prepare(row);
  // Level sweep with the prepared (aged/disturbed) FeFETs.
  std::vector<LevelRange> levels(9);
  for (int k = 0; k <= 8; ++k) {
    levels[static_cast<std::size_t>(k)].mac = k;
    levels[static_cast<std::size_t>(k)].lo = 1e30;
    levels[static_cast<std::size_t>(k)].hi = -1e30;
  }
  for (double t : {0.0, 27.0, 85.0}) {
    (void)temperature_c;
    for (int k = 0; k <= 8; ++k) {
      std::vector<int> inputs(8, 0);
      for (int i = 0; i < k; ++i) inputs[static_cast<std::size_t>(i)] = 1;
      const MacResult r = row.evaluate(inputs, t);
      if (!r.converged) continue;
      auto& level = levels[static_cast<std::size_t>(k)];
      level.lo = std::min(level.lo, r.v_acc);
      level.hi = std::max(level.hi, r.v_acc);
    }
  }
  return summarize_nmr(levels);
}

}  // namespace

int main() {
  std::printf("== Extension: retention and read-disturb of the 2T-1FeFET "
              "array ==\n\n");

  // --- retention -----------------------------------------------------------
  util::Table retention({"storage", "P(low-VTH cell)", "VTH shift [mV]",
                         "NMR_min (0-85C)", "separable"});
  struct Bake {
    const char* label;
    double seconds;
    double temp;
  };
  const Bake bakes[] = {{"fresh", 0.0, 27.0},
                        {"1 year @ 27C", 1 * kYear, 27.0},
                        {"10 years @ 27C", 10 * kYear, 27.0},
                        {"1 year @ 85C", 1 * kYear, 85.0},
                        {"10 years @ 85C", 10 * kYear, 85.0},
                        {"10 years @ 125C", 10 * kYear, 125.0}};
  for (const Bake& bake : bakes) {
    fefet::PreisachModel probe;
    probe.write_bit(true, 27.0);
    const double vth_fresh = probe.vth(27.0);
    probe.age(bake.seconds, bake.temp);
    const double vth_aged = probe.vth(27.0);

    static double bake_seconds;
    static double bake_temp;
    bake_seconds = bake.seconds;
    bake_temp = bake.temp;
    const NmrSummary nmr = nmr_after(
        [](CiMRow& row) {
          for (int i = 0; i < row.cells(); ++i) {
            row.cell(i).fefet->ferroelectric().age(bake_seconds, bake_temp);
          }
        },
        27.0);
    retention.add_row({bake.label, util::fmt(probe.polarization(), 4),
                       util::fmt((vth_aged - vth_fresh) * 1e3, 3),
                       util::fmt(nmr.nmr_min, 3),
                       nmr.separable ? "yes" : "NO"});
  }
  std::printf("%s\n", retention.render().c_str());

  // --- read disturb --------------------------------------------------------
  util::Table disturb({"unselected reads (WL = -0.2 V)", "P(stored '1')",
                       "NMR_min (0-85C)", "separable"});
  const long cycle_counts[] = {0L, 1000000L, 100000000L, 1000000000L,
                               10000000000L};
  for (long cycles : cycle_counts) {
    fefet::PreisachModel probe;
    probe.write_bit(true, 27.0);
    probe.read_disturb(-0.2, 5e-9, cycles, 85.0);

    static long disturb_cycles;
    disturb_cycles = cycles;
    const NmrSummary nmr = nmr_after(
        [](CiMRow& row) {
          for (int i = 0; i < row.cells(); ++i) {
            row.cell(i).fefet->ferroelectric().read_disturb(
                -0.2, 5e-9, disturb_cycles, 85.0);
          }
        },
        27.0);
    char label[64];
    std::snprintf(label, sizeof(label), "%.0e cycles @ 85C",
                  static_cast<double>(cycles));
    disturb.add_row({cycles == 0 ? "none" : label,
                     util::fmt(probe.polarization(), 5),
                     util::fmt(nmr.nmr_min, 3),
                     nmr.separable ? "yes" : "NO"});
  }
  std::printf("%s\n", disturb.render().c_str());

  std::printf(
      "takeaways:\n"
      "  * a decade-class bake at 85 degC costs a few percent of\n"
      "    polarization and single-digit mV of VTH - the array stays\n"
      "    separable (retention is not the limiter of this design);\n"
      "  * the WL underdrive (-0.2 V) that fixes the MAC=0 margin is a\n"
      "    genuine trade-off: around 1e9 opposing reads the accumulated\n"
      "    disturb erodes the stored '1' enough to break separability.\n"
      "    At the 145 MHz MAC rate that is only seconds of continuous\n"
      "    worst-case (always-unselected) activity, so a deployed design\n"
      "    needs either a smaller underdrive, periodic rewrite, or\n"
      "    disturb-aware scheduling - none of which the paper discusses.\n");
  return 0;
}
