// Table II reproduction: performance summary across CiM designs. The six
// literature rows are cited values; the "This Work" row is measured by
// this reproduction (energy from the circuit simulation, accuracy from
// the accuracy_vgg_cim bench's cached run when available).
#include <cstdio>
#include <fstream>

#include "cim/energy.hpp"
#include "cim/reference_designs.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

int main() {
  std::printf("== Table II: performance summary ==\n\n");

  // Measure this work.
  const EnergySummary energy =
      measure_energy(ArrayConfig::proposed_2t1fefet(), 27.0);

  // Accuracy: use the cached result of the accuracy bench when present
  // (keeps this bench fast); otherwise report the paper-configuration
  // placeholder and point at the accuracy bench.
  double accuracy = -1.0;
  double energy_per_inference = -1.0;
  {
    std::ifstream cache("bench_accuracy_summary.txt");
    if (cache) {
      cache >> accuracy >> energy_per_inference;
    }
  }

  util::Table table({"Work", "Device", "Process", "Cell", "Dataset",
                     "Network", "Accuracy", "Energy", "TOPS/W"});
  for (const auto& row : reference_designs()) {
    table.add_row({row.work, row.device, row.process, row.cell, row.dataset,
                   row.network, row.accuracy, row.energy,
                   row.tops_per_watt > 0 ? util::fmt(row.tops_per_watt, 5)
                                         : "NA"});
  }
  const DesignRow ours = this_work_row(
      accuracy > 0 ? accuracy * 100.0 : 0.0, energy.mean_energy_per_op,
      energy.tops_per_watt,
      energy_per_inference > 0 ? energy_per_inference : 0.0);
  table.add_row({ours.work, ours.device, ours.process, ours.cell,
                 ours.dataset, ours.network,
                 accuracy > 0 ? ours.accuracy : "run accuracy bench",
                 ours.energy, util::fmt(ours.tops_per_watt, 5)});
  std::printf("%s\n", table.render().c_str());
  std::printf("* SynthCIFAR: procedural CIFAR-10 stand-in (DESIGN.md).\n\n");

  const auto refs = reference_designs();
  const double e_ours = energy.mean_energy_per_op;
  std::printf(
      "energy ratios vs this work (paper: ReRAM 64.6x, MTJ 445.9x over "
      "3.14 fJ):\n");
  for (const auto& row : refs) {
    const double ratio = energy_ratio_vs(row, e_ours);
    if (ratio > 0.0) {
      std::printf("  %-5s %-6s : %8.1fx more energy per op\n",
                  row.work.c_str(), row.device.c_str(), ratio);
    }
  }
  std::printf(
      "\nshape checks:\n"
      "  this work has the lowest per-op energy of all rows with per-op "
      "data: %s\n"
      "  TOPS/W within the FeFET-CiM order of magnitude (paper 2866): "
      "measured %.0f\n",
      [&] {
        for (const auto& row : refs) {
          if (row.energy_per_op_joules > 0.0 &&
              row.energy_per_op_joules < e_ours) {
            return "NO";
          }
        }
        return "yes";
      }(),
      energy.tops_per_watt);
  return 0;
}
