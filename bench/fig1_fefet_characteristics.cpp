// Fig. 1 reproduction: FeFET I_D-V_G characteristics in the low-VTH and
// high-VTH states at several temperatures, showing (a) that the 0.35 V
// read voltage lies in the subthreshold region, and (b) that temperature
// affects the high-VTH state more strongly than the low-VTH state.
//
// Output: a table of drain currents at the two read voltages plus a CSV
// with the full curves (bench_fig1_idvg.csv).
#include <cstdio>
#include <string>
#include <vector>

#include "cim/config.hpp"
#include "fefet/fefet.hpp"
#include "spice/circuit.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace sfc;

int main() {
  std::printf(
      "== Fig. 1: FeFET ID-VG at 0/27/85 degC, low-VTH and high-VTH ==\n\n");

  const std::vector<double> temps = {0.0, 27.0, 85.0};
  const fefet::FeFetParams params = fefet::FeFetParams::reference(10.0);
  const cim::ReadBias bias;  // BL 1.2 V, SL 0.2 V

  // Device current with the source clamped at the SL level (the operating
  // condition of the array read).
  spice::Circuit scratch;
  fefet::FeFet device("X", scratch.node("d"), scratch.node("g"),
                      scratch.node("s"), params);

  util::CsvWriter csv("bench_fig1_idvg.csv",
                      {"state", "temp_c", "vg", "id"});
  for (const bool stored_one : {true, false}) {
    device.ferroelectric().set_polarization(stored_one ? 1.0 : -1.0);
    for (double t : temps) {
      for (double vg = 0.0; vg <= 1.8 + 1e-9; vg += 0.02) {
        const double id =
            device.drain_current(vg, bias.v_bl, bias.v_sl, t);
        csv.row({stored_one ? 1.0 : 0.0, t, vg, id});
      }
    }
  }
  std::printf("full curves written to %s\n\n", "bench_fig1_idvg.csv");

  util::Table table({"state", "T [degC]", "ID @ 0.35V [A]", "ID @ 1.3V [A]",
                     "VTH_eff [V]", "region @ 0.35V"});
  for (const bool stored_one : {true, false}) {
    device.ferroelectric().set_polarization(stored_one ? 1.0 : -1.0);
    for (double t : temps) {
      const double i_sub = device.drain_current(0.35, bias.v_bl, bias.v_sl, t);
      const double i_sat = device.drain_current(1.30, bias.v_bl, bias.v_sl, t);
      const double vth = device.effective_vth(t);
      const double vgs = 0.35 - bias.v_sl;
      table.add_row({stored_one ? "low-VTH ('1')" : "high-VTH ('0')",
                     util::fmt(t, 3), util::fmt(i_sub, 4),
                     util::fmt(i_sat, 4), util::fmt(vth, 4),
                     vgs < vth ? "subthreshold" : "inversion"});
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Quantify the Fig. 1 asymmetry: ION drift vs IOFF drift.
  device.ferroelectric().set_polarization(1.0);
  const double on_ratio =
      device.drain_current(0.35, bias.v_bl, bias.v_sl, 85.0) /
      device.drain_current(0.35, bias.v_bl, bias.v_sl, 0.0);
  device.ferroelectric().set_polarization(-1.0);
  const double off_ratio =
      device.drain_current(0.35, bias.v_bl, bias.v_sl, 85.0) /
      device.drain_current(0.35, bias.v_bl, bias.v_sl, 0.0);
  std::printf(
      "temperature sensitivity at Vread = 0.35 V (I(85C)/I(0C)):\n"
      "  low-VTH  state: %8.3g   (mild drift)\n"
      "  high-VTH state: %8.3g   (paper: high-VTH markedly more sensitive)\n"
      "  shape check: high-VTH ratio %s low-VTH ratio\n",
      on_ratio, off_ratio, off_ratio > on_ratio ? ">" : "<=");
  return 0;
}
