// Micro-benchmarks (google-benchmark) for the simulation substrate: LU
// kernel, Newton DC solves, transient steps, full MAC cycles, and the
// behavioural-model fast path. These are engineering benchmarks for the
// reproduction itself, not paper artifacts.
//
// Pass --threads N (before any google-benchmark flags) to additionally run
// the Monte Carlo fan-out serially and with N threads, verify the outputs
// are bit-identical, and report the speedup.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cim/array.hpp"
#include "cim/behavioral.hpp"
#include "cim/montecarlo.hpp"
#include "devices/mosfet.hpp"
#include "nn/cim_engine.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"
#include "util/rng.hpp"

using namespace sfc;

static void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  spice::DenseMatrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
    a.at(i, i) += 4.0;
  }
  for (auto _ : state) {
    spice::DenseMatrix acopy = a;
    std::vector<double> x = b;
    benchmark::DoNotOptimize(spice::lu_solve(acopy, x));
  }
}
BENCHMARK(BM_LuSolve)->Arg(16)->Arg(48)->Arg(96);

static void BM_DcOperatingPoint_Inverter(benchmark::State& state) {
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto g = ckt.node("g");
  const auto out = ckt.node("out");
  ckt.add<spice::VSource>("VDD", vdd, spice::kGround, 1.2);
  ckt.add<spice::VSource>("VG", g, spice::kGround, 0.6);
  ckt.add<spice::Resistor>("RD", vdd, out, 1e5);
  ckt.add<devices::Mosfet>("M1", out, g, spice::kGround,
                           devices::MosfetParams::finfet14_nmos(8.0));
  spice::Engine engine(ckt, 27.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dc_operating_point());
  }
}
BENCHMARK(BM_DcOperatingPoint_Inverter);

static void BM_TransientRc(benchmark::State& state) {
  for (auto _ : state) {
    spice::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add<spice::VSource>("V1", in, spice::kGround, 1.0);
    ckt.add<spice::Resistor>("R1", in, out, 1e3);
    ckt.add<spice::Capacitor>("C1", out, spice::kGround, 1e-9, 0.0);
    spice::Engine engine(ckt, 27.0);
    spice::TransientOptions opts;
    opts.dt = 1e-8;
    benchmark::DoNotOptimize(engine.transient(1e-6, opts));
  }
}
BENCHMARK(BM_TransientRc);

static void BM_MacCycle_2T1FeFet(benchmark::State& state) {
  cim::CiMRow row(cim::ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(8, 1));
  const std::vector<int> inputs = {1, 0, 1, 1, 0, 1, 0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.evaluate(inputs, 27.0));
  }
}
BENCHMARK(BM_MacCycle_2T1FeFet)->Unit(benchmark::kMillisecond);

static void BM_MacCycle_1FeFet1R(benchmark::State& state) {
  cim::CiMRow row(cim::ArrayConfig::baseline_1r_subthreshold());
  row.set_stored(std::vector<int>(8, 1));
  const std::vector<int> inputs = {1, 0, 1, 1, 0, 1, 0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.evaluate(inputs, 27.0));
  }
}
BENCHMARK(BM_MacCycle_1FeFet1R)->Unit(benchmark::kMillisecond);

static void BM_BehavioralDot(benchmark::State& state) {
  static const cim::BehavioralArrayModel model =
      cim::BehavioralArrayModel::calibrate(cim::ArrayConfig::proposed_2t1fefet(),
                                           {0.0, 27.0, 85.0});
  nn::CimDotEngine engine(model, {});
  util::Rng rng(3);
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> a(len);
  std::vector<std::int8_t> w(len);
  for (std::size_t i = 0; i < len; ++i) {
    a[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
    w[i] = static_cast<std::int8_t>(static_cast<int>(rng.uniform_index(255)) - 127);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dot(a, w));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_BehavioralDot)->Arg(144)->Arg(1024);

static void BM_MosfetEval(benchmark::State& state) {
  const auto p = devices::MosfetParams::finfet14_nmos(8.0);
  double vg = 0.3;
  for (auto _ : state) {
    vg = vg > 1.0 ? 0.3 : vg + 1e-9;
    benchmark::DoNotOptimize(devices::evaluate_mosfet(p, vg, 1.0, 0.1, 27.0));
  }
}
BENCHMARK(BM_MosfetEval);

namespace {

/// Remove `--threads N` / `--threads=N` from argv (google-benchmark rejects
/// flags it does not know). Returns the requested count, 0 if absent.
int strip_threads_flag(int* argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < *argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return threads;
}

void report_montecarlo_speedup(int threads) {
  cim::MonteCarloConfig mc;
  mc.runs = 24;
  mc.sigma_vt_fefet = 0.054;
  mc.mac_values = {0, 2, 4, 6, 8};
  const cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();

  mc.exec = exec::ExecPolicy::serial();
  const cim::MonteCarloResult serial = cim::run_montecarlo(cfg, mc);
  mc.exec.threads = threads;
  const cim::MonteCarloResult parallel = cim::run_montecarlo(cfg, mc);

  bool identical = serial.samples.size() == parallel.samples.size();
  for (std::size_t i = 0; identical && i < serial.samples.size(); ++i) {
    identical = serial.samples[i].run == parallel.samples[i].run &&
                serial.samples[i].mac == parallel.samples[i].mac &&
                serial.samples[i].v_acc == parallel.samples[i].v_acc;
  }
  std::printf(
      "== Monte Carlo fan-out: %d runs x %zu MAC values ==\n"
      "  serial (1 thread):      %8.1f ms\n"
      "  parallel (%d threads):  %8.1f ms  (used %d)\n"
      "  speedup:                %8.2fx\n"
      "  bit-identical samples:  %s\n\n",
      mc.runs, mc.mac_values.size(), serial.job.wall_ms, threads,
      parallel.job.wall_ms, parallel.job.threads_used,
      serial.job.wall_ms / std::max(parallel.job.wall_ms, 1e-9),
      identical ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const int threads = strip_threads_flag(&argc, argv);
  if (threads > 0) report_montecarlo_speedup(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
