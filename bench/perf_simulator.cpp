// Micro-benchmarks (google-benchmark) for the simulation substrate: LU
// kernel, Newton DC solves, transient steps, full MAC cycles, and the
// behavioural-model fast path. These are engineering benchmarks for the
// reproduction itself, not paper artifacts.
//
// Pass --threads N (before any google-benchmark flags) to additionally run
// the Monte Carlo fan-out serially and with N threads, verify the outputs
// are bit-identical, and report the speedup.
//
// Pass --smoke to instead run the tracked solver benchmark suite: a fixed
// set of kernels timed on both Newton assembly paths (legacy full-restamp
// vs the compiled stamp plan), with bit-identity checked between the two.
// --json PATH (implies --smoke) writes the results as JSON; the bench-smoke
// CMake target and ctest label run `--smoke --json BENCH_solver.json`.
// Timing never fails the run — only a convergence failure or a bit-level
// mismatch between the paths does.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cim/array.hpp"
#include "cim/behavioral.hpp"
#include "cim/montecarlo.hpp"
#include "devices/mosfet.hpp"
#include "nn/cim_engine.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"
#include "verify/json.hpp"

using namespace sfc;

static void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  spice::DenseMatrix a(n, n);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1, 1);
    for (std::size_t j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1, 1);
    a.at(i, i) += 4.0;
  }
  for (auto _ : state) {
    spice::DenseMatrix acopy = a;
    std::vector<double> x = b;
    benchmark::DoNotOptimize(spice::lu_solve(acopy, x));
  }
}
BENCHMARK(BM_LuSolve)->Arg(16)->Arg(48)->Arg(96);

static void BM_DcOperatingPoint_Inverter(benchmark::State& state) {
  spice::Circuit ckt;
  const auto vdd = ckt.node("vdd");
  const auto g = ckt.node("g");
  const auto out = ckt.node("out");
  ckt.add<spice::VSource>("VDD", vdd, spice::kGround, 1.2);
  ckt.add<spice::VSource>("VG", g, spice::kGround, 0.6);
  ckt.add<spice::Resistor>("RD", vdd, out, 1e5);
  ckt.add<devices::Mosfet>("M1", out, g, spice::kGround,
                           devices::MosfetParams::finfet14_nmos(8.0));
  spice::Engine engine(ckt, 27.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dc_operating_point());
  }
}
BENCHMARK(BM_DcOperatingPoint_Inverter);

static void BM_TransientRc(benchmark::State& state) {
  for (auto _ : state) {
    spice::Circuit ckt;
    const auto in = ckt.node("in");
    const auto out = ckt.node("out");
    ckt.add<spice::VSource>("V1", in, spice::kGround, 1.0);
    ckt.add<spice::Resistor>("R1", in, out, 1e3);
    ckt.add<spice::Capacitor>("C1", out, spice::kGround, 1e-9, 0.0);
    spice::Engine engine(ckt, 27.0);
    spice::TransientOptions opts;
    opts.dt = 1e-8;
    benchmark::DoNotOptimize(engine.transient(1e-6, opts));
  }
}
BENCHMARK(BM_TransientRc);

static void BM_MacCycle_2T1FeFet(benchmark::State& state) {
  cim::CiMRow row(cim::ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(8, 1));
  const std::vector<int> inputs = {1, 0, 1, 1, 0, 1, 0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.evaluate(inputs, 27.0));
  }
}
BENCHMARK(BM_MacCycle_2T1FeFet)->Unit(benchmark::kMillisecond);

static void BM_MacCycle_1FeFet1R(benchmark::State& state) {
  cim::CiMRow row(cim::ArrayConfig::baseline_1r_subthreshold());
  row.set_stored(std::vector<int>(8, 1));
  const std::vector<int> inputs = {1, 0, 1, 1, 0, 1, 0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(row.evaluate(inputs, 27.0));
  }
}
BENCHMARK(BM_MacCycle_1FeFet1R)->Unit(benchmark::kMillisecond);

static void BM_BehavioralDot(benchmark::State& state) {
  static const cim::BehavioralArrayModel model =
      cim::BehavioralArrayModel::calibrate(cim::ArrayConfig::proposed_2t1fefet(),
                                           {0.0, 27.0, 85.0});
  nn::CimDotEngine engine(model, {});
  util::Rng rng(3);
  const auto len = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> a(len);
  std::vector<std::int8_t> w(len);
  for (std::size_t i = 0; i < len; ++i) {
    a[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
    w[i] = static_cast<std::int8_t>(static_cast<int>(rng.uniform_index(255)) - 127);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.dot(a, w));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(len));
}
BENCHMARK(BM_BehavioralDot)->Arg(144)->Arg(1024);

static void BM_MosfetEval(benchmark::State& state) {
  const auto p = devices::MosfetParams::finfet14_nmos(8.0);
  double vg = 0.3;
  for (auto _ : state) {
    vg = vg > 1.0 ? 0.3 : vg + 1e-9;
    benchmark::DoNotOptimize(devices::evaluate_mosfet(p, vg, 1.0, 0.1, 27.0));
  }
}
BENCHMARK(BM_MosfetEval);

// ---------------------------------------------------------------------------
// --smoke: tracked solver benchmark suite (see DESIGN.md "Solver hot path").
// ---------------------------------------------------------------------------
namespace smoke {

#ifndef SFC_BUILD_TYPE
#define SFC_BUILD_TYPE "unknown"
#endif

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (static_cast<double>(v.size()) - 1.0) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Per-assembly-path timing of one kernel.
struct ArmStats {
  std::vector<double> times_ms;  ///< one entry per timed sample
  long newton_iterations = 0;    ///< iterations in one sample's work unit

  double median_ms() const { return percentile(times_ms, 0.5); }
  double p90_ms() const { return percentile(times_ms, 0.9); }
  /// Newton solves per wall second at the median sample.
  double solves_per_sec() const {
    const double ms = median_ms();
    return ms > 0.0 ? static_cast<double>(newton_iterations) * 1e3 / ms : 0.0;
  }
};

struct KernelResult {
  const char* name;
  const char* detail;
  int samples = 0;
  ArmStats legacy;
  ArmStats hot;
  bool bit_identical = true;
  bool converged = true;
  // Solver-counter deltas over the whole kernel (both arms), read from the
  // trace registry; identically zero in SFC_TRACE=OFF builds.
  std::uint64_t step_rejections = 0;
  std::uint64_t lu_factorizations = 0;
  std::uint64_t gmin_steps = 0;

  double speedup() const {
    const double h = hot.median_ms();
    return h > 0.0 ? legacy.median_ms() / h : 0.0;
  }
};

bool same_mac(const cim::MacResult& a, const cim::MacResult& b) {
  return a.converged == b.converged && a.v_acc == b.v_acc &&
         a.v_cell == b.v_cell && a.energy_joules == b.energy_joules;
}

/// DC operating point of a one-cell 2T-1FeFET circuit (Fig. 7 cell),
/// 50 solves per sample.
KernelResult kernel_op_point(int samples) {
  KernelResult kr{"op_point_fig7_cell",
                  "DC operating point, 1-cell 2T-1FeFET circuit, 50 solves",
                  samples,
                  {},
                  {},
                  true,
                  true};
  cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();
  cfg.cells_per_row = 1;
  cim::CiMRow leg_row(cfg), hot_row(cfg);
  leg_row.set_stored({1});
  hot_row.set_stored({1});
  spice::Engine leg_engine(leg_row.circuit(), 27.0);
  spice::Engine hot_engine(hot_row.circuit(), 27.0);
  spice::NewtonOptions leg_opts = cfg.newton, hot_opts = cfg.newton;
  leg_opts.use_stamp_plan = false;
  hot_opts.use_stamp_plan = true;

  constexpr int kSolves = 50;
  const auto run = [&](spice::Engine& engine, const spice::NewtonOptions& o,
                       ArmStats& arm, spice::DcResult& out) {
    const auto t0 = Clock::now();
    long iters = 0;
    for (int i = 0; i < kSolves; ++i) {
      out = engine.dc_operating_point(o);
      iters += out.iterations;
    }
    arm.times_ms.push_back(elapsed_ms(t0));
    arm.newton_iterations = iters;
  };

  spice::DcResult lr, hr;
  run(leg_engine, leg_opts, kr.legacy, lr);  // warm-up (plan compile)
  run(hot_engine, hot_opts, kr.hot, hr);
  kr.legacy.times_ms.clear();
  kr.hot.times_ms.clear();
  for (int s = 0; s < samples; ++s) {
    run(leg_engine, leg_opts, kr.legacy, lr);
    run(hot_engine, hot_opts, kr.hot, hr);
    kr.converged &= lr.converged && hr.converged;
    kr.bit_identical &= lr.x == hr.x;
  }
  return kr;
}

/// The headline kernel: one full MAC-cycle transient of the Fig. 8
/// 8-cell 2T-1FeFET array per sample.
KernelResult kernel_transient_fig8(int samples) {
  KernelResult kr{"transient_fig8_array",
                  "MAC-cycle transient, 8-cell 2T-1FeFET array (Fig. 8)",
                  samples,
                  {},
                  {},
                  true,
                  true};
  cim::ArrayConfig hot_cfg = cim::ArrayConfig::proposed_2t1fefet();
  cim::ArrayConfig leg_cfg = hot_cfg;
  leg_cfg.newton.use_stamp_plan = false;
  cim::CiMRow leg_row(leg_cfg), hot_row(hot_cfg);
  const std::vector<int> stored = {1, 0, 1, 1, 0, 1, 0, 1};
  const std::vector<int> inputs = {1, 1, 0, 1, 0, 1, 1, 0};
  leg_row.set_stored(stored);
  hot_row.set_stored(stored);

  (void)leg_row.evaluate(inputs, 27.0);  // warm-up (plan compile)
  (void)hot_row.evaluate(inputs, 27.0);
  for (int s = 0; s < samples; ++s) {
    auto t0 = Clock::now();
    const cim::MacResult lr = leg_row.evaluate(inputs, 27.0);
    kr.legacy.times_ms.push_back(elapsed_ms(t0));
    t0 = Clock::now();
    const cim::MacResult hr = hot_row.evaluate(inputs, 27.0);
    kr.hot.times_ms.push_back(elapsed_ms(t0));
    kr.converged &= lr.converged && hr.converged;
    kr.bit_identical &= same_mac(lr, hr);
    kr.legacy.newton_iterations = lr.newton_iterations;
    kr.hot.newton_iterations = hr.newton_iterations;
  }
  return kr;
}

/// MAC cycles across the paper's temperature range (0/27/85 degC) per
/// sample — exercises plan reuse across temperature changes.
KernelResult kernel_temperature_sweep(int samples) {
  KernelResult kr{"temperature_sweep_fig8",
                  "MAC cycles at 0/27/85 degC, 8-cell array",
                  samples,
                  {},
                  {},
                  true,
                  true};
  cim::ArrayConfig hot_cfg = cim::ArrayConfig::proposed_2t1fefet();
  cim::ArrayConfig leg_cfg = hot_cfg;
  leg_cfg.newton.use_stamp_plan = false;
  cim::CiMRow leg_row(leg_cfg), hot_row(hot_cfg);
  const std::vector<int> stored = {1, 1, 0, 1, 0, 0, 1, 1};
  const std::vector<int> inputs = {0, 1, 1, 1, 0, 1, 0, 1};
  leg_row.set_stored(stored);
  hot_row.set_stored(stored);
  const double temps[] = {0.0, 27.0, 85.0};

  const auto run = [&](cim::CiMRow& row, ArmStats& arm,
                       std::vector<cim::MacResult>& out) {
    out.clear();
    const auto t0 = Clock::now();
    long iters = 0;
    for (const double t : temps) {
      out.push_back(row.evaluate(inputs, t));
      iters += out.back().newton_iterations;
    }
    arm.times_ms.push_back(elapsed_ms(t0));
    arm.newton_iterations = iters;
  };

  std::vector<cim::MacResult> lr, hr;
  run(leg_row, kr.legacy, lr);  // warm-up
  run(hot_row, kr.hot, hr);
  kr.legacy.times_ms.clear();
  kr.hot.times_ms.clear();
  for (int s = 0; s < samples; ++s) {
    run(leg_row, kr.legacy, lr);
    run(hot_row, kr.hot, hr);
    for (std::size_t i = 0; i < lr.size(); ++i) {
      kr.converged &= lr[i].converged && hr[i].converged;
      kr.bit_identical &= same_mac(lr[i], hr[i]);
    }
  }
  return kr;
}

/// Reduced Fig. 9 Monte Carlo fan-out (6 runs x 3 MAC values, serial).
KernelResult kernel_montecarlo(int samples) {
  KernelResult kr{"montecarlo_fig9_reduced",
                  "Monte Carlo, 6 runs x 3 MAC values, serial",
                  samples,
                  {},
                  {},
                  true,
                  true};
  cim::MonteCarloConfig mc;
  mc.runs = 6;
  mc.sigma_vt_fefet = 0.054;
  mc.mac_values = {0, 4, 8};
  mc.exec = exec::ExecPolicy::serial();
  cim::ArrayConfig hot_cfg = cim::ArrayConfig::proposed_2t1fefet();
  cim::ArrayConfig leg_cfg = hot_cfg;
  leg_cfg.newton.use_stamp_plan = false;

  const auto run = [&](const cim::ArrayConfig& cfg, ArmStats& arm,
                       cim::MonteCarloResult& out) {
    const auto t0 = Clock::now();
    out = cim::run_montecarlo(cfg, mc);
    arm.times_ms.push_back(elapsed_ms(t0));
    arm.newton_iterations = out.total_newton_iterations;
  };

  cim::MonteCarloResult lr, hr;
  for (int s = 0; s < samples; ++s) {
    run(leg_cfg, kr.legacy, lr);
    run(hot_cfg, kr.hot, hr);
    kr.converged &= lr.all_converged && hr.all_converged;
    bool identical = lr.samples.size() == hr.samples.size();
    for (std::size_t i = 0; identical && i < lr.samples.size(); ++i) {
      identical = lr.samples[i].run == hr.samples[i].run &&
                  lr.samples[i].mac == hr.samples[i].mac &&
                  lr.samples[i].v_acc == hr.samples[i].v_acc;
    }
    kr.bit_identical &= identical;
  }
  return kr;
}

/// Round to a fixed decimal precision so re-runs differ only where the
/// measurement genuinely moved (and by a diff-friendly amount).
double rounded(double v, double decade) { return std::round(v * decade) / decade; }

void write_json(const char* path, const std::vector<KernelResult>& kernels) {
  using verify::Json;
  // Canonical, schema-stable layout: sorted keys (Json objects are
  // std::map) and fixed precision; validated by `verify_runner check-bench`.
  Json root = Json::object();
  root.set("schema_version", Json(3.0));
  root.set("benchmark", Json(std::string("solver_hotpath_smoke")));
  root.set("build_type", Json(std::string(SFC_BUILD_TYPE)));
  root.set("headline_kernel", Json(std::string("transient_fig8_array")));
  root.set("sfc_trace_enabled", Json(static_cast<bool>(SFC_TRACE_ENABLED)));
  root.set("target_speedup", Json(2.0));
  root.set("threads", Json(1.0));
  Json arr = Json::array();
  for (const KernelResult& k : kernels) {
    Json kj = Json::object();
    kj.set("name", Json(std::string(k.name)));
    kj.set("detail", Json(std::string(k.detail)));
    kj.set("samples", Json(static_cast<double>(k.samples)));
    kj.set("legacy_ms", Json(rounded(k.legacy.median_ms(), 1e4)));
    kj.set("legacy_p90_ms", Json(rounded(k.legacy.p90_ms(), 1e4)));
    kj.set("hot_ms", Json(rounded(k.hot.median_ms(), 1e4)));
    kj.set("hot_p90_ms", Json(rounded(k.hot.p90_ms(), 1e4)));
    kj.set("speedup", Json(rounded(k.speedup(), 1e3)));
    kj.set("newton_iterations",
           Json(static_cast<double>(k.hot.newton_iterations)));
    kj.set("step_rejections", Json(static_cast<double>(k.step_rejections)));
    kj.set("lu_factorizations",
           Json(static_cast<double>(k.lu_factorizations)));
    kj.set("gmin_steps", Json(static_cast<double>(k.gmin_steps)));
    kj.set("solves_per_sec", Json(rounded(k.hot.solves_per_sec(), 1e1)));
    kj.set("bit_identical", Json(k.bit_identical));
    kj.set("converged", Json(k.converged));
    arr.as_array().push_back(std::move(kj));
  }
  root.set("kernels", std::move(arr));
  try {
    verify::write_json_file(path, root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench-smoke: %s\n", e.what());
    return;
  }
  std::printf("bench-smoke: wrote %s\n", path);
}

/// Runs the suite; returns the process exit code (0 = all kernels
/// converged with bit-identical legacy/hot results).
int run(const std::string& json_path) {
  std::printf("== Solver hot-path smoke benchmark (build: %s) ==\n\n",
              SFC_BUILD_TYPE);
  // Each kernel runs under a TestProbe so BENCH_solver.json can report the
  // solver-counter deltas (iterations already come from DcResult/MacResult).
  const auto probed = [](KernelResult (*kernel)(int), int samples) {
    trace::TestProbe probe;
    KernelResult kr = kernel(samples);
    kr.step_rejections = probe.counter_delta("spice.tran.steps_rejected");
    kr.lu_factorizations = probe.counter_delta("spice.lu.factorizations");
    kr.gmin_steps = probe.counter_delta("spice.newton.gmin_steps");
    return kr;
  };
  std::vector<KernelResult> kernels;
  kernels.push_back(probed(kernel_op_point, 5));
  kernels.push_back(probed(kernel_transient_fig8, 9));
  kernels.push_back(probed(kernel_temperature_sweep, 5));
  kernels.push_back(probed(kernel_montecarlo, 3));

  bool ok = true;
  std::printf("%-26s %12s %12s %9s %6s %6s\n", "kernel", "legacy[ms]",
              "hot[ms]", "speedup", "ident", "conv");
  for (const KernelResult& k : kernels) {
    ok &= k.bit_identical && k.converged;
    std::printf("%-26s %12.3f %12.3f %8.2fx %6s %6s\n", k.name,
                k.legacy.median_ms(), k.hot.median_ms(), k.speedup(),
                k.bit_identical ? "yes" : "NO", k.converged ? "yes" : "NO");
  }
  std::printf(
      "\nHeadline (transient_fig8_array) tracks the documented >=2x target\n"
      "with the default build config; timing never fails this run, only a\n"
      "bit-identity or convergence failure does.\n");
  if (!json_path.empty()) write_json(json_path.c_str(), kernels);
  return ok ? 0 : 1;
}

}  // namespace smoke

namespace {

/// Remove `--threads N` / `--threads=N` from argv (google-benchmark rejects
/// flags it does not know). Returns the requested count, 0 if absent.
int strip_threads_flag(int* argc, char** argv) {
  int threads = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < *argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::atoi(arg.c_str() + 10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return threads;
}

/// Remove `--smoke` and `--json PATH` / `--json=PATH` from argv. Returns
/// true when smoke mode was requested (--json implies it).
bool strip_smoke_flags(int* argc, char** argv, std::string* json_path) {
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json" && i + 1 < *argc) {
      *json_path = argv[++i];
      smoke = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      *json_path = arg.substr(7);
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return smoke;
}

/// Remove `--trace PATH` / `--metrics PATH` (and the `=` forms) from argv.
/// Works in both benchmark and smoke mode: --trace enables the span tracer
/// for the whole run and writes Chrome trace JSON at exit; --metrics writes
/// the registry snapshot at exit.
void strip_observability_flags(int* argc, char** argv, std::string* trace_path,
                               std::string* metrics_path) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < *argc) {
      *trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      *trace_path = arg.substr(8);
    } else if (arg == "--metrics" && i + 1 < *argc) {
      *metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      *metrics_path = arg.substr(10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
}

/// Flush the requested observability outputs; returns false on I/O error.
bool write_observability(const std::string& trace_path,
                         const std::string& metrics_path) {
  bool ok = true;
  if (!trace_path.empty()) {
    trace::Tracer::global().stop();
    try {
      trace::Tracer::global().write_chrome(trace_path);
      std::printf("trace: wrote %s\n", trace_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace: %s\n", e.what());
      ok = false;
    }
  }
  if (!metrics_path.empty()) {
    try {
      trace::write_metrics_file(metrics_path);
      std::printf("metrics: wrote %s\n", metrics_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "metrics: %s\n", e.what());
      ok = false;
    }
  }
  return ok;
}

void report_montecarlo_speedup(int threads) {
  cim::MonteCarloConfig mc;
  mc.runs = 24;
  mc.sigma_vt_fefet = 0.054;
  mc.mac_values = {0, 2, 4, 6, 8};
  const cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();

  mc.exec = exec::ExecPolicy::serial();
  const cim::MonteCarloResult serial = cim::run_montecarlo(cfg, mc);
  mc.exec.threads = threads;
  const cim::MonteCarloResult parallel = cim::run_montecarlo(cfg, mc);

  bool identical = serial.samples.size() == parallel.samples.size();
  for (std::size_t i = 0; identical && i < serial.samples.size(); ++i) {
    identical = serial.samples[i].run == parallel.samples[i].run &&
                serial.samples[i].mac == parallel.samples[i].mac &&
                serial.samples[i].v_acc == parallel.samples[i].v_acc;
  }
  std::printf(
      "== Monte Carlo fan-out: %d runs x %zu MAC values ==\n"
      "  serial (1 thread):      %8.1f ms\n"
      "  parallel (%d threads):  %8.1f ms  (used %d)\n"
      "  speedup:                %8.2fx\n"
      "  bit-identical samples:  %s\n\n",
      mc.runs, mc.mac_values.size(), serial.job.wall_ms, threads,
      parallel.job.wall_ms, parallel.job.threads_used,
      serial.job.wall_ms / std::max(parallel.job.wall_ms, 1e-9),
      identical ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, metrics_path;
  strip_observability_flags(&argc, argv, &trace_path, &metrics_path);
  if (!trace_path.empty()) trace::Tracer::global().start();
  std::string json_path;
  if (strip_smoke_flags(&argc, argv, &json_path)) {
    const int rc = smoke::run(json_path);
    return write_observability(trace_path, metrics_path) ? rc : 1;
  }
  const int threads = strip_threads_flag(&argc, argv);
  if (threads > 0) report_montecarlo_speedup(threads);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_observability(trace_path, metrics_path) ? 0 : 1;
}
