// Ablation study of the 2T-1FeFET design choices called out in DESIGN.md:
//   A. feedback loop strength (M2 width) - what the second transistor buys
//   B. WL disable level - the MAC=0 leakage-creep failure mode
//   C. cell capacitor sizing - settling vs. creep trade-off
//   D. AC view: small-signal bandwidth of the sensing path
// Each section prints the figure of merit it moves.
#include <cstdio>
#include <vector>

#include "cim/mac.hpp"
#include "spice/engine.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

namespace {

const std::vector<double> kTemps = {0.0, 27.0, 85.0};

double cell_drift(const ArrayConfig& cfg) {
  const auto resp = cell_temperature_response(cfg, kTemps, 1, 1);
  std::vector<double> t, i;
  for (const auto& r : resp) {
    if (!r.converged) return -1.0;
    t.push_back(r.temperature_c);
    i.push_back(r.i_avg);
  }
  return max_normalized_fluctuation(t, i, 27.0);
}

NmrSummary array_nmr(const ArrayConfig& cfg) {
  return summarize_nmr(mac_level_sweep(cfg, kTemps).levels);
}

}  // namespace

int main() {
  std::printf("== Ablation: 2T-1FeFET design choices ==\n\n");

  // --- A. the feedback loop itself -----------------------------------------
  // True open-loop ablation: the same cell with M2's gate tied to a fixed
  // bias (the nominal OUT level) instead of OUT. Theory (DESIGN.md):
  // closing the loop divides the residual temperature drift by the
  // feedback factor of 2.
  std::printf("A. feedback loop: M2 gate = OUT (closed) vs fixed bias "
              "(open):\n");
  {
    auto sample = [](bool closed, double temp) {
      const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
      spice::Circuit ckt;
      const auto bl = ckt.node("bl");
      const auto sl = ckt.node("sl");
      const auto wl = ckt.node("wl");
      const auto a = ckt.node("a");
      const auto out = ckt.node("out");
      ckt.add<spice::VSource>("BL", bl, spice::kGround, cfg.bias.v_bl);
      ckt.add<spice::VSource>("SL", sl, spice::kGround, cfg.bias.v_sl);
      ckt.add<spice::VSource>(
          "WL", wl, spice::kGround,
          spice::Waveform::pulse(0, cfg.bias.v_wl_read, 0.1e-9, 0.05e-9,
                                 0.05e-9, 4.75e-9, 0, 1));
      auto& fe = ckt.add<fefet::FeFet>("XF", bl, wl, a, cfg.cell2t.fefet);
      fe.ferroelectric().set_polarization(1.0);
      spice::NodeId m2gate = out;
      if (!closed) {
        m2gate = ckt.node("vfix");
        ckt.add<spice::VSource>("VFIX", m2gate, spice::kGround, 0.148);
      }
      ckt.add<devices::Mosfet>("M2", a, m2gate, spice::kGround,
                               cfg.cell2t.m2);
      ckt.add<devices::Mosfet>("M1", sl, a, out, cfg.cell2t.m1);
      ckt.add<spice::Capacitor>("C0", out, spice::kGround, cfg.cell2t.c0,
                                0.0);
      spice::Engine engine(ckt, temp);
      spice::TransientOptions opts;
      opts.dt = 2e-11;
      const auto tr = engine.transient(5e-9, opts);
      return tr.converged ? tr.final_value("out") : -1.0;
    };
    util::Table fb({"loop", "V(0C)", "V(27C)", "V(85C)", "drift 0-85C"});
    for (bool closed : {true, false}) {
      const double v0 = sample(closed, 0.0);
      const double v27 = sample(closed, 27.0);
      const double v85 = sample(closed, 85.0);
      fb.add_row({closed ? "closed (proposed)" : "open (M2 gate fixed)",
                  util::fmt(v0, 4), util::fmt(v27, 4), util::fmt(v85, 4),
                  util::fmt_percent((v85 - v0) / v27)});
    }
    std::printf("%s", fb.render().c_str());
    std::printf("   (closing the loop halves the sampled-output drift -\n"
                "    the feedback factor of 2 from OUT = [headroom - "
                "margin]/2)\n\n");
  }

  // M2 sizing on top of the closed loop (ratiometric headroom knob).
  std::printf("A'. M2 sizing (closed loop) - the bias-ratio knob:\n");
  util::Table fb2({"M2 W/L", "cell drift 0-85C", "NMR_min", "separable"});
  for (double wl : {0.003, 0.03, 0.3}) {
    ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
    cfg.cell2t.m2.w = wl * cfg.cell2t.m2.l;
    const double drift = cell_drift(cfg);
    const NmrSummary nmr = array_nmr(cfg);
    fb2.add_row({util::fmt(wl, 3), util::fmt_percent(drift),
                 util::fmt(nmr.nmr_min, 3), nmr.separable ? "yes" : "NO"});
  }
  std::printf("%s", fb2.render().c_str());
  std::printf("   (the cell is robust across a 100x M2 range: with the loop\n"
              "    closed, M2's size moves the output level via nVT*ln(R)\n"
              "    but the ratiometric cancellation is preserved)\n\n");

  // --- B. WL disable level -------------------------------------------------
  std::printf("B. WL level for input '0' (the 'disable' the paper demands):\n");
  util::Table wl_off({"V_wl_off [V]", "MAC=0 creep @85C [V]", "NMR_min",
                      "separable"});
  for (double v : {0.0, -0.05, -0.1, -0.2, -0.3}) {
    ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
    cfg.bias.v_wl_off = v;
    const auto creep = cell_temperature_response(cfg, {85.0}, 1, 0);
    const NmrSummary nmr = array_nmr(cfg);
    wl_off.add_row({util::fmt(v, 3), util::fmt(creep.at(0).v_out, 3),
                    util::fmt(nmr.nmr_min, 3),
                    nmr.separable ? "yes" : "NO"});
  }
  std::printf("%s", wl_off.render().c_str());
  std::printf("   (a grounded WL leaks through the low-VTH FeFET and lifts\n"
              "    the MAC=0 level with temperature - the NMR_0 failure; a\n"
              "    modest underdrive eliminates it)\n\n");

  // --- C. cell capacitor sizing ---------------------------------------------
  std::printf("C. cell capacitor C0 (settling vs. creep):\n");
  util::Table c0({"C0 [fF]", "V_out(27C) [V]", "cell drift", "NMR_min",
                  "separable"});
  for (double c : {1e-15, 5e-15, 20e-15, 80e-15, 200e-15}) {
    ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
    cfg.cell2t.c0 = c;
    const auto resp = cell_temperature_response(cfg, {27.0}, 1, 1);
    const double drift = cell_drift(cfg);
    const NmrSummary nmr = array_nmr(cfg);
    c0.add_row({util::fmt(c * 1e15, 3), util::fmt(resp.at(0).v_out, 4),
                util::fmt_percent(drift), util::fmt(nmr.nmr_min, 3),
                nmr.separable ? "yes" : "NO"});
  }
  std::printf("%s", c0.render().c_str());
  std::printf("   (moderate C0 growth *helps*: slower settling filters the\n"
              "    drift and dilutes the off-state creep - until the output\n"
              "    no longer develops within the 5 ns phase and the level,\n"
              "    then the margins, collapse; 5 fF also keeps the MAC\n"
              "    energy in the paper's fJ regime)\n\n");

  // --- D. AC small-signal view ----------------------------------------------
  std::printf("D. AC analysis of the internal bias node (new capability, "
              "not in the paper):\n");
  {
    // Linearize the cell at read bias and measure the WL -> A transfer:
    // node A is the quasi-static ratiometric node, so it must follow WL
    // with near-unity gain at all frequencies of interest.
    spice::Circuit ckt;
    const auto bl = ckt.node("bl");
    const auto sl = ckt.node("sl");
    const auto wl = ckt.node("wl");
    const auto a = ckt.node("a");
    const auto out = ckt.node("out");
    const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
    ckt.add<spice::VSource>("BL", bl, spice::kGround, cfg.bias.v_bl);
    ckt.add<spice::VSource>("SL", sl, spice::kGround, cfg.bias.v_sl);
    auto& vwl = ckt.add<spice::VSource>("WL", wl, spice::kGround,
                                        cfg.bias.v_wl_read);
    vwl.set_ac_magnitude(1.0);
    auto& fefet = ckt.add<fefet::FeFet>("XF", bl, wl, a, cfg.cell2t.fefet);
    fefet.ferroelectric().set_polarization(1.0);
    // Pin OUT at its mid-transient level so the loop devices are biased
    // in their active region (a pure DC op would sit at the leakage
    // equilibrium instead).
    const auto vb = ckt.node("vb");
    ckt.add<spice::VSource>("VB", vb, spice::kGround, 0.148);
    ckt.add<devices::Mosfet>("M2", a, vb, spice::kGround, cfg.cell2t.m2);
    ckt.add<devices::Mosfet>("M1", sl, a, out, cfg.cell2t.m1);
    ckt.add<spice::Resistor>("RB", out, vb, 1e7);
    ckt.add<spice::Capacitor>("C0", out, spice::kGround, cfg.cell2t.c0);

    spice::Engine engine(ckt, 27.0);
    const auto freqs = spice::log_frequency_grid(1e3, 1e10, 10);
    const spice::AcResult res = engine.ac(freqs);
    if (res.converged) {
      std::printf("   WL->A gain at 1 kHz: %.3f; at 100 MHz (read "
                  "timescale): %.3f\n",
                  res.magnitude("a", 0),
                  res.magnitude("a", 50 > res.num_points() - 1
                                         ? res.num_points() - 1
                                         : 50));
      std::printf("   WL->OUT gain at 1 kHz: %.3f\n",
                  res.magnitude("out", 0));
      std::printf("   (node A follows WL ~1:1 - it is quasi-static at the\n"
                  "    5 ns read timescale, validating the ratiometric\n"
                  "    analysis in DESIGN.md)\n");
    } else {
      std::printf("   AC analysis did not converge\n");
    }
  }
  return 0;
}
