// Extension: global process corners (die-to-die VTH / mobility shifts) on
// top of the paper's local Monte Carlo (Fig. 9). A real product must keep
// the MAC levels separable over corners x temperature simultaneously.
#include <cstdio>

#include "cim/energy.hpp"
#include "cim/mac.hpp"
#include "cim/montecarlo.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

int main() {
  std::printf("== Extension: process corners x temperature ==\n\n");

  const std::vector<double> temps = {0.0, 27.0, 85.0};

  util::Table table({"corner", "dVTH [mV]", "mobility", "NMR_min (0-85C)",
                     "separable", "E/op @27C [fJ]", "MC max err [%FS]"});
  for (const ProcessCorner& corner : standard_corners()) {
    const ArrayConfig cfg =
        apply_corner(ArrayConfig::proposed_2t1fefet(), corner);
    const NmrSummary nmr = summarize_nmr(mac_level_sweep(cfg, temps).levels);
    const EnergySummary energy = measure_energy(cfg, 27.0);
    MonteCarloConfig mc;
    mc.runs = 25;
    mc.mac_values = {0, 2, 4, 6, 8};
    const MonteCarloResult mcr = run_montecarlo(cfg, mc);
    table.add_row({corner.name, util::fmt(corner.dvth * 1e3, 3),
                   util::fmt(corner.mobility_scale, 3),
                   util::fmt(nmr.nmr_min, 3),
                   nmr.separable ? "yes" : "NO",
                   util::fmt(energy.mean_energy_per_op * 1e15, 4),
                   util::fmt(mcr.max_error_percent, 3)});
  }
  std::printf("%s\n", table.render().c_str());

  // Mitigation for the slow corner: the failing term is the WL read
  // headroom (WL - VTH_fefet), which a per-die WL trim restores.
  std::printf("slow-corner mitigation: WL read-level trim (SS corner):\n");
  util::Table trim({"V_wl_read [V]", "NMR_min (0-85C)", "separable"});
  for (double wl : {0.35, 0.37, 0.40}) {
    ArrayConfig cfg =
        apply_corner(ArrayConfig::proposed_2t1fefet(), standard_corners()[1]);
    cfg.bias.v_wl_read = wl;
    const NmrSummary nmr = summarize_nmr(mac_level_sweep(cfg, temps).levels);
    trim.add_row({util::fmt(wl, 3), util::fmt(nmr.nmr_min, 3),
                  nmr.separable ? "yes" : "NO"});
  }
  std::printf("%s\n", trim.render().c_str());

  std::printf(
      "reading:\n"
      "  * the ratiometric FeFET/M2 bias absorbs most of a global VTH\n"
      "    shift (their drifts cancel inside node A), but the *WL read\n"
      "    headroom* WL - VTH_fefet does not cancel: the slow corner\n"
      "    (+30 mV) eats it and NMR_min goes slightly negative - a real\n"
      "    margin limitation the paper does not evaluate;\n"
      "  * a 20-50 mV per-die WL trim (standard practice for subthreshold\n"
      "    designs) restores full separability at the slow corner;\n"
      "  * the fast corner *gains* margin, and energy moves only a few\n"
      "    percent across corners;\n"
      "  * local sigma_VT (Fig. 9) remains the dominant variation term.\n");
  return 0;
}
