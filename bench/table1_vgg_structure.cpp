// Table I reproduction: the VGG network executed on CIFAR-10, printed
// layer by layer, plus the parameter/MAC budget and the width-scaled
// variant used for CPU-feasible training in this reproduction.
#include <cstdio>

#include "nn/vgg.hpp"

using namespace sfc::nn;

namespace {

void print_table(const char* title, const VggConfig& cfg) {
  std::printf("%s\n", title);
  std::printf("  %-20s %-12s %-12s %s\n", "Layer", "Input Map", "Output Map",
              "Non Linearity");
  for (const auto& row : vgg_table(cfg)) {
    std::printf("  %-20s %-12s %-12s %s\n", row.layer.c_str(),
                row.input_map.c_str(), row.output_map.c_str(),
                row.nonlinearity.c_str());
  }
  Sequential net = build_vgg(cfg);
  std::printf("  -> %zu trainable parameters\n\n", net.num_parameters());
}

}  // namespace

int main() {
  std::printf("== Table I: VGG structure for CIFAR-10 ==\n\n");
  print_table("paper network (Table I):", VggConfig::paper());
  print_table("width-scaled variant (factor 1/8, used by the accuracy bench):",
              VggConfig::reduced(0.125));

  std::printf(
      "note: the paper network's topology (7 conv + 3 pool + 3 FC, same\n"
      "dropout schedule, FC1 input 4*4*256 = 4096) is reproduced exactly;\n"
      "the reduced variant shrinks only the channel/hidden widths so that\n"
      "training on SynthCIFAR finishes in CPU-minutes.\n");
  return 0;
}
