// Fig. 3 reproduction: output current of the baseline 1FeFET-1R cell from
// 0 to 85 degC, normalized to the 27 degC reference, for
//   (a) V_read = 1.3 V  (saturation region - the operating point of [17]),
//   (b) V_read = 0.35 V (subthreshold region).
// Paper numbers: max fluctuation 20.6% (saturation) vs 52.1% (subthreshold).
#include <cstdio>
#include <vector>

#include "cim/mac.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

namespace {

struct Series {
  std::vector<double> temps;
  std::vector<double> currents;
  std::vector<double> normalized;
  double fluct = 0.0;
};

Series measure(const ArrayConfig& cfg, const std::vector<double>& temps) {
  Series s;
  const auto resp = cell_current_response(cfg, temps, 1, 1);
  for (const auto& r : resp) {
    if (!r.converged) continue;
    s.temps.push_back(r.temperature_c);
    s.currents.push_back(r.i_drain);
  }
  s.normalized = normalize_to_reference(s.temps, s.currents, 27.0);
  s.fluct = max_normalized_fluctuation(s.temps, s.currents, 27.0);
  return s;
}

}  // namespace

int main() {
  std::printf(
      "== Fig. 3: 1FeFET-1R cell output current vs temperature ==\n"
      "   (current-mode readout at the SL virtual ground, stored '1', "
      "input '1')\n\n");

  std::vector<double> temps;
  for (double t = 0.0; t <= 85.0 + 1e-9; t += 5.0) temps.push_back(t);

  const Series sat = measure(ArrayConfig::baseline_1r_saturation(), temps);
  const Series sub = measure(ArrayConfig::baseline_1r_subthreshold(), temps);

  util::Table table({"T [degC]", "I_sat [A]", "I_sat/I27", "I_sub [A]",
                     "I_sub/I27"});
  util::CsvWriter csv("bench_fig3_1fefet1r.csv",
                      {"temp_c", "i_saturation", "norm_saturation",
                       "i_subthreshold", "norm_subthreshold"});
  for (std::size_t i = 0; i < sat.temps.size(); ++i) {
    table.add_row({util::fmt(sat.temps[i], 3), util::fmt(sat.currents[i], 4),
                   util::fmt(sat.normalized[i], 4),
                   util::fmt(sub.currents[i], 4),
                   util::fmt(sub.normalized[i], 4)});
    csv.row({sat.temps[i], sat.currents[i], sat.normalized[i],
             sub.currents[i], sub.normalized[i]});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "max normalized fluctuation over 0-85 degC (reference 27 degC):\n"
      "  (a) saturation   (1.3 V read):  measured %6.1f%%   paper 20.6%%\n"
      "  (b) subthreshold (0.35 V read): measured %6.1f%%   paper 52.1%%\n"
      "  shape check: subthreshold %s saturation (paper: yes)\n",
      sat.fluct * 100.0, sub.fluct * 100.0,
      sub.fluct > sat.fluct ? "worse than" : "NOT worse than");
  return 0;
}
