// Fig. 8 reproduction:
//   (a) MAC output ranges of the proposed 2T-1FeFET array (8 cells/row)
//       over 0-85 degC - no overlap; NMR_min = 0.22 overall and 2.3 when
//       restricted to 20-85 degC in the paper;
//   (b) energy per operation at each MAC output - paper average 3.14 fJ,
//       i.e. 2866 TOPS/W at 9 ops per row MAC.
#include <cstdio>
#include <string>

#include "cim/energy.hpp"
#include "cim/mac.hpp"
#include "trace/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

int main(int argc, char** argv) {
  trace::install_cli_observability(&argc, argv);
  std::printf("== Fig. 8(a): 2T-1FeFET array MAC output ranges, 0-85 degC ==\n\n");

  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  const std::vector<double> temps = default_temperature_grid();
  const LevelSweepResult sweep = mac_level_sweep(cfg, temps);
  const auto nmr = noise_margin_rates(sweep.levels);

  util::Table table({"MAC", "V_lo [V]", "V_hi [V]", "NMR_i",
                     "E/op [fJ]"});
  util::CsvWriter csv("bench_fig8_2t_levels.csv",
                      {"mac", "v_lo", "v_hi", "nmr", "energy_per_op_j"});
  for (std::size_t k = 0; k < sweep.levels.size(); ++k) {
    const auto& level = sweep.levels[k];
    table.add_row({std::to_string(level.mac), util::fmt(level.lo, 4),
                   util::fmt(level.hi, 4),
                   k < nmr.size() ? util::fmt(nmr[k], 3) : "-",
                   util::fmt(sweep.energy_per_op_by_mac[k] * 1e15, 4)});
    csv.row({static_cast<double>(level.mac), level.lo, level.hi,
             k < nmr.size() ? nmr[k] : 0.0, sweep.energy_per_op_by_mac[k]});
  }
  std::printf("%s\n", table.render().c_str());

  const NmrSummary all = summarize_nmr(sweep.levels);
  const LevelSweepResult warm_sweep =
      mac_level_sweep(cfg, {20.0, 27.0, 40.0, 55.0, 70.0, 85.0});
  const NmrSummary warm = summarize_nmr(warm_sweep.levels);
  std::printf(
      "separability (Fig. 8a):\n"
      "  0-85 degC:  NMR_min = %.3f at MAC=%d  (paper 0.22 at MAC=0)  -> %s\n"
      "  20-85 degC: NMR_min = %.3f at MAC=%d  (paper 2.3 at MAC=7)\n"
      "  warm-range margin improves: %s (paper: yes)\n\n",
      all.nmr_min, all.argmin_mac,
      all.separable ? "separable, no overlap" : "OVERLAP",
      warm.nmr_min, warm.argmin_mac,
      warm.nmr_min > all.nmr_min ? "yes" : "no");

  std::printf("== Fig. 8(b): energy per operation ==\n\n");
  const EnergySummary energy = measure_energy(cfg, 27.0);
  std::printf(
      "  mean energy/op: %.3f fJ   (paper 3.14 fJ)\n"
      "  energy efficiency: %.0f TOPS/W   (paper 2866 TOPS/W)\n"
      "  energy grows with MAC value: %s (paper: yes)\n"
      "  note: our calibrated bias sits deeper in subthreshold than the\n"
      "  paper's silicon, so the absolute energy lands below 3.14 fJ while\n"
      "  the ordering vs. Table II designs is preserved (see table2 bench).\n",
      energy.mean_energy_per_op * 1e15, energy.tops_per_watt,
      energy.energy_per_op_by_mac[8] > energy.energy_per_op_by_mac[1]
          ? "yes"
          : "no");
  return 0;
}
