// Fig. 4 reproduction: output-voltage ranges of the subthreshold
// 1FeFET-1R CiM array (8 cells/row) for MAC = 0..8 over 0-85 degC. The
// paper's point: the ranges OVERLAP, so distinct MAC results become
// indistinguishable under temperature drift.
#include <cstdio>
#include <string>

#include "cim/mac.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

int main() {
  std::printf(
      "== Fig. 4: subthreshold 1FeFET-1R array output ranges, 0-85 degC ==\n\n");

  const ArrayConfig cfg = ArrayConfig::baseline_1r_subthreshold();
  const std::vector<double> temps = default_temperature_grid();
  const LevelSweepResult sweep = mac_level_sweep(cfg, temps);
  if (!sweep.all_converged) {
    std::printf("WARNING: some operating points failed to converge\n");
  }

  const auto nmr = noise_margin_rates(sweep.levels);
  util::Table table(
      {"MAC", "V_lo [V]", "V_hi [V]", "NMR_i", "overlaps next?"});
  util::CsvWriter csv("bench_fig4_1r_levels.csv",
                      {"mac", "v_lo", "v_hi", "nmr"});
  for (std::size_t k = 0; k < sweep.levels.size(); ++k) {
    const auto& level = sweep.levels[k];
    const bool has_nmr = k < nmr.size();
    const bool overlap = has_nmr && nmr[k] < 0.0;
    table.add_row({std::to_string(level.mac), util::fmt(level.lo, 4),
                   util::fmt(level.hi, 4),
                   has_nmr ? util::fmt(nmr[k], 3) : "-",
                   has_nmr ? (overlap ? "YES" : "no") : "-"});
    csv.row({static_cast<double>(level.mac), level.lo, level.hi,
             has_nmr ? nmr[k] : 0.0});
  }
  std::printf("%s\n", table.render().c_str());

  const NmrSummary summary = summarize_nmr(sweep.levels);
  int overlapping = 0;
  for (double v : nmr) {
    if (v < 0.0) ++overlapping;
  }
  std::printf(
      "NMR_min = %.3f at MAC = %d; %d of 8 adjacent pairs overlap.\n"
      "shape check: paper reports overlapping outputs for this design -> %s\n",
      summary.nmr_min, summary.argmin_mac, overlapping,
      summary.separable ? "NOT reproduced" : "reproduced");
  return 0;
}
