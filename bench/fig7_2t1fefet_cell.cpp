// Fig. 7 reproduction: normalized output current of the proposed
// 2T-1FeFET cell vs temperature (reference 27 degC). Paper: max
// fluctuation 26.6% at 0 degC, improving to 12.4% above 20 degC -
// close to the saturation-mode baseline while reading at 0.35 V.
#include <cstdio>
#include <vector>

#include "cim/mac.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

using namespace sfc;
using namespace sfc::cim;

int main() {
  std::printf(
      "== Fig. 7: 2T-1FeFET cell normalized output current vs T ==\n"
      "   (average C0 charging current over the 5 ns cell phase)\n\n");

  const ArrayConfig cfg = ArrayConfig::proposed_2t1fefet();
  std::vector<double> temps;
  for (double t = 0.0; t <= 85.0 + 1e-9; t += 5.0) temps.push_back(t);

  const auto resp = cell_temperature_response(cfg, temps, 1, 1);
  std::vector<double> ts, is;
  for (const auto& r : resp) {
    if (!r.converged) continue;
    ts.push_back(r.temperature_c);
    is.push_back(r.i_avg);
  }
  const auto norm = normalize_to_reference(ts, is, 27.0);

  util::Table table({"T [degC]", "V_out [V]", "I_avg [A]", "I/I(27C)"});
  util::CsvWriter csv("bench_fig7_2t_cell.csv",
                      {"temp_c", "v_out", "i_avg", "normalized"});
  for (std::size_t i = 0; i < ts.size(); ++i) {
    table.add_row({util::fmt(ts[i], 3), util::fmt(resp[i].v_out, 4),
                   util::fmt(is[i], 4), util::fmt(norm[i], 4)});
    csv.row({ts[i], resp[i].v_out, is[i], norm[i]});
  }
  std::printf("%s\n", table.render().c_str());

  const double fluct_all = max_normalized_fluctuation(ts, is, 27.0);
  std::vector<double> warm_t, warm_i;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] >= 20.0) {
      warm_t.push_back(ts[i]);
      warm_i.push_back(is[i]);
    }
  }
  const double fluct_warm = max_normalized_fluctuation(warm_t, warm_i, 27.0);

  // Baseline references for the shape comparison.
  auto fluct_1r = [&](const ArrayConfig& c) {
    const auto r = cell_current_response(c, {0.0, 27.0, 85.0}, 1, 1);
    std::vector<double> t2, i2;
    for (const auto& x : r) {
      t2.push_back(x.temperature_c);
      i2.push_back(x.i_drain);
    }
    return max_normalized_fluctuation(t2, i2, 27.0);
  };
  const double f_sat = fluct_1r(ArrayConfig::baseline_1r_saturation());
  const double f_sub = fluct_1r(ArrayConfig::baseline_1r_subthreshold());

  std::printf(
      "max fluctuation 0-85 degC:  measured %5.1f%%   paper 26.6%%\n"
      "max fluctuation 20-85 degC: measured %5.1f%%   paper 12.4%%\n"
      "shape checks:\n"
      "  2T-1FeFET < subthreshold 1FeFET-1R (%5.1f%%): %s\n"
      "  2T-1FeFET comparable to saturated 1FeFET-1R (%5.1f%%): %s\n",
      fluct_all * 100.0, fluct_warm * 100.0, f_sub * 100.0,
      fluct_all < f_sub ? "yes" : "NO", f_sat * 100.0,
      fluct_all < 1.5 * f_sat ? "yes" : "NO");
  return 0;
}
