// Ablation: wordlength scaling of the bit-serial CiM mapping (the paper
// operates at "an 8-bit wordlength scale"; [17]'s scheme is flexible).
// For 4/6/8-bit words this bench reports
//   * classification accuracy (digital int-N vs the CiM fabric),
//   * row MACs per inference -> energy and effective throughput,
// plus a sensing-periphery extension: how far a temperature-tracking ADC
// reference rescues the (otherwise failing) subthreshold baseline array.
#include <cstdio>

#include "cim/energy.hpp"
#include "nn/cim_engine.hpp"
#include "nn/trainer.hpp"
#include "nn/vgg.hpp"
#include "util/table.hpp"

using namespace sfc;

namespace {

nn::Sequential make_and_train(const data::Dataset& train) {
  util::Rng rng(61);
  nn::Sequential net;
  net.add<nn::Conv2d>(3, 8, 3, true, rng);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Conv2d>(8, 12, 3, true, rng);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Flatten>();
  net.add<nn::Dense>(12 * 4 * 4, 10, rng);
  nn::TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 16;
  cfg.optimizer = nn::Optimizer::kAdam;
  cfg.learning_rate = 1e-3;
  nn::Trainer trainer(net, cfg);
  trainer.fit(train);
  return net;
}

}  // namespace

int main() {
  std::printf("== Ablation: wordlength of the bit-serial CiM mapping ==\n\n");

  data::SynthCifarConfig dcfg;
  dcfg.train_per_class = 60;
  dcfg.test_per_class = 20;
  dcfg.noise_sigma = 0.2;
  const auto train = data::make_synth_cifar_train(dcfg);
  const auto test = data::make_synth_cifar_test(dcfg);
  nn::Sequential net = make_and_train(train);
  std::printf("float32 accuracy: %.1f%%\n\n",
              nn::Trainer::evaluate(net, test) * 100.0);

  const cim::BehavioralArrayModel fabric =
      cim::BehavioralArrayModel::calibrate(
          cim::ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});
  const cim::EnergySummary energy =
      cim::measure_energy(cim::ArrayConfig::proposed_2t1fefet(), 27.0);

  util::Table table({"word bits", "digital acc", "CiM acc (27C)",
                     "CiM acc (85C)", "row MACs/inf", "energy/inf [nJ]"});
  for (const int bits : {4, 6, 8}) {
    nn::QuantizeOptions qopts;
    qopts.activation_bits = bits;
    qopts.weight_bits = bits;
    const nn::QuantizedNetwork qnet =
        nn::QuantizedNetwork::from_model(net, train, 16, qopts);

    nn::IdealDotEngine ideal;
    const double acc_digital = qnet.evaluate(test, ideal);

    nn::CimDotEngine::Options copts;
    copts.activation_bits = bits;
    copts.weight_bits = bits;
    copts.temperature_c = 27.0;
    nn::CimDotEngine engine27(fabric, copts);
    const double acc27 = qnet.evaluate(test, engine27);
    const auto row_macs = engine27.row_ops() / static_cast<std::int64_t>(
                              test.images.size());

    copts.temperature_c = 85.0;
    nn::CimDotEngine engine85(fabric, copts);
    const double acc85 = qnet.evaluate(test, engine85);

    const double e_inf = static_cast<double>(row_macs) * 9.0 *
                         energy.mean_energy_per_op;
    table.add_row({std::to_string(bits),
                   util::fmt_percent(acc_digital).substr(1),
                   util::fmt_percent(acc27).substr(1),
                   util::fmt_percent(acc85).substr(1),
                   util::fmt(static_cast<double>(row_macs), 6),
                   util::fmt(e_inf * 1e9, 4)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "   (energy and latency scale ~quadratically with wordlength - the\n"
      "    bit-serial plane count is act_bits x (weight_bits - 1) x 2;\n"
      "    accuracy saturates at 6-8 bits, matching the paper's choice of\n"
      "    an 8-bit wordlength as the conservative operating point)\n\n");

  // --- extension: temperature-tracking ADC on the baseline array ----------
  std::printf("extension: can a temperature-tracking ADC rescue the "
              "subthreshold baseline?\n");
  const cim::BehavioralArrayModel baseline =
      cim::BehavioralArrayModel::calibrate(
          cim::ArrayConfig::baseline_1r_subthreshold(), {0.0, 27.0, 85.0});
  util::Table rescue({"T [degC]", "fixed-ref mis-decodes (of 9)",
                      "tracking-ref mis-decodes (of 9)"});
  for (double t : {0.0, 27.0, 55.0, 85.0}) {
    int fixed_errors = 0, tracking_errors = 0;
    for (int k = 0; k <= 8; ++k) {
      if (baseline.mac(k, t) != k) ++fixed_errors;
      if (baseline.mac_tracking(k, t) != k) ++tracking_errors;
    }
    rescue.add_row({util::fmt(t, 3), std::to_string(fixed_errors),
                    std::to_string(tracking_errors)});
  }
  std::printf("%s", rescue.render().c_str());
  std::printf(
      "   (a periphery that re-centers its references with temperature\n"
      "    recovers the *systematic* level shift, but needs a temperature\n"
      "    sensor + per-die calibration, and cannot recover levels once\n"
      "    adjacent ranges overlap across the corner cases the array-level\n"
      "    NMR accounts for; the 2T-1FeFET cell solves it in the cell)\n");
  return 0;
}
