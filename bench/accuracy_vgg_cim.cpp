// Sec. IV-B reproduction: classification accuracy of the VGG network
// executed on the proposed 2T-1FeFET CiM fabric (paper: 89.45% on
// CIFAR-10 at 8-bit wordlength).
//
// Pipeline (mirrors the paper's methodology on our substrates):
//   1. train a width-scaled VGG (Table I topology) on SynthCIFAR,
//   2. post-training int8 quantization,
//   3. execute every MAC bit-serially on the calibrated behavioural model
//      of the 8-cell 2T-1FeFET row, across 0-85 degC, with and without
//      process-variation noise,
//   4. compare against the digital int8 reference and the subthreshold
//      1FeFET-1R baseline fabric.
//
// Heavy artifacts (trained weights, array calibrations) are cached next
// to the binary so re-runs are fast.
#include <cstdio>
#include <fstream>

#include "cim/energy.hpp"
#include "nn/cim_engine.hpp"
#include "nn/trainer.hpp"
#include "nn/vgg.hpp"
#include "util/table.hpp"

using namespace sfc;

namespace {

constexpr const char* kWeightsPath = "bench_vgg_weights.bin";
constexpr const char* kProposedCal = "bench_cal_proposed.txt";
constexpr const char* kBaselineCal = "bench_cal_baseline.txt";

data::SynthCifarConfig dataset_config() {
  data::SynthCifarConfig cfg;
  cfg.train_per_class = 100;
  cfg.test_per_class = 40;
  cfg.noise_sigma = 0.2;
  cfg.color_jitter = 0.2;
  return cfg;
}

}  // namespace

int main() {
  std::printf("== Sec. IV-B: VGG accuracy on the 2T-1FeFET CiM fabric ==\n\n");

  const auto dcfg = dataset_config();
  const data::Dataset train = data::make_synth_cifar_train(dcfg);
  const data::Dataset test = data::make_synth_cifar_test(dcfg);
  std::printf("SynthCIFAR: %zu train / %zu test images (CIFAR-10 stand-in, "
              "see DESIGN.md)\n", train.size(), test.size());

  // --- 1. train (or load) the width-scaled VGG ---------------------------
  // Dropout is disabled for the width-scaled net: the paper's 0.3-0.5
  // schedule is sized for the 35M-parameter original; at 1/8 width it
  // starves training (see EXPERIMENTS.md).
  nn::VggConfig vcfg = nn::VggConfig::reduced(0.125);
  vcfg.with_dropout = false;
  nn::Sequential net = nn::build_vgg(vcfg);
  bool loaded = false;
  {
    std::ifstream probe(kWeightsPath);
    if (probe) {
      try {
        net.load_weights(kWeightsPath);
        loaded = true;
        std::printf("loaded cached weights from %s\n", kWeightsPath);
      } catch (const std::exception&) {
        loaded = false;
      }
    }
  }
  if (!loaded) {
    std::printf("training VGG(1/8 width) with Adam for 8 epochs...\n");
    nn::TrainConfig tcfg;
    tcfg.epochs = 8;
    tcfg.batch_size = 16;
    tcfg.optimizer = nn::Optimizer::kAdam;
    tcfg.learning_rate = 1e-3;
    tcfg.lr_decay = 0.9;
    tcfg.verbose = true;
    nn::Trainer trainer(net, tcfg);
    trainer.fit(train);
    net.save_weights(kWeightsPath);
  }
  const double float_acc = nn::Trainer::evaluate(net, test);

  // --- 2. quantize --------------------------------------------------------
  const nn::QuantizedNetwork qnet =
      nn::QuantizedNetwork::from_model(net, train, 24);
  nn::IdealDotEngine ideal;
  const int eval_images = 150;
  const double int8_acc = qnet.evaluate(test, ideal, eval_images);

  // --- 3. calibrate the fabrics -------------------------------------------
  const std::vector<double> temps = {0.0, 27.0, 55.0, 85.0};
  cim::MonteCarloConfig variation;
  variation.runs = 40;
  variation.sigma_vt_fefet = 0.054;
  const cim::BehavioralArrayModel proposed =
      cim::BehavioralArrayModel::calibrate_cached(
          cim::ArrayConfig::proposed_2t1fefet(), temps, kProposedCal,
          &variation);
  const cim::BehavioralArrayModel baseline =
      cim::BehavioralArrayModel::calibrate_cached(
          cim::ArrayConfig::baseline_1r_subthreshold(), temps, kBaselineCal);

  // --- 4. evaluate across temperature -------------------------------------
  util::Table table({"fabric", "T [degC]", "noise", "accuracy",
                     "row error rate"});
  table.add_row({"float32 (software)", "-", "-",
                 util::fmt_percent(float_acc).substr(1), "-"});
  table.add_row({"int8 digital", "-", "-",
                 util::fmt_percent(int8_acc).substr(1), "-"});

  double proposed_room_acc = 0.0;
  for (double t : temps) {
    nn::CimDotEngine::Options opts;
    opts.temperature_c = t;
    nn::CimDotEngine engine(proposed, opts);
    const double acc = qnet.evaluate(test, engine, eval_images);
    if (t == 27.0) proposed_room_acc = acc;
    const double err_rate =
        engine.row_ops() > 0
            ? static_cast<double>(engine.row_errors()) /
                  static_cast<double>(engine.row_ops())
            : 0.0;
    table.add_row({"2T-1FeFET (proposed)", util::fmt(t, 3), "no",
                   util::fmt_percent(acc).substr(1),
                   util::fmt(err_rate * 100.0, 3) + "%"});
  }
  {
    // Monte Carlo noise at room temperature (the paper's accuracy is a MC
    // average).
    nn::CimDotEngine::Options opts;
    opts.temperature_c = 27.0;
    opts.with_variation_noise = true;
    nn::CimDotEngine engine(proposed, opts);
    // The per-row noise draw bypasses the popcount fast path, so this
    // pass is ~50x slower per image; a smaller split suffices.
    const double acc = qnet.evaluate(test, engine, 60);
    table.add_row({"2T-1FeFET (proposed)", "27", "sigma=54mV",
                   util::fmt_percent(acc).substr(1), "-"});
  }
  for (double t : {0.0, 85.0}) {
    nn::CimDotEngine::Options opts;
    opts.temperature_c = t;
    nn::CimDotEngine engine(baseline, opts);
    const double acc = qnet.evaluate(test, engine, /*max_images=*/60);
    const double err_rate =
        engine.row_ops() > 0
            ? static_cast<double>(engine.row_errors()) /
                  static_cast<double>(engine.row_ops())
            : 0.0;
    table.add_row({"1FeFET-1R subthr. (baseline)", util::fmt(t, 3), "no",
                   util::fmt_percent(acc).substr(1),
                   util::fmt(err_rate * 100.0, 3) + "%"});
  }
  std::printf("\n%s\n", table.render().c_str());

  // --- energy per inference ----------------------------------------------
  const cim::EnergySummary energy =
      cim::measure_energy(cim::ArrayConfig::proposed_2t1fefet(), 27.0);
  nn::CimDotEngine::Options opts;
  nn::CimDotEngine counter(proposed, opts);
  qnet.forward(test.images[0], counter);
  // Each row op is one 8-cell MAC = 9 paper-ops.
  const double e_inference = static_cast<double>(counter.row_ops()) * 9.0 *
                             energy.mean_energy_per_op;
  std::printf(
      "energy: %.3f fJ/op -> %.2f nJ per inference over %lld row MACs\n"
      "        (paper: 3.14 fJ/op, 85.08 nJ/inference on full-width VGG)\n\n",
      energy.mean_energy_per_op * 1e15, e_inference * 1e9,
      static_cast<long long>(counter.row_ops()));

  std::printf(
      "paper vs measured:\n"
      "  accuracy on proposed fabric (27C): %.2f%%  (paper 89.45%% on "
      "CIFAR-10; different dataset, so compare the *drop* vs software)\n"
      "  accuracy drop vs int8 digital: %+.2f pts  (paper: lossless at "
      "room temperature)\n"
      "  temperature-stable 0-85 degC: %s\n",
      proposed_room_acc * 100.0, (proposed_room_acc - int8_acc) * 100.0,
      "see table (row error rate stays 0)");

  // Cache the headline numbers for table2_comparison.
  std::ofstream summary("bench_accuracy_summary.txt");
  summary << proposed_room_acc << ' ' << e_inference << '\n';
  return 0;
}
