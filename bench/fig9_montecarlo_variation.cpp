// Fig. 9 reproduction: impact of process variation (100 Monte Carlo runs,
// sigma_VT = 54 mV, 27 degC) on the CiM output, as an error histogram.
// Paper: highest error ~25%; below 10% with 4 cells per row.
//
// --threads N fans the independent runs out over N worker threads
// (N = 0 uses all hardware threads); the samples are bit-identical to a
// serial run for any N.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cim/montecarlo.hpp"
#include "trace/cli.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/stats.hpp"

using namespace sfc;
using namespace sfc::cim;

int main(int argc, char** argv) {
  trace::install_cli_observability(&argc, argv);
  MonteCarloConfig mc;
  mc.runs = 100;
  mc.sigma_vt_fefet = 0.054;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      mc.exec.threads = std::atoi(argv[++i]);
    } else if (arg.rfind("--threads=", 0) == 0) {
      mc.exec.threads = std::atoi(arg.c_str() + 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--threads N] [--trace OUT.json] "
                   "[--metrics OUT.json]\n",
                   argv[0]);
      return 1;
    }
  }

  std::printf(
      "== Fig. 9: Monte Carlo process variation (100 runs, sigma=54 mV, "
      "27 degC) ==\n\n");

  const MonteCarloResult r8 =
      run_montecarlo(ArrayConfig::proposed_2t1fefet(), mc);
  std::printf(
      "fan-out: %d thread(s), %zu runs, wall %.1f ms (task time %.1f ms, "
      "effective concurrency %.2fx)\n\n",
      r8.job.threads_used, r8.job.tasks, r8.job.wall_ms,
      r8.job.task_ms_total(), r8.job.speedup());
  const auto errors = r8.errors();
  util::Histogram hist(0.0, 30.0, 15);
  hist.add_all(errors);
  std::printf("error histogram (%% of full-scale output, %zu samples):\n%s\n",
              errors.size(), hist.ascii(48).c_str());

  util::CsvWriter csv("bench_fig9_mc.csv",
                      {"run", "mac", "v_acc", "error_percent"});
  for (const auto& s : r8.samples) {
    csv.row({static_cast<double>(s.run), static_cast<double>(s.mac), s.v_acc,
             s.error_percent});
  }

  ArrayConfig cfg4 = ArrayConfig::proposed_2t1fefet();
  cfg4.cells_per_row = 4;
  const MonteCarloResult r4 = run_montecarlo(cfg4, mc);

  std::printf(
      "8 cells/row: max error %5.1f%% of full scale (mean %4.1f%%, p95 "
      "%4.1f%%); worst %4.2f level spacings   (paper: max ~25%%)\n"
      "4 cells/row: max error %5.1f%% of full scale; worst %4.2f level "
      "spacings   (paper: below 10%%, comparable to 1FeFET-1R)\n"
      "shape checks:\n"
      "  max error within ~2x of paper's 25%%: %s\n"
      "  4-cell row more robust per level spacing (the ADC-relevant "
      "normalization): %s\n",
      r8.max_error_percent, r8.mean_error_percent,
      util::percentile(errors, 95.0), r8.max_error_levels,
      r4.max_error_percent, r4.max_error_levels,
      (r8.max_error_percent > 5.0 && r8.max_error_percent < 50.0) ? "yes"
                                                                  : "NO",
      r4.max_error_levels <= r8.max_error_levels ? "yes" : "NO");
  return 0;
}
