// Counter-based RNG stream splitting for parallel jobs.
//
// Every task of a fan-out derives its private random stream from
// (job seed, task index) — never from thread identity or submission
// order — so a job produces bit-identical random draws at any thread
// count and under any scheduling. This is the determinism keystone of
// sfc::exec: Monte Carlo run k always sees stream_seed(seed, k) whether
// it executes on 1 thread or 64.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace sfc::exec {

/// Seed of task `index`'s private stream, mixed from the job seed with a
/// splitmix64-style finalizer. Distinct indices give statistically
/// independent streams; the map is pure, so it can be evaluated from any
/// thread in any order.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index);

/// Ready-to-use RNG for task `index` of a job.
util::Rng stream_rng(std::uint64_t seed, std::uint64_t index);

}  // namespace sfc::exec
