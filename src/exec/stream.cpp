#include "exec/stream.hpp"

namespace sfc::exec {
namespace {

/// splitmix64 finalizer: a full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t index) {
  // Two mix rounds over (seed, index) with distinct odd constants; a
  // single round would leave low-entropy (seed, small index) pairs too
  // correlated for Box-Muller pair consumption downstream.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = mix64(z);
  z = mix64(z ^ (index * 0xda942042e4dd58b5ULL));
  return z;
}

util::Rng stream_rng(std::uint64_t seed, std::uint64_t index) {
  return util::Rng(stream_seed(seed, index));
}

}  // namespace sfc::exec
