#include "exec/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "trace/trace.hpp"

namespace sfc::exec {

ThreadPool::ThreadPool(int threads) {
  const int count = std::max(1, threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

int ThreadPool::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool: submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  SFC_TRACE_GAUGE_ADD("exec.pool.queue_depth", 1);
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stopping_ set and nothing left: drain complete.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    SFC_TRACE_GAUGE_ADD("exec.pool.queue_depth", -1);
#if SFC_TRACE_ENABLED
    {
      // Per-worker busy time, attributed to the shared pool counter (the
      // per-task split already lives in JobReport::task_ms).
      const auto t0 = std::chrono::steady_clock::now();
      task();
      const auto us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      SFC_TRACE_COUNT("exec.pool.busy_us", static_cast<std::uint64_t>(us));
      SFC_TRACE_COUNT("exec.pool.tasks", 1);
    }
#else
    task();
#endif
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace sfc::exec
