// Fixed-size thread pool with one shared FIFO queue (no work stealing:
// workers only pull from the front of the common queue, which keeps the
// scheduling model trivial to reason about — determinism never depends on
// it anyway, because sfc::exec tasks derive everything from their index).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfc::exec {

class ThreadPool {
 public:
  /// Spawns exactly `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Throws std::runtime_error after shutdown().
  void submit(std::function<void()> task);

  /// Block until the queue is empty and no task is running.
  void wait_idle();

  /// Stop accepting work, finish the queued tasks, join the workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  /// Hardware concurrency with a sane floor of 1.
  static int hardware_threads();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< signalled on submit/shutdown
  std::condition_variable idle_cv_;  ///< signalled when work drains
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  ///< tasks currently executing
  bool stopping_ = false;
};

}  // namespace sfc::exec
