#include "exec/parallel.hpp"

#include <algorithm>

namespace sfc::exec {

int ExecPolicy::resolved_threads(std::size_t n) const {
  int t = threads == 0 ? ThreadPool::hardware_threads() : threads;
  t = std::max(1, t);
  if (n > 0) {
    t = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(t), n));
  }
  return t;
}

std::size_t ExecPolicy::resolved_chunk(std::size_t n, int threads_used) const {
  if (chunk > 0) return static_cast<std::size_t>(chunk);
  const std::size_t workers = static_cast<std::size_t>(std::max(1, threads_used));
  return std::max<std::size_t>(1, n / (workers * 4));
}

double JobReport::task_ms_total() const {
  double total = 0.0;
  for (double t : task_ms) total += t;
  return total;
}

double JobReport::task_ms_max() const {
  double worst = 0.0;
  for (double t : task_ms) worst = std::max(worst, t);
  return worst;
}

double JobReport::speedup() const {
  return wall_ms > 0.0 ? task_ms_total() / wall_ms : 1.0;
}

}  // namespace sfc::exec
