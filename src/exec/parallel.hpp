// Unified fan-out API: ExecPolicy (how many threads, what chunking),
// parallel_for / parallel_map over an index range, and JobReport (per-task
// wall time + convergence counts).
//
// Determinism contract
// --------------------
// Tasks receive only their index. As long as a task's result is a pure
// function of that index (all randomness routed through
// exec::stream_seed(seed, index), all outputs written to the task's own
// slot), a job is bit-identical at any thread count — threads only decide
// wall-clock time, never results. Every sfc user of this API (Monte
// Carlo, sweeps, batched NN rows) is structured that way.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "trace/trace.hpp"

namespace sfc::exec {

/// How a fan-out executes. The default is serial, so callers opt in to
/// parallelism explicitly and single-threaded behaviour stays the
/// reference.
struct ExecPolicy {
  /// Worker threads: 1 = run inline on the caller (serial), 0 = one per
  /// hardware thread, n > 1 = exactly n workers.
  int threads = 1;
  /// Indices dispensed to a worker per grab; 0 = automatic (targets ~4
  /// chunks per worker to amortize the atomic fetch without starving the
  /// tail).
  int chunk = 0;

  static ExecPolicy serial() { return {}; }
  static ExecPolicy max_parallel() { return {0, 0}; }

  /// Threads a job over `n` tasks will actually use.
  int resolved_threads(std::size_t n) const;
  /// Chunk size a job over `n` tasks with `threads_used` workers uses.
  std::size_t resolved_chunk(std::size_t n, int threads_used) const;
};

/// What a fan-out did: wall time of the whole job, wall time of every
/// task, and how many tasks reported success ("converged") vs failure.
struct JobReport {
  int threads_used = 1;
  std::size_t tasks = 0;
  double wall_ms = 0.0;          ///< whole-job wall-clock time
  std::vector<double> task_ms;   ///< per-task wall time, indexed by task
  std::size_t converged = 0;     ///< tasks that completed / returned true
  std::size_t failed = 0;        ///< tasks that returned false

  /// Sum of per-task times — the serial-equivalent work.
  double task_ms_total() const;
  /// Longest single task — the critical path of one chunk.
  double task_ms_max() const;
  /// task_ms_total / wall_ms: effective parallelism actually achieved.
  double speedup() const;
};

namespace detail {

using Clock = std::chrono::steady_clock;

inline double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace detail

/// Run fn(i) for every i in [0, n) under `policy` and report timings.
///
/// `fn` may return void (completion counts as converged) or bool (true is
/// tallied as converged, false as failed — e.g. a Newton solve outcome).
/// Indices are dispensed in chunks from a shared atomic counter; workers
/// never learn their thread id. The first exception thrown by any task
/// aborts the dispensing and is rethrown on the caller after all workers
/// drain.
template <typename Fn>
JobReport parallel_for(const ExecPolicy& policy, std::size_t n, Fn&& fn) {
  SFC_TRACE_SPAN("exec.parallel_for");
  JobReport report;
  report.tasks = n;
  report.threads_used = policy.resolved_threads(n);
  if (n == 0) return report;
  report.task_ms.assign(n, 0.0);

  const std::size_t chunk = policy.resolved_chunk(n, report.threads_used);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> converged{0};
  std::atomic<std::size_t> failed{0};
  std::atomic<bool> aborted{false};
  std::mutex error_mutex;
  std::exception_ptr error;

  auto drain = [&]() {
    while (!aborted.load(std::memory_order_relaxed)) {
      const std::size_t base =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (base >= n) return;
      const std::size_t end = base + chunk < n ? base + chunk : n;
      for (std::size_t i = base; i < end; ++i) {
        const auto t0 = detail::Clock::now();
        try {
          if constexpr (std::is_convertible_v<
                            std::invoke_result_t<Fn&, std::size_t>, bool>) {
            if (fn(i)) {
              converged.fetch_add(1, std::memory_order_relaxed);
            } else {
              failed.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            fn(i);
            converged.fetch_add(1, std::memory_order_relaxed);
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
          aborted.store(true, std::memory_order_relaxed);
          return;
        }
        report.task_ms[i] = detail::ms_since(t0);
      }
    }
  };

  const auto job_t0 = detail::Clock::now();
  if (report.threads_used <= 1) {
    drain();
  } else {
    ThreadPool pool(report.threads_used);
    for (int w = 0; w < report.threads_used; ++w) pool.submit(drain);
    pool.shutdown();  // drains the queue, joins the workers
  }
  report.wall_ms = detail::ms_since(job_t0);
  report.converged = converged.load();
  report.failed = failed.load();
  SFC_TRACE_COUNT("exec.jobs", 1);
  SFC_TRACE_COUNT("exec.tasks.converged", report.converged);
  SFC_TRACE_COUNT("exec.tasks.failed", report.failed);
  if (error) std::rethrow_exception(error);
  return report;
}

/// parallel_for that collects fn(i) into a vector (slot i belongs to task
/// i, so the output order is the index order regardless of scheduling).
/// The result type must be default-constructible.
template <typename Fn>
auto parallel_map(const ExecPolicy& policy, std::size_t n, Fn&& fn,
                  JobReport* report_out = nullptr)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using T = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<T> results(n);
  JobReport report =
      parallel_for(policy, n, [&](std::size_t i) { results[i] = fn(i); });
  if (report_out) *report_out = std::move(report);
  return results;
}

}  // namespace sfc::exec
