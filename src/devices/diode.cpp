#include "devices/diode.hpp"

#include <cmath>

#include "util/units.hpp"

namespace sfc::devices {
namespace {
// Exponent clamp: beyond this the linearization continues the exponential
// tangentially, keeping currents finite.
constexpr double kMaxExponent = 60.0;

/// SPICE-style saturation-current temperature law:
///   Is(T) = Is * (T/Tnom)^(XTI/N) * exp( (Eg/N) * (1/VTnom - 1/VT) )
double saturation_current(const DiodeParams& p, double temperature_c) {
  const double t = sfc::util::celsius_to_kelvin(temperature_c);
  const double tnom = sfc::util::celsius_to_kelvin(p.t_nominal_c);
  const double vt = sfc::util::thermal_voltage(t);
  const double vtnom = sfc::util::thermal_voltage(tnom);
  const double ratio_term =
      std::pow(t / tnom, p.xti / p.emission);
  const double activation =
      std::exp(p.eg / p.emission * (1.0 / vtnom - 1.0 / vt));
  return p.i_sat * ratio_term * activation;
}

}  // namespace

Diode::Diode(std::string name, sfc::spice::NodeId anode,
             sfc::spice::NodeId cathode, DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), p_(params) {}

double Diode::current(double v, double temperature_c) const {
  const double t_kelvin = sfc::util::celsius_to_kelvin(temperature_c);
  const double vt = sfc::util::thermal_voltage(t_kelvin) * p_.emission;
  const double isat = saturation_current(p_, temperature_c);
  const double x = v / vt;
  if (x > kMaxExponent) {
    // Tangential continuation past the clamp.
    const double i_clamp = isat * (std::exp(kMaxExponent) - 1.0);
    const double g_clamp = isat * std::exp(kMaxExponent) / vt;
    return i_clamp + g_clamp * (v - kMaxExponent * vt);
  }
  return isat * std::expm1(x);
}

void Diode::stamp(const sfc::spice::SimContext& ctx,
                  sfc::spice::Stamper& s) {
  const double v = vdiff(s, anode_, cathode_);
  if (ctx.temperature_c != cache_temp_c_) {
    const double t_kelvin = sfc::util::celsius_to_kelvin(ctx.temperature_c);
    cache_vt_ = sfc::util::thermal_voltage(t_kelvin) * p_.emission;
    cache_isat_ = saturation_current(p_, ctx.temperature_c);
    cache_temp_c_ = ctx.temperature_c;
  }
  const double vt = cache_vt_;
  const double isat = cache_isat_;

  double i, g;
  const double x = v / vt;
  if (x > kMaxExponent) {
    const double e = std::exp(kMaxExponent);
    g = isat * e / vt;
    i = isat * (e - 1.0) + g * (v - kMaxExponent * vt);
  } else {
    i = isat * std::expm1(x);
    g = isat * std::exp(std::max(x, -kMaxExponent)) / vt;
  }
  g = std::max(g, 1e-15);

  s.conductance(anode_, cathode_, g);
  s.current(anode_, cathode_, i - g * v);
}

void Diode::stamp_ac(const sfc::spice::SimContext& ctx,
                     sfc::spice::AcStamper& s) {
  // Small-signal conductance at the DC bias point.
  const double v = s.dc_v(anode_) - s.dc_v(cathode_);
  const double t_kelvin = sfc::util::celsius_to_kelvin(ctx.temperature_c);
  const double vt = sfc::util::thermal_voltage(t_kelvin) * p_.emission;
  const double h = vt * 1e-3;
  const double g = std::max(
      (current(v + h, ctx.temperature_c) - current(v - h, ctx.temperature_c)) /
          (2.0 * h),
      1e-15);
  s.conductance(anode_, cathode_, g);
}

}  // namespace sfc::devices
