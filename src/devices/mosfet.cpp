#include "devices/mosfet.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace sfc::devices {
namespace {

/// Numerically safe softplus ln(1 + e^x).
double softplus(double x) {
  if (x > 40.0) return x;
  if (x < -40.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

/// Logistic sigma(x) = d softplus / dx.
double logistic(double x) {
  if (x > 40.0) return 1.0;
  if (x < -40.0) return std::exp(x);
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

double MosfetParams::vth(double temperature_c) const {
  return vth0 + tc_vth * (temperature_c - t_nominal_c);
}

double MosfetParams::specific_current(double temperature_c) const {
  const double t_kelvin = util::celsius_to_kelvin(temperature_c);
  const double t_nom_kelvin = util::celsius_to_kelvin(t_nominal_c);
  const double vt = util::thermal_voltage(t_kelvin);
  const double mu = mu0 * std::pow(t_kelvin / t_nom_kelvin, -mu_exponent);
  return 2.0 * n_factor * mu * cox * (w / l) * vt * vt;
}

MosfetParams MosfetParams::finfet14_nmos(double w_over_l) {
  MosfetParams p;
  p.type = MosType::kNmos;
  p.l = 14e-9;
  p.w = w_over_l * p.l;
  return p;
}

MosfetParams MosfetParams::finfet14_pmos(double w_over_l) {
  MosfetParams p = finfet14_nmos(w_over_l);
  p.type = MosType::kPmos;
  p.mu0 = 0.016;  // holes are slower
  return p;
}

MosfetTempTerms mosfet_temp_terms(const MosfetParams& p,
                                  double temperature_c) {
  MosfetTempTerms t;
  const double t_kelvin = util::celsius_to_kelvin(temperature_c);
  t.vt = util::thermal_voltage(t_kelvin);
  t.two_n_vt = 2.0 * p.n_factor * t.vt;
  t.vth = p.vth(temperature_c);
  t.i_spec = p.specific_current(temperature_c);
  return t;
}

MosfetEval evaluate_mosfet(const MosfetParams& p, double vg, double vd,
                           double vs, double temperature_c,
                           double vth_extra) {
  return evaluate_mosfet(p, mosfet_temp_terms(p, temperature_c), vg, vd, vs,
                         vth_extra);
}

MosfetEval evaluate_mosfet(const MosfetParams& p, const MosfetTempTerms& t,
                           double vg, double vd, double vs,
                           double vth_extra) {
  // PMOS is evaluated as an NMOS in a mirrored voltage frame and the
  // current/derivative signs are restored at the end.
  const double sign = p.type == MosType::kNmos ? 1.0 : -1.0;
  const double vg_n = sign * vg;
  const double vd_n = sign * vd;
  const double vs_n = sign * vs;

  const double two_n_vt = t.two_n_vt;
  const double vth = t.vth + vth_extra;
  const double i_spec = t.i_spec;

  const double xf = (vg_n - vs_n - vth) / two_n_vt;
  const double xr = (vg_n - vd_n - vth) / two_n_vt;
  const double ff = softplus(xf);
  const double fr = softplus(xr);
  const double sf = logistic(xf);
  const double sr = logistic(xr);

  const double vds = vd_n - vs_n;
  // Channel-length modulation applied symmetrically so the model stays
  // continuous at vds = 0 (uses |vds|).
  const double clm = 1.0 + p.lambda * std::fabs(vds);
  const double dclm_dvds = (vds >= 0.0 ? p.lambda : -p.lambda);

  const double core = ff * ff - fr * fr;
  const double id = i_spec * core * clm;

  // Partial derivatives in the NMOS frame.
  const double dcore_dvg = (2.0 * ff * sf - 2.0 * fr * sr) / two_n_vt;
  const double dcore_dvd = (2.0 * fr * sr) / two_n_vt;
  // Translation invariance: dvs = -(dvg + dvd) for the core; the CLM term
  // depends only on vds = vd - vs.
  const double gm_g_n = i_spec * clm * dcore_dvg;
  const double gm_d_n = i_spec * (clm * dcore_dvd + core * dclm_dvds);
  const double gm_s_n = -(gm_g_n + gm_d_n);

  MosfetEval ev;
  // Mirrored frame: Id_p(v) = -Id_n(-v); dId_p/dv = +dId_n/dv'(-v).
  ev.id = sign * id;
  ev.gm_g = gm_g_n;
  ev.gm_d = gm_d_n;
  ev.gm_s = gm_s_n;
  return ev;
}

Mosfet::Mosfet(std::string name, sfc::spice::NodeId drain,
               sfc::spice::NodeId gate, sfc::spice::NodeId source,
               MosfetParams params)
    : Device(std::move(name)),
      drain_(drain),
      gate_(gate),
      source_(source),
      params_(params) {
  if (params_.w <= 0.0 || params_.l <= 0.0) {
    throw std::invalid_argument("Mosfet: non-positive geometry");
  }
}

double Mosfet::drain_current(double vg, double vd, double vs,
                             double temperature_c) const {
  return evaluate_mosfet(params_, vg, vd, vs, temperature_c,
                         vth_shift_ + dynamic_vth_offset(temperature_c))
      .id;
}

void Mosfet::stamp(const sfc::spice::SimContext& ctx,
                   sfc::spice::Stamper& s) {
  const double vg = s.v(gate_);
  const double vd = s.v(drain_);
  const double vs = s.v(source_);
  const double vth_extra = vth_shift_ + dynamic_vth_offset(ctx.temperature_c);
  const MosfetEval ev = evaluate_mosfet(params_, temp_terms(ctx.temperature_c),
                                        vg, vd, vs, vth_extra);

  // Linearized drain current (flows drain -> source):
  //   i = id + gm_g*(Vg - vg) + gm_d*(Vd - vd) + gm_s*(Vs - vs)
  const int rd = s.node_row(drain_);
  const int rg = s.node_row(gate_);
  const int rs = s.node_row(source_);
  s.add_matrix(rd, rg, ev.gm_g);
  s.add_matrix(rd, rd, ev.gm_d);
  s.add_matrix(rd, rs, ev.gm_s);
  s.add_matrix(rs, rg, -ev.gm_g);
  s.add_matrix(rs, rd, -ev.gm_d);
  s.add_matrix(rs, rs, -ev.gm_s);
  const double ieq = ev.id - ev.gm_g * vg - ev.gm_d * vd - ev.gm_s * vs;
  s.add_rhs(rd, -ieq);
  s.add_rhs(rs, ieq);

  // Tiny ohmic floor between drain and source aids convergence when the
  // device is deeply off.
  s.conductance(drain_, source_, params_.i_leak_floor);
}

void Mosfet::stamp_ac(const sfc::spice::SimContext& ctx,
                      sfc::spice::AcStamper& s) {
  // Small-signal model at the DC bias: gm (gate), gds (drain), gms
  // (source) as a three-way VCCS exactly mirroring the DC linearization.
  const double vg = s.dc_v(gate_);
  const double vd = s.dc_v(drain_);
  const double vs = s.dc_v(source_);
  const double vth_extra = vth_shift_ + dynamic_vth_offset(ctx.temperature_c);
  const MosfetEval ev =
      evaluate_mosfet(params_, vg, vd, vs, ctx.temperature_c, vth_extra);
  const int rd = s.node_row(drain_);
  const int rg = s.node_row(gate_);
  const int rs = s.node_row(source_);
  s.add_matrix(rd, rg, ev.gm_g);
  s.add_matrix(rd, rd, ev.gm_d);
  s.add_matrix(rd, rs, ev.gm_s);
  s.add_matrix(rs, rg, -ev.gm_g);
  s.add_matrix(rs, rd, -ev.gm_d);
  s.add_matrix(rs, rs, -ev.gm_s);
  s.conductance(drain_, source_, params_.i_leak_floor);
}

}  // namespace sfc::devices
