// EKV-style compact MOSFET model, smooth and charge-sheet-consistent from
// deep subthreshold through saturation, with first-order temperature
// physics:
//   * thermal voltage kT/q,
//   * threshold shift  VTH(T) = VTH0 + tc_vth * (T - T0),
//   * mobility        mu(T)  = mu0 * (T/T0)^(-mu_exponent).
//
// This is the reproduction's stand-in for the Intel 14 nm FinFET PDK model
// the paper pairs with the Preisach FeFET model (see DESIGN.md). The model
// is symmetric in drain/source (forward minus reverse EKV currents), which
// matters because the 2T-1FeFET feedback cell swings its internal nodes.
#pragma once

#include <limits>

#include "spice/device.hpp"

namespace sfc::devices {

enum class MosType { kNmos, kPmos };

struct MosfetParams {
  MosType type = MosType::kNmos;
  double w = 100e-9;            ///< channel width [m]
  double l = 14e-9;             ///< channel length [m]
  double vth0 = 0.35;           ///< threshold voltage at t_nominal_c [V]
  double n_factor = 1.25;       ///< subthreshold slope factor
  double mu0 = 0.040;           ///< low-field mobility at t_nominal_c [m^2/Vs]
  double cox = 0.025;           ///< gate oxide capacitance [F/m^2]
  double lambda = 0.04;         ///< channel-length modulation [1/V]
  double tc_vth = -0.9e-3;      ///< dVTH/dT [V/K]
  double mu_exponent = 1.5;     ///< mobility power-law exponent
  double t_nominal_c = 27.0;    ///< parameter reference temperature [degC]
  double i_leak_floor = 1e-16;  ///< ohmic leakage floor conductance scale

  /// Specific current 2*n*mu*Cox*(W/L)*VT^2 at temperature T [A].
  double specific_current(double temperature_c) const;
  double vth(double temperature_c) const;

  /// Reference-like parameter set for the reproduction's "14 nm FinFET".
  static MosfetParams finfet14_nmos(double w_over_l = 4.0);
  static MosfetParams finfet14_pmos(double w_over_l = 4.0);
};

/// Operating-point evaluation shared by the circuit device and unit tests.
struct MosfetEval {
  double id = 0.0;   ///< drain current, positive d->s for NMOS [A]
  double gm_g = 0.0; ///< dId/dVg
  double gm_d = 0.0; ///< dId/dVd
  double gm_s = 0.0; ///< dId/dVs
};

/// Temperature-dependent model terms hoisted out of the per-stamp
/// evaluation. Computing them needs pow/exp, and the engine re-evaluates
/// the model every Newton iteration at an unchanged temperature, so the
/// circuit device memoizes these per temperature (a pure function of
/// (params, T) — caching is bitwise-transparent).
struct MosfetTempTerms {
  double vt = 0.0;        ///< thermal voltage kT/q [V]
  double two_n_vt = 0.0;  ///< 2*n*VT subthreshold denominator [V]
  double vth = 0.0;       ///< VTH(T) before per-device shifts [V]
  double i_spec = 0.0;    ///< specific current at T [A]
};
MosfetTempTerms mosfet_temp_terms(const MosfetParams& p, double temperature_c);

/// Evaluate the model at terminal voltages (vg, vd, vs) and temperature.
/// `vth_extra` shifts the threshold (used for FeFET polarization and for
/// Monte Carlo process variation).
MosfetEval evaluate_mosfet(const MosfetParams& p, double vg, double vd,
                           double vs, double temperature_c,
                           double vth_extra = 0.0);

/// Same evaluation with precomputed temperature terms (the hot path).
MosfetEval evaluate_mosfet(const MosfetParams& p, const MosfetTempTerms& t,
                           double vg, double vd, double vs,
                           double vth_extra = 0.0);

/// Three-terminal MOSFET circuit device (bulk tied to source).
class Mosfet : public sfc::spice::Device {
 public:
  Mosfet(std::string name, sfc::spice::NodeId drain, sfc::spice::NodeId gate,
         sfc::spice::NodeId source, MosfetParams params);

  /// The stamp linearizes the channel current around the terminal
  /// voltages of the Newton iterate: intrinsically nonlinear (this is the
  /// Device default, restated here because the stamp-plan engine depends
  /// on it).
  bool is_linear() const override { return false; }
  void stamp(const sfc::spice::SimContext& ctx,
             sfc::spice::Stamper& s) override;
  void stamp_ac(const sfc::spice::SimContext& ctx,
                sfc::spice::AcStamper& s) override;
  std::vector<sfc::spice::NodeId> terminals() const override {
    return {drain_, gate_, source_};
  }

  std::unique_ptr<sfc::spice::Device> clone() const override {
    return std::unique_ptr<sfc::spice::Device>(new Mosfet(*this));
  }

  const MosfetParams& params() const { return params_; }
  /// Mutable parameter access invalidates the cached temperature terms;
  /// don't hold the reference across stamping.
  MosfetParams& mutable_params() {
    terms_temp_c_ = std::numeric_limits<double>::quiet_NaN();
    return params_;
  }

  /// Additional threshold shift (process variation injection).
  void set_vth_shift(double volts) { vth_shift_ = volts; }
  double vth_shift() const { return vth_shift_; }

  /// Drain current at explicit terminal voltages (probe helper).
  double drain_current(double vg, double vd, double vs,
                       double temperature_c) const;

 protected:
  /// Threshold shift applied on top of params + vth_shift_ (FeFET
  /// polarization hook; returns 0 for a plain MOSFET).
  virtual double dynamic_vth_offset(double temperature_c) const {
    (void)temperature_c;
    return 0.0;
  }

 private:
  /// Memoized mosfet_temp_terms(params_, temperature_c). Safe for
  /// parallel sweeps because workers solve cloned circuits, never a
  /// shared device instance.
  const MosfetTempTerms& temp_terms(double temperature_c) const {
    if (temperature_c != terms_temp_c_) {
      terms_ = mosfet_temp_terms(params_, temperature_c);
      terms_temp_c_ = temperature_c;
    }
    return terms_;
  }

  sfc::spice::NodeId drain_, gate_, source_;
  MosfetParams params_;
  double vth_shift_ = 0.0;
  mutable double terms_temp_c_ = std::numeric_limits<double>::quiet_NaN();
  mutable MosfetTempTerms terms_;
};

}  // namespace sfc::devices
