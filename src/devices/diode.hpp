// Exponential junction diode with series-resistance-free Shockley model
// and voltage limiting for Newton robustness. Not used by the CiM cells
// themselves, but part of the device library (ESD clamps / rectifier
// examples, netlist completeness).
#pragma once

#include "spice/device.hpp"

namespace sfc::devices {

struct DiodeParams {
  double i_sat = 1e-14;      ///< saturation current at t_nominal_c [A]
  double emission = 1.0;     ///< ideality factor
  double t_nominal_c = 27.0;
  double xti = 3.0;          ///< Is temperature exponent (SPICE XTI)
  double eg = 1.11;          ///< bandgap [eV] for the Is activation term
};

class Diode : public sfc::spice::Device {
 public:
  Diode(std::string name, sfc::spice::NodeId anode,
        sfc::spice::NodeId cathode, DiodeParams params = {});

  /// Exponential I(V): nonlinear (the Device default, restated because
  /// the stamp-plan engine relies on it).
  bool is_linear() const override { return false; }
  void stamp(const sfc::spice::SimContext& ctx,
             sfc::spice::Stamper& s) override;
  void stamp_ac(const sfc::spice::SimContext& ctx,
                sfc::spice::AcStamper& s) override;
  std::vector<sfc::spice::NodeId> terminals() const override {
    return {anode_, cathode_};
  }

  std::unique_ptr<sfc::spice::Device> clone() const override {
    return std::unique_ptr<sfc::spice::Device>(new Diode(*this));
  }

  /// I(V) evaluation for tests.
  double current(double v_anode_cathode, double temperature_c) const;

 private:
  sfc::spice::NodeId anode_, cathode_;
  DiodeParams p_;
  /// Memoized Is(T)/N*VT(T) — the pow/exp temperature law is loop-
  /// invariant across Newton iterations (workers stamp cloned circuits,
  /// so the mutable cache is race-free).
  mutable double cache_temp_c_ = -1e300;
  mutable double cache_vt_ = 0.0;
  mutable double cache_isat_ = 0.0;
};

}  // namespace sfc::devices
