#include "util/rng.hpp"

#include <cassert>
#include <cmath>

namespace sfc::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four xoshiro words from splitmix64 as recommended by the
  // algorithm's authors; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (UINT64_MAX / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double sigma) {
  return mean + sigma * normal();
}

bool Rng::bernoulli(double p_true) {
  return uniform() < p_true;
}

Rng Rng::split() {
  return Rng(next_u64() ^ 0xa0761d6478bd642fULL);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_index(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace sfc::util
