// Fixed-bin histogram with an ASCII renderer, used for the Monte Carlo
// process-variation figure (Fig. 9) and error distribution reports.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace sfc::util {

class Histogram {
 public:
  /// Build `bins` equal-width bins covering [lo, hi]. Values outside the
  /// range are clamped into the first/last bin so no sample is dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const double> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;
  double bin_center(std::size_t bin) const;

  /// Render as rows of "[lo, hi)  count  ####" (bar scaled to `width`).
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sfc::util
