#include "util/plot.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sfc::util {

AsciiPlot::AsciiPlot(std::size_t width, std::size_t height)
    : width_(std::max<std::size_t>(width, 8)),
      height_(std::max<std::size_t>(height, 4)) {}

void AsciiPlot::add_series(const std::string& name, std::span<const double> x,
                           std::span<const double> y, char glyph) {
  assert(x.size() == y.size());
  Series s;
  s.name = name;
  s.x.assign(x.begin(), x.end());
  s.y.assign(y.begin(), y.end());
  s.glyph = glyph;
  series_.push_back(std::move(s));
}

std::string AsciiPlot::render() const {
  if (series_.empty()) return "(empty plot)\n";

  double x_lo = std::numeric_limits<double>::infinity(), x_hi = -x_lo;
  double y_lo = x_lo, y_hi = -x_lo;
  for (const auto& s : series_) {
    for (double v : s.x) {
      x_lo = std::min(x_lo, v);
      x_hi = std::max(x_hi, v);
    }
    for (double v : s.y) {
      y_lo = std::min(y_lo, v);
      y_hi = std::max(y_hi, v);
    }
  }
  if (x_hi == x_lo) x_hi = x_lo + 1.0;
  if (y_hi == y_lo) y_hi = y_lo + 1.0;
  // A touch of head-room so extremes do not sit on the frame.
  const double y_pad = 0.05 * (y_hi - y_lo);
  y_lo -= y_pad;
  y_hi += y_pad;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const auto& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      const double tx = (s.x[i] - x_lo) / (x_hi - x_lo);
      const double ty = (s.y[i] - y_lo) / (y_hi - y_lo);
      auto cx = static_cast<std::size_t>(tx * static_cast<double>(width_ - 1) + 0.5);
      auto cy = static_cast<std::size_t>(ty * static_cast<double>(height_ - 1) + 0.5);
      cx = std::min(cx, width_ - 1);
      cy = std::min(cy, height_ - 1);
      grid[height_ - 1 - cy][cx] = s.glyph;
    }
  }

  char buf[64];
  std::string out;
  for (std::size_t row = 0; row < height_; ++row) {
    if (row == 0) {
      std::snprintf(buf, sizeof(buf), "%10.3g |", y_hi);
    } else if (row == height_ - 1) {
      std::snprintf(buf, sizeof(buf), "%10.3g |", y_lo);
    } else {
      std::snprintf(buf, sizeof(buf), "%10s |", "");
    }
    out += buf;
    out += grid[row];
    out += '\n';
  }
  out += std::string(11, ' ') + '+' + std::string(width_, '-') + '\n';
  std::snprintf(buf, sizeof(buf), "%10s  %-10.3g", "", x_lo);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%*.3g\n",
                static_cast<int>(width_) - 10, x_hi);
  out += buf;
  out += "  legend:";
  for (const auto& s : series_) {
    out += "  ";
    out += s.glyph;
    out += "=" + s.name;
  }
  out += '\n';
  return out;
}

}  // namespace sfc::util
