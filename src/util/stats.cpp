#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sfc::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(s.count);
  double sq = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.count));
  return s;
}

double mean(std::span<const double> values) { return summarize(values).mean; }
double stddev(std::span<const double> values) { return summarize(values).stddev; }
double min_value(std::span<const double> values) { return summarize(values).min; }
double max_value(std::span<const double> values) { return summarize(values).max; }

double percentile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double rms(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sq = 0.0;
  for (double v : values) sq += v * v;
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double probit(double p) {
  assert(p > 0.0 && p < 1.0);
  // Coefficients for Acklam's approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  assert(x.size() == y.size());
  LinearFit fit;
  if (x.size() < 2) return fit;
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  if (sxx == 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  return fit;
}

}  // namespace sfc::util
