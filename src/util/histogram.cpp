#include "util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace sfc::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins > 0);
  assert(hi > lo);
}

void Histogram::add(double value) {
  const double span = hi_ - lo_;
  double t = (value - lo_) / span;
  t = std::clamp(t, 0.0, 1.0);
  auto bin = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) {
  for (double v : values) add(v);
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_low(bin) + bin_high(bin));
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar =
        counts_[b] == 0 ? 0 : std::max<std::size_t>(1, counts_[b] * width / peak);
    std::snprintf(line, sizeof(line), "[%9.4g, %9.4g)  %6zu  ", bin_low(b),
                  bin_high(b), counts_[b]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace sfc::util
