#include "util/interp.hpp"

#include <algorithm>
#include <cassert>

namespace sfc::util {

double lerp(double x, double x0, double y0, double x1, double y1) {
  if (x1 == x0) return 0.5 * (y0 + y1);
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

PiecewiseLinear::PiecewiseLinear(std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i - 1].first < points_[i].first);
  }
}

void PiecewiseLinear::add_point(double x, double y) {
  assert(points_.empty() || points_.back().first < x);
  points_.emplace_back(x, y);
}

double PiecewiseLinear::operator()(double x) const {
  assert(!points_.empty());
  if (x <= points_.front().first) return points_.front().second;
  if (x >= points_.back().first) return points_.back().second;
  // Binary search for the segment containing x.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double value, const auto& p) { return value < p.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  return lerp(x, lo.first, lo.second, hi.first, hi.second);
}

double PiecewiseLinear::min_x() const {
  assert(!points_.empty());
  return points_.front().first;
}

double PiecewiseLinear::max_x() const {
  assert(!points_.empty());
  return points_.back().first;
}

double PiecewiseLinear::inverse(double y) const {
  assert(!points_.empty());
  if (y <= points_.front().second) return points_.front().first;
  if (y >= points_.back().second) return points_.back().first;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    assert(points_[i].second >= points_[i - 1].second && "inverse() needs nondecreasing y");
    if (y <= points_[i].second) {
      return lerp(y, points_[i - 1].second, points_[i - 1].first,
                  points_[i].second, points_[i].first);
    }
  }
  return points_.back().first;
}

}  // namespace sfc::util
