#include "util/csv.hpp"

#include <cassert>
#include <cstdio>
#include <stdexcept>

namespace sfc::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), columns_(header.size()), out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row_text(header);
}

void CsvWriter::row(const std::vector<double>& values) {
  assert(values.size() == columns_);
  char buf[64];
  std::string line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line += ',';
    std::snprintf(buf, sizeof(buf), "%.9g", values[i]);
    line += buf;
  }
  out_ << line << '\n';
}

void CsvWriter::row_text(const std::vector<std::string>& cells) {
  assert(cells.size() == columns_);
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += csv_escape(cells[i]);
  }
  out_ << line << '\n';
}

}  // namespace sfc::util
