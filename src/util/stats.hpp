// Descriptive statistics used by the experiment harnesses (MAC output
// ranges, Monte Carlo summaries, accuracy aggregation).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sfc::util {

/// Summary of a sample: count, extrema, mean, population stddev.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;

  /// max - min.
  double range() const { return max - min; }
};

/// Compute a Summary over a sample. Empty input yields a zeroed Summary.
Summary summarize(std::span<const double> values);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Percentile via linear interpolation between order statistics.
/// `q` in [0, 100]. Input need not be sorted.
double percentile(std::span<const double> values, double q);

/// Pearson correlation coefficient of two equally sized samples.
double correlation(std::span<const double> x, std::span<const double> y);

/// Root-mean-square of a sample.
double rms(std::span<const double> values);

/// Linear regression y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |error| < 1.15e-9). Used to place deterministic Gaussian quantiles,
/// e.g. Preisach domain coercive voltages. `p` in (0, 1).
double probit(double p);

}  // namespace sfc::util
