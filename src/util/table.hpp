// ASCII table renderer for the bench harnesses: every reproduced figure
// and table prints its rows in the same aligned style the paper uses.
#pragma once

#include <string>
#include <vector>

namespace sfc::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with `%.*g`.
  void add_row_numeric(const std::vector<double>& values, int precision = 5);

  /// Render with column alignment and +---+ separators.
  std::string render() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double as a short string (`%.{precision}g`).
std::string fmt(double value, int precision = 5);

/// Format as a percentage with sign, e.g. "+12.4%".
std::string fmt_percent(double fraction, int decimals = 1);

}  // namespace sfc::util
