// Deterministic random number generation.
//
// Every stochastic element of the reproduction (Monte Carlo device
// variation, synthetic dataset generation, NN weight init, dropout) draws
// from an sfc::util::Rng seeded explicitly, so all experiments are
// reproducible run-to-run and the benches print identical numbers.
#pragma once

#include <cstdint>
#include <vector>

namespace sfc::util {

/// Small, fast, deterministic PRNG (xoshiro256**). Not for cryptography.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double sigma);

  /// Bernoulli draw.
  bool bernoulli(double p_true);

  /// Derive an independent child stream (for per-instance variation).
  Rng split();

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace sfc::util
