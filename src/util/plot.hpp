// Minimal ASCII line/scatter plot for terminal output of waveforms and
// sweeps (benches and examples; CSVs carry the precise data).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace sfc::util {

class AsciiPlot {
 public:
  AsciiPlot(std::size_t width = 64, std::size_t height = 16);

  /// Add a named series; x and y must be equal length. The glyph labels
  /// the series in the plot and the legend.
  void add_series(const std::string& name, std::span<const double> x,
                  std::span<const double> y, char glyph);

  /// Render the plot with axes and a legend.
  std::string render() const;

 private:
  struct Series {
    std::string name;
    std::vector<double> x, y;
    char glyph;
  };
  std::size_t width_, height_;
  std::vector<Series> series_;
};

}  // namespace sfc::util
