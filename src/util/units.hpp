// Physical constants and unit helpers used across the device and circuit
// models. Everything internal is SI (volts, amperes, seconds, farads,
// kelvin); these helpers exist so that code reads in the units the paper
// uses (nanoseconds, femtojoules, millivolts, degrees Celsius).
#pragma once

namespace sfc::util {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// 0 degC expressed in kelvin.
inline constexpr double kZeroCelsiusInKelvin = 273.15;
/// Reference (room) temperature used throughout the paper: 27 degC.
inline constexpr double kRoomTemperatureCelsius = 27.0;

/// Thermal voltage kT/q [V] at absolute temperature `kelvin`.
constexpr double thermal_voltage(double kelvin) {
  return kBoltzmann * kelvin / kElementaryCharge;
}

constexpr double celsius_to_kelvin(double celsius) {
  return celsius + kZeroCelsiusInKelvin;
}

constexpr double kelvin_to_celsius(double kelvin) {
  return kelvin - kZeroCelsiusInKelvin;
}

// Scaling helpers: value-in-unit -> SI.
constexpr double from_milli(double v) { return v * 1e-3; }
constexpr double from_micro(double v) { return v * 1e-6; }
constexpr double from_nano(double v) { return v * 1e-9; }
constexpr double from_pico(double v) { return v * 1e-12; }
constexpr double from_femto(double v) { return v * 1e-15; }
constexpr double from_atto(double v) { return v * 1e-18; }

// SI -> value-in-unit (for reporting).
constexpr double to_milli(double v) { return v * 1e3; }
constexpr double to_micro(double v) { return v * 1e6; }
constexpr double to_nano(double v) { return v * 1e9; }
constexpr double to_pico(double v) { return v * 1e12; }
constexpr double to_femto(double v) { return v * 1e15; }

namespace literals {
// User-defined literals so circuit setup code reads like a datasheet:
//   auto c = 5.0_fF;  auto t = 200.0_ns;  auto v = 350.0_mV;
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fJ(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
}  // namespace literals

}  // namespace sfc::util
