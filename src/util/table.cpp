#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace sfc::util {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, fraction * 100.0);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  add_row(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : width) {
      s.append(w + 2, '-');
      s += '+';
    }
    s += '\n';
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      s += ' ';
      s += cells[c];
      s.append(width[c] - cells[c].size() + 1, ' ');
      s += '|';
    }
    s += '\n';
    return s;
  };

  std::string out = rule();
  out += line(header_);
  out += rule();
  for (const auto& row : rows_) out += line(row);
  out += rule();
  return out;
}

}  // namespace sfc::util
