// Minimal CSV writer. Experiment harnesses dump their raw series next to
// the pretty-printed tables so results can be re-plotted offline.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace sfc::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Append one row; must match the header width.
  void row(const std::vector<double>& values);

  /// Append a mixed row of preformatted cells.
  void row_text(const std::vector<std::string>& cells);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t columns_;
  std::ofstream out_;
};

/// Quote a cell if it contains separators/quotes (RFC-4180 style).
std::string csv_escape(const std::string& cell);

}  // namespace sfc::util
