// Piecewise-linear function, used by the waveform sources (PWL stimulus)
// and by the calibrated behavioural array model (voltage level tables).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace sfc::util {

/// y = f(x) given as sorted breakpoints; linear between points, clamped
/// (constant extrapolation) outside the covered x-range.
class PiecewiseLinear {
 public:
  PiecewiseLinear() = default;

  /// Points must be strictly increasing in x (asserted).
  explicit PiecewiseLinear(std::vector<std::pair<double, double>> points);

  void add_point(double x, double y);

  double operator()(double x) const;

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  double min_x() const;
  double max_x() const;

  /// Inverse lookup on a monotonically increasing function: find x such
  /// that f(x) = y (clamped to the domain). Asserts monotonicity in debug.
  double inverse(double y) const;

 private:
  std::vector<std::pair<double, double>> points_;
};

/// Scalar helper: linear interpolation of y between (x0,y0)-(x1,y1).
double lerp(double x, double x0, double y0, double x1, double y1);

}  // namespace sfc::util
