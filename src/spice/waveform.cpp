#include "spice/waveform.hpp"

#include <cassert>
#include <cmath>

namespace sfc::spice {

Waveform Waveform::dc(double level) {
  Waveform w;
  w.kind_ = Kind::kDc;
  w.level_ = level;
  return w;
}

Waveform Waveform::pulse(double v1, double v2, double delay, double rise,
                         double fall, double width, double period,
                         int cycles) {
  assert(rise >= 0.0 && fall >= 0.0 && width >= 0.0);
  assert(period <= 0.0 || period >= rise + fall + width);
  Waveform w;
  w.kind_ = Kind::kPulse;
  w.v1_ = v1;
  w.v2_ = v2;
  w.delay_ = delay;
  // Zero-length edges would make the waveform discontinuous and Newton
  // unhappy; give them a tiny but finite slope.
  w.rise_ = std::max(rise, 1e-15);
  w.fall_ = std::max(fall, 1e-15);
  w.width_ = width;
  w.period_ = period;
  w.cycles_ = cycles;
  return w;
}

Waveform Waveform::pwl(std::vector<std::pair<double, double>> points) {
  Waveform w;
  w.kind_ = Kind::kPwl;
  for (const auto& p : points) w.pwl_times_.push_back(p.first);
  w.pwl_ = util::PiecewiseLinear(std::move(points));
  return w;
}

Waveform Waveform::sine(double offset, double amplitude, double freq_hz,
                        double delay) {
  Waveform w;
  w.kind_ = Kind::kSine;
  w.level_ = offset;
  w.amplitude_ = amplitude;
  w.freq_hz_ = freq_hz;
  w.delay_ = delay;
  return w;
}

double Waveform::at(double t) const {
  switch (kind_) {
    case Kind::kDc:
      return level_;
    case Kind::kSine:
      if (t < delay_) return level_;
      return level_ + amplitude_ * std::sin(2.0 * M_PI * freq_hz_ * (t - delay_));
    case Kind::kPwl:
      return pwl_(t);
    case Kind::kPulse: {
      if (t < delay_) return v1_;
      double local = t - delay_;
      if (period_ > 0.0) {
        const double cycle = std::floor(local / period_);
        if (cycles_ >= 0 && cycle >= cycles_) return v1_;
        local -= cycle * period_;
      } else if (cycles_ == 0) {
        return v1_;
      }
      if (local < rise_) return v1_ + (v2_ - v1_) * (local / rise_);
      local -= rise_;
      if (local < width_) return v2_;
      local -= width_;
      if (local < fall_) return v2_ + (v1_ - v2_) * (local / fall_);
      return v1_;
    }
  }
  return 0.0;
}

std::pair<double, double> Waveform::range() const {
  switch (kind_) {
    case Kind::kDc:
      return {level_, level_};
    case Kind::kSine: {
      double lo = level_ - std::fabs(amplitude_);
      double hi = level_ + std::fabs(amplitude_);
      if (delay_ > 0.0) {
        // Holds the plain offset until the delay elapses; the envelope
        // already contains it, but be explicit for amplitude < 0 quirks.
        lo = std::min(lo, level_);
        hi = std::max(hi, level_);
      }
      return {lo, hi};
    }
    case Kind::kPwl: {
      if (pwl_times_.empty()) return {at(0.0), at(0.0)};
      // Piecewise-linear with constant extrapolation: every extremum sits
      // on a breakpoint (t < 0 segments are clamped into the t=0 value,
      // which evaluating at the breakpoint times still covers).
      double lo = at(0.0);
      double hi = lo;
      for (double t : pwl_times_) {
        const double v = pwl_(t);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      return {lo, hi};
    }
    case Kind::kPulse:
      return {std::min(v1_, v2_), std::max(v1_, v2_)};
  }
  return {0.0, 0.0};
}

void Waveform::collect_breakpoints(double t_stop,
                                   std::vector<double>& out) const {
  switch (kind_) {
    case Kind::kDc:
    case Kind::kSine:
      return;
    case Kind::kPwl:
      for (double t : pwl_times_) {
        if (t > 0.0 && t < t_stop) out.push_back(t);
      }
      return;
    case Kind::kPulse: {
      const double cycle_len = period_ > 0.0 ? period_ : t_stop + 1.0;
      for (int c = 0;; ++c) {
        if (cycles_ >= 0 && c >= std::max(cycles_, 1)) break;
        const double base = delay_ + static_cast<double>(c) * cycle_len;
        if (base >= t_stop) break;
        const double corners[4] = {base, base + rise_, base + rise_ + width_,
                                   base + rise_ + width_ + fall_};
        for (double corner : corners) {
          if (corner > 0.0 && corner < t_stop) out.push_back(corner);
        }
        if (period_ <= 0.0) break;
      }
      return;
    }
  }
}

}  // namespace sfc::spice
