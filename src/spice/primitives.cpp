#include "spice/primitives.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sfc::spice {

// ---------------------------------------------------------------- Resistor

Resistor::Resistor(std::string name, NodeId a, NodeId b, double ohms)
    : Device(std::move(name)), a_(a), b_(b), ohms_(ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("Resistor: non-positive R");
}

void Resistor::set_resistance(double ohms) {
  if (ohms <= 0.0) throw std::invalid_argument("Resistor: non-positive R");
  ohms_ = ohms;
}

void Resistor::stamp(const SimContext& /*ctx*/, Stamper& s) {
  s.conductance(a_, b_, 1.0 / ohms_);
}

void Resistor::stamp_ac(const SimContext& /*ctx*/, AcStamper& s) {
  s.conductance(a_, b_, 1.0 / ohms_);
}

// --------------------------------------------------------------- Capacitor

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double farads,
                     double ic_volts)
    : Device(std::move(name)), a_(a), b_(b), farads_(farads), ic_(ic_volts) {
  if (farads <= 0.0) throw std::invalid_argument("Capacitor: non-positive C");
}

double Capacitor::vdiff_x(const std::vector<double>& x) const {
  const double va = a_ == kGround ? 0.0 : x[static_cast<std::size_t>(a_)];
  const double vb = b_ == kGround ? 0.0 : x[static_cast<std::size_t>(b_)];
  return va - vb;
}

void Capacitor::stamp(const SimContext& ctx, Stamper& s) {
  if (ctx.mode == AnalysisMode::kDcOperatingPoint) {
    return;  // open circuit; engine gmin keeps the node defined
  }
  assert(ctx.dt > 0.0);
  double g, ieq;
  if (ctx.method == IntegrationMethod::kTrapezoidal) {
    g = 2.0 * farads_ / ctx.dt;
    ieq = -g * v_prev_ - i_prev_;
  } else {
    g = farads_ / ctx.dt;
    ieq = -g * v_prev_;
  }
  // Device current a->b: i = g*v + ieq.
  s.conductance(a_, b_, g);
  s.current(a_, b_, ieq);
}

void Capacitor::stamp_ac(const SimContext& /*ctx*/, AcStamper& s) {
  s.capacitance(a_, b_, farads_);
}

void Capacitor::start_transient(const SimContext& /*ctx*/,
                                const std::vector<double>& x) {
  v_prev_ = (ic_ != kNoIc) ? ic_ : vdiff_x(x);
  i_prev_ = 0.0;
}

void Capacitor::accept_step(const SimContext& ctx,
                            const std::vector<double>& x) {
  const double v_now = vdiff_x(x);
  if (ctx.method == IntegrationMethod::kTrapezoidal) {
    const double g = 2.0 * farads_ / ctx.dt;
    i_prev_ = g * (v_now - v_prev_) - i_prev_;
  } else {
    i_prev_ = farads_ / ctx.dt * (v_now - v_prev_);
  }
  v_prev_ = v_now;
}

// ---------------------------------------------------------------- Inductor

Inductor::Inductor(std::string name, NodeId a, NodeId b, double henries)
    : Device(std::move(name)), a_(a), b_(b), henries_(henries) {
  if (henries <= 0.0) throw std::invalid_argument("Inductor: non-positive L");
}

void Inductor::stamp(const SimContext& ctx, Stamper& s) {
  const int k = s.aux_row(aux_base());
  // KCL: branch current x[k] flows a -> b through the inductor.
  s.add_matrix(s.node_row(a_), k, 1.0);
  s.add_matrix(s.node_row(b_), k, -1.0);
  // Branch equation.
  s.add_matrix(k, s.node_row(a_), 1.0);
  s.add_matrix(k, s.node_row(b_), -1.0);
  if (ctx.mode == AnalysisMode::kDcOperatingPoint) {
    // v = 0 (short)
    return;
  }
  assert(ctx.dt > 0.0);
  if (ctx.method == IntegrationMethod::kTrapezoidal) {
    // v_n + v_{n-1} = (2L/dt)(i_n - i_{n-1})
    const double zl = 2.0 * henries_ / ctx.dt;
    s.add_matrix(k, k, -zl);
    s.add_rhs(k, -zl * i_prev_ - v_prev_);
  } else {
    const double zl = henries_ / ctx.dt;
    s.add_matrix(k, k, -zl);
    s.add_rhs(k, -zl * i_prev_);
  }
}

void Inductor::stamp_ac(const SimContext& /*ctx*/, AcStamper& s) {
  const int k = s.aux_row(aux_base());
  s.add_matrix(s.node_row(a_), k, 1.0);
  s.add_matrix(s.node_row(b_), k, -1.0);
  s.add_matrix(k, s.node_row(a_), 1.0);
  s.add_matrix(k, s.node_row(b_), -1.0);
  // v = jwL * i
  s.add_matrix(k, k, std::complex<double>{0.0, -s.omega() * henries_});
}

void Inductor::start_transient(const SimContext& ctx,
                               const std::vector<double>& x) {
  i_prev_ = x[ctx.num_nodes + static_cast<std::size_t>(aux_base())];
  v_prev_ = 0.0;  // DC operating point shorts the inductor
}

void Inductor::accept_step(const SimContext& ctx,
                           const std::vector<double>& x) {
  i_prev_ = x[ctx.num_nodes + static_cast<std::size_t>(aux_base())];
  const double va = a_ == kGround ? 0.0 : x[static_cast<std::size_t>(a_)];
  const double vb = b_ == kGround ? 0.0 : x[static_cast<std::size_t>(b_)];
  v_prev_ = va - vb;
}

// ----------------------------------------------------------------- VSource

VSource::VSource(std::string name, NodeId plus, NodeId minus,
                 Waveform waveform)
    : Device(std::move(name)),
      plus_(plus),
      minus_(minus),
      waveform_(std::move(waveform)) {}

VSource::VSource(std::string name, NodeId plus, NodeId minus, double dc_volts)
    : VSource(std::move(name), plus, minus, Waveform::dc(dc_volts)) {}

void VSource::stamp(const SimContext& ctx, Stamper& s) {
  const int k = s.aux_row(aux_base());
  s.add_matrix(s.node_row(plus_), k, 1.0);
  s.add_matrix(s.node_row(minus_), k, -1.0);
  s.add_matrix(k, s.node_row(plus_), 1.0);
  s.add_matrix(k, s.node_row(minus_), -1.0);
  const double v = ctx.mode == AnalysisMode::kDcOperatingPoint
                       ? waveform_.initial()
                       : waveform_.at(ctx.time);
  s.add_rhs(k, v);
}

void VSource::stamp_ac(const SimContext& /*ctx*/, AcStamper& s) {
  const int k = s.aux_row(aux_base());
  s.add_matrix(s.node_row(plus_), k, 1.0);
  s.add_matrix(s.node_row(minus_), k, -1.0);
  s.add_matrix(k, s.node_row(plus_), 1.0);
  s.add_matrix(k, s.node_row(minus_), -1.0);
  // Quiet sources are AC shorts; an excited source injects its magnitude.
  s.add_rhs(k, ac_magnitude_);
}

double VSource::branch_current(std::size_t num_nodes,
                               const std::vector<double>& x) const {
  return x[num_nodes + static_cast<std::size_t>(aux_base())];
}

double VSource::delivered_power(const SimContext& ctx,
                                const std::vector<double>& x) const {
  // x[k] is the current flowing from + into the source; power delivered to
  // the circuit is -V * x[k].
  const double v = ctx.mode == AnalysisMode::kDcOperatingPoint
                       ? waveform_.initial()
                       : waveform_.at(ctx.time);
  const double i = x[ctx.num_nodes + static_cast<std::size_t>(aux_base())];
  return -v * i;
}

void VSource::collect_breakpoints(double t_stop,
                                  std::vector<double>& out) const {
  waveform_.collect_breakpoints(t_stop, out);
}

// ----------------------------------------------------------------- ISource

ISource::ISource(std::string name, NodeId from, NodeId to, Waveform waveform)
    : Device(std::move(name)),
      from_(from),
      to_(to),
      waveform_(std::move(waveform)) {}

ISource::ISource(std::string name, NodeId from, NodeId to, double dc_amps)
    : ISource(std::move(name), from, to, Waveform::dc(dc_amps)) {}

void ISource::stamp(const SimContext& ctx, Stamper& s) {
  const double i = ctx.mode == AnalysisMode::kDcOperatingPoint
                       ? waveform_.initial()
                       : waveform_.at(ctx.time);
  // Source drives current out of `from` (through itself) into `to`:
  // it *extracts* i at from and *injects* i at to.
  s.current(from_, to_, i);
}

double ISource::delivered_power(const SimContext& ctx,
                                const std::vector<double>& x) const {
  const double i = ctx.mode == AnalysisMode::kDcOperatingPoint
                       ? waveform_.initial()
                       : waveform_.at(ctx.time);
  const double vf = from_ == kGround ? 0.0 : x[static_cast<std::size_t>(from_)];
  const double vt = to_ == kGround ? 0.0 : x[static_cast<std::size_t>(to_)];
  return i * (vt - vf);
}

void ISource::collect_breakpoints(double t_stop,
                                  std::vector<double>& out) const {
  waveform_.collect_breakpoints(t_stop, out);
}

// ----------------------------------------------------------------- VSwitch

VSwitch::VSwitch(std::string name, NodeId a, NodeId b, NodeId ctrl,
                 Params params)
    : Device(std::move(name)), a_(a), b_(b), ctrl_(ctrl), p_(params) {
  if (p_.r_on <= 0.0 || p_.r_off <= p_.r_on) {
    throw std::invalid_argument("VSwitch: need 0 < r_on < r_off");
  }
}

namespace {
// The logistic tails are hard-clamped well before they would matter for
// Newton, so a fully-off switch leaks exactly 1/r_off (important for the
// CiM sensing node: a soft tail would bleed cell charge into Cacc during
// the settle phase).
constexpr double kSwitchClampZ = 8.0;

double switch_sigma(double z) {
  if (z > kSwitchClampZ) return 1.0;
  if (z < -kSwitchClampZ) return 0.0;
  return 1.0 / (1.0 + std::exp(-z));
}
}  // namespace

double VSwitch::conductance_at(double v_ctrl) const {
  const double g_on = 1.0 / p_.r_on;
  const double g_off = 1.0 / p_.r_off;
  const double z = (v_ctrl - p_.v_threshold) / p_.v_width;
  return g_off + (g_on - g_off) * switch_sigma(z);
}

void VSwitch::stamp(const SimContext& /*ctx*/, Stamper& s) {
  const double vc = s.v(ctrl_);
  const double vab = vdiff(s, a_, b_);
  const double g = conductance_at(vc);
  // dg/dvc via logistic derivative (zero in the clamped tails).
  const double z = (vc - p_.v_threshold) / p_.v_width;
  const double sig = switch_sigma(z);
  const double dg = (1.0 / p_.r_on - 1.0 / p_.r_off) * sig * (1.0 - sig) / p_.v_width;
  const double gm = dg * vab;  // di/dvc

  s.conductance(a_, b_, g);
  s.vccs(a_, b_, ctrl_, kGround, gm);
  // Residual correction: i = g*vab exactly, linear model gives
  // g*vab + gm*vc + ieq  =>  ieq = -gm*vc.
  s.current(a_, b_, -gm * vc);
}

void VSwitch::stamp_ac(const SimContext& /*ctx*/, AcStamper& s) {
  // Small-signal: the switch is a resistor at its DC control bias (the
  // control-path modulation is negligible for the sensing use case).
  s.conductance(a_, b_, conductance_at(s.dc_v(ctrl_)));
}

// -------------------------------------------------------------------- Vccs

Vccs::Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p,
           NodeId ctrl_n, double gm)
    : Device(std::move(name)),
      out_p_(out_p),
      out_n_(out_n),
      ctrl_p_(ctrl_p),
      ctrl_n_(ctrl_n),
      gm_(gm) {}

void Vccs::stamp(const SimContext& /*ctx*/, Stamper& s) {
  s.vccs(out_p_, out_n_, ctrl_p_, ctrl_n_, gm_);
}

void Vccs::stamp_ac(const SimContext& /*ctx*/, AcStamper& s) {
  s.vccs(out_p_, out_n_, ctrl_p_, ctrl_n_, gm_);
}

// -------------------------------------------------------------------- Vcvs

Vcvs::Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p,
           NodeId ctrl_n, double gain)
    : Device(std::move(name)),
      out_p_(out_p),
      out_n_(out_n),
      ctrl_p_(ctrl_p),
      ctrl_n_(ctrl_n),
      gain_(gain) {}

void Vcvs::stamp(const SimContext& /*ctx*/, Stamper& s) {
  const int k = s.aux_row(aux_base());
  s.add_matrix(s.node_row(out_p_), k, 1.0);
  s.add_matrix(s.node_row(out_n_), k, -1.0);
  // v(out_p) - v(out_n) - gain*(v(ctrl_p) - v(ctrl_n)) = 0
  s.add_matrix(k, s.node_row(out_p_), 1.0);
  s.add_matrix(k, s.node_row(out_n_), -1.0);
  s.add_matrix(k, s.node_row(ctrl_p_), -gain_);
  s.add_matrix(k, s.node_row(ctrl_n_), gain_);
}

void Vcvs::stamp_ac(const SimContext& /*ctx*/, AcStamper& s) {
  const int k = s.aux_row(aux_base());
  s.add_matrix(s.node_row(out_p_), k, 1.0);
  s.add_matrix(s.node_row(out_n_), k, -1.0);
  s.add_matrix(k, s.node_row(out_p_), 1.0);
  s.add_matrix(k, s.node_row(out_n_), -1.0);
  s.add_matrix(k, s.node_row(ctrl_p_), -gain_);
  s.add_matrix(k, s.node_row(ctrl_n_), gain_);
}

}  // namespace sfc::spice
