#include "spice/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "trace/trace.hpp"

namespace sfc::spice {

Engine::Engine(Circuit& circuit, double temperature_c)
    : circuit_(circuit), temperature_c_(temperature_c) {
  circuit_.finalize();
}

void Engine::set_node_guess(const std::string& node, double volts) {
  node_guesses_.emplace_back(node, volts);
}

void Engine::clear_node_guesses() { node_guesses_.clear(); }

std::vector<double> Engine::initial_vector() const {
  std::vector<double> x(circuit_.system_size(), 0.0);
  for (const auto& [name, volts] : node_guesses_) {
    // Guesses for nodes that were never created are silently ignored; this
    // lets generic setup code seed optional probe nodes.
    const std::optional<NodeId> id = circuit_.find_node(name);
    if (!id || *id == kGround) continue;
    x[static_cast<std::size_t>(*id)] = volts;
  }
  return x;
}

void Engine::assemble(const SimContext& ctx, const std::vector<double>& x,
                      DenseMatrix& a, std::vector<double>& b) const {
  a.set_zero();
  std::fill(b.begin(), b.end(), 0.0);
  Stamper stamper(a, b, x, circuit_.num_nodes());
  for (Device* dev : circuit_.linear_devices()) {
    dev->stamp(ctx, stamper);
  }
  // gmin from every node to ground keeps the matrix nonsingular when
  // subthreshold devices are effectively off.
  for (std::size_t n = 0; n < circuit_.num_nodes(); ++n) {
    a.at(n, n) += ctx.gmin;
  }
  for (Device* dev : circuit_.nonlinear_devices()) {
    dev->stamp(ctx, stamper);
  }
}

bool Engine::apply_update(std::vector<double>& x,
                          const std::vector<double>& x_new,
                          const NewtonOptions& options) const {
  // Damped update: clamp each voltage component's change. Aux variables
  // (branch currents) are left unclamped, as their scale is unknown.
  const std::size_t size = x.size();
  double max_delta_v = 0.0;
  bool aux_converged = true;
  for (std::size_t i = 0; i < size; ++i) {
    double delta = x_new[i] - x[i];
    if (i < circuit_.num_nodes()) {
      const double limit = options.max_update_voltage;
      if (delta > limit) delta = limit;
      if (delta < -limit) delta = -limit;
      max_delta_v = std::max(max_delta_v, std::fabs(delta));
      x[i] += delta;
    } else {
      const double tol =
          options.reltol * std::max(std::fabs(x[i]), std::fabs(x_new[i])) +
          1e-15;
      if (std::fabs(delta) > tol) aux_converged = false;
      x[i] = x_new[i];
    }
  }
  return max_delta_v < options.vtol && aux_converged;
}

bool Engine::newton_solve_legacy(const SimContext& ctx, std::vector<double>& x,
                                 const NewtonOptions& options,
                                 int* iterations_out) {
  const std::size_t size = circuit_.system_size();
  DenseMatrix a(size, size);
  std::vector<double> b(size, 0.0);
  std::vector<double> x_new(size, 0.0);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    assemble(ctx, x, a, b);
    x_new = b;
    SFC_TRACE_COUNT("spice.lu.dense_solves", 1);
    if (!lu_solve(a, x_new)) {
      if (iterations_out) *iterations_out = iter + 1;
      return false;
    }
    const bool converged = apply_update(x, x_new, options);
    if (iterations_out) *iterations_out = iter + 1;
    if (converged && iter > 0) return true;
  }
  return false;
}

void Engine::prepare_workspace(const SimContext& ctx) {
  SolverWorkspace& ws = workspaces_[static_cast<int>(ctx.mode)];
  const std::size_t size = circuit_.system_size();
  if (ws.size == size && ws.mode == ctx.mode &&
      ws.plan_version == circuit_.plan_version()) {
    SFC_TRACE_COUNT("spice.stampplan.cache_hits", 1);
    return;
  }
  SFC_TRACE_COUNT("spice.stampplan.compiles", 1);
  ws.a = DenseMatrix(size, size);
  ws.a_base = DenseMatrix(size, size);
  ws.b.assign(size, 0.0);
  ws.b_base.assign(size, 0.0);
  ws.x_new.assign(size, 0.0);
  ws.pattern.assign(size * size, 0);
  ws.pattern_valid = false;
  ws.plan.reset();
  ws.size = size;
  ws.mode = ctx.mode;
  ws.plan_version = circuit_.plan_version();
}

bool Engine::newton_solve(const SimContext& ctx, std::vector<double>& x,
                          const NewtonOptions& options, int* iterations_out) {
  SFC_TRACE_SPAN("spice.newton_solve");
  circuit_.finalize();
  int iters = 0;
  const bool ok = options.use_stamp_plan
                      ? newton_solve_plan(ctx, x, options, &iters)
                      : newton_solve_legacy(ctx, x, options, &iters);
  if (iterations_out) *iterations_out = iters;
  SFC_TRACE_COUNT("spice.newton.solves", 1);
  SFC_TRACE_COUNT("spice.newton.iterations", iters);
  if (!ok) SFC_TRACE_COUNT("spice.newton.failures", 1);
  return ok;
}

bool Engine::newton_solve_plan(const SimContext& ctx, std::vector<double>& x,
                               const NewtonOptions& options,
                               int* iterations_out) {
  SolverWorkspace& ws = workspaces_[static_cast<int>(ctx.mode)];
  prepare_workspace(ctx);
  const std::size_t size = ws.size;
  const std::size_t num_nodes = circuit_.num_nodes();

  // Baseline: linear stamps + gmin, valid for the whole solve. Linear
  // devices may not read the Newton iterate (Device::is_linear contract),
  // so it is legal to build this before x has converged.
  ws.a_base.set_zero();
  std::fill(ws.b_base.begin(), ws.b_base.end(), 0.0);
  {
    Stamper stamper(ws.a_base, ws.b_base, x, num_nodes);
    if (!ws.pattern_valid) stamper.record_pattern(&ws.pattern, size);
#ifndef NDEBUG
    stamper.forbid_iterate_reads(true);
#endif
    for (Device* dev : circuit_.linear_devices()) {
      dev->stamp(ctx, stamper);
    }
  }
  for (std::size_t n = 0; n < num_nodes; ++n) {
    ws.a_base.at(n, n) += ctx.gmin;
    if (!ws.pattern_valid) ws.pattern[n * size + n] = 1;
  }

  // Restore the baseline and restamp only the nonlinear devices; the
  // resulting (A, b) is bit-identical to assemble() because the stamp
  // order (linear, gmin, nonlinear) is the same.
  const auto restamp = [&]() {
    if (ws.plan.valid() && !ws.plan.last_factor_full()) {
      // The previous solve only wrote inside the compiled schedule, and
      // linear stamps never land outside it, so restoring the touched
      // entries leaves A bitwise equal to a full copy.
      const double* src = ws.a_base.data();
      double* dst = ws.a.data();
      for (const int idx : ws.plan.touched_indices()) dst[idx] = src[idx];
    } else {
      ws.a.copy_from(ws.a_base);
    }
    std::copy(ws.b_base.begin(), ws.b_base.end(), ws.b.begin());
    Stamper stamper(ws.a, ws.b, x, num_nodes);
    if (!ws.pattern_valid) stamper.record_pattern(&ws.pattern, size);
    for (Device* dev : circuit_.nonlinear_devices()) {
      dev->stamp(ctx, stamper);
    }
    ws.pattern_valid = true;
    ws.x_new.assign(ws.b.begin(), ws.b.end());
  };

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    restamp();
    bool factored;
    if (options.reuse_pivot_order) {
      // solve_frozen's schedule is pivot-robust (drift just re-records
      // the order), so a false return means a genuinely singular system —
      // exactly when factor_and_compile/lu_solve would fail too.
      if (ws.plan.valid()) {
        const std::size_t refreezes_before = ws.plan.refreeze_count();
        factored =
            ws.plan.solve_frozen(ws.a, ws.x_new, options.pivot_degradation);
        SFC_TRACE_COUNT("spice.lu.frozen_solves", 1);
        SFC_TRACE_COUNT("spice.lu.refreezes",
                        ws.plan.refreeze_count() - refreezes_before);
      } else {
        factored = ws.plan.factor_and_compile(ws.a, ws.x_new, ws.pattern);
        SFC_TRACE_COUNT("spice.lu.factorizations", 1);
      }
    } else {
      factored = lu_solve(ws.a, ws.x_new);
      SFC_TRACE_COUNT("spice.lu.dense_solves", 1);
    }
    if (!factored) {
      if (iterations_out) *iterations_out = iter + 1;
      return false;
    }
    const bool converged = apply_update(x, ws.x_new, options);
    if (iterations_out) *iterations_out = iter + 1;
    if (converged && iter > 0) return true;
  }
  return false;
}

void Engine::set_preflight(PreflightCheck check) {
  preflight_ = std::move(check);
  preflight_done_ = false;
}

void Engine::run_preflight() {
  if (preflight_done_ || !preflight_) return;
  preflight_(circuit_);
  // Only a passing screen is cached; a rejecting check keeps rejecting.
  preflight_done_ = true;
}

DcResult Engine::dc_operating_point(const NewtonOptions& options,
                                    const std::vector<double>* warm_start) {
  SFC_TRACE_SPAN("spice.dc_operating_point");
  SFC_TRACE_COUNT("spice.dc.solves", 1);
  circuit_.finalize();
  run_preflight();
  DcResult result;
  SimContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  ctx.temperature_c = temperature_c_;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  ctx.num_nodes = circuit_.num_nodes();

  std::vector<double> x =
      (warm_start && warm_start->size() == circuit_.system_size())
          ? *warm_start
          : initial_vector();

  // Plain attempt at final gmin, then gmin stepping from a large leak.
  ctx.gmin = options.gmin_final;
  int iters = 0;
  bool ok = newton_solve(ctx, x, options, &iters);
  result.iterations += iters;

  if (!ok) {
    SFC_TRACE_COUNT("spice.dc.gmin_fallbacks", 1);
    x = initial_vector();
    double gmin = options.gmin_start;
    ok = true;
    while (gmin >= options.gmin_final * 0.999) {
      SFC_TRACE_COUNT("spice.newton.gmin_steps", 1);
      ctx.gmin = gmin;
      int step_iters = 0;
      if (!newton_solve(ctx, x, options, &step_iters)) {
        ok = false;
        result.iterations += step_iters;
        break;
      }
      result.iterations += step_iters;
      if (gmin == options.gmin_final) break;
      gmin = std::max(gmin / options.gmin_step_factor, options.gmin_final);
    }
  }

  result.converged = ok;
  result.gmin_used = ctx.gmin;
  result.x = x;
  for (std::size_t n = 0; n < circuit_.num_nodes(); ++n) {
    result.voltages[circuit_.node_name(static_cast<NodeId>(n))] = x[n];
  }
  for (const auto& dev : circuit_.devices()) {
    if (dev->num_aux() == 1) {
      result.currents["I(" + dev->name() + ")"] =
          x[circuit_.num_nodes() + static_cast<std::size_t>(dev->aux_base())];
    }
  }
  return result;
}

std::vector<std::string> Engine::signal_names() const {
  std::vector<std::string> names;
  names.reserve(circuit_.system_size());
  for (std::size_t n = 0; n < circuit_.num_nodes(); ++n) {
    names.push_back(circuit_.node_name(static_cast<NodeId>(n)));
  }
  for (const auto& dev : circuit_.devices()) {
    for (int k = 0; k < dev->num_aux(); ++k) {
      if (dev->num_aux() == 1) {
        names.push_back("I(" + dev->name() + ")");
      } else {
        names.push_back("I(" + dev->name() + "." + std::to_string(k) + ")");
      }
    }
  }
  return names;
}

std::vector<double> Engine::breakpoints(double t_stop) const {
  std::vector<double> points;
  for (const auto& dev : circuit_.devices()) {
    dev->collect_breakpoints(t_stop, points);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end(),
                           [](double a, double b) {
                             return std::fabs(a - b) < 1e-18;
                           }),
               points.end());
  // Keep only breakpoints strictly inside (0, t_stop).
  std::vector<double> inside;
  for (double p : points) {
    if (p > 1e-18 && p < t_stop - 1e-18) inside.push_back(p);
  }
  return inside;
}

AcResult Engine::ac(const std::vector<double>& frequencies_hz,
                    const NewtonOptions& options) {
  SFC_TRACE_SPAN("spice.ac");
  circuit_.finalize();
  AcResult result;
  result.op = dc_operating_point(options);
  if (!result.op.converged) return result;

  SimContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;  // linearization context
  ctx.temperature_c = temperature_c_;
  ctx.num_nodes = circuit_.num_nodes();

  const std::size_t size = circuit_.system_size();
  ComplexMatrix a(size, size);
  std::vector<std::complex<double>> b(size);
  result.set_signal_names(signal_names());

  for (double f : frequencies_hz) {
    const double omega = 2.0 * M_PI * f;
    a.set_zero();
    std::fill(b.begin(), b.end(), std::complex<double>{0.0, 0.0});
    AcStamper stamper(a, b, result.op.x, circuit_.num_nodes(), omega);
    for (const auto& dev : circuit_.devices()) {
      dev->stamp_ac(ctx, stamper);
    }
    for (std::size_t n = 0; n < circuit_.num_nodes(); ++n) {
      a.at(n, n) += options.gmin_final;
    }
    std::vector<std::complex<double>> x = b;
    if (!lu_solve(a, x)) {
      result.converged = false;
      return result;
    }
    result.append_point(f, x);
  }
  result.converged = true;
  return result;
}

/// Logarithmic frequency grid helper for AC sweeps.
std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       int points_per_decade) {
  std::vector<double> freqs;
  const double decades = std::log10(f_stop / f_start);
  const int total =
      std::max(2, static_cast<int>(decades * points_per_decade) + 1);
  for (int i = 0; i < total; ++i) {
    freqs.push_back(f_start *
                    std::pow(10.0, decades * i / (total - 1)));
  }
  return freqs;
}

TransientResult Engine::transient(double t_stop,
                                  const TransientOptions& options) {
  SFC_TRACE_SPAN("spice.transient");
  circuit_.finalize();
  TransientResult result;

  // Initial condition: DC operating point with sources at t = 0.
  DcResult dc = dc_operating_point(options.newton);
  result.total_newton_iterations += dc.iterations;
  if (!dc.converged) {
    result.converged = false;
    return result;
  }
  std::vector<double> x = dc.x;

  SimContext ctx;
  ctx.mode = AnalysisMode::kTransient;
  ctx.method = options.method;
  ctx.temperature_c = temperature_c_;
  ctx.gmin = options.newton.gmin_final;
  ctx.time = 0.0;
  ctx.dt = 0.0;
  ctx.num_nodes = circuit_.num_nodes();

  for (const auto& dev : circuit_.devices()) {
    dev->start_transient(ctx, x);
  }

  result.set_signal_names(signal_names());
  if (options.record_waveforms) result.append_sample(0.0, x);

  const std::vector<double> bps = breakpoints(t_stop);
  std::size_t next_bp = 0;
  SFC_TRACE_COUNT("spice.tran.breakpoints", bps.size());

  // Running per-source power for trapezoidal energy integration.
  std::vector<double> prev_power(circuit_.devices().size(), 0.0);
  {
    std::size_t di = 0;
    for (const auto& dev : circuit_.devices()) {
      prev_power[di++] = dev->delivered_power(ctx, x);
    }
  }
  std::vector<double> energy(circuit_.devices().size(), 0.0);

  double t = 0.0;
  bool just_crossed_breakpoint = true;  // first step uses BE for robustness
  // Adaptive stepping state: the current nominal step size.
  double dt_nominal = options.dt;
  const double dt_max =
      options.dt_max > 0.0 ? options.dt_max : 16.0 * options.dt;
  while (t < t_stop - 1e-18) {
    // Choose the step: nominal dt, clipped to the next breakpoint / stop.
    double dt = dt_nominal;
    double target = t + dt;
    bool hits_bp = false;
    if (next_bp < bps.size() && bps[next_bp] <= target + 1e-18) {
      target = bps[next_bp];
      hits_bp = true;
    }
    if (target > t_stop) {
      target = t_stop;
      hits_bp = false;
    }
    dt = target - t;
    if (dt <= 0.0) {  // breakpoint coincides with current time
      ++next_bp;
      continue;
    }

    // Solve the step, halving on Newton failure.
    bool solved = false;
    std::vector<double> x_try;
    int retries = 0;
    double step = dt;
    int last_iters = 0;
    while (retries <= options.max_step_retries) {
      ctx.time = t + step;
      ctx.dt = step;
      ctx.method = just_crossed_breakpoint ? IntegrationMethod::kBackwardEuler
                                           : options.method;
      x_try = x;
      int iters = 0;
      if (newton_solve(ctx, x_try, options.newton, &iters)) {
        result.total_newton_iterations += iters;
        last_iters = iters;
        solved = true;
        break;
      }
      result.total_newton_iterations += iters;
      SFC_TRACE_COUNT("spice.tran.steps_rejected", 1);
      step *= 0.5;
      ++retries;
    }
    if (!solved) {
      result.converged = false;
      return result;
    }

    SFC_TRACE_COUNT("spice.tran.steps_accepted", 1);
    SFC_TRACE_HIST("spice.tran.newton_iterations_per_step", last_iters);

    if (options.adaptive) {
      // Iteration-count step control: easy steps grow the nominal step,
      // hard-fought ones shrink it. Failure halving (above) already
      // handled outright rejections.
      if (retries > 0 || last_iters > options.shrink_above_iterations) {
        dt_nominal = std::max(options.dt * 1e-3,
                              dt_nominal * options.shrink_factor);
        SFC_TRACE_COUNT("spice.tran.dt_shrinks", 1);
      } else if (last_iters < options.grow_below_iterations) {
        dt_nominal = std::min(dt_max, dt_nominal * options.grow_factor);
        SFC_TRACE_COUNT("spice.tran.dt_grows", 1);
      }
    }

    x = x_try;
    for (const auto& dev : circuit_.devices()) {
      dev->accept_step(ctx, x);
    }

    // Energy bookkeeping (trapezoidal in time).
    {
      std::size_t di = 0;
      for (const auto& dev : circuit_.devices()) {
        const double p = dev->delivered_power(ctx, x);
        energy[di] += 0.5 * (p + prev_power[di]) * ctx.dt;
        prev_power[di] = p;
        ++di;
      }
    }

    t = ctx.time;
    just_crossed_breakpoint = false;
    if (hits_bp && std::fabs(t - bps[next_bp]) < 1e-18) {
      ++next_bp;
      just_crossed_breakpoint = true;
    }
    if (options.record_waveforms) result.append_sample(t, x);
  }

  {
    std::size_t di = 0;
    for (const auto& dev : circuit_.devices()) {
      if (energy[di] != 0.0) result.source_energy[dev->name()] = energy[di];
      ++di;
    }
  }
  if (!options.record_waveforms) {
    result.set_signal_names(signal_names());
    result.append_sample(t, x);
  }
  result.converged = true;
  return result;
}

}  // namespace sfc::spice
