// Time-domain stimulus waveforms for independent sources: DC, PULSE
// (SPICE semantics), PWL and SIN. Waveforms know their own corner times
// so the transient engine can align steps to pulse edges.
#pragma once

#include <vector>

#include "util/interp.hpp"

namespace sfc::spice {

class Waveform {
 public:
  /// Constant level.
  static Waveform dc(double level);

  /// SPICE PULSE(v1 v2 delay rise fall width period). `cycles` < 0 means
  /// repeat forever; 0 or more limits the number of pulses.
  static Waveform pulse(double v1, double v2, double delay, double rise,
                        double fall, double width, double period,
                        int cycles = -1);

  /// Piecewise-linear (time, value) points; constant before/after.
  static Waveform pwl(std::vector<std::pair<double, double>> points);

  /// offset + amplitude * sin(2*pi*freq*(t-delay)), 0 before delay.
  static Waveform sine(double offset, double amplitude, double freq_hz,
                       double delay = 0.0);

  /// Default: 0 V DC (member initializers already encode this).
  Waveform() = default;

  double at(double t) const;
  void collect_breakpoints(double t_stop, std::vector<double>& out) const;

  /// Value at t=0 (used by the DC operating point preceding a transient).
  double initial() const { return at(0.0); }

  /// Conservative {min, max} of the waveform over all t >= 0. Exact for
  /// DC/PULSE/PWL; for SIN it is the offset +/- amplitude envelope (plus
  /// the pre-delay level). Used by the static operating-point analysis
  /// (src/lint) to bound source nodes over a whole transient.
  std::pair<double, double> range() const;

 private:
  enum class Kind { kDc, kPulse, kPwl, kSine };
  Kind kind_ = Kind::kDc;

  // DC / SIN parameters.
  double level_ = 0.0;
  double amplitude_ = 0.0;
  double freq_hz_ = 0.0;
  double delay_ = 0.0;

  // PULSE parameters.
  double v1_ = 0.0, v2_ = 0.0, rise_ = 0.0, fall_ = 0.0, width_ = 0.0,
         period_ = 0.0;
  int cycles_ = -1;

  util::PiecewiseLinear pwl_;
  std::vector<double> pwl_times_;
};

}  // namespace sfc::spice
