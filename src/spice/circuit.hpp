// Circuit: node registry + device container. Owns all devices; nodes are
// created by name on first use ("0" and "gnd" map to ground).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "spice/device.hpp"

namespace sfc::spice {

class Circuit {
 public:
  Circuit() = default;

  /// Get-or-create the node with the given name.
  NodeId node(const std::string& name);

  /// Name of an existing node (ground -> "0").
  const std::string& node_name(NodeId id) const;

  /// True if a node of that name already exists.
  bool has_node(const std::string& name) const;

  /// Const lookup without creation: the NodeId for `name`, kGround for any
  /// ground alias, or nullopt when no such node exists.
  std::optional<NodeId> find_node(const std::string& name) const;

  /// Number of non-ground nodes.
  std::size_t num_nodes() const { return node_names_.size(); }

  /// Nodes + auxiliary variables (valid after finalize()).
  std::size_t system_size() const { return num_nodes() + static_cast<std::size_t>(num_aux_); }

  /// Construct and register a device. Returns a reference owned by the
  /// circuit. Device names must be unique.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    register_device(std::move(dev));
    return ref;
  }

  /// Look up a device by name; nullptr if absent.
  Device* find(const std::string& name);
  const Device* find(const std::string& name) const;

  const std::vector<std::unique_ptr<Device>>& devices() const {
    return devices_;
  }

  /// Linear / nonlinear partition computed by finalize() from
  /// Device::is_linear(). The stamp-plan engine stamps `linear_devices()`
  /// once per solve into a cached baseline and restamps only
  /// `nonlinear_devices()` per Newton iteration. Registration order is
  /// preserved within each partition.
  const std::vector<Device*>& linear_devices() const { return linear_; }
  const std::vector<Device*>& nonlinear_devices() const { return nonlinear_; }

  /// Bumped whenever finalize() re-runs over a modified device list; lets
  /// engine workspaces detect that cached stamp plans are stale.
  std::uint64_t plan_version() const { return plan_version_; }

  /// Deep copy: same node registry, every device cloned with its full
  /// runtime state. Solves mutate device state (capacitor history,
  /// transient bookkeeping), so parallel sweeps give each worker its own
  /// clone instead of sharing this circuit.
  Circuit clone() const;

  /// Assign auxiliary-variable slots. Called automatically by the engine;
  /// idempotent. New devices may be added afterwards (re-finalizes).
  void finalize();
  bool finalized() const { return finalized_; }

  /// Human-readable netlist summary (device name, type-agnostic terminals).
  std::string summary() const;

 private:
  void register_device(std::unique_ptr<Device> dev);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, Device*> device_index_;
  std::vector<Device*> linear_;
  std::vector<Device*> nonlinear_;
  int num_aux_ = 0;
  std::uint64_t plan_version_ = 0;
  bool finalized_ = false;
};

}  // namespace sfc::spice
