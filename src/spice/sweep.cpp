#include "spice/sweep.hpp"

#include <cassert>
#include <cmath>

#include "trace/trace.hpp"

namespace sfc::spice {

std::vector<double> linspace_step(double lo, double hi, double step) {
  assert(step > 0.0);
  std::vector<double> values;
  const auto count = static_cast<std::size_t>(std::floor((hi - lo) / step + 1e-9)) + 1;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(lo + static_cast<double>(i) * step);
  }
  if (!values.empty() && std::fabs(values.back() - hi) > step * 1e-6) {
    values.push_back(hi);
  }
  return values;
}

std::vector<double> linspace_count(double lo, double hi, std::size_t n) {
  assert(n >= 2);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return values;
}

namespace {

/// Continuation sweeps warm-start each point from the previous solution,
/// making point k depend on point k-1: a strictly serial recurrence on
/// the original circuit (exactly the historical dc_sweep behaviour).
std::vector<SweepPoint> run_continuation_sweep(Circuit& circuit,
                                               const SweepSpec& spec,
                                               sfc::exec::JobReport* report) {
  Engine engine(circuit, spec.temperature_c);
  std::vector<SweepPoint> points;
  points.reserve(spec.values.size());
  sfc::exec::JobReport job;
  job.tasks = spec.values.size();
  job.task_ms.assign(spec.values.size(), 0.0);
  const auto job_t0 = sfc::exec::detail::Clock::now();
  std::vector<double> warm;
  for (std::size_t i = 0; i < spec.values.size(); ++i) {
    const double value = spec.values[i];
    const auto t0 = sfc::exec::detail::Clock::now();
    if (spec.apply) spec.apply(circuit, value);
    SweepPoint p;
    p.value = value;
    p.op = engine.dc_operating_point(spec.options,
                                     warm.empty() ? nullptr : &warm);
    if (p.op.converged) {
      warm = p.op.x;
      ++job.converged;
    } else {
      ++job.failed;
    }
    job.task_ms[i] = sfc::exec::detail::ms_since(t0);
    points.push_back(std::move(p));
  }
  job.wall_ms = sfc::exec::detail::ms_since(job_t0);
  if (report) *report = std::move(job);
  return points;
}

}  // namespace

std::vector<SweepPoint> run_sweep(Circuit& circuit, const SweepSpec& spec,
                                  const sfc::exec::ExecPolicy& exec,
                                  sfc::exec::JobReport* report) {
  SFC_TRACE_SPAN("spice.run_sweep");
  SFC_TRACE_COUNT("spice.sweep.points", spec.values.size());
  if (spec.continuation) {
    return run_continuation_sweep(circuit, spec, report);
  }
  // Independent points: every point solves a private clone — also in the
  // serial case, so the result never depends on the thread count (device
  // state mutated by one solve cannot leak into another point).
  sfc::exec::JobReport job;
  auto points = sfc::exec::parallel_map(
      exec, spec.values.size(),
      [&](std::size_t i) {
        const double value = spec.values[i];
        Circuit local = circuit.clone();
        double temperature = spec.temperature_c;
        if (spec.apply) {
          spec.apply(local, value);
        } else {
          temperature = value;  // temperature sweep
        }
        Engine engine(local, temperature);
        SweepPoint p;
        p.value = value;
        p.op = engine.dc_operating_point(spec.options);
        return p;
      },
      &job);
  // Re-count convergence from the solver outcome (parallel_map's functor
  // returns a value, so every completed task counted as "converged").
  job.converged = 0;
  job.failed = 0;
  for (const auto& p : points) {
    if (p.op.converged) {
      ++job.converged;
    } else {
      ++job.failed;
    }
  }
  if (report) *report = std::move(job);
  return points;
}

}  // namespace sfc::spice
