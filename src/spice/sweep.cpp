#include "spice/sweep.hpp"

#include <cassert>
#include <cmath>

namespace sfc::spice {

std::vector<double> linspace_step(double lo, double hi, double step) {
  assert(step > 0.0);
  std::vector<double> values;
  const auto count = static_cast<std::size_t>(std::floor((hi - lo) / step + 1e-9)) + 1;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(lo + static_cast<double>(i) * step);
  }
  if (!values.empty() && std::fabs(values.back() - hi) > step * 1e-6) {
    values.push_back(hi);
  }
  return values;
}

std::vector<double> linspace_count(double lo, double hi, std::size_t n) {
  assert(n >= 2);
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
  }
  return values;
}

std::vector<SweepPoint> dc_sweep(Circuit& circuit,
                                 const std::vector<double>& values,
                                 const std::function<void(double)>& apply,
                                 double temperature_c,
                                 const NewtonOptions& options) {
  Engine engine(circuit, temperature_c);
  std::vector<SweepPoint> points;
  points.reserve(values.size());
  std::vector<double> warm;
  for (double value : values) {
    apply(value);
    SweepPoint p;
    p.value = value;
    p.op = engine.dc_operating_point(options, warm.empty() ? nullptr : &warm);
    if (p.op.converged) warm = p.op.x;
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<SweepPoint> dc_sweep_vsource(Circuit& circuit, VSource& source,
                                         double lo, double hi, double step,
                                         double temperature_c,
                                         const NewtonOptions& options) {
  return dc_sweep(
      circuit, linspace_step(lo, hi, step),
      [&source](double v) { source.set_dc(v); }, temperature_c, options);
}

std::vector<SweepPoint> temperature_sweep(Circuit& circuit,
                                          const std::vector<double>& temps_c,
                                          const NewtonOptions& options) {
  std::vector<SweepPoint> points;
  points.reserve(temps_c.size());
  for (double t : temps_c) {
    Engine engine(circuit, t);
    SweepPoint p;
    p.value = t;
    p.op = engine.dc_operating_point(options);
    points.push_back(std::move(p));
  }
  return points;
}

}  // namespace sfc::spice
