// Simulation engine: Newton-Raphson DC operating point (with damping and
// gmin stepping) and fixed/breakpoint-aware transient analysis with energy
// accounting. This is the stand-in for the commercial simulator the paper
// used (Cadence Spectre); see DESIGN.md for the substitution rationale.
#pragma once

#include <vector>

#include "spice/circuit.hpp"
#include "spice/results.hpp"

namespace sfc::spice {

struct NewtonOptions {
  int max_iterations = 200;
  /// Absolute voltage tolerance [V].
  double vtol = 1e-9;
  /// Relative tolerance on solution components.
  double reltol = 1e-6;
  /// Per-iteration clamp on any voltage update [V] (damping for
  /// exponential devices).
  double max_update_voltage = 0.3;
  /// gmin used on every node when the plain solve succeeds.
  double gmin_final = 1e-12;
  /// Starting gmin for the stepping fallback.
  double gmin_start = 1e-3;
  /// gmin reduction factor per stepping stage.
  double gmin_step_factor = 10.0;
};

struct TransientOptions {
  /// Nominal time step [s]. The engine shortens steps to hit waveform
  /// breakpoints and halves them on Newton failure.
  double dt = 1e-11;
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  NewtonOptions newton;
  /// Maximum number of step halvings before giving up on a step.
  int max_step_retries = 12;
  /// Record waveforms (disable for energy-only runs to save memory).
  bool record_waveforms = true;

  /// Iteration-count adaptive stepping: when a step converges quickly the
  /// next step grows (up to dt_max); a hard-fought step shrinks the next
  /// one. Breakpoints and failure-halving behave as in fixed-step mode,
  /// so waveform corners are never skipped.
  bool adaptive = false;
  double dt_max = 0.0;          ///< 0 = 16x the nominal dt
  int grow_below_iterations = 4;
  int shrink_above_iterations = 9;
  double grow_factor = 1.4;
  double shrink_factor = 0.6;
};

class Engine {
 public:
  /// The engine mutates device state during transient runs; the circuit
  /// must outlive the engine.
  Engine(Circuit& circuit, double temperature_c);

  double temperature_c() const { return temperature_c_; }
  void set_temperature_c(double t) { temperature_c_ = t; }

  /// Initial guess for a node used by the next DC solve (helps Newton on
  /// high-gain feedback circuits).
  void set_node_guess(const std::string& node, double volts);
  void clear_node_guesses();

  /// DC operating point at the engine temperature. Sources are evaluated
  /// at t = 0. `warm_start` (optional) seeds Newton with a previous
  /// solution — the continuation trick used by DC sweeps.
  DcResult dc_operating_point(const NewtonOptions& options = {},
                              const std::vector<double>* warm_start = nullptr);

  /// Transient from t = 0 to t_stop. Performs a DC operating point first
  /// (sources at t = 0) unless `initial_x` is supplied.
  TransientResult transient(double t_stop, const TransientOptions& options);

  /// AC small-signal sweep: solve the DC operating point, then
  /// (G + jwC) x = b at every frequency. Excite exactly one source via
  /// VSource::set_ac_magnitude before calling.
  AcResult ac(const std::vector<double>& frequencies_hz,
              const NewtonOptions& options = {});

 private:
  /// One Newton solve of the system at the given context. `x` is the
  /// initial guess on entry and the solution on success.
  bool newton_solve(const SimContext& ctx, std::vector<double>& x,
                    const NewtonOptions& options, int* iterations_out);

  /// Assemble A, b at iterate x.
  void assemble(const SimContext& ctx, const std::vector<double>& x,
                DenseMatrix& a, std::vector<double>& b) const;

  std::vector<double> initial_vector() const;
  std::vector<std::string> signal_names() const;
  std::vector<double> breakpoints(double t_stop) const;

  Circuit& circuit_;
  double temperature_c_;
  std::vector<std::pair<std::string, double>> node_guesses_;
};

/// Logarithmic frequency grid for AC sweeps: f_start..f_stop inclusive.
std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       int points_per_decade);

}  // namespace sfc::spice
