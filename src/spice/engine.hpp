// Simulation engine: Newton-Raphson DC operating point (with damping and
// gmin stepping) and fixed/breakpoint-aware transient analysis with energy
// accounting. This is the stand-in for the commercial simulator the paper
// used (Cadence Spectre); see DESIGN.md for the substitution rationale.
#pragma once

#include <functional>
#include <vector>

#include "spice/circuit.hpp"
#include "spice/results.hpp"

namespace sfc::spice {

struct NewtonOptions {
  int max_iterations = 200;
  /// Absolute voltage tolerance [V].
  double vtol = 1e-9;
  /// Relative tolerance on solution components.
  double reltol = 1e-6;
  /// Per-iteration clamp on any voltage update [V] (damping for
  /// exponential devices).
  double max_update_voltage = 0.3;
  /// gmin used on every node when the plain solve succeeds.
  double gmin_final = 1e-12;
  /// Starting gmin for the stepping fallback.
  double gmin_start = 1e-3;
  /// gmin reduction factor per stepping stage.
  double gmin_step_factor = 10.0;

  // --- solver hot path (see DESIGN.md "Solver hot path") -------------
  /// Assemble through the compiled stamp plan: linear devices + gmin are
  /// stamped once per solve into a cached baseline, each Newton iteration
  /// restores the baseline with a memcpy and restamps only the nonlinear
  /// devices, and all solver buffers live in a per-Engine workspace (no
  /// per-iteration heap allocation). Off = the legacy full-restamp path,
  /// kept for A/B validation. Both paths are bit-identical.
  bool use_stamp_plan = true;
  /// Replay the compiled sparse elimination schedule from the first full
  /// factorization on later iterations/steps. Each step runs the exact
  /// partial-pivot search restricted to the compiled candidate rows (the
  /// only rows that can be nonzero in that column), so results stay
  /// bit-identical to full pivoting; a pivot that moved or degraded past
  /// `pivot_degradation` is simply re-recorded (the schedule is
  /// pivot-robust). Only active with use_stamp_plan.
  bool reuse_pivot_order = true;
  /// A pivot whose magnitude drops below this fraction of its value at
  /// freeze time counts as drift (re-recorded; see LuPlan).
  double pivot_degradation = 1e-6;
};

/// Reusable per-Engine solver buffers: the Newton system, the cached
/// linear baseline, the structural stamp pattern and the compiled LU
/// plan. Sized lazily on first use and invalidated when the system size,
/// analysis mode, or circuit plan version changes.
struct SolverWorkspace {
  DenseMatrix a;              ///< working matrix, factored in place
  DenseMatrix a_base;         ///< linear stamps + gmin baseline
  std::vector<double> b;      ///< working RHS
  std::vector<double> b_base; ///< linear-stamp RHS baseline
  std::vector<double> x_new;  ///< solve target / Newton update
  std::vector<char> pattern;  ///< structural nonzeros (row-major flags)
  LuPlan plan;
  std::size_t size = 0;
  AnalysisMode mode = AnalysisMode::kDcOperatingPoint;
  std::uint64_t plan_version = 0;
  bool pattern_valid = false;
};

struct TransientOptions {
  /// Nominal time step [s]. The engine shortens steps to hit waveform
  /// breakpoints and halves them on Newton failure.
  double dt = 1e-11;
  IntegrationMethod method = IntegrationMethod::kTrapezoidal;
  NewtonOptions newton;
  /// Maximum number of step halvings before giving up on a step.
  int max_step_retries = 12;
  /// Record waveforms (disable for energy-only runs to save memory).
  bool record_waveforms = true;

  /// Iteration-count adaptive stepping: when a step converges quickly the
  /// next step grows (up to dt_max); a hard-fought step shrinks the next
  /// one. Breakpoints and failure-halving behave as in fixed-step mode,
  /// so waveform corners are never skipped.
  bool adaptive = false;
  double dt_max = 0.0;          ///< 0 = 16x the nominal dt
  int grow_below_iterations = 4;
  int shrink_above_iterations = 9;
  double grow_factor = 1.4;
  double shrink_factor = 0.6;
};

class Engine {
 public:
  /// The engine mutates device state during transient runs; the circuit
  /// must outlive the engine.
  Engine(Circuit& circuit, double temperature_c);

  double temperature_c() const { return temperature_c_; }
  void set_temperature_c(double t) { temperature_c_ = t; }

  /// Initial guess for a node used by the next DC solve (helps Newton on
  /// high-gain feedback circuits).
  void set_node_guess(const std::string& node, double volts);
  void clear_node_guesses();

  /// Opt-in pre-flight gate: `check` runs once against the finalized
  /// circuit before the next analysis (DC / transient / AC) and may throw
  /// to reject it. lint::install_preflight wires the static ERC rules in
  /// here so library users get the same screening as the sfc_lint CLI —
  /// a malformed circuit fails with structured diagnostics instead of a
  /// cryptic singular-matrix error deep inside Newton. Passing nullptr
  /// removes the gate; installing a check (re)arms it.
  using PreflightCheck = std::function<void(const Circuit&)>;
  void set_preflight(PreflightCheck check);

  /// DC operating point at the engine temperature. Sources are evaluated
  /// at t = 0. `warm_start` (optional) seeds Newton with a previous
  /// solution — the continuation trick used by DC sweeps.
  DcResult dc_operating_point(const NewtonOptions& options = {},
                              const std::vector<double>* warm_start = nullptr);

  /// Transient from t = 0 to t_stop. Performs a DC operating point first
  /// (sources at t = 0) unless `initial_x` is supplied.
  TransientResult transient(double t_stop, const TransientOptions& options);

  /// AC small-signal sweep: solve the DC operating point, then
  /// (G + jwC) x = b at every frequency. Excite exactly one source via
  /// VSource::set_ac_magnitude before calling.
  AcResult ac(const std::vector<double>& frequencies_hz,
              const NewtonOptions& options = {});

  /// One Newton solve of the system at the given context. `x` is the
  /// initial guess on entry and the solution on success. Public so tests
  /// and benchmarks can exercise the hot path directly; most callers want
  /// dc_operating_point()/transient().
  bool newton_solve(const SimContext& ctx, std::vector<double>& x,
                    const NewtonOptions& options, int* iterations_out);

  /// Hot-path workspace for the given analysis mode (diagnostics:
  /// compiled-plan inspection in tests). One workspace per mode so the
  /// DC phase of every transient doesn't wipe the transient plan.
  const SolverWorkspace& workspace(
      AnalysisMode mode = AnalysisMode::kDcOperatingPoint) const {
    return workspaces_[static_cast<int>(mode)];
  }

 private:
  /// Assemble A, b at iterate x (legacy full-restamp path). Stamp order —
  /// linear devices, gmin, nonlinear devices — matches the stamp-plan
  /// path exactly so both produce bit-identical matrices.
  void assemble(const SimContext& ctx, const std::vector<double>& x,
                DenseMatrix& a, std::vector<double>& b) const;

  /// Damped Newton update x += clamp(x_new - x); returns true when the
  /// step is within tolerances (shared by both assembly paths).
  bool apply_update(std::vector<double>& x, const std::vector<double>& x_new,
                    const NewtonOptions& options) const;

  bool newton_solve_legacy(const SimContext& ctx, std::vector<double>& x,
                           const NewtonOptions& options, int* iterations_out);

  /// Stamp-plan assembly path (see NewtonOptions::use_stamp_plan).
  bool newton_solve_plan(const SimContext& ctx, std::vector<double>& x,
                         const NewtonOptions& options, int* iterations_out);

  /// (Re)size workspace buffers and drop stale pattern/plan state.
  void prepare_workspace(const SimContext& ctx);

  std::vector<double> initial_vector() const;
  std::vector<std::string> signal_names() const;
  std::vector<double> breakpoints(double t_stop) const;

  /// Run the armed preflight check (if any) exactly once.
  void run_preflight();

  Circuit& circuit_;
  double temperature_c_;
  PreflightCheck preflight_;
  bool preflight_done_ = false;
  std::vector<std::pair<std::string, double>> node_guesses_;
  /// Indexed by AnalysisMode (DC and transient stamp patterns differ).
  SolverWorkspace workspaces_[2];
};

/// Logarithmic frequency grid for AC sweeps: f_start..f_stop inclusive.
std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       int points_per_decade);

}  // namespace sfc::spice
