#include "spice/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <deque>
#include <map>
#include <sstream>
#include <stdexcept>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "fefet/fefet.hpp"
#include "spice/primitives.hpp"

namespace sfc::spice {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
  throw NetlistError("parse-error", line_no, msg);
}

[[noreturn]] void fail_rule(const char* rule, std::size_t line_no,
                            const std::string& msg) {
  throw NetlistError(rule, line_no, msg);
}

/// Split a card into tokens; '(' ')' ',' become separators but '=' is
/// kept so key=value pairs survive as "key" "=" "value".
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string current;
  auto push = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == ',') {
      push();
    } else if (c == '=') {
      push();
      tokens.emplace_back("=");
    } else {
      current += c;
    }
  }
  push();
  return tokens;
}

/// key=value map from tokens[start..]; non-kv tokens are appended to
/// `positional`.
std::map<std::string, std::string> keyvalues(
    const std::vector<std::string>& tokens, std::size_t start,
    std::vector<std::string>& positional) {
  std::map<std::string, std::string> kv;
  std::size_t i = start;
  while (i < tokens.size()) {
    if (i + 1 < tokens.size() && tokens[i + 1] == "=") {
      if (i + 2 >= tokens.size()) return kv;
      kv[lower(tokens[i])] = tokens[i + 2];
      i += 3;
    } else {
      positional.push_back(tokens[i]);
      ++i;
    }
  }
  return kv;
}

/// How many leading tokens (after the device name) are node names, per
/// card letter. X cards are handled separately.
int node_token_count(char card) {
  switch (card) {
    case 'r':
    case 'c':
    case 'l':
    case 'v':
    case 'i':
    case 'd':
      return 2;
    case 's':
    case 'm':
    case 'z':
      return 3;
    case 'g':
    case 'e':
      return 4;
    default:
      return 0;
  }
}

bool is_ground_token(const std::string& t) {
  const std::string l = lower(t);
  return l == "0" || l == "gnd" || l == "vss";
}

struct Subckt {
  std::vector<std::string> ports;
  std::vector<std::pair<std::string, std::size_t>> body;  // line, line_no
};

}  // namespace

double parse_spice_number(const std::string& token) {
  const std::string t = lower(token);
  std::size_t pos = 0;
  double value;
  try {
    value = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw std::runtime_error("not a number: '" + token + "'");
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix[0]) {
    case 'a': return value * 1e-18;
    case 'f': return value * 1e-15;
    case 'p': return value * 1e-12;
    case 'n': return value * 1e-9;
    case 'u': return value * 1e-6;
    case 'm': return value * 1e-3;
    case 'k': return value * 1e3;
    case 'g': return value * 1e9;
    case 't': return value * 1e12;
    default:
      throw std::runtime_error("unknown suffix on '" + token + "'");
  }
}

namespace {

/// Parse a source stimulus starting at tokens[i]. Grammar:
///   <number> | dc <number> | pulse v1 v2 td tr tf pw per |
///   pwl t1 v1 t2 v2 ... | sin off amp freq [td]
Waveform parse_stimulus(const std::vector<std::string>& tokens, std::size_t i,
                        std::size_t line_no) {
  if (i >= tokens.size()) fail(line_no, "missing source value");
  const std::string kind = lower(tokens[i]);
  auto num = [&](std::size_t k) {
    if (k >= tokens.size()) fail(line_no, "missing stimulus parameter");
    return parse_spice_number(tokens[k]);
  };
  if (kind == "dc") return Waveform::dc(num(i + 1));
  if (kind == "pulse") {
    if (i + 7 >= tokens.size()) fail(line_no, "PULSE needs 7 parameters");
    return Waveform::pulse(num(i + 1), num(i + 2), num(i + 3), num(i + 4),
                           num(i + 5), num(i + 6), num(i + 7));
  }
  if (kind == "pwl") {
    std::vector<std::pair<double, double>> pts;
    for (std::size_t k = i + 1; k < tokens.size(); k += 2) {
      if (k + 1 >= tokens.size()) fail(line_no, "PWL needs time/value pairs");
      pts.emplace_back(num(k), num(k + 1));
    }
    if (pts.empty()) fail(line_no, "PWL needs at least one point");
    return Waveform::pwl(std::move(pts));
  }
  if (kind == "sin") {
    if (i + 3 >= tokens.size()) fail(line_no, "SIN needs >= 3 parameters");
    const double delay = (i + 4 < tokens.size()) ? num(i + 4) : 0.0;
    return Waveform::sine(num(i + 1), num(i + 2), num(i + 3), delay);
  }
  return Waveform::dc(num(i));
}

}  // namespace

NetlistDeck parse_netlist(const std::string& text, Circuit& circuit) {
  NetlistDeck deck;
  std::map<std::string, devices::MosfetParams> models;
  std::map<std::string, std::size_t> model_index;  // name -> deck.models slot
  std::map<std::string, Subckt> subckts;
  std::map<std::string, std::size_t> subckt_lines;
  // First-definition line of every device card seen (including X instance
  // names). Name redefinition is a hard error reporting both lines.
  std::map<std::string, std::size_t> device_lines;

  // Queue of pending lines; subcircuit expansion pushes to the front.
  std::deque<std::pair<std::string, std::size_t>> queue;
  {
    std::istringstream stream(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(stream, line)) {
      ++line_no;
      queue.emplace_back(line, line_no);
    }
  }

  bool ended = false;
  while (!queue.empty() && !ended) {
    auto [line, line_no] = queue.front();
    queue.pop_front();

    const std::size_t semi = line.find(';');
    if (semi != std::string::npos) line = line.substr(0, semi);
    std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0][0] == '*') continue;
    const std::string head = lower(tokens[0]);

    auto node = [&](std::size_t i) {
      if (i >= tokens.size()) fail(line_no, "missing node");
      return circuit.node(tokens[i]);
    };
    auto num = [&](std::size_t i) {
      if (i >= tokens.size()) fail(line_no, "missing value");
      try {
        return parse_spice_number(tokens[i]);
      } catch (const std::exception& e) {
        fail(line_no, e.what());
      }
    };

    if (head[0] == '.') {
      if (head == ".end") {
        ended = true;
      } else if (head == ".temp") {
        deck.temperature_c = num(1);
        deck.has_temperature = true;
        deck.temperature_line = line_no;
      } else if (head == ".tran") {
        TranDirective tr;
        tr.dt = num(1);
        tr.t_stop = num(2);
        tr.line = line_no;
        deck.tran.push_back(tr);
      } else if (head == ".dc") {
        if (tokens.size() < 5) fail(line_no, ".dc needs source start stop step");
        DcSweepDirective dc;
        dc.source = tokens[1];
        dc.start = num(2);
        dc.stop = num(3);
        dc.step = num(4);
        dc.line = line_no;
        deck.dc.push_back(dc);
      } else if (head == ".ac") {
        if (tokens.size() < 4) fail(line_no, ".ac needs points fstart fstop");
        AcDirective ac;
        ac.points_per_decade = static_cast<int>(num(1));
        ac.f_start = num(2);
        ac.f_stop = num(3);
        ac.line = line_no;
        deck.ac.push_back(ac);
      } else if (head == ".subckt") {
        if (tokens.size() < 3) fail(line_no, ".subckt needs name and ports");
        Subckt sub;
        const std::string sub_name = lower(tokens[1]);
        if (auto prev = subckt_lines.find(sub_name);
            prev != subckt_lines.end()) {
          fail_rule("duplicate-subckt", line_no,
                    "subcircuit '" + tokens[1] +
                        "' redefined (previous definition at line " +
                        std::to_string(prev->second) + ")");
        }
        subckt_lines.emplace(sub_name, line_no);
        for (std::size_t i = 2; i < tokens.size(); ++i) {
          sub.ports.push_back(tokens[i]);
        }
        // Capture the body until .ends.
        bool closed = false;
        while (!queue.empty()) {
          auto [body_line, body_no] = queue.front();
          queue.pop_front();
          const auto body_tokens = tokenize(body_line);
          if (!body_tokens.empty() &&
              lower(body_tokens[0]) == ".ends") {
            closed = true;
            break;
          }
          sub.body.emplace_back(body_line, body_no);
        }
        if (!closed) fail(line_no, ".subckt without matching .ends");
        subckts[sub_name] = std::move(sub);
      } else if (head == ".ends") {
        fail(line_no, ".ends without .subckt");
      } else if (head == ".model") {
        if (tokens.size() < 3) fail(line_no, ".model needs name and type");
        const std::string model_name = lower(tokens[1]);
        if (auto prev = model_index.find(model_name);
            prev != model_index.end()) {
          fail_rule("duplicate-model", line_no,
                    "model '" + tokens[1] +
                        "' redefined (previous definition at line " +
                        std::to_string(deck.models[prev->second].line) + ")");
        }
        const std::string type = lower(tokens[2]);
        devices::MosfetParams p;
        if (type == "nmos") {
          p = devices::MosfetParams::finfet14_nmos();
        } else if (type == "pmos") {
          p = devices::MosfetParams::finfet14_pmos();
        } else {
          fail(line_no, "unknown model type '" + type + "'");
        }
        std::vector<std::string> positional;
        auto kv = keyvalues(tokens, 3, positional);
        for (const auto& [key, value] : kv) {
          const double v = parse_spice_number(value);
          if (key == "vth0") p.vth0 = v;
          else if (key == "n") p.n_factor = v;
          else if (key == "mu0") p.mu0 = v;
          else if (key == "cox") p.cox = v;
          else if (key == "lambda") p.lambda = v;
          else if (key == "tcvth") p.tc_vth = v;
          else if (key == "muexp") p.mu_exponent = v;
          else if (key == "tnom") p.t_nominal_c = v;
          else if (key == "w") p.w = v;
          else if (key == "l") p.l = v;
          else fail(line_no, "unknown model parameter '" + key + "'");
        }
        models[model_name] = p;
        model_index.emplace(model_name, deck.models.size());
        deck.models.push_back(ModelDef{model_name, line_no, 0});
      } else {
        fail_rule("unknown-directive", line_no,
                  "unknown directive '" + head + "'");
      }
      continue;
    }

    const std::string name = tokens[0];
    const char card = static_cast<char>(std::tolower(
        static_cast<unsigned char>(head[0])));

    // Redefining a device name is a hard error naming both lines
    // (historically some paths silently let the last definition win).
    if (auto prev = device_lines.find(name); prev != device_lines.end()) {
      fail_rule("duplicate-device", line_no,
                "device '" + name +
                    "' redefined (previous definition at line " +
                    std::to_string(prev->second) + ")");
    }
    if (circuit.find(name) != nullptr) {
      fail_rule("duplicate-device", line_no,
                "device '" + name +
                    "' already exists in the target circuit "
                    "(defined before parsing)");
    }
    device_lines.emplace(name, line_no);

    if (card == 'x') {
      // Subcircuit instance: X<name> node... <subckt>.
      if (tokens.size() < 2) fail(line_no, "X card needs nodes and subckt");
      const std::string sub_name = lower(tokens.back());
      auto it = subckts.find(sub_name);
      if (it == subckts.end()) {
        fail_rule("undefined-subckt", line_no,
                  "unknown subcircuit '" + tokens.back() + "'");
      }
      const Subckt& sub = it->second;
      const std::size_t n_nodes = tokens.size() - 2;
      if (n_nodes != sub.ports.size()) {
        fail_rule("subckt-port-mismatch", line_no,
                  "subcircuit '" + sub_name + "' expects " +
                      std::to_string(sub.ports.size()) + " nodes, got " +
                      std::to_string(n_nodes));
      }
      std::map<std::string, std::string> port_map;
      for (std::size_t i = 0; i < sub.ports.size(); ++i) {
        port_map[lower(sub.ports[i])] = tokens[i + 1];
      }
      auto map_node = [&](const std::string& t) {
        if (is_ground_token(t)) return t;
        auto pit = port_map.find(lower(t));
        if (pit != port_map.end()) return pit->second;
        return t + ":" + name;  // internal node, made instance-unique
      };
      // Expand body lines (prefixed names, mapped nodes) to the front of
      // the queue, preserving order.
      std::vector<std::pair<std::string, std::size_t>> expanded;
      for (const auto& [body_line, body_no] : sub.body) {
        auto body_tokens = tokenize(body_line);
        if (body_tokens.empty() || body_tokens[0][0] == '*') continue;
        const char body_card = static_cast<char>(std::tolower(
            static_cast<unsigned char>(body_tokens[0][0])));
        if (body_tokens[0][0] == '.') {
          fail(body_no, "directives are not allowed inside .subckt");
        }
        body_tokens[0] += ":" + name;  // unique device name, card letter kept
        int n_map = node_token_count(body_card);
        if (body_card == 'x') {
          n_map = static_cast<int>(body_tokens.size()) - 2;
        }
        for (int i = 1; i <= n_map && static_cast<std::size_t>(i) < body_tokens.size(); ++i) {
          body_tokens[static_cast<std::size_t>(i)] =
              map_node(body_tokens[static_cast<std::size_t>(i)]);
        }
        std::string rebuilt;
        for (std::size_t i = 0; i < body_tokens.size(); ++i) {
          if (i) rebuilt += ' ';
          // Restore key=value grouping (tokenizer split on '=').
          rebuilt += body_tokens[i];
        }
        expanded.emplace_back(rebuilt, body_no);
      }
      for (auto rit = expanded.rbegin(); rit != expanded.rend(); ++rit) {
        queue.push_front(*rit);
      }
      continue;
    }

    try {
    switch (card) {
      case 'r':
        circuit.add<Resistor>(name, node(1), node(2), num(3));
        break;
      case 'c': {
        std::vector<std::string> positional;
        auto kv = keyvalues(tokens, 4, positional);
        double ic = Capacitor::kNoIc;
        if (auto it = kv.find("ic"); it != kv.end()) {
          ic = parse_spice_number(it->second);
        }
        circuit.add<Capacitor>(name, node(1), node(2), num(3), ic);
        break;
      }
      case 'l':
        circuit.add<Inductor>(name, node(1), node(2), num(3));
        break;
      case 'v':
        circuit.add<VSource>(name, node(1), node(2),
                             parse_stimulus(tokens, 3, line_no));
        break;
      case 'i':
        circuit.add<ISource>(name, node(1), node(2),
                             parse_stimulus(tokens, 3, line_no));
        break;
      case 's': {
        std::vector<std::string> positional;
        auto kv = keyvalues(tokens, 4, positional);
        VSwitch::Params p;
        if (auto it = kv.find("ron"); it != kv.end()) p.r_on = parse_spice_number(it->second);
        if (auto it = kv.find("roff"); it != kv.end()) p.r_off = parse_spice_number(it->second);
        if (auto it = kv.find("vt"); it != kv.end()) p.v_threshold = parse_spice_number(it->second);
        if (auto it = kv.find("vw"); it != kv.end()) p.v_width = parse_spice_number(it->second);
        circuit.add<VSwitch>(name, node(1), node(2), node(3), p);
        break;
      }
      case 'm': {
        if (tokens.size() < 5) fail(line_no, "MOSFET needs d g s model");
        const std::string model_name = lower(tokens[4]);
        devices::MosfetParams p;
        if (auto it = models.find(model_name); it != models.end()) {
          p = it->second;
          ++deck.models[model_index.at(model_name)].uses;
        } else if (model_name == "nmos") {
          p = devices::MosfetParams::finfet14_nmos();
        } else if (model_name == "pmos") {
          p = devices::MosfetParams::finfet14_pmos();
        } else {
          fail_rule("undefined-model", line_no,
                    "unknown model '" + model_name + "'");
        }
        std::vector<std::string> positional;
        auto kv = keyvalues(tokens, 5, positional);
        if (auto it = kv.find("w"); it != kv.end()) p.w = parse_spice_number(it->second);
        if (auto it = kv.find("l"); it != kv.end()) p.l = parse_spice_number(it->second);
        circuit.add<devices::Mosfet>(name, node(1), node(2), node(3), p);
        break;
      }
      case 'g':
        // VCCS: G<name> out+ out- ctrl+ ctrl- gm
        circuit.add<Vccs>(name, node(1), node(2), node(3), node(4), num(5));
        break;
      case 'e':
        // VCVS: E<name> out+ out- ctrl+ ctrl- gain
        circuit.add<Vcvs>(name, node(1), node(2), node(3), node(4), num(5));
        break;
      case 'd': {
        std::vector<std::string> positional;
        auto kv = keyvalues(tokens, 3, positional);
        devices::DiodeParams p;
        if (auto it = kv.find("is"); it != kv.end()) p.i_sat = parse_spice_number(it->second);
        if (auto it = kv.find("n"); it != kv.end()) p.emission = parse_spice_number(it->second);
        circuit.add<devices::Diode>(name, node(1), node(2), p);
        break;
      }
      case 'z': {
        // FeFET: Z<name> d g s [state=] [vthlow=] [vthhigh=] [w=] [l=].
        std::vector<std::string> positional;
        auto kv = keyvalues(tokens, 4, positional);
        fefet::FeFetParams p = fefet::FeFetParams::reference();
        if (auto it = kv.find("vthlow"); it != kv.end()) {
          p.ferroelectric.vth_low = parse_spice_number(it->second);
        }
        if (auto it = kv.find("vthhigh"); it != kv.end()) {
          p.ferroelectric.vth_high = parse_spice_number(it->second);
        }
        if (auto it = kv.find("w"); it != kv.end()) p.channel.w = parse_spice_number(it->second);
        if (auto it = kv.find("l"); it != kv.end()) p.channel.l = parse_spice_number(it->second);
        if (p.ferroelectric.vth_low >= p.ferroelectric.vth_high) {
          fail_rule("fefet-vth-window", line_no,
                    "FeFET '" + name + "' has vthlow >= vthhigh: the memory "
                    "window is empty or inverted");
        }
        auto& dev = circuit.add<fefet::FeFet>(name, node(1), node(2), node(3), p);
        if (auto it = kv.find("state"); it != kv.end()) {
          dev.ferroelectric().set_polarization(
              parse_spice_number(it->second) > 0.5 ? 1.0 : -1.0);
        }
        break;
      }
      default:
        fail_rule("unknown-card", line_no, "unknown card '" + name + "'");
    }
    } catch (const NetlistError&) {
      throw;
    } catch (const std::invalid_argument& e) {
      // Device constructors validate their values (non-positive R/C/L...);
      // re-attach the source line they cannot know about.
      fail_rule("nonpositive-value", line_no, e.what());
    } catch (const std::runtime_error& e) {
      fail(line_no, e.what());
    }
    if (Device* dev = circuit.find(name)) dev->set_source_line(line_no);
  }
  return deck;
}

}  // namespace sfc::spice
