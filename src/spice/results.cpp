#include "spice/results.hpp"

#include <algorithm>
#include <cassert>

#include "util/interp.hpp"

namespace sfc::spice {

double DcResult::voltage(const std::string& node) const {
  if (node == "0" || node == "gnd") return 0.0;
  auto it = voltages.find(node);
  if (it == voltages.end()) {
    throw std::out_of_range("DcResult: unknown node '" + node + "'");
  }
  return it->second;
}

double DcResult::current(const std::string& device) const {
  auto it = currents.find("I(" + device + ")");
  if (it == currents.end()) {
    throw std::out_of_range("DcResult: no branch current for '" + device +
                            "'");
  }
  return it->second;
}

void AcResult::set_signal_names(std::vector<std::string> names) {
  names_ = std::move(names);
  name_index_.clear();
  for (std::size_t i = 0; i < names_.size(); ++i) name_index_[names_[i]] = i;
  data_.assign(names_.size(), {});
}

void AcResult::append_point(double freq_hz,
                            const std::vector<std::complex<double>>& x) {
  assert(x.size() == names_.size());
  freqs_.push_back(freq_hz);
  for (std::size_t i = 0; i < x.size(); ++i) data_[i].push_back(x[i]);
}

std::size_t AcResult::index_of(const std::string& signal) const {
  auto it = name_index_.find(signal);
  if (it == name_index_.end()) {
    throw std::out_of_range("AcResult: unknown signal '" + signal + "'");
  }
  return it->second;
}

std::complex<double> AcResult::value(const std::string& signal,
                                     std::size_t idx) const {
  return data_[index_of(signal)].at(idx);
}

double AcResult::magnitude(const std::string& signal, std::size_t idx) const {
  return std::abs(value(signal, idx));
}

double AcResult::magnitude_db(const std::string& signal,
                              std::size_t idx) const {
  const double mag = magnitude(signal, idx);
  if (mag <= 0.0) return -400.0;
  return 20.0 * std::log10(mag);
}

double AcResult::phase_deg(const std::string& signal, std::size_t idx) const {
  return std::arg(value(signal, idx)) * 180.0 / M_PI;
}

double AcResult::bandwidth_3db(const std::string& signal) const {
  if (freqs_.empty()) return 0.0;
  const double ref_db = magnitude_db(signal, 0);
  for (std::size_t i = 1; i < freqs_.size(); ++i) {
    if (magnitude_db(signal, i) <= ref_db - 3.0) {
      // Log-interpolate the crossing between i-1 and i.
      const double d0 = magnitude_db(signal, i - 1) - (ref_db - 3.0);
      const double d1 = magnitude_db(signal, i) - (ref_db - 3.0);
      const double t = d0 / (d0 - d1);
      return freqs_[i - 1] * std::pow(freqs_[i] / freqs_[i - 1], t);
    }
  }
  return 0.0;
}

void TransientResult::set_signal_names(std::vector<std::string> names) {
  names_ = std::move(names);
  name_index_.clear();
  for (std::size_t i = 0; i < names_.size(); ++i) name_index_[names_[i]] = i;
  data_.assign(names_.size(), {});
}

void TransientResult::append_sample(double t, const std::vector<double>& values) {
  assert(values.size() == names_.size());
  time_.push_back(t);
  for (std::size_t i = 0; i < values.size(); ++i) data_[i].push_back(values[i]);
}

std::size_t TransientResult::index_of(const std::string& signal) const {
  auto it = name_index_.find(signal);
  if (it == name_index_.end()) {
    throw std::out_of_range("TransientResult: unknown signal '" + signal +
                            "'");
  }
  return it->second;
}

bool TransientResult::has_signal(const std::string& signal) const {
  return name_index_.count(signal) > 0;
}

std::vector<double> TransientResult::waveform(const std::string& signal) const {
  return data_[index_of(signal)];
}

double TransientResult::value(const std::string& signal,
                              std::size_t index) const {
  return data_[index_of(signal)].at(index);
}

double TransientResult::final_value(const std::string& signal) const {
  const auto& wave = data_[index_of(signal)];
  if (wave.empty()) throw std::out_of_range("TransientResult: empty record");
  return wave.back();
}

double TransientResult::at(const std::string& signal, double t) const {
  const auto& wave = data_[index_of(signal)];
  if (wave.empty()) throw std::out_of_range("TransientResult: empty record");
  if (t <= time_.front()) return wave.front();
  if (t >= time_.back()) return wave.back();
  const auto it = std::upper_bound(time_.begin(), time_.end(), t);
  const auto hi = static_cast<std::size_t>(it - time_.begin());
  const std::size_t lo = hi - 1;
  return util::lerp(t, time_[lo], wave[lo], time_[hi], wave[hi]);
}

double TransientResult::total_source_energy() const {
  double sum = 0.0;
  for (const auto& [name, e] : source_energy) sum += e;
  return sum;
}

}  // namespace sfc::spice
