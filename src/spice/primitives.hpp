// Linear/primitive circuit elements: resistor, capacitor, inductor,
// independent sources, and a smooth voltage-controlled switch (the EN
// switch in the CiM sensing circuit).
#pragma once

#include "spice/device.hpp"
#include "spice/waveform.hpp"

namespace sfc::spice {

class Resistor final : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double ohms);

  bool is_linear() const override { return true; }
  void stamp(const SimContext& ctx, Stamper& s) override;
  void stamp_ac(const SimContext& ctx, AcStamper& s) override;
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double resistance() const { return ohms_; }
  void set_resistance(double ohms);

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new Resistor(*this));
  }

 private:
  NodeId a_, b_;
  double ohms_;
};

class Capacitor final : public Device {
 public:
  /// `ic_volts`: optional initial voltage (a -> b) forced at transient
  /// start; NaN (default) takes the DC operating point value.
  Capacitor(std::string name, NodeId a, NodeId b, double farads,
            double ic_volts = kNoIc);

  static constexpr double kNoIc = -1e30;

  /// The companion model only reads committed step state (v_prev_,
  /// i_prev_), never the Newton iterate.
  bool is_linear() const override { return true; }
  void stamp(const SimContext& ctx, Stamper& s) override;
  void stamp_ac(const SimContext& ctx, AcStamper& s) override;
  void start_transient(const SimContext& ctx,
                       const std::vector<double>& x) override;
  void accept_step(const SimContext& ctx,
                   const std::vector<double>& x) override;
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double capacitance() const { return farads_; }
  /// True when an explicit `ic=` initial condition was given.
  bool has_initial_condition() const { return ic_ != kNoIc; }
  /// The explicit initial condition (a -> b) [V]; kNoIc when absent.
  double initial_condition() const { return ic_; }
  /// Voltage across the capacitor at the last accepted step.
  double voltage() const { return v_prev_; }
  /// Stored energy 0.5*C*V^2 at the last accepted step [J].
  double stored_energy() const { return 0.5 * farads_ * v_prev_ * v_prev_; }

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new Capacitor(*this));
  }

 private:
  double vdiff_x(const std::vector<double>& x) const;

  NodeId a_, b_;
  double farads_;
  double ic_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

class Inductor final : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double henries);

  int num_aux() const override { return 1; }
  bool is_linear() const override { return true; }
  void stamp(const SimContext& ctx, Stamper& s) override;
  void stamp_ac(const SimContext& ctx, AcStamper& s) override;
  void start_transient(const SimContext& ctx,
                       const std::vector<double>& x) override;
  void accept_step(const SimContext& ctx,
                   const std::vector<double>& x) override;
  std::vector<NodeId> terminals() const override { return {a_, b_}; }

  double inductance() const { return henries_; }

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new Inductor(*this));
  }

 private:
  NodeId a_, b_;
  double henries_;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

/// Independent voltage source (one auxiliary branch-current variable).
class VSource final : public Device {
 public:
  VSource(std::string name, NodeId plus, NodeId minus, Waveform waveform);
  VSource(std::string name, NodeId plus, NodeId minus, double dc_volts);

  int num_aux() const override { return 1; }
  bool is_linear() const override { return true; }
  void stamp(const SimContext& ctx, Stamper& s) override;
  void stamp_ac(const SimContext& ctx, AcStamper& s) override;
  double delivered_power(const SimContext& ctx,
                         const std::vector<double>& x) const override;
  void collect_breakpoints(double t_stop,
                           std::vector<double>& out) const override;
  std::vector<NodeId> terminals() const override { return {plus_, minus_}; }

  void set_waveform(Waveform w) { waveform_ = std::move(w); }
  const Waveform& waveform() const { return waveform_; }
  /// Convenience for DC sweeps.
  void set_dc(double volts) { waveform_ = Waveform::dc(volts); }

  /// AC analysis stimulus magnitude [V] (0 = quiet source). The phase is
  /// zero; use one excited source per transfer-function measurement.
  void set_ac_magnitude(double volts) { ac_magnitude_ = volts; }
  double ac_magnitude() const { return ac_magnitude_; }

  /// Branch current (from + through the source to -) given a solution.
  double branch_current(std::size_t num_nodes,
                        const std::vector<double>& x) const;

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new VSource(*this));
  }

 private:
  NodeId plus_, minus_;
  Waveform waveform_;
  double ac_magnitude_ = 0.0;
};

/// Independent current source driving current from `from`, through the
/// source, into `to`.
class ISource final : public Device {
 public:
  ISource(std::string name, NodeId from, NodeId to, Waveform waveform);
  ISource(std::string name, NodeId from, NodeId to, double dc_amps);

  bool is_linear() const override { return true; }
  void stamp(const SimContext& ctx, Stamper& s) override;
  double delivered_power(const SimContext& ctx,
                         const std::vector<double>& x) const override;
  void collect_breakpoints(double t_stop,
                           std::vector<double>& out) const override;
  std::vector<NodeId> terminals() const override { return {from_, to_}; }

  void set_dc(double amps) { waveform_ = Waveform::dc(amps); }

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new ISource(*this));
  }

 private:
  NodeId from_, to_;
  Waveform waveform_;
};

/// Smooth voltage-controlled switch: conductance interpolates between
/// off/on over a narrow logistic transition of the control voltage,
/// keeping the Newton iteration differentiable.
class VSwitch final : public Device {
 public:
  struct Params {
    double r_on = 100.0;        ///< on resistance [ohm]
    double r_off = 1e12;        ///< off resistance [ohm]
    double v_threshold = 0.6;   ///< control voltage at half transition [V]
    double v_width = 0.05;      ///< logistic transition width [V]
  };

  VSwitch(std::string name, NodeId a, NodeId b, NodeId ctrl, Params params);

  /// Nonlinear (inherited default): the stamp linearizes around the
  /// control voltage read from the Newton iterate.
  void stamp(const SimContext& ctx, Stamper& s) override;
  void stamp_ac(const SimContext& ctx, AcStamper& s) override;
  std::vector<NodeId> terminals() const override { return {a_, b_, ctrl_}; }

  /// Conductance at a given control voltage (exposed for tests).
  double conductance_at(double v_ctrl) const;

  const Params& params() const { return p_; }

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new VSwitch(*this));
  }

 private:
  NodeId a_, b_, ctrl_;
  Params p_;
};

/// Linear voltage-controlled current source (SPICE G element):
/// i(out+ -> out-) = gm * (v(ctrl+) - v(ctrl-)).
class Vccs final : public Device {
 public:
  Vccs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p,
       NodeId ctrl_n, double gm);

  bool is_linear() const override { return true; }
  void stamp(const SimContext& ctx, Stamper& s) override;
  void stamp_ac(const SimContext& ctx, AcStamper& s) override;
  std::vector<NodeId> terminals() const override {
    return {out_p_, out_n_, ctrl_p_, ctrl_n_};
  }

  double transconductance() const { return gm_; }

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new Vccs(*this));
  }

 private:
  NodeId out_p_, out_n_, ctrl_p_, ctrl_n_;
  double gm_;
};

/// Linear voltage-controlled voltage source (ideal amplifier building
/// block): v(out+) - v(out-) = gain * (v(ctrl+) - v(ctrl-)).
class Vcvs final : public Device {
 public:
  Vcvs(std::string name, NodeId out_p, NodeId out_n, NodeId ctrl_p,
       NodeId ctrl_n, double gain);

  int num_aux() const override { return 1; }
  bool is_linear() const override { return true; }
  void stamp(const SimContext& ctx, Stamper& s) override;
  void stamp_ac(const SimContext& ctx, AcStamper& s) override;
  std::vector<NodeId> terminals() const override {
    return {out_p_, out_n_, ctrl_p_, ctrl_n_};
  }

  double gain() const { return gain_; }

  std::unique_ptr<Device> clone() const override {
    return std::unique_ptr<Device>(new Vcvs(*this));
  }

 private:
  NodeId out_p_, out_n_, ctrl_p_, ctrl_n_;
  double gain_;
};

}  // namespace sfc::spice
