#include "spice/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace sfc::spice {

template <typename T>
double DenseMatrixT<T>::frobenius_norm() const {
  double s = 0.0;
  for (const T& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

template class DenseMatrixT<double>;
template class DenseMatrixT<std::complex<double>>;

namespace {

/// Shared real/complex LU factor-and-solve core: partial pivoting, in-place
/// factorization, forward elimination of b fused into the sweep, back
/// substitution. Optionally records the pivot sequence (`swap_with`, the
/// row swapped into position k at step k) and the pivot magnitudes —
/// LuPlan uses the recording to freeze and compile the pivot order.
template <typename T>
bool lu_core(DenseMatrixT<T>& a, std::vector<T>& b, int* swap_with,
             double* pivot_mag_out) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  assert(b.size() == n);
  if (n == 0) return true;

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search in column k.
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(a.at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) return false;
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(k, c), a.at(pivot_row, c));
      }
      std::swap(b[k], b[pivot_row]);
    }
    if (swap_with) swap_with[k] = static_cast<int>(pivot_row);
    if (pivot_mag_out) pivot_mag_out[k] = pivot_mag;
    const T pivot = a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const T factor = a.at(r, k) / pivot;
      if (factor == T{}) continue;
      a.at(r, k) = T{};
      for (std::size_t c = k + 1; c < n; ++c) {
        a.at(r, c) -= factor * a.at(k, c);
      }
      b[r] -= factor * b[k];
    }
  }

  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    T sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * b[c];
    b[ri] = sum / a.at(ri, ri);
  }
  return true;
}

}  // namespace

bool lu_solve(DenseMatrix& a, std::vector<double>& b) {
  return lu_core(a, b, nullptr, nullptr);
}

bool lu_solve(ComplexMatrix& a, std::vector<std::complex<double>>& b) {
  return lu_core(a, b, nullptr, nullptr);
}

bool lu_solve_copy(const DenseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x, DenseMatrix& scratch) {
  scratch.copy_from(a);
  x = b;
  return lu_solve(scratch, x);
}

bool LuPlan::factor_and_compile(DenseMatrix& a, std::vector<double>& b,
                                const std::vector<char>& pattern) {
  const std::size_t n = a.rows();
  assert(pattern.size() == n * n);
  reset();
  swap_with_.assign(n, 0);
  ref_pivot_mag_.assign(n, 0.0);
  if (!lu_core(a, b, swap_with_.data(), ref_pivot_mag_.data())) return false;
  pattern_.assign(pattern.begin(), pattern.end());
  n_ = n;
  kvals_.assign(n, 0.0);
  forced_rows_.assign(n, {});
  compile_schedule();
  full_touch_ = true;  // lu_core wrote the whole matrix
  return true;
}

void LuPlan::compile_schedule() {
  // Symbolic elimination under the frozen order (swap_with_), widened
  // over each pivot's interchange class: the candidate rows whose fill
  // pattern equals the frozen pivot row's. Any class member swapped into
  // the pivot position produces the same fill, so the only envelope
  // growth needed for pivot-robustness is giving every class row the
  // frozen pivot row's fill (the old diagonal row — pattern P_k — can
  // land on any of them). This keeps fill at order-specific scale while
  // making the ulp-level argmax flips between structurally symmetric CiM
  // rows symbolic no-ops; a pivot leaving the class at solve time takes
  // the (rare) dense-finish path instead.
  const std::size_t n = n_;
  p_work_.assign(pattern_.begin(), pattern_.end());
  std::vector<char>& p = p_work_;
  row_ptr_.assign(n + 1, 0);
  col_ptr_.assign(n + 1, 0);
  swap_ptr_.assign(n + 1, 0);
  row_idx_.clear();
  col_idx_.clear();
  swap_idx_.clear();
  class_flags_.clear();
  diag_in_class_.assign(n, 0);
  kpat_.assign(n, 0);
  upat_.assign(n, 0);
  t_work_.assign(pattern_.begin(), pattern_.end());
  ops_ = 0;
  for (std::size_t k = 0; k < n; ++k) {
    // Candidate rows: structurally-possible nonzeros in column k.
    const std::size_t row_begin = row_idx_.size();
    for (std::size_t r = k + 1; r < n; ++r) {
      if (p[r * n + k]) row_idx_.push_back(static_cast<int>(r));
    }
    char* krow = p.data() + k * n;
    const auto sw = static_cast<std::size_t>(swap_with_[k]);
    const std::size_t tail = n - (k + 1);
    // Class pattern: the frozen pivot row's fill, unioned with any rows
    // that once won the pivot search from outside the class (so the same
    // flip never takes the dense-finish path twice).
    const char* clsrow = p.data() + sw * n;
    if (!forced_rows_[k].empty()) {
      std::memcpy(upat_.data() + k + 1, clsrow + k + 1, tail);
      for (const int fr : forced_rows_[k]) {
        const auto r = static_cast<std::size_t>(fr);
        if (r != k && !p[r * n + k]) continue;  // no longer a candidate
        const char* rrow = p.data() + r * n;
        for (std::size_t c = k + 1; c < n; ++c) upat_[c] |= rrow[c];
      }
      clsrow = upat_.data();
    }
    // Class membership: pattern right of the pivot column is a subset of
    // the class pattern (a subset row swapped into the pivot position
    // fills strictly less, so the schedule still covers it). Decide
    // before mutating any pattern.
    const auto is_subset = [&](const char* row) {
      for (std::size_t c = k + 1; c < n; ++c) {
        if (row[c] & ~clsrow[c]) return false;
      }
      return true;
    };
    diag_in_class_[k] = sw == k || is_subset(krow);
    for (std::size_t ri = row_begin; ri < row_idx_.size(); ++ri) {
      const char* rrow =
          p.data() + static_cast<std::size_t>(row_idx_[ri]) * n;
      class_flags_.push_back(is_subset(rrow));
    }
    // Envelope update. Row k takes the class pattern (whichever class
    // member wins the pivot search has at most that pattern); class rows
    // take P_k | class (one of them receives the swapped-out diagonal
    // row); other candidates take ordinary frozen-order fill.
    std::memcpy(kpat_.data() + k + 1, krow + k + 1, tail);
    if (clsrow != krow) std::memcpy(krow + k + 1, clsrow + k + 1, tail);
    for (std::size_t ri = row_begin; ri < row_idx_.size(); ++ri) {
      char* rrow = p.data() + static_cast<std::size_t>(row_idx_[ri]) * n;
      if (class_flags_[ri]) {
        for (std::size_t c = k + 1; c < n; ++c) {
          rrow[c] = static_cast<char>(kpat_[c] | krow[c]);
        }
      } else {
        for (std::size_t c = k + 1; c < n; ++c) rrow[c] |= krow[c];
      }
    }
    // Track every entry a scheduled solve can write: the evolving
    // envelope rows plus the diagonal (hit by the column-k swap).
    char* tk = t_work_.data() + k * n;
    tk[k] = 1;
    for (std::size_t c = k + 1; c < n; ++c) tk[c] |= krow[c];
    for (std::size_t ri = row_begin; ri < row_idx_.size(); ++ri) {
      const auto r = static_cast<std::size_t>(row_idx_[ri]);
      char* tr = t_work_.data() + r * n;
      const char* rrow = p.data() + r * n;
      for (std::size_t c = k + 1; c < n; ++c) tr[c] |= rrow[c];
    }
    const std::size_t col_begin = col_idx_.size();
    for (std::size_t c = k + 1; c < n; ++c) {
      if (krow[c]) col_idx_.push_back(static_cast<int>(c));
      if (krow[c] | kpat_[c]) swap_idx_.push_back(static_cast<int>(c));
    }
    ops_ += (row_idx_.size() - row_begin) * (col_idx_.size() - col_begin);
    row_ptr_[k + 1] = static_cast<int>(row_idx_.size());
    col_ptr_[k + 1] = static_cast<int>(col_idx_.size());
    swap_ptr_[k + 1] = static_cast<int>(swap_idx_.size());
  }
  touched_.clear();
  for (std::size_t idx = 0; idx < n * n; ++idx) {
    if (t_work_[idx]) touched_.push_back(static_cast<int>(idx));
  }
}

bool LuPlan::solve_frozen(DenseMatrix& a, std::vector<double>& b,
                          double degradation) {
  const std::size_t n = n_;
  assert(valid());
  assert(a.rows() == n && a.cols() == n && b.size() == n);

  bool drifted = false;
  for (std::size_t k = 0; k < n; ++k) {
    // Exact partial-pivot search over the candidate rows. Rows outside the
    // compiled candidate set hold exact zeros in column k, so this IS the
    // full column scan of lu_core: increasing row order with a strict `>`
    // (lowest row wins ties) — the numeric pivot choice is bit-identical
    // to full pivoting by construction.
    const int* rows = row_idx_.data() + row_ptr_[k];
    const int nrows = row_ptr_[k + 1] - row_ptr_[k];
    if (nrows == 0) {
      // No structurally-possible pivot alternative and nothing below the
      // diagonal to eliminate.
      if (std::fabs(a.at(k, k)) < 1e-300) {
        reset();
        return false;
      }
      continue;
    }
    std::size_t pivot_row = k;
    int pivot_ri = -1;  // index into rows[] when pivot_row != k
    double pivot_mag = std::fabs(a.at(k, k));
    for (int ri = 0; ri < nrows; ++ri) {
      const auto r = static_cast<std::size_t>(rows[ri]);
      const double m = std::fabs(a.at(r, k));
      if (m > pivot_mag) {
        pivot_mag = m;
        pivot_row = r;
        pivot_ri = ri;
      }
    }
    if (pivot_mag < 1e-300) {
      reset();
      return false;
    }
    if (pivot_row != static_cast<std::size_t>(swap_with_[k]) ||
        pivot_mag < degradation * ref_pivot_mag_[k]) {
      // Pivot drifted off the frozen order (near-tied rows trading places
      // by ulps) or degraded. Inside the interchange class the compiled
      // structure already covers the swap: re-record and carry on. A
      // pivot outside the class changes the fill — finish densely from
      // here (bit-identical: only structural zeros were skipped so far)
      // and recompile around the new order.
      const bool in_class = pivot_row == k
                                ? diag_in_class_[k] != 0
                                : class_flags_[static_cast<std::size_t>(
                                      row_ptr_[k] + pivot_ri)] != 0;
      if (pivot_row != static_cast<std::size_t>(swap_with_[k]) &&
          !in_class) {
        // Remember both flip partners so the recompile widens the class
        // over them — a recurring flip between incomparable rows then
        // stays on the compiled path.
        std::vector<int>& forced = forced_rows_[k];
        for (const int fr : {swap_with_[k], static_cast<int>(pivot_row)}) {
          if (std::find(forced.begin(), forced.end(), fr) == forced.end()) {
            forced.push_back(fr);
          }
        }
        return solve_dense_from(k, a, b);
      }
      drifted = true;
      swap_with_[k] = static_cast<int>(pivot_row);
      ref_pivot_mag_[k] = pivot_mag;
    }
    if (pivot_row != k) {
      // Exchange only the compiled swap columns — both rows hold exact
      // zeros left of the diagonal and outside the class envelope.
      double* krow_v = a.data() + k * n;
      double* prow_v = a.data() + pivot_row * n;
      std::swap(krow_v[k], prow_v[k]);
      const int* scols = swap_idx_.data() + swap_ptr_[k];
      const int nscols = swap_ptr_[k + 1] - swap_ptr_[k];
      for (int ci = 0; ci < nscols; ++ci) {
        const auto c = static_cast<std::size_t>(scols[ci]);
        std::swap(krow_v[c], prow_v[c]);
      }
      std::swap(b[k], b[pivot_row]);
    }
    // Eliminate over the compiled schedule only. After the swap the old
    // row k sits at `pivot_row`, which is in the candidate set, so every
    // possibly-nonzero row below the diagonal is visited. The pivot row's
    // compiled columns are gathered into a scratch first: rows[] never
    // contains k, so the pivot row is loop-invariant, but the compiler
    // cannot prove arow and krow do not alias.
    const double pivot = a.at(k, k);
    const double bk = b[k];
    const int* cols = col_idx_.data() + col_ptr_[k];
    const int ncols = col_ptr_[k + 1] - col_ptr_[k];
    {
      const double* krow = a.data() + k * n;
      for (int ci = 0; ci < ncols; ++ci) {
        kvals_[static_cast<std::size_t>(ci)] =
            krow[static_cast<std::size_t>(cols[ci])];
      }
    }
    for (int ri = 0; ri < nrows; ++ri) {
      const auto r = static_cast<std::size_t>(rows[ri]);
      const double ark = a.at(r, k);
      if (ark == 0.0) continue;  // factor would be (+-)0: nothing to do
      const double factor = ark / pivot;
      a.at(r, k) = 0.0;
      double* arow = a.data() + r * n;
      for (int ci = 0; ci < ncols; ++ci) {
        const auto c = static_cast<std::size_t>(cols[ci]);
        arow[c] -= factor * kvals_[static_cast<std::size_t>(ci)];
      }
      b[r] -= factor * bk;
    }
  }

  // Back substitution over the compiled U structure.
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    const double* arow = a.data() + ri * n;
    const int* cols = col_idx_.data() + col_ptr_[ri];
    const int ncols = col_ptr_[ri + 1] - col_ptr_[ri];
    for (int ci = 0; ci < ncols; ++ci) {
      const auto c = static_cast<std::size_t>(cols[ci]);
      sum -= arow[c] * b[c];
    }
    b[ri] = sum / a.at(ri, ri);
  }

  if (drifted) ++refreezes_;
  full_touch_ = false;
  return true;
}

bool LuPlan::solve_dense_from(std::size_t k0, DenseMatrix& a,
                              std::vector<double>& b) {
  // Continue with full partial pivoting. Entries the schedule skipped so
  // far are exact structural zeros, so the matrix holds bit-identical
  // values to a dense factorization at step k0 and the tail below matches
  // lu_core exactly.
  const std::size_t n = n_;
  for (std::size_t k = k0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = std::fabs(a.at(r, k));
      if (m > pivot_mag) {
        pivot_mag = m;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) {
      reset();
      return false;
    }
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(k, c), a.at(pivot_row, c));
      }
      std::swap(b[k], b[pivot_row]);
    }
    swap_with_[k] = static_cast<int>(pivot_row);
    ref_pivot_mag_[k] = pivot_mag;
    const double pivot = a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a.at(r, k) / pivot;
      if (factor == 0.0) continue;
      a.at(r, k) = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) {
        a.at(r, c) -= factor * a.at(k, c);
      }
      b[r] -= factor * b[k];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * b[c];
    b[ri] = sum / a.at(ri, ri);
  }
  ++refreezes_;
  compile_schedule();
  full_touch_ = true;  // the dense tail wrote outside the schedule
  return true;
}

}  // namespace sfc::spice
