#include "spice/matrix.hpp"

#include <cassert>
#include <cmath>

namespace sfc::spice {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void DenseMatrix::set_zero() {
  for (double& v : data_) v = 0.0;
}

double DenseMatrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool lu_solve(DenseMatrix& a, std::vector<double>& b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  assert(b.size() == n);
  if (n == 0) return true;

  // LU with partial pivoting, factorization stored in place.
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Pivot search in column k.
    std::size_t pivot_row = k;
    double pivot_mag = std::fabs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(a.at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) return false;
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(k, c), a.at(pivot_row, c));
      }
      std::swap(b[k], b[pivot_row]);
    }
    const double pivot = a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = a.at(r, k) / pivot;
      if (factor == 0.0) continue;
      a.at(r, k) = 0.0;
      for (std::size_t c = k + 1; c < n; ++c) {
        a.at(r, c) -= factor * a.at(k, c);
      }
      b[r] -= factor * b[k];
    }
  }

  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * b[c];
    b[ri] = sum / a.at(ri, ri);
  }
  return true;
}

bool lu_solve_copy(const DenseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x) {
  DenseMatrix acopy = a;
  x = b;
  return lu_solve(acopy, x);
}

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Scalar{0.0, 0.0}) {}

void ComplexMatrix::set_zero() {
  for (auto& v : data_) v = Scalar{0.0, 0.0};
}

bool lu_solve(ComplexMatrix& a, std::vector<std::complex<double>>& b) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  assert(b.size() == n);
  if (n == 0) return true;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot_row = k;
    double pivot_mag = std::abs(a.at(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(a.at(r, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = r;
      }
    }
    if (pivot_mag < 1e-300) return false;
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a.at(k, c), a.at(pivot_row, c));
      }
      std::swap(b[k], b[pivot_row]);
    }
    const auto pivot = a.at(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const auto factor = a.at(r, k) / pivot;
      if (factor == std::complex<double>{0.0, 0.0}) continue;
      a.at(r, k) = {0.0, 0.0};
      for (std::size_t c = k + 1; c < n; ++c) {
        a.at(r, c) -= factor * a.at(k, c);
      }
      b[r] -= factor * b[k];
    }
  }
  for (std::size_t ri = n; ri-- > 0;) {
    auto sum = b[ri];
    for (std::size_t c = ri + 1; c < n; ++c) sum -= a.at(ri, c) * b[c];
    b[ri] = sum / a.at(ri, ri);
  }
  return true;
}

}  // namespace sfc::spice
