// Device interface for the MNA-based circuit simulator.
//
// A Device linearizes itself around the current Newton iterate and stamps
// conductances / current sources (companion model) into the system
//   A * x = b
// where x = [node voltages | auxiliary branch currents].
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "spice/matrix.hpp"

namespace sfc::spice {

/// Node handle. Ground is the dedicated constant below and is not part of
/// the solution vector.
using NodeId = int;
inline constexpr NodeId kGround = -1;

enum class AnalysisMode {
  kDcOperatingPoint,  ///< capacitors open, inductors short
  kTransient,         ///< companion models active
};

enum class IntegrationMethod {
  kBackwardEuler,  ///< robust, first order (default for step 1 / breakpoints)
  kTrapezoidal,    ///< second order
};

/// Per-solve context handed to every Device::stamp call.
struct SimContext {
  AnalysisMode mode = AnalysisMode::kDcOperatingPoint;
  IntegrationMethod method = IntegrationMethod::kBackwardEuler;
  double time = 0.0;           ///< end time of the step being solved [s]
  double dt = 0.0;             ///< step size [s]; 0 during DC
  double temperature_c = 27.0; ///< global simulation temperature [degC]
  double gmin = 1e-12;         ///< current gmin (node-to-ground leak)
  /// Number of non-ground nodes; aux variable k of a device lives at
  /// x[num_nodes + aux_base + k]. Set by the engine.
  std::size_t num_nodes = 0;
};

/// Assembly facade: devices only see stamping primitives, never the matrix
/// layout. Rows/cols: nodes first, then auxiliary variables. All methods
/// are inline — stamping sits on the Newton hot path.
class Stamper {
 public:
  Stamper(DenseMatrix& a, std::vector<double>& b,
          const std::vector<double>& x, std::size_t num_nodes)
      : a_(a), b_(b), x_(x), num_nodes_(num_nodes) {}

  /// Record every touched matrix entry into `pattern` (row-major dim*dim
  /// flags). The engine runs one recording pass per circuit/analysis mode
  /// to learn the structural sparsity its compiled LU plan relies on.
  void record_pattern(std::vector<char>* pattern, std::size_t dim) {
    pattern_ = pattern ? pattern->data() : nullptr;
    pattern_dim_ = dim;
  }

  /// Debug guard for the stamp-plan baseline: devices claiming
  /// Device::is_linear() must not read the Newton iterate, so v()/aux()
  /// assert while this is set.
  void forbid_iterate_reads(bool forbid) { forbid_iterate_reads_ = forbid; }

  /// Voltage of a node at the current Newton iterate (ground = 0 V).
  double v(NodeId n) const {
    assert(!forbid_iterate_reads_ &&
           "linear (baseline-stamped) device read the Newton iterate");
    if (n == kGround) return 0.0;
    assert(n >= 0 && static_cast<std::size_t>(n) < num_nodes_);
    return x_[static_cast<std::size_t>(n)];
  }

  /// Value of auxiliary variable `aux_index` (global index).
  double aux(int aux_index) const {
    assert(!forbid_iterate_reads_ &&
           "linear (baseline-stamped) device read the Newton iterate");
    const std::size_t idx = num_nodes_ + static_cast<std::size_t>(aux_index);
    assert(idx < x_.size());
    return x_[idx];
  }

  /// Conductance g between nodes a and b.
  void conductance(NodeId a, NodeId b, double g) {
    add_matrix(a, a, g);
    add_matrix(b, b, g);
    add_matrix(a, b, -g);
    add_matrix(b, a, -g);
  }

  /// Conductance g from node a to ground.
  void conductance_to_ground(NodeId a, double g) { add_matrix(a, a, g); }

  /// Independent current i flowing from node `from` into node `to`.
  void current(NodeId from, NodeId to, double i) {
    add_rhs(from, -i);
    add_rhs(to, i);
  }

  /// Voltage-controlled current source: i(out_p -> out_n) = gm * v(ctrl_p, ctrl_n).
  void vccs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
            double gm) {
    add_matrix(out_p, ctrl_p, gm);
    add_matrix(out_p, ctrl_n, -gm);
    add_matrix(out_n, ctrl_p, -gm);
    add_matrix(out_n, ctrl_n, gm);
  }

  // Raw access for devices with auxiliary variables (voltage sources,
  // inductors). Row/col indexing: node n -> n, aux k -> num_nodes + k.
  int node_row(NodeId n) const {
    return n;  // ground (-1) is intentionally returned as-is; callers check
  }
  int aux_row(int aux_index) const {
    return static_cast<int>(num_nodes_) + aux_index;
  }
  void add_matrix(int row, int col, double value) {
    if (row < 0 || col < 0) return;  // ground row/col dropped
    if (pattern_) {
      pattern_[static_cast<std::size_t>(row) * pattern_dim_ +
               static_cast<std::size_t>(col)] = 1;
    }
    a_.at(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) +=
        value;
  }
  void add_rhs(int row, double value) {
    if (row < 0) return;
    b_[static_cast<std::size_t>(row)] += value;
  }

 private:
  DenseMatrix& a_;
  std::vector<double>& b_;
  const std::vector<double>& x_;
  std::size_t num_nodes_;
  char* pattern_ = nullptr;
  std::size_t pattern_dim_ = 0;
  bool forbid_iterate_reads_ = false;
};

/// Assembly facade for AC (small-signal) analysis: the complex system
/// (G + jwC) x = b, linearized at a DC operating point.
class AcStamper {
 public:
  using Scalar = std::complex<double>;

  AcStamper(ComplexMatrix& a, std::vector<Scalar>& b,
            const std::vector<double>& dc_x, std::size_t num_nodes,
            double omega);

  /// Angular frequency of this solve [rad/s].
  double omega() const { return omega_; }

  /// DC bias voltage of a node (linearization point).
  double dc_v(NodeId n) const;
  double dc_aux(int aux_index) const;

  void conductance(NodeId a, NodeId b, double g);
  /// Susceptance of a capacitor: adds j*omega*c between the nodes.
  void capacitance(NodeId a, NodeId b, double c);
  void vccs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
            double gm);

  int node_row(NodeId n) const;
  int aux_row(int aux_index) const;
  void add_matrix(int row, int col, Scalar value);
  void add_rhs(int row, Scalar value);

 private:
  ComplexMatrix& a_;
  std::vector<Scalar>& b_;
  const std::vector<double>& dc_x_;
  std::size_t num_nodes_;
  double omega_;
};

/// Base class for all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Deep copy including all runtime state (capacitor history,
  /// polarization, threshold shifts). Circuit::clone() uses this so
  /// parallel sweeps can solve independent replicas of one circuit.
  virtual std::unique_ptr<Device> clone() const = 0;

  /// Number of auxiliary (branch-current) variables this device needs.
  virtual int num_aux() const { return 0; }

  /// Linearity contract for the stamp-plan hot path. Return true only when
  /// stamp() writes values that depend solely on the SimContext and on
  /// state committed by start_transient()/accept_step() — never on the
  /// Newton iterate read through Stamper::v()/aux(). Linear devices are
  /// stamped once per solve into a cached baseline and NOT re-stamped
  /// between Newton iterations; a device that reads the iterate while
  /// claiming linearity silently converges to wrong answers (debug builds
  /// catch it via Stamper::forbid_iterate_reads). Default: nonlinear,
  /// which is always safe.
  virtual bool is_linear() const { return false; }

  /// Assigned by Circuit::finalize(); global index of first aux variable.
  void set_aux_base(int base) { aux_base_ = base; }
  int aux_base() const { return aux_base_; }

  /// Stamp the linearized device into the system.
  virtual void stamp(const SimContext& ctx, Stamper& s) = 0;

  /// Stamp the small-signal model at the DC operating point carried by
  /// the AcStamper. Default: the device contributes nothing (open),
  /// which is correct for ideal switches-off and digital-only elements;
  /// all analog primitives override this.
  virtual void stamp_ac(const SimContext& ctx, AcStamper& s) {
    (void)ctx;
    (void)s;
  }

  /// Called once when a transient starts, with the converged DC solution.
  virtual void start_transient(const SimContext& ctx,
                               const std::vector<double>& x) {
    (void)ctx;
    (void)x;
  }

  /// Called after each accepted transient step; devices commit history
  /// (e.g. capacitor charge) here.
  virtual void accept_step(const SimContext& ctx,
                           const std::vector<double>& x) {
    (void)ctx;
    (void)x;
  }

  /// Power delivered *by* this device into the circuit [W] at the accepted
  /// solution x (sources override; passives return 0 = they only absorb).
  virtual double delivered_power(const SimContext& ctx,
                                 const std::vector<double>& x) const {
    (void)ctx;
    (void)x;
    return 0.0;
  }

  /// Time points where this device's waveforms have corners; the transient
  /// engine aligns steps to them so pulse edges are never skipped.
  virtual void collect_breakpoints(double t_stop,
                                   std::vector<double>& out) const {
    (void)t_stop;
    (void)out;
  }

  /// Connected nodes (diagnostics / netlist printing).
  virtual std::vector<NodeId> terminals() const = 0;

  /// Source line of the netlist card that created this device (0 = not
  /// built from a netlist). parse_netlist threads this through so static
  /// diagnostics (src/lint) point at real deck lines.
  void set_source_line(std::size_t line) { source_line_ = line; }
  std::size_t source_line() const { return source_line_; }

 protected:
  /// Copying is reserved for subclass clone() implementations; keeping it
  /// protected prevents accidental slicing through the base class.
  Device(const Device&) = default;

  /// Helper for subclasses: voltage difference v(a) - v(b).
  static double vdiff(const Stamper& s, NodeId a, NodeId b) {
    return s.v(a) - s.v(b);
  }

 private:
  std::string name_;
  int aux_base_ = -1;
  std::size_t source_line_ = 0;
};

}  // namespace sfc::spice
