// Device interface for the MNA-based circuit simulator.
//
// A Device linearizes itself around the current Newton iterate and stamps
// conductances / current sources (companion model) into the system
//   A * x = b
// where x = [node voltages | auxiliary branch currents].
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "spice/matrix.hpp"

namespace sfc::spice {

/// Node handle. Ground is the dedicated constant below and is not part of
/// the solution vector.
using NodeId = int;
inline constexpr NodeId kGround = -1;

enum class AnalysisMode {
  kDcOperatingPoint,  ///< capacitors open, inductors short
  kTransient,         ///< companion models active
};

enum class IntegrationMethod {
  kBackwardEuler,  ///< robust, first order (default for step 1 / breakpoints)
  kTrapezoidal,    ///< second order
};

/// Per-solve context handed to every Device::stamp call.
struct SimContext {
  AnalysisMode mode = AnalysisMode::kDcOperatingPoint;
  IntegrationMethod method = IntegrationMethod::kBackwardEuler;
  double time = 0.0;           ///< end time of the step being solved [s]
  double dt = 0.0;             ///< step size [s]; 0 during DC
  double temperature_c = 27.0; ///< global simulation temperature [degC]
  double gmin = 1e-12;         ///< current gmin (node-to-ground leak)
  /// Number of non-ground nodes; aux variable k of a device lives at
  /// x[num_nodes + aux_base + k]. Set by the engine.
  std::size_t num_nodes = 0;
};

/// Assembly facade: devices only see stamping primitives, never the matrix
/// layout. Rows/cols: nodes first, then auxiliary variables.
class Stamper {
 public:
  Stamper(DenseMatrix& a, std::vector<double>& b,
          const std::vector<double>& x, std::size_t num_nodes);

  /// Voltage of a node at the current Newton iterate (ground = 0 V).
  double v(NodeId n) const;

  /// Value of auxiliary variable `aux_index` (global index).
  double aux(int aux_index) const;

  /// Conductance g between nodes a and b.
  void conductance(NodeId a, NodeId b, double g);

  /// Conductance g from node a to ground.
  void conductance_to_ground(NodeId a, double g);

  /// Independent current i flowing from node `from` into node `to`.
  void current(NodeId from, NodeId to, double i);

  /// Voltage-controlled current source: i(out_p -> out_n) = gm * v(ctrl_p, ctrl_n).
  void vccs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n, double gm);

  // Raw access for devices with auxiliary variables (voltage sources,
  // inductors). Row/col indexing: node n -> n, aux k -> num_nodes + k.
  int node_row(NodeId n) const;
  int aux_row(int aux_index) const;
  void add_matrix(int row, int col, double value);
  void add_rhs(int row, double value);

 private:
  DenseMatrix& a_;
  std::vector<double>& b_;
  const std::vector<double>& x_;
  std::size_t num_nodes_;
};

/// Assembly facade for AC (small-signal) analysis: the complex system
/// (G + jwC) x = b, linearized at a DC operating point.
class AcStamper {
 public:
  using Scalar = std::complex<double>;

  AcStamper(ComplexMatrix& a, std::vector<Scalar>& b,
            const std::vector<double>& dc_x, std::size_t num_nodes,
            double omega);

  /// Angular frequency of this solve [rad/s].
  double omega() const { return omega_; }

  /// DC bias voltage of a node (linearization point).
  double dc_v(NodeId n) const;
  double dc_aux(int aux_index) const;

  void conductance(NodeId a, NodeId b, double g);
  /// Susceptance of a capacitor: adds j*omega*c between the nodes.
  void capacitance(NodeId a, NodeId b, double c);
  void vccs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
            double gm);

  int node_row(NodeId n) const;
  int aux_row(int aux_index) const;
  void add_matrix(int row, int col, Scalar value);
  void add_rhs(int row, Scalar value);

 private:
  ComplexMatrix& a_;
  std::vector<Scalar>& b_;
  const std::vector<double>& dc_x_;
  std::size_t num_nodes_;
  double omega_;
};

/// Base class for all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Deep copy including all runtime state (capacitor history,
  /// polarization, threshold shifts). Circuit::clone() uses this so
  /// parallel sweeps can solve independent replicas of one circuit.
  virtual std::unique_ptr<Device> clone() const = 0;

  /// Number of auxiliary (branch-current) variables this device needs.
  virtual int num_aux() const { return 0; }

  /// Assigned by Circuit::finalize(); global index of first aux variable.
  void set_aux_base(int base) { aux_base_ = base; }
  int aux_base() const { return aux_base_; }

  /// Stamp the linearized device into the system.
  virtual void stamp(const SimContext& ctx, Stamper& s) = 0;

  /// Stamp the small-signal model at the DC operating point carried by
  /// the AcStamper. Default: the device contributes nothing (open),
  /// which is correct for ideal switches-off and digital-only elements;
  /// all analog primitives override this.
  virtual void stamp_ac(const SimContext& ctx, AcStamper& s) {
    (void)ctx;
    (void)s;
  }

  /// Called once when a transient starts, with the converged DC solution.
  virtual void start_transient(const SimContext& ctx,
                               const std::vector<double>& x) {
    (void)ctx;
    (void)x;
  }

  /// Called after each accepted transient step; devices commit history
  /// (e.g. capacitor charge) here.
  virtual void accept_step(const SimContext& ctx,
                           const std::vector<double>& x) {
    (void)ctx;
    (void)x;
  }

  /// Power delivered *by* this device into the circuit [W] at the accepted
  /// solution x (sources override; passives return 0 = they only absorb).
  virtual double delivered_power(const SimContext& ctx,
                                 const std::vector<double>& x) const {
    (void)ctx;
    (void)x;
    return 0.0;
  }

  /// Time points where this device's waveforms have corners; the transient
  /// engine aligns steps to them so pulse edges are never skipped.
  virtual void collect_breakpoints(double t_stop,
                                   std::vector<double>& out) const {
    (void)t_stop;
    (void)out;
  }

  /// Connected nodes (diagnostics / netlist printing).
  virtual std::vector<NodeId> terminals() const = 0;

 protected:
  /// Copying is reserved for subclass clone() implementations; keeping it
  /// protected prevents accidental slicing through the base class.
  Device(const Device&) = default;

  /// Helper for subclasses: voltage difference v(a) - v(b).
  static double vdiff(const Stamper& s, NodeId a, NodeId b) {
    return s.v(a) - s.v(b);
  }

 private:
  std::string name_;
  int aux_base_ = -1;
};

}  // namespace sfc::spice
