#include "spice/circuit.hpp"

namespace sfc::spice {
namespace {
const std::string kGroundName = "0";

bool is_ground_name(const std::string& name) {
  return name == "0" || name == "gnd" || name == "GND" || name == "vss" ||
         name == "VSS";
}
}  // namespace

NodeId Circuit::node(const std::string& name) {
  if (is_ground_name(name)) return kGround;
  auto it = node_index_.find(name);
  if (it != node_index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_index_.emplace(name, id);
  return id;
}

const std::string& Circuit::node_name(NodeId id) const {
  if (id == kGround) return kGroundName;
  return node_names_.at(static_cast<std::size_t>(id));
}

bool Circuit::has_node(const std::string& name) const {
  return is_ground_name(name) || node_index_.count(name) > 0;
}

std::optional<NodeId> Circuit::find_node(const std::string& name) const {
  if (is_ground_name(name)) return kGround;
  auto it = node_index_.find(name);
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

void Circuit::register_device(std::unique_ptr<Device> dev) {
  if (device_index_.count(dev->name())) {
    throw std::invalid_argument("Circuit: duplicate device name '" +
                                dev->name() + "'");
  }
  device_index_.emplace(dev->name(), dev.get());
  devices_.push_back(std::move(dev));
  finalized_ = false;
}

Device* Circuit::find(const std::string& name) {
  auto it = device_index_.find(name);
  return it == device_index_.end() ? nullptr : it->second;
}

const Device* Circuit::find(const std::string& name) const {
  auto it = device_index_.find(name);
  return it == device_index_.end() ? nullptr : it->second;
}

Circuit Circuit::clone() const {
  Circuit copy;
  copy.node_names_ = node_names_;
  copy.node_index_ = node_index_;
  copy.devices_.reserve(devices_.size());
  for (const auto& dev : devices_) {
    auto dup = dev->clone();
    copy.device_index_.emplace(dup->name(), dup.get());
    copy.devices_.push_back(std::move(dup));
  }
  // The partition lists must point at the clone's devices, so rebuild
  // rather than copying finalize() output.
  if (finalized_) copy.finalize();
  return copy;
}

void Circuit::finalize() {
  if (finalized_) return;
  num_aux_ = 0;
  linear_.clear();
  nonlinear_.clear();
  linear_.reserve(devices_.size());
  for (auto& dev : devices_) {
    dev->set_aux_base(num_aux_);
    num_aux_ += dev->num_aux();
    (dev->is_linear() ? linear_ : nonlinear_).push_back(dev.get());
  }
  ++plan_version_;
  finalized_ = true;
}

std::string Circuit::summary() const {
  std::string out;
  out += "circuit: " + std::to_string(num_nodes()) + " nodes, " +
         std::to_string(devices_.size()) + " devices\n";
  for (const auto& dev : devices_) {
    out += "  " + dev->name() + " (";
    const auto terms = dev->terminals();
    for (std::size_t i = 0; i < terms.size(); ++i) {
      if (i) out += ", ";
      out += node_name(terms[i]);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace sfc::spice
