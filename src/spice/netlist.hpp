// SPICE-like netlist front end.
//
// Supported cards (case-insensitive, '*'/';' comments, value suffixes
// f p n u m k meg g):
//   R<name> n1 n2 <ohms>
//   C<name> n1 n2 <farads> [ic=<volts>]
//   L<name> n1 n2 <henries>
//   V<name> n+ n- <dc> | DC <v> | PULSE(v1 v2 td tr tf pw per) |
//                  PWL(t1 v1 t2 v2 ...) | SIN(off amp freq [td])
//   I<name> n+ n- ... (same stimulus grammar)
//   S<name> n1 n2 ctrl [ron=] [roff=] [vt=] [vw=]
//   M<name> d g s <model> [w=] [l=]
//   D<name> a c [is=] [n=]
//   Z<name> d g s [state=0|1] [vthlow=] [vthhigh=] [w=] [l=]   (FeFET)
//   X<name> n1 n2 ... <subckt>                                 (instance)
//   .subckt <name> p1 p2 ...
//     ... body cards (ports map to instance nodes, internal nodes and
//         device names are prefixed with the instance name) ...
//   .ends
//   .model <name> nmos|pmos [vth0= n= mu0= cox= lambda= tcvth= muexp= tnom=]
//   .tran <dt> <tstop>
//   .dc <vsource> <start> <stop> <step>
//   .ac <points_per_decade> <f_start> <f_stop>
//   .temp <celsius>
//   .end
//
// parse_netlist builds the circuit into an existing Circuit object and
// returns the analysis directives for the caller to run.
#pragma once

#include <string>
#include <vector>

#include "spice/circuit.hpp"

namespace sfc::spice {

/// Structured parse failure: carries the offending source line and a
/// stable machine-readable rule id ("duplicate-device", "undefined-model",
/// "subckt-port-mismatch", "nonpositive-value", "unknown-card",
/// "unknown-directive", "parse-error", ...). The lint layer converts these
/// into Diagnostic records; the what() text keeps the historical
/// "netlist line N: ..." format.
class NetlistError : public std::runtime_error {
 public:
  NetlistError(std::string rule, std::size_t line, const std::string& message)
      : std::runtime_error("netlist line " + std::to_string(line) + ": " +
                           message),
        rule_(std::move(rule)),
        line_(line) {}

  const std::string& rule() const { return rule_; }
  std::size_t line() const { return line_; }

 private:
  std::string rule_;
  std::size_t line_;
};

struct TranDirective {
  double dt = 0.0;
  double t_stop = 0.0;
  std::size_t line = 0;  ///< source line of the .tran card (0 = API-built)
};

struct DcSweepDirective {
  std::string source;
  double start = 0.0;
  double stop = 0.0;
  double step = 0.0;
  std::size_t line = 0;
};

struct AcDirective {
  int points_per_decade = 10;
  double f_start = 1.0;
  double f_stop = 1e9;
  std::size_t line = 0;
};

/// A .model card as seen by the parser; `uses` counts instance cards that
/// referenced it (the lint unused-model rule reads this).
struct ModelDef {
  std::string name;
  std::size_t line = 0;
  int uses = 0;
};

struct NetlistDeck {
  std::vector<TranDirective> tran;
  std::vector<DcSweepDirective> dc;
  std::vector<AcDirective> ac;
  std::vector<ModelDef> models;
  double temperature_c = 27.0;
  bool has_temperature = false;
  std::size_t temperature_line = 0;
};

/// Parse `text` into `circuit`. Throws NetlistError (a std::runtime_error)
/// with a line-numbered message on malformed input. Device cards remember
/// their source line via Device::source_line(); redefining a device or
/// model name is a hard error reporting both lines.
NetlistDeck parse_netlist(const std::string& text, Circuit& circuit);

/// Parse a SPICE number with magnitude suffix ("4.7k", "5f", "10meg").
/// Throws std::runtime_error if the token is not a number.
double parse_spice_number(const std::string& token);

}  // namespace sfc::spice
