#include "spice/device.hpp"

#include <cassert>

namespace sfc::spice {

// Stamper is fully inline in device.hpp (Newton hot path); only the AC
// facade lives here.

AcStamper::AcStamper(ComplexMatrix& a, std::vector<Scalar>& b,
                     const std::vector<double>& dc_x, std::size_t num_nodes,
                     double omega)
    : a_(a), b_(b), dc_x_(dc_x), num_nodes_(num_nodes), omega_(omega) {}

double AcStamper::dc_v(NodeId n) const {
  if (n == kGround) return 0.0;
  assert(n >= 0 && static_cast<std::size_t>(n) < num_nodes_);
  return dc_x_[static_cast<std::size_t>(n)];
}

double AcStamper::dc_aux(int aux_index) const {
  const std::size_t idx = num_nodes_ + static_cast<std::size_t>(aux_index);
  assert(idx < dc_x_.size());
  return dc_x_[idx];
}

int AcStamper::node_row(NodeId n) const { return n; }

int AcStamper::aux_row(int aux_index) const {
  return static_cast<int>(num_nodes_) + aux_index;
}

void AcStamper::add_matrix(int row, int col, Scalar value) {
  if (row < 0 || col < 0) return;
  a_.at(static_cast<std::size_t>(row), static_cast<std::size_t>(col)) += value;
}

void AcStamper::add_rhs(int row, Scalar value) {
  if (row < 0) return;
  b_[static_cast<std::size_t>(row)] += value;
}

void AcStamper::conductance(NodeId a, NodeId b, double g) {
  add_matrix(a, a, g);
  add_matrix(b, b, g);
  add_matrix(a, b, -g);
  add_matrix(b, a, -g);
}

void AcStamper::capacitance(NodeId a, NodeId b, double c) {
  const Scalar y{0.0, omega_ * c};
  add_matrix(a, a, y);
  add_matrix(b, b, y);
  add_matrix(a, b, -y);
  add_matrix(b, a, -y);
}

void AcStamper::vccs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
                     double gm) {
  add_matrix(out_p, ctrl_p, gm);
  add_matrix(out_p, ctrl_n, -gm);
  add_matrix(out_n, ctrl_p, -gm);
  add_matrix(out_n, ctrl_n, gm);
}

}  // namespace sfc::spice
