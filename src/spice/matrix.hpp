// Dense linear algebra for the MNA system. CiM cell/array circuits have
// tens of nodes, so a dense LU with partial pivoting is both simpler and
// faster than a sparse solver at this scale.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace sfc::spice {

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void set_zero();

  /// Frobenius norm, used in conditioning diagnostics.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve A x = b in place (A and b are overwritten). Returns false when the
/// matrix is numerically singular (pivot below tiny threshold).
bool lu_solve(DenseMatrix& a, std::vector<double>& b);

/// Solve keeping A/b intact; x receives the solution.
bool lu_solve_copy(const DenseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x);

/// Row-major dense complex matrix (AC small-signal analysis).
class ComplexMatrix {
 public:
  using Scalar = std::complex<double>;

  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols);

  Scalar& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const Scalar& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  void set_zero();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<Scalar> data_;
};

/// Complex LU with partial pivoting; A and b are overwritten.
bool lu_solve(ComplexMatrix& a, std::vector<std::complex<double>>& b);

}  // namespace sfc::spice
