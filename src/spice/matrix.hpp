// Dense linear algebra for the MNA system. CiM cell/array circuits have
// tens of nodes, so a dense LU with partial pivoting is both simpler and
// faster than a sparse solver at this scale. The Newton hot path goes one
// step further: LuPlan freezes the pivot order chosen on the first
// iteration of a solve and compiles the structural sparsity of the MNA
// matrix into an elimination schedule, so refactoring the (mostly
// unchanged) Jacobian skips the pivot search and all structurally-zero
// work.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace sfc::spice {

/// Row-major dense matrix over double (real MNA system) or
/// std::complex<double> (AC small-signal system).
template <typename T>
class DenseMatrixT {
 public:
  using Scalar = T;

  DenseMatrixT() = default;
  DenseMatrixT(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  T& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  void set_zero() { std::fill(data_.begin(), data_.end(), T{}); }

  /// Bitwise copy of `other`'s contents; reuses this matrix's storage when
  /// the shapes already match (the Newton baseline-restore path).
  void copy_from(const DenseMatrixT& other) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_.assign(other.data_.begin(), other.data_.end());
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// Frobenius norm, used in conditioning diagnostics.
  double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using DenseMatrix = DenseMatrixT<double>;
using ComplexMatrix = DenseMatrixT<std::complex<double>>;

/// Solve A x = b in place (A and b are overwritten). Returns false when the
/// matrix is numerically singular (pivot below tiny threshold).
bool lu_solve(DenseMatrix& a, std::vector<double>& b);

/// Complex LU with partial pivoting; A and b are overwritten.
bool lu_solve(ComplexMatrix& a, std::vector<std::complex<double>>& b);

/// Solve keeping A/b intact; x receives the solution. `scratch` is the
/// factorization buffer: passing the same matrix across calls avoids one
/// matrix allocation per solve (it is resized on shape mismatch).
bool lu_solve_copy(const DenseMatrix& a, const std::vector<double>& b,
                   std::vector<double>& x, DenseMatrix& scratch);

/// Compiled frozen-pivot LU. One full partial-pivot factorization records
/// the pivot order and, combined with the structural nonzero pattern of
/// the unfactored matrix, compiles a sparse elimination schedule with
/// fill-in. At every step the symbolic analysis also identifies the
/// pivot's *interchange class* — candidate rows whose fill pattern equals
/// the frozen pivot row's — and widens the envelope so any class member
/// can be swapped in without changing the compiled structure. Newton
/// iterates make near-tied pivots (structurally symmetric rows in CiM
/// arrays) trade places by ulps between solves; those flips stay inside
/// the class and cost nothing. solve_frozen() performs the exact lu_core
/// pivot search (restricted to the candidate rows, the only ones that can
/// be nonzero in the column), so every solve is bit-identical to
/// lu_solve(); a pivot that leaves the class — a genuine structural
/// change — finishes the solve densely and recompiles.
class LuPlan {
 public:
  bool valid() const { return n_ > 0; }
  void reset() { n_ = 0; }
  std::size_t size() const { return n_; }

  /// Factor-and-solve (a, b) in place with full partial pivoting —
  /// bit-identical to lu_solve() — then freeze the pivot order and compile
  /// the elimination schedule from `pattern`, the row-major structural
  /// nonzero flags (size n*n) of the *unfactored* matrix. Entries outside
  /// the pattern must be exactly zero in every matrix later passed to
  /// solve_frozen(). Returns false (plan left invalid) when the matrix is
  /// numerically singular.
  bool factor_and_compile(DenseMatrix& a, std::vector<double>& b,
                          const std::vector<char>& pattern);

  /// Factor-and-solve visiting only the compiled schedule. Each step runs
  /// the exact partial-pivot search of lu_solve() restricted to the
  /// compiled candidate rows (the only rows that can be nonzero in the
  /// pivot column), so the numeric result is bit-identical to lu_solve()
  /// by construction. A winning pivot that differs from the frozen order
  /// but stays in the interchange class (or merely degraded past
  /// `degradation` times its freeze-time magnitude) is re-recorded in
  /// place at no cost; one that leaves the class finishes the solve with
  /// dense elimination from that step — still bit-identical — and
  /// recompiles the schedule around the new order (see refreeze_count()).
  /// Returns false (plan invalidated) only when the matrix is numerically
  /// singular.
  bool solve_frozen(DenseMatrix& a, std::vector<double>& b,
                    double degradation);

  /// Inner multiply-add updates the compiled schedule performs per
  /// factorization (diagnostics; dense elimination does ~n^3/3).
  std::size_t compiled_ops() const { return ops_; }

  /// Solves (since construction) whose pivot search drifted off the
  /// frozen order (or hit the degradation threshold) and re-recorded it.
  /// In-class drift is free; a steadily rising count alongside slow
  /// solves means pivots keep leaving their interchange class.
  std::size_t refreeze_count() const { return refreezes_; }

  /// Flat row-major indices of every matrix entry a scheduled
  /// solve_frozen() can write (envelope fill, swap columns, diagonals).
  /// A caller restoring the matrix between solves only needs to reset
  /// these — unless last_factor_full() says the previous factorization
  /// was a full dense one (fresh factor_and_compile() or a dense-finish
  /// fallback), which may have written anywhere.
  const std::vector<int>& touched_indices() const { return touched_; }
  bool last_factor_full() const { return full_touch_; }

 private:
  /// Build the elimination schedule from pattern_ under swap_with_,
  /// widening each step's envelope over the pivot's interchange class.
  void compile_schedule();

  /// Finish a solve with dense partial-pivot elimination from step k
  /// (values up to k are bit-identical to lu_core's), re-recording the
  /// order and recompiling. Returns false only on a singular matrix.
  bool solve_dense_from(std::size_t k, DenseMatrix& a,
                        std::vector<double>& b);

  std::size_t n_ = 0;
  std::size_t ops_ = 0;
  std::size_t refreezes_ = 0;
  std::vector<int> swap_with_;         ///< per step k: row swapped into k
  std::vector<double> ref_pivot_mag_;  ///< |pivot k| at freeze time
  std::vector<char> pattern_;          ///< unfactored structural nonzeros
  std::vector<char> p_work_;           ///< symbolic-elimination scratch
  std::vector<char> kpat_;             ///< scratch: diag row pattern
  std::vector<char> upat_;             ///< scratch: class union pattern
  std::vector<char> t_work_;           ///< scratch: touched-entry flags
  std::vector<double> kvals_;          ///< scratch: pivot-row gather
  std::vector<int> touched_;           ///< see touched_indices()
  bool full_touch_ = true;             ///< see last_factor_full()
  std::vector<char> class_flags_;      ///< per row_idx_ entry: in class?
  std::vector<char> diag_in_class_;    ///< per step: diag row in class?
  /// Rows that once won the pivot search at a step from outside the
  /// class (per step, original row indices). compile_schedule unions
  /// them into the class so the same flip never falls back twice.
  std::vector<std::vector<int>> forced_rows_;
  // Elimination schedule, CSR-style: rows below / columns right of each
  // diagonal that can hold a nonzero (fill-in included).
  std::vector<int> row_idx_;
  std::vector<int> row_ptr_;
  std::vector<int> col_idx_;
  std::vector<int> col_ptr_;
  // Columns to exchange on a row swap at each step: the union of the
  // diagonal row's and the class rows' envelopes (everything else is an
  // exact zero in both rows).
  std::vector<int> swap_idx_;
  std::vector<int> swap_ptr_;
};

}  // namespace sfc::spice
