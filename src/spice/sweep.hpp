// Unified DC sweep API.
//
// One entry point — run_sweep(Circuit&, SweepSpec, ExecPolicy) — covers
// the three historical sweep flavours:
//   * source sweeps with Newton continuation (each point warm-starts from
//     the previous solution; inherently serial),
//   * generic parameter sweeps (apply() mutates the circuit per point),
//   * temperature sweeps (no apply(): the swept value IS the solve
//     temperature; points are independent and parallelize).
//
// Independent (continuation == false) sweeps always solve a fresh
// Circuit::clone() per point — also at threads == 1 — so the result is a
// pure function of (circuit, spec) and bit-identical at any thread count.
// See DESIGN.md ("Concurrency model & API migration") for how the removed
// dc_sweep_vsource / dc_sweep / temperature_sweep signatures map onto
// SweepSpec.
#pragma once

#include <functional>
#include <vector>

#include "exec/parallel.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"

namespace sfc::spice {

struct SweepPoint {
  double value = 0.0;  ///< swept parameter value
  DcResult op;         ///< operating point at that value
};

/// Declarative description of a DC sweep.
struct SweepSpec {
  /// Swept parameter values, one solve per entry.
  std::vector<double> values;
  /// Mutates the circuit before a point's solve. In continuation mode it
  /// receives the original circuit; otherwise each point's private clone
  /// (look devices up by name, e.g. circuit.find("V1")). When absent, the
  /// swept value is interpreted as the solve temperature [degC].
  std::function<void(Circuit&, double)> apply;
  /// Warm-start each Newton solve from the previous point's solution (the
  /// classic I-V continuation trick). Points become order-dependent, so
  /// the sweep runs serially on the original circuit regardless of the
  /// ExecPolicy.
  bool continuation = false;
  /// Solve temperature [degC]; ignored when `apply` is absent (the swept
  /// value takes its place).
  double temperature_c = 27.0;
  NewtonOptions options;
};

/// Run the sweep. Points that fail to converge are still returned with
/// op.converged == false. `report` (optional) receives per-point wall
/// times and convergence counts.
std::vector<SweepPoint> run_sweep(Circuit& circuit, const SweepSpec& spec,
                                  const sfc::exec::ExecPolicy& exec = {},
                                  sfc::exec::JobReport* report = nullptr);

/// Inclusive linear grid helper: lo, lo+step, ..., hi.
std::vector<double> linspace_step(double lo, double hi, double step);
/// Inclusive n-point grid.
std::vector<double> linspace_count(double lo, double hi, std::size_t n);

}  // namespace sfc::spice
