// DC sweep helpers with Newton continuation (each point warm-starts from
// the previous solution), used for I-V characteristic extraction
// (Fig. 1) and temperature sweeps.
#pragma once

#include <functional>
#include <vector>

#include "spice/engine.hpp"
#include "spice/primitives.hpp"

namespace sfc::spice {

struct SweepPoint {
  double value = 0.0;  ///< swept parameter value
  DcResult op;         ///< operating point at that value
};

/// Sweep the DC level of a voltage source from `lo` to `hi` inclusive in
/// increments of `step` (the source's waveform is replaced). Points that
/// fail to converge are still returned with op.converged = false.
std::vector<SweepPoint> dc_sweep_vsource(Circuit& circuit, VSource& source,
                                         double lo, double hi, double step,
                                         double temperature_c,
                                         const NewtonOptions& options = {});

/// Generic sweep: `apply(value)` mutates the circuit before each solve.
std::vector<SweepPoint> dc_sweep(Circuit& circuit,
                                 const std::vector<double>& values,
                                 const std::function<void(double)>& apply,
                                 double temperature_c,
                                 const NewtonOptions& options = {});

/// Temperature sweep of a fixed circuit (no continuation across points —
/// device nonlinearity changes with T, so a fresh solve is safer).
std::vector<SweepPoint> temperature_sweep(Circuit& circuit,
                                          const std::vector<double>& temps_c,
                                          const NewtonOptions& options = {});

/// Inclusive linear grid helper: lo, lo+step, ..., hi.
std::vector<double> linspace_step(double lo, double hi, double step);
/// Inclusive n-point grid.
std::vector<double> linspace_count(double lo, double hi, std::size_t n);

}  // namespace sfc::spice
