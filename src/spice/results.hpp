// Analysis result containers returned by the simulation engine.
#pragma once

#include <complex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace sfc::spice {

/// DC operating point.
struct DcResult {
  bool converged = false;
  int iterations = 0;
  double gmin_used = 0.0;
  /// Raw solution vector (node voltages then aux currents).
  std::vector<double> x;
  /// Node-name -> voltage.
  std::unordered_map<std::string, double> voltages;
  /// "I(<device>)" -> branch current for devices with one aux variable.
  std::unordered_map<std::string, double> currents;

  double voltage(const std::string& node) const;
  double current(const std::string& device) const;
};

/// AC small-signal sweep result: complex node phasors per frequency,
/// linearized at the DC operating point stored in `op`.
class AcResult {
 public:
  bool converged = false;
  DcResult op;

  void set_signal_names(std::vector<std::string> names);
  void append_point(double freq_hz,
                    const std::vector<std::complex<double>>& x);

  const std::vector<double>& frequencies() const { return freqs_; }
  std::size_t num_points() const { return freqs_.size(); }

  /// Complex phasor of `signal` at frequency index `idx`.
  std::complex<double> value(const std::string& signal,
                             std::size_t idx) const;
  /// |V| at frequency index.
  double magnitude(const std::string& signal, std::size_t idx) const;
  /// 20*log10(|V|); -400 dB floor for zero.
  double magnitude_db(const std::string& signal, std::size_t idx) const;
  /// Phase in degrees.
  double phase_deg(const std::string& signal, std::size_t idx) const;

  /// -3 dB bandwidth relative to the first point's magnitude; returns 0
  /// if the response never drops 3 dB within the sweep.
  double bandwidth_3db(const std::string& signal) const;

 private:
  std::size_t index_of(const std::string& signal) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> name_index_;
  std::vector<double> freqs_;
  /// data_[signal][point]
  std::vector<std::vector<std::complex<double>>> data_;
};

/// Transient waveform set.
class TransientResult {
 public:
  bool converged = false;
  /// Total Newton iterations over the whole run (solver effort metric).
  long total_newton_iterations = 0;

  void set_signal_names(std::vector<std::string> names);
  void append_sample(double t, const std::vector<double>& values);

  std::size_t num_samples() const { return time_.size(); }
  const std::vector<double>& time() const { return time_; }

  /// Full waveform of one signal (node "out" or current "I(V1)").
  std::vector<double> waveform(const std::string& signal) const;

  /// Sample `index` of one signal.
  double value(const std::string& signal, std::size_t index) const;

  /// Last recorded value.
  double final_value(const std::string& signal) const;

  /// Linearly interpolated value at time t (clamped to the record).
  double at(const std::string& signal, double t) const;

  bool has_signal(const std::string& signal) const;
  const std::vector<std::string>& signal_names() const { return names_; }

  /// Energy delivered by each source over the run [J] (by device name).
  std::unordered_map<std::string, double> source_energy;
  /// Sum over all sources [J].
  double total_source_energy() const;

 private:
  std::size_t index_of(const std::string& signal) const;

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::size_t> name_index_;
  std::vector<double> time_;
  /// data_[signal][sample]
  std::vector<std::vector<double>> data_;
};

}  // namespace sfc::spice
