#include "trace/probe.hpp"

namespace sfc::trace {

TestProbe::TestProbe(Registry& registry) : registry_(registry) { reset(); }

void TestProbe::reset() {
  counters0_ = registry_.counter_values();
  histograms0_ = registry_.histogram_counts();
}

std::uint64_t TestProbe::counter_delta(const std::string& name) const {
  const auto now = registry_.counter_values();
  const auto it = now.find(name);
  if (it == now.end()) return 0;
  const auto base = counters0_.find(name);
  return it->second - (base == counters0_.end() ? 0 : base->second);
}

std::uint64_t TestProbe::histogram_delta(const std::string& name) const {
  const Histogram* h = registry_.find_histogram(name);
  if (h == nullptr) return 0;
  std::uint64_t base_total = 0;
  const auto base = histograms0_.find(name);
  if (base != histograms0_.end()) {
    for (const std::uint64_t n : base->second) base_total += n;
  }
  return h->count() - base_total;
}

std::uint64_t TestProbe::histogram_delta_above(const std::string& name,
                                               double threshold) const {
  const Histogram* h = registry_.find_histogram(name);
  if (h == nullptr) return 0;
  // Baseline tally over the same buckets count_above() sums.
  const auto& bounds = h->bounds();
  std::size_t first = 0;
  while (first < bounds.size() && bounds[first] < threshold) ++first;
  std::uint64_t base_total = 0;
  const auto base = histograms0_.find(name);
  if (base != histograms0_.end()) {
    for (std::size_t i = first + 1; i < base->second.size(); ++i) {
      base_total += base->second[i];
    }
  }
  return h->count_above(threshold) - base_total;
}

verify::Json TestProbe::delta_snapshot() const {
  using verify::Json;
  Json root = Json::object();
  root.set("schema_version", Json(1.0));

  Json counters = Json::object();
  for (const auto& [name, value] : registry_.counter_values()) {
    if (!is_deterministic_metric(name)) continue;
    const auto base = counters0_.find(name);
    const std::uint64_t delta =
        value - (base == counters0_.end() ? 0 : base->second);
    counters.set(name, Json(static_cast<double>(delta)));
  }
  root.set("counters", std::move(counters));

  Json hists = Json::object();
  for (const auto& [name, counts] : registry_.histogram_counts()) {
    if (!is_deterministic_metric(name)) continue;
    const auto base = histograms0_.find(name);
    std::vector<double> deltas(counts.size());
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::uint64_t b =
          (base != histograms0_.end() && i < base->second.size())
              ? base->second[i]
              : 0;
      deltas[i] = static_cast<double>(counts[i] - b);
    }
    hists.set(name, Json::array_of(deltas));
  }
  root.set("histograms", std::move(hists));
  return root;
}

}  // namespace sfc::trace
