// Metrics registry: named counters, gauges and histograms behind atomic
// hot paths. The registry answers "what did the engine do" (Newton
// iterations, LU factorizations, step rejections, thread-pool load) as a
// canonical verify::Json snapshot whose deterministic subset is
// bit-identical across thread counts for a deterministic workload.
//
// Contract
// --------
//   * Instrument sites hold a `Counter&` (stable address for the process
//     lifetime) and touch one relaxed atomic per event — never the
//     registry mutex, which is only taken on first registration and on
//     snapshot.
//   * Metric names are dot-separated paths ("spice.newton.iterations");
//     names ending in "_us" / "_ms" are *timing* metrics, excluded from
//     the deterministic snapshot because wall time is scheduling-
//     dependent. Everything else must be a pure function of the workload
//     (see DESIGN.md §11 for the name registry).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "verify/json.hpp"

namespace sfc::trace {

/// Monotonic event count. add() is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed instantaneous level (queue depth, live engines) with a
/// high-water mark. add() is one fetch_add plus a CAS loop on the max.
class Gauge {
 public:
  void add(std::int64_t delta);
  void set(std::int64_t v);
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  void raise_max(std::int64_t candidate);

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bound histogram: bucket k counts samples with
/// value <= bounds[k]; one extra overflow bucket catches the rest.
/// record() is one relaxed fetch_add on the bucket plus CAS maintenance
/// of sum/max. Bounds are fixed at registration and never change.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket counts, bounds_.size() + 1 entries (last = overflow).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }

  /// Total recorded samples strictly greater than `threshold` (computed
  /// from the bucket whose lower edge is >= threshold — exact when the
  /// threshold is one of the bounds).
  std::uint64_t count_above(double threshold) const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

/// Unit-width buckets 1..16 plus 32/64/128 — sized for per-step Newton
/// iteration counts (NewtonOptions::max_iterations defaults to 200).
std::vector<double> iteration_buckets();

/// True for metric names that measure wall time ("_us" / "_ms" suffix):
/// excluded from the deterministic snapshot and from TestProbe deltas.
bool is_timing_metric(const std::string& name);

/// True for metrics that depend on how work lands on workers rather than
/// on the workload ("exec.pool." prefix: a serial job never touches the
/// pool, a parallel one schedules one drain per worker).
bool is_scheduling_metric(const std::string& name);

/// Metrics that replay bit-identically for a deterministic workload at any
/// thread count: neither timing nor scheduling. Only these enter
/// Registry::snapshot(false) and TestProbe::delta_snapshot().
bool is_deterministic_metric(const std::string& name);

class Registry {
 public:
  /// Process-wide registry every SFC_TRACE_* macro records into.
  static Registry& global();

  /// Find-or-create. The returned reference is stable for the process
  /// lifetime, so call sites cache it in a function-local static.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// First registration fixes the bounds (empty = iteration_buckets()).
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Canonical metrics snapshot (schema_version 1, sorted keys):
  ///   { schema_version, counters: {name: n},
  ///     gauges: {name: {value, max}},
  ///     histograms: {name: {bounds, counts, count, sum, max}} }
  /// `include_timing` = false drops "_us"/"_ms" metrics and gauges (whose
  /// high-water marks depend on scheduling), leaving only values that are
  /// deterministic for a deterministic workload.
  verify::Json snapshot(bool include_timing = true) const;

  /// Names currently registered (sorted; diagnostics and tests).
  std::vector<std::string> counter_names() const;

  /// Raw value maps for delta probes (TestProbe baselines).
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, std::vector<std::uint64_t>> histogram_counts() const;
  /// Lookup without creating; nullptr when the name is unregistered.
  const Histogram* find_histogram(const std::string& name) const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Write Registry::global().snapshot() to `path` (dump(2) + newline).
void write_metrics_file(const std::string& path);

}  // namespace sfc::trace
