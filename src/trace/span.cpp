#include "trace/span.hpp"

#include <algorithm>

namespace sfc::trace {

namespace {

thread_local int t_open_spans = 0;

}  // namespace

int open_span_count() { return t_open_spans; }

Tracer& Tracer::global() {
  static Tracer instance;
  return instance;
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - t0_)
      .count();
}

void Tracer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
  t0_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto buf = std::make_unique<ThreadBuffer>();
    buf->tid = static_cast<int>(buffers_.size()) + 1;
    t_buffer = buf.get();
    buffers_.push_back(std::move(buf));
  }
  return *t_buffer;
}

void Tracer::record(const SpanEvent& event) {
  if (!enabled()) return;
  ThreadBuffer& buf = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(event);
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

verify::Json Tracer::chrome_json() const {
  using verify::Json;
  struct Row {
    int tid;
    SpanEvent ev;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      for (const SpanEvent& ev : buf->events) rows.push_back({buf->tid, ev});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ev.ts_us != b.ev.ts_us) return a.ev.ts_us < b.ev.ts_us;
    return a.ev.dur_us > b.ev.dur_us;  // parents before children
  });

  Json events = Json::array();
  for (const Row& row : rows) {
    Json e = Json::object();
    e.set("name", Json(std::string(row.ev.name)));
    e.set("cat", Json("sfc"));
    e.set("ph", Json("X"));
    e.set("ts", Json(row.ev.ts_us));
    e.set("dur", Json(row.ev.dur_us));
    e.set("pid", Json(1.0));
    e.set("tid", Json(static_cast<double>(row.tid)));
    Json args = Json::object();
    args.set("depth", Json(static_cast<double>(row.ev.depth)));
    e.set("args", std::move(args));
    events.as_array().push_back(std::move(e));
  }
  Json root = Json::object();
  root.set("displayTimeUnit", Json("ms"));
  root.set("traceEvents", std::move(events));
  return root;
}

void Tracer::write_chrome(const std::string& path) const {
  verify::write_json_file(path, chrome_json());
}

SpanScope::SpanScope(const char* name) noexcept {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  name_ = name;
  depth_ = t_open_spans++;
  t0_us_ = tracer.now_us();
}

SpanScope::~SpanScope() {
  if (name_ == nullptr) return;
  --t_open_spans;
  Tracer& tracer = Tracer::global();
  SpanEvent event;
  event.name = name_;
  event.ts_us = t0_us_;
  event.dur_us = tracer.now_us() - t0_us_;
  event.depth = depth_;
  tracer.record(event);
}

}  // namespace sfc::trace
