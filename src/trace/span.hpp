// Scoped-span tracing with Chrome-tracing export.
//
// SpanScope is an RAII region marker: construction notes the start time,
// destruction records a complete ("ph":"X") event into the global Tracer
// — also on the exception path, so an engine error can never leave a span
// open (test_verify_fuzz asserts this). When the tracer is disabled the
// constructor is one relaxed atomic load and nothing is recorded.
//
// Events land in per-thread buffers (one mutex acquisition per thread
// lifetime, to register the buffer); export merges and sorts them into a
// chrome://tracing JSON document.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "verify/json.hpp"

namespace sfc::trace {

/// One closed span. `name` must be a string literal (call sites pass
/// SFC_TRACE_SPAN("...") literals; nothing is copied on the hot path).
struct SpanEvent {
  const char* name = "";
  double ts_us = 0.0;   ///< start, microseconds since Tracer::start()
  double dur_us = 0.0;
  int depth = 0;        ///< nesting depth within the recording thread
};

/// Open-span nesting depth of the *calling thread*: incremented by live
/// SpanScopes, decremented on destruction (also when unwinding). Zero
/// whenever no span is active — the exception-safety invariant.
int open_span_count();

class Tracer {
 public:
  static Tracer& global();

  /// Clear previous events and begin recording (t = 0 is this call).
  void start();
  /// Stop recording; buffered events stay available for export.
  void stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Record a closed span on the calling thread's buffer. No-op when the
  /// tracer is disabled (spans that straddle stop() are dropped).
  void record(const SpanEvent& event);

  std::size_t event_count() const;

  /// Chrome-tracing document: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with one "X" event per span (pid 1, tid = buffer registration
  /// order), sorted by (tid, ts). Loads in chrome://tracing / Perfetto.
  verify::Json chrome_json() const;
  void write_chrome(const std::string& path) const;

  double now_us() const;

 private:
  struct ThreadBuffer {
    int tid = 0;
    std::vector<SpanEvent> events;
    std::mutex mutex;  ///< events are flushed while the thread may record
  };

  Tracer() = default;
  ThreadBuffer& buffer_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point t0_{};
  mutable std::mutex mutex_;  ///< guards buffers_ registration/iteration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

class SpanScope {
 public:
  explicit SpanScope(const char* name) noexcept;
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;  ///< null = tracer was off at entry
  int depth_ = 0;
  double t0_us_ = 0.0;
};

}  // namespace sfc::trace
