#include "trace/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "trace/registry.hpp"
#include "trace/span.hpp"

namespace sfc::trace {
namespace {

// atexit has no user data, so the flushed paths live in statics.
std::string& trace_path() {
  static std::string path;
  return path;
}

std::string& metrics_path() {
  static std::string path;
  return path;
}

void flush_observability() {
  if (!trace_path().empty()) {
    Tracer::global().stop();
    try {
      Tracer::global().write_chrome(trace_path());
      std::fprintf(stderr, "trace: wrote %s\n", trace_path().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "trace: %s\n", e.what());
    }
  }
  if (!metrics_path().empty()) {
    try {
      write_metrics_file(metrics_path());
      std::fprintf(stderr, "metrics: wrote %s\n", metrics_path().c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "metrics: %s\n", e.what());
    }
  }
}

}  // namespace

void install_cli_observability(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < *argc) {
      trace_path() = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path() = arg.substr(8);
    } else if (arg == "--metrics" && i + 1 < *argc) {
      metrics_path() = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path() = arg.substr(10);
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (trace_path().empty() && metrics_path().empty()) return;
  // Touch both singletons *before* registering the atexit handler:
  // static destruction runs in reverse construction order, so anything
  // first constructed later (e.g. the Registry, on the first counter hit
  // mid-run) would be destroyed before the handler that reads it.
  Registry::global();
  Tracer& tracer = Tracer::global();
  if (!trace_path().empty()) tracer.start();
  std::atexit(flush_observability);
}

}  // namespace sfc::trace
