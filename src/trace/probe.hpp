// Test-instrumentation harness: a TestProbe baselines the global metrics
// registry at construction and answers *delta* questions afterwards, so a
// test can assert on engine internals ("this transient rejected no steps",
// "the thread pool ran exactly K tasks") without resetting global state or
// caring what earlier tests recorded.
//
// Delta snapshots only cover deterministic metrics (is_deterministic_metric:
// timing and thread-pool scheduling names are skipped), so a delta snapshot
// is bit-identical across thread counts for a deterministic workload — the
// property test_trace pins down.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/registry.hpp"
#include "verify/json.hpp"

namespace sfc::trace {

class TestProbe {
 public:
  explicit TestProbe(Registry& registry = Registry::global());

  /// Re-baseline to the registry's current state.
  void reset();

  /// Counter increase since the baseline. Counters that did not exist at
  /// baseline count from zero; unknown names return 0.
  std::uint64_t counter_delta(const std::string& name) const;

  /// Total histogram records since the baseline.
  std::uint64_t histogram_delta(const std::string& name) const;

  /// Records with value > threshold since the baseline (bucket-exact when
  /// the threshold is a bucket bound — e.g. "no transient step needed
  /// more than 8 Newton iterations").
  std::uint64_t histogram_delta_above(const std::string& name,
                                      double threshold) const;

  /// Canonical Json of every non-timing counter / histogram delta
  /// (schema_version 1, sorted keys; zero deltas are included so the key
  /// set is stable). Diffable across runs and thread counts.
  verify::Json delta_snapshot() const;

 private:
  Registry& registry_;
  std::map<std::string, std::uint64_t> counters0_;
  /// Bucket counts (incl. overflow) at baseline, per histogram.
  std::map<std::string, std::vector<std::uint64_t>> histograms0_;
};

}  // namespace sfc::trace
