#include "trace/registry.hpp"

#include <algorithm>

namespace sfc::trace {

void Gauge::raise_max(std::int64_t candidate) {
  std::int64_t seen = max_.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !max_.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void Gauge::add(std::int64_t delta) {
  const std::int64_t now =
      value_.fetch_add(delta, std::memory_order_relaxed) + delta;
  raise_max(now);
}

void Gauge::set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  raise_max(v);
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double seen = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(seen, seen + value,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t Histogram::count_above(double threshold) const {
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), threshold);
  std::uint64_t total = 0;
  for (auto idx = static_cast<std::size_t>(it - bounds_.begin()) + 1;
       idx <= bounds_.size(); ++idx) {
    total += buckets_[idx].load(std::memory_order_relaxed);
  }
  return total;
}

std::vector<double> iteration_buckets() {
  std::vector<double> bounds;
  for (int i = 1; i <= 16; ++i) bounds.push_back(i);
  bounds.push_back(32.0);
  bounds.push_back(64.0);
  bounds.push_back(128.0);
  return bounds;
}

bool is_timing_metric(const std::string& name) {
  const auto ends_with = [&name](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
  };
  return ends_with("_us") || ends_with("_ms");
}

bool is_scheduling_metric(const std::string& name) {
  return name.rfind("exec.pool.", 0) == 0;
}

bool is_deterministic_metric(const std::string& name) {
  return !is_timing_metric(name) && !is_scheduling_metric(name);
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(bounds.empty() ? iteration_buckets()
                                                      : std::move(bounds));
  }
  return *slot;
}

verify::Json Registry::snapshot(bool include_timing) const {
  using verify::Json;
  std::lock_guard<std::mutex> lock(mutex_);
  Json root = Json::object();
  root.set("schema_version", Json(1.0));

  Json counters = Json::object();
  for (const auto& [name, c] : counters_) {
    if (!include_timing && !is_deterministic_metric(name)) continue;
    counters.set(name, Json(static_cast<double>(c->value())));
  }
  root.set("counters", std::move(counters));

  // Gauge values and high-water marks depend on scheduling (how deep the
  // queue got, how many spans overlapped), so the deterministic snapshot
  // drops the whole section rather than pretending they replay.
  if (include_timing) {
    Json gauges = Json::object();
    for (const auto& [name, g] : gauges_) {
      Json gj = Json::object();
      gj.set("value", Json(static_cast<double>(g->value())));
      gj.set("max", Json(static_cast<double>(g->max())));
      gauges.set(name, std::move(gj));
    }
    root.set("gauges", std::move(gauges));
  }

  Json hists = Json::object();
  for (const auto& [name, h] : histograms_) {
    if (!include_timing && !is_deterministic_metric(name)) continue;
    Json hj = Json::object();
    hj.set("bounds", Json::array_of(h->bounds()));
    const auto counts = h->counts();
    std::vector<double> as_double(counts.begin(), counts.end());
    hj.set("counts", Json::array_of(as_double));
    hj.set("count", Json(static_cast<double>(h->count())));
    if (include_timing) {
      // sum/max of a timing-valued histogram drift run to run even for a
      // deterministic workload; the deterministic subset keeps only the
      // bucket counts.
      hj.set("sum", Json(h->sum()));
      hj.set("max", Json(h->max()));
    }
    hists.set(name, std::move(hj));
  }
  root.set("histograms", std::move(hists));
  return root;
}

std::vector<std::string> Registry::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) names.push_back(name);
  return names;
}

std::map<std::string, std::uint64_t> Registry::counter_values() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, std::vector<std::uint64_t>> Registry::histogram_counts()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::vector<std::uint64_t>> out;
  for (const auto& [name, h] : histograms_) out[name] = h->counts();
  return out;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void write_metrics_file(const std::string& path) {
  verify::write_json_file(path, Registry::global().snapshot());
}

}  // namespace sfc::trace
