// One-call CLI wiring for the observability hooks: strip the shared
// --trace PATH / --metrics PATH flags from argv, start the span tracer when
// requested, and flush both outputs at normal process exit. Meant for the
// figure/bench executables whose mains should not each re-implement flag
// parsing; tools with their own exit-status contracts (perf_simulator,
// verify_runner) handle the flags explicitly instead.
#pragma once

namespace sfc::trace {

/// Consume `--trace PATH` / `--metrics PATH` (and `--trace=PATH` /
/// `--metrics=PATH`) from argv. When --trace is present, starts
/// Tracer::global() immediately and registers an atexit hook that stops the
/// tracer and writes Chrome trace JSON to PATH; --metrics registers a dump
/// of Registry::global() the same way. I/O failures at exit print to stderr
/// but do not change the exit status. Call once, before argv is parsed.
void install_cli_observability(int* argc, char** argv);

}  // namespace sfc::trace
