// Umbrella header of the observability layer (target sfc_trace):
// instrumented code includes this and uses only the SFC_TRACE_* macros.
//
// Compile-time gate
// -----------------
// SFC_TRACE_ENABLED (default 1; the CMake option SFC_TRACE=OFF passes 0)
// decides whether the macros expand to instrumentation or to nothing.
// With the gate off no atomic, clock read, or registry reference remains
// in the hot path — scripts/check.sh builds and smokes both flavours.
// The classes themselves are always compiled, so a disabled build still
// links against code that constructs a Registry explicitly (tests,
// TestProbe) — only the *macros* vanish.
//
// Runtime gates
// -------------
// Counters/gauges/histograms are always live when compiled in: one
// relaxed atomic per event, cheap enough for every Newton iteration.
// Spans additionally check Tracer::global().enabled() and record nothing
// until Tracer::start() — so `--trace` runs pay for buffering, ordinary
// runs pay one predictable branch.
#pragma once

#ifndef SFC_TRACE_ENABLED
#define SFC_TRACE_ENABLED 1
#endif

#include "trace/probe.hpp"
#include "trace/registry.hpp"
#include "trace/span.hpp"

#define SFC_TRACE_CONCAT_IMPL(a, b) a##b
#define SFC_TRACE_CONCAT(a, b) SFC_TRACE_CONCAT_IMPL(a, b)

#if SFC_TRACE_ENABLED

/// RAII span covering the rest of the enclosing scope.
#define SFC_TRACE_SPAN(name) \
  ::sfc::trace::SpanScope SFC_TRACE_CONCAT(sfc_trace_span_, __LINE__) { name }

/// counter[name] += n. The registry lookup runs once per call site
/// (function-local static), the increment is one relaxed fetch_add.
#define SFC_TRACE_COUNT(name, n)                                      \
  do {                                                                \
    static ::sfc::trace::Counter& sfc_trace_counter_ =                \
        ::sfc::trace::Registry::global().counter(name);               \
    sfc_trace_counter_.add(static_cast<std::uint64_t>(n));            \
  } while (0)

/// gauge[name] += delta (signed; tracks a high-water mark).
#define SFC_TRACE_GAUGE_ADD(name, delta)                              \
  do {                                                                \
    static ::sfc::trace::Gauge& sfc_trace_gauge_ =                    \
        ::sfc::trace::Registry::global().gauge(name);                 \
    sfc_trace_gauge_.add(static_cast<std::int64_t>(delta));           \
  } while (0)

/// histogram[name].record(value), default iteration_buckets() bounds.
#define SFC_TRACE_HIST(name, value)                                   \
  do {                                                                \
    static ::sfc::trace::Histogram& sfc_trace_hist_ =                 \
        ::sfc::trace::Registry::global().histogram(name);             \
    sfc_trace_hist_.record(static_cast<double>(value));               \
  } while (0)

#else  // SFC_TRACE_ENABLED == 0: every macro compiles to nothing.

#define SFC_TRACE_SPAN(name) ((void)0)
#define SFC_TRACE_COUNT(name, n) ((void)0)
#define SFC_TRACE_GAUGE_ADD(name, delta) ((void)0)
#define SFC_TRACE_HIST(name, value) ((void)0)

#endif  // SFC_TRACE_ENABLED
