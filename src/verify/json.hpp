// Minimal JSON value for the verification subsystem: golden files,
// structured oracle diffs, and the schema-stable benchmark output.
//
// Design constraints that rule out an off-the-shelf library:
//   * objects keep their members in a std::map, so serialization is
//     key-sorted by construction — two dumps of semantically equal values
//     are textually identical and diff cleanly;
//   * numbers serialize through a canonical shortest-round-trip format
//     (try %.15g, fall back to %.17g when the parse-back differs), so a
//     load/dump cycle is a fixed point and goldens never churn.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace sfc::verify {

class Json;

using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

class Json {
 public:
  Json() : value_(nullptr) {}
  Json(std::nullptr_t) : value_(nullptr) {}
  Json(bool b) : value_(b) {}
  Json(double d) : value_(d) {}
  Json(int i) : value_(static_cast<double>(i)) {}
  Json(long l) : value_(static_cast<double>(l)) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(JsonArray a) : value_(std::move(a)) {}
  Json(JsonObject o) : value_(std::move(o)) {}

  static Json object() { return Json(JsonObject{}); }
  static Json array() { return Json(JsonArray{}); }
  /// Numeric array convenience (golden value vectors).
  static Json array_of(const std::vector<double>& values);
  static Json array_of(const std::vector<std::string>& values);

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  double as_number() const { return std::get<double>(value_); }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const JsonArray& as_array() const { return std::get<JsonArray>(value_); }
  JsonArray& as_array() { return std::get<JsonArray>(value_); }
  const JsonObject& as_object() const { return std::get<JsonObject>(value_); }
  JsonObject& as_object() { return std::get<JsonObject>(value_); }

  /// Object member access. `set` inserts or overwrites; `get` throws
  /// std::runtime_error when the key is absent (goldens treat a missing
  /// quantity as a hard schema error, not a default).
  Json& set(const std::string& key, Json value);
  const Json& get(const std::string& key) const;
  bool has(const std::string& key) const;

  /// Typed getters with a path-context error message.
  double number_at(const std::string& key) const;
  const std::string& string_at(const std::string& key) const;
  std::vector<double> numbers_at(const std::string& key) const;
  std::vector<std::string> strings_at(const std::string& key) const;

  /// Serialize. `indent` = 0 emits a single line; > 0 pretty-prints with
  /// that many spaces per level. Object keys always come out sorted.
  std::string dump(int indent = 2) const;

  /// Parse a complete JSON document; throws std::runtime_error with a
  /// byte-offset message on malformed input or trailing garbage.
  static Json parse(const std::string& text);

  /// Canonical number rendering used by dump() (exposed for tests and for
  /// code that wants identical formatting outside a Json value).
  static std::string format_number(double v);

  bool operator==(const Json& other) const { return value_ == other.value_; }

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value_;
};

/// File helpers. `read_json_file` throws on I/O or parse errors;
/// `write_json_file` writes dump(2) plus a trailing newline atomically
/// enough for our purposes (temp file + rename is overkill here).
Json read_json_file(const std::string& path);
void write_json_file(const std::string& path, const Json& value);

}  // namespace sfc::verify
