#include "verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cim/array.hpp"
#include "cim/behavioral.hpp"
#include "cim/montecarlo.hpp"
#include "spice/engine.hpp"
#include "verify/json.hpp"

namespace sfc::verify {

std::string OracleReport::summary() const {
  std::ostringstream ss;
  ss << name << ": " << (match ? "MATCH" : "DIVERGED") << " ("
     << points_compared << " points";
  if (!match) ss << ", " << divergences << " diverging";
  ss << ")\n  A: " << arm_a << "\n  B: " << arm_b;
  if (first) {
    ss << "\n  first divergence: " << first->quantity << "[" << first->index
       << "]";
    if (!first->label.empty()) ss << " at " << first->label;
    ss << ": A=" << Json::format_number(first->a)
       << " B=" << Json::format_number(first->b);
  }
  for (const auto& n : notes) ss << "\n  note: " << n;
  return ss.str();
}

void OracleReport::diff_series(
    const std::string& quantity, const std::vector<double>& a,
    const std::vector<double>& b, double tol_abs, double tol_rel,
    const std::function<std::string(std::size_t)>& label_of) {
  if (a.size() != b.size()) {
    structural_failure(quantity + ": series length mismatch (" +
                       std::to_string(a.size()) + " vs " +
                       std::to_string(b.size()) + ")");
    return;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    ++points_compared;
    const double allowed = tol_abs + tol_rel * std::fabs(a[i]);
    const bool ok = std::isfinite(a[i]) && std::isfinite(b[i]) &&
                    std::fabs(a[i] - b[i]) <= allowed;
    if (ok) continue;
    ++divergences;
    match = false;
    if (!first) {
      first = Divergence{quantity, i, label_of ? label_of(i) : "", a[i], b[i]};
    }
  }
}

void OracleReport::diff_value(const std::string& quantity, double a, double b,
                              double tol_abs, double tol_rel,
                              const std::string& label) {
  diff_series(quantity, {a}, {b}, tol_abs, tol_rel,
              label.empty()
                  ? std::function<std::string(std::size_t)>()
                  : [&label](std::size_t) { return label; });
}

void OracleReport::structural_failure(std::string note) {
  match = false;
  notes.push_back(std::move(note));
}

// ---------------------------------------------------------------------------
// Stamp plan vs legacy assembler
// ---------------------------------------------------------------------------
namespace {

/// Two independent rows of the same config differing only in the Newton
/// assembly path. Separate CiMRow instances (not a shared circuit) so each
/// arm owns its device state and engine workspace.
struct EnginePair {
  sfc::cim::ArrayConfig hot_cfg;
  sfc::cim::ArrayConfig leg_cfg;

  explicit EnginePair(int cells) {
    hot_cfg = sfc::cim::ArrayConfig::proposed_2t1fefet();
    hot_cfg.cells_per_row = cells;
    hot_cfg.newton.use_stamp_plan = true;
    leg_cfg = hot_cfg;
    leg_cfg.newton.use_stamp_plan = false;
  }
};

std::string time_label(const std::vector<double>& t, std::size_t i) {
  if (i >= t.size()) return "";
  return "t=" + Json::format_number(t[i]);
}

}  // namespace

OracleReport oracle_stampplan_vs_legacy_dc() {
  OracleReport rep;
  rep.name = "stampplan_vs_legacy_dc";
  rep.arm_a = "compiled stamp-plan Newton assembly (use_stamp_plan=true)";
  rep.arm_b = "legacy full-restamp Newton assembly (use_stamp_plan=false)";
  const EnginePair pair(4);
  sfc::cim::CiMRow hot_row(pair.hot_cfg), leg_row(pair.leg_cfg);
  const std::vector<int> stored = {1, 0, 1, 1};
  hot_row.set_stored(stored);
  leg_row.set_stored(stored);
  sfc::spice::Engine hot(hot_row.circuit(), 27.0);
  sfc::spice::Engine leg(leg_row.circuit(), 27.0);
  for (double t : {0.0, 27.0, 85.0}) {
    hot.set_temperature_c(t);
    leg.set_temperature_c(t);
    const auto a = hot.dc_operating_point(pair.hot_cfg.newton);
    const auto b = leg.dc_operating_point(pair.leg_cfg.newton);
    if (!a.converged || !b.converged) {
      rep.structural_failure("DC solve failed to converge at T=" +
                             Json::format_number(t));
      continue;
    }
    rep.diff_series("x_T" + Json::format_number(t), a.x, b.x);
  }
  return rep;
}

OracleReport oracle_stampplan_vs_legacy_transient() {
  OracleReport rep;
  rep.name = "stampplan_vs_legacy_transient";
  rep.arm_a = "compiled stamp-plan engine, Fig. 8 MAC transient";
  rep.arm_b = "legacy full-restamp engine, Fig. 8 MAC transient";
  const EnginePair pair(8);
  sfc::cim::CiMRow hot_row(pair.hot_cfg), leg_row(pair.leg_cfg);
  const std::vector<int> stored = {1, 0, 1, 1, 0, 1, 0, 1};
  const std::vector<int> inputs = {1, 1, 0, 1, 0, 1, 1, 0};
  hot_row.set_stored(stored);
  leg_row.set_stored(stored);
  const auto a = hot_row.evaluate(inputs, 27.0, /*keep_waveforms=*/true);
  const auto b = leg_row.evaluate(inputs, 27.0, /*keep_waveforms=*/true);
  if (!a.converged || !b.converged) {
    rep.structural_failure("MAC transient failed to converge");
    return rep;
  }
  const auto& ta = a.waveforms.time();
  rep.diff_series("time", ta, b.waveforms.time());
  // Bit-exact contract: every recorded signal at every time step.
  for (const auto& sig : a.waveforms.signal_names()) {
    if (!b.waveforms.has_signal(sig)) {
      rep.structural_failure("signal '" + sig + "' missing from legacy arm");
      continue;
    }
    rep.diff_series(sig, a.waveforms.waveform(sig), b.waveforms.waveform(sig),
                    0.0, 0.0,
                    [&ta](std::size_t i) { return time_label(ta, i); });
  }
  rep.diff_value("energy_joules", a.energy_joules, b.energy_joules);
  rep.diff_value("v_acc", a.v_acc, b.v_acc);
  return rep;
}

// ---------------------------------------------------------------------------
// SPICE row vs behavioural model
// ---------------------------------------------------------------------------
OracleReport oracle_spice_vs_behavioral() {
  OracleReport rep;
  rep.name = "spice_vs_behavioral";
  rep.arm_a = "transient CiMRow simulation (SPICE level)";
  rep.arm_b = "calibrated BehavioralArrayModel lookup";
  const sfc::cim::ArrayConfig cfg = sfc::cim::ArrayConfig::proposed_2t1fefet();
  const std::vector<double> grid = {0.0, 27.0, 85.0};
  const auto model = sfc::cim::BehavioralArrayModel::calibrate(cfg, grid);

  sfc::cim::CiMRow row(cfg);
  const int n = row.cells();
  row.set_stored(std::vector<int>(static_cast<std::size_t>(n), 1));
  const auto eval_mac = [&](int k, double t) {
    std::vector<int> inputs(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < k; ++i) inputs[static_cast<std::size_t>(i)] = 1;
    return row.evaluate(inputs, t);
  };

  // At calibration grid temperatures the lookup must reproduce the
  // simulation it was built from exactly (same code path, same circuit).
  for (double t : grid) {
    std::vector<double> spice_v, model_v;
    for (int k = 0; k <= n; ++k) {
      const auto r = eval_mac(k, t);
      if (!r.converged) {
        rep.structural_failure("row transient failed to converge");
        return rep;
      }
      spice_v.push_back(r.v_acc);
      model_v.push_back(model.v_acc(k, t));
    }
    rep.diff_series(
        "v_acc_T" + Json::format_number(t), spice_v, model_v, 0.0, 0.0,
        [](std::size_t i) { return "mac" + std::to_string(i); });
  }

  // Between grid points the model interpolates; hold it to a modelling
  // tolerance (a few mV) rather than bit-exactness.
  {
    const double t_mid = 55.0;
    std::vector<double> spice_v, model_v;
    for (int k = 0; k <= n; ++k) {
      const auto r = eval_mac(k, t_mid);
      if (!r.converged) {
        rep.structural_failure("row transient failed to converge");
        return rep;
      }
      spice_v.push_back(r.v_acc);
      model_v.push_back(model.v_acc(k, t_mid));
    }
    rep.diff_series(
        "v_acc_T55_interpolated", spice_v, model_v, 5e-3, 0.0,
        [](std::size_t i) { return "mac" + std::to_string(i); });
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Serial vs parallel Monte Carlo
// ---------------------------------------------------------------------------
OracleReport oracle_serial_vs_parallel_montecarlo(int threads) {
  OracleReport rep;
  rep.name = "serial_vs_parallel_montecarlo";
  rep.arm_a = "run_montecarlo, 1 thread";
  rep.arm_b = "run_montecarlo, " + std::to_string(threads) + " threads";
  sfc::cim::MonteCarloConfig mc;
  mc.runs = 6;
  mc.sigma_vt_fefet = 0.054;
  mc.mac_values = {0, 4, 8};
  const sfc::cim::ArrayConfig cfg = sfc::cim::ArrayConfig::proposed_2t1fefet();

  mc.exec = sfc::exec::ExecPolicy::serial();
  const auto a = sfc::cim::run_montecarlo(cfg, mc);
  mc.exec.threads = threads;
  const auto b = sfc::cim::run_montecarlo(cfg, mc);

  if (a.samples.size() != b.samples.size()) {
    rep.structural_failure("sample count mismatch");
    return rep;
  }
  std::vector<double> va, vb;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    if (a.samples[i].run != b.samples[i].run ||
        a.samples[i].mac != b.samples[i].mac) {
      rep.structural_failure("sample ordering mismatch at index " +
                             std::to_string(i));
      return rep;
    }
    va.push_back(a.samples[i].v_acc);
    vb.push_back(b.samples[i].v_acc);
    labels.push_back("run" + std::to_string(a.samples[i].run) + "_mac" +
                     std::to_string(a.samples[i].mac));
  }
  rep.diff_series("sample.v_acc", va, vb, 0.0, 0.0,
                  [&labels](std::size_t i) { return labels[i]; });
  rep.diff_series("nominal_levels", a.nominal_levels, b.nominal_levels);
  rep.diff_value("max_error_percent", a.max_error_percent,
                 b.max_error_percent);
  return rep;
}

const std::vector<OracleCase>& oracle_cases() {
  static const std::vector<OracleCase> cases = {
      {"stampplan_vs_legacy_dc", [] { return oracle_stampplan_vs_legacy_dc(); }},
      {"stampplan_vs_legacy_transient",
       [] { return oracle_stampplan_vs_legacy_transient(); }},
      {"spice_vs_behavioral", [] { return oracle_spice_vs_behavioral(); }},
      {"serial_vs_parallel_montecarlo",
       [] { return oracle_serial_vs_parallel_montecarlo(); }},
  };
  return cases;
}

}  // namespace sfc::verify
