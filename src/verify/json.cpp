#include "verify/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sfc::verify {

Json Json::array_of(const std::vector<double>& values) {
  JsonArray a;
  a.reserve(values.size());
  for (double v : values) a.emplace_back(v);
  return Json(std::move(a));
}

Json Json::array_of(const std::vector<std::string>& values) {
  JsonArray a;
  a.reserve(values.size());
  for (const auto& v : values) a.emplace_back(v);
  return Json(std::move(a));
}

Json& Json::set(const std::string& key, Json value) {
  return as_object()[key] = std::move(value);
}

const Json& Json::get(const std::string& key) const {
  const JsonObject& o = as_object();
  const auto it = o.find(key);
  if (it == o.end()) {
    throw std::runtime_error("Json: missing key '" + key + "'");
  }
  return it->second;
}

bool Json::has(const std::string& key) const {
  return is_object() && as_object().count(key) > 0;
}

double Json::number_at(const std::string& key) const {
  const Json& v = get(key);
  if (!v.is_number()) {
    throw std::runtime_error("Json: key '" + key + "' is not a number");
  }
  return v.as_number();
}

const std::string& Json::string_at(const std::string& key) const {
  const Json& v = get(key);
  if (!v.is_string()) {
    throw std::runtime_error("Json: key '" + key + "' is not a string");
  }
  return v.as_string();
}

std::vector<double> Json::numbers_at(const std::string& key) const {
  const Json& v = get(key);
  if (!v.is_array()) {
    throw std::runtime_error("Json: key '" + key + "' is not an array");
  }
  std::vector<double> out;
  out.reserve(v.as_array().size());
  for (const Json& e : v.as_array()) {
    if (!e.is_number()) {
      throw std::runtime_error("Json: key '" + key +
                               "' has a non-numeric element");
    }
    out.push_back(e.as_number());
  }
  return out;
}

std::vector<std::string> Json::strings_at(const std::string& key) const {
  const Json& v = get(key);
  if (!v.is_array()) {
    throw std::runtime_error("Json: key '" + key + "' is not an array");
  }
  std::vector<std::string> out;
  out.reserve(v.as_array().size());
  for (const Json& e : v.as_array()) {
    if (!e.is_string()) {
      throw std::runtime_error("Json: key '" + key +
                               "' has a non-string element");
    }
    out.push_back(e.as_string());
  }
  return out;
}

std::string Json::format_number(double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the least-surprising encoding and the
    // golden comparator treats it as an immediate mismatch.
    return "null";
  }
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent * depth), ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (is_bool()) {
    out += as_bool() ? "true" : "false";
  } else if (is_number()) {
    out += format_number(as_number());
  } else if (is_string()) {
    append_escaped(out, as_string());
  } else if (is_array()) {
    const JsonArray& a = as_array();
    if (a.empty()) {
      out += "[]";
      return;
    }
    out += '[';
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (i) out += indent > 0 ? "," : ", ";
      newline_indent(out, indent, depth + 1);
      a[i].dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += ']';
  } else {
    const JsonObject& o = as_object();
    if (o.empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : o) {
      if (!first) out += indent > 0 ? "," : ", ";
      first = false;
      newline_indent(out, indent, depth + 1);
      append_escaped(out, key);
      out += ": ";
      value.dump_to(out, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out += '}';
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("Json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json(nullptr);
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    JsonObject o;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(o));
    }
  }

  Json parse_array() {
    expect('[');
    JsonArray a;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(a));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const unsigned code =
              static_cast<unsigned>(std::strtoul(hex.c_str(), nullptr, 16));
          // ASCII only; our producers never emit anything else.
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) fail("malformed number '" + tok + "'");
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json read_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  try {
    return Json::parse(ss.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

void write_json_file(const std::string& path, const Json& value) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << value.dump(2) << '\n';
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace sfc::verify
