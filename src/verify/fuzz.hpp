// Property-based netlist fuzzer.
//
// Each case index i deterministically derives its private RNG from the
// counter-based stream exec::stream_seed(seed, i), generates a random
// netlist of one of four classes, instantiates it, and checks the solver
// invariants of that class:
//   * dc_kcl        — random R / diode / MOSFET / FeFET network with DC
//                     sources: Newton converges and the KCL residual
//                     |A(x)·x − b(x)| at the solution is at LU roundoff;
//   * charge_share  — capacitors to ground joined by node-to-node
//                     resistors, no sources: total charge Σ C·V is
//                     conserved across the transient (the physics behind
//                     the row's charge-share phase, Eq. 1);
//   * subthreshold_temp — random subthreshold bias on a random MOSFET/
//                     FeFET channel: drain current grows monotonically in
//                     T over 0..85 degC (the paper's Fig. 1 premise);
//   * cim_row       — a paper-shaped small CiM row with random weights,
//                     inputs and temperature: converges, output within the
//                     supply window, and invariant under a simultaneous
//                     permutation of (weight, input) pairs.
//
// A failing case is shrunk by greedy delta-debugging (drop one device at a
// time while the invariant still fails) and dumped as a .cir reproducer
// that round-trips through spice::parse_netlist.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "spice/circuit.hpp"

namespace sfc::verify {

enum class FuzzClass { kDcKcl, kChargeShare, kSubthresholdTemp, kCimRow };

const char* fuzz_class_name(FuzzClass c);

struct FuzzOptions {
  int count = 200;
  std::uint64_t seed = 0x5eedf0220badc0deULL;
  /// Where .cir reproducers are written ("" = current directory).
  std::string dump_dir;
  /// Max node-equation residual |A x - b| relative to the row magnitude.
  double kcl_tol = 1e-8;
  /// Allowed relative drift of the total capacitor charge over a
  /// transient (absorbs gmin leakage plus integrator roundoff).
  double charge_tol_rel = 1e-3;
  /// Absolute charge floor for circuits whose total charge is ~0 [C].
  double charge_tol_abs = 1e-18;
  /// |v_acc| deviation allowed under a (weight, input) pair permutation.
  double permutation_tol = 1e-6;
  /// Include the (slower) transient CiM-row class.
  bool include_cim_rows = true;
  /// Lint every generated-valid card-based deck (src/lint): a clean
  /// invariant run whose deck still draws diagnostics is a campaign
  /// failure — the generator and the static analyzer must agree on what a
  /// well-formed netlist is.
  bool lint_cross_check = true;
  /// Differential soundness oracle for the interval operating-point
  /// analysis (lint/analysis.hpp): every converged DC solution must lie
  /// inside the statically computed per-node bias interval, and every
  /// charge-share transient must stay inside the envelope interval. An
  /// escape means the abstract domain is unsound — a hard failure
  /// ("interval_escape" / "envelope_escape").
  bool interval_oracle = true;
};

/// One device card of a generated netlist. Node index -1 is ground,
/// k >= 0 is node "n<k>".
struct FuzzDevice {
  enum class Kind {
    kResistor,
    kCapacitor,
    kVSource,
    kISource,
    kDiode,
    kMosfet,
    kFeFet
  };
  Kind kind = Kind::kResistor;
  std::string name;
  int n1 = -1, n2 = -1, n3 = -1;  ///< terminal node indices
  double value = 0.0;             ///< R / C / V / I main value
  double ic = 0.0;                ///< capacitor initial condition [V]
  bool has_ic = false;
  int fefet_state = 1;            ///< stored bit for FeFET cards
  devices::MosfetParams mos;      ///< kMosfet parameters
  devices::DiodeParams dio;       ///< kDiode parameters
};

/// A generated netlist: the device list plus the directives needed to
/// re-run its invariant.
struct FuzzNetlist {
  FuzzClass cls = FuzzClass::kDcKcl;
  int index = 0;            ///< case index within the fuzz run
  std::uint64_t seed = 0;   ///< stream seed the case was generated from
  int num_nodes = 0;
  double temperature_c = 27.0;
  double t_stop = 0.0;      ///< transient length (charge_share) [s]
  double dt = 0.0;
  std::vector<FuzzDevice> devices;

  /// Instantiate into a circuit (node k -> "n<k>").
  void build(spice::Circuit& circuit) const;

  /// SPICE deck (cards + .tran/.temp directives + provenance comments)
  /// parseable by spice::parse_netlist.
  std::string to_cir(const std::string& failure_note = "") const;
};

struct FuzzFailure {
  int index = 0;
  FuzzClass cls = FuzzClass::kDcKcl;
  std::string invariant;       ///< which property broke
  std::string detail;          ///< measured vs allowed
  int devices_before_shrink = 0;
  int devices_after_shrink = 0;
  std::string reproducer_path; ///< minimized .cir artifact ("" if dump failed)
  FuzzNetlist minimized;
};

struct FuzzReport {
  int executed = 0;
  int per_class[4] = {0, 0, 0, 0};  ///< cases run per FuzzClass
  std::vector<FuzzFailure> failures;
  /// FNV-1a hash over every case's key observables — two runs with the
  /// same options must produce the same hash (determinism anchor).
  std::uint64_t observable_hash = 0;

  bool pass() const { return failures.empty(); }
  std::string summary() const;
};

/// Run the whole fuzz campaign. Deterministic for fixed options.
FuzzReport run_fuzz(const FuzzOptions& options);

/// Generate case `index` of a campaign (exposed for tests/shrinking).
FuzzNetlist generate_netlist(const FuzzOptions& options, int index);

/// Check a netlist's invariant. Returns nullopt on pass, else a
/// {invariant, detail} failure pair.
struct InvariantFailure {
  std::string invariant;
  std::string detail;
};
std::optional<InvariantFailure> check_invariants(const FuzzNetlist& netlist,
                                                 const FuzzOptions& options);

/// Greedy delta-debug: repeatedly drop single devices while the invariant
/// keeps failing. Returns the minimized netlist (== input when no device
/// can be removed).
FuzzNetlist shrink_netlist(const FuzzNetlist& failing,
                           const FuzzOptions& options);

}  // namespace sfc::verify
