#include "verify/fuzz.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "cim/array.hpp"
#include "exec/stream.hpp"
#include "fefet/fefet.hpp"
#include "lint/analysis.hpp"
#include "lint/linter.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"
#include "verify/json.hpp"

namespace sfc::verify {

const char* fuzz_class_name(FuzzClass c) {
  switch (c) {
    case FuzzClass::kDcKcl: return "dc_kcl";
    case FuzzClass::kChargeShare: return "charge_share";
    case FuzzClass::kSubthresholdTemp: return "subthreshold_temp";
    case FuzzClass::kCimRow: return "cim_row";
  }
  return "unknown";
}

namespace {

std::string node_name(int k) {
  return k < 0 ? std::string("0") : "n" + std::to_string(k);
}

spice::NodeId node_id(spice::Circuit& circuit, int k) {
  return k < 0 ? spice::kGround : circuit.node(node_name(k));
}

/// Newton options used for every fuzz solve: tighter than the defaults so
/// the KCL residual check measures solver quality, not loose tolerances.
spice::NewtonOptions fuzz_newton() {
  spice::NewtonOptions o;
  o.vtol = 1e-11;
  o.reltol = 1e-8;
  return o;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t hash_double(std::uint64_t h, double v) {
  return fnv1a(h, &v, sizeof(v));
}

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

double log_uniform(util::Rng& rng, double lo, double hi) {
  return lo * std::pow(hi / lo, rng.uniform());
}

FuzzNetlist generate_dc_kcl(util::Rng& rng, FuzzNetlist base) {
  base.cls = FuzzClass::kDcKcl;
  const int n = 2 + static_cast<int>(rng.uniform_index(5));  // 2..6 nodes
  int next_node = n;  // extra internal nodes for diode series chains
  base.temperature_c = rng.uniform(0.0, 85.0);
  int serial = 0;
  const auto next_name = [&serial](const char* prefix) {
    return std::string(prefix) + std::to_string(++serial);
  };
  const auto any_node = [&](bool allow_ground) {
    if (allow_ground && rng.bernoulli(0.25)) return -1;
    return static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
  };

  // DC sources on distinct nodes (two ideal sources on one node would make
  // the MNA system singular, which is a malformed input, not a solver bug).
  const auto source_nodes = rng.permutation(static_cast<std::size_t>(n));
  const int num_sources = 1 + static_cast<int>(rng.uniform_index(2));
  for (int s = 0; s < num_sources; ++s) {
    FuzzDevice d;
    d.kind = FuzzDevice::Kind::kVSource;
    d.name = next_name("V");
    d.n1 = static_cast<int>(source_nodes[static_cast<std::size_t>(s)]);
    d.n2 = -1;
    d.value = rng.uniform(0.0, 1.2);
    base.devices.push_back(d);
  }

  // A resistor ring over a random node order guarantees every node has a
  // DC path to the grounded sources and at least two terminal touches —
  // the lint cross-check runs these decks through the static analyzer,
  // which (rightly) rejects floating islands and dangling terminals.
  const auto ring = rng.permutation(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    FuzzDevice d;
    d.kind = FuzzDevice::Kind::kResistor;
    d.name = next_name("R");
    d.n1 = static_cast<int>(ring[static_cast<std::size_t>(k)]);
    d.n2 = static_cast<int>(ring[static_cast<std::size_t>((k + 1) % n)]);
    d.value = log_uniform(rng, 1e2, 1e7);
    base.devices.push_back(d);
  }
  const int num_extra = static_cast<int>(rng.uniform_index(4));
  for (int r = 0; r < num_extra; ++r) {
    FuzzDevice d;
    d.kind = FuzzDevice::Kind::kResistor;
    d.name = next_name("R");
    d.n1 = any_node(false);
    do {
      d.n2 = any_node(true);
    } while (d.n2 == d.n1);
    d.value = log_uniform(rng, 1e2, 1e7);
    base.devices.push_back(d);
  }

  // Diodes always get a dedicated series resistor (an ideal source across
  // a bare junction is a pathological operating point, not a solver test).
  const int num_diodes = static_cast<int>(rng.uniform_index(3));
  for (int k = 0; k < num_diodes; ++k) {
    const int mid = next_node++;
    FuzzDevice rs;
    rs.kind = FuzzDevice::Kind::kResistor;
    rs.name = next_name("R");
    rs.n1 = any_node(false);
    rs.n2 = mid;
    rs.value = log_uniform(rng, 1e3, 1e6);
    base.devices.push_back(rs);
    FuzzDevice d;
    d.kind = FuzzDevice::Kind::kDiode;
    d.name = next_name("D");
    d.dio.i_sat = log_uniform(rng, 1e-16, 1e-12);
    d.dio.emission = rng.uniform(1.0, 2.0);
    const bool forward = rng.bernoulli(0.5);
    d.n1 = forward ? mid : -1;
    d.n2 = forward ? -1 : mid;
    base.devices.push_back(d);
  }

  const int num_mosfets = static_cast<int>(rng.uniform_index(3));
  for (int k = 0; k < num_mosfets; ++k) {
    FuzzDevice d;
    d.kind = FuzzDevice::Kind::kMosfet;
    d.name = next_name("M");
    d.n1 = any_node(false);            // drain
    d.n2 = any_node(true);             // gate
    d.n3 = rng.bernoulli(0.7) ? -1 : any_node(true);  // source
    d.mos = devices::MosfetParams::finfet14_nmos(
        rng.uniform(0.5, 8.0));
    d.mos.vth0 = rng.uniform(0.25, 0.45);
    d.mos.n_factor = rng.uniform(1.1, 1.6);
    base.devices.push_back(d);
  }

  if (rng.bernoulli(0.4)) {
    FuzzDevice d;
    d.kind = FuzzDevice::Kind::kFeFet;
    d.name = next_name("Z");
    d.n1 = any_node(false);
    d.n2 = any_node(true);
    d.n3 = rng.bernoulli(0.7) ? -1 : any_node(true);
    d.fefet_state = rng.bernoulli(0.5) ? 1 : 0;
    base.devices.push_back(d);
  }

  base.num_nodes = next_node;
  return base;
}

FuzzNetlist generate_charge_share(util::Rng& rng, FuzzNetlist base) {
  base.cls = FuzzClass::kChargeShare;
  const int n = 2 + static_cast<int>(rng.uniform_index(4));  // 2..5 nodes
  base.num_nodes = n;
  base.temperature_c = rng.uniform(0.0, 85.0);
  base.t_stop = 20e-9;
  base.dt = 1e-10;
  int serial = 0;

  for (int k = 0; k < n; ++k) {
    FuzzDevice c;
    c.kind = FuzzDevice::Kind::kCapacitor;
    c.name = "C";
    c.name += std::to_string(++serial);
    c.n1 = k;
    c.n2 = -1;
    c.value = rng.uniform(1e-15, 10e-15);
    c.ic = rng.uniform(0.0, 1.2);
    c.has_ic = true;
    base.devices.push_back(c);
  }

  // A connecting chain over a random node order guarantees charge actually
  // moves, plus a few extra cross links. Resistors never touch ground —
  // that is what makes Σ C·V an invariant of the network.
  const auto order = rng.permutation(static_cast<std::size_t>(n));
  const int extra = static_cast<int>(rng.uniform_index(3));
  for (int k = 0; k + 1 < n + extra; ++k) {
    FuzzDevice r;
    r.kind = FuzzDevice::Kind::kResistor;
    r.name = "R";
    r.name += std::to_string(++serial);
    if (k + 1 < n) {
      r.n1 = static_cast<int>(order[static_cast<std::size_t>(k)]);
      r.n2 = static_cast<int>(order[static_cast<std::size_t>(k) + 1]);
    } else {
      r.n1 = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
      do {
        r.n2 =
            static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
      } while (r.n2 == r.n1);
    }
    r.value = log_uniform(rng, 1e3, 1e6);
    base.devices.push_back(r);
  }
  return base;
}

FuzzNetlist generate_subthreshold(util::Rng& rng, FuzzNetlist base) {
  base.cls = FuzzClass::kSubthresholdTemp;
  base.num_nodes = 2;  // n0 = gate, n1 = drain
  base.temperature_c = 27.0;

  FuzzDevice m;
  m.kind = FuzzDevice::Kind::kMosfet;
  m.name = "M1";
  m.n1 = 1;
  m.n2 = 0;
  m.n3 = -1;
  m.mos = devices::MosfetParams::finfet14_nmos(rng.uniform(0.5, 8.0));
  m.mos.vth0 = rng.uniform(0.25, 0.45);
  m.mos.n_factor = rng.uniform(1.1, 1.6);
  if (rng.bernoulli(0.3)) {
    // FeFET-like: the ferroelectric contributes an extra threshold shift
    // on top of a zero-vth0 channel (exactly how fefet::FeFet stamps).
    const double shift = m.mos.vth0;
    m.mos.vth0 = 0.0;
    m.fefet_state = 1;
    m.ic = shift;  // reuse: extra threshold shift for the invariant check
    m.has_ic = true;
  }
  base.devices.push_back(m);

  FuzzDevice vg;
  vg.kind = FuzzDevice::Kind::kVSource;
  vg.name = "VG";
  vg.n1 = 0;
  vg.n2 = -1;
  const double vth_total = (m.has_ic ? m.ic : m.mos.vth0);
  vg.value = vth_total - rng.uniform(0.08, 0.25);  // firmly subthreshold
  base.devices.push_back(vg);

  FuzzDevice vd;
  vd.kind = FuzzDevice::Kind::kVSource;
  vd.name = "VD";
  vd.n1 = 1;
  vd.n2 = -1;
  vd.value = rng.uniform(0.6, 1.2);
  base.devices.push_back(vd);
  return base;
}

FuzzNetlist generate_cim_row(util::Rng& rng, FuzzNetlist base) {
  base.cls = FuzzClass::kCimRow;
  const int cells = 2 + static_cast<int>(rng.uniform_index(2));  // 2..3
  base.num_nodes = cells;  // reused as the cell count
  base.temperature_c = rng.uniform(0.0, 85.0);
  for (int k = 0; k < cells; ++k) {
    FuzzDevice d;  // pseudo-device: per-cell (weight, input) pair
    d.kind = FuzzDevice::Kind::kFeFet;
    d.name = "CELL" + std::to_string(k);
    d.n1 = k;
    d.fefet_state = rng.bernoulli(0.5) ? 1 : 0;  // stored weight
    d.ic = rng.bernoulli(0.5) ? 1.0 : 0.0;       // input bit
    d.has_ic = true;
    base.devices.push_back(d);
  }
  return base;
}

}  // namespace

FuzzNetlist generate_netlist(const FuzzOptions& options, int index) {
  FuzzNetlist base;
  base.index = index;
  base.seed = exec::stream_seed(options.seed, static_cast<std::uint64_t>(index));
  util::Rng rng = exec::stream_rng(options.seed,
                                   static_cast<std::uint64_t>(index));
  if (options.include_cim_rows && index % 25 == 13) {
    return generate_cim_row(rng, std::move(base));
  }
  switch (index % 3) {
    case 0: return generate_dc_kcl(rng, std::move(base));
    case 1: return generate_charge_share(rng, std::move(base));
    default: return generate_subthreshold(rng, std::move(base));
  }
}

// ---------------------------------------------------------------------------
// Instantiation and .cir export
// ---------------------------------------------------------------------------

void FuzzNetlist::build(spice::Circuit& circuit) const {
  for (const FuzzDevice& d : devices) {
    switch (d.kind) {
      case FuzzDevice::Kind::kResistor:
        circuit.add<spice::Resistor>(d.name, node_id(circuit, d.n1),
                                     node_id(circuit, d.n2), d.value);
        break;
      case FuzzDevice::Kind::kCapacitor:
        circuit.add<spice::Capacitor>(
            d.name, node_id(circuit, d.n1), node_id(circuit, d.n2), d.value,
            d.has_ic ? d.ic : spice::Capacitor::kNoIc);
        break;
      case FuzzDevice::Kind::kVSource:
        circuit.add<spice::VSource>(d.name, node_id(circuit, d.n1),
                                    node_id(circuit, d.n2), d.value);
        break;
      case FuzzDevice::Kind::kISource:
        circuit.add<spice::ISource>(d.name, node_id(circuit, d.n1),
                                    node_id(circuit, d.n2), d.value);
        break;
      case FuzzDevice::Kind::kDiode:
        circuit.add<devices::Diode>(d.name, node_id(circuit, d.n1),
                                    node_id(circuit, d.n2), d.dio);
        break;
      case FuzzDevice::Kind::kMosfet:
        circuit.add<devices::Mosfet>(d.name, node_id(circuit, d.n1),
                                     node_id(circuit, d.n2),
                                     node_id(circuit, d.n3), d.mos);
        break;
      case FuzzDevice::Kind::kFeFet: {
        auto& z = circuit.add<fefet::FeFet>(d.name, node_id(circuit, d.n1),
                                            node_id(circuit, d.n2),
                                            node_id(circuit, d.n3));
        z.ferroelectric().set_polarization(d.fefet_state ? 1.0 : -1.0);
        break;
      }
    }
  }
}

std::string FuzzNetlist::to_cir(const std::string& failure_note) const {
  std::ostringstream ss;
  char buf[64];
  const auto num = [&buf](double v) -> const char* {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  };
  ss << "* fuzz reproducer: class=" << fuzz_class_name(cls)
     << " index=" << index << " seed=0x" << std::hex << seed << std::dec
     << "\n";
  if (!failure_note.empty()) ss << "* invariant violated: " << failure_note << "\n";
  if (cls == FuzzClass::kCimRow) {
    ss << "* paper-shaped CiM row (built by cim::CiMRow, not from cards):\n"
       << "*   cells=" << num_nodes << " T=" << num(temperature_c) << "\n";
    for (const FuzzDevice& d : devices) {
      ss << "*   " << d.name << " weight=" << d.fefet_state
         << " input=" << (d.ic > 0.5 ? 1 : 0) << "\n";
    }
    ss << ".end\n";
    return ss.str();
  }
  for (const FuzzDevice& d : devices) {
    switch (d.kind) {
      case FuzzDevice::Kind::kResistor:
        ss << d.name << " " << node_name(d.n1) << " " << node_name(d.n2)
           << " " << num(d.value) << "\n";
        break;
      case FuzzDevice::Kind::kCapacitor:
        ss << d.name << " " << node_name(d.n1) << " " << node_name(d.n2)
           << " " << num(d.value);
        if (d.has_ic) ss << " ic=" << num(d.ic);
        ss << "\n";
        break;
      case FuzzDevice::Kind::kVSource:
        ss << d.name << " " << node_name(d.n1) << " " << node_name(d.n2)
           << " " << num(d.value) << "\n";
        break;
      case FuzzDevice::Kind::kISource:
        ss << d.name << " " << node_name(d.n1) << " " << node_name(d.n2)
           << " " << num(d.value) << "\n";
        break;
      case FuzzDevice::Kind::kDiode:
        ss << d.name << " " << node_name(d.n1) << " " << node_name(d.n2)
           << " is=" << num(d.dio.i_sat) << " n=" << num(d.dio.emission)
           << "\n";
        break;
      case FuzzDevice::Kind::kMosfet: {
        const std::string model = "mod_" + d.name;
        // For the FeFET-like subthreshold variant the extra threshold
        // shift is folded into vth0 (bit-equivalent for a fixed state).
        const double vth0 = d.has_ic ? d.ic : d.mos.vth0;
        // .model must precede the instance card for the parser.
        ss << ".model " << model << " nmos vth0=" << num(vth0);
        ss << " n=" << num(d.mos.n_factor) << " mu0=" << num(d.mos.mu0)
           << " cox=" << num(d.mos.cox) << " lambda=" << num(d.mos.lambda)
           << " tcvth=" << num(d.mos.tc_vth)
           << " muexp=" << num(d.mos.mu_exponent)
           << " tnom=" << num(d.mos.t_nominal_c) << "\n";
        ss << d.name << " " << node_name(d.n1) << " " << node_name(d.n2)
           << " " << node_name(d.n3) << " " << model << " w=" << num(d.mos.w)
           << " l=" << num(d.mos.l) << "\n";
        break;
      }
      case FuzzDevice::Kind::kFeFet:
        ss << d.name << " " << node_name(d.n1) << " " << node_name(d.n2)
           << " " << node_name(d.n3) << " state=" << d.fefet_state << "\n";
        break;
    }
  }
  ss << ".temp " << num(temperature_c) << "\n";
  if (t_stop > 0.0) ss << ".tran " << num(dt) << " " << num(t_stop) << "\n";
  ss << ".end\n";
  return ss.str();
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------
namespace {

struct CheckResult {
  std::optional<InvariantFailure> failure;
  std::uint64_t observable = 0;  ///< hash over key computed values
};

InvariantFailure fail(std::string invariant, std::string detail) {
  return InvariantFailure{std::move(invariant), std::move(detail)};
}

CheckResult check_dc_kcl(const FuzzNetlist& nl, const FuzzOptions& opt) {
  CheckResult out;
  spice::Circuit circuit;
  nl.build(circuit);
  if (circuit.devices().empty()) return out;  // vacuous after shrinking
  spice::Engine engine(circuit, nl.temperature_c);
  const spice::NewtonOptions newton = fuzz_newton();
  const spice::DcResult op = engine.dc_operating_point(newton);
  if (!op.converged) {
    out.failure = fail("dc_convergence", "Newton failed to converge");
    return out;
  }
  // Re-assemble the system at the converged solution exactly as the engine
  // does (device stamps + gmin) and measure the KCL/branch residual.
  const std::size_t size = circuit.system_size();
  const std::size_t num_nodes = circuit.num_nodes();
  spice::DenseMatrix a(size, size);
  std::vector<double> b(size, 0.0);
  spice::SimContext ctx;
  ctx.mode = spice::AnalysisMode::kDcOperatingPoint;
  ctx.temperature_c = nl.temperature_c;
  ctx.gmin = op.gmin_used;
  ctx.num_nodes = num_nodes;
  spice::Stamper stamper(a, b, op.x, num_nodes);
  for (const auto& dev : circuit.devices()) dev->stamp(ctx, stamper);
  for (std::size_t n = 0; n < num_nodes; ++n) a.at(n, n) += ctx.gmin;

  double worst_rel = 0.0;
  std::size_t worst_row = 0;
  for (std::size_t i = 0; i < size; ++i) {
    double r = -b[i];
    double scale = std::fabs(b[i]);
    for (std::size_t j = 0; j < size; ++j) {
      const double term = a.at(i, j) * op.x[j];
      r += term;
      scale += std::fabs(term);
    }
    const double rel = std::fabs(r) / std::max(scale, 1e-12);
    if (rel > worst_rel) {
      worst_rel = rel;
      worst_row = i;
    }
    out.observable = hash_double(out.observable, op.x[i]);
  }
  if (worst_rel > opt.kcl_tol) {
    std::ostringstream d;
    d << "KCL residual " << Json::format_number(worst_rel) << " at "
      << (worst_row < num_nodes
              ? "node " + circuit.node_name(static_cast<int>(worst_row))
              : "aux row " + std::to_string(worst_row - num_nodes))
      << " exceeds tol " << Json::format_number(opt.kcl_tol);
    out.failure = fail("kcl_residual", d.str());
    return out;
  }

  // Differential soundness oracle: the static interval analysis claims a
  // per-node bias interval that provably contains every DC operating
  // point. The converged solver solution is a witness — an escape is an
  // unsoundness bug in the abstract domain, never a tolerance issue.
  if (opt.interval_oracle) {
    lint::IntervalOptions iopt;
    iopt.gmin_max = op.gmin_used;
    const lint::OperatingIntervals iv =
        lint::compute_operating_intervals(circuit, nullptr, iopt);
    for (std::size_t n = 0; n < num_nodes; ++n) {
      const double v = op.x[n];
      const lint::Interval bound =
          iv.dc_at(static_cast<spice::NodeId>(n));
      if (bound.is_empty() ||
          !bound.widened(1e-6 * (1.0 + std::fabs(v))).contains(v)) {
        std::ostringstream d;
        d << "solver DC value " << Json::format_number(v) << " at node "
          << circuit.node_name(static_cast<int>(n))
          << " escapes static interval " << bound.str();
        out.failure = fail("interval_escape", d.str());
        return out;
      }
    }
  }
  return out;
}

CheckResult check_charge_share(const FuzzNetlist& nl, const FuzzOptions& opt) {
  CheckResult out;
  spice::Circuit circuit;
  nl.build(circuit);
  double q_start = 0.0, c_total = 0.0, q_scale = 0.0;
  for (const FuzzDevice& d : nl.devices) {
    if (d.kind != FuzzDevice::Kind::kCapacitor) continue;
    q_start += d.value * (d.has_ic ? d.ic : 0.0);
    q_scale += d.value * std::fabs(d.has_ic ? d.ic : 0.0);
    c_total += d.value;
  }
  if (c_total == 0.0) return out;  // vacuous after shrinking
  spice::Engine engine(circuit, nl.temperature_c);
  spice::TransientOptions topt;
  topt.dt = nl.dt;
  topt.newton = fuzz_newton();
  const spice::TransientResult tr = engine.transient(nl.t_stop, topt);
  if (!tr.converged) {
    out.failure = fail("transient_convergence", "transient failed");
    return out;
  }
  // Envelope soundness oracle: every capacitor node's final transient
  // value must lie inside the static envelope interval (the analysis sees
  // no .tran directive here, but a null deck means "a transient may
  // follow", which engages envelope mode).
  const lint::OperatingIntervals iv =
      opt.interval_oracle
          ? lint::compute_operating_intervals(circuit, nullptr, {})
          : lint::OperatingIntervals{};
  double q_end = 0.0;
  for (const FuzzDevice& d : nl.devices) {
    if (d.kind != FuzzDevice::Kind::kCapacitor) continue;
    const std::string node = node_name(d.n1);
    if (!tr.has_signal(node)) continue;
    const double v = tr.final_value(node);
    q_end += d.value * v;
    out.observable = hash_double(out.observable, v);
    if (opt.interval_oracle && d.n1 >= 0) {
      const lint::Interval bound =
          iv.envelope_at(static_cast<spice::NodeId>(d.n1));
      if (bound.is_empty() ||
          !bound.widened(1e-6 * (1.0 + std::fabs(v))).contains(v)) {
        std::ostringstream msg;
        msg << "transient final value " << Json::format_number(v)
            << " at node " << node << " escapes static envelope "
            << bound.str();
        out.failure = fail("envelope_escape", msg.str());
        return out;
      }
    }
  }
  const double allowed = opt.charge_tol_abs + opt.charge_tol_rel * q_scale;
  if (std::fabs(q_end - q_start) > allowed) {
    std::ostringstream d;
    d << "charge drift " << Json::format_number(q_end - q_start)
      << " C (start " << Json::format_number(q_start) << ", end "
      << Json::format_number(q_end) << ") exceeds "
      << Json::format_number(allowed);
    out.failure = fail("charge_conservation", d.str());
  }
  return out;
}

CheckResult check_subthreshold(const FuzzNetlist& nl, const FuzzOptions&) {
  CheckResult out;
  const FuzzDevice* mosfet = nullptr;
  const FuzzDevice *vg = nullptr, *vd = nullptr;
  for (const FuzzDevice& d : nl.devices) {
    if (d.kind == FuzzDevice::Kind::kMosfet) mosfet = &d;
    if (d.kind == FuzzDevice::Kind::kVSource && d.name == "VG") vg = &d;
    if (d.kind == FuzzDevice::Kind::kVSource && d.name == "VD") vd = &d;
  }
  if (!mosfet || !vg || !vd) return out;  // vacuous after shrinking
  const double vth_extra = mosfet->has_ic ? mosfet->ic : 0.0;
  double prev = -1.0;
  for (double t = 0.0; t <= 85.0 + 1e-9; t += 5.0) {
    const devices::MosfetEval e = devices::evaluate_mosfet(
        mosfet->mos, vg->value, vd->value, 0.0, t, vth_extra);
    out.observable = hash_double(out.observable, e.id);
    if (e.id <= 0.0) {
      out.failure = fail("subthreshold_current_positive",
                         "Id <= 0 at T=" + Json::format_number(t));
      return out;
    }
    if (e.id <= prev) {
      std::ostringstream d;
      d << "Id(T) not strictly increasing: Id(" << t
        << ")=" << Json::format_number(e.id) << " <= Id(" << t - 5.0
        << ")=" << Json::format_number(prev);
      out.failure = fail("subthreshold_monotone_temperature", d.str());
      return out;
    }
    prev = e.id;
  }
  return out;
}

CheckResult check_cim_row(const FuzzNetlist& nl, const FuzzOptions& opt) {
  CheckResult out;
  if (nl.devices.empty()) return out;
  std::vector<int> stored, inputs;
  for (const FuzzDevice& d : nl.devices) {
    stored.push_back(d.fefet_state);
    inputs.push_back(d.ic > 0.5 ? 1 : 0);
  }
  cim::ArrayConfig cfg = cim::ArrayConfig::proposed_2t1fefet();
  cfg.cells_per_row = static_cast<int>(stored.size());
  cim::CiMRow row(cfg);
  row.set_stored(stored);
  const cim::MacResult r = row.evaluate(inputs, nl.temperature_c);
  if (!r.converged) {
    out.failure = fail("cim_row_convergence", "MAC transient failed");
    return out;
  }
  out.observable = hash_double(out.observable, r.v_acc);
  if (r.v_acc < -0.05 || r.v_acc > cfg.bias.v_bl + 0.05) {
    out.failure = fail("cim_row_output_bounds",
                       "v_acc=" + Json::format_number(r.v_acc) +
                           " outside [0, v_bl]");
    return out;
  }
  if (stored.size() > 1) {
    // Metamorphic invariant: the MAC depends only on the multiset of
    // (weight, input) pairs, so rotating the pairs across identical cells
    // must reproduce the output (up to solver noise).
    std::vector<int> stored2(stored.begin() + 1, stored.end());
    stored2.push_back(stored.front());
    std::vector<int> inputs2(inputs.begin() + 1, inputs.end());
    inputs2.push_back(inputs.front());
    cim::CiMRow row2(cfg);
    row2.set_stored(stored2);
    const cim::MacResult r2 = row2.evaluate(inputs2, nl.temperature_c);
    if (!r2.converged) {
      out.failure = fail("cim_row_convergence", "permuted MAC failed");
      return out;
    }
    if (std::fabs(r.v_acc - r2.v_acc) > opt.permutation_tol) {
      std::ostringstream d;
      d << "v_acc " << Json::format_number(r.v_acc)
        << " vs permuted " << Json::format_number(r2.v_acc)
        << " differ by more than "
        << Json::format_number(opt.permutation_tol);
      out.failure = fail("cim_row_permutation_invariance", d.str());
    }
  }
  return out;
}

CheckResult check_case(const FuzzNetlist& nl, const FuzzOptions& opt) {
  switch (nl.cls) {
    case FuzzClass::kDcKcl: return check_dc_kcl(nl, opt);
    case FuzzClass::kChargeShare: return check_charge_share(nl, opt);
    case FuzzClass::kSubthresholdTemp: return check_subthreshold(nl, opt);
    case FuzzClass::kCimRow: return check_cim_row(nl, opt);
  }
  return {};
}

}  // namespace

std::optional<InvariantFailure> check_invariants(const FuzzNetlist& netlist,
                                                 const FuzzOptions& options) {
  return check_case(netlist, options).failure;
}

FuzzNetlist shrink_netlist(const FuzzNetlist& failing,
                           const FuzzOptions& options) {
  const auto original = check_invariants(failing, options);
  if (!original) return failing;
  FuzzNetlist current = failing;
  bool progress = true;
  while (progress && current.devices.size() > 1) {
    progress = false;
    for (std::size_t i = 0; i < current.devices.size(); ++i) {
      FuzzNetlist candidate = current;
      candidate.devices.erase(candidate.devices.begin() +
                              static_cast<std::ptrdiff_t>(i));
      const auto f = check_invariants(candidate, options);
      if (f && f->invariant == original->invariant) {
        current = std::move(candidate);
        progress = true;
        break;  // restart the scan on the smaller netlist
      }
    }
  }
  return current;
}

std::string FuzzReport::summary() const {
  std::ostringstream ss;
  ss << (pass() ? "PASS" : "FAIL") << ": " << executed << " netlists (";
  for (int c = 0; c < 4; ++c) {
    if (c) ss << ", ";
    ss << fuzz_class_name(static_cast<FuzzClass>(c)) << "=" << per_class[c];
  }
  ss << "), hash=0x" << std::hex << observable_hash << std::dec;
  for (const auto& f : failures) {
    ss << "\n  case " << f.index << " [" << fuzz_class_name(f.cls) << "] "
       << f.invariant << ": " << f.detail << "\n    shrunk "
       << f.devices_before_shrink << " -> " << f.devices_after_shrink
       << " devices";
    if (!f.reproducer_path.empty()) ss << ", reproducer: " << f.reproducer_path;
  }
  return ss.str();
}

FuzzReport run_fuzz(const FuzzOptions& options) {
  FuzzReport report;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (int i = 0; i < options.count; ++i) {
    const FuzzNetlist nl = generate_netlist(options, i);
    ++report.per_class[static_cast<int>(nl.cls)];
    CheckResult r = check_case(nl, options);
    h = hash_double(h, static_cast<double>(r.observable));
    ++report.executed;

    // Static-analysis cross-check: every generated-valid card-based deck
    // must come out of the linter with zero diagnostics (the cim_row class
    // dumps a comment-only provenance deck, which has nothing to lint).
    if (!r.failure && options.lint_cross_check &&
        nl.cls != FuzzClass::kCimRow) {
      const lint::LintResult linted = lint::lint_source(nl.to_cir());
      if (!linted.report.clean()) {
        r.failure = fail("lint_clean", "generated-valid deck produced " +
                                           std::to_string(
                                               linted.report.diagnostics()
                                                   .size()) +
                                           " diagnostic(s):\n" +
                                           linted.report.to_text());
      }
    }
    if (!r.failure) continue;

    FuzzFailure f;
    f.index = i;
    f.cls = nl.cls;
    f.invariant = r.failure->invariant;
    f.detail = r.failure->detail;
    f.devices_before_shrink = static_cast<int>(nl.devices.size());
    f.minimized = shrink_netlist(nl, options);
    f.devices_after_shrink = static_cast<int>(f.minimized.devices.size());
    // The linter must take any shrunk reproducer — however degenerate —
    // without throwing anything but diagnostics.
    try {
      (void)lint::lint_source(f.minimized.to_cir(f.invariant));
    } catch (const std::exception& e) {
      f.detail += " [lint crashed on reproducer: " + std::string(e.what()) +
                  "]";
    }
    const std::string dir =
        options.dump_dir.empty() ? std::string(".") : options.dump_dir;
    const std::string path = dir + "/fuzz_" +
                             std::string(fuzz_class_name(nl.cls)) + "_" +
                             std::to_string(i) + ".cir";
    std::ofstream out(path);
    if (out) {
      out << f.minimized.to_cir(f.invariant + ": " + f.detail);
      f.reproducer_path = path;
    }
    report.failures.push_back(std::move(f));
  }
  report.observable_hash = h;
  return report;
}

}  // namespace sfc::verify
