#include "verify/golden.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "cim/array.hpp"
#include "cim/energy.hpp"
#include "cim/metrics.hpp"
#include "cim/montecarlo.hpp"
#include "spice/engine.hpp"
#include "util/stats.hpp"

namespace sfc::verify {

void GoldenRecord::set(const std::string& quantity,
                       std::vector<double> values,
                       std::vector<std::string> labels, Tolerance tol) {
  if (!labels.empty() && labels.size() != values.size()) {
    throw std::runtime_error("GoldenRecord: label/value count mismatch for '" +
                             quantity + "'");
  }
  quantities_[quantity] = Quantity{std::move(values), std::move(labels), tol};
}

void GoldenRecord::set_scalar(const std::string& quantity, double value,
                              Tolerance tol) {
  set(quantity, {value}, {}, tol);
}

const Quantity& GoldenRecord::at(const std::string& quantity) const {
  const auto it = quantities_.find(quantity);
  if (it == quantities_.end()) {
    throw std::runtime_error("GoldenRecord '" + name_ + "': no quantity '" +
                             quantity + "'");
  }
  return it->second;
}

Json GoldenRecord::to_json() const {
  Json root = Json::object();
  root.set("schema_version", kSchemaVersion);
  root.set("name", name_);
  root.set("description", description_);
  Json quantities = Json::object();
  for (const auto& [qname, q] : quantities_) {
    Json jq = Json::object();
    jq.set("values", Json::array_of(q.values));
    if (!q.labels.empty()) jq.set("labels", Json::array_of(q.labels));
    Json tol = Json::object();
    tol.set("abs", q.tol.abs);
    tol.set("rel", q.tol.rel);
    jq.set("tolerance", std::move(tol));
    quantities.set(qname, std::move(jq));
  }
  root.set("quantities", std::move(quantities));
  return root;
}

GoldenRecord GoldenRecord::from_json(const Json& j) {
  const double version = j.number_at("schema_version");
  if (version != kSchemaVersion) {
    throw std::runtime_error("golden schema version " +
                             Json::format_number(version) + " unsupported");
  }
  GoldenRecord r(j.string_at("name"), j.string_at("description"));
  for (const auto& [qname, jq] : j.get("quantities").as_object()) {
    Quantity q;
    q.values = jq.numbers_at("values");
    if (jq.has("labels")) q.labels = jq.strings_at("labels");
    const Json& tol = jq.get("tolerance");
    q.tol.abs = tol.number_at("abs");
    q.tol.rel = tol.number_at("rel");
    r.quantities_[qname] = std::move(q);
  }
  return r;
}

GoldenCompare compare_to_golden(const GoldenRecord& golden,
                                const GoldenRecord& actual) {
  GoldenCompare out;
  for (const auto& [qname, expected] : golden.quantities()) {
    const auto it = actual.quantities().find(qname);
    if (it == actual.quantities().end()) {
      out.missing_quantities.push_back(qname);
      out.pass = false;
      continue;
    }
    const Quantity& got = it->second;
    if (got.values.size() != expected.values.size()) {
      out.size_mismatches.push_back(qname + ": expected " +
                                    std::to_string(expected.values.size()) +
                                    " values, got " +
                                    std::to_string(got.values.size()));
      out.pass = false;
      continue;
    }
    for (std::size_t i = 0; i < expected.values.size(); ++i) {
      ++out.values_compared;
      const double e = expected.values[i];
      const double a = got.values[i];
      const double allowed =
          expected.tol.abs + expected.tol.rel * std::fabs(e);
      const bool ok =
          std::isfinite(a) && std::isfinite(e) && std::fabs(a - e) <= allowed;
      if (ok) continue;
      out.pass = false;
      if (out.mismatches.size() < 16) {
        Mismatch m;
        m.quantity = qname;
        m.index = i;
        m.label = i < expected.labels.size() ? expected.labels[i] : "";
        m.expected = e;
        m.actual = a;
        m.allowed = allowed;
        out.mismatches.push_back(std::move(m));
      }
    }
  }
  for (const auto& [qname, q] : actual.quantities()) {
    (void)q;
    if (!golden.quantities().count(qname)) {
      out.extra_quantities.push_back(qname);
      out.pass = false;
    }
  }
  return out;
}

std::string GoldenCompare::summary() const {
  std::ostringstream ss;
  ss << (pass ? "PASS" : "FAIL") << " (" << values_compared
     << " values compared)";
  for (const auto& q : missing_quantities) ss << "\n  missing quantity: " << q;
  for (const auto& q : extra_quantities) ss << "\n  extra quantity: " << q;
  for (const auto& s : size_mismatches) ss << "\n  size mismatch: " << s;
  for (const auto& m : mismatches) {
    ss << "\n  " << m.quantity << "[" << m.index << "]";
    if (!m.label.empty()) ss << " (" << m.label << ")";
    ss << ": expected " << Json::format_number(m.expected) << ", got "
       << Json::format_number(m.actual) << " (allowed |diff| <= "
       << Json::format_number(m.allowed) << ")";
  }
  return ss.str();
}

GoldenRecord load_golden(const std::string& path) {
  return GoldenRecord::from_json(read_json_file(path));
}

void save_golden(const std::string& path, const GoldenRecord& record) {
  write_json_file(path, record.to_json());
}

// ---------------------------------------------------------------------------
// Canonical experiments
// ---------------------------------------------------------------------------
namespace {

// Tolerance policy. The simulations are deterministic on one build, so
// the bands only need to absorb cross-compiler/libm drift — they are
// deliberately much tighter than any physically meaningful change
// (perturbing a single solver or design constant by >= 1 % trips them;
// see test_verify_golden.cpp).
constexpr Tolerance kVoltageTol{5e-5, 1e-3};   // 50 uV + 0.1 %
constexpr Tolerance kNmrTol{5e-3, 2e-2};       // dimensionless ratios
constexpr Tolerance kEnergyTol{1e-17, 1e-2};   // 0.01 fJ + 1 %
constexpr Tolerance kTopsTol{10.0, 1e-2};
constexpr Tolerance kErrorPctTol{5e-2, 5e-2};  // Monte Carlo error [%FS]

/// Paper temperature anchors used by the golden sweep (0 / 25 / 85 degC).
const std::vector<double>& golden_temps() {
  static const std::vector<double> t = {0.0, 25.0, 85.0};
  return t;
}

std::string mac_label(double temp_c, int mac) {
  std::ostringstream ss;
  ss << "T" << temp_c << "_mac" << mac;
  return ss.str();
}

/// v_acc of the Fig. 8 row for every MAC value at one temperature, using
/// the same stored/input convention as the behavioural calibration (all
/// weights 1, first k inputs 1).
std::vector<double> mac_levels_at(sfc::cim::CiMRow& row, double temp_c) {
  const int n = row.cells();
  std::vector<double> levels;
  levels.reserve(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) {
    std::vector<int> inputs(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < k; ++i) inputs[static_cast<std::size_t>(i)] = 1;
    const sfc::cim::MacResult r = row.evaluate(inputs, temp_c);
    if (!r.converged) {
      throw std::runtime_error("golden MAC transient failed to converge");
    }
    levels.push_back(r.v_acc);
  }
  return levels;
}

GoldenRecord build_dc_op_point() {
  GoldenRecord rec("dc_op_point",
                   "DC operating point of a 1-cell 2T-1FeFET row (Fig. 7 "
                   "cell) at 27 degC: every node voltage");
  sfc::cim::ArrayConfig cfg = sfc::cim::ArrayConfig::proposed_2t1fefet();
  cfg.cells_per_row = 1;
  sfc::cim::CiMRow row(cfg);
  row.set_stored({1});
  sfc::spice::Engine engine(row.circuit(), 27.0);
  const sfc::spice::DcResult op = engine.dc_operating_point(cfg.newton);
  if (!op.converged) {
    throw std::runtime_error("golden DC op point failed to converge");
  }
  std::vector<std::pair<std::string, double>> nodes(op.voltages.begin(),
                                                    op.voltages.end());
  std::sort(nodes.begin(), nodes.end());
  std::vector<double> values;
  std::vector<std::string> labels;
  for (const auto& [name, v] : nodes) {
    labels.push_back(name);
    values.push_back(v);
  }
  rec.set("node_voltages", std::move(values), std::move(labels), kVoltageTol);
  return rec;
}

GoldenRecord build_fig8_mac_levels() {
  GoldenRecord rec("fig8_mac_levels",
                   "Fig. 8: accumulated output voltage of the 8-cell "
                   "2T-1FeFET row for MAC = 0..8 at 27 degC");
  sfc::cim::CiMRow row(sfc::cim::ArrayConfig::proposed_2t1fefet());
  row.set_stored(std::vector<int>(static_cast<std::size_t>(row.cells()), 1));
  std::vector<std::string> labels;
  for (int k = 0; k <= row.cells(); ++k) {
    labels.push_back("mac" + std::to_string(k));
  }
  rec.set("v_acc", mac_levels_at(row, 27.0), std::move(labels), kVoltageTol);
  return rec;
}

/// Level ranges over the golden temperature grid; shared by the sweep and
/// NMR builders.
std::vector<sfc::cim::LevelRange> level_ranges_over_temps(
    std::vector<double>* flat, std::vector<std::string>* labels) {
  sfc::cim::CiMRow row(sfc::cim::ArrayConfig::proposed_2t1fefet());
  const int n = row.cells();
  row.set_stored(std::vector<int>(static_cast<std::size_t>(n), 1));
  std::vector<sfc::cim::LevelRange> ranges(static_cast<std::size_t>(n) + 1);
  for (int k = 0; k <= n; ++k) {
    ranges[static_cast<std::size_t>(k)].mac = k;
    ranges[static_cast<std::size_t>(k)].lo = 1e300;
    ranges[static_cast<std::size_t>(k)].hi = -1e300;
  }
  for (double t : golden_temps()) {
    const std::vector<double> levels = mac_levels_at(row, t);
    for (int k = 0; k <= n; ++k) {
      auto& r = ranges[static_cast<std::size_t>(k)];
      r.lo = std::min(r.lo, levels[static_cast<std::size_t>(k)]);
      r.hi = std::max(r.hi, levels[static_cast<std::size_t>(k)]);
      if (flat) {
        flat->push_back(levels[static_cast<std::size_t>(k)]);
        labels->push_back(mac_label(t, k));
      }
    }
  }
  return ranges;
}

GoldenRecord build_temperature_sweep() {
  GoldenRecord rec("temperature_sweep",
                   "MAC output voltages of the 8-cell 2T-1FeFET row at "
                   "0/25/85 degC (the paper's resilience span)");
  std::vector<double> flat;
  std::vector<std::string> labels;
  level_ranges_over_temps(&flat, &labels);
  rec.set("v_acc", std::move(flat), std::move(labels), kVoltageTol);
  return rec;
}

GoldenRecord build_nmr() {
  GoldenRecord rec("nmr",
                   "Noise margin rates (Eq. 2) and NMR_min (Eq. 3) of the "
                   "8-cell row over 0/25/85 degC");
  const auto ranges = level_ranges_over_temps(nullptr, nullptr);
  const std::vector<double> nmr = sfc::cim::noise_margin_rates(ranges);
  const sfc::cim::NmrSummary sum = sfc::cim::summarize_nmr(ranges);
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < nmr.size(); ++i) {
    labels.push_back("nmr_" + std::to_string(i));
  }
  rec.set("nmr", nmr, std::move(labels), kNmrTol);
  rec.set_scalar("nmr_min", sum.nmr_min, kNmrTol);
  rec.set_scalar("argmin_mac", sum.argmin_mac, Tolerance{0.0, 0.0});
  rec.set_scalar("separable", sum.separable ? 1.0 : 0.0, Tolerance{0.0, 0.0});
  return rec;
}

GoldenRecord build_energy_per_mac() {
  GoldenRecord rec("energy_per_mac",
                   "Energy per operation and TOPS/W of the 8-cell row at "
                   "27 degC (paper: 3.14 fJ / 2866 TOPS/W scale)");
  const sfc::cim::EnergySummary e = sfc::cim::measure_energy(
      sfc::cim::ArrayConfig::proposed_2t1fefet(), 27.0);
  std::vector<std::string> labels;
  for (std::size_t k = 0; k < e.energy_per_op_by_mac.size(); ++k) {
    labels.push_back("mac" + std::to_string(k));
  }
  rec.set("energy_per_op_by_mac", e.energy_per_op_by_mac, std::move(labels),
          kEnergyTol);
  rec.set_scalar("mean_energy_per_op", e.mean_energy_per_op, kEnergyTol);
  rec.set_scalar("tops_per_watt", e.tops_per_watt, kTopsTol);
  return rec;
}

GoldenRecord build_montecarlo_quantiles() {
  GoldenRecord rec("montecarlo_quantiles",
                   "Reduced Fig. 9 Monte Carlo (6 runs x MAC {0,4,8}, "
                   "sigma_VT = 54 mV): output-error quantiles");
  sfc::cim::MonteCarloConfig mc;
  mc.runs = 6;
  mc.sigma_vt_fefet = 0.054;
  mc.mac_values = {0, 4, 8};
  const sfc::cim::MonteCarloResult r = sfc::cim::run_montecarlo(
      sfc::cim::ArrayConfig::proposed_2t1fefet(), mc);
  if (!r.all_converged) {
    throw std::runtime_error("golden Monte Carlo run failed to converge");
  }
  const std::vector<double> errors = r.errors();
  rec.set("error_percent_quantiles",
          {sfc::util::percentile(errors, 10.0),
           sfc::util::percentile(errors, 50.0),
           sfc::util::percentile(errors, 90.0)},
          {"p10", "p50", "p90"}, kErrorPctTol);
  rec.set_scalar("max_error_percent", r.max_error_percent, kErrorPctTol);
  rec.set_scalar("mean_error_percent", r.mean_error_percent, kErrorPctTol);
  rec.set_scalar("max_error_levels", r.max_error_levels,
                 Tolerance{1e-3, 5e-2});
  return rec;
}

}  // namespace

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = {
      {"dc_op_point", build_dc_op_point},
      {"fig8_mac_levels", build_fig8_mac_levels},
      {"temperature_sweep", build_temperature_sweep},
      {"nmr", build_nmr},
      {"energy_per_mac", build_energy_per_mac},
      {"montecarlo_quantiles", build_montecarlo_quantiles},
  };
  return cases;
}

std::string default_golden_dir() {
#ifdef SFC_GOLDEN_DIR
  return SFC_GOLDEN_DIR;
#else
  return "tests/goldens";
#endif
}

GoldenCompare run_golden_case(const GoldenCase& c, const std::string& dir) {
  const GoldenRecord golden = load_golden(dir + "/" + c.file());
  return compare_to_golden(golden, c.build());
}

}  // namespace sfc::verify
