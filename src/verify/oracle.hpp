// Differential-oracle layer: pairs of independent implementations of the
// same physics, compared point-by-point with a structured diff that names
// the first diverging signal/time-step.
//
// Built-in oracle pairs (see oracle_cases()):
//   * stampplan_vs_legacy_dc / _transient — the compiled stamp-plan Newton
//     path against the legacy full-restamp assembler (bit-exact contract);
//   * spice_vs_behavioral — the SPICE-level CiM row against the calibrated
//     cim/behavioral lookup model (exact at calibration grid temperatures,
//     bounded interpolation error in between);
//   * serial_vs_parallel_montecarlo — 1-thread vs N-thread sfc::exec
//     fan-out of the Fig. 9 Monte Carlo (bit-exact determinism contract).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace sfc::verify {

/// One diverging point between the two arms of an oracle.
struct Divergence {
  std::string quantity;  ///< signal/series name ("acc", "sample.v_acc", ...)
  std::size_t index = 0; ///< element / time-step index within the series
  std::string label;     ///< human context ("t=3.25e-09", "run2_mac4", ...)
  double a = 0.0;        ///< arm A value
  double b = 0.0;        ///< arm B value
};

struct OracleReport {
  std::string name;
  std::string arm_a;  ///< description of implementation A
  std::string arm_b;  ///< description of implementation B
  bool match = true;
  std::size_t points_compared = 0;
  std::size_t divergences = 0;          ///< total out-of-tolerance points
  std::optional<Divergence> first;      ///< first divergence encountered
  std::vector<std::string> notes;       ///< structural problems (size, ...)

  std::string summary() const;

  /// Compare two equally indexed series under |a-b| <= abs + rel*|a|;
  /// tolerances of 0 demand bit-exact equality. `label_of` (optional)
  /// renders the context string for a diverging index.
  void diff_series(const std::string& quantity, const std::vector<double>& a,
                   const std::vector<double>& b, double tol_abs = 0.0,
                   double tol_rel = 0.0,
                   const std::function<std::string(std::size_t)>& label_of =
                       nullptr);
  /// Compare one scalar pair.
  void diff_value(const std::string& quantity, double a, double b,
                  double tol_abs = 0.0, double tol_rel = 0.0,
                  const std::string& label = "");
  /// Record a structural mismatch (different sizes, a failed run, ...).
  void structural_failure(std::string note);
};

struct OracleCase {
  std::string name;
  std::function<OracleReport()> run;
};

/// Registry of all built-in oracle pairs, in a stable order.
const std::vector<OracleCase>& oracle_cases();

// Individual oracles (also reachable through the registry).
OracleReport oracle_stampplan_vs_legacy_dc();
OracleReport oracle_stampplan_vs_legacy_transient();
OracleReport oracle_spice_vs_behavioral();
OracleReport oracle_serial_vs_parallel_montecarlo(int threads = 4);

}  // namespace sfc::verify
