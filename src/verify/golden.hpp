// Golden-reference regression layer.
//
// Canonical paper experiments (Fig. 8 MAC levels, the 0/25/85 degC
// temperature sweep, NMR of Eqs. 2-3, energy per MAC, a reduced Fig. 9
// Monte Carlo) are serialized to versioned JSON files under
// tests/goldens/. Every quantity carries its own absolute/relative
// tolerance, stored IN the golden file, so the tolerance policy is
// versioned together with the numbers it guards. `ctest -L verify`
// recomputes each experiment and compares; `verify_runner golden --regen`
// rewrites the files after an intentional physics change.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "verify/json.hpp"

namespace sfc::verify {

/// Per-quantity tolerance: a value passes when
///   |actual - expected| <= abs + rel * |expected|.
struct Tolerance {
  double abs = 0.0;
  double rel = 0.0;
};

/// One named quantity of a golden record: a flat vector of doubles with
/// optional per-element labels ("T25_mac3", "nmr_0", ...).
struct Quantity {
  std::vector<double> values;
  std::vector<std::string> labels;  ///< empty, or one per value
  Tolerance tol;
};

/// A named set of quantities — one canonical experiment.
class GoldenRecord {
 public:
  GoldenRecord() = default;
  GoldenRecord(std::string name, std::string description)
      : name_(std::move(name)), description_(std::move(description)) {}

  static constexpr int kSchemaVersion = 1;

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  const std::map<std::string, Quantity>& quantities() const {
    return quantities_;
  }

  void set(const std::string& quantity, std::vector<double> values,
           std::vector<std::string> labels, Tolerance tol);
  void set_scalar(const std::string& quantity, double value, Tolerance tol);
  const Quantity& at(const std::string& quantity) const;

  Json to_json() const;
  static GoldenRecord from_json(const Json& j);

 private:
  std::string name_;
  std::string description_;
  std::map<std::string, Quantity> quantities_;
};

/// One element that fell outside its tolerance band.
struct Mismatch {
  std::string quantity;
  std::size_t index = 0;
  std::string label;
  double expected = 0.0;
  double actual = 0.0;
  double allowed = 0.0;  ///< abs + rel * |expected|
};

struct GoldenCompare {
  bool pass = true;
  std::size_t values_compared = 0;
  std::vector<Mismatch> mismatches;          ///< capped at 16
  std::vector<std::string> missing_quantities;  ///< in golden, not in actual
  std::vector<std::string> extra_quantities;    ///< in actual, not in golden
  std::vector<std::string> size_mismatches;

  std::string summary() const;
};

/// Compare a freshly computed record against the stored golden. The
/// golden's tolerances are authoritative; the actual record's are ignored.
GoldenCompare compare_to_golden(const GoldenRecord& golden,
                                const GoldenRecord& actual);

GoldenRecord load_golden(const std::string& path);
void save_golden(const std::string& path, const GoldenRecord& record);

// ---------------------------------------------------------------------------
// Canonical experiment registry
// ---------------------------------------------------------------------------

struct GoldenCase {
  std::string name;      ///< also the file stem under the goldens dir
  std::string file() const { return name + ".json"; }
  std::function<GoldenRecord()> build;  ///< recompute from the live code
};

/// All canonical experiments, in a stable order:
///   dc_op_point, fig8_mac_levels, temperature_sweep, nmr,
///   energy_per_mac, montecarlo_quantiles.
const std::vector<GoldenCase>& golden_cases();

/// Directory the goldens live in: SFC_GOLDEN_DIR when compiled in (tests,
/// verify_runner), else "tests/goldens" relative to the working directory.
std::string default_golden_dir();

/// Run one case against the goldens in `dir`.
GoldenCompare run_golden_case(const GoldenCase& c, const std::string& dir);

}  // namespace sfc::verify
