#include "cim/behavioral.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/interp.hpp"
#include "util/stats.hpp"

namespace sfc::cim {

BehavioralArrayModel BehavioralArrayModel::calibrate(
    const ArrayConfig& cfg, const std::vector<double>& temps_c,
    const MonteCarloConfig* variation) {
  assert(!temps_c.empty());
  BehavioralArrayModel m;
  m.cells_ = cfg.cells_per_row;
  m.temps_c_ = temps_c;
  // The paper's sensing references are designed at room temperature.
  m.design_temp_c_ = 27.0;

  const int n = cfg.cells_per_row;
  CiMRow row(cfg);
  row.set_stored(std::vector<int>(static_cast<std::size_t>(n), 1));
  m.v_.assign(temps_c.size() * static_cast<std::size_t>(n + 1), 0.0);

  for (std::size_t ti = 0; ti < temps_c.size(); ++ti) {
    for (int k = 0; k <= n; ++k) {
      std::vector<int> inputs(static_cast<std::size_t>(n), 1);
      for (int i = k; i < n; ++i) inputs[static_cast<std::size_t>(i)] = 0;
      MacResult r = row.evaluate(inputs, temps_c[ti]);
      if (!r.converged) {
        throw std::runtime_error(
            "BehavioralArrayModel: row failed to converge during "
            "calibration");
      }
      m.v_[ti * static_cast<std::size_t>(n + 1) + static_cast<std::size_t>(k)] =
          r.v_acc;
    }
  }

  m.sigma_.assign(static_cast<std::size_t>(n + 1), 0.0);
  if (variation != nullptr) {
    MonteCarloConfig mc = *variation;
    mc.temperature_c = m.design_temp_c_;
    const MonteCarloResult mcr = run_montecarlo(cfg, mc);
    // Per-MAC standard deviation of the raw output voltage.
    for (int k = 0; k <= n; ++k) {
      std::vector<double> vals;
      for (const auto& s : mcr.samples) {
        if (s.mac == k) vals.push_back(s.v_acc);
      }
      if (!vals.empty()) {
        m.sigma_[static_cast<std::size_t>(k)] = util::stddev(vals);
      }
    }
  }

  m.build_thresholds();
  return m;
}

void BehavioralArrayModel::build_thresholds() {
  thresholds_.clear();
  // Level means at the design temperature.
  std::vector<double> design_levels(static_cast<std::size_t>(cells_) + 1);
  for (int k = 0; k <= cells_; ++k) {
    design_levels[static_cast<std::size_t>(k)] = v_acc(k, design_temp_c_);
  }
  for (int k = 0; k < cells_; ++k) {
    thresholds_.push_back(0.5 * (design_levels[static_cast<std::size_t>(k)] +
                                 design_levels[static_cast<std::size_t>(k) + 1]));
  }
}

double BehavioralArrayModel::v_acc(int mac, double temperature_c) const {
  assert(mac >= 0 && mac <= cells_);
  assert(!temps_c_.empty());
  const auto stride = static_cast<std::size_t>(cells_ + 1);
  auto at = [&](std::size_t ti) {
    return v_[ti * stride + static_cast<std::size_t>(mac)];
  };
  if (temperature_c <= temps_c_.front()) return at(0);
  if (temperature_c >= temps_c_.back()) return at(temps_c_.size() - 1);
  for (std::size_t ti = 1; ti < temps_c_.size(); ++ti) {
    if (temperature_c <= temps_c_[ti]) {
      return util::lerp(temperature_c, temps_c_[ti - 1], at(ti - 1),
                        temps_c_[ti], at(ti));
    }
  }
  return at(temps_c_.size() - 1);
}

double BehavioralArrayModel::sigma(int mac) const {
  if (sigma_.empty()) return 0.0;
  assert(mac >= 0 && mac <= cells_);
  return sigma_[static_cast<std::size_t>(mac)];
}

int BehavioralArrayModel::decode(double v) const {
  int level = 0;
  for (double th : thresholds_) {
    if (v > th) ++level;
  }
  return level;
}

int BehavioralArrayModel::mac(int true_count, double temperature_c,
                              util::Rng* noise_rng) const {
  double v = v_acc(true_count, temperature_c);
  if (noise_rng != nullptr) {
    v += noise_rng->normal(0.0, sigma(true_count));
  }
  return decode(v);
}

int BehavioralArrayModel::decode_tracking(double v,
                                          double temperature_c) const {
  int level = 0;
  for (int k = 0; k < cells_; ++k) {
    const double threshold =
        0.5 * (v_acc(k, temperature_c) + v_acc(k + 1, temperature_c));
    if (v > threshold) ++level;
  }
  return level;
}

int BehavioralArrayModel::mac_tracking(int true_count, double temperature_c,
                                       util::Rng* noise_rng) const {
  double v = v_acc(true_count, temperature_c);
  if (noise_rng != nullptr) {
    v += noise_rng->normal(0.0, sigma(true_count));
  }
  return decode_tracking(v, temperature_c);
}

std::string BehavioralArrayModel::to_text() const {
  std::ostringstream out;
  out.precision(12);
  out << "sfc-behavioral-v1\n";
  out << cells_ << ' ' << design_temp_c_ << ' ' << temps_c_.size() << '\n';
  for (double t : temps_c_) out << t << ' ';
  out << '\n';
  for (double v : v_) out << v << ' ';
  out << '\n';
  for (double s : sigma_) out << s << ' ';
  out << '\n';
  return out.str();
}

BehavioralArrayModel BehavioralArrayModel::from_text(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  in >> magic;
  if (magic != "sfc-behavioral-v1") {
    throw std::runtime_error("BehavioralArrayModel: bad header");
  }
  BehavioralArrayModel m;
  std::size_t num_temps = 0;
  in >> m.cells_ >> m.design_temp_c_ >> num_temps;
  if (!in || m.cells_ < 1 || num_temps < 1) {
    throw std::runtime_error("BehavioralArrayModel: bad dimensions");
  }
  m.temps_c_.resize(num_temps);
  for (auto& t : m.temps_c_) in >> t;
  m.v_.resize(num_temps * static_cast<std::size_t>(m.cells_ + 1));
  for (auto& v : m.v_) in >> v;
  m.sigma_.resize(static_cast<std::size_t>(m.cells_ + 1));
  for (auto& s : m.sigma_) in >> s;
  if (!in) throw std::runtime_error("BehavioralArrayModel: truncated data");
  m.build_thresholds();
  return m;
}

void BehavioralArrayModel::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << to_text();
}

BehavioralArrayModel BehavioralArrayModel::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_text(buf.str());
}

BehavioralArrayModel BehavioralArrayModel::calibrate_cached(
    const ArrayConfig& cfg, const std::vector<double>& temps_c,
    const std::string& cache_path, const MonteCarloConfig* variation) {
  {
    std::ifstream probe(cache_path);
    if (probe) {
      try {
        return load(cache_path);
      } catch (const std::exception&) {
        // fall through to recalibration on a corrupt cache
      }
    }
  }
  BehavioralArrayModel m = calibrate(cfg, temps_c, variation);
  try {
    m.save(cache_path);
  } catch (const std::exception&) {
    // Caching is best effort; calibration result is still valid.
  }
  return m;
}

}  // namespace sfc::cim
