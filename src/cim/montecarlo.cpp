#include "cim/montecarlo.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "exec/stream.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace sfc::cim {

std::vector<ProcessCorner> standard_corners() {
  return {
      {"TT", 0.0, 1.0},
      {"SS", +0.030, 0.88},
      {"FF", -0.030, 1.12},
  };
}

ArrayConfig apply_corner(const ArrayConfig& cfg, const ProcessCorner& corner) {
  ArrayConfig out = cfg;
  auto shift_mos = [&](devices::MosfetParams& p) {
    p.vth0 += corner.dvth;
    p.mu0 *= corner.mobility_scale;
  };
  auto shift_fefet = [&](fefet::FeFetParams& p) {
    // Global VTH shift enters through the ferroelectric window midpoint.
    p.ferroelectric.vth_low += corner.dvth;
    p.ferroelectric.vth_high += corner.dvth;
    p.channel.mu0 *= corner.mobility_scale;
  };
  shift_fefet(out.cell2t.fefet);
  shift_fefet(out.cell1r.fefet);
  shift_mos(out.cell2t.m1);
  shift_mos(out.cell2t.m2);
  return out;
}

std::vector<double> MonteCarloResult::errors() const {
  std::vector<double> e;
  e.reserve(samples.size());
  for (const auto& s : samples) e.push_back(s.error_percent);
  return e;
}

namespace {

/// Everything one Monte Carlo run produces; merged in run order.
struct RunOutcome {
  std::vector<MonteCarloSample> samples;
  bool converged = true;
  long newton_iterations = 0;
};

}  // namespace

MonteCarloResult run_montecarlo(const ArrayConfig& cfg,
                                const MonteCarloConfig& mc) {
  SFC_TRACE_SPAN("cim.run_montecarlo");
  SFC_TRACE_COUNT("cim.mc.runs", static_cast<std::uint64_t>(std::max(0, mc.runs)));
  const int n = cfg.cells_per_row;
  MonteCarloResult result;

  std::vector<int> macs = mc.mac_values;
  if (macs.empty()) {
    for (int k = 0; k <= n; ++k) macs.push_back(k);
  }

  auto pattern_for = [n](int k) {
    std::vector<int> inputs(static_cast<std::size_t>(n), 1);
    for (int i = k; i < n; ++i) inputs[static_cast<std::size_t>(i)] = 0;
    return inputs;
  };

  // Nominal (variation-free) levels first; they define both the reference
  // outputs and the level spacing that normalizes the error.
  std::vector<double> nominal(static_cast<std::size_t>(n) + 1, 0.0);
  {
    CiMRow row(cfg);
    row.set_stored(std::vector<int>(static_cast<std::size_t>(n), 1));
    for (int k = 0; k <= n; ++k) {
      MacResult r = row.evaluate(pattern_for(k), mc.temperature_c);
      if (!r.converged) result.all_converged = false;
      result.total_newton_iterations += r.newton_iterations;
      nominal[static_cast<std::size_t>(k)] = r.v_acc;
    }
  }
  result.nominal_levels = nominal;
  double spacing_sum = 0.0;
  for (int k = 0; k < n; ++k) {
    spacing_sum += nominal[static_cast<std::size_t>(k) + 1] -
                   nominal[static_cast<std::size_t>(k)];
  }
  result.level_spacing = std::fabs(spacing_sum) / static_cast<double>(n);
  result.full_scale =
      std::fabs(nominal[static_cast<std::size_t>(n)] - nominal[0]);
  assert(result.level_spacing > 0.0);

  // Independent runs: run k draws from the counter-based stream
  // (mc.seed, k) and simulates its own row replica, making each run a
  // pure function of its index — the determinism contract of the header.
  const auto outcomes = sfc::exec::parallel_map(
      mc.exec, static_cast<std::size_t>(std::max(0, mc.runs)),
      [&](std::size_t run_index) {
        util::Rng rng = sfc::exec::stream_rng(mc.seed, run_index);
        std::vector<double> fe_shifts(static_cast<std::size_t>(n));
        std::vector<double> m1_shifts(static_cast<std::size_t>(n), 0.0);
        std::vector<double> m2_shifts(static_cast<std::size_t>(n), 0.0);
        for (auto& s : fe_shifts) s = rng.normal(0.0, mc.sigma_vt_fefet);
        if (mc.sigma_vt_mosfet > 0.0) {
          for (auto& s : m1_shifts) s = rng.normal(0.0, mc.sigma_vt_mosfet);
          for (auto& s : m2_shifts) s = rng.normal(0.0, mc.sigma_vt_mosfet);
        }

        CiMRow row(cfg);
        row.set_stored(std::vector<int>(static_cast<std::size_t>(n), 1));
        row.set_fefet_vth_shifts(fe_shifts);
        row.set_mosfet_vth_shifts(m1_shifts, m2_shifts);

        RunOutcome outcome;
        outcome.samples.reserve(macs.size());
        for (int k : macs) {
          MacResult r = row.evaluate(pattern_for(k), mc.temperature_c);
          outcome.newton_iterations += r.newton_iterations;
          if (!r.converged) {
            outcome.converged = false;
            continue;
          }
          MonteCarloSample s;
          s.run = static_cast<int>(run_index);
          s.mac = k;
          s.v_acc = r.v_acc;
          const double deviation =
              std::fabs(r.v_acc - nominal[static_cast<std::size_t>(k)]);
          s.error_percent = deviation / result.full_scale * 100.0;
          s.error_levels = deviation / result.level_spacing;
          outcome.samples.push_back(s);
        }
        return outcome;
      },
      &result.job);

  // Merge in run order; aggregate statistics stay order-independent.
  for (const auto& outcome : outcomes) {
    if (!outcome.converged) result.all_converged = false;
    result.total_newton_iterations += outcome.newton_iterations;
    for (const auto& s : outcome.samples) {
      result.max_error_percent =
          std::max(result.max_error_percent, s.error_percent);
      result.max_error_levels =
          std::max(result.max_error_levels, s.error_levels);
      result.samples.push_back(s);
    }
  }
  if (!result.samples.empty()) {
    double sum = 0.0;
    for (const auto& s : result.samples) sum += s.error_percent;
    result.mean_error_percent = sum / static_cast<double>(result.samples.size());
  }
  return result;
}

}  // namespace sfc::cim
