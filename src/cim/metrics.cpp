#include "cim/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace sfc::cim {
namespace {
// Width floor so NMR of a perfectly tight level stays finite.
constexpr double kWidthEpsilon = 1e-9;

std::size_t nearest_index(std::span<const double> temps, double t_ref) {
  assert(!temps.empty());
  std::size_t best = 0;
  double best_d = std::fabs(temps[0] - t_ref);
  for (std::size_t i = 1; i < temps.size(); ++i) {
    const double d = std::fabs(temps[i] - t_ref);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}
}  // namespace

std::vector<double> noise_margin_rates(std::span<const LevelRange> levels) {
  std::vector<double> nmr;
  if (levels.size() < 2) return nmr;
  nmr.reserve(levels.size() - 1);
  for (std::size_t i = 0; i + 1 < levels.size(); ++i) {
    assert(levels[i + 1].mac == levels[i].mac + 1 && "levels must be sorted");
    const double width = std::max(levels[i].hi - levels[i].lo, kWidthEpsilon);
    const double gap = levels[i + 1].lo - levels[i].hi;
    nmr.push_back(gap / width);
  }
  return nmr;
}

NmrSummary summarize_nmr(std::span<const LevelRange> levels) {
  NmrSummary s;
  const std::vector<double> nmr = noise_margin_rates(levels);
  if (nmr.empty()) return s;
  s.nmr_min = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < nmr.size(); ++i) {
    if (nmr[i] < s.nmr_min) {
      s.nmr_min = nmr[i];
      s.argmin_mac = levels[i].mac;
    }
  }
  s.separable = s.nmr_min > 0.0;
  return s;
}

std::vector<double> normalize_to_reference(std::span<const double> temps,
                                           std::span<const double> values,
                                           double reference_temp_c) {
  assert(temps.size() == values.size());
  std::vector<double> out(values.size(), 0.0);
  if (values.empty()) return out;
  const double ref = values[nearest_index(temps, reference_temp_c)];
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = ref != 0.0 ? values[i] / ref : 0.0;
  }
  return out;
}

double max_normalized_fluctuation(std::span<const double> temps,
                                  std::span<const double> values,
                                  double reference_temp_c) {
  const std::vector<double> norm =
      normalize_to_reference(temps, values, reference_temp_c);
  double worst = 0.0;
  for (double v : norm) worst = std::max(worst, std::fabs(v - 1.0));
  return worst;
}

}  // namespace sfc::cim
