// Calibrated behavioural array model.
//
// Full transient simulation of every MAC in a CNN is infeasible (a single
// VGG inference performs ~10^8 row operations), so - like the paper, which
// feeds Spectre-characterized cell behaviour into network-level Monte
// Carlo - we characterize the row once with the circuit simulator and then
// replay it from a lookup table:
//   v(mac, T): mean output voltage, bilinear in T,
//   sigma(mac): process-variation spread (optional, from Monte Carlo),
//   decode(): ADC with thresholds frozen at the design temperature, so
//   temperature drift shows up as real misclassified MAC counts.
#pragma once

#include <string>
#include <vector>

#include "cim/array.hpp"
#include "cim/montecarlo.hpp"
#include "util/rng.hpp"

namespace sfc::cim {

class BehavioralArrayModel {
 public:
  BehavioralArrayModel() = default;

  /// Characterize a row: simulate every MAC value at every temperature in
  /// `temps_c` (and optionally a Monte Carlo pass for sigma).
  static BehavioralArrayModel calibrate(const ArrayConfig& cfg,
                                        const std::vector<double>& temps_c,
                                        const MonteCarloConfig* variation =
                                            nullptr);

  int cells() const { return cells_; }

  /// Mean output voltage for a MAC value at temperature T (interpolated).
  double v_acc(int mac, double temperature_c) const;

  /// Process-variation sigma for a MAC value [V] (0 if not calibrated).
  double sigma(int mac) const;

  /// Simulate one analog MAC readout: mean + optional Gaussian noise,
  /// decoded by the fixed ADC thresholds. Returns the *digital* MAC the
  /// sensing circuit reports.
  int mac(int true_count, double temperature_c,
          util::Rng* noise_rng = nullptr) const;

  /// ADC decode of a raw voltage (nearest design-temperature level).
  int decode(double v) const;

  /// Extension (not in the paper): decode with *temperature-tracking*
  /// references - thresholds recomputed from the calibrated levels at the
  /// actual operating temperature, as a temperature-compensated sensing
  /// periphery would provide. Quantifies how much of the baseline
  /// design's failure a smarter ADC could recover.
  int decode_tracking(double v, double temperature_c) const;

  /// mac() with tracking references.
  int mac_tracking(int true_count, double temperature_c,
                   util::Rng* noise_rng = nullptr) const;

  /// Decision thresholds (midpoints of design-temperature levels).
  const std::vector<double>& thresholds() const { return thresholds_; }

  /// Serialization so benches can cache the (expensive) calibration.
  std::string to_text() const;
  static BehavioralArrayModel from_text(const std::string& text);
  void save(const std::string& path) const;
  static BehavioralArrayModel load(const std::string& path);

  /// Calibrate, or load from `cache_path` when present (saves the result).
  static BehavioralArrayModel calibrate_cached(
      const ArrayConfig& cfg, const std::vector<double>& temps_c,
      const std::string& cache_path, const MonteCarloConfig* variation =
                                         nullptr);

  double design_temperature_c() const { return design_temp_c_; }

 private:
  void build_thresholds();

  int cells_ = 0;
  double design_temp_c_ = 27.0;
  std::vector<double> temps_c_;
  /// v_[t * (cells_+1) + mac]
  std::vector<double> v_;
  std::vector<double> sigma_;
  std::vector<double> thresholds_;
};

}  // namespace sfc::cim
