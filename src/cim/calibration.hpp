// Calibration validation: runs the headline experiments on a configuration
// and reports the paper's figures of merit side by side with the target
// bands from the paper. Tests and EXPERIMENTS.md are generated from this.
#pragma once

#include <string>
#include <vector>

#include "cim/mac.hpp"

namespace sfc::cim {

/// Paper-reported values that calibration steers toward. These are
/// *shape* targets (orderings / signs), not exact-match requirements; see
/// DESIGN.md on the substitution policy.
struct PaperTargets {
  double fluct_1r_saturation = 0.206;   ///< Fig. 3(a)
  double fluct_1r_subthreshold = 0.521; ///< Fig. 3(b)
  double fluct_2t = 0.266;              ///< Fig. 7 (max, at 0 degC)
  double fluct_2t_above_20c = 0.124;    ///< Fig. 7 (20..85 degC)
  double nmr_min_2t = 0.22;             ///< Fig. 8(a), NMR_0
  double nmr_min_2t_above_20c = 2.3;    ///< NMR_7 over 20..85 degC
  double energy_per_op = 3.14e-15;      ///< Fig. 8(b) average
  double tops_per_watt = 2866.0;
  double mc_max_error_pct = 25.0;       ///< Fig. 9
};

struct CalibrationReport {
  // Measured values.
  double fluct_1r_saturation = 0.0;
  double fluct_1r_subthreshold = 0.0;
  double fluct_2t = 0.0;
  double fluct_2t_above_20c = 0.0;
  double nmr_min_1r_subthreshold = 0.0;
  double nmr_min_2t = 0.0;
  double nmr_min_2t_above_20c = 0.0;
  int nmr_argmin_2t = -1;
  double energy_per_op = 0.0;
  double tops_per_watt = 0.0;

  /// The qualitative claims of the paper, evaluated on our measurements.
  bool subthreshold_worse_than_saturation() const {
    return fluct_1r_subthreshold > fluct_1r_saturation;
  }
  bool proposed_beats_subthreshold_baseline() const {
    return fluct_2t < fluct_1r_subthreshold;
  }
  bool proposed_array_separable() const { return nmr_min_2t > 0.0; }
  bool baseline_array_overlaps() const { return nmr_min_1r_subthreshold < 0.0; }

  std::string to_string() const;
};

/// Run the full calibration suite (cell sweeps, level sweeps, energy) on
/// the default configurations. `temps_c` defaults to the paper grid.
CalibrationReport run_calibration(
    const std::vector<double>& temps_c = default_temperature_grid());

}  // namespace sfc::cim
