#include "cim/calibration.hpp"

#include <cmath>
#include <cstdio>

#include "cim/energy.hpp"

namespace sfc::cim {
namespace {

std::vector<double> temps_above(const std::vector<double>& temps_c,
                                double lo) {
  std::vector<double> out;
  for (double t : temps_c) {
    if (t >= lo) out.push_back(t);
  }
  return out;
}

/// Fig. 7-style fluctuation: C0 average charging current (2T cell).
double cell_fluctuation(const ArrayConfig& cfg,
                        const std::vector<double>& temps_c) {
  const auto resp = cell_temperature_response(cfg, temps_c, 1, 1);
  std::vector<double> temps, currents;
  for (const auto& r : resp) {
    if (!r.converged) continue;
    temps.push_back(r.temperature_c);
    currents.push_back(r.i_avg);
  }
  return max_normalized_fluctuation(temps, currents, 27.0);
}

/// Fig. 3-style fluctuation: current-mode 1FeFET-1R readout.
double cell_current_fluctuation(const ArrayConfig& cfg,
                                const std::vector<double>& temps_c) {
  const auto resp = cell_current_response(cfg, temps_c, 1, 1);
  std::vector<double> temps, currents;
  for (const auto& r : resp) {
    if (!r.converged) continue;
    temps.push_back(r.temperature_c);
    currents.push_back(r.i_drain);
  }
  return max_normalized_fluctuation(temps, currents, 27.0);
}

}  // namespace

CalibrationReport run_calibration(const std::vector<double>& temps_c) {
  CalibrationReport rep;

  const ArrayConfig sat = ArrayConfig::baseline_1r_saturation();
  const ArrayConfig sub = ArrayConfig::baseline_1r_subthreshold();
  const ArrayConfig prop = ArrayConfig::proposed_2t1fefet();
  const std::vector<double> warm = temps_above(temps_c, 20.0);

  rep.fluct_1r_saturation = cell_current_fluctuation(sat, temps_c);
  rep.fluct_1r_subthreshold = cell_current_fluctuation(sub, temps_c);
  rep.fluct_2t = cell_fluctuation(prop, temps_c);
  rep.fluct_2t_above_20c = cell_fluctuation(prop, warm);

  const LevelSweepResult sub_levels = mac_level_sweep(sub, temps_c);
  rep.nmr_min_1r_subthreshold = summarize_nmr(sub_levels.levels).nmr_min;

  const LevelSweepResult prop_levels = mac_level_sweep(prop, temps_c);
  const NmrSummary nmr_all = summarize_nmr(prop_levels.levels);
  rep.nmr_min_2t = nmr_all.nmr_min;
  rep.nmr_argmin_2t = nmr_all.argmin_mac;

  const LevelSweepResult prop_warm = mac_level_sweep(prop, warm);
  rep.nmr_min_2t_above_20c = summarize_nmr(prop_warm.levels).nmr_min;

  const EnergySummary energy = measure_energy(prop, 27.0);
  rep.energy_per_op = energy.mean_energy_per_op;
  rep.tops_per_watt = energy.tops_per_watt;
  return rep;
}

std::string CalibrationReport::to_string() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "calibration report\n"
      "  1FeFET-1R saturation  cell fluctuation: %6.1f%%  (paper 20.6%%)\n"
      "  1FeFET-1R subthresh.  cell fluctuation: %6.1f%%  (paper 52.1%%)\n"
      "  2T-1FeFET             cell fluctuation: %6.1f%%  (paper 26.6%%)\n"
      "  2T-1FeFET (>=20C)     cell fluctuation: %6.1f%%  (paper 12.4%%)\n"
      "  1FeFET-1R subthresh.  NMR_min: %+7.3f  (paper < 0)\n"
      "  2T-1FeFET             NMR_min: %+7.3f at MAC=%d  (paper 0.22 at 0)\n"
      "  2T-1FeFET (>=20C)     NMR_min: %+7.3f  (paper 2.3)\n"
      "  energy/op: %.3g fJ (paper 3.14 fJ), %.0f TOPS/W (paper 2866)\n",
      fluct_1r_saturation * 100.0, fluct_1r_subthreshold * 100.0,
      fluct_2t * 100.0, fluct_2t_above_20c * 100.0, nmr_min_1r_subthreshold,
      nmr_min_2t, nmr_argmin_2t, nmr_min_2t_above_20c, energy_per_op * 1e15,
      tops_per_watt);
  return buf;
}

}  // namespace sfc::cim
