#include <string>

#include "cim/cell.hpp"

namespace sfc::cim {

using sfc::spice::Capacitor;
using sfc::spice::Circuit;
using sfc::spice::Resistor;
using sfc::spice::VSource;

CellHandles build_cell_1fefet1r(Circuit& circuit, const Cell1RConfig& cfg,
                                int index, const std::string& bl_node,
                                const std::string& sl_node) {
  const std::string suffix = std::to_string(index);
  const auto bl = circuit.node(bl_node);
  const auto sl = circuit.node(sl_node);
  const auto wl = circuit.node("wl" + suffix);
  const auto out = circuit.node("out" + suffix);

  CellHandles h;
  h.out_node = "out" + suffix;
  h.wl_node = "wl" + suffix;

  const auto wl_drv = circuit.node("wldrv" + suffix);
  h.wl = &circuit.add<VSource>("WL" + suffix, wl_drv, sfc::spice::kGround, 0.0);
  circuit.add<Resistor>("RWL" + suffix, wl_drv, wl, cfg.r_wl_driver);
  circuit.add<Capacitor>("CWL" + suffix, wl, sfc::spice::kGround,
                         cfg.c_wl_load);

  // FeFET from BL to the output node; load resistor returns to the SL
  // rail, so the pre-read output level sits at v_sl.
  h.fefet = &circuit.add<fefet::FeFet>("XF" + suffix, bl, wl, out, cfg.fefet);
  h.r_load = &circuit.add<Resistor>("R" + suffix, out, sl, cfg.r_load);
  h.c0 = &circuit.add<Capacitor>("C0_" + suffix, out, sfc::spice::kGround,
                                 cfg.c0, cfg.c0_initial);
  return h;
}

}  // namespace sfc::cim
