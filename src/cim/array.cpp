#include "cim/array.hpp"

#include <cassert>
#include <stdexcept>

namespace sfc::cim {

using sfc::spice::Capacitor;
using sfc::spice::Engine;
using sfc::spice::kGround;
using sfc::spice::TransientOptions;
using sfc::spice::VSource;
using sfc::spice::VSwitch;
using sfc::spice::Waveform;

ArrayConfig ArrayConfig::proposed_2t1fefet() {
  ArrayConfig cfg;
  cfg.kind = CellKind::k2T1FeFet;
  cfg.subthreshold_read = true;
  return cfg;
}

ArrayConfig ArrayConfig::baseline_1r_subthreshold() {
  ArrayConfig cfg;
  cfg.kind = CellKind::k1FeFet1R;
  cfg.subthreshold_read = true;
  return cfg;
}

ArrayConfig ArrayConfig::baseline_1r_saturation() {
  ArrayConfig cfg;
  cfg.kind = CellKind::k1FeFet1R;
  cfg.subthreshold_read = false;
  return cfg;
}

std::vector<double> default_temperature_grid() {
  return {0.0, 10.0, 20.0, 27.0, 40.0, 55.0, 70.0, 85.0};
}

CiMRow::CiMRow(ArrayConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.cells_per_row < 1) {
    throw std::invalid_argument("CiMRow: need >= 1 cell");
  }

  // Shared rails.
  const auto bl = circuit_.node("bl");
  const auto sl = circuit_.node("sl");
  const auto en = circuit_.node("en");
  const auto acc = circuit_.node(kAccNode);
  circuit_.add<VSource>("BL", bl, kGround, cfg_.bias.v_bl);
  circuit_.add<VSource>("SL", sl, kGround, cfg_.bias.v_sl);
  // EN driver with output resistance + line load so its switching energy
  // is dissipated (and therefore counted) each cycle.
  const auto en_drv = circuit_.node("endrv");
  en_ = &circuit_.add<VSource>("EN", en_drv, kGround, 0.0);
  circuit_.add<sfc::spice::Resistor>("REN", en_drv, en,
                                     cfg_.sense.r_en_driver);
  circuit_.add<Capacitor>("CEN", en, kGround, cfg_.sense.c_en_load);
  // Cacc starts discharged: Eq. (1) assumes pure charge redistribution
  // from the cell capacitors.
  circuit_.add<Capacitor>("CACC", acc, kGround, cfg_.sense.c_acc,
                          /*ic=*/0.0);

  cells_.reserve(static_cast<std::size_t>(cfg_.cells_per_row));
  for (int i = 0; i < cfg_.cells_per_row; ++i) {
    CellHandles h;
    if (cfg_.kind == CellKind::k2T1FeFet) {
      h = build_cell_2t1fefet(circuit_, cfg_.cell2t, i, "bl", "sl");
    } else {
      h = build_cell_1fefet1r(circuit_, cfg_.cell1r, i, "bl", "sl");
    }
    // EN switch from the cell output into the accumulation node.
    circuit_.add<VSwitch>("SEN" + std::to_string(i), circuit_.node(h.out_node),
                          acc, en, cfg_.sense.en_switch);
    cells_.push_back(h);
  }
  circuit_.finalize();
}

void CiMRow::program(const std::vector<int>& weights,
                     double write_temperature_c) {
  assert(static_cast<int>(weights.size()) == cfg_.cells_per_row);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cells_[i].fefet->write_bit(weights[i] != 0, write_temperature_c);
  }
}

void CiMRow::set_stored(const std::vector<int>& weights) {
  assert(static_cast<int>(weights.size()) == cfg_.cells_per_row);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cells_[i].fefet->ferroelectric().set_polarization(weights[i] != 0 ? 1.0
                                                                      : -1.0);
  }
}

std::vector<int> CiMRow::stored() const {
  std::vector<int> bits;
  bits.reserve(cells_.size());
  for (const auto& h : cells_) bits.push_back(h.fefet->stored_bit() ? 1 : 0);
  return bits;
}

void CiMRow::set_fefet_vth_shifts(const std::vector<double>& shifts) {
  assert(static_cast<int>(shifts.size()) == cfg_.cells_per_row);
  for (std::size_t i = 0; i < shifts.size(); ++i) {
    cells_[i].fefet->set_vth_shift(shifts[i]);
  }
}

void CiMRow::set_mosfet_vth_shifts(const std::vector<double>& m1_shifts,
                                   const std::vector<double>& m2_shifts) {
  if (cfg_.kind != CellKind::k2T1FeFet) return;
  assert(static_cast<int>(m1_shifts.size()) == cfg_.cells_per_row);
  assert(static_cast<int>(m2_shifts.size()) == cfg_.cells_per_row);
  for (std::size_t i = 0; i < m1_shifts.size(); ++i) {
    cells_[i].m1->set_vth_shift(m1_shifts[i]);
    cells_[i].m2->set_vth_shift(m2_shifts[i]);
  }
}

void CiMRow::clear_vth_shifts() {
  for (auto& h : cells_) {
    h.fefet->set_vth_shift(0.0);
    if (h.m1) h.m1->set_vth_shift(0.0);
    if (h.m2) h.m2->set_vth_shift(0.0);
  }
}

MacResult CiMRow::evaluate(const std::vector<int>& inputs,
                           double temperature_c, bool keep_waveforms) {
  assert(static_cast<int>(inputs.size()) == cfg_.cells_per_row);
  const ReadTiming& t = cfg_.timing;
  const double wl_level = cfg_.wl_read_level();

  // WL pulse spans the cell phase; inputs of '0' keep the WL grounded so
  // the FeFET conducts nothing regardless of its stored state.
  const double wl_width = t.t_settle - t.t_wl_start - 2.0 * t.t_edge;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i] != 0) {
      cells_[i].wl->set_waveform(Waveform::pulse(
          0.0, wl_level, t.t_wl_start, t.t_edge, t.t_edge, wl_width,
          /*period=*/0.0, /*cycles=*/1));
    } else {
      cells_[i].wl->set_waveform(Waveform::dc(cfg_.bias.v_wl_off));
    }
  }
  // EN rises right after the cell phase and stays high through the share
  // phase (Eq. 1 charge redistribution).
  en_->set_waveform(Waveform::pulse(0.0, cfg_.sense.v_en_high,
                                    t.t_settle + t.t_edge, t.t_edge, t.t_edge,
                                    t.t_share, /*period=*/0.0, /*cycles=*/1));

  if (!engine_) {
    engine_.emplace(circuit_, temperature_c);
  } else {
    engine_->set_temperature_c(temperature_c);
  }
  Engine& engine = *engine_;
  TransientOptions opts;
  opts.dt = t.dt;
  opts.method = sfc::spice::IntegrationMethod::kTrapezoidal;
  opts.newton = cfg_.newton;

  MacResult result;
  result.ops = cfg_.cells_per_row + 1;
  sfc::spice::TransientResult tr = engine.transient(t.t_total(), opts);
  result.converged = tr.converged;
  result.newton_iterations = tr.total_newton_iterations;
  if (!tr.converged) return result;

  result.v_acc = tr.final_value(kAccNode);
  result.v_cell.reserve(cells_.size());
  for (const auto& h : cells_) {
    result.v_cell.push_back(tr.at(h.out_node, t.t_settle));
  }
  result.energy_joules = tr.total_source_energy();
  if (keep_waveforms) result.waveforms = std::move(tr);
  return result;
}

}  // namespace sfc::cim
