// Analytic models of the comparison designs in Table II. These rows are
// literature numbers the paper cites ([34][35][17][19][14][36]); the
// "This Work" row is produced by our own measurements.
#pragma once

#include <string>
#include <vector>

namespace sfc::cim {

struct DesignRow {
  std::string work;      ///< citation tag, e.g. "[34]"
  std::string device;    ///< CMOS / FeFET / ReRAM / MTJ
  std::string process;
  std::string cell;
  std::string dataset;
  std::string network;
  std::string accuracy;  ///< preformatted (some rows have two entries)
  std::string energy;    ///< preformatted, mixed units in the paper
  double tops_per_watt = 0.0;      ///< 0 = not reported
  double energy_per_op_joules = 0.0;  ///< 0 = not reported per-op
};

/// The six comparison rows of Table II.
std::vector<DesignRow> reference_designs();

/// Build the "This Work" row from measured numbers.
DesignRow this_work_row(double accuracy_percent, double energy_per_op_joules,
                        double tops_per_watt,
                        double energy_per_inference_joules);

/// Energy ratio of a reference design vs. this work (paper quotes ReRAM
/// 64.6x and MTJ 445.9x); returns 0 when the row has no per-op energy.
double energy_ratio_vs(const DesignRow& reference, double this_work_e_op);

}  // namespace sfc::cim
