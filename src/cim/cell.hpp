// Cell builders: instantiate one CiM cell (devices + local nets) inside a
// row circuit. Used by the CiMRow array builder; exposed separately so
// tests can probe individual devices.
#pragma once

#include <string>

#include "cim/config.hpp"
#include "spice/circuit.hpp"

namespace sfc::cim {

/// Handles to the devices of one instantiated cell.
struct CellHandles {
  fefet::FeFet* fefet = nullptr;
  devices::Mosfet* m1 = nullptr;      ///< 2T cell only
  devices::Mosfet* m2 = nullptr;      ///< 2T cell only
  sfc::spice::Resistor* r_load = nullptr;  ///< 1R cell only
  sfc::spice::Capacitor* c0 = nullptr;
  sfc::spice::VSource* wl = nullptr;
  std::string out_node;  ///< name of the cell output net
  std::string wl_node;   ///< name of the wordline net
};

/// Instantiate the proposed 2T-1FeFET cell number `index` between the
/// shared BL/SL rails. Node names: wl<i>, a<i> (internal), out<i>.
CellHandles build_cell_2t1fefet(sfc::spice::Circuit& circuit,
                                const Cell2TConfig& cfg, int index,
                                const std::string& bl_node,
                                const std::string& sl_node);

/// Instantiate the baseline 1FeFET-1R cell number `index`.
CellHandles build_cell_1fefet1r(sfc::spice::Circuit& circuit,
                                const Cell1RConfig& cfg, int index,
                                const std::string& bl_node,
                                const std::string& sl_node);

}  // namespace sfc::cim
