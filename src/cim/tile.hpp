// CiMTile: a weight-matrix tile built from CiM rows.
//
// Maps an (rows x columns) binary weight matrix onto row circuits of the
// configured cell (8 cells per row in the paper). A matrix-vector product
// with a binary input vector is computed row by row: each row's analog
// MAC is evaluated by the circuit simulator and decoded by the fixed-
// reference ADC of the sensing circuit. Columns wider than one row are
// split across several row circuits whose digital outputs are summed -
// exactly how a larger-than-8 dot product is composed in the paper's
// architecture.
//
// This is the circuit-accurate (slow, exact) sibling of the behavioural
// fast path used for CNN-scale workloads (behavioral.hpp).
#pragma once

#include <vector>

#include "cim/array.hpp"
#include "cim/behavioral.hpp"

namespace sfc::cim {

class CiMTile {
 public:
  /// `weights[r][c]` with arbitrary column count; rows are split into
  /// segments of cfg.cells_per_row cells (zero-padded at the tail).
  CiMTile(ArrayConfig cfg, std::vector<std::vector<int>> weights);

  int rows() const { return static_cast<int>(weights_.size()); }
  int columns() const { return columns_; }
  int segments_per_row() const { return segments_; }

  struct Result {
    /// Digital dot product per matrix row (sum of decoded segment MACs).
    std::vector<int> values;
    /// True (error-free) dot products for comparison.
    std::vector<int> expected;
    /// Raw V_acc per (row, segment).
    std::vector<std::vector<double>> v_acc;
    double energy_joules = 0.0;
    bool converged = true;

    int errors() const {
      int n = 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        if (values[i] != expected[i]) ++n;
      }
      return n;
    }
  };

  /// Circuit-accurate matrix-vector product with a binary input vector at
  /// the given temperature. The ADC references come from `adc` (calibrate
  /// once at the design temperature).
  Result multiply(const std::vector<int>& input, double temperature_c,
                  const BehavioralArrayModel& adc);

 private:
  ArrayConfig cfg_;
  std::vector<std::vector<int>> weights_;
  int columns_ = 0;
  int segments_ = 0;
  /// One physical row circuit reused across logical rows/segments (the
  /// FeFET states are reprogrammed as the sweep proceeds, mirroring a
  /// time-multiplexed tile driver).
  CiMRow row_;
};

}  // namespace sfc::cim
