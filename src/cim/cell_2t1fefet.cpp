#include <string>

#include "cim/cell.hpp"

namespace sfc::cim {

using sfc::spice::Capacitor;
using sfc::spice::Circuit;
using sfc::spice::VSource;

// Topology (see DESIGN.md "Key modelling decisions"):
//
//        BL (1.2 V)                 SL (0.2 V)
//         |                          |
//       [FeFET]  gate=WL           [M1]  gate=A
//         |                          |
//         A ------------------------+---- gate of nothing; A = M1 gate
//         |                          |
//       [M2] gate=OUT               OUT ---- C0 (ic = 0)
//         |                          |
//        GND                        (EN switch -> Cacc)
//
// The FeFET (subthreshold) pulls node A up from BL against the weak
// long-channel M2 pulling down to ground; their balance sets A
// ratiometrically, so temperature drift largely cancels. M1 is a weak
// source follower charging C0 from the low-voltage SL rail - the cell's
// output charge is drawn from the 0.2 V supply, which is where the
// ultra-low MAC energy comes from. The OUT -> M2-gate connection closes
// the negative feedback loop: a hotter (stronger) cell raises OUT faster,
// which strengthens M2, drops A, and throttles M1.
CellHandles build_cell_2t1fefet(Circuit& circuit, const Cell2TConfig& cfg,
                                int index, const std::string& bl_node,
                                const std::string& sl_node) {
  const std::string suffix = std::to_string(index);
  const auto bl = circuit.node(bl_node);
  const auto sl = circuit.node(sl_node);
  const auto wl = circuit.node("wl" + suffix);
  const auto a = circuit.node("a" + suffix);
  const auto out = circuit.node("out" + suffix);

  CellHandles h;
  h.out_node = "out" + suffix;
  h.wl_node = "wl" + suffix;

  // Wordline driver; the waveform is set per MAC evaluation. The series
  // driver resistance dissipates the CV^2 of the WL load every cycle.
  const auto wl_drv = circuit.node("wldrv" + suffix);
  h.wl = &circuit.add<VSource>("WL" + suffix, wl_drv, sfc::spice::kGround, 0.0);
  circuit.add<sfc::spice::Resistor>("RWL" + suffix, wl_drv, wl,
                                    cfg.r_wl_driver);
  circuit.add<Capacitor>("CWL" + suffix, wl, sfc::spice::kGround,
                         cfg.c_wl_load);

  // FeFET conducts from BL into the internal node A.
  h.fefet = &circuit.add<fefet::FeFet>("XF" + suffix, bl, wl, a, cfg.fefet);
  // M2: gate = OUT, drains A to ground (feedback + bias device).
  h.m2 = &circuit.add<devices::Mosfet>("M2_" + suffix, a, out,
                                       sfc::spice::kGround, cfg.m2);
  // M1: gate = A, charges C0 at OUT from the SL rail (output device).
  h.m1 = &circuit.add<devices::Mosfet>("M1_" + suffix, sl, a, out, cfg.m1);

  h.c0 = &circuit.add<Capacitor>("C0_" + suffix, out, sfc::spice::kGround,
                                 cfg.c0, cfg.c0_initial);
  return h;
}

}  // namespace sfc::cim
