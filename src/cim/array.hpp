// CiMRow: one row of the CiM array (Fig. 6) - n cells, per-cell C0, EN
// switches and the shared accumulation capacitor Cacc. Owns the circuit
// and re-runs the full MAC cycle (write-independent read transient) at any
// temperature.
#pragma once

#include <optional>
#include <vector>

#include "cim/cell.hpp"
#include "spice/engine.hpp"

namespace sfc::cim {

/// Result of one MAC cycle.
struct MacResult {
  bool converged = false;
  /// Final voltage on the accumulation capacitor [V] (the MAC output).
  double v_acc = 0.0;
  /// Per-cell output voltage V_Oi sampled at the end of the cell phase [V].
  std::vector<double> v_cell;
  /// Net energy delivered by all supplies over the cycle [J].
  double energy_joules = 0.0;
  /// Ops per row MAC: n multiplications + 1 accumulation (paper Sec. IV-A).
  int ops = 0;
  /// Newton iterations spent on the cycle (solver benchmark metric).
  long newton_iterations = 0;
  /// Full waveform record (only populated when requested).
  sfc::spice::TransientResult waveforms;

  double energy_per_op() const {
    return ops > 0 ? energy_joules / ops : 0.0;
  }
};

class CiMRow {
 public:
  explicit CiMRow(ArrayConfig cfg);

  // The cached engine holds a reference to circuit_; pin the row in place.
  CiMRow(const CiMRow&) = delete;
  CiMRow& operator=(const CiMRow&) = delete;

  int cells() const { return cfg_.cells_per_row; }
  const ArrayConfig& config() const { return cfg_; }

  /// Program stored weights using the paper's +-4 V pulse protocol at the
  /// given (write-time) temperature.
  void program(const std::vector<int>& weights,
               double write_temperature_c = 27.0);

  /// Force polarization states directly (+1 for '1', -1 for '0'); bypasses
  /// write dynamics for experiments that are not about programming.
  void set_stored(const std::vector<int>& weights);

  /// Stored bits currently held by the FeFETs.
  std::vector<int> stored() const;

  /// Monte Carlo hooks: per-cell threshold shifts [V].
  void set_fefet_vth_shifts(const std::vector<double>& shifts);
  void set_mosfet_vth_shifts(const std::vector<double>& m1_shifts,
                             const std::vector<double>& m2_shifts);
  void clear_vth_shifts();

  /// Run one MAC cycle with the given input bits at `temperature_c`.
  MacResult evaluate(const std::vector<int>& inputs, double temperature_c,
                     bool keep_waveforms = false);

  /// Direct access for tests.
  const CellHandles& cell(int i) const {
    return cells_.at(static_cast<std::size_t>(i));
  }
  sfc::spice::Circuit& circuit() { return circuit_; }

  /// Node name of the accumulation capacitor.
  static constexpr const char* kAccNode = "acc";

 private:
  ArrayConfig cfg_;
  sfc::spice::Circuit circuit_;
  std::vector<CellHandles> cells_;
  sfc::spice::VSource* en_ = nullptr;
  /// Engine kept across evaluate() calls so the solver workspace — the
  /// compiled stamp pattern and LU plan — is reused between MAC cycles on
  /// the same array (results are independent of workspace state).
  std::optional<sfc::spice::Engine> engine_;
};

}  // namespace sfc::cim
