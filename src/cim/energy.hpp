// Energy accounting helpers: per-source breakdown of a MAC cycle and the
// TOPS/W summary the paper reports (Fig. 8b, Table II).
#pragma once

#include <string>
#include <vector>

#include "cim/array.hpp"

namespace sfc::cim {

struct EnergyBreakdown {
  struct Entry {
    std::string source;
    double joules = 0.0;
  };
  std::vector<Entry> per_source;
  double total_joules = 0.0;
  double per_op_joules = 0.0;
  double tops_per_watt = 0.0;
};

/// Break down the energy of one MAC evaluation (requires waveforms were
/// kept so source_energy is populated - evaluate(..., true)).
EnergyBreakdown energy_breakdown(const MacResult& result);

/// Average energy per op over all MAC values at one temperature; the
/// number behind "3.14 fJ / 2866 TOPS/W".
struct EnergySummary {
  double mean_energy_per_op = 0.0;   ///< [J]
  double tops_per_watt = 0.0;
  std::vector<double> energy_per_op_by_mac;  ///< [J], index = MAC value
};

EnergySummary measure_energy(const ArrayConfig& cfg, double temperature_c);

}  // namespace sfc::cim
