// Shared configuration for the CiM cells, arrays and experiments.
//
// Default values implement the paper's operating conditions (Sec. III-B):
//   write:  +4 V / 115 ns -> low-VTH ('1');  -4 V / 200 ns -> high-VTH ('0')
//   read:   BL = 1.2 V, SL = 0.2 V, WL = 0.35 V (input '1') or 0 V ('0')
//   row:    8 cells, each with a small capacitor C0; EN switch connects all
//           C0 to the accumulation capacitor Cacc (Eq. 1)
//   latency: 6.9 ns per MAC (5.0 ns cell phase + 1.9 ns charge share)
// Device geometry values come from the calibration pass described in
// cim/calibration.* and EXPERIMENTS.md.
#pragma once

#include "devices/mosfet.hpp"
#include "fefet/fefet.hpp"
#include "spice/engine.hpp"
#include "spice/primitives.hpp"

namespace sfc::cim {

/// Which cell implements the row.
enum class CellKind {
  k1FeFet1R,   ///< baseline structure from Soliman et al. (IEDM'20) [17]
  k2T1FeFet,   ///< proposed temperature-resilient cell
};

/// Read-phase bias set.
struct ReadBias {
  double v_bl = 1.2;        ///< bitline [V]
  double v_sl = 0.2;        ///< sourceline [V]
  double v_wl_read = 0.35;  ///< WL level for input '1' [V]
  /// WL level for input '0'. The paper states the WL "disables" the FeFET
  /// for a 0 input; a small negative underdrive implements that: with the
  /// low-VTH state at 0.25 V, a grounded WL would still leak enough
  /// subthreshold current from BL to lift the internal node and create a
  /// temperature-dependent MAC=0 error (the NMR_0 failure mode).
  double v_wl_off = -0.2;
};

/// MAC cycle timing.
struct ReadTiming {
  double t_wl_start = 0.1e-9;  ///< WL rise start [s]
  double t_edge = 0.05e-9;     ///< rise/fall time of WL and EN [s]
  double t_settle = 5.0e-9;    ///< cell phase duration [s]
  double t_share = 1.9e-9;     ///< charge-share phase duration [s]
  double dt = 2.0e-11;         ///< transient step [s]

  /// Total MAC latency (paper: 6.9 ns).
  double t_total() const { return t_settle + t_share; }
};

/// Proposed 2T-1FeFET cell (Fig. 5): FeFET conducts from BL into internal
/// node A; M2 (gate = OUT) pulls A toward SL; M1 (gate = A) charges C0 at
/// OUT from BL. The OUT->M2->A->M1 ring is the temperature-compensating
/// feedback loop.
struct Cell2TConfig {
  fefet::FeFetParams fefet = fefet::FeFetParams::reference(10.0);
  /// M1 is a deliberately weak follower (moderate W/L) so C0 settles into
  /// the feedback-stabilized region within the 5 ns cell phase; M2 is a
  /// long-channel device whose weakness sets the bias headroom
  /// nVT*ln(IS_fefet/IS_m2). Values from the calibration scan
  /// (EXPERIMENTS.md).
  devices::MosfetParams m1 = devices::MosfetParams::finfet14_nmos(0.05);
  devices::MosfetParams m2 = devices::MosfetParams::finfet14_nmos(0.03);
  /// Cell capacitor. Sized so the active cell settles well within the 5 ns
  /// phase while M1's off-state subthreshold creep (which grows
  /// exponentially with temperature and sets the MAC=0 noise margin, the
  /// paper's NMR_0 worst case) stays a small fraction of one level.
  double c0 = 5.0e-15;
  double c0_initial = 0.0;   ///< C0 precharge before the read phase [V]
  /// WL loading per cell (gate + wiring) and the WL driver's output
  /// resistance. The driver R makes the CV^2 dynamic energy of every WL
  /// transition actually dissipate (an ideal source recovers it on the
  /// falling edge, under-counting read energy).
  double c_wl_load = 2.0e-15;
  double r_wl_driver = 2.0e3;
};

/// Baseline 1FeFET-1R cell (Fig. 2): FeFET from BL to OUT, load resistor
/// from OUT to the SL rail, C0 on OUT.
struct Cell1RConfig {
  fefet::FeFetParams fefet = fefet::FeFetParams::reference(10.0);
  double r_load = 10.0e6;    ///< load resistor [ohm]
  double c0 = 1.0e-15;       ///< cell capacitor [F]
  /// C0 precharge [V]: the load resistor ties the output to the SL rail
  /// between reads, so the realistic pre-read level is v_sl.
  double c0_initial = 0.2;
  double c_wl_load = 2.0e-15;
  double r_wl_driver = 2.0e3;
  /// Read voltage for the *saturation-region* variant (the paper's [17]
  /// operating point). The subthreshold variant uses ReadBias::v_wl_read.
  double v_wl_saturation = 1.3;
  /// Sense resistor for the Fig. 3 current-mode cell measurement
  /// (reproducing [17]'s current readout; the array itself uses C0).
  /// Small = ideal transimpedance at the SL virtual ground; a large value
  /// would source-degenerate the FeFET and mask its temperature drift.
  double r_current_sense = 10.0;
};

/// Row-level sensing circuit (Fig. 6).
struct SenseConfig {
  double c_acc = 4.0e-15;    ///< accumulation capacitor [F]
  double v_en_high = 1.2;    ///< EN drive level [V]
  double c_en_load = 4.0e-15;///< EN line loading (switch gates + wiring) [F]
  double r_en_driver = 2.0e3;///< EN driver output resistance [ohm]
  sfc::spice::VSwitch::Params en_switch{
      /*r_on=*/5.0e4, /*r_off=*/1.0e13, /*v_threshold=*/0.6,
      /*v_width=*/0.05};
};

/// Full row configuration.
struct ArrayConfig {
  CellKind kind = CellKind::k2T1FeFet;
  int cells_per_row = 8;
  bool subthreshold_read = true;  ///< 1R cell only: 0.35 V vs 1.3 V WL
  ReadBias bias;
  ReadTiming timing;
  Cell2TConfig cell2t;
  Cell1RConfig cell1r;
  SenseConfig sense;
  /// Newton solver knobs for every MAC-cycle transient; defaults enable
  /// the stamp-plan hot path. Benchmarks and A/B tests flip
  /// newton.use_stamp_plan to compare against the legacy assembler.
  sfc::spice::NewtonOptions newton;

  /// WL level used for input '1' under this configuration.
  double wl_read_level() const {
    if (kind == CellKind::k1FeFet1R && !subthreshold_read) {
      return cell1r.v_wl_saturation;
    }
    return bias.v_wl_read;
  }

  // Named presets used throughout tests and benches.
  static ArrayConfig proposed_2t1fefet();
  static ArrayConfig baseline_1r_subthreshold();
  static ArrayConfig baseline_1r_saturation();
};

/// Temperature grid used by the paper's evaluation (0..85 degC).
std::vector<double> default_temperature_grid();

}  // namespace sfc::cim
