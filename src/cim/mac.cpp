#include "cim/mac.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sfc::cim {

std::vector<CellResponse> cell_temperature_response(
    const ArrayConfig& cfg, const std::vector<double>& temps_c,
    int stored_bit, int input_bit) {
  ArrayConfig one = cfg;
  one.cells_per_row = 1;
  CiMRow row(one);
  row.set_stored({stored_bit});

  const bool is_2t = one.kind == CellKind::k2T1FeFet;
  const double c0 = is_2t ? one.cell2t.c0 : one.cell1r.c0;
  const double v0 = is_2t ? one.cell2t.c0_initial : one.cell1r.c0_initial;
  std::vector<CellResponse> responses;
  responses.reserve(temps_c.size());
  for (double t : temps_c) {
    MacResult r = row.evaluate({input_bit}, t);
    CellResponse cr;
    cr.temperature_c = t;
    cr.converged = r.converged;
    if (r.converged) {
      cr.v_out = r.v_cell.at(0);
      // Average charging current of C0 over the cell phase, measured from
      // the known precharge level.
      cr.i_avg = c0 * (cr.v_out - v0) / one.timing.t_settle;
    }
    responses.push_back(cr);
  }
  return responses;
}

std::vector<CellCurrentResponse> cell_current_response(
    const ArrayConfig& cfg, const std::vector<double>& temps_c,
    int stored_bit, int input_bit) {
  using namespace sfc::spice;
  const Cell1RConfig& cell = cfg.cell1r;

  Circuit ckt;
  const auto bl = ckt.node("bl");
  const auto sl = ckt.node("sl");
  const auto wl = ckt.node("wl");
  const auto out = ckt.node("out");
  ckt.add<VSource>("BL", bl, kGround, cfg.bias.v_bl);
  ckt.add<VSource>("SL", sl, kGround, cfg.bias.v_sl);
  const double wl_level =
      input_bit != 0 ? cfg.wl_read_level() : cfg.bias.v_wl_off;
  ckt.add<VSource>("WL", wl, kGround, wl_level);
  auto& fefet = ckt.add<fefet::FeFet>("XF", bl, wl, out, cell.fefet);
  ckt.add<Resistor>("RS", out, sl, cell.r_current_sense);
  fefet.ferroelectric().set_polarization(stored_bit != 0 ? 1.0 : -1.0);

  std::vector<CellCurrentResponse> responses;
  responses.reserve(temps_c.size());
  for (double t : temps_c) {
    Engine engine(ckt, t);
    const DcResult op = engine.dc_operating_point();
    CellCurrentResponse cr;
    cr.temperature_c = t;
    cr.converged = op.converged;
    if (op.converged) {
      cr.v_out = op.voltage("out");
      cr.i_drain = (cr.v_out - cfg.bias.v_sl) / cell.r_current_sense;
    }
    responses.push_back(cr);
  }
  return responses;
}

LevelSweepResult mac_level_sweep(const ArrayConfig& cfg,
                                 const std::vector<double>& temps_c) {
  const int n = cfg.cells_per_row;
  CiMRow row(cfg);

  LevelSweepResult result;
  result.temps_c = temps_c;
  result.v_by_mac.assign(static_cast<std::size_t>(n) + 1, {});
  result.levels.resize(static_cast<std::size_t>(n) + 1);
  result.energy_per_op_by_mac.assign(static_cast<std::size_t>(n) + 1, 0.0);

  for (int k = 0; k <= n; ++k) {
    auto& level = result.levels[static_cast<std::size_t>(k)];
    level.mac = k;
    level.lo = 1e30;
    level.hi = -1e30;
    double energy_sum = 0.0;
    std::size_t energy_count = 0;

    // Pattern A: first k inputs high, all weights stored '1'
    // (input-driven zeros). Pattern B: all inputs high, first k weights
    // stored '1' (storage-driven zeros). Real workloads mix both, so the
    // level range must cover both.
    for (int pattern = 0; pattern < 2; ++pattern) {
      std::vector<int> stored(static_cast<std::size_t>(n), 1);
      std::vector<int> inputs(static_cast<std::size_t>(n), 1);
      if (pattern == 0) {
        for (int i = k; i < n; ++i) inputs[static_cast<std::size_t>(i)] = 0;
      } else {
        for (int i = k; i < n; ++i) stored[static_cast<std::size_t>(i)] = 0;
      }
      row.set_stored(stored);

      for (double t : temps_c) {
        MacResult r = row.evaluate(inputs, t);
        if (!r.converged) {
          result.all_converged = false;
          continue;
        }
        level.lo = std::min(level.lo, r.v_acc);
        level.hi = std::max(level.hi, r.v_acc);
        energy_sum += r.energy_per_op();
        ++energy_count;
        if (pattern == 0) {
          result.v_by_mac[static_cast<std::size_t>(k)].push_back(r.v_acc);
        }
      }
    }
    if (energy_count > 0) {
      result.energy_per_op_by_mac[static_cast<std::size_t>(k)] =
          energy_sum / static_cast<double>(energy_count);
    }
  }
  return result;
}

double tops_per_watt(double energy_per_op_joules) {
  if (energy_per_op_joules <= 0.0) return 0.0;
  return 1.0 / energy_per_op_joules / 1e12;
}

}  // namespace sfc::cim
