#include "cim/reference_designs.hpp"

#include <cstdio>

namespace sfc::cim {

std::vector<DesignRow> reference_designs() {
  // Values transcribed from Table II of the paper.
  std::vector<DesignRow> rows;
  rows.push_back({"[34]", "CMOS", "65nm", "6T SRAM", "Cifar-10 / MNIST",
                  "VGG / LeNet-5", "88.83% / 99.05%",
                  "158.203nJ (/inference)", 0.0, 0.0});
  rows.push_back({"[35]", "CMOS", "65nm", "12T SRAM", "Cifar-10", "BNN",
                  "85.7%", "2.48-7.19fJ (/operation)", 403.0, 4.8e-15});
  rows.push_back({"[17]", "FeFET", "28nm", "1FeFET-1R", "/", "/", "/", "NA",
                  13714.0, 0.0});
  rows.push_back({"[19]", "FeFET", "28nm", "1FeFET-1T", "MNIST", "MLP",
                  "97.6%", "17.6uJ (/inference)", 0.0, 0.0});
  rows.push_back({"[14]", "ReRAM", "22nm", "1T-1R", "Cifar-10", "VGG",
                  "91.72%", "~5.5uJ (/inference)", 26.66, 202.8e-15});
  rows.push_back({"[36]", "MTJ", "28nm", "1T-1MTJ", "/", "/", "/",
                  "1.4pJ (/operation)", 32.0, 1.4e-12});
  return rows;
}

DesignRow this_work_row(double accuracy_percent, double energy_per_op_joules,
                        double tops_per_watt,
                        double energy_per_inference_joules) {
  DesignRow row;
  row.work = "This Work";
  row.device = "FeFET";
  row.process = "14nm";
  row.cell = "2T-1FeFET";
  row.dataset = "SynthCIFAR*";
  row.network = "VGG";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.2f%%", accuracy_percent);
  row.accuracy = buf;
  std::snprintf(buf, sizeof(buf), "%.2fnJ (/inference), %.2ffJ (/operation)",
                energy_per_inference_joules * 1e9,
                energy_per_op_joules * 1e15);
  row.energy = buf;
  row.tops_per_watt = tops_per_watt;
  row.energy_per_op_joules = energy_per_op_joules;
  return row;
}

double energy_ratio_vs(const DesignRow& reference, double this_work_e_op) {
  if (reference.energy_per_op_joules <= 0.0 || this_work_e_op <= 0.0) {
    return 0.0;
  }
  return reference.energy_per_op_joules / this_work_e_op;
}

}  // namespace sfc::cim
