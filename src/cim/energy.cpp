#include "cim/energy.hpp"

#include <algorithm>

#include "cim/mac.hpp"

namespace sfc::cim {

EnergyBreakdown energy_breakdown(const MacResult& result) {
  EnergyBreakdown b;
  for (const auto& [name, joules] : result.waveforms.source_energy) {
    b.per_source.push_back({name, joules});
    b.total_joules += joules;
  }
  std::sort(b.per_source.begin(), b.per_source.end(),
            [](const auto& x, const auto& y) { return x.joules > y.joules; });
  b.per_op_joules = result.ops > 0
                        ? b.total_joules / static_cast<double>(result.ops)
                        : 0.0;
  b.tops_per_watt = tops_per_watt(b.per_op_joules);
  return b;
}

EnergySummary measure_energy(const ArrayConfig& cfg, double temperature_c) {
  const int n = cfg.cells_per_row;
  CiMRow row(cfg);
  row.set_stored(std::vector<int>(static_cast<std::size_t>(n), 1));

  EnergySummary summary;
  summary.energy_per_op_by_mac.assign(static_cast<std::size_t>(n) + 1, 0.0);
  double sum = 0.0;
  int count = 0;
  for (int k = 0; k <= n; ++k) {
    std::vector<int> inputs(static_cast<std::size_t>(n), 1);
    for (int i = k; i < n; ++i) inputs[static_cast<std::size_t>(i)] = 0;
    MacResult r = row.evaluate(inputs, temperature_c);
    if (!r.converged) continue;
    summary.energy_per_op_by_mac[static_cast<std::size_t>(k)] =
        r.energy_per_op();
    sum += r.energy_per_op();
    ++count;
  }
  if (count > 0) summary.mean_energy_per_op = sum / count;
  summary.tops_per_watt = tops_per_watt(summary.mean_energy_per_op);
  return summary;
}

}  // namespace sfc::cim
