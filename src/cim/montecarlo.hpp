// Monte Carlo process-variation analysis (Fig. 9): Gaussian VTH
// variability on every FeFET (and optionally on M1/M2), measuring how far
// each MAC output moves relative to the nominal level spacing.
//
// Determinism contract
// --------------------
// Run k draws its device-variation vector from the counter-based stream
// exec::stream_seed(seed, k) and simulates a private row replica, so the
// samples are a pure function of (cfg, mc) alone: the same `seed` yields
// bit-identical MonteCarloResult samples regardless of `exec.threads`,
// chunking, or scheduling. Threads only change wall-clock time (see
// MonteCarloResult::job).
#pragma once

#include <cstdint>
#include <vector>

#include "cim/array.hpp"
#include "exec/parallel.hpp"

namespace sfc::cim {

struct MonteCarloConfig {
  int runs = 100;                 ///< paper: 100
  double sigma_vt_fefet = 0.054;  ///< paper: 54 mV
  double sigma_vt_mosfet = 0.0;   ///< optional M1/M2 variability
  double temperature_c = 27.0;
  std::uint64_t seed = 0x5eed2024;
  /// MAC values to exercise each run; empty = all 0..n.
  std::vector<int> mac_values;
  /// Fan-out of the independent runs (default: serial). Any thread count
  /// produces bit-identical samples — see the header comment.
  sfc::exec::ExecPolicy exec;
};

/// Global process corner: die-to-die shifts applied to every device on
/// top of (or instead of) the local Monte Carlo variation.
struct ProcessCorner {
  const char* name = "TT";
  double dvth = 0.0;            ///< global VTH shift, all devices [V]
  double mobility_scale = 1.0;  ///< mu0 multiplier, all devices
};

/// The classic five corners (TT/SS/FF/SF/FS collapse to three for an
/// all-NMOS datapath; slow = higher VTH + lower mobility).
std::vector<ProcessCorner> standard_corners();

/// Apply a corner to every device parameter set inside an ArrayConfig.
ArrayConfig apply_corner(const ArrayConfig& cfg, const ProcessCorner& corner);

struct MonteCarloSample {
  int run = 0;
  int mac = 0;
  double v_acc = 0.0;
  /// |v - v_nominal| as a percentage of the full-scale output range
  /// (nominal MAC=n minus MAC=0), the normalization the paper's Fig. 9
  /// "CiM output error" uses.
  double error_percent = 0.0;
  /// Same deviation as a fraction of one nominal level spacing - the
  /// number that decides whether the ADC misreads the MAC.
  double error_levels = 0.0;
};

struct MonteCarloResult {
  std::vector<MonteCarloSample> samples;
  std::vector<double> nominal_levels;  ///< v_acc per MAC without variation
  double level_spacing = 0.0;          ///< mean spacing of nominal levels
  double full_scale = 0.0;             ///< nominal MAC=n minus MAC=0 [V]
  double max_error_percent = 0.0;
  double mean_error_percent = 0.0;
  /// Worst deviation in level-spacing units (> 0.5 means the ADC decodes
  /// the wrong MAC for that sample).
  double max_error_levels = 0.0;
  bool all_converged = true;
  /// Newton iterations summed over every simulated MAC cycle (nominal
  /// levels + all runs) — the solver benchmark's work metric.
  long total_newton_iterations = 0;
  /// Wall time and per-run timings of the Monte Carlo fan-out.
  sfc::exec::JobReport job;

  std::vector<double> errors() const;
};

MonteCarloResult run_montecarlo(const ArrayConfig& cfg,
                                const MonteCarloConfig& mc);

}  // namespace sfc::cim
