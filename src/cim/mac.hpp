// Row-level MAC experiments: temperature sweeps of single-cell responses
// (Figs. 3 and 7) and of MAC output-voltage ranges (Figs. 4 and 8).
#pragma once

#include <vector>

#include "cim/array.hpp"
#include "cim/metrics.hpp"

namespace sfc::cim {

/// Single-cell response at one temperature.
struct CellResponse {
  double temperature_c = 0.0;
  double v_out = 0.0;   ///< V_O at the end of the cell phase [V]
  double i_avg = 0.0;   ///< average C0 charging current over the phase [A]
  bool converged = false;
};

/// Sweep a single cell (stored bit / input bit as given) over temperature.
/// Uses a one-cell row of the given configuration.
std::vector<CellResponse> cell_temperature_response(
    const ArrayConfig& cfg, const std::vector<double>& temps_c,
    int stored_bit = 1, int input_bit = 1);

/// Fig. 3 experiment: *current-mode* readout of a single 1FeFET-1R cell,
/// reproducing the measurement style of [17] - the cell output is clamped
/// near the SL rail by a small sense resistor (cfg.cell1r.r_current_sense)
/// and the DC drain current is recorded at each temperature. The WL level
/// follows cfg (0.35 V subthreshold / 1.3 V saturation).
struct CellCurrentResponse {
  double temperature_c = 0.0;
  double i_drain = 0.0;  ///< FeFET drain current through the sense R [A]
  double v_out = 0.0;    ///< clamped output node voltage [V]
  bool converged = false;
};
std::vector<CellCurrentResponse> cell_current_response(
    const ArrayConfig& cfg, const std::vector<double>& temps_c,
    int stored_bit = 1, int input_bit = 1);

/// MAC level sweep: for every MAC value k in [0, n] and every temperature,
/// run the full row and collect the output voltage. Two activation
/// patterns are exercised per k (input-driven zeros and storage-driven
/// zeros) and the level range covers both.
struct LevelSweepResult {
  std::vector<double> temps_c;
  /// v_by_mac[k][t]: worst-case-representative V_acc per pattern set
  /// (input-driven pattern), for plotting.
  std::vector<std::vector<double>> v_by_mac;
  /// Min/max over temperatures AND patterns.
  std::vector<LevelRange> levels;
  /// Mean energy per op at each MAC value, averaged over temperatures [J].
  std::vector<double> energy_per_op_by_mac;
  bool all_converged = true;
};

LevelSweepResult mac_level_sweep(const ArrayConfig& cfg,
                                 const std::vector<double>& temps_c);

/// Convert an energy-per-op to TOPS/W (1 / (E_op in pJ) = TOPS/W scale:
/// ops per second per watt / 1e12).
double tops_per_watt(double energy_per_op_joules);

}  // namespace sfc::cim
