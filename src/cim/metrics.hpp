// Figure-of-merit computations from the paper:
//   * Noise Margin Rate, Eqs. (2)-(3): separability of adjacent MAC output
//     voltage ranges across the temperature span;
//   * normalized output fluctuation (Figs. 3 and 7): max deviation of the
//     cell output from its value at the 27 degC reference temperature.
#pragma once

#include <span>
#include <vector>

namespace sfc::cim {

/// Output-voltage range of one MAC level across the temperature span.
struct LevelRange {
  int mac = 0;
  double lo = 0.0;  ///< LV_i: lowest output voltage over all temperatures
  double hi = 0.0;  ///< HV_i: highest output voltage over all temperatures
};

/// NMR_i = (LV_{i+1} - HV_i) / (HV_i - LV_i)  for i = 0 .. n-2 (Eq. 2).
/// Requires levels sorted by mac. A degenerate zero-width range uses a
/// tiny epsilon width so the ratio stays finite.
std::vector<double> noise_margin_rates(std::span<const LevelRange> levels);

struct NmrSummary {
  double nmr_min = 0.0;
  int argmin_mac = 0;  ///< the i of NMR_min (Eq. 3)
  bool separable = false;  ///< true iff every NMR_i > 0 (no overlap)
};

/// NMR_min = min_i NMR_i (Eq. 3).
NmrSummary summarize_nmr(std::span<const LevelRange> levels);

/// Max |value(T)/value(T_ref) - 1| over the sweep; `temps` and `values`
/// parallel arrays. T_ref is matched to the nearest grid point.
double max_normalized_fluctuation(std::span<const double> temps,
                                  std::span<const double> values,
                                  double reference_temp_c);

/// Per-point normalized values value(T)/value(T_ref).
std::vector<double> normalize_to_reference(std::span<const double> temps,
                                           std::span<const double> values,
                                           double reference_temp_c);

}  // namespace sfc::cim
