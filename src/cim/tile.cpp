#include "cim/tile.hpp"

#include <cassert>
#include <stdexcept>

namespace sfc::cim {

CiMTile::CiMTile(ArrayConfig cfg, std::vector<std::vector<int>> weights)
    : cfg_(cfg), weights_(std::move(weights)), row_(cfg) {
  if (weights_.empty() || weights_.front().empty()) {
    throw std::invalid_argument("CiMTile: empty weight matrix");
  }
  columns_ = static_cast<int>(weights_.front().size());
  for (const auto& row : weights_) {
    if (static_cast<int>(row.size()) != columns_) {
      throw std::invalid_argument("CiMTile: ragged weight matrix");
    }
  }
  const int n = cfg_.cells_per_row;
  segments_ = (columns_ + n - 1) / n;
}

CiMTile::Result CiMTile::multiply(const std::vector<int>& input,
                                  double temperature_c,
                                  const BehavioralArrayModel& adc) {
  assert(static_cast<int>(input.size()) == columns_);
  const int n = cfg_.cells_per_row;

  Result result;
  result.values.assign(weights_.size(), 0);
  result.expected.assign(weights_.size(), 0);
  result.v_acc.assign(weights_.size(), {});

  for (std::size_t r = 0; r < weights_.size(); ++r) {
    for (int seg = 0; seg < segments_; ++seg) {
      std::vector<int> stored(static_cast<std::size_t>(n), 0);
      std::vector<int> bits(static_cast<std::size_t>(n), 0);
      for (int i = 0; i < n; ++i) {
        const int col = seg * n + i;
        if (col >= columns_) break;
        stored[static_cast<std::size_t>(i)] =
            weights_[r][static_cast<std::size_t>(col)];
        bits[static_cast<std::size_t>(i)] =
            input[static_cast<std::size_t>(col)];
      }
      row_.set_stored(stored);
      const MacResult mac = row_.evaluate(bits, temperature_c);
      if (!mac.converged) {
        result.converged = false;
        continue;
      }
      result.v_acc[r].push_back(mac.v_acc);
      result.values[r] += adc.decode(mac.v_acc);
      result.energy_joules += mac.energy_joules;
      for (int i = 0; i < n; ++i) {
        const int col = seg * n + i;
        if (col >= columns_) break;
        result.expected[r] += weights_[r][static_cast<std::size_t>(col)] &
                              input[static_cast<std::size_t>(col)];
      }
    }
  }
  return result;
}

}  // namespace sfc::cim
