// Multi-domain Preisach model of the HfO2 ferroelectric gate stack.
//
// The ferroelectric layer is discretized into N independent domains with
// coercive voltages drawn from a Gaussian (deterministic quantiles, so the
// nominal device is reproducible). Each domain carries a normalized
// dipole state in [-1, +1]; a write pulse moves eligible domains toward
// the field direction with a Merz-law switching time
//     tau(V) = tau0 * exp(v_activation / (|V| - vc_domain)),
// which is what makes the paper's +4 V/115 ns vs -4 V/200 ns programming
// pulse widths meaningful. The mean polarization maps linearly onto the
// device threshold window [vth_low, vth_high].
//
// Temperature enters twice, following the measured trends in
// Gupta et al. (IRPS'20) that the paper builds on:
//   * coercive voltage drops with temperature (tc_vc), and
//   * the remnant-polarization memory window shrinks (tc_mw), which makes
//     the high-VTH state more temperature-sensitive than the low-VTH
//     state - exactly the asymmetry shown in the paper's Fig. 1.
#pragma once

#include <vector>

namespace sfc::fefet {

struct PreisachParams {
  int num_domains = 64;
  double vc_mean = 2.4;        ///< mean coercive voltage [V]
  double vc_sigma = 0.35;      ///< domain-to-domain spread [V]
  /// VTH with full "up" polarization [V]. Chosen so the 0.35 V read
  /// voltage sits in the subthreshold region of the low-VTH state (the
  /// paper's Fig. 1 operating point - the source node rides above 0.1 V
  /// during the read, keeping VGS - VTH well negative) while the 1.3 V
  /// saturation read is comfortably above it.
  double vth_low = 0.25;
  double vth_high = 1.70;      ///< VTH with full "down" polarization [V]
  double tau0 = 2e-9;          ///< Merz prefactor, positive pulses [s]
  double tau0_negative = 3e-9; ///< Merz prefactor, negative pulses [s]
  double v_activation = 1.4;   ///< Merz activation voltage [V]
  double tc_vc = -2.0e-3;      ///< d(vc)/dT [V/K]
  /// Fractional memory-window shrink per K. Together with the channel's
  /// own tc_vth this makes the low-VTH state mildly and the high-VTH
  /// state strongly temperature-dependent (Fig. 1 asymmetry).
  double tc_mw = -3.0e-3;
  double t_nominal_c = 27.0;

  // --- retention (thermal depolarization) --------------------------------
  /// Arrhenius activation energy of depolarization [eV]. With the
  /// attempt time below this gives ~10-year retention at 85 degC,
  /// typical of HfO2 FeFET data.
  double retention_ea_ev = 1.35;
  double retention_tau0 = 1e-9;  ///< attempt time [s]

  // --- read disturb -------------------------------------------------------
  /// Sub-coercive pulses nudge domains with an exponentially suppressed
  /// rate: progress ~ (dt / disturb_tau0) * exp(-(vc - |V|)/disturb_slope).
  /// Zero disturb_slope disables the mechanism (hard threshold).
  double disturb_tau0 = 1e-3;    ///< [s]
  double disturb_slope = 0.15;   ///< [V]
};

class PreisachModel {
 public:
  explicit PreisachModel(PreisachParams params = {});

  /// Apply a rectangular gate pulse of `volts` for `seconds` at the given
  /// temperature. Positive pulses drive domains toward +1 (low VTH).
  void apply_pulse(double volts, double seconds, double temperature_c);

  /// Quasi-static field application: every eligible domain switches fully
  /// (the limit of a very long pulse). Used for hysteresis-loop tracing.
  void apply_quasistatic(double volts, double temperature_c);

  /// Mean normalized polarization in [-1, +1].
  double polarization() const;

  /// Effective threshold voltage contributed by the ferroelectric at the
  /// given temperature [V].
  double vth(double temperature_c) const;

  /// Remnant memory window vth_high - vth_low at temperature [V].
  double memory_window(double temperature_c) const;

  /// Directly force the polarization state (programming shortcut for
  /// array-level experiments where the write protocol is not under test).
  void set_polarization(double p);

  /// Paper write protocol (Sec. III-B): '1' = +4 V / 115 ns -> low VTH;
  /// '0' = -4 V / 200 ns -> high VTH. Issued at the given temperature.
  void write_bit(bool one, double temperature_c);

  /// Retention: thermally activated depolarization over `seconds` of
  /// storage at `temperature_c`. Every domain decays toward zero dipole
  /// with the Arrhenius time constant retention_tau(temperature_c).
  void age(double seconds, double temperature_c);

  /// Depolarization time constant at a temperature [s].
  double retention_tau(double temperature_c) const;

  /// Read disturb: apply `cycles` sub-coercive gate pulses of `volts` x
  /// `seconds` each. Uses the exponentially suppressed sub-threshold
  /// nucleation tail, so millions of reads produce a measurable but small
  /// polarization shift while a single read does nothing noticeable.
  void read_disturb(double volts, double seconds, long cycles,
                    double temperature_c);

  /// Coercive voltage of domain i at temperature [V].
  double domain_vc(int i, double temperature_c) const;

  const PreisachParams& params() const { return p_; }
  int num_domains() const { return static_cast<int>(state_.size()); }
  double domain_state(int i) const { return state_[static_cast<std::size_t>(i)]; }

 private:
  PreisachParams p_;
  std::vector<double> vc_;     ///< per-domain coercive voltage at t_nominal
  std::vector<double> state_;  ///< per-domain dipole in [-1, +1]
};

}  // namespace sfc::fefet
