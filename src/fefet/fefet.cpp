#include "fefet/fefet.hpp"

namespace sfc::fefet {

FeFetParams FeFetParams::reference(double w_over_l) {
  FeFetParams p;
  p.channel = devices::MosfetParams::finfet14_nmos(w_over_l);
  // The ferroelectric supplies the whole threshold; the channel keeps only
  // its temperature coefficient. FeFETs show a stronger VTH drift than the
  // plain FinFET (ferroelectric/interface charge, cf. Gupta et al. IRPS'20),
  // hence the larger |tc_vth|.
  p.channel.vth0 = 0.0;
  p.channel.tc_vth = -2.0e-3;
  return p;
}

FeFet::FeFet(std::string name, sfc::spice::NodeId drain,
             sfc::spice::NodeId gate, sfc::spice::NodeId source,
             FeFetParams params)
    : Mosfet(std::move(name), drain, gate, source, params.channel),
      fe_(params.ferroelectric) {}

void FeFet::write_bit(bool one, double temperature_c) {
  fe_.write_bit(one, temperature_c);
}

double FeFet::effective_vth(double temperature_c) const {
  return params().vth(temperature_c) + fe_.vth(temperature_c) + vth_shift();
}

}  // namespace sfc::fefet
