// FeFET circuit device: an EKV channel whose threshold voltage is set by
// the Preisach ferroelectric model. The channel's own vth0 is zero - the
// full threshold comes from the polarization state, plus the channel
// temperature coefficient and any Monte Carlo vth shift.
#pragma once

#include "devices/mosfet.hpp"
#include "fefet/preisach.hpp"

namespace sfc::fefet {

struct FeFetParams {
  devices::MosfetParams channel;  ///< channel with vth0 = 0 (see make_*)
  PreisachParams ferroelectric;

  /// Default device used across the reproduction; W/L tuned during
  /// calibration (see cim/calibration.*).
  static FeFetParams reference(double w_over_l = 40.0);
};

class FeFet final : public devices::Mosfet {
 public:
  FeFet(std::string name, sfc::spice::NodeId drain, sfc::spice::NodeId gate,
        sfc::spice::NodeId source, FeFetParams params = FeFetParams::reference());

  std::unique_ptr<sfc::spice::Device> clone() const override {
    return std::unique_ptr<sfc::spice::Device>(new FeFet(*this));
  }

  PreisachModel& ferroelectric() { return fe_; }
  const PreisachModel& ferroelectric() const { return fe_; }

  /// Program with the paper's write protocol at `temperature_c`.
  void write_bit(bool one, double temperature_c = 27.0);

  /// True when polarization points to the low-VTH ('1') state.
  bool stored_bit() const { return fe_.polarization() > 0.0; }

  /// Effective threshold (ferroelectric + channel tempco + MC shift) [V].
  double effective_vth(double temperature_c) const;

 protected:
  /// Feeds the polarization-dependent threshold into the inherited
  /// Mosfet::stamp as vth_extra. The Mosfet temperature-term cache stays
  /// valid because polarization never enters those terms; the device as a
  /// whole remains nonlinear (is_linear() == false via Mosfet).
  double dynamic_vth_offset(double temperature_c) const override {
    return fe_.vth(temperature_c);
  }

 private:
  PreisachModel fe_;
};

}  // namespace sfc::fefet
