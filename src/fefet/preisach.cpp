#include "fefet/preisach.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace sfc::fefet {

PreisachModel::PreisachModel(PreisachParams params) : p_(params) {
  if (p_.num_domains < 1) {
    throw std::invalid_argument("PreisachModel: need >= 1 domain");
  }
  if (p_.vth_high <= p_.vth_low) {
    throw std::invalid_argument("PreisachModel: vth_high must exceed vth_low");
  }
  const auto n = static_cast<std::size_t>(p_.num_domains);
  vc_.resize(n);
  state_.assign(n, -1.0);  // pristine device in the high-VTH state
  // Deterministic Gaussian quantiles: midpoints of n equal-probability
  // strata. Keeps the nominal device identical across runs; Monte Carlo
  // variation is injected at the VTH level, not here.
  for (std::size_t i = 0; i < n; ++i) {
    const double q = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
    vc_[i] = p_.vc_mean + p_.vc_sigma * util::probit(q);
    vc_[i] = std::max(vc_[i], 0.05);  // physical floor
  }
}

double PreisachModel::domain_vc(int i, double temperature_c) const {
  const double base = vc_.at(static_cast<std::size_t>(i));
  return std::max(0.05, base + p_.tc_vc * (temperature_c - p_.t_nominal_c));
}

void PreisachModel::apply_pulse(double volts, double seconds,
                                double temperature_c) {
  if (volts == 0.0 || seconds <= 0.0) return;
  const double direction = volts > 0.0 ? 1.0 : -1.0;
  const double magnitude = std::fabs(volts);
  const double tau0 = volts > 0.0 ? p_.tau0 : p_.tau0_negative;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const double vc = domain_vc(static_cast<int>(i), temperature_c);
    if (magnitude <= vc) continue;  // below coercive field: no switching
    const double tau = tau0 * std::exp(p_.v_activation / (magnitude - vc));
    const double progress = 1.0 - std::exp(-seconds / tau);
    // Move the dipole toward the target by the switching fraction.
    state_[i] += (direction - state_[i]) * progress;
  }
}

void PreisachModel::apply_quasistatic(double volts, double temperature_c) {
  if (volts == 0.0) return;
  const double direction = volts > 0.0 ? 1.0 : -1.0;
  const double magnitude = std::fabs(volts);
  for (std::size_t i = 0; i < state_.size(); ++i) {
    if (magnitude > domain_vc(static_cast<int>(i), temperature_c)) {
      state_[i] = direction;
    }
  }
}

double PreisachModel::polarization() const {
  double sum = 0.0;
  for (double s : state_) sum += s;
  return sum / static_cast<double>(state_.size());
}

double PreisachModel::memory_window(double temperature_c) const {
  const double mw0 = p_.vth_high - p_.vth_low;
  const double scale = 1.0 + p_.tc_mw * (temperature_c - p_.t_nominal_c);
  return mw0 * std::max(scale, 0.0);
}

double PreisachModel::vth(double temperature_c) const {
  const double mid = 0.5 * (p_.vth_high + p_.vth_low);
  return mid - polarization() * 0.5 * memory_window(temperature_c);
}

void PreisachModel::set_polarization(double p) {
  p = std::clamp(p, -1.0, 1.0);
  for (double& s : state_) s = p;
}

void PreisachModel::write_bit(bool one, double temperature_c) {
  if (one) {
    apply_pulse(+4.0, 115e-9, temperature_c);
  } else {
    apply_pulse(-4.0, 200e-9, temperature_c);
  }
}

double PreisachModel::retention_tau(double temperature_c) const {
  const double kt_ev =
      sfc::util::kBoltzmann * sfc::util::celsius_to_kelvin(temperature_c) /
      sfc::util::kElementaryCharge;
  return p_.retention_tau0 * std::exp(p_.retention_ea_ev / kt_ev);
}

void PreisachModel::age(double seconds, double temperature_c) {
  if (seconds <= 0.0) return;
  const double decay = std::exp(-seconds / retention_tau(temperature_c));
  for (double& s : state_) s *= decay;
}

void PreisachModel::read_disturb(double volts, double seconds, long cycles,
                                 double temperature_c) {
  if (volts == 0.0 || seconds <= 0.0 || cycles <= 0 ||
      p_.disturb_slope <= 0.0) {
    return;
  }
  const double direction = volts > 0.0 ? 1.0 : -1.0;
  const double magnitude = std::fabs(volts);
  const double total_time = seconds * static_cast<double>(cycles);
  const double tau0 = volts > 0.0 ? p_.tau0 : p_.tau0_negative;
  for (std::size_t i = 0; i < state_.size(); ++i) {
    const double vc = domain_vc(static_cast<int>(i), temperature_c);
    double rate;
    if (magnitude > vc) {
      // Above this domain's coercive voltage: ordinary Merz switching.
      rate = 1.0 / (tau0 * std::exp(p_.v_activation / (magnitude - vc)));
    } else {
      // Sub-coercive nucleation tail.
      rate = std::exp(-(vc - magnitude) / p_.disturb_slope) / p_.disturb_tau0;
    }
    const double progress = 1.0 - std::exp(-total_time * rate);
    state_[i] += (direction - state_[i]) * progress;
  }
}

}  // namespace sfc::fefet
