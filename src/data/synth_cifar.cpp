#include "data/synth_cifar.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sfc::data {
namespace {

constexpr int kN = Image::kSize;

/// Per-class base colors (RGB in [0,1]); hue jitter is applied on top so
/// color alone cannot solve the task.
constexpr float kBaseColor[Dataset::kNumClasses][3] = {
    {0.9f, 0.3f, 0.3f}, {0.3f, 0.9f, 0.3f}, {0.3f, 0.4f, 0.9f},
    {0.9f, 0.8f, 0.3f}, {0.8f, 0.3f, 0.8f}, {0.3f, 0.9f, 0.9f},
    {0.9f, 0.6f, 0.3f}, {0.6f, 0.6f, 0.9f}, {0.7f, 0.9f, 0.5f},
    {0.9f, 0.5f, 0.6f}};

const char* kClassNames[Dataset::kNumClasses] = {
    "h-stripes", "v-stripes", "d-stripes", "checker", "disk",
    "ring",      "cross",     "squares",   "blobs",   "wedge"};

/// Scalar intensity pattern in [0,1] for class `label` at pixel (x, y).
double pattern_value(int label, int x, int y, double phase, double scale,
                     double cx, double cy) {
  const double fx = (x - cx) / scale;
  const double fy = (y - cy) / scale;
  switch (label) {
    case 0:  // horizontal stripes
      return 0.5 + 0.5 * std::sin(fy + phase);
    case 1:  // vertical stripes
      return 0.5 + 0.5 * std::sin(fx + phase);
    case 2:  // diagonal stripes
      return 0.5 + 0.5 * std::sin((fx + fy) * 0.7071 + phase);
    case 3:  // checkerboard
      return (std::sin(fx + phase) * std::sin(fy + phase)) > 0.0 ? 1.0 : 0.0;
    case 4: {  // filled disk
      const double r = std::sqrt(fx * fx + fy * fy);
      return r < 3.0 ? 1.0 : 0.15;
    }
    case 5: {  // ring
      const double r = std::sqrt(fx * fx + fy * fy);
      return (r > 2.0 && r < 3.6) ? 1.0 : 0.15;
    }
    case 6:  // cross
      return (std::fabs(fx) < 0.9 || std::fabs(fy) < 0.9) ? 1.0 : 0.15;
    case 7: {  // concentric squares
      const double r = std::max(std::fabs(fx), std::fabs(fy));
      return 0.5 + 0.5 * std::sin(2.2 * r + phase);
    }
    case 8: {  // two blobs
      const double d1 = (fx - 1.8) * (fx - 1.8) + (fy - 1.2) * (fy - 1.2);
      const double d2 = (fx + 1.8) * (fx + 1.8) + (fy + 1.2) * (fy + 1.2);
      return 0.15 + 0.85 * (std::exp(-d1 / 2.5) + std::exp(-d2 / 2.5));
    }
    case 9:  // gradient wedge
      return std::clamp(0.5 + (fx * std::cos(phase) + fy * std::sin(phase)) / 8.0,
                        0.0, 1.0);
    default:
      return 0.0;
  }
}

}  // namespace

const char* class_name(int label) {
  assert(label >= 0 && label < Dataset::kNumClasses);
  return kClassNames[label];
}

Image make_synth_image(int label, sfc::util::Rng& rng,
                       const SynthCifarConfig& cfg) {
  assert(label >= 0 && label < Dataset::kNumClasses);
  Image img;
  img.label = label;
  img.pixels.assign(static_cast<std::size_t>(Image::kChannels) * kN * kN, 0.0f);

  const double phase = rng.uniform(0.0, 2.0 * M_PI);
  const double scale = rng.uniform(2.2, 4.0);
  const double cx = kN / 2.0 + rng.uniform(-5.0, 5.0);
  const double cy = kN / 2.0 + rng.uniform(-5.0, 5.0);

  // Per-image color modulation around the class base color.
  double color[3];
  for (int c = 0; c < 3; ++c) {
    color[c] = kBaseColor[label][c] *
               (1.0 + rng.uniform(-cfg.color_jitter, cfg.color_jitter));
  }
  // Background tint, weakly correlated with the class.
  const double bg = rng.uniform(0.05, 0.25);

  for (int y = 0; y < kN; ++y) {
    for (int x = 0; x < kN; ++x) {
      const double v = pattern_value(label, x, y, phase, scale, cx, cy);
      for (int c = 0; c < 3; ++c) {
        double p = bg + (1.0 - bg) * v * color[c];
        p += rng.normal(0.0, cfg.noise_sigma);
        img.at(c, y, x) = static_cast<float>(std::clamp(p, 0.0, 1.0));
      }
    }
  }
  return img;
}

namespace {
Dataset make_split(const SynthCifarConfig& cfg, int per_class,
                   std::uint64_t stream_salt) {
  Dataset ds;
  ds.images.reserve(static_cast<std::size_t>(per_class) *
                    Dataset::kNumClasses);
  sfc::util::Rng rng(cfg.seed ^ stream_salt);
  for (int label = 0; label < Dataset::kNumClasses; ++label) {
    for (int i = 0; i < per_class; ++i) {
      ds.images.push_back(make_synth_image(label, rng, cfg));
    }
  }
  // Deterministic shuffle so batches mix classes.
  sfc::util::Rng shuffle_rng(cfg.seed ^ stream_salt ^ 0xabcdefULL);
  const auto perm = shuffle_rng.permutation(ds.images.size());
  std::vector<Image> shuffled;
  shuffled.reserve(ds.images.size());
  for (std::size_t idx : perm) shuffled.push_back(std::move(ds.images[idx]));
  ds.images = std::move(shuffled);
  return ds;
}
}  // namespace

Dataset make_synth_cifar_train(const SynthCifarConfig& cfg) {
  return make_split(cfg, cfg.train_per_class, 0x7121a11ULL);
}

Dataset make_synth_cifar_test(const SynthCifarConfig& cfg) {
  return make_split(cfg, cfg.test_per_class, 0x7e57ULL);
}

}  // namespace sfc::data
