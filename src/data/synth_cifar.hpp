// SynthCIFAR: a procedural 10-class, 32x32x3 image dataset standing in for
// CIFAR-10 (no dataset ships with this container; see DESIGN.md).
//
// Each class is a parameterized texture/shape family (stripes at several
// orientations, checkerboard, disk, ring, cross, concentric squares,
// two-blob scenes, gradient wedges) with randomized phase, scale, position,
// per-class hue, and additive noise - hard enough that a linear classifier
// underperforms and a small CNN is needed, which is what the CiM accuracy
// experiment requires.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sfc::data {

/// One image in CHW float layout, values in [0, 1].
struct Image {
  static constexpr int kSize = 32;
  static constexpr int kChannels = 3;
  std::vector<float> pixels;  ///< kChannels * kSize * kSize
  int label = 0;

  float& at(int c, int y, int x) {
    return pixels[static_cast<std::size_t>((c * kSize + y) * kSize + x)];
  }
  float at(int c, int y, int x) const {
    return pixels[static_cast<std::size_t>((c * kSize + y) * kSize + x)];
  }
};

struct Dataset {
  std::vector<Image> images;
  static constexpr int kNumClasses = 10;

  std::size_t size() const { return images.size(); }
};

struct SynthCifarConfig {
  int train_per_class = 200;
  int test_per_class = 40;
  std::uint64_t seed = 0xc1fa7;
  double noise_sigma = 0.10;   ///< additive Gaussian pixel noise
  double color_jitter = 0.15;  ///< per-image hue scaling jitter
};

/// Deterministic train/test splits (disjoint random streams).
Dataset make_synth_cifar_train(const SynthCifarConfig& cfg = {});
Dataset make_synth_cifar_test(const SynthCifarConfig& cfg = {});

/// Generate a single sample of class `label` from an explicit stream.
Image make_synth_image(int label, sfc::util::Rng& rng,
                       const SynthCifarConfig& cfg = {});

/// Human-readable class names (texture families).
const char* class_name(int label);

}  // namespace sfc::data
