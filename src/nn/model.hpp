// Sequential model container + softmax cross-entropy head + weight
// serialization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace sfc::nn {

class Sequential {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input, const LayerContext& ctx);
  /// Backward from the loss gradient at the output.
  void backward(const Tensor& grad_output);

  std::vector<Tensor*> parameters();
  std::vector<Tensor*> gradients();
  void zero_gradients();

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  /// Total parameter count.
  std::size_t num_parameters();

  /// Layer-by-layer summary given an input shape (Table-I style).
  std::string summary(std::vector<int> input_shape) const;

  /// Binary weight (de)serialization; shapes must match exactly.
  void save_weights(const std::string& path);
  void load_weights(const std::string& path);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Numerically stable softmax.
Tensor softmax(const Tensor& logits);

/// Cross-entropy loss of logits vs target class. Returns loss; fills
/// grad (same shape as logits) with d loss / d logits.
float softmax_cross_entropy(const Tensor& logits, int target, Tensor* grad);

/// Index of the max logit.
int argmax(const Tensor& values);

}  // namespace sfc::nn
