#include "nn/model.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace sfc::nn {

Tensor Sequential::forward(const Tensor& input, const LayerContext& ctx) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->forward(x, ctx);
  }
  return x;
}

void Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> params;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> grads;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->gradients()) grads.push_back(g);
  }
  return grads;
}

void Sequential::zero_gradients() {
  for (auto& layer : layers_) layer->zero_gradients();
}

std::size_t Sequential::num_parameters() {
  std::size_t n = 0;
  for (Tensor* p : parameters()) n += p->size();
  return n;
}

std::string Sequential::summary(std::vector<int> input_shape) const {
  std::string out;
  char line[160];
  std::vector<int> shape = std::move(input_shape);
  for (const auto& layer : layers_) {
    const std::vector<int> next = layer->output_shape(shape);
    std::string in_str = "(", out_str = "(";
    for (std::size_t i = 0; i < shape.size(); ++i) {
      in_str += (i ? "," : "") + std::to_string(shape[i]);
    }
    for (std::size_t i = 0; i < next.size(); ++i) {
      out_str += (i ? "," : "") + std::to_string(next[i]);
    }
    in_str += ")";
    out_str += ")";
    std::snprintf(line, sizeof(line), "  %-28s %-14s -> %-14s\n",
                  layer->name().c_str(), in_str.c_str(), out_str.c_str());
    out += line;
    shape = next;
  }
  return out;
}

void Sequential::save_weights(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  const char magic[8] = {'s', 'f', 'c', 'n', 'n', 'w', '0', '1'};
  out.write(magic, sizeof(magic));
  for (Tensor* p : parameters()) {
    const auto n = static_cast<std::uint64_t>(p->size());
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    out.write(reinterpret_cast<const char*>(p->data()),
              static_cast<std::streamsize>(n * sizeof(float)));
  }
}

void Sequential::load_weights(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 8) != "sfcnnw01") {
    throw std::runtime_error("bad weight file " + path);
  }
  for (Tensor* p : parameters()) {
    std::uint64_t n = 0;
    in.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!in || n != p->size()) {
      throw std::runtime_error("weight shape mismatch in " + path);
    }
    in.read(reinterpret_cast<char*>(p->data()),
            static_cast<std::streamsize>(n * sizeof(float)));
    if (!in) throw std::runtime_error("truncated weight file " + path);
  }
}

Tensor softmax(const Tensor& logits) {
  Tensor out = logits;
  float peak = -1e30f;
  for (std::size_t i = 0; i < out.size(); ++i) peak = std::max(peak, out[i]);
  float sum = 0.0f;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::exp(out[i] - peak);
    sum += out[i];
  }
  for (std::size_t i = 0; i < out.size(); ++i) out[i] /= sum;
  return out;
}

float softmax_cross_entropy(const Tensor& logits, int target, Tensor* grad) {
  assert(target >= 0 && static_cast<std::size_t>(target) < logits.size());
  const Tensor probs = softmax(logits);
  const float p_target =
      std::max(probs[static_cast<std::size_t>(target)], 1e-12f);
  if (grad != nullptr) {
    *grad = probs;
    (*grad)[static_cast<std::size_t>(target)] -= 1.0f;
  }
  return -std::log(p_target);
}

int argmax(const Tensor& values) {
  int best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

}  // namespace sfc::nn
