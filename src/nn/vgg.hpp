// VGG network builder following the paper's Table I, plus a width-scaled
// variant that trains in minutes on a CPU while keeping the same topology
// (7 conv + 3 pool + 3 FC, same dropout schedule).
#pragma once

#include <string>
#include <vector>

#include "nn/model.hpp"

namespace sfc::nn {

struct VggConfig {
  /// Channel widths of the 7 conv layers (Table I: 64 64 128 128 256 256 256).
  std::vector<int> conv_channels = {64, 64, 128, 128, 256, 256, 256};
  /// Hidden widths of FC1/FC2 (Table I: 4096, 4096).
  int fc_hidden = 4096;
  int num_classes = 10;
  /// Dropout schedule from Table I.
  bool with_dropout = true;
  /// Insert InstanceNorm2d after every conv (not in the paper's Table I;
  /// an optional training aid for the deep plain stack).
  bool with_norm = false;
  std::uint64_t init_seed = 2024;

  /// The exact Table-I network.
  static VggConfig paper();
  /// Width-scaled variant for CPU-feasible training (factor of the paper's
  /// widths, e.g. 0.125 -> conv 8 8 16 16 32 32 32, fc 512).
  static VggConfig reduced(double width_factor = 0.125);
};

/// Build the network (Conv-ReLU-Dropout blocks, pools, FC head).
Sequential build_vgg(const VggConfig& cfg);

/// Table I as printable rows: layer | input map | output map | nonlinearity.
struct VggTableRow {
  std::string layer;
  std::string input_map;
  std::string output_map;
  std::string nonlinearity;
};
std::vector<VggTableRow> vgg_table(const VggConfig& cfg);

}  // namespace sfc::nn
