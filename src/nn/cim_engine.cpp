#include "nn/cim_engine.hpp"

#include <algorithm>
#include <bit>
#include <span>
#include <cassert>
#include <vector>

#include "exec/stream.hpp"
#include "trace/trace.hpp"

namespace sfc::nn {
namespace {

/// SWAR per-byte popcount: returns a word whose every byte holds the
/// popcount (0..8) of the corresponding input byte.
std::uint64_t byte_popcounts(std::uint64_t x) {
  x = x - ((x >> 1) & 0x5555555555555555ULL);
  x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
  return x;
}

/// Cheap content fingerprint over <= 16 sampled elements; guards the
/// weight-plane cache against a row being rewritten in place (or the
/// allocator reusing an address for different weights).
std::uint64_t weight_fingerprint(std::span<const std::int8_t> w) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ w.size();
  const std::size_t stride = std::max<std::size_t>(1, w.size() / 16);
  for (std::size_t i = 0; i < w.size(); i += stride) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(w[i])) +
         0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  if (!w.empty()) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint8_t>(w.back())) << 32;
  }
  return h;
}

}  // namespace

CimDotEngine::CimDotEngine(const sfc::cim::BehavioralArrayModel& model,
                           Options opts)
    : model_(model), opts_(opts) {
  assert(model_.cells() == 8 && "bit-serial mapping expects 8-cell rows");
  assert(opts.activation_bits >= 2 && opts.activation_bits <= 8);
  assert(opts.weight_bits >= 2 && opts.weight_bits <= 8);
  act_bits_ = opts.activation_bits;
  weight_mag_bits_ = opts.weight_bits - 1;
  for (int k = 0; k <= 8; ++k) {
    decoded_[k] = model_.mac(k, opts_.temperature_c, nullptr);
    if (decoded_[k] != k) any_miscount_ = true;
  }
}

void CimDotEngine::begin_layer(int /*layer_index*/) {
  // Weight plane cache entries stay valid as long as the network object
  // lives (keys are stable row pointers), so nothing to do per layer.
}

const CimDotEngine::WeightPlanes& CimDotEngine::planes_for(
    std::span<const std::int8_t> w) {
  const void* key = w.data();
  const std::uint64_t fp = weight_fingerprint(w);
  auto it = plane_cache_.find(key);
  if (it != plane_cache_.end() && it->second.length == w.size() &&
      it->second.fingerprint == fp) {
    return it->second;
  }
  WeightPlanes planes;
  planes.length = w.size();
  planes.fingerprint = fp;
  planes.words = (w.size() + 63) / 64;
  planes.pos.assign(
      static_cast<std::size_t>(weight_mag_bits_) * planes.words, 0);
  planes.neg.assign(
      static_cast<std::size_t>(weight_mag_bits_) * planes.words, 0);
  for (std::size_t e = 0; e < w.size(); ++e) {
    const int v = w[e];
    const unsigned mag = static_cast<unsigned>(v < 0 ? -v : v);
    auto* target = (v < 0 ? planes.neg.data() : planes.pos.data());
    const std::size_t word = e >> 6;
    const std::uint64_t bit = 1ULL << (e & 63);
    for (int q = 0; q < weight_mag_bits_; ++q) {
      if ((mag >> q) & 1u) {
        target[static_cast<std::size_t>(q) * planes.words + word] |= bit;
      }
    }
  }
  // insert_or_assign (not emplace): the allocator can reuse an address for
  // a different weight row, which must overwrite the stale cache entry.
  return plane_cache_.insert_or_assign(key, std::move(planes)).first->second;
}

void CimDotEngine::pack_activations(std::span<const std::uint8_t> a) {
  const std::size_t words = (a.size() + 63) / 64;
  if (a_words_ != words) {
    a_planes_.assign(static_cast<std::size_t>(act_bits_) * words, 0);
    a_words_ = words;
  } else {
    std::fill(a_planes_.begin(), a_planes_.end(), 0);
  }
  for (std::size_t e = 0; e < a.size(); ++e) {
    const unsigned v = a[e];
    if (v == 0) continue;
    const std::size_t word = e >> 6;
    const std::uint64_t bit = 1ULL << (e & 63);
    for (int p = 0; p < act_bits_; ++p) {
      if ((v >> p) & 1u) {
        a_planes_[static_cast<std::size_t>(p) * words + word] |= bit;
      }
    }
  }
}

std::int64_t CimDotEngine::binary_dot(const std::uint64_t* a_plane,
                                      const std::uint64_t* w_plane,
                                      std::size_t words, sfc::util::Rng* rng,
                                      std::int64_t* errors) const {
  std::int64_t total = 0;
  if (!any_miscount_ && rng == nullptr) {
    // Fast path: every MAC count decodes exactly, so the row result equals
    // the true popcount.
    for (std::size_t i = 0; i < words; ++i) {
      total += std::popcount(a_plane[i] & w_plane[i]);
    }
    return total;
  }
  for (std::size_t i = 0; i < words; ++i) {
    std::uint64_t counts = byte_popcounts(a_plane[i] & w_plane[i]);
    for (int b = 0; b < 8; ++b) {
      const int true_count = static_cast<int>(counts & 0xff);
      counts >>= 8;
      int digital;
      if (rng != nullptr) {
        digital = model_.mac(true_count, opts_.temperature_c, rng);
      } else {
        digital = decoded_[true_count];
      }
      if (digital != true_count) ++*errors;
      total += digital;
    }
  }
  return total;
}

std::int64_t CimDotEngine::row_result(const WeightPlanes& wp,
                                      sfc::util::Rng* rng,
                                      std::int64_t* errors) const {
  const std::size_t words = wp.words;
  std::int64_t result = 0;
  for (int p = 0; p < act_bits_; ++p) {
    const std::uint64_t* ap =
        a_planes_.data() + static_cast<std::size_t>(p) * words;
    for (int q = 0; q < weight_mag_bits_; ++q) {
      const std::int64_t pos = binary_dot(
          ap, wp.pos.data() + static_cast<std::size_t>(q) * words, words, rng,
          errors);
      const std::int64_t neg = binary_dot(
          ap, wp.neg.data() + static_cast<std::size_t>(q) * words, words, rng,
          errors);
      result += ((pos - neg) << (p + q));
    }
  }
  return result;
}

std::int64_t CimDotEngine::dot(std::span<const std::uint8_t> a,
                               std::span<const std::int8_t> w) {
  assert(a.size() == w.size());
  pack_activations(a);
  const WeightPlanes& wp = planes_for(w);
  assert(wp.words == (a.size() + 63) / 64);

  const std::uint64_t noise_row = next_noise_row_++;
  std::int64_t errors = 0;
  std::int64_t result;
  if (opts_.with_variation_noise) {
    sfc::util::Rng rng = sfc::exec::stream_rng(opts_.noise_seed, noise_row);
    result = row_result(wp, &rng, &errors);
  } else {
    result = row_result(wp, nullptr, &errors);
  }
  row_errors_ += errors;
  row_ops_ += static_cast<std::int64_t>(act_bits_) * weight_mag_bits_ * 2 *
              static_cast<std::int64_t>((a.size() + 7) / 8);
  return result;
}

void CimDotEngine::dot_batch(std::span<const std::uint8_t> a,
                             std::span<const std::int8_t> weights,
                             std::size_t row_stride, std::size_t rows,
                             std::int64_t* out) {
  if (rows == 0) return;
  SFC_TRACE_SPAN("cim.dot_batch");
  SFC_TRACE_COUNT("cim.dot.batches", 1);
  SFC_TRACE_COUNT("cim.dot.rows", rows);
  SFC_TRACE_COUNT("cim.dot.row_ops",
                  static_cast<std::uint64_t>(act_bits_) * weight_mag_bits_ * 2 *
                      ((a.size() + 7) / 8) * rows);
  assert(weights.size() >= (rows - 1) * row_stride + a.size());
  pack_activations(a);

  // The plane cache is shared mutable state, so resolve every row's planes
  // serially up front; references into the unordered_map stay valid while
  // the parallel tasks only read them.
  std::vector<const WeightPlanes*> row_planes(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    row_planes[r] = &planes_for(weights.subspan(r * row_stride, a.size()));
  }

  // Noise streams are named by a monotonic row counter, never by thread:
  // batch row r draws from stream (noise_seed, base + r), so serial and
  // parallel evaluation produce bit-identical results.
  const std::uint64_t noise_base = next_noise_row_;
  next_noise_row_ += rows;

  std::vector<std::int64_t> errors(rows, 0);
  sfc::exec::parallel_for(opts_.exec, rows, [&](std::size_t r) {
    std::int64_t err = 0;
    if (opts_.with_variation_noise) {
      sfc::util::Rng rng =
          sfc::exec::stream_rng(opts_.noise_seed, noise_base + r);
      out[r] = row_result(*row_planes[r], &rng, &err);
    } else {
      out[r] = row_result(*row_planes[r], nullptr, &err);
    }
    errors[r] = err;
  });

  for (std::size_t r = 0; r < rows; ++r) row_errors_ += errors[r];
  row_ops_ += static_cast<std::int64_t>(rows) * act_bits_ * weight_mag_bits_ *
              2 * static_cast<std::int64_t>((a.size() + 7) / 8);
}

}  // namespace sfc::nn
