#include "nn/vgg.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace sfc::nn {

VggConfig VggConfig::paper() { return VggConfig{}; }

VggConfig VggConfig::reduced(double width_factor) {
  VggConfig cfg;
  for (int& c : cfg.conv_channels) {
    c = std::max(4, static_cast<int>(c * width_factor));
  }
  cfg.fc_hidden = std::max(32, static_cast<int>(cfg.fc_hidden * width_factor));
  return cfg;
}

Sequential build_vgg(const VggConfig& cfg) {
  assert(cfg.conv_channels.size() == 7);
  sfc::util::Rng rng(cfg.init_seed);
  Sequential net;
  const auto& ch = cfg.conv_channels;

  auto norm = [&](int channels) {
    if (cfg.with_norm) net.add<InstanceNorm2d>(channels);
  };

  // Block 1: conv1(dropout 0.3) conv2, pool.
  net.add<Conv2d>(3, ch[0], 3, true, rng);
  norm(ch[0]);
  net.add<Relu>();
  if (cfg.with_dropout) net.add<Dropout>(0.3);
  net.add<Conv2d>(ch[0], ch[1], 3, true, rng);
  norm(ch[1]);
  net.add<Relu>();
  net.add<MaxPool2d>(2);

  // Block 2: conv3(dropout 0.4) conv4, pool.
  net.add<Conv2d>(ch[1], ch[2], 3, true, rng);
  norm(ch[2]);
  net.add<Relu>();
  if (cfg.with_dropout) net.add<Dropout>(0.4);
  net.add<Conv2d>(ch[2], ch[3], 3, true, rng);
  norm(ch[3]);
  net.add<Relu>();
  net.add<MaxPool2d>(2);

  // Block 3: conv5(0.4) conv6(0.4) conv7, pool.
  net.add<Conv2d>(ch[3], ch[4], 3, true, rng);
  norm(ch[4]);
  net.add<Relu>();
  if (cfg.with_dropout) net.add<Dropout>(0.4);
  net.add<Conv2d>(ch[4], ch[5], 3, true, rng);
  norm(ch[5]);
  net.add<Relu>();
  if (cfg.with_dropout) net.add<Dropout>(0.4);
  net.add<Conv2d>(ch[5], ch[6], 3, true, rng);
  norm(ch[6]);
  net.add<Relu>();
  net.add<MaxPool2d>(2);

  // Head: flatten(4*4*ch6) -> FC1 -> FC2 -> FC3.
  const int flat = 4 * 4 * ch[6];
  net.add<Flatten>();
  net.add<Dense>(flat, cfg.fc_hidden, rng);
  net.add<Relu>();
  if (cfg.with_dropout) net.add<Dropout>(0.5);
  net.add<Dense>(cfg.fc_hidden, cfg.fc_hidden, rng);
  net.add<Relu>();
  if (cfg.with_dropout) net.add<Dropout>(0.5);
  net.add<Dense>(cfg.fc_hidden, cfg.num_classes, rng);
  return net;
}

std::vector<VggTableRow> vgg_table(const VggConfig& cfg) {
  std::vector<VggTableRow> rows;
  char buf[64];
  const auto& ch = cfg.conv_channels;
  auto map3 = [&buf](int s, int c) {
    std::snprintf(buf, sizeof(buf), "%dx%dx%d", s, s, c);
    return std::string(buf);
  };
  auto conv_name = [&buf](int n, int idx) {
    std::snprintf(buf, sizeof(buf), "%d 3x3 Conv%d", n, idx);
    return std::string(buf);
  };

  int size = 32;
  int in_ch = 3;
  const double drops[7] = {0.3, 0.0, 0.4, 0.0, 0.4, 0.4, 0.0};
  int conv_idx = 1;
  int pool_idx = 1;
  for (int block = 0; block < 3; ++block) {
    const int convs = block == 2 ? 3 : 2;
    for (int k = 0; k < convs; ++k, ++conv_idx) {
      const int out_ch = ch[static_cast<std::size_t>(conv_idx - 1)];
      VggTableRow row;
      row.layer = conv_name(out_ch, conv_idx);
      row.input_map = map3(size, in_ch);
      row.output_map = map3(size, out_ch);
      const double drop = drops[conv_idx - 1];
      row.nonlinearity = (cfg.with_dropout && drop > 0.0)
                             ? ("ReLU,dropout(" + std::to_string(drop).substr(0, 3) + ")")
                             : "ReLU";
      rows.push_back(row);
      in_ch = out_ch;
    }
    VggTableRow pool;
    std::snprintf(buf, sizeof(buf), "[2,2] MaxPool%d", pool_idx++);
    pool.layer = buf;
    pool.input_map = map3(size, in_ch);
    size /= 2;
    pool.output_map = map3(size, in_ch);
    pool.nonlinearity = "-";
    rows.push_back(pool);
  }

  const int flat = size * size * in_ch;
  auto fc_row = [&](const std::string& name, int in, int out,
                    const std::string& nl) {
    VggTableRow row;
    row.layer = name;
    std::snprintf(buf, sizeof(buf), "1x1x%d", in);
    row.input_map = buf;
    std::snprintf(buf, sizeof(buf), "1x1x%d", out);
    row.output_map = buf;
    row.nonlinearity = nl;
    rows.push_back(row);
  };
  std::snprintf(buf, sizeof(buf), "%dx%d FC1", flat, cfg.fc_hidden);
  fc_row(buf, flat, cfg.fc_hidden,
         cfg.with_dropout ? "ReLU,dropout(0.5)" : "ReLU");
  std::snprintf(buf, sizeof(buf), "%dx%d FC2", cfg.fc_hidden, cfg.fc_hidden);
  fc_row(buf, cfg.fc_hidden, cfg.fc_hidden,
         cfg.with_dropout ? "ReLU,dropout(0.5)" : "ReLU");
  std::snprintf(buf, sizeof(buf), "%dx%d FC3", cfg.fc_hidden, cfg.num_classes);
  fc_row(buf, cfg.fc_hidden, cfg.num_classes, "-");
  return rows;
}

}  // namespace sfc::nn
