#include "nn/trainer.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace sfc::nn {

Tensor to_tensor(const sfc::data::Image& img) {
  Tensor t({sfc::data::Image::kChannels, sfc::data::Image::kSize,
            sfc::data::Image::kSize});
  for (std::size_t i = 0; i < img.pixels.size(); ++i) t[i] = img.pixels[i];
  return t;
}

Trainer::Trainer(Sequential& model, TrainConfig cfg)
    : model_(model), cfg_(cfg), rng_(cfg.seed) {
  for (Tensor* p : model_.parameters()) {
    velocity_.emplace_back(p->size(), 0.0f);
    second_moment_.emplace_back(p->size(), 0.0f);
  }
}

void Trainer::adam_step(double lr) {
  ++adam_t_;
  const auto params = model_.parameters();
  const auto grads = model_.gradients();
  assert(params.size() == grads.size());
  const double b1 = cfg_.adam_beta1;
  const double b2 = cfg_.adam_beta2;
  const double correction1 = 1.0 - std::pow(b1, static_cast<double>(adam_t_));
  const double correction2 = 1.0 - std::pow(b2, static_cast<double>(adam_t_));
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    Tensor& g = *grads[pi];
    std::vector<float>& m = velocity_[pi];
    std::vector<float>& v = second_moment_[pi];
    for (std::size_t i = 0; i < p.size(); ++i) {
      const double grad =
          static_cast<double>(g[i]) + cfg_.weight_decay * p[i];
      m[i] = static_cast<float>(b1 * m[i] + (1.0 - b1) * grad);
      v[i] = static_cast<float>(b2 * v[i] + (1.0 - b2) * grad * grad);
      const double m_hat = m[i] / correction1;
      const double v_hat = v[i] / correction2;
      p[i] -= static_cast<float>(lr * m_hat /
                                 (std::sqrt(v_hat) + cfg_.adam_epsilon));
    }
  }
}

void Trainer::sgd_step(double lr) {
  const auto params = model_.parameters();
  const auto grads = model_.gradients();
  assert(params.size() == grads.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Tensor& p = *params[pi];
    Tensor& g = *grads[pi];
    std::vector<float>& v = velocity_[pi];
    for (std::size_t i = 0; i < p.size(); ++i) {
      const float grad =
          g[i] + static_cast<float>(cfg_.weight_decay) * p[i];
      v[i] = static_cast<float>(cfg_.momentum) * v[i] -
             static_cast<float>(lr) * grad;
      p[i] += v[i];
    }
  }
}

std::vector<EpochStats> Trainer::fit(
    const sfc::data::Dataset& train,
    const std::function<void(const EpochStats&)>& on_epoch) {
  std::vector<EpochStats> history;
  double lr = cfg_.learning_rate;
  LayerContext ctx;
  ctx.training = true;
  ctx.rng = &rng_;

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    const auto order = rng_.permutation(train.images.size());
    double loss_sum = 0.0;
    std::size_t correct = 0;
    std::size_t in_batch = 0;

    model_.zero_gradients();
    for (std::size_t oi = 0; oi < order.size(); ++oi) {
      const auto& img = train.images[order[oi]];
      const Tensor x = to_tensor(img);
      const Tensor logits = model_.forward(x, ctx);
      Tensor grad;
      loss_sum += softmax_cross_entropy(logits, img.label, &grad);
      if (argmax(logits) == img.label) ++correct;
      model_.backward(grad);
      ++in_batch;

      if (in_batch == static_cast<std::size_t>(cfg_.batch_size) ||
          oi + 1 == order.size()) {
        // Average the accumulated gradients over the batch.
        for (Tensor* g : model_.gradients()) {
          const float inv = 1.0f / static_cast<float>(in_batch);
          for (std::size_t i = 0; i < g->size(); ++i) (*g)[i] *= inv;
        }
        if (cfg_.optimizer == Optimizer::kAdam) {
          adam_step(lr);
        } else {
          sgd_step(lr);
        }
        model_.zero_gradients();
        in_batch = 0;
      }
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.mean_loss = loss_sum / static_cast<double>(train.images.size());
    stats.train_accuracy =
        static_cast<double>(correct) / static_cast<double>(train.images.size());
    history.push_back(stats);
    if (cfg_.verbose) {
      std::printf("epoch %2d  loss %.4f  train-acc %.3f\n", epoch,
                  stats.mean_loss, stats.train_accuracy);
      std::fflush(stdout);
    }
    if (on_epoch) on_epoch(stats);
    lr *= cfg_.lr_decay;
  }
  return history;
}

double Trainer::evaluate(Sequential& model, const sfc::data::Dataset& test) {
  LayerContext ctx;  // inference mode
  std::size_t correct = 0;
  for (const auto& img : test.images) {
    const Tensor logits = model.forward(to_tensor(img), ctx);
    if (argmax(logits) == img.label) ++correct;
  }
  return test.images.empty()
             ? 0.0
             : static_cast<double>(correct) /
                   static_cast<double>(test.images.size());
}

}  // namespace sfc::nn
