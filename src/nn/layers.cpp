#include "nn/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sfc::nn {

void Layer::zero_gradients() {
  for (Tensor* g : gradients()) g->fill(0.0f);
}

// ------------------------------------------------------------------ Conv2d

Conv2d::Conv2d(int in_channels, int out_channels, int kernel,
               bool same_padding, sfc::util::Rng& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(same_padding ? kernel / 2 : 0),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  // He-normal: std = sqrt(2 / fan_in).
  const double std_dev =
      std::sqrt(2.0 / (static_cast<double>(in_channels) * kernel * kernel));
  for (std::size_t i = 0; i < weight_.size(); ++i) {
    weight_[i] = static_cast<float>(rng.normal(0.0, std_dev));
  }
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_channels_) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(kernel_) +
         ")";
}

std::vector<int> Conv2d::output_shape(const std::vector<int>& in) const {
  assert(in.size() == 3 && in[0] == in_channels_);
  const int h = in[1] + 2 * padding_ - kernel_ + 1;
  const int w = in[2] + 2 * padding_ - kernel_ + 1;
  return {out_channels_, h, w};
}

Tensor Conv2d::forward(const Tensor& input, const LayerContext& /*ctx*/) {
  assert(input.shape().size() == 3 && input.dim(0) == in_channels_);
  cached_input_ = input;
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  const int out_h = in_h + 2 * padding_ - kernel_ + 1;
  const int out_w = in_w + 2 * padding_ - kernel_ + 1;
  Tensor out({out_channels_, out_h, out_w});

  for (int oc = 0; oc < out_channels_; ++oc) {
    const float b = bias_[static_cast<std::size_t>(oc)];
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        out.at(oc, oy, ox) = b;
      }
    }
    for (int ic = 0; ic < in_channels_; ++ic) {
      for (int ky = 0; ky < kernel_; ++ky) {
        for (int kx = 0; kx < kernel_; ++kx) {
          const float w = weight_[static_cast<std::size_t>(
              ((oc * in_channels_ + ic) * kernel_ + ky) * kernel_ + kx)];
          if (w == 0.0f) continue;
          // Valid input range for this kernel tap.
          const int y_lo = std::max(0, padding_ - ky);
          const int y_hi = std::min(out_h, in_h + padding_ - ky);
          const int x_lo = std::max(0, padding_ - kx);
          const int x_hi = std::min(out_w, in_w + padding_ - kx);
          for (int oy = y_lo; oy < y_hi; ++oy) {
            const int iy = oy + ky - padding_;
            for (int ox = x_lo; ox < x_hi; ++ox) {
              const int ix = ox + kx - padding_;
              out.at(oc, oy, ox) += w * input.at(ic, iy, ix);
            }
          }
        }
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const Tensor& input = cached_input_;
  const int in_h = input.dim(1);
  const int in_w = input.dim(2);
  const int out_h = grad_output.dim(1);
  const int out_w = grad_output.dim(2);
  Tensor grad_in({in_channels_, in_h, in_w});

  for (int oc = 0; oc < out_channels_; ++oc) {
    // Bias gradient.
    float gb = 0.0f;
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox) {
        gb += grad_output.at(oc, oy, ox);
      }
    }
    grad_bias_[static_cast<std::size_t>(oc)] += gb;

    for (int ic = 0; ic < in_channels_; ++ic) {
      for (int ky = 0; ky < kernel_; ++ky) {
        for (int kx = 0; kx < kernel_; ++kx) {
          const std::size_t widx = static_cast<std::size_t>(
              ((oc * in_channels_ + ic) * kernel_ + ky) * kernel_ + kx);
          const float w = weight_[widx];
          float gw = 0.0f;
          const int y_lo = std::max(0, padding_ - ky);
          const int y_hi = std::min(out_h, in_h + padding_ - ky);
          const int x_lo = std::max(0, padding_ - kx);
          const int x_hi = std::min(out_w, in_w + padding_ - kx);
          for (int oy = y_lo; oy < y_hi; ++oy) {
            const int iy = oy + ky - padding_;
            for (int ox = x_lo; ox < x_hi; ++ox) {
              const int ix = ox + kx - padding_;
              const float go = grad_output.at(oc, oy, ox);
              gw += go * input.at(ic, iy, ix);
              grad_in.at(ic, iy, ix) += go * w;
            }
          }
          grad_weight_[widx] += gw;
        }
      }
    }
  }
  return grad_in;
}

// --------------------------------------------------------------- MaxPool2d

MaxPool2d::MaxPool2d(int window) : window_(window) { assert(window >= 2); }

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(window_) + "x" +
         std::to_string(window_) + ")";
}

std::vector<int> MaxPool2d::output_shape(const std::vector<int>& in) const {
  assert(in.size() == 3);
  return {in[0], in[1] / window_, in[2] / window_};
}

Tensor MaxPool2d::forward(const Tensor& input, const LayerContext& /*ctx*/) {
  in_shape_ = input.shape();
  const int channels = input.dim(0);
  const int out_h = input.dim(1) / window_;
  const int out_w = input.dim(2) / window_;
  Tensor out({channels, out_h, out_w});
  argmax_.assign(out.size(), 0);

  std::size_t oi = 0;
  for (int c = 0; c < channels; ++c) {
    for (int oy = 0; oy < out_h; ++oy) {
      for (int ox = 0; ox < out_w; ++ox, ++oi) {
        float best = -1e30f;
        std::size_t best_idx = 0;
        for (int dy = 0; dy < window_; ++dy) {
          for (int dx = 0; dx < window_; ++dx) {
            const int iy = oy * window_ + dy;
            const int ix = ox * window_ + dx;
            const float v = input.at(c, iy, ix);
            if (v > best) {
              best = v;
              best_idx =
                  (static_cast<std::size_t>(c) * static_cast<std::size_t>(input.dim(1)) +
                   static_cast<std::size_t>(iy)) *
                      static_cast<std::size_t>(input.dim(2)) +
                  static_cast<std::size_t>(ix);
            }
          }
        }
        out[oi] = best;
        argmax_[oi] = best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  Tensor grad_in(in_shape_);
  for (std::size_t oi = 0; oi < grad_output.size(); ++oi) {
    grad_in[argmax_[oi]] += grad_output[oi];
  }
  return grad_in;
}

// ------------------------------------------------------------------- Dense

Dense::Dense(int in_features, int out_features, sfc::util::Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  const double std_dev = std::sqrt(2.0 / static_cast<double>(in_features));
  for (std::size_t i = 0; i < weight_.size(); ++i) {
    weight_[i] = static_cast<float>(rng.normal(0.0, std_dev));
  }
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_features_) + "->" +
         std::to_string(out_features_) + ")";
}

std::vector<int> Dense::output_shape(const std::vector<int>& in) const {
  assert(static_cast<int>(Tensor::count(in)) == in_features_);
  (void)in;
  return {out_features_};
}

Tensor Dense::forward(const Tensor& input, const LayerContext& /*ctx*/) {
  assert(static_cast<int>(input.size()) == in_features_);
  cached_input_ = input;
  Tensor out({out_features_});
  const float* x = input.data();
  for (int o = 0; o < out_features_; ++o) {
    const float* w = weight_.data() +
                     static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features_);
    float acc = bias_[static_cast<std::size_t>(o)];
    for (int i = 0; i < in_features_; ++i) acc += w[i] * x[i];
    out[static_cast<std::size_t>(o)] = acc;
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_output) {
  assert(static_cast<int>(grad_output.size()) == out_features_);
  Tensor grad_in({in_features_});
  const float* x = cached_input_.data();
  for (int o = 0; o < out_features_; ++o) {
    const float go = grad_output[static_cast<std::size_t>(o)];
    grad_bias_[static_cast<std::size_t>(o)] += go;
    float* gw = grad_weight_.data() +
                static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features_);
    const float* w = weight_.data() +
                     static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features_);
    for (int i = 0; i < in_features_; ++i) {
      gw[i] += go * x[i];
      grad_in[static_cast<std::size_t>(i)] += go * w[i];
    }
  }
  return grad_in;
}

// -------------------------------------------------------------------- Relu

Tensor Relu::forward(const Tensor& input, const LayerContext& /*ctx*/) {
  cached_input_ = input;
  Tensor out = input;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i] < 0.0f) out[i] = 0.0f;
  }
  return out;
}

Tensor Relu::backward(const Tensor& grad_output) {
  Tensor grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (cached_input_[i] <= 0.0f) grad_in[i] = 0.0f;
  }
  return grad_in;
}

// ----------------------------------------------------------------- Dropout

Dropout::Dropout(double rate) : rate_(rate) {
  assert(rate >= 0.0 && rate < 1.0);
}

std::string Dropout::name() const {
  return "Dropout(" + std::to_string(rate_) + ")";
}

Tensor Dropout::forward(const Tensor& input, const LayerContext& ctx) {
  if (!ctx.training || rate_ == 0.0) {
    mask_.clear();
    return input;
  }
  assert(ctx.rng != nullptr && "training dropout needs an RNG");
  const float keep = static_cast<float>(1.0 - rate_);
  mask_.assign(input.size(), 0.0f);
  Tensor out = input;
  for (std::size_t i = 0; i < input.size(); ++i) {
    if (ctx.rng->uniform() < keep) {
      mask_[i] = 1.0f / keep;  // inverted dropout keeps expectation
      out[i] *= mask_[i];
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  Tensor grad_in = grad_output;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

// ---------------------------------------------------------- InstanceNorm2d

InstanceNorm2d::InstanceNorm2d(int channels, double epsilon)
    : channels_(channels),
      epsilon_(epsilon),
      gamma_({channels}),
      beta_({channels}),
      grad_gamma_({channels}),
      grad_beta_({channels}) {
  gamma_.fill(1.0f);
}

std::string InstanceNorm2d::name() const {
  return "InstanceNorm2d(" + std::to_string(channels_) + ")";
}

Tensor InstanceNorm2d::forward(const Tensor& input,
                               const LayerContext& /*ctx*/) {
  assert(input.shape().size() == 3 && input.dim(0) == channels_);
  const int hw = input.dim(1) * input.dim(2);
  Tensor out = input;
  cached_xhat_ = Tensor(input.shape());
  inv_std_.assign(static_cast<std::size_t>(channels_), 0.0);

  for (int c = 0; c < channels_; ++c) {
    const std::size_t base =
        static_cast<std::size_t>(c) * static_cast<std::size_t>(hw);
    double mean = 0.0;
    for (int i = 0; i < hw; ++i) mean += input[base + static_cast<std::size_t>(i)];
    mean /= hw;
    double var = 0.0;
    for (int i = 0; i < hw; ++i) {
      const double d = input[base + static_cast<std::size_t>(i)] - mean;
      var += d * d;
    }
    var /= hw;
    const double inv_std = 1.0 / std::sqrt(var + epsilon_);
    inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_[static_cast<std::size_t>(c)];
    const float b = beta_[static_cast<std::size_t>(c)];
    for (int i = 0; i < hw; ++i) {
      const auto xhat = static_cast<float>(
          (input[base + static_cast<std::size_t>(i)] - mean) * inv_std);
      cached_xhat_[base + static_cast<std::size_t>(i)] = xhat;
      out[base + static_cast<std::size_t>(i)] = g * xhat + b;
    }
  }
  return out;
}

Tensor InstanceNorm2d::backward(const Tensor& grad_output) {
  const auto& shape = cached_xhat_.shape();
  const int hw = shape[1] * shape[2];
  Tensor grad_in(shape);

  for (int c = 0; c < channels_; ++c) {
    const std::size_t base =
        static_cast<std::size_t>(c) * static_cast<std::size_t>(hw);
    const double g = gamma_[static_cast<std::size_t>(c)];
    const double inv_std = inv_std_[static_cast<std::size_t>(c)];

    double sum_g = 0.0;    // sum of upstream grads
    double sum_gx = 0.0;   // sum of grad * xhat
    for (int i = 0; i < hw; ++i) {
      const double go = grad_output[base + static_cast<std::size_t>(i)];
      const double xh = cached_xhat_[base + static_cast<std::size_t>(i)];
      sum_g += go;
      sum_gx += go * xh;
    }
    grad_beta_[static_cast<std::size_t>(c)] += static_cast<float>(sum_g);
    grad_gamma_[static_cast<std::size_t>(c)] += static_cast<float>(sum_gx);

    const double mean_g = sum_g / hw;
    const double mean_gx = sum_gx / hw;
    for (int i = 0; i < hw; ++i) {
      const double go = grad_output[base + static_cast<std::size_t>(i)];
      const double xh = cached_xhat_[base + static_cast<std::size_t>(i)];
      grad_in[base + static_cast<std::size_t>(i)] =
          static_cast<float>(g * inv_std * (go - mean_g - xh * mean_gx));
    }
  }
  return grad_in;
}

// ----------------------------------------------------------------- Flatten

std::vector<int> Flatten::output_shape(const std::vector<int>& in) const {
  return {static_cast<int>(Tensor::count(in))};
}

Tensor Flatten::forward(const Tensor& input, const LayerContext& /*ctx*/) {
  in_shape_ = input.shape();
  return input.reshaped({static_cast<int>(input.size())});
}

Tensor Flatten::backward(const Tensor& grad_output) {
  return grad_output.reshaped(in_shape_);
}

}  // namespace sfc::nn
