// NN layers with forward + backward passes (single-sample CHW tensors).
// Implements exactly what the paper's Table I network needs: 3x3 same-pad
// convolution, 2x2 max-pooling, dense, ReLU, dropout; plus flatten and the
// softmax/cross-entropy head in loss.hpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace sfc::nn {

struct LayerContext {
  bool training = false;
  sfc::util::Rng* rng = nullptr;  ///< required when training dropout layers
};

class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  virtual Tensor forward(const Tensor& input, const LayerContext& ctx) = 0;
  /// Gradient w.r.t. the input; accumulates parameter gradients internally.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  virtual std::vector<Tensor*> parameters() { return {}; }
  virtual std::vector<Tensor*> gradients() { return {}; }
  virtual void zero_gradients();

  virtual std::string name() const = 0;
  /// Output shape given an input shape (for model summaries).
  virtual std::vector<int> output_shape(const std::vector<int>& in) const = 0;
};

/// 3x3 (or kxk) same/valid convolution, stride 1.
class Conv2d final : public Layer {
 public:
  /// He-normal initialization from `rng`.
  Conv2d(int in_channels, int out_channels, int kernel, bool same_padding,
         sfc::util::Rng& rng);

  Tensor forward(const Tensor& input, const LayerContext& ctx) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weight_, &grad_bias_}; }
  std::string name() const override;
  std::vector<int> output_shape(const std::vector<int>& in) const override;

  int in_channels() const { return in_channels_; }
  int out_channels() const { return out_channels_; }
  int kernel() const { return kernel_; }
  int padding() const { return padding_; }
  const Tensor& weight() const { return weight_; }  ///< [out][in][k][k]
  const Tensor& bias() const { return bias_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  int in_channels_, out_channels_, kernel_, padding_;
  Tensor weight_, bias_, grad_weight_, grad_bias_;
  Tensor cached_input_;
};

/// 2x2 max pooling, stride 2.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(int window = 2);

  Tensor forward(const Tensor& input, const LayerContext& ctx) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;
  std::vector<int> output_shape(const std::vector<int>& in) const override;

 private:
  int window_;
  std::vector<int> in_shape_;
  std::vector<std::size_t> argmax_;  ///< winning input index per output
};

/// Fully connected layer on a flat vector.
class Dense final : public Layer {
 public:
  Dense(int in_features, int out_features, sfc::util::Rng& rng);

  Tensor forward(const Tensor& input, const LayerContext& ctx) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> gradients() override { return {&grad_weight_, &grad_bias_}; }
  std::string name() const override;
  std::vector<int> output_shape(const std::vector<int>& in) const override;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }
  const Tensor& weight() const { return weight_; }  ///< [out][in]
  const Tensor& bias() const { return bias_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  int in_features_, out_features_;
  Tensor weight_, bias_, grad_weight_, grad_bias_;
  Tensor cached_input_;
};

class Relu final : public Layer {
 public:
  Tensor forward(const Tensor& input, const LayerContext& ctx) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  std::vector<int> output_shape(const std::vector<int>& in) const override {
    return in;
  }

 private:
  Tensor cached_input_;
};

/// Inverted dropout: active only in training mode.
class Dropout final : public Layer {
 public:
  explicit Dropout(double rate);

  Tensor forward(const Tensor& input, const LayerContext& ctx) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;
  std::vector<int> output_shape(const std::vector<int>& in) const override {
    return in;
  }
  double rate() const { return rate_; }

 private:
  double rate_;
  std::vector<float> mask_;
};

/// Per-channel instance normalization with learnable scale/shift:
/// y = gamma * (x - mean_HW) / sqrt(var_HW + eps) + beta.
/// The per-sample statistics make it compatible with this library's
/// single-sample training loop (unlike batch norm), while providing the
/// same conditioning benefit for deep plain conv stacks.
class InstanceNorm2d final : public Layer {
 public:
  explicit InstanceNorm2d(int channels, double epsilon = 1e-5);

  Tensor forward(const Tensor& input, const LayerContext& ctx) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<Tensor*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> gradients() override {
    return {&grad_gamma_, &grad_beta_};
  }
  std::string name() const override;
  std::vector<int> output_shape(const std::vector<int>& in) const override {
    return in;
  }

 private:
  int channels_;
  double epsilon_;
  Tensor gamma_, beta_, grad_gamma_, grad_beta_;
  Tensor cached_xhat_;          ///< normalized input
  std::vector<double> inv_std_; ///< per channel
};

/// CHW -> flat vector.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& input, const LayerContext& ctx) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }
  std::vector<int> output_shape(const std::vector<int>& in) const override;

 private:
  std::vector<int> in_shape_;
};

}  // namespace sfc::nn
