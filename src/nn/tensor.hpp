// Minimal dense float tensor (CHW / row-major) used by the NN substrate.
#pragma once

#include <cassert>
#include <cstddef>
#include <numeric>
#include <string>
#include <vector>

namespace sfc::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape) : shape_(std::move(shape)) {
    data_.assign(count(shape_), 0.0f);
  }
  Tensor(std::vector<int> shape, std::vector<float> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    assert(data_.size() == count(shape_));
  }

  static Tensor zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }

  static std::size_t count(const std::vector<int>& shape) {
    std::size_t n = 1;
    for (int d : shape) {
      assert(d > 0);
      n *= static_cast<std::size_t>(d);
    }
    return n;
  }

  const std::vector<int>& shape() const { return shape_; }
  int dim(std::size_t i) const { return shape_.at(i); }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// 3-D access (channels, height, width).
  float& at(int c, int y, int x) {
    return data_[flat3(c, y, x)];
  }
  float at(int c, int y, int x) const {
    return data_[flat3(c, y, x)];
  }

  /// Reinterpret with a new shape of identical element count.
  Tensor reshaped(std::vector<int> new_shape) const {
    assert(count(new_shape) == size());
    return Tensor(std::move(new_shape), data_);
  }

  void fill(float v) {
    for (float& x : data_) x = v;
  }

  std::string shape_string() const {
    std::string s = "[";
    for (std::size_t i = 0; i < shape_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(shape_[i]);
    }
    return s + "]";
  }

 private:
  std::size_t flat3(int c, int y, int x) const {
    assert(shape_.size() == 3);
    assert(c >= 0 && c < shape_[0] && y >= 0 && y < shape_[1] && x >= 0 &&
           x < shape_[2]);
    return (static_cast<std::size_t>(c) * static_cast<std::size_t>(shape_[1]) +
            static_cast<std::size_t>(y)) *
               static_cast<std::size_t>(shape_[2]) +
           static_cast<std::size_t>(x);
  }

  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace sfc::nn
