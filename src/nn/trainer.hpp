// SGD-with-momentum trainer over the SynthCIFAR dataset.
#pragma once

#include <functional>

#include "data/synth_cifar.hpp"
#include "nn/model.hpp"

namespace sfc::nn {

enum class Optimizer {
  kSgdMomentum,
  kAdam,  ///< needed to train the deep (7-conv) plain VGG stack
};

struct TrainConfig {
  int epochs = 10;
  int batch_size = 16;
  Optimizer optimizer = Optimizer::kSgdMomentum;
  double learning_rate = 0.02;  ///< use ~1e-3 with Adam
  double momentum = 0.9;
  double adam_beta1 = 0.9;
  double adam_beta2 = 0.999;
  double adam_epsilon = 1e-8;
  double weight_decay = 1e-4;
  double lr_decay = 0.85;       ///< multiplicative per-epoch decay
  std::uint64_t seed = 1234;
  bool verbose = false;
};

struct EpochStats {
  int epoch = 0;
  double mean_loss = 0.0;
  double train_accuracy = 0.0;
};

/// Image -> input tensor (CHW float in [0,1]).
Tensor to_tensor(const sfc::data::Image& img);

class Trainer {
 public:
  Trainer(Sequential& model, TrainConfig cfg);

  /// Train over the dataset; invokes `on_epoch` (if set) after each epoch.
  std::vector<EpochStats> fit(
      const sfc::data::Dataset& train,
      const std::function<void(const EpochStats&)>& on_epoch = {});

  /// Classification accuracy on a dataset (inference mode).
  static double evaluate(Sequential& model, const sfc::data::Dataset& test);

 private:
  void sgd_step(double lr);
  void adam_step(double lr);

  Sequential& model_;
  TrainConfig cfg_;
  sfc::util::Rng rng_;
  std::vector<std::vector<float>> velocity_;  ///< SGD momentum / Adam m
  std::vector<std::vector<float>> second_moment_;  ///< Adam v
  long adam_t_ = 0;
};

}  // namespace sfc::nn
