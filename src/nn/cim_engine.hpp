// Bit-serial CiM dot-product engine.
//
// Maps an 8-bit (activation) x 8-bit (weight) integer dot product onto the
// binary 8-cells-per-row MAC primitive the array provides, exactly the
// "8-bit wordlength" scheme of the 1FeFET-1R paper [17] that our design
// inherits:
//   * weights are split into positive / negative magnitudes (7 bits each),
//   * activations into 8 bit-planes,
//   * each (activation-plane, weight-plane) pair is a binary dot product,
//     evaluated 8 elements at a time by a CiM row; the digital MAC counts
//     are shift-added with weight 2^(p+q) and pos/neg sign.
//
// The row primitive itself is the calibrated BehavioralArrayModel, so
// temperature drift and (optional) process-variation noise corrupt the MAC
// counts exactly as the analog array would.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "cim/behavioral.hpp"
#include "exec/parallel.hpp"
#include "nn/quantize.hpp"

namespace sfc::nn {

class CimDotEngine final : public DotEngine {
 public:
  struct Options {
    double temperature_c = 27.0;
    /// Draw Gaussian noise from the model's per-level sigma each row op.
    bool with_variation_noise = false;
    std::uint64_t noise_seed = 99;
    /// Wordlength (must match the QuantizeOptions the network was built
    /// with): unsigned activation bits and signed weight bits incl. sign.
    int activation_bits = 8;
    int weight_bits = 8;
    /// Fan-out of dot_batch row evaluation (default: serial). Noise draws
    /// come from counter-based per-row streams, so any thread count yields
    /// bit-identical results for the same call sequence.
    sfc::exec::ExecPolicy exec;
  };

  CimDotEngine(const sfc::cim::BehavioralArrayModel& model, Options opts);

  std::int64_t dot(std::span<const std::uint8_t> a,
                   std::span<const std::int8_t> w) override;
  void dot_batch(std::span<const std::uint8_t> a,
                 std::span<const std::int8_t> weights, std::size_t row_stride,
                 std::size_t rows, std::int64_t* out) override;
  void begin_layer(int layer_index) override;

  /// Number of 8-cell row operations issued so far (energy accounting).
  std::int64_t row_ops() const { return row_ops_; }
  /// Row ops where the decoded MAC differed from the true count.
  std::int64_t row_errors() const { return row_errors_; }
  void reset_counters() {
    row_ops_ = 0;
    row_errors_ = 0;
  }

  double temperature_c() const { return opts_.temperature_c; }

 private:
  struct WeightPlanes {
    std::size_t length = 0;           ///< element count
    std::uint64_t fingerprint = 0;    ///< sampled content hash (staleness)
    std::size_t words = 0;            ///< packed 64-bit words per plane
    std::vector<std::uint64_t> pos;   ///< per magnitude bit x words
    std::vector<std::uint64_t> neg;
  };

  const WeightPlanes& planes_for(std::span<const std::int8_t> w);
  void pack_activations(std::span<const std::uint8_t> a);
  /// One binary dot product; `rng` non-null draws per-group noise, and
  /// decode misses are tallied into *errors. Const + reentrant so batched
  /// rows can run concurrently.
  std::int64_t binary_dot(const std::uint64_t* a_plane,
                          const std::uint64_t* w_plane, std::size_t words,
                          sfc::util::Rng* rng, std::int64_t* errors) const;
  /// Full shift-add over all (activation, weight) plane pairs of one row
  /// against the currently packed activations.
  std::int64_t row_result(const WeightPlanes& wp, sfc::util::Rng* rng,
                          std::int64_t* errors) const;

  const sfc::cim::BehavioralArrayModel& model_;
  Options opts_;
  /// Monotonic counter naming the noise stream of each dot-product row:
  /// row i of the engine's lifetime draws from stream (noise_seed, i),
  /// independent of which thread evaluates it.
  std::uint64_t next_noise_row_ = 0;
  std::int64_t row_ops_ = 0;
  std::int64_t row_errors_ = 0;

  /// Digital MAC result per true count 0..8 at the engine temperature
  /// (exactly the decoded LUT when noise is off).
  int decoded_[9] = {0};
  bool any_miscount_ = false;  ///< fast path: all counts decode exactly

  int act_bits_ = 8;
  int weight_mag_bits_ = 7;

  /// Weight plane cache keyed by weight data pointer. Assumes weight
  /// storage is stable for the engine's lifetime (true for
  /// QuantizedNetwork, whose rows live in the QuantOp vectors).
  std::unordered_map<const void*, WeightPlanes> plane_cache_;
  /// Scratch activation planes.
  std::vector<std::uint64_t> a_planes_;
  std::size_t a_words_ = 0;
};

}  // namespace sfc::nn
