// Int8 post-training quantization and a quantized inference network whose
// every dot product is routed through a pluggable DotEngine - either an
// exact digital reference or the bit-serial CiM engine (cim_engine.hpp).
//
// Scheme (standard affine/symmetric):
//   activations: uint8, scale = max_act / 255 (per layer, calibrated)
//   weights:     int8 symmetric, scale = max|w| / 127 (per layer)
//   y = (sum a_q * w_q) * s_a * s_w + bias
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "data/synth_cifar.hpp"
#include "nn/model.hpp"

namespace sfc::nn {

/// Integer dot-product backend. `a` are unsigned activations (0..255),
/// `w` signed weights (-127..127), equal lengths.
class DotEngine {
 public:
  virtual ~DotEngine() = default;
  virtual std::int64_t dot(std::span<const std::uint8_t> a,
                           std::span<const std::int8_t> w) = 0;
  /// Evaluate `rows` dot products that share one activation vector: row r
  /// uses weights[r * row_stride .. r * row_stride + a.size()). Writes one
  /// result per row into `out`. This is the layer-level hot loop (all
  /// output channels of a conv pixel / all neurons of a dense layer), so
  /// engines may parallelize it; the default is a serial dot() loop.
  virtual void dot_batch(std::span<const std::uint8_t> a,
                         std::span<const std::int8_t> weights,
                         std::size_t row_stride, std::size_t rows,
                         std::int64_t* out);
  /// Called once per layer so engines can cache weight bit-planes.
  virtual void begin_layer(int layer_index) { (void)layer_index; }
};

/// Exact integer reference (the "digital 8-bit" baseline).
class IdealDotEngine final : public DotEngine {
 public:
  std::int64_t dot(std::span<const std::uint8_t> a,
                   std::span<const std::int8_t> w) override;
};

/// One quantized layer.
struct QuantOp {
  enum class Kind { kConv, kDense, kPool, kFlatten };
  Kind kind = Kind::kFlatten;
  // Conv / Dense payload.
  int in_channels = 0, out_channels = 0, kernel = 0, padding = 0;
  int in_features = 0, out_features = 0;
  std::vector<std::int8_t> weight;  ///< quantized weights
  std::vector<float> bias;
  float w_scale = 1.0f;
  bool relu = false;        ///< ReLU folded into the requantization
  float act_out_scale = 1.0f;  ///< uint8 output scale (calibrated)
  int pool_window = 2;
};

/// Wordlength configuration ("8-bit wordlength" in the paper; the
/// flexible-precision scheme of [17] supports narrower words too).
struct QuantizeOptions {
  int activation_bits = 8;  ///< unsigned activation word (2..8)
  int weight_bits = 8;      ///< signed weight word incl. sign (2..8)

  int activation_levels() const { return (1 << activation_bits) - 1; }
  int weight_magnitude_max() const { return (1 << (weight_bits - 1)) - 1; }
};

class QuantizedNetwork {
 public:
  /// Quantize a trained float model. `calibration` images determine the
  /// activation scales (a handful suffice).
  static QuantizedNetwork from_model(Sequential& model,
                                     const sfc::data::Dataset& calibration,
                                     int max_calibration_images = 32,
                                     QuantizeOptions options = {});

  const QuantizeOptions& options() const { return options_; }

  /// Forward one image; returns float logits.
  Tensor forward(const sfc::data::Image& img, DotEngine& engine) const;

  /// Predicted class.
  int predict(const sfc::data::Image& img, DotEngine& engine) const;

  /// Accuracy over a dataset with the given engine.
  double evaluate(const sfc::data::Dataset& test, DotEngine& engine,
                  int max_images = -1) const;

  const std::vector<QuantOp>& ops() const { return ops_; }

  /// Total MAC count of one inference (for energy-per-inference numbers).
  std::int64_t macs_per_inference() const;

 private:
  std::vector<QuantOp> ops_;
  QuantizeOptions options_;
  int input_size_ = 32;
  int input_channels_ = 3;
};

}  // namespace sfc::nn
