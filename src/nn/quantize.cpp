#include "nn/quantize.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace sfc::nn {
namespace {

struct Geometry {
  int c = 0, h = 0, w = 0;
  bool flat = false;
  int features() const { return flat ? c : c * h * w; }
};

Geometry advance(const Geometry& g, const QuantOp& op) {
  Geometry out = g;
  switch (op.kind) {
    case QuantOp::Kind::kConv:
      assert(!g.flat && g.c == op.in_channels);
      out.c = op.out_channels;
      out.h = g.h + 2 * op.padding - op.kernel + 1;
      out.w = g.w + 2 * op.padding - op.kernel + 1;
      break;
    case QuantOp::Kind::kPool:
      assert(!g.flat);
      out.h = g.h / op.pool_window;
      out.w = g.w / op.pool_window;
      break;
    case QuantOp::Kind::kFlatten:
      out.c = g.c * g.h * g.w;
      out.h = out.w = 1;
      out.flat = true;
      break;
    case QuantOp::Kind::kDense:
      assert(g.features() == op.in_features);
      out.c = op.out_features;
      out.h = out.w = 1;
      out.flat = true;
      break;
  }
  return out;
}

float max_abs(const Tensor& t) {
  float m = 0.0f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    m = std::max(m, std::fabs(t[i]));
  }
  return m;
}

std::vector<std::int8_t> quantize_weights(const Tensor& w, int magnitude_max,
                                          float* scale_out) {
  const float peak = std::max(max_abs(w), 1e-8f);
  const auto mag = static_cast<float>(magnitude_max);
  const float scale = peak / mag;
  std::vector<std::int8_t> q(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    const float v = std::round(w[i] / scale);
    q[i] = static_cast<std::int8_t>(std::clamp(v, -mag, mag));
  }
  *scale_out = scale;
  return q;
}

}  // namespace

void DotEngine::dot_batch(std::span<const std::uint8_t> a,
                          std::span<const std::int8_t> weights,
                          std::size_t row_stride, std::size_t rows,
                          std::int64_t* out) {
  assert(rows == 0 || weights.size() >= (rows - 1) * row_stride + a.size());
  for (std::size_t r = 0; r < rows; ++r) {
    out[r] = dot(a, weights.subspan(r * row_stride, a.size()));
  }
}

std::int64_t IdealDotEngine::dot(std::span<const std::uint8_t> a,
                                 std::span<const std::int8_t> w) {
  assert(a.size() == w.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::int64_t>(a[i]) * static_cast<std::int64_t>(w[i]);
  }
  return acc;
}

QuantizedNetwork QuantizedNetwork::from_model(
    Sequential& model, const sfc::data::Dataset& calibration,
    int max_calibration_images, QuantizeOptions options) {
  QuantizedNetwork qn;
  qn.options_ = options;
  const int wmag = options.weight_magnitude_max();
  const float act_levels = static_cast<float>(options.activation_levels());

  // Pass 1: structural conversion.
  for (std::size_t li = 0; li < model.num_layers(); ++li) {
    Layer& layer = model.layer(li);
    if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      QuantOp op;
      op.kind = QuantOp::Kind::kConv;
      op.in_channels = conv->in_channels();
      op.out_channels = conv->out_channels();
      op.kernel = conv->kernel();
      op.padding = conv->padding();
      op.weight = quantize_weights(conv->weight(), wmag, &op.w_scale);
      op.bias.assign(conv->bias().data(),
                     conv->bias().data() + conv->bias().size());
      qn.ops_.push_back(std::move(op));
    } else if (auto* dense = dynamic_cast<Dense*>(&layer)) {
      QuantOp op;
      op.kind = QuantOp::Kind::kDense;
      op.in_features = dense->in_features();
      op.out_features = dense->out_features();
      op.weight = quantize_weights(dense->weight(), wmag, &op.w_scale);
      op.bias.assign(dense->bias().data(),
                     dense->bias().data() + dense->bias().size());
      qn.ops_.push_back(std::move(op));
    } else if (auto* pool = dynamic_cast<MaxPool2d*>(&layer)) {
      QuantOp op;
      op.kind = QuantOp::Kind::kPool;
      (void)pool;
      qn.ops_.push_back(std::move(op));
    } else if (dynamic_cast<Flatten*>(&layer) != nullptr) {
      QuantOp op;
      op.kind = QuantOp::Kind::kFlatten;
      qn.ops_.push_back(std::move(op));
    } else if (dynamic_cast<Relu*>(&layer) != nullptr) {
      if (qn.ops_.empty()) {
        throw std::runtime_error("QuantizedNetwork: leading ReLU unsupported");
      }
      qn.ops_.back().relu = true;
    } else if (dynamic_cast<Dropout*>(&layer) != nullptr) {
      // Inference no-op.
    } else {
      throw std::runtime_error("QuantizedNetwork: unsupported layer " +
                               layer.name());
    }
  }

  // Pass 2: activation-scale calibration on the float model. The network
  // is executed in float with dequantized weights (matching what the
  // integer path will compute) and the max post-ReLU output of every
  // conv/dense op is recorded.
  std::vector<float> act_max(qn.ops_.size(), 1e-6f);
  const int num_cal = std::min<int>(
      max_calibration_images, static_cast<int>(calibration.images.size()));
  for (int ci = 0; ci < num_cal; ++ci) {
    const auto& img = calibration.images[static_cast<std::size_t>(ci)];
    // Float activations in CHW.
    std::vector<float> act(img.pixels.begin(), img.pixels.end());
    Geometry g{3, sfc::data::Image::kSize, sfc::data::Image::kSize, false};
    for (std::size_t oi = 0; oi < qn.ops_.size(); ++oi) {
      const QuantOp& op = qn.ops_[oi];
      const Geometry gout = advance(g, op);
      std::vector<float> next;
      if (op.kind == QuantOp::Kind::kConv) {
        next.assign(static_cast<std::size_t>(gout.c) * gout.h * gout.w, 0.0f);
        for (int oc = 0; oc < gout.c; ++oc) {
          for (int oy = 0; oy < gout.h; ++oy) {
            for (int ox = 0; ox < gout.w; ++ox) {
              float acc = op.bias[static_cast<std::size_t>(oc)];
              for (int ic = 0; ic < op.in_channels; ++ic) {
                for (int ky = 0; ky < op.kernel; ++ky) {
                  const int iy = oy + ky - op.padding;
                  if (iy < 0 || iy >= g.h) continue;
                  for (int kx = 0; kx < op.kernel; ++kx) {
                    const int ix = ox + kx - op.padding;
                    if (ix < 0 || ix >= g.w) continue;
                    const float wq =
                        static_cast<float>(op.weight[static_cast<std::size_t>(
                            ((oc * op.in_channels + ic) * op.kernel + ky) *
                                op.kernel +
                            kx)]) *
                        op.w_scale;
                    acc += wq * act[static_cast<std::size_t>(
                                   (ic * g.h + iy) * g.w + ix)];
                  }
                }
              }
              if (op.relu && acc < 0.0f) acc = 0.0f;
              next[static_cast<std::size_t>((oc * gout.h + oy) * gout.w + ox)] =
                  acc;
            }
          }
        }
        act_max[oi] = std::max(act_max[oi],
                               *std::max_element(next.begin(), next.end()));
      } else if (op.kind == QuantOp::Kind::kDense) {
        next.assign(static_cast<std::size_t>(op.out_features), 0.0f);
        for (int o = 0; o < op.out_features; ++o) {
          float acc = op.bias[static_cast<std::size_t>(o)];
          for (int i = 0; i < op.in_features; ++i) {
            acc += static_cast<float>(
                       op.weight[static_cast<std::size_t>(o * op.in_features +
                                                          i)]) *
                   op.w_scale * act[static_cast<std::size_t>(i)];
          }
          if (op.relu && acc < 0.0f) acc = 0.0f;
          next[static_cast<std::size_t>(o)] = acc;
        }
        act_max[oi] = std::max(act_max[oi],
                               *std::max_element(next.begin(), next.end()));
      } else if (op.kind == QuantOp::Kind::kPool) {
        next.assign(static_cast<std::size_t>(gout.c) * gout.h * gout.w, 0.0f);
        for (int c = 0; c < g.c; ++c) {
          for (int oy = 0; oy < gout.h; ++oy) {
            for (int ox = 0; ox < gout.w; ++ox) {
              float best = -1e30f;
              for (int dy = 0; dy < op.pool_window; ++dy) {
                for (int dx = 0; dx < op.pool_window; ++dx) {
                  best = std::max(
                      best, act[static_cast<std::size_t>(
                                (c * g.h + oy * op.pool_window + dy) * g.w +
                                ox * op.pool_window + dx)]);
                }
              }
              next[static_cast<std::size_t>((c * gout.h + oy) * gout.w + ox)] =
                  best;
            }
          }
        }
      } else {  // flatten
        next = act;
      }
      act = std::move(next);
      g = gout;
    }
  }
  for (std::size_t oi = 0; oi < qn.ops_.size(); ++oi) {
    qn.ops_[oi].act_out_scale = act_max[oi] / act_levels;
  }
  return qn;
}

Tensor QuantizedNetwork::forward(const sfc::data::Image& img,
                                 DotEngine& engine) const {
  // uint8 activations with a single scale.
  const long act_levels = options_.activation_levels();
  std::vector<std::uint8_t> act(img.pixels.size());
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    act[i] = static_cast<std::uint8_t>(std::clamp(
        std::lround(img.pixels[i] * static_cast<float>(act_levels)), 0L,
        act_levels));
  }
  float a_scale = 1.0f / static_cast<float>(act_levels);
  Geometry g{input_channels_, input_size_, input_size_, false};

  std::vector<float> logits;
  std::vector<std::uint8_t> patch;

  for (std::size_t oi = 0; oi < ops_.size(); ++oi) {
    const QuantOp& op = ops_[oi];
    engine.begin_layer(static_cast<int>(oi));
    const Geometry gout = advance(g, op);
    const bool last = oi + 1 == ops_.size();

    if (op.kind == QuantOp::Kind::kConv) {
      std::vector<std::uint8_t> next(
          static_cast<std::size_t>(gout.c) * gout.h * gout.w, 0);
      const int patch_len = op.in_channels * op.kernel * op.kernel;
      patch.assign(static_cast<std::size_t>(patch_len), 0);
      std::vector<std::int64_t> dots(static_cast<std::size_t>(gout.c));
      for (int oy = 0; oy < gout.h; ++oy) {
        for (int ox = 0; ox < gout.w; ++ox) {
          // Gather the (zero-padded) input patch once per pixel.
          std::size_t pi = 0;
          for (int ic = 0; ic < op.in_channels; ++ic) {
            for (int ky = 0; ky < op.kernel; ++ky) {
              const int iy = oy + ky - op.padding;
              for (int kx = 0; kx < op.kernel; ++kx, ++pi) {
                const int ix = ox + kx - op.padding;
                patch[pi] = (iy < 0 || iy >= g.h || ix < 0 || ix >= g.w)
                                ? 0
                                : act[static_cast<std::size_t>(
                                      (ic * g.h + iy) * g.w + ix)];
              }
            }
          }
          // One batched call per pixel: every output channel reads the same
          // patch, so engines can evaluate the rows in parallel.
          engine.dot_batch(
              patch,
              std::span<const std::int8_t>(op.weight.data(), op.weight.size()),
              static_cast<std::size_t>(patch_len),
              static_cast<std::size_t>(gout.c), dots.data());
          for (int oc = 0; oc < gout.c; ++oc) {
            float y = static_cast<float>(dots[static_cast<std::size_t>(oc)]) *
                          a_scale * op.w_scale +
                      op.bias[static_cast<std::size_t>(oc)];
            if (op.relu && y < 0.0f) y = 0.0f;
            next[static_cast<std::size_t>((oc * gout.h + oy) * gout.w + ox)] =
                static_cast<std::uint8_t>(std::clamp(
                    std::lround(y / op.act_out_scale), 0L, act_levels));
          }
        }
      }
      act = std::move(next);
      a_scale = op.act_out_scale;
    } else if (op.kind == QuantOp::Kind::kDense) {
      std::vector<std::uint8_t> next(static_cast<std::size_t>(op.out_features),
                                     0);
      if (last) logits.assign(static_cast<std::size_t>(op.out_features), 0.0f);
      std::vector<std::int64_t> dots(static_cast<std::size_t>(op.out_features));
      engine.dot_batch(
          std::span<const std::uint8_t>(act.data(), act.size()),
          std::span<const std::int8_t>(op.weight.data(), op.weight.size()),
          static_cast<std::size_t>(op.in_features),
          static_cast<std::size_t>(op.out_features), dots.data());
      for (int o = 0; o < op.out_features; ++o) {
        float y = static_cast<float>(dots[static_cast<std::size_t>(o)]) *
                      a_scale * op.w_scale +
                  op.bias[static_cast<std::size_t>(o)];
        if (op.relu && y < 0.0f) y = 0.0f;
        if (last) {
          logits[static_cast<std::size_t>(o)] = y;
        } else {
          next[static_cast<std::size_t>(o)] = static_cast<std::uint8_t>(
              std::clamp(std::lround(y / op.act_out_scale), 0L, act_levels));
        }
      }
      act = std::move(next);
      a_scale = op.act_out_scale;
    } else if (op.kind == QuantOp::Kind::kPool) {
      std::vector<std::uint8_t> next(
          static_cast<std::size_t>(gout.c) * gout.h * gout.w, 0);
      for (int c = 0; c < g.c; ++c) {
        for (int oy = 0; oy < gout.h; ++oy) {
          for (int ox = 0; ox < gout.w; ++ox) {
            std::uint8_t best = 0;
            for (int dy = 0; dy < op.pool_window; ++dy) {
              for (int dx = 0; dx < op.pool_window; ++dx) {
                best = std::max(
                    best, act[static_cast<std::size_t>(
                              (c * g.h + oy * op.pool_window + dy) * g.w +
                              ox * op.pool_window + dx)]);
              }
            }
            next[static_cast<std::size_t>((c * gout.h + oy) * gout.w + ox)] =
                best;
          }
        }
      }
      act = std::move(next);
    }
    // Flatten: layout already matches; nothing to do.
    g = gout;
  }

  Tensor out({static_cast<int>(logits.size())});
  for (std::size_t i = 0; i < logits.size(); ++i) out[i] = logits[i];
  return out;
}

int QuantizedNetwork::predict(const sfc::data::Image& img,
                              DotEngine& engine) const {
  return argmax(forward(img, engine));
}

double QuantizedNetwork::evaluate(const sfc::data::Dataset& test,
                                  DotEngine& engine, int max_images) const {
  std::size_t n = test.images.size();
  if (max_images >= 0) n = std::min(n, static_cast<std::size_t>(max_images));
  if (n == 0) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (predict(test.images[i], engine) == test.images[i].label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

std::int64_t QuantizedNetwork::macs_per_inference() const {
  Geometry g{input_channels_, input_size_, input_size_, false};
  std::int64_t macs = 0;
  for (const QuantOp& op : ops_) {
    const Geometry gout = advance(g, op);
    if (op.kind == QuantOp::Kind::kConv) {
      macs += static_cast<std::int64_t>(gout.c) * gout.h * gout.w *
              op.in_channels * op.kernel * op.kernel;
    } else if (op.kind == QuantOp::Kind::kDense) {
      macs += static_cast<std::int64_t>(op.in_features) * op.out_features;
    }
    g = gout;
  }
  return macs;
}

}  // namespace sfc::nn
