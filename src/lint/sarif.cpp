#include "lint/sarif.hpp"

#include <string>
#include <unordered_set>

#include "lint/rules.hpp"

namespace sfc::lint {
namespace {

verify::Json text_object(const std::string& text) {
  verify::Json t = verify::Json::object();
  t.set("text", text);
  return t;
}

verify::Json rule_entry(const char* id, const char* description,
                        Severity level) {
  verify::Json cfg = verify::Json::object();
  cfg.set("level", severity_name(level));
  verify::Json rule = verify::Json::object();
  rule.set("id", id);
  rule.set("shortDescription", text_object(description));
  rule.set("defaultConfiguration", std::move(cfg));
  return rule;
}

}  // namespace

verify::Json to_sarif(const LintReport& report,
                      const std::string& artifact_uri) {
  verify::JsonArray rules;
  std::unordered_set<std::string> seen;
  for (const Rule& r : builtin_rules()) {
    seen.insert(r.id);
    rules.push_back(rule_entry(r.id, r.description, r.severity));
  }
  for (const ParseRuleInfo& r : parse_rules()) {
    // Parse rules abort the parse: always errors. nonpositive-value exists
    // in both tables (parse-time and circuit-level checks share the id) —
    // SARIF rule ids must be unique, so the builtin entry wins.
    if (seen.count(r.id) != 0) continue;
    rules.push_back(rule_entry(r.id, r.description, Severity::kError));
  }

  verify::Json driver = verify::Json::object();
  driver.set("name", "sfc_lint");
  driver.set("version", kSarifDriverVersion);
  driver.set("rules", verify::Json(std::move(rules)));

  verify::Json tool = verify::Json::object();
  tool.set("driver", std::move(driver));

  verify::JsonArray results;
  results.reserve(report.diagnostics().size());
  for (const Diagnostic& d : report.diagnostics()) {
    verify::Json result = verify::Json::object();
    result.set("ruleId", d.rule);
    result.set("level", severity_name(d.severity));
    result.set("message", text_object(d.message));

    verify::Json artifact = verify::Json::object();
    artifact.set("uri", artifact_uri);
    verify::Json physical = verify::Json::object();
    physical.set("artifactLocation", std::move(artifact));
    if (d.line > 0) {
      verify::Json region = verify::Json::object();
      region.set("startLine", static_cast<double>(d.line));
      physical.set("region", std::move(region));
    }
    verify::Json location = verify::Json::object();
    location.set("physicalLocation", std::move(physical));
    verify::JsonArray locations;
    locations.push_back(std::move(location));
    result.set("locations", verify::Json(std::move(locations)));

    if (!d.fingerprint.empty()) {
      verify::Json fingerprints = verify::Json::object();
      fingerprints.set(kSarifFingerprintKey, d.fingerprint);
      result.set("partialFingerprints", std::move(fingerprints));
    }
    if (d.suppressed) {
      verify::Json suppression = verify::Json::object();
      suppression.set("kind", "external");
      verify::JsonArray suppressions;
      suppressions.push_back(std::move(suppression));
      result.set("suppressions", verify::Json(std::move(suppressions)));
    }
    results.push_back(std::move(result));
  }

  verify::Json run = verify::Json::object();
  run.set("tool", std::move(tool));
  run.set("results", verify::Json(std::move(results)));
  verify::JsonArray runs;
  runs.push_back(std::move(run));

  verify::Json out = verify::Json::object();
  out.set("$schema", "https://json.schemastore.org/sarif-2.1.0.json");
  out.set("version", "2.1.0");
  out.set("runs", verify::Json(std::move(runs)));
  return out;
}

}  // namespace sfc::lint
