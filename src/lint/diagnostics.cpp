#include "lint/diagnostics.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace sfc::lint {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

Severity severity_from_name(const std::string& name) {
  if (name == "note") return Severity::kNote;
  if (name == "warning") return Severity::kWarning;
  if (name == "error") return Severity::kError;
  throw std::runtime_error("lint: unknown severity '" + name + "'");
}

bool LintReport::has_errors() const {
  return count(Severity::kError) > 0;
}

std::size_t LintReport::count(Severity s) const {
  return static_cast<std::size_t>(std::count_if(
      diagnostics_.begin(), diagnostics_.end(), [s](const Diagnostic& d) {
        return d.severity == s && !d.suppressed;
      }));
}

std::size_t LintReport::count_suppressed() const {
  return static_cast<std::size_t>(
      std::count_if(diagnostics_.begin(), diagnostics_.end(),
                    [](const Diagnostic& d) { return d.suppressed; }));
}

std::optional<Severity> LintReport::max_severity() const {
  std::optional<Severity> top;
  for (const Diagnostic& d : diagnostics_) {
    if (d.suppressed) continue;
    if (!top || static_cast<int>(d.severity) > static_cast<int>(*top)) {
      top = d.severity;
    }
  }
  return top;
}

int LintReport::exit_code() const {
  const auto top = max_severity();
  return top ? static_cast<int>(*top) : 0;
}

void LintReport::sort() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.line, a.rule, a.object) <
                            std::tie(b.line, b.rule, b.object);
                   });
}

std::string LintReport::to_text(const std::string& source_name) const {
  std::string out;
  const std::string prefix = source_name.empty() ? "netlist" : source_name;
  for (const Diagnostic& d : diagnostics_) {
    if (d.suppressed) continue;
    out += prefix;
    if (d.line > 0) out += ":" + std::to_string(d.line);
    out += ": ";
    out += severity_name(d.severity);
    out += ": [" + d.rule + "] " + d.message;
    if (!d.hint.empty()) out += " (hint: " + d.hint + ")";
    out += "\n";
  }
  out += prefix + ": " + std::to_string(count(Severity::kError)) +
         " error(s), " + std::to_string(count(Severity::kWarning)) +
         " warning(s), " + std::to_string(count(Severity::kNote)) +
         " note(s)";
  if (count_suppressed() > 0) {
    out += ", " + std::to_string(count_suppressed()) + " baselined";
  }
  out += "\n";
  return out;
}

verify::Json LintReport::to_json(const std::string& source_name) const {
  verify::Json counts = verify::Json::object();
  counts.set("error", static_cast<double>(count(Severity::kError)));
  counts.set("warning", static_cast<double>(count(Severity::kWarning)));
  counts.set("note", static_cast<double>(count(Severity::kNote)));
  counts.set("suppressed", static_cast<double>(count_suppressed()));

  verify::JsonArray items;
  items.reserve(diagnostics_.size());
  for (const Diagnostic& d : diagnostics_) {
    verify::Json item = verify::Json::object();
    item.set("rule", d.rule);
    item.set("severity", severity_name(d.severity));
    item.set("line", static_cast<double>(d.line));
    item.set("object", d.object);
    item.set("message", d.message);
    item.set("hint", d.hint);
    item.set("fingerprint", d.fingerprint);
    item.set("suppressed", d.suppressed);
    items.push_back(std::move(item));
  }

  verify::Json out = verify::Json::object();
  out.set("schema_version", 1);
  out.set("source", source_name);
  out.set("counts", std::move(counts));
  out.set("diagnostics", verify::Json(std::move(items)));
  return out;
}

LintReport LintReport::from_json(const verify::Json& json) {
  if (json.number_at("schema_version") != 1.0) {
    throw std::runtime_error("lint: unsupported report schema_version");
  }
  LintReport report;
  for (const verify::Json& item : json.get("diagnostics").as_array()) {
    Diagnostic d;
    d.rule = item.string_at("rule");
    d.severity = severity_from_name(item.string_at("severity"));
    d.line = static_cast<std::size_t>(item.number_at("line"));
    d.object = item.string_at("object");
    d.message = item.string_at("message");
    d.hint = item.string_at("hint");
    // Pre-baseline reports (schema additions, same version) lack these.
    if (item.has("fingerprint")) d.fingerprint = item.string_at("fingerprint");
    if (item.has("suppressed")) d.suppressed = item.get("suppressed").as_bool();
    report.add(std::move(d));
  }
  // Cross-check the serialized counts against the decoded list so a
  // hand-edited report cannot silently disagree with itself.
  const verify::Json& counts = json.get("counts");
  if (counts.number_at("error") !=
          static_cast<double>(report.count(Severity::kError)) ||
      counts.number_at("warning") !=
          static_cast<double>(report.count(Severity::kWarning)) ||
      counts.number_at("note") !=
          static_cast<double>(report.count(Severity::kNote))) {
    throw std::runtime_error("lint: report counts disagree with diagnostics");
  }
  return report;
}

}  // namespace sfc::lint
