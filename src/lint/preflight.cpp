#include "lint/preflight.hpp"

#include <utility>

#include "lint/linter.hpp"

namespace sfc::lint {
namespace {

std::string preflight_message(const LintReport& report) {
  return "pre-flight lint rejected the circuit:\n" + report.to_text();
}

}  // namespace

PreflightError::PreflightError(LintReport report)
    : std::runtime_error(preflight_message(report)),
      report_(std::move(report)) {}

void check_or_throw(const spice::Circuit& circuit,
                    const spice::NetlistDeck* deck) {
  const LintReport all = Linter{}.run(circuit, deck);
  if (!all.has_errors()) return;
  LintReport errors;
  for (const Diagnostic& d : all.diagnostics()) {
    if (d.severity == Severity::kError) errors.add(d);
  }
  throw PreflightError(std::move(errors));
}

void install_preflight(spice::Engine& engine,
                       const spice::NetlistDeck* deck) {
  if (deck == nullptr) {
    engine.set_preflight(
        [](const spice::Circuit& c) { check_or_throw(c, nullptr); });
    return;
  }
  engine.set_preflight([deck_copy = *deck](const spice::Circuit& c) {
    check_or_throw(c, &deck_copy);
  });
}

}  // namespace sfc::lint
