// Interval abstract domain for the semantic lint passes.
//
// An Interval is a closed set [lo, hi] of possible voltages (or any other
// real quantity). All arithmetic rounds *outward* — each finite result
// endpoint is nudged one ulp away from the interval — so a chain of
// operations can never understate the true range. That is the soundness
// contract the operating-point analysis (analysis.hpp) and the fuzz
// differential oracle (src/verify/fuzz.cpp, invariant "interval_escape")
// rely on: if the abstract interpreter says a node is in [lo, hi], the
// solver's converged value must be inside it.
//
// Two distinguished values:
//   * empty    — no possible value (lo > hi, canonically [+inf, -inf]);
//                produced by contradictory intersections and absorbed by
//                every arithmetic op;
//   * universe — [-inf, +inf], "nothing is known"; the sound default.
#pragma once

#include <string>

namespace sfc::lint {

class Interval {
 public:
  /// Default: the universe (nothing known). The analysis starts every
  /// node there and only ever narrows.
  Interval();
  /// Singleton [v, v] (exact, no outward rounding — construction states a
  /// fact, arithmetic accounts for roundoff).
  explicit Interval(double v);
  /// [lo, hi]; lo > hi collapses to the canonical empty interval, NaN
  /// endpoints collapse to the universe (sound: NaN means "lost track").
  Interval(double lo, double hi);

  static Interval empty();
  static Interval universe();
  static Interval hull(const Interval& a, const Interval& b);
  static Interval intersect(const Interval& a, const Interval& b);

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  bool is_empty() const { return lo_ > hi_; }
  bool is_universe() const;
  /// Both endpoints finite (and not empty).
  bool is_bounded() const;
  bool is_singleton() const { return lo_ == hi_; }

  bool contains(double v) const { return lo_ <= v && v <= hi_; }
  /// Superset test; the empty interval is contained in everything.
  bool contains(const Interval& other) const;

  double width() const;

  /// [lo - eps, hi + eps] (eps >= 0); used to absorb solver tolerance when
  /// comparing a converged operating point against a static bound.
  Interval widened(double eps) const;

  /// Set ops (exact, no rounding: endpoints are copied, not computed).
  Interval& operator|=(const Interval& other);  ///< hull
  Interval& operator&=(const Interval& other);  ///< intersection

  /// Outward-rounded arithmetic. Division by an interval containing zero
  /// (or by empty-adjacent garbage) returns the universe; any op with an
  /// empty operand returns empty.
  friend Interval operator+(const Interval& a, const Interval& b);
  friend Interval operator-(const Interval& a, const Interval& b);
  friend Interval operator-(const Interval& a);
  friend Interval operator*(const Interval& a, const Interval& b);
  friend Interval operator/(const Interval& a, const Interval& b);

  bool operator==(const Interval& other) const {
    return (is_empty() && other.is_empty()) ||
           (lo_ == other.lo_ && hi_ == other.hi_);
  }
  bool operator!=(const Interval& other) const { return !(*this == other); }

  /// "[lo, hi]" with %.6g endpoints; "(empty)" / "(unbounded)" for the
  /// distinguished values. For diagnostics, not for round-tripping.
  std::string str() const;

 private:
  double lo_;
  double hi_;
};

}  // namespace sfc::lint
