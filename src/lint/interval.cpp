#include "lint/interval.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace sfc::lint {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Outward rounding: one ulp down/up. Infinite endpoints pass through
/// (nextafter(+inf, -inf) would *tighten* a +inf lower bound to DBL_MAX,
/// which is still sound for `down` but not worth the asymmetry — keep
/// infinities exact on both sides).
double down(double v) {
  if (std::isnan(v)) return -kInf;
  if (std::isinf(v)) return v;
  return std::nextafter(v, -kInf);
}

double up(double v) {
  if (std::isnan(v)) return kInf;
  if (std::isinf(v)) return v;
  return std::nextafter(v, kInf);
}

/// Endpoint product with the 0 * inf convention resolved to 0: a zero
/// factor means the true product is exactly zero no matter how large the
/// other side may be, so 0 is the correct (and sound) candidate.
double mulc(double x, double y) {
  if (x == 0.0 || y == 0.0) return 0.0;
  return x * y;
}

/// Endpoint quotient; the caller has excluded 0 from the divisor interval,
/// but infinite/infinite combinations can still appear (inf/inf -> pick 0,
/// which the min/max over all four candidates keeps sound because the
/// matching finite candidates bracket it).
double divc(double x, double y) {
  if (x == 0.0) return 0.0;
  if (std::isinf(y)) {
    if (std::isinf(x)) return 0.0;
    return 0.0;
  }
  return x / y;
}

}  // namespace

Interval::Interval() : lo_(-kInf), hi_(kInf) {}

Interval::Interval(double v) : lo_(v), hi_(v) {
  if (std::isnan(v)) {
    lo_ = -kInf;
    hi_ = kInf;
  }
}

Interval::Interval(double lo, double hi) : lo_(lo), hi_(hi) {
  if (std::isnan(lo) || std::isnan(hi)) {
    lo_ = -kInf;
    hi_ = kInf;
  } else if (lo_ > hi_) {
    *this = empty();
  }
}

Interval Interval::empty() {
  Interval i;
  i.lo_ = kInf;
  i.hi_ = -kInf;
  return i;
}

Interval Interval::universe() { return Interval(); }

Interval Interval::hull(const Interval& a, const Interval& b) {
  if (a.is_empty()) return b;
  if (b.is_empty()) return a;
  Interval out;
  out.lo_ = std::min(a.lo_, b.lo_);
  out.hi_ = std::max(a.hi_, b.hi_);
  return out;
}

Interval Interval::intersect(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return empty();
  const double lo = std::max(a.lo_, b.lo_);
  const double hi = std::min(a.hi_, b.hi_);
  if (lo > hi) return empty();
  Interval out;
  out.lo_ = lo;
  out.hi_ = hi;
  return out;
}

bool Interval::is_universe() const { return lo_ == -kInf && hi_ == kInf; }

bool Interval::is_bounded() const {
  return !is_empty() && std::isfinite(lo_) && std::isfinite(hi_);
}

bool Interval::contains(const Interval& other) const {
  if (other.is_empty()) return true;
  if (is_empty()) return false;
  return lo_ <= other.lo_ && other.hi_ <= hi_;
}

double Interval::width() const {
  if (is_empty()) return 0.0;
  return hi_ - lo_;
}

Interval Interval::widened(double eps) const {
  if (is_empty()) return *this;
  return Interval(lo_ - eps, hi_ + eps);
}

Interval& Interval::operator|=(const Interval& other) {
  *this = hull(*this, other);
  return *this;
}

Interval& Interval::operator&=(const Interval& other) {
  *this = intersect(*this, other);
  return *this;
}

Interval operator+(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  Interval out;
  out.lo_ = down(a.lo_ + b.lo_);
  out.hi_ = up(a.hi_ + b.hi_);
  return out;
}

Interval operator-(const Interval& a) {
  if (a.is_empty()) return Interval::empty();
  Interval out;
  out.lo_ = -a.hi_;
  out.hi_ = -a.lo_;
  return out;
}

Interval operator-(const Interval& a, const Interval& b) { return a + (-b); }

Interval operator*(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const double c[4] = {mulc(a.lo_, b.lo_), mulc(a.lo_, b.hi_),
                       mulc(a.hi_, b.lo_), mulc(a.hi_, b.hi_)};
  Interval out;
  out.lo_ = down(std::min({c[0], c[1], c[2], c[3]}));
  out.hi_ = up(std::max({c[0], c[1], c[2], c[3]}));
  return out;
}

Interval operator/(const Interval& a, const Interval& b) {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  // Divisor straddling (or touching) zero: the quotient is unbounded in at
  // least one direction; returning the whole line keeps the result sound
  // without case-splitting on signs.
  if (b.lo_ <= 0.0 && b.hi_ >= 0.0) return Interval::universe();
  const double c[4] = {divc(a.lo_, b.lo_), divc(a.lo_, b.hi_),
                       divc(a.hi_, b.lo_), divc(a.hi_, b.hi_)};
  Interval out;
  out.lo_ = down(std::min({c[0], c[1], c[2], c[3]}));
  out.hi_ = up(std::max({c[0], c[1], c[2], c[3]}));
  return out;
}

std::string Interval::str() const {
  if (is_empty()) return "(empty)";
  if (is_universe()) return "(unbounded)";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.6g, %.6g]", lo_, hi_);
  return buf;
}

}  // namespace sfc::lint
