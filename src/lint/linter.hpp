// Pass-pipeline driver for the netlist static analyzer, plus the
// parse-and-lint entry points used by the sfc_lint CLI, the test suite and
// the fuzz cross-check. See DESIGN.md §10/§12 for the architecture and the
// full rule table.
#pragma once

#include <string>

#include "lint/diagnostics.hpp"
#include "lint/rules.hpp"

namespace sfc::lint {

class Linter {
 public:
  /// All builtin rules enabled, default semantic thresholds. Validates
  /// the rule table (throws std::invalid_argument on duplicate ids).
  explicit Linter(LintOptions options = {});

  /// Toggle a circuit rule by id; unknown ids throw std::runtime_error
  /// naming the valid rule set.
  void disable(const std::string& rule_id);
  void enable(const std::string& rule_id);

  const LintOptions& options() const { return options_; }

  /// Run the enabled pipeline over a finalized-or-not circuit. `deck`
  /// unlocks the directive rules (tran-step, temp-range, unused-model,
  /// dc-sweep-source), tells the reachability rule whether capacitors
  /// conduct, and scopes the interval analysis temperature range. Never
  /// solves, never mutates the circuit. Findings come back sorted and
  /// fingerprinted (baseline.hpp).
  LintReport run(const spice::Circuit& circuit,
                 const spice::NetlistDeck* deck = nullptr) const;

 private:
  std::size_t index_of(const std::string& rule_id) const;
  std::vector<bool> enabled_;
  LintOptions options_;
};

/// Parse + lint outcome. Parse failures are reported as diagnostics (rule
/// = spice::NetlistError::rule()), not exceptions, so the linter can be
/// pointed at arbitrary input — including fuzzer reproducers — without
/// crashing.
struct LintResult {
  LintReport report;
  spice::NetlistDeck deck;
  bool parsed = false;  ///< false when parsing aborted (deck is partial)
};

LintResult lint_source(const std::string& text, const Linter& linter = Linter{});

/// Read `path` and lint it. Throws std::runtime_error on I/O failure only.
LintResult lint_file(const std::string& path, const Linter& linter = Linter{});

}  // namespace sfc::lint
