// Pass-pipeline driver for the netlist static analyzer, plus the
// parse-and-lint entry points used by the sfc_lint CLI, the test suite and
// the fuzz cross-check. See DESIGN.md §10 for the architecture and the
// full rule table.
#pragma once

#include <string>

#include "lint/diagnostics.hpp"
#include "lint/rules.hpp"

namespace sfc::lint {

class Linter {
 public:
  /// All builtin rules enabled.
  Linter();

  /// Toggle a circuit rule by id; unknown ids throw std::runtime_error.
  void disable(const std::string& rule_id);
  void enable(const std::string& rule_id);

  /// Run the enabled pipeline over a finalized-or-not circuit. `deck`
  /// unlocks the directive rules (tran-step, temp-range, unused-model,
  /// dc-sweep-source) and tells the reachability rule whether capacitors
  /// conduct. Never solves, never mutates the circuit.
  LintReport run(const spice::Circuit& circuit,
                 const spice::NetlistDeck* deck = nullptr) const;

 private:
  std::size_t index_of(const std::string& rule_id) const;
  std::vector<bool> enabled_;
};

/// Parse + lint outcome. Parse failures are reported as diagnostics (rule
/// = spice::NetlistError::rule()), not exceptions, so the linter can be
/// pointed at arbitrary input — including fuzzer reproducers — without
/// crashing.
struct LintResult {
  LintReport report;
  spice::NetlistDeck deck;
  bool parsed = false;  ///< false when parsing aborted (deck is partial)
};

LintResult lint_source(const std::string& text, const Linter& linter = {});

/// Read `path` and lint it. Throws std::runtime_error on I/O failure only.
LintResult lint_file(const std::string& path, const Linter& linter = {});

}  // namespace sfc::lint
