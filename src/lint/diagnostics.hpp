// Structured diagnostics for the netlist static analyzer (ERC/lint).
//
// A Diagnostic is one finding of one rule: a stable machine-readable rule
// id, a severity, the source line of the offending card (0 when the
// circuit was built through the API), the device or node it anchors to, a
// human message and an optional fix-it hint. A LintReport is the ordered
// list of findings of one run, serializable both to compiler-style text
// ("deck.cir:12: error: [floating-node] ...") and to canonical JSON via
// sfc_verify::Json (sorted keys, stable number formatting), so CI can
// diff reports byte-for-byte.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "verify/json.hpp"

namespace sfc::lint {

/// Numeric values double as CLI exit codes (0 = clean report).
enum class Severity { kNote = 1, kWarning = 2, kError = 3 };

const char* severity_name(Severity s);
/// Inverse of severity_name; throws std::runtime_error on unknown names.
Severity severity_from_name(const std::string& name);

struct Diagnostic {
  std::string rule;              ///< stable rule id, e.g. "floating-node"
  Severity severity = Severity::kError;
  std::size_t line = 0;          ///< 1-based netlist line; 0 = no source
  std::string object;            ///< device or node name the finding anchors to
  std::string message;
  std::string hint;              ///< optional fix-it suggestion ("" = none)
  /// Structural fingerprint (baseline.hpp): stable across line-number
  /// churn, changes when the finding's anchor changes shape. Stamped by
  /// the Linter; "" when the report was built by hand.
  std::string fingerprint;
  /// True when a baseline file suppressed this finding. Suppressed
  /// findings stay in the report (and its JSON) but are excluded from
  /// counts, max_severity and the exit code.
  bool suppressed = false;
};

class LintReport {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  /// Mutable access for fingerprint stamping / baseline suppression.
  std::vector<Diagnostic>& mutable_diagnostics() { return diagnostics_; }
  bool clean() const { return diagnostics_.empty(); }
  bool has_errors() const;
  /// Unsuppressed findings of the given severity.
  std::size_t count(Severity s) const;
  std::size_t count_suppressed() const;

  /// Highest unsuppressed severity present; nullopt for a clean (or fully
  /// suppressed) report.
  std::optional<Severity> max_severity() const;

  /// CLI exit code: 0 clean, else the numeric value of max_severity()
  /// (note 1, warning 2, error 3). Suppressed findings don't count.
  int exit_code() const;

  /// Sort findings by (line, rule, object) for stable output regardless of
  /// rule execution order. Called by the Linter after the pipeline runs.
  void sort();

  /// Compiler-style text, one finding per line, plus a summary line.
  /// `source_name` prefixes each finding ("deck.cir:12: ...").
  std::string to_text(const std::string& source_name = "") const;

  /// Canonical JSON: {schema_version, source, counts{...}, diagnostics[]}.
  verify::Json to_json(const std::string& source_name = "") const;

  /// Inverse of to_json; throws std::runtime_error on schema mismatch.
  static LintReport from_json(const verify::Json& json);

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace sfc::lint
