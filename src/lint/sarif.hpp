// SARIF 2.1.0 emission for lint reports, so CI systems (GitHub code
// scanning, Gerrit checks, ...) can ingest sfc_lint findings natively.
// Kept to the minimal stable subset of the spec: one run, one driver,
// the full rule table, and per-result level / message / location /
// partialFingerprints (+ suppressions for baselined findings). The key
// set is pinned by tests/goldens/sarif_keys.json and gated in CI via
// `verify_runner check-sarif`.
#pragma once

#include <string>

#include "lint/diagnostics.hpp"
#include "verify/json.hpp"

namespace sfc::lint {

/// Version reported as runs[].tool.driver.version.
inline constexpr const char* kSarifDriverVersion = "1.0.0";

/// Key under results[].partialFingerprints carrying the baseline
/// fingerprint (versioned, per the SARIF convention).
inline constexpr const char* kSarifFingerprintKey = "sfcLint/v1";

/// Serialize the report as a SARIF 2.1.0 log. `artifact_uri` names the
/// linted deck in result locations ("netlist" when linting stdin/API
/// circuits). Suppressed findings are emitted with a suppression record,
/// matching the baseline semantics of the text/JSON outputs.
verify::Json to_sarif(const LintReport& report,
                      const std::string& artifact_uri);

}  // namespace sfc::lint
