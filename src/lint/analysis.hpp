// Shared circuit analyses for the lint passes, owned and cached by an
// AnalysisManager so each pass does not rebuild them:
//
//   * NodeIncidence          — terminal incidence of every non-ground node;
//   * ConductionComponents   — union-find over the DC (or transient)
//                              conduction graph;
//   * DcTopology             — per-node passive-edge adjacency with
//                              conductance bounds, voltage pins, and taint
//                              seeds for the interval engine;
//   * OperatingIntervals     — per-node bias intervals (interval.hpp)
//                              derived from source values, the discrete
//                              maximum principle and Thevenin/weighted-
//                              average refinement.
//
// Soundness contract of OperatingIntervals (enforced empirically by the
// "interval_escape" fuzz invariant in src/verify/fuzz.cpp): for every deck
// the solver converges on, the DC operating point lies inside `dc`, and —
// when the deck's caps are grounded and it has no inductors — every
// transient node voltage lies inside `envelope`. Nodes whose voltage the
// analysis cannot bound soundly (current-source neighborhoods, floating
// caps, unknown device types) are tainted to the universe interval rather
// than guessed.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "lint/interval.hpp"
#include "spice/circuit.hpp"
#include "spice/netlist.hpp"

namespace sfc::lint {

/// Terminal incidence of every non-ground node, shared by the topology
/// rules so each pass does not rebuild it.
struct NodeIncidence {
  struct Touch {
    const spice::Device* device = nullptr;
    std::size_t terminal = 0;  ///< index into Device::terminals()
  };
  /// Indexed by NodeId; ground is excluded (always well-connected).
  std::vector<std::vector<Touch>> touches;

  static NodeIncidence build(const spice::Circuit& circuit);
};

/// Union-find over node ids 0..n-1 plus ground at slot n.
class Dsu {
 public:
  explicit Dsu(std::size_t slots);
  std::size_t find(std::size_t i);
  void unite(std::size_t a, std::size_t b);

 private:
  std::vector<std::size_t> parent_;
};

/// Slot of a node in a Dsu over `num_nodes` + ground.
std::size_t node_slot(spice::NodeId n, std::size_t num_nodes);

/// Node pairs a device conducts DC current between. `caps_conduct` folds
/// capacitors into the graph (transient decks: the companion model makes
/// them conductive, and an IC pins the node voltage).
std::vector<std::pair<spice::NodeId, spice::NodeId>> conduction_edges(
    const spice::Device& dev, bool caps_conduct);

/// True for devices whose branch voltage is fixed independent of current:
/// chaining them into a loop (or shorting one) makes the MNA matrix
/// singular. Inductors count — they are DC shorts.
bool is_voltage_defined(const spice::Device& dev);

/// The (t0, t1) branch of a voltage-defined device.
std::pair<spice::NodeId, spice::NodeId> voltage_branch(
    const spice::Device& dev);

/// Connected components of the conduction graph. Component ids are Dsu
/// roots; `component_of(kGround)` is valid and names the grounded island.
struct ConductionComponents {
  std::vector<std::size_t> root;  ///< slot -> root, size num_nodes + 1
  std::size_t num_nodes = 0;
  bool caps_conduct = false;

  std::size_t component_of(spice::NodeId n) const {
    return root[node_slot(n, num_nodes)];
  }
  bool same_component(spice::NodeId a, spice::NodeId b) const {
    return component_of(a) == component_of(b);
  }

  static ConductionComponents build(const spice::Circuit& circuit,
                                    bool caps_conduct);
};

/// DC topology for the interval engine: passive adjacency (with
/// conductance bounds where the element is linear), voltage pins, and the
/// taint seeds that mark where the maximum principle stops holding.
struct DcTopology {
  /// A passive two-terminal branch incident to a node. Passive means
  /// sign(i) == sign(delta v): resistors, switches, diodes, MOSFET
  /// channels. `g` bounds the branch conductance when the element is
  /// linear enough to have one (R, S); nonlinear passive branches keep
  /// has_g == false and participate only in hull relaxation.
  struct Edge {
    const spice::Device* device = nullptr;
    spice::NodeId other = spice::kGround;
    Interval g;  ///< conductance bounds [S]; meaningful iff has_g
    bool has_g = false;
    bool is_capacitor = false;  ///< only conducts in transient
  };

  /// A voltage-defined branch v(a) - v(b) = value. VSource values depend
  /// on the interval mode (DC start value vs whole-waveform range), Vcvs
  /// values on the controlling nodes; both are resolved by the engine.
  struct Pin {
    enum class Kind { kVSource, kVcvs, kInductor };
    Kind kind = Kind::kVSource;
    const spice::Device* device = nullptr;
    spice::NodeId a = spice::kGround;
    spice::NodeId b = spice::kGround;
    Interval dc_value;        ///< kVSource: t=0 value (+ .dc sweep hull)
    Interval envelope_value;  ///< kVSource: waveform range (+ sweep hull)
    spice::NodeId ctrl_p = spice::kGround;  ///< kVcvs
    spice::NodeId ctrl_n = spice::kGround;  ///< kVcvs
    double gain = 0.0;                      ///< kVcvs
  };

  /// Per non-ground node: incident passive edges (capacitor edges are
  /// flagged; the DC engine ignores them, the envelope engine treats the
  /// grounded ones as state anchors).
  std::vector<std::vector<Edge>> edges;
  std::vector<Pin> pins;

  /// Nodes whose conduction component must be widened to the universe in
  /// DC mode: current-source terminals, Vccs outputs, unknown device
  /// types, non-physical element values. The maximum principle assumes
  /// every non-pin injection is passive; these break it.
  std::vector<spice::NodeId> dc_taint_seeds;
  /// Additional seeds for the transient envelope: inductor terminals
  /// (their current is state) and capacitors not referenced to ground.
  std::vector<spice::NodeId> tran_taint_seeds;

  static DcTopology build(const spice::Circuit& circuit,
                          const spice::NetlistDeck* deck);
};

struct IntervalOptions {
  /// Upper bound of the solver's shunt-to-ground gmin at convergence [S].
  /// The engine models gmin as the interval [0, gmin_max], so bounds hold
  /// whether or not the leak is present.
  double gmin_max = 1e-12;
  /// Fixpoint sweep cap; intervals only shrink, so stopping early is
  /// always sound (just less precise).
  int max_sweeps = 64;
};

/// Per-node bias intervals. `dc` bounds the DC operating point (caps
/// open, sources at their t=0 value hulled with any .dc sweep range);
/// `envelope` additionally bounds every transient node voltage when the
/// deck has a .tran (or came from the API, where a transient may follow).
struct OperatingIntervals {
  std::vector<Interval> dc;        ///< indexed by NodeId
  std::vector<Interval> envelope;  ///< == dc when !has_tran
  std::vector<char> dc_tainted;
  std::vector<char> envelope_tainted;
  /// An empty interval appeared: the constraints are mutually
  /// inconsistent, i.e. no DC operating point can satisfy the sources
  /// (e.g. two different voltages forced onto one node).
  bool dc_contradiction = false;
  bool envelope_contradiction = false;
  bool has_tran = false;
  /// Temperature range the deck operates over: the .temp value when
  /// given, otherwise the paper's full 0-85 degC envelope.
  double temp_lo = 0.0;
  double temp_hi = 85.0;

  Interval dc_at(spice::NodeId n) const {
    return n == spice::kGround ? Interval(0.0)
                               : dc[static_cast<std::size_t>(n)];
  }
  Interval envelope_at(spice::NodeId n) const {
    return n == spice::kGround ? Interval(0.0)
                               : envelope[static_cast<std::size_t>(n)];
  }
  bool dc_is_tainted(spice::NodeId n) const {
    return n != spice::kGround &&
           dc_tainted[static_cast<std::size_t>(n)] != 0;
  }
  bool envelope_is_tainted(spice::NodeId n) const {
    return n != spice::kGround &&
           envelope_tainted[static_cast<std::size_t>(n)] != 0;
  }
};

/// Computes and caches the shared analyses for one (circuit, deck) pair.
/// All accessors build lazily on first call and return references stable
/// for the manager's lifetime. Not thread-safe; a lint run owns one.
class AnalysisManager {
 public:
  AnalysisManager(const spice::Circuit& circuit,
                  const spice::NetlistDeck* deck,
                  IntervalOptions options = {});

  const spice::Circuit& circuit() const { return circuit_; }
  const spice::NetlistDeck* deck() const { return deck_; }
  const IntervalOptions& options() const { return options_; }

  const NodeIncidence& incidence();
  const ConductionComponents& components(bool caps_conduct);
  const DcTopology& topology();
  const OperatingIntervals& intervals();

 private:
  const spice::Circuit& circuit_;
  const spice::NetlistDeck* deck_;
  IntervalOptions options_;

  std::unique_ptr<NodeIncidence> incidence_;
  std::unique_ptr<ConductionComponents> components_[2];  // [caps_conduct]
  std::unique_ptr<DcTopology> topology_;
  std::unique_ptr<OperatingIntervals> intervals_;
};

/// One-shot convenience (used by the fuzz oracle): equivalent to
/// AnalysisManager(circuit, deck, options).intervals().
OperatingIntervals compute_operating_intervals(
    const spice::Circuit& circuit, const spice::NetlistDeck* deck,
    const IntervalOptions& options = {});

}  // namespace sfc::lint
