// Semantic lint passes: consume the AnalysisManager's operating-point
// intervals and FeFET device physics to prove (or refute) the paper's
// operating regime statically — before any Newton iteration runs.
//
// Temperature handling: a pass evaluates its device law at the corner
// temperatures of the deck's range (the .temp value, or the paper's full
// 0-85 degC envelope when unspecified) plus the memory-window clamp point
// when it falls inside. Every law involved is piecewise linear in T, so
// corner evaluation bounds the whole range exactly.
#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <vector>

#include "fefet/fefet.hpp"
#include "lint/rules.hpp"

namespace sfc::lint {
namespace passes {
namespace {

using spice::NodeId;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Corner temperatures of [lo, hi] for the FeFET threshold laws: the two
/// endpoints plus the temperature where the memory-window shrink clamps
/// to zero (mw(T) = mw0 * max(1 + tc_mw (T - T0), 0)), if interior. All
/// threshold expressions are linear between these points.
std::vector<double> corner_temps(double lo, double hi,
                                 const fefet::PreisachParams& p) {
  std::vector<double> t = {lo};
  if (hi != lo) t.push_back(hi);
  if (p.tc_mw != 0.0) {
    const double clamp = p.t_nominal_c - 1.0 / p.tc_mw;
    if (clamp > lo && clamp < hi) t.push_back(clamp);
  }
  return t;
}

/// Effective threshold of the fully programmed ('1', low) or erased
/// ('0', high) state at a temperature, composed from the same model
/// pieces the solver uses (channel tempco, Preisach window, MC shift) so
/// the static check can never drift from the dynamic model.
double state_vth(const fefet::FeFet& z, double temp_c, bool high_state) {
  const fefet::PreisachParams& p = z.ferroelectric().params();
  const double mid = 0.5 * (p.vth_low + p.vth_high);
  const double half_mw = 0.5 * z.ferroelectric().memory_window(temp_c);
  return z.params().vth(temp_c) + mid + (high_state ? half_mw : -half_mw) +
         z.vth_shift();
}

/// FeFETs grouped by their (non-ground) drain node — the CiM bitline
/// structure. Groups with >= 2 cells are treated as bitlines by the
/// array-shape and ADC-range passes. std::map keeps diagnostics ordered.
std::map<NodeId, std::vector<const fefet::FeFet*>> group_by_drain(
    const spice::Circuit& circuit) {
  std::map<NodeId, std::vector<const fefet::FeFet*>> groups;
  for (const auto& dev : circuit.devices()) {
    const auto* z = dynamic_cast<const fefet::FeFet*>(dev.get());
    if (!z) continue;
    const NodeId drain = z->terminals()[0];
    if (drain == spice::kGround) continue;
    groups[drain].push_back(z);
  }
  return groups;
}

}  // namespace

void subthreshold_window(const LintContext& ctx, LintReport& out) {
  const OperatingIntervals& iv = ctx.analyses.intervals();
  for (const auto& dev : ctx.circuit.devices()) {
    const auto* z = dynamic_cast<const fefet::FeFet*>(dev.get());
    if (!z) continue;
    const auto t = z->terminals();  // {drain, gate, source}
    const Interval vgs = iv.envelope_at(t[1]) - iv.envelope_at(t[2]);
    if (!vgs.is_bounded()) {
      Diagnostic d;
      d.rule = "subthreshold-window";
      d.severity = Severity::kNote;
      d.line = dev->source_line();
      d.object = dev->name();
      d.message = "FeFET '" + dev->name() +
                  "' gate-source bias is not statically boundable (" +
                  vgs.str() + "); the subthreshold window cannot be proved";
      d.hint =
          "current sources, floating capacitors or inductors near the gate "
          "defeat the interval analysis — bias the gate resistively from a "
          "voltage source to make the window checkable";
      out.add(std::move(d));
      continue;
    }

    const fefet::PreisachParams& p = z->ferroelectric().params();
    double worst_vth = std::numeric_limits<double>::infinity();
    double worst_temp = iv.temp_lo;
    for (double temp : corner_temps(iv.temp_lo, iv.temp_hi, p)) {
      const double vth = state_vth(*z, temp, /*high_state=*/true);
      if (vth < worst_vth) {
        worst_vth = vth;
        worst_temp = temp;
      }
    }

    const double margin = ctx.options.subthreshold_margin;
    if (vgs.hi() > worst_vth - margin) {
      Diagnostic d;
      d.rule = "subthreshold-window";
      d.severity = Severity::kError;
      d.line = dev->source_line();
      d.object = dev->name();
      d.message = "FeFET '" + dev->name() + "' gate-source bias may reach " +
                  fmt(vgs.hi()) + " V while the erased (high-VTH) state "
                  "threshold drops to " + fmt(worst_vth) + " V at " +
                  fmt(worst_temp) + " degC — less than the " + fmt(margin) +
                  " V subthreshold margin, so a stored '0' may conduct";
      d.hint =
          "lower the read/wordline bias (paper operating point: 0.35 V) or "
          "widen the programming window; the temperature-resilience claim "
          "needs every erased cell off across the whole range";
      out.add(std::move(d));
      continue;
    }

    // Read disturb: worst-case |VGS| against the weakest ferroelectric
    // domain (mean coercive voltage minus three sigma) at the corner
    // where vc is lowest. No extra margin here — the check flags bias
    // that can actually flip domains, not conservative headroom.
    const double peak = std::max(vgs.hi(), -vgs.lo());
    double weakest_vc = std::numeric_limits<double>::infinity();
    double weakest_temp = iv.temp_lo;
    for (double temp : {iv.temp_lo, iv.temp_hi}) {
      const double vc =
          p.vc_mean + p.tc_vc * (temp - p.t_nominal_c) - 3.0 * p.vc_sigma;
      if (vc < weakest_vc) {
        weakest_vc = vc;
        weakest_temp = temp;
      }
    }
    if (peak > weakest_vc) {
      Diagnostic d;
      d.rule = "subthreshold-window";
      d.severity = Severity::kWarning;
      d.line = dev->source_line();
      d.object = dev->name();
      d.message = "FeFET '" + dev->name() + "' gate bias may reach " +
                  fmt(peak) + " V, above the weakest domain coercive "
                  "voltage " + fmt(weakest_vc) + " V (vc - 3 sigma at " +
                  fmt(weakest_temp) + " degC): repeated reads will disturb "
                  "the stored polarization";
      d.hint =
          "keep read pulses below the coercive tail or refresh the cell "
          "periodically (see PreisachModel::read_disturb)";
      out.add(std::move(d));
    }
  }
}

void vth_temp_drift(const LintContext& ctx, LintReport& out) {
  for (const auto& dev : ctx.circuit.devices()) {
    const auto* z = dynamic_cast<const fefet::FeFet*>(dev.get());
    if (!z) continue;
    const fefet::PreisachParams& p = z->ferroelectric().params();
    if (p.vth_low >= p.vth_high) continue;  // fefet-vth-window's finding

    // Cell robustness is a property of the device, not of today's deck:
    // always check the paper's full temperature envelope.
    double min_mw = std::numeric_limits<double>::infinity();
    double min_mw_temp = 0.0;
    double min_low_vth = std::numeric_limits<double>::infinity();
    double min_low_temp = 0.0;
    for (double temp : corner_temps(0.0, 85.0, p)) {
      const double mw = z->ferroelectric().memory_window(temp);
      if (mw < min_mw) {
        min_mw = mw;
        min_mw_temp = temp;
      }
      const double low = state_vth(*z, temp, /*high_state=*/false);
      if (low < min_low_vth) {
        min_low_vth = low;
        min_low_temp = temp;
      }
    }

    if (min_mw <= 0.0) {
      Diagnostic d;
      d.rule = "vth-temp-drift";
      d.severity = Severity::kError;
      d.line = dev->source_line();
      d.object = dev->name();
      d.message = "FeFET '" + dev->name() +
                  "' memory window collapses to zero at " + fmt(min_mw_temp) +
                  " degC (tc_mw = " + fmt(p.tc_mw) +
                  " /K): stored states become indistinguishable inside the "
                  "0-85 degC range";
      d.hint =
          "reduce |tc_mw| or widen vthlow/vthhigh so the window survives "
          "the full temperature envelope";
      out.add(std::move(d));
      continue;
    }
    if (min_mw < ctx.options.min_memory_window) {
      Diagnostic d;
      d.rule = "vth-temp-drift";
      d.severity = Severity::kWarning;
      d.line = dev->source_line();
      d.object = dev->name();
      d.message = "FeFET '" + dev->name() + "' memory window shrinks to " +
                  fmt(min_mw) + " V at " + fmt(min_mw_temp) +
                  " degC, below the " + fmt(ctx.options.min_memory_window) +
                  " V minimum for reliable sensing";
      d.hint =
          "the paper's reference window is 1.45 V at 27 degC; check the "
          "programming pulse amplitude/width";
      out.add(std::move(d));
    }
    if (min_low_vth <= 0.0) {
      Diagnostic d;
      d.rule = "vth-temp-drift";
      d.severity = Severity::kWarning;
      d.line = dev->source_line();
      d.object = dev->name();
      d.message = "FeFET '" + dev->name() +
                  "' programmed (low-VTH) state drifts to " +
                  fmt(min_low_vth) + " V at " + fmt(min_low_temp) +
                  " degC: the cell conducts even with its wordline at 0 V "
                  "and leaks into the bitline when deselected";
      d.hint = "raise vthlow or reduce the channel tc_vth magnitude";
      out.add(std::move(d));
    }
  }
}

void cim_array_shape(const LintContext& ctx, LintReport& out) {
  const auto groups = group_by_drain(ctx.circuit);
  const NodeIncidence& incidence = ctx.analyses.incidence();

  // Ragged-array bookkeeping across all bitlines (>= 2 cells each).
  NodeId first_bl = spice::kGround;
  std::size_t first_count = 0;

  for (const auto& [bl, cells] : groups) {
    if (cells.size() < 2) continue;  // not a bitline, just one cell

    // Duplicate wordline: two cells on one bitline sharing a gate node
    // would add their weight twice into the MAC sum.
    std::map<NodeId, const fefet::FeFet*> by_gate;
    for (const fefet::FeFet* z : cells) {
      const NodeId gate = z->terminals()[1];
      const auto [it, inserted] = by_gate.emplace(gate, z);
      if (inserted) continue;
      Diagnostic d;
      d.rule = "cim-array-shape";
      d.severity = Severity::kError;
      d.line = z->source_line();
      d.object = z->name();
      d.message = "cells '" + it->second->name() + "' and '" + z->name() +
                  "' on bitline '" + ctx.circuit.node_name(bl) +
                  "' share wordline '" + ctx.circuit.node_name(gate) + "'";
      d.hint =
          "each wordline may select at most one cell per bitline, or its "
          "input counts twice in the analog MAC sum";
      out.add(std::move(d));
    }

    // Sense / reference branch: the bitline must connect to something
    // besides the cells themselves, or the accumulated current has
    // nowhere to be read (Fig. 2's sense resistor / charge-share cap).
    bool has_sense = false;
    for (const auto& touch :
         incidence.touches[static_cast<std::size_t>(bl)]) {
      if (dynamic_cast<const fefet::FeFet*>(touch.device) == nullptr) {
        has_sense = true;
        break;
      }
    }
    if (!has_sense) {
      Diagnostic d;
      d.rule = "cim-array-shape";
      d.severity = Severity::kError;
      d.line = cells.front()->source_line();
      d.object = ctx.circuit.node_name(bl);
      d.message = "bitline '" + ctx.circuit.node_name(bl) + "' has " +
                  std::to_string(cells.size()) +
                  " FeFET cells but no sense or reference branch";
      d.hint =
          "attach the read source / sense network to the bitline (the "
          "paper's VBL + series sense path)";
      out.add(std::move(d));
    }

    if (first_count == 0) {
      first_bl = bl;
      first_count = cells.size();
    } else if (cells.size() != first_count) {
      Diagnostic d;
      d.rule = "cim-array-shape";
      d.severity = Severity::kWarning;
      d.line = cells.front()->source_line();
      d.object = ctx.circuit.node_name(bl);
      d.message = "CiM array is ragged: bitline '" +
                  ctx.circuit.node_name(first_bl) + "' has " +
                  std::to_string(first_count) + " cells but bitline '" +
                  ctx.circuit.node_name(bl) + "' has " +
                  std::to_string(cells.size());
      d.hint =
          "pad missing cells with erased (high-VTH) devices so every "
          "column sees the same wordline fan-in";
      out.add(std::move(d));
    }
  }
}

void adc_range(const LintContext& ctx, LintReport& out) {
  const OperatingIntervals& iv = ctx.analyses.intervals();
  for (const auto& [bl, cells] : group_by_drain(ctx.circuit)) {
    if (cells.size() < 2) continue;
    const Interval v = iv.envelope_at(bl);
    if (!v.is_bounded()) {
      Diagnostic d;
      d.rule = "adc-range";
      d.severity = Severity::kNote;
      d.line = cells.front()->source_line();
      d.object = ctx.circuit.node_name(bl);
      d.message = "readout node '" + ctx.circuit.node_name(bl) +
                  "' is not statically boundable (" + v.str() +
                  "); ADC range compliance cannot be proved";
      d.hint =
          "drive the bitline from voltage sources through resistive paths "
          "to make its swing checkable";
      out.add(std::move(d));
      continue;
    }
    const double full = ctx.options.adc_full_scale;
    const double tol = ctx.options.adc_tolerance;
    if (v.hi() > full + tol || v.lo() < -tol) {
      Diagnostic d;
      d.rule = "adc-range";
      d.severity = Severity::kWarning;
      d.line = cells.front()->source_line();
      d.object = ctx.circuit.node_name(bl);
      d.message = "readout node '" + ctx.circuit.node_name(bl) +
                  "' may swing over " + v.str() +
                  " V, outside the ADC full scale [0, " + fmt(full) + "] V";
      d.hint =
          "rescale the bitline bias or the sense gain (CimConfig::v_bl); "
          "codes past full scale clip and corrupt the MAC result";
      out.add(std::move(d));
    }
  }
}

}  // namespace passes
}  // namespace sfc::lint
