#include "lint/rules.hpp"

#include <cstdio>
#include <numeric>
#include <string>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "fefet/fefet.hpp"
#include "spice/primitives.hpp"

namespace sfc::lint {
namespace {

using spice::Device;
using spice::NodeId;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// ------------------------------------------------------------------ utils

/// Union-find over node ids 0..n-1 plus ground at slot n.
class Dsu {
 public:
  explicit Dsu(std::size_t slots) : parent_(slots) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

std::size_t slot(NodeId n, std::size_t num_nodes) {
  return n == spice::kGround ? num_nodes : static_cast<std::size_t>(n);
}

/// Node pairs a device conducts DC current between. `caps_conduct` folds
/// capacitors into the graph (transient decks: the companion model makes
/// them conductive, and an IC pins the node voltage).
std::vector<std::pair<NodeId, NodeId>> conduction_edges(const Device& dev,
                                                        bool caps_conduct) {
  const auto t = dev.terminals();
  using Pair = std::pair<NodeId, NodeId>;
  if (dynamic_cast<const spice::Resistor*>(&dev) ||
      dynamic_cast<const spice::Inductor*>(&dev) ||
      dynamic_cast<const spice::VSource*>(&dev)) {
    return {Pair{t[0], t[1]}};
  }
  if (dynamic_cast<const spice::Capacitor*>(&dev)) {
    if (caps_conduct) return {Pair{t[0], t[1]}};
    return {};
  }
  if (dynamic_cast<const spice::ISource*>(&dev)) return {};
  if (dynamic_cast<const spice::Vccs*>(&dev)) return {};
  if (dynamic_cast<const spice::Vcvs*>(&dev)) {
    return {Pair{t[0], t[1]}};  // output branch is voltage-defined
  }
  if (dynamic_cast<const spice::VSwitch*>(&dev)) {
    return {Pair{t[0], t[1]}};  // finite r_off: always a resistive path
  }
  if (dynamic_cast<const devices::Diode*>(&dev)) {
    return {Pair{t[0], t[1]}};
  }
  if (dynamic_cast<const devices::Mosfet*>(&dev)) {
    // Drain-source channel conducts; the gate is an open circuit (a
    // floating gate is exactly what the reachability rule must catch).
    return {Pair{t[0], t[2]}};
  }
  // Unknown device type: assume every terminal pair conducts. Being
  // permissive here keeps the rule free of false positives on devices the
  // analyzer has never heard of.
  std::vector<Pair> all;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) all.emplace_back(t[i], t[i + 1]);
  return all;
}

/// True for devices whose branch voltage is fixed independent of current:
/// chaining them into a loop (or shorting one) makes the MNA matrix
/// singular. Inductors count — they are DC shorts.
bool is_voltage_defined(const Device& dev) {
  return dynamic_cast<const spice::VSource*>(&dev) != nullptr ||
         dynamic_cast<const spice::Vcvs*>(&dev) != nullptr ||
         dynamic_cast<const spice::Inductor*>(&dev) != nullptr;
}

std::pair<NodeId, NodeId> voltage_branch(const Device& dev) {
  const auto t = dev.terminals();
  return {t[0], t[1]};
}

// ------------------------------------------------------------------ rules

void rule_floating_node(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  const std::size_t n = c.num_nodes();
  if (n == 0) return;
  const bool caps_conduct = !ctx.deck || !ctx.deck->tran.empty();
  Dsu dsu(n + 1);
  for (const auto& dev : c.devices()) {
    for (const auto& [a, b] : conduction_edges(*dev, caps_conduct)) {
      dsu.unite(slot(a, n), slot(b, n));
    }
  }
  const std::size_t ground = dsu.find(n);
  // One diagnostic per disconnected island, anchored at its first device.
  std::vector<char> reported(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (ctx.incidence.touches[i].empty()) continue;  // unused-node's job
    const std::size_t root = dsu.find(i);
    if (root == ground || reported[root]) continue;
    reported[root] = 1;
    std::string nodes;
    std::size_t line = 0;
    for (std::size_t j = i; j < n; ++j) {
      if (dsu.find(j) != root || ctx.incidence.touches[j].empty()) continue;
      if (!nodes.empty()) nodes += "', '";
      nodes += c.node_name(static_cast<NodeId>(j));
      for (const auto& touch : ctx.incidence.touches[j]) {
        const std::size_t l = touch.device->source_line();
        if (l && (line == 0 || l < line)) line = l;
      }
    }
    Diagnostic d;
    d.rule = "floating-node";
    d.severity = Severity::kError;
    d.line = line;
    d.object = c.node_name(static_cast<NodeId>(i));
    d.message = "node(s) '" + nodes + "' have no DC path to ground";
    d.hint =
        "add a resistive path to ground or reference the island from a "
        "source; the solver would otherwise rely on gmin leakage and can "
        "report a singular matrix";
    out.add(std::move(d));
  }
}

void rule_vsource_loop(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  const std::size_t n = c.num_nodes();
  Dsu dsu(n + 1);
  for (const auto& dev : c.devices()) {
    if (!is_voltage_defined(*dev)) continue;
    const auto [a, b] = voltage_branch(*dev);
    const std::size_t sa = slot(a, n);
    const std::size_t sb = slot(b, n);
    Diagnostic d;
    d.rule = "vsource-loop";
    d.severity = Severity::kError;
    d.line = dev->source_line();
    d.object = dev->name();
    if (sa == sb) {
      d.message = "both terminals of voltage-defined device '" + dev->name() +
                  "' connect to node '" + c.node_name(a) + "' (shorted)";
      d.hint = "remove the device or separate its terminals";
      out.add(std::move(d));
      continue;
    }
    if (dsu.find(sa) == dsu.find(sb)) {
      d.message = "voltage-defined loop closed by '" + dev->name() +
                  "' between nodes '" + c.node_name(a) + "' and '" +
                  c.node_name(b) + "'";
      d.hint =
          "voltage sources, VCVS outputs and inductors fix branch voltages; "
          "a loop of them over-determines the system — insert a series "
          "resistance";
      out.add(std::move(d));
      continue;
    }
    dsu.unite(sa, sb);
  }
}

void rule_dangling_terminal(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  for (std::size_t i = 0; i < ctx.incidence.touches.size(); ++i) {
    const auto& touches = ctx.incidence.touches[i];
    if (touches.size() != 1) continue;
    const auto& touch = touches.front();
    Diagnostic d;
    d.rule = "dangling-terminal";
    d.severity = Severity::kWarning;
    d.line = touch.device->source_line();
    d.object = touch.device->name();
    d.message = "node '" + c.node_name(static_cast<NodeId>(i)) +
                "' is touched only by terminal " +
                std::to_string(touch.terminal) + " of '" +
                touch.device->name() + "'";
    d.hint = "connect the node to the rest of the circuit or drop the device";
    out.add(std::move(d));
  }
}

void rule_unused_node(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  for (std::size_t i = 0; i < ctx.incidence.touches.size(); ++i) {
    if (!ctx.incidence.touches[i].empty()) continue;
    Diagnostic d;
    d.rule = "unused-node";
    d.severity = Severity::kNote;
    d.object = c.node_name(static_cast<NodeId>(i));
    d.message = "node '" + d.object + "' is declared but no device touches it";
    d.hint = "drop the node or wire a device to it";
    out.add(std::move(d));
  }
}

void rule_fefet_vth_window(const LintContext& ctx, LintReport& out) {
  for (const auto& dev : ctx.circuit.devices()) {
    const auto* z = dynamic_cast<const fefet::FeFet*>(dev.get());
    if (!z) continue;
    const fefet::PreisachParams& p = z->ferroelectric().params();
    if (p.vth_low < p.vth_high) continue;
    Diagnostic d;
    d.rule = "fefet-vth-window";
    d.severity = Severity::kError;
    d.line = dev->source_line();
    d.object = dev->name();
    d.message = "FeFET '" + dev->name() + "' has vthlow (" + fmt(p.vth_low) +
                " V) >= vthhigh (" + fmt(p.vth_high) +
                " V): the memory window is empty or inverted";
    d.hint = "swap or widen the thresholds (paper reference: 0.25 V / 1.7 V)";
    out.add(std::move(d));
  }
}

void rule_nonpositive_value(const LintContext& ctx, LintReport& out) {
  const auto flag = [&out](const Device& dev, const std::string& what,
                           double v) {
    Diagnostic d;
    d.rule = "nonpositive-value";
    d.severity = Severity::kError;
    d.line = dev.source_line();
    d.object = dev.name();
    d.message = "device '" + dev.name() + "' has non-positive " + what +
                " (" + fmt(v) + ")";
    d.hint = "physical element values must be > 0";
    out.add(std::move(d));
  };
  for (const auto& dev : ctx.circuit.devices()) {
    if (const auto* r = dynamic_cast<const spice::Resistor*>(dev.get())) {
      if (r->resistance() <= 0.0) flag(*dev, "resistance", r->resistance());
    } else if (const auto* c = dynamic_cast<const spice::Capacitor*>(dev.get())) {
      if (c->capacitance() <= 0.0) flag(*dev, "capacitance", c->capacitance());
    } else if (const auto* l = dynamic_cast<const spice::Inductor*>(dev.get())) {
      if (l->inductance() <= 0.0) flag(*dev, "inductance", l->inductance());
    } else if (const auto* s = dynamic_cast<const spice::VSwitch*>(dev.get())) {
      if (s->params().r_on <= 0.0) flag(*dev, "on-resistance", s->params().r_on);
      if (s->params().r_off <= 0.0) {
        flag(*dev, "off-resistance", s->params().r_off);
      }
    } else if (const auto* m = dynamic_cast<const devices::Mosfet*>(dev.get())) {
      if (m->params().w <= 0.0) flag(*dev, "channel width", m->params().w);
      if (m->params().l <= 0.0) flag(*dev, "channel length", m->params().l);
    }
  }
}

void rule_tran_step(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck) return;
  for (const spice::TranDirective& tr : ctx.deck->tran) {
    std::string problem;
    if (tr.dt <= 0.0) {
      problem = ".tran step " + fmt(tr.dt) + " s must be positive";
    } else if (tr.t_stop <= 0.0) {
      problem = ".tran stop time " + fmt(tr.t_stop) + " s must be positive";
    } else if (tr.dt > tr.t_stop) {
      problem = ".tran step " + fmt(tr.dt) + " s exceeds stop time " +
                fmt(tr.t_stop) + " s";
    }
    if (problem.empty()) continue;
    Diagnostic d;
    d.rule = "tran-step";
    d.severity = Severity::kError;
    d.line = tr.line;
    d.object = ".tran";
    d.message = std::move(problem);
    d.hint = "use 0 < dt <= t_stop";
    out.add(std::move(d));
  }
}

void rule_temp_range(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck || !ctx.deck->has_temperature) return;
  const double t = ctx.deck->temperature_c;
  if (t >= 0.0 && t <= 85.0) return;
  Diagnostic d;
  d.rule = "temp-range";
  d.severity = Severity::kWarning;
  d.line = ctx.deck->temperature_line;
  d.object = ".temp";
  d.message = ".temp " + fmt(t) +
              " degC is outside the paper's validated 0-85 degC envelope";
  d.hint =
      "device models are calibrated for 0-85 degC (DATE'24 Figs. 1-9); "
      "results outside it are extrapolations";
  out.add(std::move(d));
}

void rule_unused_model(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck) return;
  for (const spice::ModelDef& m : ctx.deck->models) {
    if (m.uses > 0) continue;
    Diagnostic d;
    d.rule = "unused-model";
    d.severity = Severity::kWarning;
    d.line = m.line;
    d.object = m.name;
    d.message = ".model '" + m.name + "' is defined but never instantiated";
    d.hint = "remove the model card or reference it from an M card";
    out.add(std::move(d));
  }
}

void rule_dc_sweep_source(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck) return;
  for (const spice::DcSweepDirective& dc : ctx.deck->dc) {
    const Device* dev = ctx.circuit.find(dc.source);
    std::string problem;
    if (!dev) {
      problem = ".dc sweeps unknown source '" + dc.source + "'";
    } else if (!dynamic_cast<const spice::VSource*>(dev)) {
      problem = ".dc sweep target '" + dc.source + "' is not a voltage source";
    } else if (dc.step == 0.0) {
      problem = ".dc step is zero (sweep would never terminate)";
    }
    if (problem.empty()) continue;
    Diagnostic d;
    d.rule = "dc-sweep-source";
    d.severity = Severity::kError;
    d.line = dc.line;
    d.object = dc.source;
    d.message = std::move(problem);
    d.hint = "name a V card and use a non-zero step";
    out.add(std::move(d));
  }
}

void rule_empty_deck(const LintContext& ctx, LintReport& out) {
  if (!ctx.circuit.devices().empty()) return;
  Diagnostic d;
  d.rule = "empty-deck";
  d.severity = Severity::kNote;
  d.object = "";
  d.message = "netlist defines no devices";
  d.hint = "";
  out.add(std::move(d));
}

}  // namespace

NodeIncidence NodeIncidence::build(const spice::Circuit& circuit) {
  NodeIncidence inc;
  inc.touches.resize(circuit.num_nodes());
  for (const auto& dev : circuit.devices()) {
    const auto terms = dev->terminals();
    for (std::size_t k = 0; k < terms.size(); ++k) {
      if (terms[k] == spice::kGround) continue;
      inc.touches[static_cast<std::size_t>(terms[k])].push_back(
          Touch{dev.get(), k});
    }
  }
  return inc;
}

const std::vector<Rule>& builtin_rules() {
  static const std::vector<Rule> rules = {
      {"floating-node", Severity::kError,
       "a node (island) has no DC path to ground", rule_floating_node},
      {"vsource-loop", Severity::kError,
       "loop or short of voltage-defined branches (V/E/L)",
       rule_vsource_loop},
      {"dangling-terminal", Severity::kWarning,
       "a node is touched by exactly one device terminal",
       rule_dangling_terminal},
      {"unused-node", Severity::kNote,
       "a declared node is touched by no device", rule_unused_node},
      {"fefet-vth-window", Severity::kError,
       "FeFET programmed window has vthlow >= vthhigh",
       rule_fefet_vth_window},
      {"nonpositive-value", Severity::kError,
       "non-positive R/C/L or MOSFET/FeFET W/L", rule_nonpositive_value},
      {"tran-step", Severity::kError, ".tran with dt <= 0 or dt > t_stop",
       rule_tran_step},
      {"temp-range", Severity::kWarning,
       ".temp outside the validated 0-85 degC envelope", rule_temp_range},
      {"unused-model", Severity::kWarning, ".model defined but never used",
       rule_unused_model},
      {"dc-sweep-source", Severity::kError,
       ".dc target missing, not a V source, or zero step",
       rule_dc_sweep_source},
      {"empty-deck", Severity::kNote, "netlist defines no devices",
       rule_empty_deck},
  };
  return rules;
}

const std::vector<ParseRuleInfo>& parse_rules() {
  static const std::vector<ParseRuleInfo> rules = {
      {"duplicate-device", "device name redefined (both lines reported)"},
      {"duplicate-model", ".model name redefined (both lines reported)"},
      {"duplicate-subckt", ".subckt name redefined (both lines reported)"},
      {"undefined-model", "M card references a model never defined"},
      {"undefined-subckt", "X card references a subcircuit never defined"},
      {"subckt-port-mismatch", "X card node count != .subckt port count"},
      {"nonpositive-value", "device card with a non-positive element value"},
      {"unknown-card", "unrecognized device card letter"},
      {"unknown-directive", "unrecognized dot directive"},
      {"parse-error", "malformed card (missing node/value, bad number, ...)"},
  };
  return rules;
}

}  // namespace sfc::lint
