#include "lint/rules.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "fefet/fefet.hpp"
#include "spice/primitives.hpp"

namespace sfc::lint {
namespace {

using spice::Device;
using spice::NodeId;

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// ------------------------------------------------------------------ rules

void rule_floating_node(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  const std::size_t n = c.num_nodes();
  if (n == 0) return;
  const bool caps_conduct = !ctx.deck || !ctx.deck->tran.empty();
  const ConductionComponents& comps = ctx.analyses.components(caps_conduct);
  const NodeIncidence& incidence = ctx.analyses.incidence();
  const std::size_t ground = comps.component_of(spice::kGround);
  // One diagnostic per disconnected island, anchored at its first device.
  std::unordered_set<std::size_t> reported;
  for (std::size_t i = 0; i < n; ++i) {
    if (incidence.touches[i].empty()) continue;  // unused-node's job
    const std::size_t root = comps.root[i];
    if (root == ground || reported.count(root) != 0) continue;
    reported.insert(root);
    std::string nodes;
    std::size_t line = 0;
    for (std::size_t j = i; j < n; ++j) {
      if (comps.root[j] != root || incidence.touches[j].empty()) continue;
      if (!nodes.empty()) nodes += "', '";
      nodes += c.node_name(static_cast<NodeId>(j));
      for (const auto& touch : incidence.touches[j]) {
        const std::size_t l = touch.device->source_line();
        if (l && (line == 0 || l < line)) line = l;
      }
    }
    Diagnostic d;
    d.rule = "floating-node";
    d.severity = Severity::kError;
    d.line = line;
    d.object = c.node_name(static_cast<NodeId>(i));
    d.message = "node(s) '" + nodes + "' have no DC path to ground";
    d.hint =
        "add a resistive path to ground or reference the island from a "
        "source; the solver would otherwise rely on gmin leakage and can "
        "report a singular matrix";
    out.add(std::move(d));
  }
}

void rule_vsource_loop(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  const std::size_t n = c.num_nodes();
  Dsu dsu(n + 1);
  for (const auto& dev : c.devices()) {
    if (!is_voltage_defined(*dev)) continue;
    const auto [a, b] = voltage_branch(*dev);
    const std::size_t sa = node_slot(a, n);
    const std::size_t sb = node_slot(b, n);
    Diagnostic d;
    d.rule = "vsource-loop";
    d.severity = Severity::kError;
    d.line = dev->source_line();
    d.object = dev->name();
    if (sa == sb) {
      d.message = "both terminals of voltage-defined device '" + dev->name() +
                  "' connect to node '" + c.node_name(a) + "' (shorted)";
      d.hint = "remove the device or separate its terminals";
      out.add(std::move(d));
      continue;
    }
    if (dsu.find(sa) == dsu.find(sb)) {
      d.message = "voltage-defined loop closed by '" + dev->name() +
                  "' between nodes '" + c.node_name(a) + "' and '" +
                  c.node_name(b) + "'";
      d.hint =
          "voltage sources, VCVS outputs and inductors fix branch voltages; "
          "a loop of them over-determines the system — insert a series "
          "resistance";
      out.add(std::move(d));
      continue;
    }
    dsu.unite(sa, sb);
  }
}

void rule_dangling_terminal(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  const NodeIncidence& incidence = ctx.analyses.incidence();
  for (std::size_t i = 0; i < incidence.touches.size(); ++i) {
    const auto& touches = incidence.touches[i];
    if (touches.size() != 1) continue;
    const auto& touch = touches.front();
    Diagnostic d;
    d.rule = "dangling-terminal";
    d.severity = Severity::kWarning;
    d.line = touch.device->source_line();
    d.object = touch.device->name();
    d.message = "node '" + c.node_name(static_cast<NodeId>(i)) +
                "' is touched only by terminal " +
                std::to_string(touch.terminal) + " of '" +
                touch.device->name() + "'";
    d.hint = "connect the node to the rest of the circuit or drop the device";
    out.add(std::move(d));
  }
}

void rule_unused_node(const LintContext& ctx, LintReport& out) {
  const spice::Circuit& c = ctx.circuit;
  const NodeIncidence& incidence = ctx.analyses.incidence();
  for (std::size_t i = 0; i < incidence.touches.size(); ++i) {
    if (!incidence.touches[i].empty()) continue;
    Diagnostic d;
    d.rule = "unused-node";
    d.severity = Severity::kNote;
    d.object = c.node_name(static_cast<NodeId>(i));
    d.message = "node '" + d.object + "' is declared but no device touches it";
    d.hint = "drop the node or wire a device to it";
    out.add(std::move(d));
  }
}

void rule_fefet_vth_window(const LintContext& ctx, LintReport& out) {
  for (const auto& dev : ctx.circuit.devices()) {
    const auto* z = dynamic_cast<const fefet::FeFet*>(dev.get());
    if (!z) continue;
    const fefet::PreisachParams& p = z->ferroelectric().params();
    if (p.vth_low < p.vth_high) continue;
    Diagnostic d;
    d.rule = "fefet-vth-window";
    d.severity = Severity::kError;
    d.line = dev->source_line();
    d.object = dev->name();
    d.message = "FeFET '" + dev->name() + "' has vthlow (" + fmt(p.vth_low) +
                " V) >= vthhigh (" + fmt(p.vth_high) +
                " V): the memory window is empty or inverted";
    d.hint = "swap or widen the thresholds (paper reference: 0.25 V / 1.7 V)";
    out.add(std::move(d));
  }
}

void rule_nonpositive_value(const LintContext& ctx, LintReport& out) {
  const auto flag = [&out](const Device& dev, const std::string& what,
                           double v) {
    Diagnostic d;
    d.rule = "nonpositive-value";
    d.severity = Severity::kError;
    d.line = dev.source_line();
    d.object = dev.name();
    d.message = "device '" + dev.name() + "' has non-positive " + what +
                " (" + fmt(v) + ")";
    d.hint = "physical element values must be > 0";
    out.add(std::move(d));
  };
  for (const auto& dev : ctx.circuit.devices()) {
    if (const auto* r = dynamic_cast<const spice::Resistor*>(dev.get())) {
      if (r->resistance() <= 0.0) flag(*dev, "resistance", r->resistance());
    } else if (const auto* c = dynamic_cast<const spice::Capacitor*>(dev.get())) {
      if (c->capacitance() <= 0.0) flag(*dev, "capacitance", c->capacitance());
    } else if (const auto* l = dynamic_cast<const spice::Inductor*>(dev.get())) {
      if (l->inductance() <= 0.0) flag(*dev, "inductance", l->inductance());
    } else if (const auto* s = dynamic_cast<const spice::VSwitch*>(dev.get())) {
      if (s->params().r_on <= 0.0) flag(*dev, "on-resistance", s->params().r_on);
      if (s->params().r_off <= 0.0) {
        flag(*dev, "off-resistance", s->params().r_off);
      }
    } else if (const auto* m = dynamic_cast<const devices::Mosfet*>(dev.get())) {
      if (m->params().w <= 0.0) flag(*dev, "channel width", m->params().w);
      if (m->params().l <= 0.0) flag(*dev, "channel length", m->params().l);
    }
  }
}

void rule_tran_step(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck) return;
  for (const spice::TranDirective& tr : ctx.deck->tran) {
    std::string problem;
    if (tr.dt <= 0.0) {
      problem = ".tran step " + fmt(tr.dt) + " s must be positive";
    } else if (tr.t_stop <= 0.0) {
      problem = ".tran stop time " + fmt(tr.t_stop) + " s must be positive";
    } else if (tr.dt > tr.t_stop) {
      problem = ".tran step " + fmt(tr.dt) + " s exceeds stop time " +
                fmt(tr.t_stop) + " s";
    }
    if (problem.empty()) continue;
    Diagnostic d;
    d.rule = "tran-step";
    d.severity = Severity::kError;
    d.line = tr.line;
    d.object = ".tran";
    d.message = std::move(problem);
    d.hint = "use 0 < dt <= t_stop";
    out.add(std::move(d));
  }
}

void rule_temp_range(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck || !ctx.deck->has_temperature) return;
  const double t = ctx.deck->temperature_c;
  if (t >= 0.0 && t <= 85.0) return;
  Diagnostic d;
  d.rule = "temp-range";
  d.severity = Severity::kWarning;
  d.line = ctx.deck->temperature_line;
  d.object = ".temp";
  d.message = ".temp " + fmt(t) +
              " degC is outside the paper's validated 0-85 degC envelope";
  d.hint =
      "device models are calibrated for 0-85 degC (DATE'24 Figs. 1-9); "
      "results outside it are extrapolations";
  out.add(std::move(d));
}

void rule_unused_model(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck) return;
  for (const spice::ModelDef& m : ctx.deck->models) {
    if (m.uses > 0) continue;
    Diagnostic d;
    d.rule = "unused-model";
    d.severity = Severity::kWarning;
    d.line = m.line;
    d.object = m.name;
    d.message = ".model '" + m.name + "' is defined but never instantiated";
    d.hint = "remove the model card or reference it from an M card";
    out.add(std::move(d));
  }
}

void rule_dc_sweep_source(const LintContext& ctx, LintReport& out) {
  if (!ctx.deck) return;
  for (const spice::DcSweepDirective& dc : ctx.deck->dc) {
    const Device* dev = ctx.circuit.find(dc.source);
    std::string problem;
    if (!dev) {
      problem = ".dc sweeps unknown source '" + dc.source + "'";
    } else if (!dynamic_cast<const spice::VSource*>(dev)) {
      problem = ".dc sweep target '" + dc.source + "' is not a voltage source";
    } else if (dc.step == 0.0) {
      problem = ".dc step is zero (sweep would never terminate)";
    }
    if (problem.empty()) continue;
    Diagnostic d;
    d.rule = "dc-sweep-source";
    d.severity = Severity::kError;
    d.line = dc.line;
    d.object = dc.source;
    d.message = std::move(problem);
    d.hint = "name a V card and use a non-zero step";
    out.add(std::move(d));
  }
}

void rule_empty_deck(const LintContext& ctx, LintReport& out) {
  if (!ctx.circuit.devices().empty()) return;
  Diagnostic d;
  d.rule = "empty-deck";
  d.severity = Severity::kNote;
  d.object = "";
  d.message = "netlist defines no devices";
  d.hint = "";
  out.add(std::move(d));
}

}  // namespace

const std::vector<Rule>& builtin_rules() {
  static const std::vector<Rule> rules = {
      {"floating-node", Severity::kError,
       "a node (island) has no DC path to ground", rule_floating_node},
      {"vsource-loop", Severity::kError,
       "loop or short of voltage-defined branches (V/E/L)",
       rule_vsource_loop},
      {"dangling-terminal", Severity::kWarning,
       "a node is touched by exactly one device terminal",
       rule_dangling_terminal},
      {"unused-node", Severity::kNote,
       "a declared node is touched by no device", rule_unused_node},
      {"fefet-vth-window", Severity::kError,
       "FeFET programmed window has vthlow >= vthhigh",
       rule_fefet_vth_window},
      {"nonpositive-value", Severity::kError,
       "non-positive R/C/L or MOSFET/FeFET W/L", rule_nonpositive_value},
      {"tran-step", Severity::kError, ".tran with dt <= 0 or dt > t_stop",
       rule_tran_step},
      {"temp-range", Severity::kWarning,
       ".temp outside the validated 0-85 degC envelope", rule_temp_range},
      {"unused-model", Severity::kWarning, ".model defined but never used",
       rule_unused_model},
      {"dc-sweep-source", Severity::kError,
       ".dc target missing, not a V source, or zero step",
       rule_dc_sweep_source},
      {"subthreshold-window", Severity::kError,
       "FeFET gate bias may leave the subthreshold read window over the "
       "deck's temperature range",
       passes::subthreshold_window},
      {"vth-temp-drift", Severity::kError,
       "FeFET memory window collapses or thresholds invert over 0-85 degC",
       passes::vth_temp_drift},
      {"cim-array-shape", Severity::kError,
       "CiM bitline with duplicated wordlines, ragged rows, or no sense "
       "branch",
       passes::cim_array_shape},
      {"adc-range", Severity::kWarning,
       "readout node interval exceeds the configured ADC full scale",
       passes::adc_range},
      {"empty-deck", Severity::kNote, "netlist defines no devices",
       rule_empty_deck},
  };
  return rules;
}

void validate_rule_table(const std::vector<Rule>& rules) {
  std::unordered_set<std::string> seen;
  for (const Rule& r : rules) {
    if (!seen.insert(r.id).second) {
      throw std::invalid_argument("lint: duplicate rule id '" +
                                  std::string(r.id) +
                                  "' in rule table (registration would be "
                                  "silently shadowed)");
    }
  }
}

const std::vector<ParseRuleInfo>& parse_rules() {
  static const std::vector<ParseRuleInfo> rules = {
      {"duplicate-device", "device name redefined (both lines reported)"},
      {"duplicate-model", ".model name redefined (both lines reported)"},
      {"duplicate-subckt", ".subckt name redefined (both lines reported)"},
      {"undefined-model", "M card references a model never defined"},
      {"undefined-subckt", "X card references a subcircuit never defined"},
      {"subckt-port-mismatch", "X card node count != .subckt port count"},
      {"nonpositive-value", "device card with a non-positive element value"},
      {"unknown-card", "unrecognized device card letter"},
      {"unknown-directive", "unrecognized dot directive"},
      {"parse-error", "malformed card (missing node/value, bad number, ...)"},
  };
  return rules;
}

}  // namespace sfc::lint
