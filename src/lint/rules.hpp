// Electrical-rule-check passes over a parsed Circuit (+ optional
// NetlistDeck). Each rule is a pure static-analysis function: it inspects
// the circuit topology / device parameters / deck directives and appends
// Diagnostic records — no solve is ever attempted. The Linter (linter.hpp)
// owns the pipeline order and the enable/disable set.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/diagnostics.hpp"
#include "spice/circuit.hpp"
#include "spice/netlist.hpp"

namespace sfc::lint {

/// Terminal incidence of every non-ground node, shared by the topology
/// rules so each pass does not rebuild it.
struct NodeIncidence {
  struct Touch {
    const spice::Device* device = nullptr;
    std::size_t terminal = 0;  ///< index into Device::terminals()
  };
  /// Indexed by NodeId; ground is excluded (always well-connected).
  std::vector<std::vector<Touch>> touches;

  static NodeIncidence build(const spice::Circuit& circuit);
};

struct LintContext {
  const spice::Circuit& circuit;
  /// Directives of the deck the circuit came from; nullptr when linting an
  /// API-built circuit (directive rules then no-op, and capacitors are
  /// treated as conductive for reachability — the caller may legitimately
  /// intend a transient).
  const spice::NetlistDeck* deck = nullptr;
  NodeIncidence incidence;
};

struct Rule {
  const char* id;
  Severity severity;  ///< severity the rule emits at
  const char* description;
  void (*run)(const LintContext&, LintReport&);
};

/// The built-in circuit/deck pass pipeline, in execution order.
const std::vector<Rule>& builtin_rules();

/// Rules enforced during parse_netlist itself (surfaced by lint_source as
/// diagnostics via spice::NetlistError::rule()). Listed here so the CLI
/// rule table and the docs cover the full rule set.
struct ParseRuleInfo {
  const char* id;
  const char* description;
};
const std::vector<ParseRuleInfo>& parse_rules();

}  // namespace sfc::lint
