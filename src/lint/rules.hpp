// Electrical-rule-check and semantic analysis passes over a parsed
// Circuit (+ optional NetlistDeck). Each rule is a pure static-analysis
// function: it inspects the circuit topology / device parameters / deck
// directives — or the shared analyses cached by the AnalysisManager
// (analysis.hpp) — and appends Diagnostic records. No solve is ever
// attempted. The Linter (linter.hpp) owns the pipeline order and the
// enable/disable set.
#pragma once

#include <cstddef>
#include <vector>

#include "lint/analysis.hpp"
#include "lint/diagnostics.hpp"
#include "spice/circuit.hpp"
#include "spice/netlist.hpp"

namespace sfc::lint {

/// Thresholds consumed by the semantic passes. Defaults mirror the
/// paper's operating point and the CiM defaults in cim/config.hpp.
struct LintOptions {
  /// subthreshold-window: required head-room between the worst-case FeFET
  /// gate-source bias and the high-VTH (erased) state threshold [V].
  double subthreshold_margin = 0.1;
  /// vth-temp-drift: minimum acceptable memory window anywhere in the
  /// temperature range [V].
  double min_memory_window = 0.2;
  /// adc-range: readout full scale [V]; mirrors cim::CimConfig::v_bl.
  double adc_full_scale = 1.2;
  /// adc-range: slack added to the full scale before flagging [V].
  double adc_tolerance = 1e-6;
};

struct LintContext {
  const spice::Circuit& circuit;
  /// Directives of the deck the circuit came from; nullptr when linting an
  /// API-built circuit (directive rules then no-op, and capacitors are
  /// treated as conductive for reachability — the caller may legitimately
  /// intend a transient).
  const spice::NetlistDeck* deck = nullptr;
  /// Shared analyses (incidence, conduction graphs, operating intervals),
  /// computed lazily and cached across the pass pipeline.
  AnalysisManager& analyses;
  LintOptions options;
};

struct Rule {
  const char* id;
  Severity severity;  ///< severity the rule emits at
  const char* description;
  void (*run)(const LintContext&, LintReport&);
};

/// The built-in circuit/deck pass pipeline, in execution order.
const std::vector<Rule>& builtin_rules();

/// Throws std::invalid_argument when two rules share an id. Run by the
/// Linter constructor over the table it was built with, so a bad custom
/// or edited rule set fails loudly instead of silently shadowing in
/// index_of.
void validate_rule_table(const std::vector<Rule>& rules);

/// Rules enforced during parse_netlist itself (surfaced by lint_source as
/// diagnostics via spice::NetlistError::rule()). Listed here so the CLI
/// rule table and the docs cover the full rule set.
struct ParseRuleInfo {
  const char* id;
  const char* description;
};
const std::vector<ParseRuleInfo>& parse_rules();

/// Semantic passes (passes_semantic.cpp), registered in builtin_rules()
/// and exposed for targeted tests.
namespace passes {
void subthreshold_window(const LintContext& ctx, LintReport& out);
void vth_temp_drift(const LintContext& ctx, LintReport& out);
void cim_array_shape(const LintContext& ctx, LintReport& out);
void adc_range(const LintContext& ctx, LintReport& out);
}  // namespace passes

}  // namespace sfc::lint
