#include "lint/linter.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sfc::lint {

Linter::Linter() : enabled_(builtin_rules().size(), true) {}

std::size_t Linter::index_of(const std::string& rule_id) const {
  const auto& rules = builtin_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rule_id == rules[i].id) return i;
  }
  throw std::runtime_error("lint: unknown rule '" + rule_id + "'");
}

void Linter::disable(const std::string& rule_id) {
  enabled_[index_of(rule_id)] = false;
}

void Linter::enable(const std::string& rule_id) {
  enabled_[index_of(rule_id)] = true;
}

LintReport Linter::run(const spice::Circuit& circuit,
                       const spice::NetlistDeck* deck) const {
  LintContext ctx{circuit, deck, NodeIncidence::build(circuit)};
  LintReport report;
  const auto& rules = builtin_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (enabled_[i]) rules[i].run(ctx, report);
  }
  report.sort();
  return report;
}

LintResult lint_source(const std::string& text, const Linter& linter) {
  LintResult result;
  spice::Circuit circuit;
  try {
    result.deck = spice::parse_netlist(text, circuit);
    result.parsed = true;
  } catch (const spice::NetlistError& e) {
    Diagnostic d;
    d.rule = e.rule();
    d.severity = Severity::kError;
    d.line = e.line();
    d.message = e.what();
    result.report.add(std::move(d));
    return result;
  } catch (const std::exception& e) {
    Diagnostic d;
    d.rule = "parse-error";
    d.severity = Severity::kError;
    d.message = e.what();
    result.report.add(std::move(d));
    return result;
  }
  result.report = linter.run(circuit, &result.deck);
  return result;
}

LintResult lint_file(const std::string& path, const Linter& linter) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("lint: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(buffer.str(), linter);
}

}  // namespace sfc::lint
