#include "lint/linter.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lint/baseline.hpp"

namespace sfc::lint {

Linter::Linter(LintOptions options)
    : enabled_(builtin_rules().size(), true), options_(options) {
  validate_rule_table(builtin_rules());
}

std::size_t Linter::index_of(const std::string& rule_id) const {
  const auto& rules = builtin_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (rule_id == rules[i].id) return i;
  }
  std::string valid;
  for (const Rule& r : rules) {
    if (!valid.empty()) valid += ", ";
    valid += r.id;
  }
  throw std::runtime_error("lint: unknown rule '" + rule_id +
                           "' (valid rules: " + valid + ")");
}

void Linter::disable(const std::string& rule_id) {
  enabled_[index_of(rule_id)] = false;
}

void Linter::enable(const std::string& rule_id) {
  enabled_[index_of(rule_id)] = true;
}

LintReport Linter::run(const spice::Circuit& circuit,
                       const spice::NetlistDeck* deck) const {
  AnalysisManager analyses(circuit, deck);
  LintContext ctx{circuit, deck, analyses, options_};
  LintReport report;
  const auto& rules = builtin_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (enabled_[i]) rules[i].run(ctx, report);
  }
  report.sort();
  for (Diagnostic& d : report.mutable_diagnostics()) {
    d.fingerprint = compute_fingerprint(d, &circuit);
  }
  return report;
}

LintResult lint_source(const std::string& text, const Linter& linter) {
  LintResult result;
  spice::Circuit circuit;
  try {
    result.deck = spice::parse_netlist(text, circuit);
    result.parsed = true;
  } catch (const spice::NetlistError& e) {
    Diagnostic d;
    d.rule = e.rule();
    d.severity = Severity::kError;
    d.line = e.line();
    d.message = e.what();
    d.fingerprint = compute_fingerprint(d, nullptr);
    result.report.add(std::move(d));
    return result;
  } catch (const std::exception& e) {
    Diagnostic d;
    d.rule = "parse-error";
    d.severity = Severity::kError;
    d.message = e.what();
    d.fingerprint = compute_fingerprint(d, nullptr);
    result.report.add(std::move(d));
    return result;
  }
  result.report = linter.run(circuit, &result.deck);
  return result;
}

LintResult lint_file(const std::string& path, const Linter& linter) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("lint: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(buffer.str(), linter);
}

}  // namespace sfc::lint
