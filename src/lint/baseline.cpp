#include "lint/baseline.hpp"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

namespace sfc::lint {
namespace {

/// What the fingerprint sees of the anchor object. Deliberately excludes
/// source lines and (via digit stripping) numeric values, so editing
/// unrelated lines or nudging a value keeps the identity stable; changing
/// the wiring does not.
std::string structure_of(const Diagnostic& d, const spice::Circuit* circuit) {
  if (circuit) {
    if (const spice::Device* dev = circuit->find(d.object)) {
      std::string s = "dev";
      for (spice::NodeId t : dev->terminals()) {
        s += '/';
        s += circuit->node_name(t);
      }
      return s;
    }
    if (const auto node = circuit->find_node(d.object)) {
      std::string s = "node";
      for (const auto& dev : circuit->devices()) {
        const auto terms = dev->terminals();
        for (std::size_t k = 0; k < terms.size(); ++k) {
          if (terms[k] != *node) continue;
          s += '/';
          s += dev->name();
          s += ':';
          s += std::to_string(k);
        }
      }
      return s;
    }
  }
  std::string s = "msg/";
  for (char c : d.message) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) s += c;
  }
  return s;
}

void fnv1a(std::uint64_t& h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  h ^= 0xff;  // field separator, so ("ab","c") != ("a","bc")
  h *= 1099511628211ull;
}

}  // namespace

std::string compute_fingerprint(const Diagnostic& d,
                                const spice::Circuit* circuit) {
  std::uint64_t h = 14695981039346656037ull;
  fnv1a(h, d.rule);
  fnv1a(h, d.object);
  fnv1a(h, structure_of(d, circuit));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Baseline Baseline::from_report(const LintReport& report) {
  Baseline b;
  for (const Diagnostic& d : report.diagnostics()) {
    if (d.fingerprint.empty()) continue;
    b.add(BaselineEntry{d.fingerprint, d.rule, d.object});
  }
  return b;
}

Baseline Baseline::from_json(const verify::Json& json) {
  if (json.number_at("schema_version") != 1.0) {
    throw std::runtime_error("lint: unsupported baseline schema_version");
  }
  if (json.string_at("tool") != "sfc_lint") {
    throw std::runtime_error("lint: baseline written by a different tool");
  }
  Baseline b;
  for (const verify::Json& item : json.get("findings").as_array()) {
    BaselineEntry e;
    e.fingerprint = item.string_at("fingerprint");
    e.rule = item.string_at("rule");
    e.object = item.string_at("object");
    b.add(std::move(e));
  }
  return b;
}

Baseline Baseline::load(const std::string& path) {
  return from_json(verify::read_json_file(path));
}

verify::Json Baseline::to_json() const {
  verify::JsonArray findings;
  findings.reserve(entries_.size());
  for (const BaselineEntry& e : entries_) {
    verify::Json item = verify::Json::object();
    item.set("fingerprint", e.fingerprint);
    item.set("rule", e.rule);
    item.set("object", e.object);
    findings.push_back(std::move(item));
  }
  verify::Json out = verify::Json::object();
  out.set("schema_version", 1);
  out.set("tool", "sfc_lint");
  out.set("findings", verify::Json(std::move(findings)));
  return out;
}

void Baseline::add(BaselineEntry entry) {
  if (index_.insert(entry.fingerprint).second) {
    entries_.push_back(std::move(entry));
  }
}

std::size_t apply_baseline(LintReport& report, const Baseline& baseline) {
  std::size_t n = 0;
  for (Diagnostic& d : report.mutable_diagnostics()) {
    if (d.suppressed || d.fingerprint.empty()) continue;
    if (!baseline.contains(d.fingerprint)) continue;
    d.suppressed = true;
    ++n;
  }
  return n;
}

}  // namespace sfc::lint
