// Engine pre-flight gate: run the error-severity ERC rules against a
// circuit before the first solve, so library users get the same static
// screening as the sfc_lint CLI. Opt-in:
//
//   Circuit ckt;
//   NetlistDeck deck = parse_netlist(text, ckt);
//   Engine engine(ckt, deck.temperature_c);
//   lint::install_preflight(engine, &deck);
//   engine.dc_operating_point();  // throws PreflightError on a bad deck
#pragma once

#include "lint/diagnostics.hpp"
#include "spice/engine.hpp"
#include "spice/netlist.hpp"

namespace sfc::lint {

/// Thrown by the pre-flight gate; what() is the full text report and
/// report() carries the structured error diagnostics.
class PreflightError : public std::runtime_error {
 public:
  explicit PreflightError(LintReport report);
  const LintReport& report() const { return report_; }

 private:
  LintReport report_;
};

/// Run the pipeline and throw PreflightError if any error-severity
/// diagnostic fires (warnings and notes never block a solve).
void check_or_throw(const spice::Circuit& circuit,
                    const spice::NetlistDeck* deck = nullptr);

/// Arm `engine` with check_or_throw. The deck (if given) is copied into
/// the installed check, so it may go out of scope afterwards.
void install_preflight(spice::Engine& engine,
                       const spice::NetlistDeck* deck = nullptr);

}  // namespace sfc::lint
