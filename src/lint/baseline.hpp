// Baseline suppression for lint findings (CI ratcheting): a baseline file
// records the structural fingerprints of known findings; a later run with
// `--baseline` marks matching findings as suppressed so only *new*
// findings gate the build.
//
// The fingerprint hashes the rule id, the anchor object, and the object's
// *structure* (a device's terminal node names, a node's touching devices)
// instead of source positions — inserting a comment above a finding does
// not resurrect it, but rewiring the offending device does.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_set>
#include <vector>

#include "lint/diagnostics.hpp"
#include "spice/circuit.hpp"
#include "verify/json.hpp"

namespace sfc::lint {

/// Structural fingerprint of a finding: 16 lowercase hex chars (FNV-1a
/// over rule + object + structure). `circuit` may be nullptr (parse
/// failures); the structure then falls back to the digit-stripped message.
std::string compute_fingerprint(const Diagnostic& d,
                                const spice::Circuit* circuit);

struct BaselineEntry {
  std::string fingerprint;
  std::string rule;    ///< informational, for humans reading the file
  std::string object;  ///< informational
};

class Baseline {
 public:
  /// Baseline covering every finding of the report (fingerprints must
  /// already be stamped).
  static Baseline from_report(const LintReport& report);

  /// Parse a baseline file ({schema_version, tool, findings[]}); throws
  /// std::runtime_error on schema mismatch.
  static Baseline from_json(const verify::Json& json);
  static Baseline load(const std::string& path);

  verify::Json to_json() const;

  void add(BaselineEntry entry);
  bool contains(const std::string& fingerprint) const {
    return index_.count(fingerprint) != 0;
  }
  const std::vector<BaselineEntry>& entries() const { return entries_; }

 private:
  std::vector<BaselineEntry> entries_;
  std::unordered_set<std::string> index_;
};

/// Mark every finding whose fingerprint the baseline knows as suppressed.
/// Returns the number of findings suppressed by this call.
std::size_t apply_baseline(LintReport& report, const Baseline& baseline);

}  // namespace sfc::lint
