#include "lint/analysis.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>
#include <unordered_set>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "fefet/fefet.hpp"
#include "spice/primitives.hpp"

namespace sfc::lint {

using spice::Device;
using spice::NodeId;

// --------------------------------------------------------------- incidence

NodeIncidence NodeIncidence::build(const spice::Circuit& circuit) {
  NodeIncidence inc;
  inc.touches.resize(circuit.num_nodes());
  for (const auto& dev : circuit.devices()) {
    const auto terms = dev->terminals();
    for (std::size_t k = 0; k < terms.size(); ++k) {
      if (terms[k] == spice::kGround) continue;
      inc.touches[static_cast<std::size_t>(terms[k])].push_back(
          Touch{dev.get(), k});
    }
  }
  return inc;
}

// -------------------------------------------------------------------- dsu

Dsu::Dsu(std::size_t slots) : parent_(slots) {
  std::iota(parent_.begin(), parent_.end(), std::size_t{0});
}

std::size_t Dsu::find(std::size_t i) {
  while (parent_[i] != i) {
    parent_[i] = parent_[parent_[i]];
    i = parent_[i];
  }
  return i;
}

void Dsu::unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

std::size_t node_slot(NodeId n, std::size_t num_nodes) {
  return n == spice::kGround ? num_nodes : static_cast<std::size_t>(n);
}

// ------------------------------------------------------- conduction graph

std::vector<std::pair<NodeId, NodeId>> conduction_edges(const Device& dev,
                                                        bool caps_conduct) {
  const auto t = dev.terminals();
  using Pair = std::pair<NodeId, NodeId>;
  if (dynamic_cast<const spice::Resistor*>(&dev) ||
      dynamic_cast<const spice::Inductor*>(&dev) ||
      dynamic_cast<const spice::VSource*>(&dev)) {
    return {Pair{t[0], t[1]}};
  }
  if (dynamic_cast<const spice::Capacitor*>(&dev)) {
    if (caps_conduct) return {Pair{t[0], t[1]}};
    return {};
  }
  if (dynamic_cast<const spice::ISource*>(&dev)) return {};
  if (dynamic_cast<const spice::Vccs*>(&dev)) return {};
  if (dynamic_cast<const spice::Vcvs*>(&dev)) {
    return {Pair{t[0], t[1]}};  // output branch is voltage-defined
  }
  if (dynamic_cast<const spice::VSwitch*>(&dev)) {
    return {Pair{t[0], t[1]}};  // finite r_off: always a resistive path
  }
  if (dynamic_cast<const devices::Diode*>(&dev)) {
    return {Pair{t[0], t[1]}};
  }
  if (dynamic_cast<const devices::Mosfet*>(&dev)) {
    // Drain-source channel conducts; the gate is an open circuit (a
    // floating gate is exactly what the reachability rule must catch).
    return {Pair{t[0], t[2]}};
  }
  // Unknown device type: assume every terminal pair conducts. Being
  // permissive here keeps the rule free of false positives on devices the
  // analyzer has never heard of.
  std::vector<Pair> all;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) all.emplace_back(t[i], t[i + 1]);
  return all;
}

bool is_voltage_defined(const Device& dev) {
  return dynamic_cast<const spice::VSource*>(&dev) != nullptr ||
         dynamic_cast<const spice::Vcvs*>(&dev) != nullptr ||
         dynamic_cast<const spice::Inductor*>(&dev) != nullptr;
}

std::pair<NodeId, NodeId> voltage_branch(const Device& dev) {
  const auto t = dev.terminals();
  return {t[0], t[1]};
}

ConductionComponents ConductionComponents::build(const spice::Circuit& circuit,
                                                 bool caps_conduct) {
  ConductionComponents out;
  out.num_nodes = circuit.num_nodes();
  out.caps_conduct = caps_conduct;
  Dsu dsu(out.num_nodes + 1);
  for (const auto& dev : circuit.devices()) {
    for (const auto& [a, b] : conduction_edges(*dev, caps_conduct)) {
      dsu.unite(node_slot(a, out.num_nodes), node_slot(b, out.num_nodes));
    }
  }
  out.root.resize(out.num_nodes + 1);
  for (std::size_t i = 0; i <= out.num_nodes; ++i) out.root[i] = dsu.find(i);
  return out;
}

// ------------------------------------------------------------ dc topology

DcTopology DcTopology::build(const spice::Circuit& circuit,
                             const spice::NetlistDeck* deck) {
  DcTopology topo;
  const std::size_t n = circuit.num_nodes();
  topo.edges.resize(n);

  const auto add_edge = [&](const Device* dev, NodeId a, NodeId b,
                            const Interval& g, bool has_g,
                            bool is_capacitor) {
    Edge e;
    e.device = dev;
    e.g = g;
    e.has_g = has_g;
    e.is_capacitor = is_capacitor;
    if (a != spice::kGround) {
      e.other = b;
      topo.edges[static_cast<std::size_t>(a)].push_back(e);
    }
    if (b != spice::kGround) {
      e.other = a;
      topo.edges[static_cast<std::size_t>(b)].push_back(e);
    }
  };
  const auto taint_dc = [&](NodeId a) { topo.dc_taint_seeds.push_back(a); };
  const auto taint_tran = [&](NodeId a) {
    topo.tran_taint_seeds.push_back(a);
  };

  // Hull of every .dc sweep targeting this source (the operating point is
  // recomputed at each sweep value, so the static bound must cover all).
  const auto sweep_hull = [&](const Device* dev) {
    Interval sweep = Interval::empty();
    if (!deck) return sweep;
    for (const spice::DcSweepDirective& dc : deck->dc) {
      if (circuit.find(dc.source) != dev) continue;
      sweep |= Interval(std::min(dc.start, dc.stop),
                        std::max(dc.start, dc.stop));
    }
    return sweep;
  };

  for (const auto& dev : circuit.devices()) {
    const auto t = dev->terminals();
    if (const auto* r = dynamic_cast<const spice::Resistor*>(dev.get())) {
      if (r->resistance() <= 0.0) {
        // Negative resistance is active (sign(i) != sign(dv)); the maximum
        // principle no longer holds anywhere current from it can reach.
        taint_dc(t[0]);
        taint_dc(t[1]);
      } else {
        add_edge(dev.get(), t[0], t[1],
                 Interval(1.0) / Interval(r->resistance()), true, false);
      }
    } else if (const auto* c =
                   dynamic_cast<const spice::Capacitor*>(dev.get())) {
      const bool a_gnd = t[0] == spice::kGround;
      const bool b_gnd = t[1] == spice::kGround;
      if (c->capacitance() <= 0.0 || (!a_gnd && !b_gnd)) {
        // A floating capacitor couples two node histories; the transient
        // envelope cannot anchor either side. DC is unaffected (open).
        taint_tran(t[0]);
        taint_tran(t[1]);
      } else if (!(a_gnd && b_gnd)) {
        add_edge(dev.get(), t[0], t[1], Interval(), false, true);
      }
    } else if (dynamic_cast<const spice::Inductor*>(dev.get()) != nullptr) {
      // DC short (a pin below); in a transient its current is state and
      // can drive nodes outside any static hull.
      Pin pin;
      pin.kind = Pin::Kind::kInductor;
      pin.device = dev.get();
      pin.a = t[0];
      pin.b = t[1];
      topo.pins.push_back(pin);
      taint_tran(t[0]);
      taint_tran(t[1]);
    } else if (const auto* v =
                   dynamic_cast<const spice::VSource*>(dev.get())) {
      Pin pin;
      pin.kind = Pin::Kind::kVSource;
      pin.device = dev.get();
      pin.a = t[0];
      pin.b = t[1];
      pin.dc_value = Interval(v->waveform().initial());
      const auto [wlo, whi] = v->waveform().range();
      pin.envelope_value = Interval(wlo, whi);
      const Interval sweep = sweep_hull(dev.get());
      pin.dc_value |= sweep;
      pin.envelope_value |= sweep;
      topo.pins.push_back(pin);
    } else if (dynamic_cast<const spice::ISource*>(dev.get()) != nullptr) {
      // Injected current turns into unbounded voltage through unknown
      // impedance; everything conductively reachable is off-limits.
      taint_dc(t[0]);
      taint_dc(t[1]);
    } else if (const auto* s =
                   dynamic_cast<const spice::VSwitch*>(dev.get())) {
      const auto& p = s->params();
      if (p.r_on <= 0.0 || p.r_off <= 0.0) {
        taint_dc(t[0]);
        taint_dc(t[1]);
      } else {
        const Interval g = Interval::hull(Interval(1.0) / Interval(p.r_on),
                                          Interval(1.0) / Interval(p.r_off));
        add_edge(dev.get(), t[0], t[1], g, true, false);
      }
    } else if (dynamic_cast<const spice::Vccs*>(dev.get()) != nullptr) {
      taint_dc(t[0]);
      taint_dc(t[1]);
    } else if (const auto* e = dynamic_cast<const spice::Vcvs*>(dev.get())) {
      Pin pin;
      pin.kind = Pin::Kind::kVcvs;
      pin.device = dev.get();
      pin.a = t[0];
      pin.b = t[1];
      pin.ctrl_p = t[2];
      pin.ctrl_n = t[3];
      pin.gain = e->gain();
      topo.pins.push_back(pin);
    } else if (dynamic_cast<const devices::Diode*>(dev.get()) != nullptr) {
      add_edge(dev.get(), t[0], t[1], Interval(), false, false);
    } else if (const auto* m =
                   dynamic_cast<const devices::Mosfet*>(dev.get())) {
      if (m->params().w <= 0.0 || m->params().l <= 0.0) {
        taint_dc(t[0]);
        taint_dc(t[2]);
      } else {
        add_edge(dev.get(), t[0], t[2], Interval(), false, false);
      }
    } else {
      // Unknown device: no passivity assumption is safe.
      for (NodeId a : t) taint_dc(a);
    }
  }
  return topo;
}

// --------------------------------------------------------- interval engine

namespace {

struct EngineResult {
  std::vector<Interval> vals;
  std::vector<char> tainted;
  bool contradiction = false;
};

/// One fixpoint run of the abstract interpreter. `envelope` selects the
/// transient mode: VSource pins use their whole-waveform range, inductor
/// pins deactivate (their terminals are tainted instead), and grounded
/// capacitors anchor their node to the initial condition (`dc_vals` when
/// no explicit ic was given).
EngineResult run_engine(const spice::Circuit& circuit, const DcTopology& topo,
                        const ConductionComponents& comps,
                        const IntervalOptions& opt, bool envelope,
                        const std::vector<Interval>* dc_vals) {
  const std::size_t n = circuit.num_nodes();
  EngineResult out;
  out.vals.assign(n, Interval::universe());
  out.tainted.assign(n, 0);

  // Islands: conduction connectivity EXCLUDING ground. Ground is the
  // Dirichlet boundary of the maximum principle — its potential is fixed,
  // so current injected on one side cannot disturb nodes whose only
  // connection is through it. Taint floods per island (voltage-defined
  // branches conduct the disturbance, hence conduction_edges, not just
  // the resistive topo.edges), and the hull pass below runs per island.
  Dsu islands(n);
  for (const auto& dev : circuit.devices()) {
    for (const auto& [a, b] : conduction_edges(*dev, comps.caps_conduct)) {
      if (a == spice::kGround || b == spice::kGround) continue;
      islands.unite(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
    }
  }
  std::vector<std::size_t> island_root(n);
  for (std::size_t i = 0; i < n; ++i) island_root[i] = islands.find(i);

  // Taint: a seed poisons its whole island — current it injects can raise
  // any node conductively reachable without crossing ground. A seed AT
  // ground is absorbed by the reference and poisons nothing.
  std::unordered_set<std::size_t> bad_roots;
  const auto seed = [&](NodeId s) {
    if (s == spice::kGround) return;
    bad_roots.insert(island_root[static_cast<std::size_t>(s)]);
  };
  for (NodeId s : topo.dc_taint_seeds) seed(s);
  if (envelope) {
    for (NodeId s : topo.tran_taint_seeds) seed(s);
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (bad_roots.count(island_root[i]) != 0) out.tainted[i] = 1;
  }

  // Pinned nodes: terminals of active voltage-defined branches. They are
  // boundary nodes of the maximum principle — never relaxed from
  // neighbors, only narrowed by pin equations and the component hull.
  std::vector<char> pinned(n, 0);
  for (const DcTopology::Pin& pin : topo.pins) {
    if (envelope && pin.kind == DcTopology::Pin::Kind::kInductor) continue;
    if (pin.a != spice::kGround) pinned[static_cast<std::size_t>(pin.a)] = 1;
    if (pin.b != spice::kGround) pinned[static_cast<std::size_t>(pin.b)] = 1;
  }

  // Transient state anchors: a grounded capacitor starts at its explicit
  // ic (or the DC operating point) and from there can only move toward
  // what its neighbors and gmin allow.
  std::vector<char> is_state(n, 0);
  std::vector<Interval> anchor(n, Interval::empty());
  if (envelope) {
    for (const auto& dev : circuit.devices()) {
      const auto* c = dynamic_cast<const spice::Capacitor*>(dev.get());
      if (!c || c->capacitance() <= 0.0) continue;
      const auto t = dev->terminals();
      const bool a_gnd = t[0] == spice::kGround;
      const bool b_gnd = t[1] == spice::kGround;
      if (a_gnd == b_gnd) continue;  // floating (tainted) or ground-ground
      const NodeId node = a_gnd ? t[1] : t[0];
      const double sign = a_gnd ? -1.0 : 1.0;
      const std::size_t idx = static_cast<std::size_t>(node);
      Interval av;
      if (c->has_initial_condition()) {
        av = Interval(sign * c->initial_condition());
      } else if (dc_vals) {
        av = (*dc_vals)[idx];
      }
      is_state[idx] = 1;
      anchor[idx] |= av;  // several caps on one node: cover all anchors
    }
  }

  const auto val_of = [&](NodeId x) -> Interval {
    return x == spice::kGround ? Interval(0.0)
                               : out.vals[static_cast<std::size_t>(x)];
  };

  bool changed = false;
  const auto narrow = [&](NodeId x, const Interval& bound) {
    if (x == spice::kGround) return;
    const std::size_t idx = static_cast<std::size_t>(x);
    const Interval nv = Interval::intersect(out.vals[idx], bound);
    if (nv != out.vals[idx]) {
      out.vals[idx] = nv;
      changed = true;
    }
    if (nv.is_empty()) out.contradiction = true;
  };

  // Nodes grouped by island for the hull pass.
  std::unordered_map<std::size_t, std::vector<std::size_t>> members;
  for (std::size_t i = 0; i < n; ++i) members[island_root[i]].push_back(i);

  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    changed = false;

    // (a) Pin equations v(a) - v(b) = value, narrowed both ways. These
    // are hard facts, so they apply to tainted components too.
    for (const DcTopology::Pin& pin : topo.pins) {
      Interval value;
      switch (pin.kind) {
        case DcTopology::Pin::Kind::kVSource:
          value = envelope ? pin.envelope_value : pin.dc_value;
          break;
        case DcTopology::Pin::Kind::kInductor:
          if (envelope) continue;
          value = Interval(0.0);
          break;
        case DcTopology::Pin::Kind::kVcvs:
          value = Interval(pin.gain) *
                  (val_of(pin.ctrl_p) - val_of(pin.ctrl_n));
          break;
      }
      narrow(pin.a, val_of(pin.b) + value);
      narrow(pin.b, val_of(pin.a) - value);
    }

    // (b) Discrete maximum principle, component granularity: with only
    // passive branches inside and gmin tying every node toward ground,
    // each node of a component lies in the hull of {0}, the pinned
    // (boundary) node values, and any transient state anchors.
    for (const auto& [root, nodes] : members) {
      if (bad_roots.count(root) != 0) continue;
      Interval h(0.0);
      for (std::size_t i : nodes) {
        if (pinned[i]) h |= out.vals[i];
        if (is_state[i]) h |= anchor[i];
      }
      for (std::size_t i : nodes) narrow(static_cast<NodeId>(i), h);
    }

    // (c) Per-node refinement for interior (non-pinned) nodes.
    for (std::size_t i = 0; i < n; ++i) {
      if (out.tainted[i] || pinned[i]) continue;
      const NodeId node = static_cast<NodeId>(i);

      Interval neighbor_hull(0.0);  // gmin pulls toward ground
      Interval num(0.0);
      Interval den(0.0);
      bool all_conductance = true;
      bool any_edge = false;
      for (const DcTopology::Edge& e : topo.edges[i]) {
        if (e.is_capacitor) continue;  // handled via state anchors
        any_edge = true;
        const Interval ov = val_of(e.other);
        neighbor_hull |= ov;
        if (e.has_g) {
          num = num + e.g * ov;
          den = den + e.g;
        } else {
          all_conductance = false;
        }
      }

      if (envelope && is_state[i]) {
        // Parabolic maximum principle: the node starts at its anchor and
        // its derivative always points into the instantaneous
        // neighbor/ground hull, so it can never leave the union.
        narrow(node, Interval::hull(anchor[i], neighbor_hull));
        continue;
      }
      if (!any_edge) {
        // Only the gmin leak loads this node: v = 0 exactly at any
        // converged solve (the engine stamps gmin > 0 on every node).
        narrow(node, Interval(0.0));
        continue;
      }
      Interval bound = neighbor_hull;
      if (all_conductance) {
        // Thevenin / weighted-average refinement: KCL at a purely
        // conductive node gives v = sum(g v) / (sum(g) + gmin); interval
        // evaluation contains the true value for any g in its bounds.
        den = den + Interval(0.0, opt.gmin_max);
        bound &= num / den;
      }
      narrow(node, bound);
    }

    if (!changed) break;
  }

  // Tainted nodes report the universe regardless of what pin narrowing
  // achieved locally — except pins anchored purely to ground, which stay
  // valid. Keeping the narrowed value is sound: pins are hard facts.
  return out;
}

}  // namespace

// --------------------------------------------------------------- manager

AnalysisManager::AnalysisManager(const spice::Circuit& circuit,
                                 const spice::NetlistDeck* deck,
                                 IntervalOptions options)
    : circuit_(circuit), deck_(deck), options_(options) {}

const NodeIncidence& AnalysisManager::incidence() {
  if (!incidence_) {
    incidence_ = std::make_unique<NodeIncidence>(NodeIncidence::build(circuit_));
  }
  return *incidence_;
}

const ConductionComponents& AnalysisManager::components(bool caps_conduct) {
  auto& slot = components_[caps_conduct ? 1 : 0];
  if (!slot) {
    slot = std::make_unique<ConductionComponents>(
        ConductionComponents::build(circuit_, caps_conduct));
  }
  return *slot;
}

const DcTopology& AnalysisManager::topology() {
  if (!topology_) {
    topology_ =
        std::make_unique<DcTopology>(DcTopology::build(circuit_, deck_));
  }
  return *topology_;
}

const OperatingIntervals& AnalysisManager::intervals() {
  if (intervals_) return *intervals_;
  auto out = std::make_unique<OperatingIntervals>();
  out->has_tran = !deck_ || !deck_->tran.empty();
  if (deck_ && deck_->has_temperature) {
    out->temp_lo = out->temp_hi = deck_->temperature_c;
  }

  const DcTopology& topo = topology();
  EngineResult dc =
      run_engine(circuit_, topo, components(false), options_, false, nullptr);
  out->dc = std::move(dc.vals);
  out->dc_tainted = std::move(dc.tainted);
  out->dc_contradiction = dc.contradiction;

  if (out->has_tran) {
    EngineResult env = run_engine(circuit_, topo, components(true), options_,
                                  true, &out->dc);
    out->envelope = std::move(env.vals);
    out->envelope_tainted = std::move(env.tainted);
    out->envelope_contradiction = env.contradiction;
  } else {
    out->envelope = out->dc;
    out->envelope_tainted = out->dc_tainted;
    out->envelope_contradiction = out->dc_contradiction;
  }
  intervals_ = std::move(out);
  return *intervals_;
}

OperatingIntervals compute_operating_intervals(const spice::Circuit& circuit,
                                               const spice::NetlistDeck* deck,
                                               const IntervalOptions& options) {
  AnalysisManager manager(circuit, deck, options);
  return manager.intervals();
}

}  // namespace sfc::lint
