// sfc_lint — static netlist analyzer (ERC/lint) CLI.
//
//   sfc_lint file.cir [--json]     lint one deck; exit code = max severity
//                                  (0 clean, 1 note, 2 warning, 3 error)
//   sfc_lint --list-rules          print the rule table and exit 0
//
// Text output is compiler-style ("file.cir:12: error: [rule] message"),
// --json emits the canonical report schema (sorted keys, stable numbers).
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "lint/linter.hpp"
#include "lint/rules.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <deck.cir> [--json]\n"
               "       %s --list-rules\n"
               "exit code: 0 clean, 1 note, 2 warning, 3 error, 4 usage/io\n",
               argv0, argv0);
  return 4;
}

void list_rules() {
  std::printf("circuit/deck rules (pass pipeline order):\n");
  for (const auto& rule : sfc::lint::builtin_rules()) {
    std::printf("  %-20s %-8s %s\n", rule.id,
                sfc::lint::severity_name(rule.severity), rule.description);
  }
  std::printf("parse-time rules (reported as error diagnostics):\n");
  for (const auto& rule : sfc::lint::parse_rules()) {
    std::printf("  %-20s %-8s %s\n", rule.id, "error", rule.description);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules();
      return 0;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  try {
    const sfc::lint::LintResult result = sfc::lint::lint_file(path);
    if (json) {
      std::printf("%s\n", result.report.to_json(path).dump(2).c_str());
    } else {
      std::fputs(result.report.to_text(path).c_str(), stdout);
    }
    return result.report.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sfc_lint: %s\n", e.what());
    return 4;
  }
}
