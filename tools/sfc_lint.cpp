// sfc_lint — static netlist analyzer (ERC/lint + semantic passes) CLI.
//
//   sfc_lint file.cir [--json|--sarif]   lint one deck; exit code = max
//                                        unsuppressed severity (0 clean,
//                                        1 note, 2 warning, 3 error)
//   sfc_lint file.cir --baseline b.json  suppress findings fingerprinted
//                                        in the baseline file
//   sfc_lint file.cir --write-baseline b.json
//                                        write the baseline covering every
//                                        current finding and exit 0
//   sfc_lint --list-rules                print the rule table and exit 0
//
// Text output is compiler-style ("file.cir:12: error: [rule] message"),
// --json emits the canonical report schema, --sarif a SARIF 2.1.0 log
// (both sorted keys, stable numbers).
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "lint/baseline.hpp"
#include "lint/linter.hpp"
#include "lint/rules.hpp"
#include "lint/sarif.hpp"

namespace {

enum class Output { kText, kJson, kSarif };

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <deck.cir> [--json|--sarif] [--baseline <file>]\n"
      "       %s <deck.cir> --write-baseline <file>\n"
      "       %s --list-rules\n"
      "exit code: 0 clean, 1 note, 2 warning, 3 error, 4 usage/io\n",
      argv0, argv0, argv0);
  return 4;
}

void list_rules() {
  std::printf("circuit/deck rules (pass pipeline order):\n");
  for (const auto& rule : sfc::lint::builtin_rules()) {
    std::printf("  %-20s %-8s %s\n", rule.id,
                sfc::lint::severity_name(rule.severity), rule.description);
  }
  std::printf("parse-time rules (reported as error diagnostics):\n");
  for (const auto& rule : sfc::lint::parse_rules()) {
    std::printf("  %-20s %-8s %s\n", rule.id, "error", rule.description);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string baseline_path;
  std::string write_baseline_path;
  Output output = Output::kText;
  for (int i = 1; i < argc; ++i) {
    const auto flag_arg = [&](const char* name, std::string& into) {
      if (std::strcmp(argv[i], name) != 0) return false;
      if (i + 1 >= argc) return false;  // missing operand -> usage below
      into = argv[++i];
      return true;
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      output = Output::kJson;
    } else if (std::strcmp(argv[i], "--sarif") == 0) {
      output = Output::kSarif;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      list_rules();
      return 0;
    } else if (flag_arg("--baseline", baseline_path) ||
               flag_arg("--write-baseline", write_baseline_path)) {
      // operand consumed
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  try {
    sfc::lint::LintResult result = sfc::lint::lint_file(path);

    if (!write_baseline_path.empty()) {
      const sfc::lint::Baseline baseline =
          sfc::lint::Baseline::from_report(result.report);
      sfc::verify::write_json_file(write_baseline_path, baseline.to_json());
      std::fprintf(stderr, "sfc_lint: wrote baseline with %zu finding(s) to %s\n",
                   baseline.entries().size(), write_baseline_path.c_str());
      return 0;
    }
    if (!baseline_path.empty()) {
      const sfc::lint::Baseline baseline =
          sfc::lint::Baseline::load(baseline_path);
      sfc::lint::apply_baseline(result.report, baseline);
    }

    switch (output) {
      case Output::kJson:
        std::printf("%s\n", result.report.to_json(path).dump(2).c_str());
        break;
      case Output::kSarif:
        std::printf("%s\n", sfc::lint::to_sarif(result.report, path).dump(2).c_str());
        break;
      case Output::kText:
        std::fputs(result.report.to_text(path).c_str(), stdout);
        break;
    }
    return result.report.exit_code();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sfc_lint: %s\n", e.what());
    return 4;
  }
}
