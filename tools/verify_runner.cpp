// Command-line front end of the verification subsystem (src/verify).
//
//   verify_runner golden [--dir DIR] [--case NAME] [--regen]
//       Recompute the canonical paper experiments and compare them to the
//       stored goldens (or rewrite the goldens with --regen).
//   verify_runner oracle [--case NAME]
//       Run the differential-oracle pairs and print structured diffs.
//   verify_runner fuzz [--count N] [--seed S] [--dump DIR]
//       Run the property-based netlist fuzz campaign; failing cases are
//       shrunk and dumped as .cir reproducers.
//   verify_runner check-bench PATH [--keys GOLDEN]
//       Validate a bench/perf_simulator --json output file against the
//       expected schema (used by scripts/check.sh). With --keys, the
//       per-kernel key set must exactly match the golden list.
//   verify_runner check-metrics PATH [--golden GOLDEN]
//       Validate a --metrics snapshot (trace registry dump): schema, and —
//       with --golden — that the non-timing counter/histogram key sets
//       exactly match the golden (metric-name stability gate).
//   verify_runner check-sarif PATH [--keys GOLDEN]
//       Validate an sfc_lint --sarif log: SARIF 2.1.0 shape, unique rule
//       ids, legal result levels. With --keys, the object key sets and
//       the rule-id list must exactly match the golden (CI contract for
//       SARIF consumers).
//
// Every subcommand also accepts --trace OUT.json / --metrics OUT.json:
// span-trace the run itself (Chrome trace format) and dump the metrics
// registry at exit — the observability hooks of src/trace.
//
// Exit status 0 = everything passed, 1 = a verification failure,
// 2 = usage / IO error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "trace/trace.hpp"
#include "verify/fuzz.hpp"
#include "verify/golden.hpp"
#include "verify/json.hpp"
#include "verify/oracle.hpp"

namespace {

using sfc::verify::Json;

int usage() {
  std::fprintf(stderr,
               "usage: verify_runner golden [--dir DIR] [--case NAME] [--regen]\n"
               "       verify_runner oracle [--case NAME]\n"
               "       verify_runner fuzz [--count N] [--seed S] [--dump DIR]\n"
               "       verify_runner check-bench PATH [--keys GOLDEN]\n"
               "       verify_runner check-metrics PATH [--golden GOLDEN]\n"
               "       verify_runner check-sarif PATH [--keys GOLDEN]\n"
               "(any subcommand: --trace OUT.json --metrics OUT.json)\n");
  return 2;
}

/// Consume "--flag VALUE" from argv; returns nullptr when absent.
const char* flag_value(std::vector<const char*>& args, const char* flag) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (std::strcmp(args[i], flag) == 0) {
      const char* v = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return v;
    }
  }
  return nullptr;
}

bool flag_present(std::vector<const char*>& args, const char* flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (std::strcmp(args[i], flag) == 0) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

int cmd_golden(std::vector<const char*> args) {
  const char* dir_flag = flag_value(args, "--dir");
  const char* case_flag = flag_value(args, "--case");
  const bool regen = flag_present(args, "--regen");
  if (!args.empty()) return usage();
  const std::string dir =
      dir_flag ? std::string(dir_flag) : sfc::verify::default_golden_dir();

  bool all_pass = true;
  int ran = 0;
  for (const auto& c : sfc::verify::golden_cases()) {
    if (case_flag && c.name != case_flag) continue;
    ++ran;
    if (regen) {
      const std::string path = dir + "/" + c.file();
      sfc::verify::save_golden(path, c.build());
      std::printf("regenerated %s\n", path.c_str());
      continue;
    }
    const sfc::verify::GoldenCompare cmp = sfc::verify::run_golden_case(c, dir);
    std::printf("%s: %s\n", c.name.c_str(), cmp.summary().c_str());
    all_pass = all_pass && cmp.pass;
  }
  if (ran == 0) {
    std::fprintf(stderr, "no golden case named '%s'\n", case_flag);
    return 2;
  }
  return all_pass ? 0 : 1;
}

int cmd_oracle(std::vector<const char*> args) {
  const char* case_flag = flag_value(args, "--case");
  if (!args.empty()) return usage();
  bool all_match = true;
  int ran = 0;
  for (const auto& c : sfc::verify::oracle_cases()) {
    if (case_flag && c.name != case_flag) continue;
    ++ran;
    const sfc::verify::OracleReport rep = c.run();
    std::printf("%s\n", rep.summary().c_str());
    all_match = all_match && rep.match;
  }
  if (ran == 0) {
    std::fprintf(stderr, "no oracle case named '%s'\n", case_flag);
    return 2;
  }
  return all_match ? 0 : 1;
}

int cmd_fuzz(std::vector<const char*> args) {
  sfc::verify::FuzzOptions opt;
  if (const char* v = flag_value(args, "--count")) opt.count = std::atoi(v);
  if (const char* v = flag_value(args, "--seed")) {
    opt.seed = std::strtoull(v, nullptr, 0);
  }
  if (const char* v = flag_value(args, "--dump")) opt.dump_dir = v;
  if (!args.empty() || opt.count <= 0) return usage();
  const sfc::verify::FuzzReport rep = sfc::verify::run_fuzz(opt);
  std::printf("%s\n", rep.summary().c_str());
  return rep.pass() ? 0 : 1;
}

/// Schema contract for bench/perf_simulator --json (BENCH_solver.json).
int cmd_check_bench(std::vector<const char*> args) {
  const char* keys_flag = flag_value(args, "--keys");
  if (args.size() != 1) return usage();
  Json j;
  try {
    j = sfc::verify::read_json_file(args[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "check-bench: %s\n", e.what());
    return 2;
  }
  std::vector<std::string> golden_keys;
  if (keys_flag) {
    try {
      const Json g = sfc::verify::read_json_file(keys_flag);
      for (const Json& k : g.get("kernel_keys").as_array()) {
        golden_keys.push_back(k.as_string());
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "check-bench: %s: %s\n", keys_flag, e.what());
      return 2;
    }
  }
  std::vector<std::string> problems;
  const auto require = [&](bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
  };
  try {
    require(j.is_object(), "root must be an object");
    if (j.is_object()) {
      require(j.has("schema_version") && j.get("schema_version").is_number(),
              "missing numeric 'schema_version'");
      require(j.has("build_type") && j.get("build_type").is_string(),
              "missing string 'build_type'");
      require(j.has("threads") && j.get("threads").is_number(),
              "missing numeric 'threads'");
      require(j.has("kernels") && j.get("kernels").is_array(),
              "missing array 'kernels'");
    }
    if (j.is_object() && j.has("kernels") && j.get("kernels").is_array()) {
      const auto& kernels = j.get("kernels").as_array();
      require(!kernels.empty(), "'kernels' must be non-empty");
      for (const Json& k : kernels) {
        if (!k.is_object()) {
          problems.push_back("kernel entry must be an object");
          continue;
        }
        for (const char* key : {"name", "detail"}) {
          require(k.has(key) && k.get(key).is_string(),
                  std::string("kernel missing string '") + key + "'");
        }
        for (const char* key :
             {"samples", "legacy_ms", "hot_ms", "speedup", "solves_per_sec"}) {
          require(k.has(key) && k.get(key).is_number(),
                  std::string("kernel missing numeric '") + key + "'");
        }
        // Solver counters (schema_version >= 3): present and non-negative.
        for (const char* key : {"newton_iterations", "step_rejections",
                                "lu_factorizations", "gmin_steps"}) {
          const bool present = k.has(key) && k.get(key).is_number();
          require(present, std::string("kernel missing numeric '") + key + "'");
          if (present) {
            require(k.get(key).as_number() >= 0.0,
                    std::string("kernel counter '") + key +
                        "' must be non-negative");
          }
        }
        for (const char* key : {"bit_identical", "converged"}) {
          require(k.has(key) && k.get(key).is_bool(),
                  std::string("kernel missing bool '") + key + "'");
        }
        if (!golden_keys.empty() && k.is_object()) {
          std::vector<std::string> have;
          for (const auto& [key, value] : k.as_object()) have.push_back(key);
          if (have != golden_keys) {
            std::string msg = "kernel key set differs from golden:";
            for (const auto& key : have) msg += " " + key;
            problems.push_back(msg);
          }
        }
      }
    }
  } catch (const std::exception& e) {
    problems.push_back(e.what());
  }
  if (!problems.empty()) {
    for (const auto& p : problems) {
      std::fprintf(stderr, "check-bench: %s: %s\n", args[0], p.c_str());
    }
    return 1;
  }
  std::printf("check-bench: %s: schema OK\n", args[0]);
  return 0;
}

/// Deterministic counter/histogram names of a metrics snapshot, sorted
/// (Json objects are std::map). Timing (`*_us` / `*_ms`) and thread-pool
/// scheduling metrics vary run to run and are excluded from the stability
/// contract.
std::vector<std::string> metric_names(const Json& snapshot,
                                      const char* section) {
  std::vector<std::string> names;
  if (snapshot.has(section) && snapshot.get(section).is_object()) {
    for (const auto& [name, value] : snapshot.get(section).as_object()) {
      if (sfc::trace::is_deterministic_metric(name)) names.push_back(name);
    }
  }
  return names;
}

/// Schema + key-set stability contract for --metrics snapshots.
int cmd_check_metrics(std::vector<const char*> args) {
  const char* golden_flag = flag_value(args, "--golden");
  if (args.size() != 1) return usage();
  Json j;
  try {
    j = sfc::verify::read_json_file(args[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "check-metrics: %s\n", e.what());
    return 2;
  }
  std::vector<std::string> problems;
  if (!j.is_object() || !j.has("schema_version") ||
      !j.get("schema_version").is_number()) {
    problems.push_back("root must be an object with numeric 'schema_version'");
  }
  if (j.is_object() && j.has("counters") && j.get("counters").is_object()) {
    for (const auto& [name, value] : j.get("counters").as_object()) {
      if (!value.is_number() || value.as_number() < 0.0) {
        problems.push_back("counter '" + name + "' must be non-negative");
      }
    }
  } else {
    problems.push_back("missing object 'counters'");
  }
  if (golden_flag && problems.empty()) {
    try {
      const Json g = sfc::verify::read_json_file(golden_flag);
      for (const char* section : {"counters", "histograms"}) {
        const auto have = metric_names(j, section);
        const auto want = g.strings_at(section);
        if (have != want) {
          std::string msg = std::string(section) + " key set drifted; have:";
          for (const auto& n : have) msg += " " + n;
          problems.push_back(msg);
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "check-metrics: %s: %s\n", golden_flag, e.what());
      return 2;
    }
  }
  if (!problems.empty()) {
    for (const auto& p : problems) {
      std::fprintf(stderr, "check-metrics: %s: %s\n", args[0], p.c_str());
    }
    return 1;
  }
  std::printf("check-metrics: %s: %s\n", args[0],
              golden_flag ? "schema and key set OK" : "schema OK");
  return 0;
}

/// Schema + key-set contract for sfc_lint --sarif logs (SARIF 2.1.0
/// subset). Structure checks always run; --keys additionally pins the
/// exact object key sets and the rule-id list so downstream SARIF
/// consumers (CI upload, IDE ingestion) see a stable contract.
int cmd_check_sarif(std::vector<const char*> args) {
  const char* keys_flag = flag_value(args, "--keys");
  if (args.size() != 1) return usage();
  Json j;
  try {
    j = sfc::verify::read_json_file(args[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "check-sarif: %s\n", e.what());
    return 2;
  }
  Json golden;
  if (keys_flag) {
    try {
      golden = sfc::verify::read_json_file(keys_flag);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "check-sarif: %s: %s\n", keys_flag, e.what());
      return 2;
    }
  }
  std::vector<std::string> problems;
  const auto require = [&](bool ok, const std::string& what) {
    if (!ok) problems.push_back(what);
    return ok;
  };
  // Json objects are sorted maps, so key lists compare deterministically.
  const auto keys_of = [](const Json& o) {
    std::vector<std::string> keys;
    for (const auto& [key, value] : o.as_object()) keys.push_back(key);
    return keys;
  };
  const auto check_keys = [&](const Json& o, const char* section) {
    if (!keys_flag) return;
    const auto have = keys_of(o);
    const auto want = golden.strings_at(section);
    if (have != want) {
      std::string msg = std::string(section) + " drifted from golden; have:";
      for (const auto& k : have) msg += " " + k;
      problems.push_back(msg);
    }
  };
  try {
    if (require(j.is_object(), "root must be an object")) {
      require(j.has("version") && j.get("version").is_string() &&
                  j.get("version").as_string() == "2.1.0",
              "'version' must be the string \"2.1.0\"");
      require(j.has("$schema") && j.get("$schema").is_string(),
              "missing string '$schema'");
      check_keys(j, "root_keys");
    }
    if (require(j.is_object() && j.has("runs") && j.get("runs").is_array() &&
                    j.get("runs").as_array().size() == 1,
                "'runs' must be an array with exactly one run")) {
      const Json& run = j.get("runs").as_array()[0];
      require(run.is_object(), "run must be an object");
      check_keys(run, "run_keys");
      const bool has_driver = run.is_object() && run.has("tool") &&
                              run.get("tool").is_object() &&
                              run.get("tool").has("driver") &&
                              run.get("tool").get("driver").is_object();
      require(has_driver, "run must carry tool.driver");
      std::vector<std::string> rule_ids;
      if (has_driver) {
        const Json& driver = run.get("tool").get("driver");
        require(driver.has("name") && driver.get("name").is_string() &&
                    driver.get("name").as_string() == "sfc_lint",
                "driver name must be 'sfc_lint'");
        require(driver.has("version") && driver.get("version").is_string(),
                "driver missing string 'version'");
        check_keys(driver, "driver_keys");
        if (require(driver.has("rules") && driver.get("rules").is_array() &&
                        !driver.get("rules").as_array().empty(),
                    "driver must carry a non-empty 'rules' array")) {
          for (const Json& rule : driver.get("rules").as_array()) {
            if (!rule.is_object() || !rule.has("id") ||
                !rule.get("id").is_string()) {
              problems.push_back("rule entry must be an object with id");
              continue;
            }
            const std::string id = rule.get("id").as_string();
            if (std::find(rule_ids.begin(), rule_ids.end(), id) !=
                rule_ids.end()) {
              problems.push_back("duplicate rule id '" + id + "'");
            }
            rule_ids.push_back(id);
            require(rule.has("shortDescription") &&
                        rule.get("shortDescription").is_object() &&
                        rule.get("shortDescription").has("text"),
                    "rule '" + id + "' missing shortDescription.text");
            check_keys(rule, "rule_keys");
          }
          if (keys_flag && rule_ids != golden.strings_at("rule_ids")) {
            std::string msg = "rule id list drifted from golden; have:";
            for (const auto& id : rule_ids) msg += " " + id;
            problems.push_back(msg);
          }
        }
      }
      if (require(run.is_object() && run.has("results") &&
                      run.get("results").is_array(),
                  "run must carry a 'results' array")) {
        const auto allowed =
            keys_flag ? golden.strings_at("result_keys_allowed")
                      : std::vector<std::string>{};
        for (const Json& res : run.get("results").as_array()) {
          if (!require(res.is_object(), "result must be an object")) continue;
          require(res.has("ruleId") && res.get("ruleId").is_string() &&
                      (rule_ids.empty() ||
                       std::find(rule_ids.begin(), rule_ids.end(),
                                 res.get("ruleId").as_string()) !=
                           rule_ids.end()),
                  "result ruleId must name a declared rule");
          const bool level_ok =
              res.has("level") && res.get("level").is_string() &&
              (res.get("level").as_string() == "note" ||
               res.get("level").as_string() == "warning" ||
               res.get("level").as_string() == "error");
          require(level_ok, "result level must be note|warning|error");
          require(res.has("message") && res.get("message").is_object() &&
                      res.get("message").has("text"),
                  "result missing message.text");
          if (keys_flag) {
            for (const auto& key : keys_of(res)) {
              require(std::find(allowed.begin(), allowed.end(), key) !=
                          allowed.end(),
                      "result key '" + key + "' not in golden allow-list");
            }
          }
        }
      }
    }
  } catch (const std::exception& e) {
    problems.push_back(e.what());
  }
  if (!problems.empty()) {
    for (const auto& p : problems) {
      std::fprintf(stderr, "check-sarif: %s: %s\n", args[0], p.c_str());
    }
    return 1;
  }
  std::printf("check-sarif: %s: %s\n", args[0],
              keys_flag ? "SARIF shape and key sets OK" : "SARIF shape OK");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<const char*> args(argv + 2, argv + argc);
  const char* trace_flag = flag_value(args, "--trace");
  const char* metrics_flag = flag_value(args, "--metrics");
  if (trace_flag) sfc::trace::Tracer::global().start();
  int rc = 2;
  try {
    if (cmd == "golden") {
      rc = cmd_golden(std::move(args));
    } else if (cmd == "oracle") {
      rc = cmd_oracle(std::move(args));
    } else if (cmd == "fuzz") {
      rc = cmd_fuzz(std::move(args));
    } else if (cmd == "check-bench") {
      rc = cmd_check_bench(std::move(args));
    } else if (cmd == "check-metrics") {
      rc = cmd_check_metrics(std::move(args));
    } else if (cmd == "check-sarif") {
      rc = cmd_check_sarif(std::move(args));
    } else {
      return usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "verify_runner %s: %s\n", cmd.c_str(), e.what());
    return 2;
  }
  try {
    if (trace_flag) {
      sfc::trace::Tracer::global().stop();
      sfc::trace::Tracer::global().write_chrome(trace_flag);
    }
    if (metrics_flag) sfc::trace::write_metrics_file(metrics_flag);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "verify_runner: observability output: %s\n", e.what());
    return 2;
  }
  return rc;
}
