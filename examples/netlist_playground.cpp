// Netlist playground: run a SPICE-style deck through the analog engine.
// Reads the deck from a file (or uses a built-in FeFET read-path demo),
// executes the .dc / .tran directives and prints results.
//
//   $ ./netlist_playground               # built-in demo deck
//   $ ./netlist_playground my_deck.cir   # your own
#include <cstdio>
#include <fstream>
#include <sstream>

#include "spice/engine.hpp"
#include "spice/netlist.hpp"
#include "spice/sweep.hpp"

namespace {

const char* kDemoDeck = R"(* MOSFET common-source stage with a pulsed input
.model n14 nmos vth0=0.35 n=1.25
VDD vdd 0 1.2
VIN in 0 PULSE(0 0.9 1n 0.1n 0.1n 4n 10n)
RD vdd out 100k
M1 out in 0 n14 w=112n l=14n
CL out 0 2f
.tran 0.02n 10n
.dc VIN 0 1.2 0.05
.temp 27
.end
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace sfc::spice;

  std::string text;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
    std::printf("deck: %s\n", argv[1]);
  } else {
    text = kDemoDeck;
    std::printf("running the built-in demo deck:\n%s\n", kDemoDeck);
  }

  Circuit circuit;
  NetlistDeck deck;
  try {
    deck = parse_netlist(text, circuit);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  const double temp = deck.temperature_c;
  std::printf("%s\n", circuit.summary().c_str());

  // Operating point first.
  Engine engine(circuit, temp);
  const DcResult op = engine.dc_operating_point();
  std::printf("DC operating point (T = %.1f degC, converged = %s):\n", temp,
              op.converged ? "yes" : "NO");
  for (const auto& [node, volts] : op.voltages) {
    std::printf("  V(%s) = %.6f V\n", node.c_str(), volts);
  }

  for (const auto& dc : deck.dc) {
    auto* src = dynamic_cast<VSource*>(circuit.find(dc.source));
    if (!src) {
      std::fprintf(stderr, ".dc: no voltage source '%s'\n", dc.source.c_str());
      continue;
    }
    std::printf("\n.dc %s %.3g -> %.3g step %.3g:\n", dc.source.c_str(),
                dc.start, dc.stop, dc.step);
    SweepSpec spec;
    spec.values = linspace_step(dc.start, dc.stop, dc.step);
    spec.apply = [name = dc.source](Circuit& c, double v) {
      static_cast<VSource*>(c.find(name))->set_dc(v);
    };
    spec.continuation = true;  // warm-start along the source value
    spec.temperature_c = temp;
    const auto points = run_sweep(circuit, spec);
    std::printf("  %-10s", dc.source.c_str());
    std::vector<std::string> nodes;
    for (const auto& [node, volts] : points.front().op.voltages) {
      nodes.push_back(node);
      std::printf(" %-10s", ("V(" + node + ")").c_str());
    }
    std::printf("\n");
    for (const auto& p : points) {
      std::printf("  %-10.4f", p.value);
      for (const auto& node : nodes) {
        std::printf(" %-10.5f", p.op.voltage(node));
      }
      std::printf("\n");
    }
  }

  for (const auto& ac : deck.ac) {
    std::printf("\n.ac %d pts/dec, %.3g -> %.3g Hz (excite sources with "
                "set_ac_magnitude; quiet deck shows 0):\n",
                ac.points_per_decade, ac.f_start, ac.f_stop);
    // Excite the first voltage source found.
    for (const auto& dev : circuit.devices()) {
      if (auto* src = dynamic_cast<VSource*>(
              circuit.find(dev->name()))) {
        src->set_ac_magnitude(1.0);
        std::printf("  exciting %s with 1 V AC\n", src->name().c_str());
        break;
      }
    }
    const auto freqs =
        log_frequency_grid(ac.f_start, ac.f_stop, ac.points_per_decade);
    const AcResult res = engine.ac(freqs);
    if (!res.converged) {
      std::printf("  AC analysis failed\n");
      continue;
    }
    std::printf("  %-12s", "f [Hz]");
    for (const auto& [node, volts] : op.voltages) {
      (void)volts;
      std::printf(" |V(%s)| [dB]", node.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < res.num_points();
         i += std::max<std::size_t>(1, res.num_points() / 12)) {
      std::printf("  %-12.4g", res.frequencies()[i]);
      for (const auto& [node, volts] : op.voltages) {
        (void)volts;
        std::printf(" %12.2f", res.magnitude_db(node, i));
      }
      std::printf("\n");
    }
  }

  for (const auto& tr : deck.tran) {
    std::printf("\n.tran dt=%.3g t_stop=%.3g:\n", tr.dt, tr.t_stop);
    TransientOptions opts;
    opts.dt = tr.dt;
    const TransientResult result = engine.transient(tr.t_stop, opts);
    if (!result.converged) {
      std::printf("  transient failed to converge\n");
      continue;
    }
    std::printf("  %zu samples recorded; final values:\n",
                result.num_samples());
    for (const auto& name : result.signal_names()) {
      std::printf("    %s = %.6g\n", name.c_str(),
                  result.final_value(name));
    }
    std::printf("  source energy delivered:\n");
    for (const auto& [src, joules] : result.source_energy) {
      std::printf("    %s: %.4g J\n", src.c_str(), joules);
    }
  }
  return 0;
}
