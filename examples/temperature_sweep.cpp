// Temperature-resilience walkthrough: compare the proposed 2T-1FeFET row
// against the subthreshold 1FeFET-1R baseline over the full 0-85 degC
// range, printing the per-MAC output bands and the resulting noise
// margins - the experiment behind the paper's Figs. 4 and 8(a).
//
//   $ ./temperature_sweep [n_cells]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "cim/mac.hpp"

int main(int argc, char** argv) {
  using namespace sfc::cim;

  int cells = 8;
  if (argc > 1) cells = std::atoi(argv[1]);
  if (cells < 1 || cells > 16) {
    std::fprintf(stderr, "usage: %s [n_cells in 1..16]\n", argv[0]);
    return 1;
  }

  const std::vector<double> temps = {0.0, 20.0, 27.0, 55.0, 85.0};

  for (const auto& [name, make] :
       {std::pair<const char*, ArrayConfig (*)()>{
            "2T-1FeFET (proposed)", &ArrayConfig::proposed_2t1fefet},
        {"1FeFET-1R subthreshold (baseline)",
         &ArrayConfig::baseline_1r_subthreshold}}) {
    ArrayConfig cfg = make();
    cfg.cells_per_row = cells;
    std::printf("=== %s, %d cells/row ===\n", name, cells);

    const LevelSweepResult sweep = mac_level_sweep(cfg, temps);
    const auto nmr = noise_margin_rates(sweep.levels);

    // Text rendering of the level bands.
    double v_max = 1e-9;
    for (const auto& level : sweep.levels) v_max = std::max(v_max, level.hi);
    const int columns = 56;
    for (const auto& level : sweep.levels) {
      const int lo = static_cast<int>(level.lo / v_max * columns);
      const int hi = static_cast<int>(level.hi / v_max * columns);
      std::string bar(static_cast<std::size_t>(columns + 1), ' ');
      for (int c = lo; c <= hi; ++c) bar[static_cast<std::size_t>(c)] = '#';
      std::printf("  MAC=%d |%s| [%.4f, %.4f] V\n", level.mac, bar.c_str(),
                  level.lo, level.hi);
    }
    const NmrSummary summary = summarize_nmr(sweep.levels);
    std::printf("  NMR_min = %+.3f at MAC=%d -> %s\n\n", summary.nmr_min,
                summary.argmin_mac,
                summary.separable
                    ? "all levels separable over 0-85 degC"
                    : "levels OVERLAP: computation errors under drift");
    (void)nmr;
  }
  return 0;
}
