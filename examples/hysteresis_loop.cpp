// FeFET physics walkthrough: trace the ferroelectric P-V hysteresis loop
// (major and minor), show the write-pulse dynamics (Merz law) behind the
// paper's +4 V/115 ns vs -4 V/200 ns protocol, and plot retention decay.
//
//   $ ./hysteresis_loop
#include <cmath>
#include <cstdio>
#include <vector>

#include "fefet/preisach.hpp"
#include "util/plot.hpp"

int main() {
  using namespace sfc;
  using namespace sfc::fefet;

  // --- 1. quasi-static major and minor loops ------------------------------
  std::printf("1. P-V hysteresis (quasi-static sweep, 27 degC)\n");
  {
    PreisachModel fe;
    std::vector<double> v_major, p_major, v_minor, p_minor;
    auto sweep = [&](PreisachModel& model, double lo, double hi,
                     std::vector<double>& vs, std::vector<double>& ps) {
      for (double v = lo; v <= hi + 1e-9; v += 0.2) {
        model.apply_quasistatic(v, 27.0);
        vs.push_back(v);
        ps.push_back(model.polarization());
      }
      for (double v = hi; v >= lo - 1e-9; v -= 0.2) {
        model.apply_quasistatic(v, 27.0);
        vs.push_back(v);
        ps.push_back(model.polarization());
      }
    };
    sweep(fe, -5.0, 5.0, v_major, p_major);
    PreisachModel fe2;
    fe2.apply_quasistatic(-5.0, 27.0);
    sweep(fe2, -5.0, 2.6, v_minor, p_minor);  // partial positive excursion

    util::AsciiPlot plot(60, 16);
    plot.add_series("major loop", v_major, p_major, '*');
    plot.add_series("minor loop (to +2.6V)", v_minor, p_minor, 'o');
    std::printf("%s\n", plot.render().c_str());
  }

  // --- 2. write-pulse dynamics ---------------------------------------------
  std::printf("2. pulse-width dependence of the +4 V write (Merz law)\n");
  {
    std::vector<double> widths, polarizations;
    for (double w_ns : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 115.0, 200.0}) {
      PreisachModel fe;  // pristine: high-VTH
      fe.apply_pulse(4.0, w_ns * 1e-9, 27.0);
      widths.push_back(w_ns);
      polarizations.push_back(fe.polarization());
      std::printf("   +4 V for %6.0f ns -> P = %+.3f  (VTH = %.3f V)\n",
                  w_ns, fe.polarization(), fe.vth(27.0));
    }
    std::printf("   => the paper's 115 ns pulse saturates the switch; a\n"
                "      5 ns pulse only partially programs the device.\n\n");
  }

  // --- 3. retention ---------------------------------------------------------
  std::printf("3. retention: polarization decay of a stored '1'\n");
  {
    constexpr double kYear = 3.156e7;
    util::AsciiPlot plot(60, 12);
    struct Curve {
      const char* label;
      double temp;
      char glyph;
    };
    for (const Curve& curve : {Curve{"27C", 27.0, 'o'},
                               Curve{"85C", 85.0, '*'},
                               Curve{"125C", 125.0, '#'}}) {
      const auto& [label, temp, glyph] = curve;
      std::vector<double> log_years, ps;
      for (double years : {0.01, 0.1, 1.0, 3.0, 10.0, 30.0}) {
        PreisachModel fe;
        fe.write_bit(true, 27.0);
        fe.age(years * kYear, temp);
        log_years.push_back(std::log10(years));
        ps.push_back(fe.polarization());
      }
      plot.add_series(label, log_years, ps, glyph);
    }
    std::printf("%s", plot.render().c_str());
    std::printf("   (x axis: log10(years); the 85 degC curve stays >0.9 for\n"
                "    a decade - HfO2-class retention - while 125 degC "
                "fails)\n");
  }
  return 0;
}
