// Matrix-vector products on the circuit-accurate CiM tile: program a
// binary weight matrix into 2T-1FeFET rows, multiply by input vectors at
// several temperatures, and plot the analog accumulation levels.
//
//   $ ./matrix_engine [rows] [columns]
#include <cstdio>
#include <cstdlib>

#include "cim/tile.hpp"
#include "util/plot.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace sfc;
  using namespace sfc::cim;

  int rows = 4;
  int columns = 16;
  if (argc > 1) rows = std::atoi(argv[1]);
  if (argc > 2) columns = std::atoi(argv[2]);
  if (rows < 1 || rows > 16 || columns < 1 || columns > 64) {
    std::fprintf(stderr, "usage: %s [rows<=16] [columns<=64]\n", argv[0]);
    return 1;
  }

  util::Rng rng(99);
  std::vector<std::vector<int>> weights(
      static_cast<std::size_t>(rows),
      std::vector<int>(static_cast<std::size_t>(columns)));
  std::vector<int> input(static_cast<std::size_t>(columns));
  for (auto& row : weights) {
    for (int& b : row) b = rng.bernoulli(0.5) ? 1 : 0;
  }
  for (int& b : input) b = rng.bernoulli(0.5) ? 1 : 0;

  std::printf("calibrating the ADC references (circuit level)...\n");
  const BehavioralArrayModel adc = BehavioralArrayModel::calibrate(
      ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});

  CiMTile tile(ArrayConfig::proposed_2t1fefet(), weights);
  std::printf("tile: %d x %d weights -> %d segment(s) of 8 cells per row\n\n",
              rows, columns, tile.segments_per_row());

  for (double t : {0.0, 27.0, 85.0}) {
    const CiMTile::Result r = tile.multiply(input, t, adc);
    std::printf("T = %5.1f degC:  y = [", t);
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", r.values[i]);
    }
    std::printf("]  expected [");
    for (std::size_t i = 0; i < r.expected.size(); ++i) {
      std::printf("%s%d", i ? ", " : "", r.expected[i]);
    }
    std::printf("]  errors=%d  energy=%.2f fJ\n", r.errors(),
                r.energy_joules * 1e15);
  }

  // Plot the raw analog levels of row 0 across temperature.
  std::printf("\nanalog V_acc of row 0's segments vs temperature:\n");
  util::AsciiPlot plot(56, 12);
  const char glyphs[] = {'o', '*', '#'};
  int gi = 0;
  for (double t : {0.0, 27.0, 85.0}) {
    const CiMTile::Result r = tile.multiply(input, t, adc);
    std::vector<double> xs, ys;
    for (std::size_t s = 0; s < r.v_acc[0].size(); ++s) {
      xs.push_back(static_cast<double>(s));
      ys.push_back(r.v_acc[0][s]);
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.0fC", t);
    plot.add_series(label, xs, ys, glyphs[gi++ % 3]);
  }
  std::printf("%s", plot.render().c_str());
  std::printf("\n(x axis: segment index; the per-temperature level shifts "
              "stay inside one ADC bin)\n");
  return 0;
}
