// Quickstart: build a 2T-1FeFET CiM row, program weights with the paper's
// write-pulse protocol, run a MAC cycle at several temperatures, and read
// the accumulated output.
//
//   $ ./quickstart
#include <cstdio>
#include <vector>

#include "cim/array.hpp"

int main() {
  using namespace sfc::cim;

  // An 8-cell row of the proposed temperature-resilient cell with the
  // paper's operating conditions (BL 1.2 V, SL 0.2 V, WL 0.35 V, 6.9 ns).
  CiMRow row(ArrayConfig::proposed_2t1fefet());

  // Store the weight vector with +-4 V programming pulses (115 ns / 200 ns).
  const std::vector<int> weights = {1, 0, 1, 1, 0, 1, 1, 0};
  row.program(weights);
  std::printf("stored weights: ");
  for (int b : row.stored()) std::printf("%d", b);
  std::printf("\n");

  // Apply an input vector; the row computes the number of (1,1) pairs.
  const std::vector<int> inputs = {1, 1, 1, 0, 1, 1, 0, 1};
  int expected = 0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    expected += inputs[i] & weights[i];
  }
  std::printf("inputs:         ");
  for (int b : inputs) std::printf("%d", b);
  std::printf("   -> expected MAC = %d\n\n", expected);

  std::printf("%-12s %-14s %-16s %s\n", "T [degC]", "V_acc [V]",
              "energy/op [fJ]", "latency [ns]");
  for (double t : {0.0, 27.0, 55.0, 85.0}) {
    const MacResult r = row.evaluate(inputs, t);
    if (!r.converged) {
      std::printf("%-12.1f simulation failed to converge\n", t);
      continue;
    }
    std::printf("%-12.1f %-14.4f %-16.3f %.1f\n", t, r.v_acc,
                r.energy_per_op() * 1e15,
                row.config().timing.t_total() * 1e9);
  }
  std::printf(
      "\nThe accumulated voltage is essentially temperature-independent:\n"
      "that is the feedback loop of the 2T-1FeFET cell doing its job.\n");
  return 0;
}
