// CNN-on-CiM walkthrough: train a small CNN on SynthCIFAR, quantize it to
// int8, and classify test images with every multiply-accumulate executed
// on the calibrated 2T-1FeFET array model - at a temperature of your
// choosing.
//
//   $ ./nn_inference [temperature_c]
#include <cstdio>
#include <cstdlib>

#include "nn/cim_engine.hpp"
#include "nn/trainer.hpp"
#include "nn/vgg.hpp"

int main(int argc, char** argv) {
  using namespace sfc;

  double temperature = 27.0;
  if (argc > 1) temperature = std::atof(argv[1]);

  // Small dataset + network so the example runs in seconds.
  data::SynthCifarConfig dcfg;
  dcfg.train_per_class = 40;
  dcfg.test_per_class = 8;
  const auto train = data::make_synth_cifar_train(dcfg);
  const auto test = data::make_synth_cifar_test(dcfg);

  util::Rng rng(2024);
  nn::Sequential net;
  net.add<nn::Conv2d>(3, 8, 3, true, rng);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Conv2d>(8, 12, 3, true, rng);
  net.add<nn::Relu>();
  net.add<nn::MaxPool2d>(2);
  net.add<nn::MaxPool2d>(2);
  net.add<nn::Flatten>();
  net.add<nn::Dense>(12 * 4 * 4, 10, rng);

  std::printf("training a small CNN on SynthCIFAR...\n");
  nn::TrainConfig tcfg;
  tcfg.epochs = 8;
  tcfg.batch_size = 16;
  tcfg.learning_rate = 0.04;
  nn::Trainer trainer(net, tcfg);
  trainer.fit(train);
  std::printf("float32 test accuracy: %.1f%%\n\n",
              nn::Trainer::evaluate(net, test) * 100.0);

  const nn::QuantizedNetwork qnet =
      nn::QuantizedNetwork::from_model(net, train, 16);

  std::printf("calibrating the 2T-1FeFET array model (circuit level)...\n");
  const cim::BehavioralArrayModel fabric =
      cim::BehavioralArrayModel::calibrate(
          cim::ArrayConfig::proposed_2t1fefet(), {0.0, 27.0, 85.0});

  nn::CimDotEngine::Options opts;
  opts.temperature_c = temperature;
  nn::CimDotEngine engine(fabric, opts);

  std::printf("classifying on the CiM fabric at %.1f degC:\n", temperature);
  int correct = 0;
  const int show = 10;
  for (int i = 0; i < show; ++i) {
    const auto& img = test.images[static_cast<std::size_t>(i)];
    const int predicted = qnet.predict(img, engine);
    const bool ok = predicted == img.label;
    correct += ok ? 1 : 0;
    std::printf("  image %2d: true=%-9s predicted=%-9s %s\n", i,
                data::class_name(img.label), data::class_name(predicted),
                ok ? "" : "<- wrong");
  }
  const double acc = qnet.evaluate(test, engine);
  std::printf(
      "\nCiM accuracy on the full test split: %.1f%%\n"
      "row MACs executed: %lld, misdecoded rows: %lld\n",
      acc * 100.0, static_cast<long long>(engine.row_ops()),
      static_cast<long long>(engine.row_errors()));
  std::printf("%d of the %d shown classified correctly.\n", correct, show);
  return 0;
}
