# Empty compiler generated dependencies file for sfc_util.
# This may be replaced when dependencies are built.
