file(REMOVE_RECURSE
  "CMakeFiles/sfc_util.dir/csv.cpp.o"
  "CMakeFiles/sfc_util.dir/csv.cpp.o.d"
  "CMakeFiles/sfc_util.dir/histogram.cpp.o"
  "CMakeFiles/sfc_util.dir/histogram.cpp.o.d"
  "CMakeFiles/sfc_util.dir/interp.cpp.o"
  "CMakeFiles/sfc_util.dir/interp.cpp.o.d"
  "CMakeFiles/sfc_util.dir/plot.cpp.o"
  "CMakeFiles/sfc_util.dir/plot.cpp.o.d"
  "CMakeFiles/sfc_util.dir/rng.cpp.o"
  "CMakeFiles/sfc_util.dir/rng.cpp.o.d"
  "CMakeFiles/sfc_util.dir/stats.cpp.o"
  "CMakeFiles/sfc_util.dir/stats.cpp.o.d"
  "CMakeFiles/sfc_util.dir/table.cpp.o"
  "CMakeFiles/sfc_util.dir/table.cpp.o.d"
  "libsfc_util.a"
  "libsfc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
