file(REMOVE_RECURSE
  "libsfc_util.a"
)
