file(REMOVE_RECURSE
  "CMakeFiles/sfc_spice.dir/circuit.cpp.o"
  "CMakeFiles/sfc_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/sfc_spice.dir/device.cpp.o"
  "CMakeFiles/sfc_spice.dir/device.cpp.o.d"
  "CMakeFiles/sfc_spice.dir/engine.cpp.o"
  "CMakeFiles/sfc_spice.dir/engine.cpp.o.d"
  "CMakeFiles/sfc_spice.dir/matrix.cpp.o"
  "CMakeFiles/sfc_spice.dir/matrix.cpp.o.d"
  "CMakeFiles/sfc_spice.dir/primitives.cpp.o"
  "CMakeFiles/sfc_spice.dir/primitives.cpp.o.d"
  "CMakeFiles/sfc_spice.dir/results.cpp.o"
  "CMakeFiles/sfc_spice.dir/results.cpp.o.d"
  "CMakeFiles/sfc_spice.dir/sweep.cpp.o"
  "CMakeFiles/sfc_spice.dir/sweep.cpp.o.d"
  "CMakeFiles/sfc_spice.dir/waveform.cpp.o"
  "CMakeFiles/sfc_spice.dir/waveform.cpp.o.d"
  "libsfc_spice.a"
  "libsfc_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
