# Empty dependencies file for sfc_spice.
# This may be replaced when dependencies are built.
