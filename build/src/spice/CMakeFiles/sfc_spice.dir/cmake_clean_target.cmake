file(REMOVE_RECURSE
  "libsfc_spice.a"
)
