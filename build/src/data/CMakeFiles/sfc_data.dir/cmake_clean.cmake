file(REMOVE_RECURSE
  "CMakeFiles/sfc_data.dir/synth_cifar.cpp.o"
  "CMakeFiles/sfc_data.dir/synth_cifar.cpp.o.d"
  "libsfc_data.a"
  "libsfc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
