# Empty compiler generated dependencies file for sfc_data.
# This may be replaced when dependencies are built.
