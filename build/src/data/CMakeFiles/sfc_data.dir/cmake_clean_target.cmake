file(REMOVE_RECURSE
  "libsfc_data.a"
)
