# Empty compiler generated dependencies file for sfc_fefet.
# This may be replaced when dependencies are built.
