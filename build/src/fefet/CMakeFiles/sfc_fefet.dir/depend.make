# Empty dependencies file for sfc_fefet.
# This may be replaced when dependencies are built.
