file(REMOVE_RECURSE
  "CMakeFiles/sfc_fefet.dir/__/spice/netlist.cpp.o"
  "CMakeFiles/sfc_fefet.dir/__/spice/netlist.cpp.o.d"
  "CMakeFiles/sfc_fefet.dir/fefet.cpp.o"
  "CMakeFiles/sfc_fefet.dir/fefet.cpp.o.d"
  "CMakeFiles/sfc_fefet.dir/preisach.cpp.o"
  "CMakeFiles/sfc_fefet.dir/preisach.cpp.o.d"
  "libsfc_fefet.a"
  "libsfc_fefet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_fefet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
