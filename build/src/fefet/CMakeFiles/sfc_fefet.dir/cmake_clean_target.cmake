file(REMOVE_RECURSE
  "libsfc_fefet.a"
)
