
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/netlist.cpp" "src/fefet/CMakeFiles/sfc_fefet.dir/__/spice/netlist.cpp.o" "gcc" "src/fefet/CMakeFiles/sfc_fefet.dir/__/spice/netlist.cpp.o.d"
  "/root/repo/src/fefet/fefet.cpp" "src/fefet/CMakeFiles/sfc_fefet.dir/fefet.cpp.o" "gcc" "src/fefet/CMakeFiles/sfc_fefet.dir/fefet.cpp.o.d"
  "/root/repo/src/fefet/preisach.cpp" "src/fefet/CMakeFiles/sfc_fefet.dir/preisach.cpp.o" "gcc" "src/fefet/CMakeFiles/sfc_fefet.dir/preisach.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/devices/CMakeFiles/sfc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/sfc_spice.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
