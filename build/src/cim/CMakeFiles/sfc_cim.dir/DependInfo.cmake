
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cim/array.cpp" "src/cim/CMakeFiles/sfc_cim.dir/array.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/array.cpp.o.d"
  "/root/repo/src/cim/behavioral.cpp" "src/cim/CMakeFiles/sfc_cim.dir/behavioral.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/behavioral.cpp.o.d"
  "/root/repo/src/cim/calibration.cpp" "src/cim/CMakeFiles/sfc_cim.dir/calibration.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/calibration.cpp.o.d"
  "/root/repo/src/cim/cell_1fefet1r.cpp" "src/cim/CMakeFiles/sfc_cim.dir/cell_1fefet1r.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/cell_1fefet1r.cpp.o.d"
  "/root/repo/src/cim/cell_2t1fefet.cpp" "src/cim/CMakeFiles/sfc_cim.dir/cell_2t1fefet.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/cell_2t1fefet.cpp.o.d"
  "/root/repo/src/cim/energy.cpp" "src/cim/CMakeFiles/sfc_cim.dir/energy.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/energy.cpp.o.d"
  "/root/repo/src/cim/mac.cpp" "src/cim/CMakeFiles/sfc_cim.dir/mac.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/mac.cpp.o.d"
  "/root/repo/src/cim/metrics.cpp" "src/cim/CMakeFiles/sfc_cim.dir/metrics.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/metrics.cpp.o.d"
  "/root/repo/src/cim/montecarlo.cpp" "src/cim/CMakeFiles/sfc_cim.dir/montecarlo.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/montecarlo.cpp.o.d"
  "/root/repo/src/cim/reference_designs.cpp" "src/cim/CMakeFiles/sfc_cim.dir/reference_designs.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/reference_designs.cpp.o.d"
  "/root/repo/src/cim/tile.cpp" "src/cim/CMakeFiles/sfc_cim.dir/tile.cpp.o" "gcc" "src/cim/CMakeFiles/sfc_cim.dir/tile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fefet/CMakeFiles/sfc_fefet.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/sfc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/sfc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sfc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
