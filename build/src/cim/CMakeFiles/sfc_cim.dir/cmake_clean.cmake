file(REMOVE_RECURSE
  "CMakeFiles/sfc_cim.dir/array.cpp.o"
  "CMakeFiles/sfc_cim.dir/array.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/behavioral.cpp.o"
  "CMakeFiles/sfc_cim.dir/behavioral.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/calibration.cpp.o"
  "CMakeFiles/sfc_cim.dir/calibration.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/cell_1fefet1r.cpp.o"
  "CMakeFiles/sfc_cim.dir/cell_1fefet1r.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/cell_2t1fefet.cpp.o"
  "CMakeFiles/sfc_cim.dir/cell_2t1fefet.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/energy.cpp.o"
  "CMakeFiles/sfc_cim.dir/energy.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/mac.cpp.o"
  "CMakeFiles/sfc_cim.dir/mac.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/metrics.cpp.o"
  "CMakeFiles/sfc_cim.dir/metrics.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/montecarlo.cpp.o"
  "CMakeFiles/sfc_cim.dir/montecarlo.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/reference_designs.cpp.o"
  "CMakeFiles/sfc_cim.dir/reference_designs.cpp.o.d"
  "CMakeFiles/sfc_cim.dir/tile.cpp.o"
  "CMakeFiles/sfc_cim.dir/tile.cpp.o.d"
  "libsfc_cim.a"
  "libsfc_cim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_cim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
