# Empty compiler generated dependencies file for sfc_cim.
# This may be replaced when dependencies are built.
