file(REMOVE_RECURSE
  "libsfc_cim.a"
)
