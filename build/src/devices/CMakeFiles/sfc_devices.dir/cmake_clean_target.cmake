file(REMOVE_RECURSE
  "libsfc_devices.a"
)
