# Empty dependencies file for sfc_devices.
# This may be replaced when dependencies are built.
