file(REMOVE_RECURSE
  "CMakeFiles/sfc_devices.dir/diode.cpp.o"
  "CMakeFiles/sfc_devices.dir/diode.cpp.o.d"
  "CMakeFiles/sfc_devices.dir/mosfet.cpp.o"
  "CMakeFiles/sfc_devices.dir/mosfet.cpp.o.d"
  "libsfc_devices.a"
  "libsfc_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
