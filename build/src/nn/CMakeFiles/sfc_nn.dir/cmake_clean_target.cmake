file(REMOVE_RECURSE
  "libsfc_nn.a"
)
