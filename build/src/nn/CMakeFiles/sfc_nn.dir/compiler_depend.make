# Empty compiler generated dependencies file for sfc_nn.
# This may be replaced when dependencies are built.
