file(REMOVE_RECURSE
  "CMakeFiles/sfc_nn.dir/cim_engine.cpp.o"
  "CMakeFiles/sfc_nn.dir/cim_engine.cpp.o.d"
  "CMakeFiles/sfc_nn.dir/layers.cpp.o"
  "CMakeFiles/sfc_nn.dir/layers.cpp.o.d"
  "CMakeFiles/sfc_nn.dir/model.cpp.o"
  "CMakeFiles/sfc_nn.dir/model.cpp.o.d"
  "CMakeFiles/sfc_nn.dir/quantize.cpp.o"
  "CMakeFiles/sfc_nn.dir/quantize.cpp.o.d"
  "CMakeFiles/sfc_nn.dir/trainer.cpp.o"
  "CMakeFiles/sfc_nn.dir/trainer.cpp.o.d"
  "CMakeFiles/sfc_nn.dir/vgg.cpp.o"
  "CMakeFiles/sfc_nn.dir/vgg.cpp.o.d"
  "libsfc_nn.a"
  "libsfc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
